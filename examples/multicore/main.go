// Multicore: consensus-number-P objects are universal on P processors.
//
// Herlihy's hierarchy says an object with consensus number C supports
// wait-free consensus among at most C processes. The paper's Theorem 4
// shows that in a hybrid-scheduled multiprogrammed system the relevant
// quantity is the number of PROCESSORS, not processes: with a large
// enough quantum, (P+K)-consensus objects solve consensus — and hence
// implement any object — for arbitrarily many processes on P processors.
//
// This example runs 12 processes on 3 processors (two priority levels
// each) that first reach system-wide consensus through Fig. 7 using
// 4-consensus objects (C = P+K = 3+1), then hammer a shared wait-free
// counter whose every state transition is itself a Fig. 7 consensus.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		processors = 3
		perProc    = 4
		k          = 1 // C = P + K = 4 < 12 processes
	)

	cfg := repro.MultiConsensusConfig{
		Name: "cluster", P: processors, K: k, M: perProc, V: 2,
	}
	sys := repro.NewSystem(repro.Config{
		Processors: processors,
		Quantum:    4096, // Table 1: Q >= c(2P+1-C) = 3c here
		Chooser:    repro.NewRandomScheduler(3),
		MaxSteps:   1 << 24,
	})

	// Phase 1: leader election via Fig. 7 — every process proposes
	// itself; all must agree although the consensus objects only have
	// consensus number 4.
	election := repro.NewMultiConsensus(cfg)
	n := processors * perProc
	leaders := make([]repro.Word, n)

	// Phase 2: a shared multiprocessor counter (universal construction
	// over per-slot Fig. 7 instances).
	tally := repro.NewMultiCounter(repro.MultiConsensusConfig{
		Name: "tally", P: processors, K: k, M: perProc, V: 2,
	}, 0)
	tickets := make([]repro.Word, n)

	id := 0
	for proc := 0; proc < processors; proc++ {
		for j := 0; j < perProc; j++ {
			me := id
			p := sys.AddProcess(repro.ProcSpec{
				Processor: proc,
				Priority:  1 + j%2,
				Name:      fmt.Sprintf("node%d.%d", proc, j),
			})
			p.AddInvocation(func(c *repro.Ctx) {
				leaders[me] = election.Decide(c, repro.Word(me+1))
			})
			p.AddInvocation(func(c *repro.Ctx) {
				tickets[me] = tally.Inc(c)
			})
			id++
		}
	}

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("election (N=%d processes, C=%d objects): leader = %d\n", n, processors+k, leaders[0])
	for i, l := range leaders {
		if l != leaders[0] {
			log.Fatalf("process %d disagrees: %d vs %d", i, l, leaders[0])
		}
	}
	fmt.Printf("all %d processes agree — universality beyond the consensus number.\n", n)

	seen := map[repro.Word]bool{}
	for _, t := range tickets {
		if seen[t] {
			log.Fatalf("duplicate ticket %d", t)
		}
		seen[t] = true
	}
	fmt.Printf("multiprocessor counter: %d unique tickets, final=%d\n", len(seen), tally.Peek())
}
