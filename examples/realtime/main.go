// Realtime: a QNX-style hybrid-scheduled control node.
//
// The paper motivates hybrid scheduling with commercial real-time
// operating systems (QNX, IRIX REACT/Pro, VxWorks): fixed priorities
// with round-robin quanta inside each priority level. This example
// models such a node:
//
//   - a high-priority "sensor" task that publishes readings,
//   - two medium-priority "control" tasks that consume readings and
//     issue actuator commands,
//   - a low-priority "logger" that drains the command queue.
//
// All of them share a wait-free FIFO queue and a wait-free event counter
// built from reads and writes only. The point of wait-freedom here is
// hard real-time: the sensor task can never be blocked by a preempted
// lower-priority task holding a lock — the priority-inversion failure
// that blocking synchronization suffers (run the adversary example to
// see it happen).
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	priLogger  = 1
	priControl = 2
	priSensor  = 3

	readings = 6
)

func main() {
	sys := repro.NewSystem(repro.Config{
		Processors: 1,
		Quantum:    repro.RecommendedQuantum,
		Chooser:    repro.NewRandomScheduler(7),
	})

	commands := repro.NewQueue("commands")
	events := repro.NewCounter("events", 0)

	// Sensor: highest priority, publishes one command per reading. Its
	// operations are wait-free, so each invocation finishes in a bounded
	// number of its own statements — a latency bound, not a hope.
	sensor := sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: priSensor, Name: "sensor"})
	var sensorWorst int64
	for r := 0; r < readings; r++ {
		r := r
		sensor.AddInvocation(func(c *repro.Ctx) {
			commands.Enq(c, repro.Word(1000+r))
			events.Inc(c)
		})
	}

	// Control tasks: medium priority, same level — the quantum
	// round-robins between them, exactly the hybrid regime.
	for t := 0; t < 2; t++ {
		t := t
		ctrl := sys.AddProcess(repro.ProcSpec{
			Processor: 0, Priority: priControl, Name: fmt.Sprintf("control%d", t),
		})
		for r := 0; r < readings/2; r++ {
			ctrl.AddInvocation(func(c *repro.Ctx) {
				if cmd := commands.Deq(c); cmd != repro.QueueEmpty {
					// React: acknowledge by publishing a derived command.
					commands.Enq(c, cmd+5000)
					events.Inc(c)
				}
			})
		}
	}

	// Logger: lowest priority, drains whatever is left.
	logger := sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: priLogger, Name: "logger"})
	drained := 0
	for r := 0; r < 2*readings; r++ {
		logger.AddInvocation(func(c *repro.Ctx) {
			if commands.Deq(c) != repro.QueueEmpty {
				drained++
			}
		})
	}

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	for _, p := range sys.Processes() {
		if p.Name() == "sensor" {
			sensorWorst = p.MaxInvStmts()
		}
	}
	fmt.Printf("events recorded: %d\n", events.Peek())
	fmt.Printf("commands drained by logger: %d, still queued: %d\n", drained, commands.PeekLen())
	fmt.Printf("sensor worst-case statements per operation: %d (bounded => schedulable)\n", sensorWorst)
	if events.Peek() == 0 || sensorWorst == 0 {
		log.Fatal("unexpected idle run")
	}
}
