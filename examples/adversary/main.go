// Adversary: why the quantum bounds in Table 1 are real.
//
// Three demonstrations of the paper's negative results:
//
//  1. Theorem 1's premise: the Fig. 3 read/write consensus breaks when
//     the quantum drops below 8 statements — the exhaustive explorer
//     exhibits a concrete disagreement schedule.
//  2. The Theorem 3 mechanism: a C-consensus object gives the (C+1)-th
//     invoker nothing (⊥). The lower-bound proof staggers quanta so that
//     2P−Q processes pile onto one object; here the pile-up is shown
//     directly.
//  3. The §1 motivation: blocking synchronization deadlocks under hybrid
//     scheduling (priority inversion), while the paper's wait-free
//     objects keep going.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
)

func main() {
	demoSmallQuantumBreaksConsensus()
	demoConsensusNumberExhaustion()
	demoPriorityInversion()
}

// demoSmallQuantumBreaksConsensus searches schedules of the Fig. 3
// algorithm at Q=2 and prints the violating schedule it finds.
func demoSmallQuantumBreaksConsensus() {
	fmt.Println("=== 1. Fig. 3 consensus with Q=2 (< 8): adversary finds disagreement ===")
	build := func(ch repro.Scheduler) (*repro.System, repro.Verify) {
		sys := repro.NewSystem(repro.Config{Processors: 1, Quantum: 2, Chooser: ch, MaxSteps: 1 << 16})
		obj := repro.NewConsensus("cons")
		outs := make([]repro.Word, 3)
		for i := 0; i < 3; i++ {
			i := i
			sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *repro.Ctx) { outs[i] = obj.Decide(c, repro.Word(i+1)) })
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			for _, o := range outs {
				if o != outs[0] {
					return fmt.Errorf("disagreement: %v", outs)
				}
			}
			return nil
		}
		return sys, verify
	}
	res := repro.ExploreBudget(build, 3, repro.ExploreOptions{StopAtFirst: true})
	if res.OK() {
		log.Fatal("expected a violation at Q=2")
	}
	fmt.Printf("after %d schedules: %v\n    at %s\n", res.Schedules, res.First().Err, res.First().Schedule)
	fmt.Printf("(at Q >= %d the same search finds nothing — Theorem 1)\n\n", repro.MinQuantumConsensus)
}

// demoConsensusNumberExhaustion shows 2P−Q processes exhausting a
// C-consensus object, the engine of the Theorem 3 lower bound.
func demoConsensusNumberExhaustion() {
	const (
		p = 3       // processors
		c = 4       // object's consensus number, P <= C < 2P
		q = 2*p - c // quantum at the lower bound: 2P−C = 2
	)
	fmt.Printf("=== 2. Theorem 3 mechanism: P=%d, C=%d, Q=%d=2P−C ===\n", p, c, q)
	sys := repro.NewSystem(repro.Config{
		Processors: p,
		Quantum:    q,
		Chooser:    repro.NewStaggerScheduler(q, 0), // the proof's staggered adversary
	})
	obj := repro.NewConsObject("O", c)
	// In the proof, 2P−Q processes invoke O before the final process
	// p₂ᴾ does — its invocation is the (2P−Q+1)-th, exceeding C.
	n := 2*p - q + 1
	outs := make([]repro.Word, n)
	for i := 0; i < n; i++ {
		i := i
		sys.AddProcess(repro.ProcSpec{Processor: i % p, Priority: 1}).
			AddInvocation(func(cx *repro.Ctx) { outs[i] = cx.CCons(obj, repro.Word(i+1)) })
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	bottoms := 0
	for _, o := range outs {
		if o == repro.Bottom {
			bottoms++
		}
	}
	fmt.Printf("%d processes invoked the %d-consensus object; %d learned nothing (⊥)\n", n, c, bottoms)
	fmt.Printf("responses: %v\n", outs)
	fmt.Println("an algorithm cannot decide through an object its own processes exhaust —")
	fmt.Printf("hence consensus is impossible with Q <= 2P−C (Theorem 3).\n\n")
}

// demoPriorityInversion contrasts a blocking counter (deadlocks) with
// the paper's wait-free counter (completes) under the same schedule.
func demoPriorityInversion() {
	fmt.Println("=== 3. Blocking vs wait-free under priority preemption ===")

	// A scheduler that runs the low-priority task just long enough to
	// enter its critical section, then releases the high-priority task.
	inversion := func() repro.Scheduler {
		steps := 0
		return repro.SchedulerFunc(func(d repro.Decision) int {
			steps++
			for i, p := range d.Candidates {
				if (steps <= 2) == (p.Priority() == 1) {
					return i
				}
			}
			return 0
		})
	}

	// Wait-free counter: completes.
	sys := repro.NewSystem(repro.Config{
		Processors: 1, Quantum: repro.RecommendedQuantum,
		Chooser: inversion(), MaxSteps: 50000,
	})
	ctr := repro.NewCounter("wf", 0)
	sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1, Name: "lo"}).
		AddInvocation(func(c *repro.Ctx) { ctr.Inc(c) })
	sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 2, Name: "hi"}).
		AddInvocation(func(c *repro.Ctx) { ctr.Inc(c) })
	err := sys.Run()
	fmt.Printf("wait-free counter: err=%v final=%d — both tasks completed\n", err, ctr.Peek())
	if err != nil {
		log.Fatal("wait-free counter should have completed")
	}

	// The same scenario with a lock-based counter livelocks: the high-
	// priority task spins on a lock held by the preempted low-priority
	// task, which can never run again (Axiom 1).
	sys2 := repro.NewSystem(repro.Config{
		Processors: 1, Quantum: repro.RecommendedQuantum,
		Chooser: inversion(), MaxSteps: 50000,
	})
	lk := repro.NewLockCounter("lk", 0)
	sys2.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1, Name: "lo"}).
		AddInvocation(func(c *repro.Ctx) { lk.Inc(c) })
	sys2.AddProcess(repro.ProcSpec{Processor: 0, Priority: 2, Name: "hi"}).
		AddInvocation(func(c *repro.Ctx) { lk.Inc(c) })
	err = sys2.Run()
	fmt.Printf("lock-based counter: err=%v final=%d — priority inversion livelocked\n", err, lk.Peek())
	if !errors.Is(err, repro.ErrStepLimit) {
		log.Fatal("lock-based counter should have hit the step limit")
	}
}
