// Quickstart: wait-free synchronization from reads and writes only.
//
// Eight processes across three priority levels share one
// hybrid-scheduled processor (like threads under QNX/IRIX/VxWorks-style
// schedulers). They coordinate through a wait-free counter built purely
// from reads and writes — no locks, no hardware atomics — which is
// exactly what the paper proves possible once the scheduler guarantees a
// quantum of at least 8 statements between same-priority preemptions.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		processes = 8
		levels    = 3
		opsEach   = 5
	)

	sys := repro.NewSystem(repro.Config{
		Processors: 1,
		Quantum:    repro.RecommendedQuantum,
		Chooser:    repro.NewRandomScheduler(42),
	})

	counter := repro.NewCounter("hits", 0)
	got := make([][]repro.Word, processes)

	for i := 0; i < processes; i++ {
		i := i
		p := sys.AddProcess(repro.ProcSpec{
			Processor: 0,
			Priority:  1 + i%levels,
			Name:      fmt.Sprintf("worker%d", i),
		})
		for k := 0; k < opsEach; k++ {
			p.AddInvocation(func(c *repro.Ctx) {
				// Inc is wait-free: it completes in a bounded number of
				// this process's own statements no matter how the
				// scheduler preempts it.
				got[i] = append(got[i], counter.Inc(c))
			})
		}
	}

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("final counter: %d (want %d)\n", counter.Peek(), processes*opsEach)
	seen := map[repro.Word]bool{}
	for i, vals := range got {
		fmt.Printf("worker%d tickets: %v\n", i, vals)
		for _, v := range vals {
			if seen[v] {
				log.Fatalf("ticket %d issued twice — not linearizable!", v)
			}
			seen[v] = true
		}
	}
	fmt.Println("every ticket issued exactly once: the counter linearized.")
}
