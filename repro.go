// Package repro is a Go reproduction of "Wait-Free Synchronization in
// Multiprogrammed Systems: Integrating Priority-Based and Quantum-Based
// Scheduling" (Anderson & Moir, PODC 1999).
//
// The library has three layers:
//
//  1. A deterministic statement-level simulator of hybrid-scheduled
//     multiprogrammed systems (NewSystem): P processors, processes with
//     priorities, quantum-based scheduling among equal priorities,
//     enforcing the paper's Axioms 1-2 exactly. Scheduling freedom is
//     delegated to pluggable Schedulers, from benign round-robin to the
//     lower-bound stagger adversary.
//
//  2. The paper's algorithms, runnable inside the simulator:
//     NewConsensus (Fig. 3 — constant-time uniprocessor consensus from
//     reads/writes), NewCAS (Fig. 5 — O(V) uniprocessor compare-and-swap
//     from reads/writes), NewMultiConsensus (Fig. 7 — multiprocessor
//     consensus from C-consensus objects), NewFairConsensus (Fig. 9 —
//     constant quantum under fair scheduling), plus wait-free universal
//     objects built on them (NewCounter, NewQueue, NewMultiCounter).
//
//  3. Verification and experiments: exhaustive/budgeted/randomized
//     schedule exploration (Explore*, Fuzz), trace rendering in the
//     style of the paper's Fig. 1-2 (NewTraceRecorder), and the
//     experiment harness regenerating Table 1 and the complexity claims
//     (Table1Sweep, Fig3Scaling, ...). See EXPERIMENTS.md. Violations
//     become replayable repro bundles that shrink to minimal
//     still-failing kernels (LoadArtifact, ReplayArtifact, Shrink).
//
// All shared-memory values are single words (Word); ⊥ is Bottom.
package repro

import (
	"repro/internal/artifact"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/check"
	"repro/internal/hybridcas"
	"repro/internal/mem"
	"repro/internal/minimize"
	"repro/internal/multicons"
	"repro/internal/qlocal"
	"repro/internal/renaming"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/unicons"
	"repro/internal/universal"
)

// Core simulator types.
type (
	// Word is the unit of shared storage.
	Word = mem.Word
	// Reg is a single-word atomic register.
	Reg = mem.Reg
	// ConsObject is a primitive C-consensus object.
	ConsObject = mem.ConsObject
	// System is a configured multiprogrammed system.
	System = sim.System
	// Config parameterizes a System.
	Config = sim.Config
	// ProcSpec describes a process (processor, priority).
	ProcSpec = sim.ProcSpec
	// Process is a simulated process.
	Process = sim.Process
	// Ctx is a process's handle to shared memory inside an invocation.
	Ctx = sim.Ctx
	// Invocation is one object invocation run by a process.
	Invocation = sim.Invocation
	// Scheduler resolves the scheduling freedom Axioms 1-2 leave open.
	Scheduler = sim.Chooser
	// SchedulerFunc adapts a function to the Scheduler interface.
	SchedulerFunc = sim.ChooserFunc
	// Decision is one scheduling decision point.
	Decision = sim.Decision
)

// ErrStepLimit reports that a run exceeded Config.MaxSteps — how
// non-termination (e.g. a blocked lock) manifests in the simulator.
var ErrStepLimit = sim.ErrStepLimit

// Bottom is ⊥, the reserved "no value" word.
const Bottom = mem.Bottom

// Quantum guidance (in atomic statements).
const (
	// MinQuantumConsensus is Theorem 1's bound: Fig. 3 consensus is
	// correct on a hybrid-scheduled uniprocessor when Q ≥ 8.
	MinQuantumConsensus = unicons.MinQuantum
	// MinQuantumCAS is the safety bound for the Fig. 5 C&S object.
	MinQuantumCAS = hybridcas.MinQuantum
	// RecommendedQuantum keeps retry rounds per operation small for the
	// level-local objects and everything built on them.
	RecommendedQuantum = qlocal.RecommendedQuantum
)

// NewSystem returns an empty hybrid-scheduled system.
func NewSystem(cfg Config) *System { return sim.New(cfg) }

// NewReg returns a fresh shared register holding ⊥.
func NewReg(name string) *Reg { return mem.NewReg(name) }

// NewRegInit returns a fresh shared register holding v.
func NewRegInit(name string, v Word) *Reg { return mem.NewRegInit(name, v) }

// NewConsObject returns a primitive C-consensus object (invocations
// beyond the C-th return ⊥).
func NewConsObject(name string, c int) *ConsObject { return mem.NewConsObject(name, c) }

// Schedulers.

// NewRandomScheduler returns a seeded pseudo-random scheduler.
func NewRandomScheduler(seed int64) Scheduler { return sched.NewRandom(seed) }

// NewRotateScheduler returns the maximally-preempting round-robin
// scheduler (every quantum is exactly Q statements).
func NewRotateScheduler() Scheduler { return sched.NewRotate() }

// NewRunToCompletionScheduler returns the friendliest legal scheduler.
func NewRunToCompletionScheduler() Scheduler { return &sched.RunToCompletion{} }

// NewStaggerScheduler returns the Theorem 3 quantum-stagger adversary.
func NewStaggerScheduler(period, phase int) Scheduler { return sched.NewStagger(period, phase) }

// Crash-stop faults.

// Crasher extends Scheduler with crash-stop fault injection: the kernel
// polls Crashes at every scheduling step and permanently halts the
// returned processes. A crashed process is departed, not preempted —
// wait-free algorithms must keep every survivor's step bound intact.
type Crasher = sim.Crasher

// CrashPoint plans one crash-stop fault (process Proc at the first
// scheduling step at or after global statement Step).
type CrashPoint = sched.CrashPoint

// CrashScheduler wraps an inner scheduler with a fixed crash plan.
type CrashScheduler = sched.Crash

// RandomCrashScheduler wraps an inner scheduler with seeded random
// crash-stop faults; its Injected field counts crashes delivered.
type RandomCrashScheduler = sched.RandomCrash

// NewCrashScheduler wraps inner with a deterministic crash plan.
func NewCrashScheduler(inner Scheduler, plan ...CrashPoint) *CrashScheduler {
	return sched.NewCrash(inner, plan...)
}

// NewRandomCrashScheduler wraps inner with seeded random crash-stop
// faults: at each step, with probability prob (≤ 0 selects
// sched.DefaultCrashProb), one uniformly chosen live process crashes,
// up to maxCrashes in total.
func NewRandomCrashScheduler(inner Scheduler, seed int64, maxCrashes int, prob float64) *RandomCrashScheduler {
	return sched.NewRandomCrash(inner, seed, maxCrashes, prob)
}

// Paper algorithms.

// Consensus is the Fig. 3 uniprocessor consensus object (Theorem 1):
// wait-free, constant-time, reads and writes only, any number of
// processes at any priorities on one processor, Q ≥ MinQuantumConsensus.
type Consensus = unicons.Object

// NewConsensus returns a fresh Fig. 3 consensus object.
func NewConsensus(name string) *Consensus { return unicons.New(name) }

// CAS is the Fig. 5 uniprocessor compare-and-swap object (Theorem 2):
// wait-free, O(V) time, reads and writes only.
type CAS = hybridcas.Object

// NewCAS returns a Fig. 5 C&S object for one processor with `levels`
// priority levels, holding initial.
func NewCAS(name string, levels int, initial Word) *CAS {
	return hybridcas.New(name, levels, initial)
}

// NewReclaimingCAS returns a Fig. 5 C&S object that additionally bounds
// its storage with quiescence-floor reclamation (the role the 4N+2-tag
// recycling of [2] plays in the paper; see internal/hybridcas/reclaim.go
// for guarantees and caveats).
func NewReclaimingCAS(name string, levels int, initial Word, threshold int) *CAS {
	return hybridcas.NewReclaiming(name, levels, initial, threshold)
}

// Renaming (§5 extensions).

// LevelNames assigns one name per priority level (the identifier scheme
// §5 uses to run Fig. 7 under dynamic priorities).
type LevelNames = renaming.LevelNames

// NewLevelNames returns a one-shot level-renaming object for priorities
// 1..v.
func NewLevelNames(name string, v int) *LevelNames { return renaming.NewLevelNames(name, v) }

// LongLivedRenaming lets processes repeatedly acquire and release names
// in 1..renaming.Size, wait-free from reads and writes.
type LongLivedRenaming = renaming.LongLived

// NewLongLivedRenaming returns an empty long-lived renaming object.
func NewLongLivedRenaming(name string) *LongLivedRenaming { return renaming.NewLongLived(name) }

// LevelLocal is the reconstructed quantum-scheduled level-local object
// of [1]: CAS/FetchInc/Store/Load among one priority level's processes,
// single-register reads from other levels.
type LevelLocal = qlocal.Object

// NewLevelLocal returns a level-local object holding initial (≤ 32 bits).
func NewLevelLocal(name string, initial Word) *LevelLocal { return qlocal.New(name, initial) }

// MultiConsensusConfig parameterizes Fig. 7 instances.
type MultiConsensusConfig = multicons.Config

// MultiConsensus is the Fig. 7 multiprocessor consensus algorithm
// (Theorem 4): wait-free consensus for any number of processes on P
// processors from (P+K)-consensus objects, polynomial space and time,
// provided Q meets Table 1's bound.
type MultiConsensus = multicons.Algorithm

// NewMultiConsensus returns a fresh one-shot Fig. 7 instance.
func NewMultiConsensus(cfg MultiConsensusConfig) *MultiConsensus { return multicons.New(cfg) }

// FairConsensus is the Fig. 9 algorithm: constant quantum suffices when
// quanta are allocated fairly.
type FairConsensus = multicons.Fair

// NewFairConsensus returns a fresh Fig. 9 instance for P processors and
// V priority levels using (P+K)-consensus objects.
func NewFairConsensus(name string, p, v, k int) *FairConsensus {
	return multicons.NewFair(name, p, v, k)
}

// Universal objects.

// Counter is a wait-free shared counter for one hybrid-scheduled
// processor, reads and writes only.
type Counter = universal.Counter

// NewCounter returns a counter starting at initial.
func NewCounter(name string, initial Word) *Counter { return universal.NewCounter(name, initial) }

// Queue is a wait-free shared FIFO queue for one hybrid-scheduled
// processor, reads and writes only.
type Queue = universal.Queue

// QueueEmpty is returned by Queue.Deq on an empty queue.
const QueueEmpty = universal.QueueEmpty

// NewQueue returns an empty queue.
func NewQueue(name string) *Queue { return universal.NewQueue(name) }

// MultiCounter is a wait-free counter spanning P processors, built on
// Fig. 7 consensus.
type MultiCounter = universal.MultiCounter

// NewMultiCounter returns a multiprocessor counter starting at initial.
func NewMultiCounter(cfg MultiConsensusConfig, initial Word) *MultiCounter {
	return universal.NewMultiCounter(cfg, initial)
}

// UniversalApply is the sequential specification for custom universal
// objects.
type UniversalApply = universal.Apply

// NewUniversal returns a custom uniprocessor universal object.
func NewUniversal(name string, initial any, apply UniversalApply) *universal.Object {
	return universal.New(name, initial, apply)
}

// Baseline comparators (see internal/baseline).

// LockCounter is the blocking comparator: a counter behind a CAS
// spinlock. It deadlocks under priority inversion, which the wait-free
// objects cannot.
type LockCounter = baseline.LockCounter

// NewLockCounter returns a lock-based counter starting at initial.
func NewLockCounter(name string, initial Word) *LockCounter {
	return baseline.NewLockCounter(name, initial)
}

// NaiveConsensus is the quantum-oblivious comparator: single-register
// adopt, broken under any preemption.
type NaiveConsensus = baseline.Naive

// NewNaiveConsensus returns the naive comparator.
func NewNaiveConsensus(name string) *NaiveConsensus { return baseline.NewNaive(name) }

// Verification.

type (
	// Builder constructs a fresh system plus verifier for exploration.
	Builder = check.Builder
	// Verify checks a completed run's outcome.
	Verify = check.Verify
	// ExploreOptions bounds an exploration; Parallelism selects the
	// worker count (0 = all CPUs, 1 = strict sequential) and Progress
	// receives periodic throughput snapshots.
	ExploreOptions = check.Options
	// ExploreResult summarizes an exploration.
	ExploreResult = check.Result
	// ExploreProgress is one snapshot delivered to the Progress hook.
	ExploreProgress = check.ProgressInfo
)

// ExploreAll exhaustively checks every schedule of the built system.
// All explorers run on a worker pool; the Builder must be reentrant
// (create all state inside the call) — see package check for the
// contract and the determinism guarantee.
func ExploreAll(build Builder, opts ExploreOptions) *ExploreResult {
	return check.ExploreAll(build, opts)
}

// ExploreBudget exhaustively checks every schedule within a context-
// switch deviation budget.
func ExploreBudget(build Builder, budget int, opts ExploreOptions) *ExploreResult {
	return check.ExploreBudget(build, budget, opts)
}

// Fuzz checks many seeded pseudo-random schedules.
func Fuzz(build Builder, seeds int, opts ExploreOptions) *ExploreResult {
	return check.Fuzz(build, seeds, opts)
}

// Counterexample forensics (see DESIGN.md §8 and README "Debugging a
// violation"): violations become versioned JSON repro bundles that
// replay deterministically and shrink to minimal still-failing kernels.

type (
	// Artifact is a replayable repro bundle: a registered workload name,
	// its scalar config and crash plan, the schedule (explicit decision
	// vector or seeds), and the recorded error and timeline.
	Artifact = artifact.Bundle
	// ArtifactMeta names a registered workload plus its configuration.
	ArtifactMeta = artifact.Meta
	// ArtifactSched is a bundle's schedule: script or random mode.
	ArtifactSched = artifact.Sched
	// ReplayOptions controls a bundle replay.
	ReplayOptions = artifact.ReplayOptions
	// ReplayReport is the outcome of a fresh bundle replay.
	ReplayReport = artifact.Report
	// ShrinkOptions bounds minimization and pins the failure kind.
	ShrinkOptions = minimize.Options
	// ShrinkStats summarizes a minimization run.
	ShrinkStats = minimize.Stats
)

// LoadArtifact reads a repro bundle from disk (rejecting unknown
// versions and workloads).
func LoadArtifact(path string) (*Artifact, error) { return artifact.Load(path) }

// ReplayArtifact deterministically re-executes a bundle from scratch
// and reports the fresh outcome; recorded error/trace are never trusted.
func ReplayArtifact(b *Artifact, opts ReplayOptions) (*ReplayReport, error) {
	return artifact.Replay(b, opts)
}

// Shrink minimizes a still-failing bundle (ddmin chunk removal,
// per-decision lowering, crash-point removal, quantum/level lowering);
// every accepted candidate is re-verified by a fresh replay.
func Shrink(b *Artifact, opts ShrinkOptions) (*Artifact, *ShrinkStats, error) {
	return minimize.Shrink(b, opts)
}

// ArtifactBuilder returns the registered builder for meta, for use with
// the explorers; pair it with ExploreOptions.ArtifactMeta (and
// .Minimize) so every recorded violation carries a replayable — and
// optionally pre-shrunk — bundle.
func ArtifactBuilder(meta ArtifactMeta) (Builder, error) { return check.BuilderFor(meta) }

// Tracing.

// Auditor independently re-verifies Axioms 1-2 from a run's event
// stream; wire it in as Config.Observer and check Err afterwards.
type Auditor = sim.Auditor

// NewAuditor returns an axiom auditor for the given quantum.
func NewAuditor(quantum int) *Auditor { return sim.NewAuditor(quantum) }

// ObserverTee fans simulation events out to several observers.
type ObserverTee = sim.Tee

// TraceRecorder buffers events for Fig. 1/2-style timeline rendering.
type TraceRecorder = trace.Recorder

// TraceRenderOptions controls timeline rendering.
type TraceRenderOptions = trace.RenderOptions

// NewTraceRecorder returns a recorder buffering up to limit statements
// (0 = 4096). Pass it as Config.Observer.
func NewTraceRecorder(limit int) *TraceRecorder { return trace.NewRecorder(limit) }

// Experiments (see EXPERIMENTS.md).

// Table1Row is one row of the reproduced Table 1.
type Table1Row = bench.Table1Row

// Table1Sweep regenerates Table 1 empirically (experiment E1).
func Table1Sweep(p, m, v, seeds int, qGrid []int) []Table1Row {
	return bench.Table1Sweep(p, m, v, seeds, qGrid)
}

// RenderTable1 renders a Table 1 sweep.
func RenderTable1(p, m, v int, rows []Table1Row) string {
	return bench.RenderTable1(p, m, v, rows)
}
