// Command valency runs the Appendix-A-style valency analysis over the
// schedule tree of a small consensus scenario, reporting bivalent and
// critical states, reachable decisions, and violations (experiment E6).
//
// Usage:
//
//	valency -alg fig3 -n 2 -q 8            # correct: critical states, no violations
//	valency -alg fig3 -n 3 -q 1 -budget 3  # below the bound: violations appear
//	valency -alg exhaust -n 3 -p 2 -c 2    # Fig. 6: every schedule violates
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/unicons"
	"repro/internal/valency"
)

func main() {
	var (
		alg    = flag.String("alg", "fig3", "scenario: fig3|exhaust")
		n      = flag.Int("n", 2, "processes")
		p      = flag.Int("p", 2, "processors (exhaust)")
		c      = flag.Int("c", 2, "consensus number (exhaust)")
		q      = flag.Int("q", 8, "scheduling quantum (fig3)")
		budget = flag.Int("budget", 0, "deviation budget (0 = full tree)")
		max    = flag.Int("max", 100000, "leaf cap")
	)
	flag.Parse()

	var scen valency.Scenario
	switch *alg {
	case "fig3":
		scen = fig3Scenario(*n, *q)
	case "exhaust":
		scen = exhaustScenario(*n, *p, *c)
	default:
		fmt.Fprintf(os.Stderr, "valency: unknown -alg %q\n", *alg)
		os.Exit(2)
	}

	var res *valency.Result
	if *budget > 0 {
		res = valency.AnalyzeBudget(scen, *budget, *max)
	} else {
		res = valency.Analyze(scen, *max)
	}
	fmt.Println(res)
	switch {
	case res.Violations > 0:
		fmt.Println("violating schedules exist: the adversary defeats this configuration")
	case res.Critical > 0:
		fmt.Println("no violations; every run leaves bivalence through a critical state (wait-free decision)")
	}
}

func fig3Scenario(n, q int) valency.Scenario {
	return func(ch sim.Chooser) (*sim.System, func(error) valency.Outcome) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: q, Chooser: ch, MaxSteps: 1 << 16})
		obj := unicons.New("cons")
		outs := make([]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(cx *sim.Ctx) { outs[i] = obj.Decide(cx, mem.Word(i+1)) })
		}
		return sys, agreementOutcome(outs)
	}
}

func exhaustScenario(n, p, c int) valency.Scenario {
	return func(ch sim.Chooser) (*sim.System, func(error) valency.Outcome) {
		sys := sim.New(sim.Config{Processors: p, Quantum: 1, Chooser: ch, MaxSteps: 1 << 14})
		obj := mem.NewConsObject("O", c)
		outs := make([]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: i % p, Priority: 1}).
				AddInvocation(func(cx *sim.Ctx) { outs[i] = cx.CCons(obj, mem.Word(i+1)) })
		}
		return sys, agreementOutcome(outs)
	}
}

func agreementOutcome(outs []mem.Word) func(error) valency.Outcome {
	return func(runErr error) valency.Outcome {
		if runErr != nil {
			return valency.Outcome{}
		}
		for _, o := range outs {
			if o != outs[0] || o == mem.Bottom {
				return valency.Outcome{}
			}
		}
		return valency.Outcome{Decision: outs[0], Valid: true}
	}
}
