// Command reprolint runs the repo's static-analysis suite — the
// machine-checked form of the atomic-statement model, the replay
// determinism contract, and the wait-freedom loop discipline
// (DESIGN.md §9, §13). It is a multichecker over the analyzers in
// internal/analysis:
//
//	atomicaccess     raw mem accessor use outside mem/sim
//	ctxescape        *sim.Ctx escaping its invocation body
//	determinism      wall clock / unseeded rand / goroutines / map order
//	                 in the replay-sensitive packages
//	simonly          native concurrency in algorithm packages
//	exhaustive       non-exhaustive switches over sim enums
//	waitfreebound    unbounded loops/recursion in algorithm packages;
//	                 derives per-operation statement bounds
//	statementcharge  raw mem access laundered through helper calls,
//	                 interprocedurally across packages
//
// plus validation of every `//repro:allow <key> <reason>` and
// `//repro:bound <expr> <reason>` marker: markers must parse, carry a
// non-empty reason, use a known key or model parameter, and be
// load-bearing — a marker that suppresses or bounds nothing fails the
// lint, so annotations cannot rot.
//
// Usage:
//
//	reprolint [-list] [-tests=false] [-format=text|json|sarif|github]
//	          [-o file] [-bounds file] [-cache=false] [-cache-dir dir]
//	          [-j N] [packages]
//
// Packages are module-root-relative patterns: ./... (default), ./dir,
// or ./dir/... . Dependencies of the selection are analyzed too (their
// facts feed the interprocedural passes) but only selected packages are
// reported on. Analysis is package-graph parallel with a content-hash
// incremental cache under .reprolint-cache/. Exit status is 1 when any
// diagnostic is reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list analyzers and exit")
		tests     = flag.Bool("tests", true, "also analyze _test.go files")
		format    = flag.String("format", "text", "output format: text, json, sarif, or github")
		out       = flag.String("o", "", "write findings to file instead of stdout")
		boundsOut = flag.String("bounds", "", "write the derived bounds report (JSON) to file")
		cache     = flag.Bool("cache", true, "use the incremental cache under .reprolint-cache/")
		cacheDir  = flag.String("cache-dir", "", "override the cache directory")
		workers   = flag.Int("j", 0, "package-analysis parallelism (default GOMAXPROCS)")
	)
	flag.Parse()
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	for _, p := range patterns {
		if err := analysis.ValidPattern(p); err != nil {
			fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
			fmt.Fprintln(os.Stderr, "usage: reprolint [flags] [./... | ./dir | ./dir/...]")
			os.Exit(2)
		}
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}
	// The source importer resolves module-internal imports through the
	// go command, which needs a working directory inside the module.
	if err := os.Chdir(root); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}

	res, err := analysis.RunDriver(analysis.DriverOptions{
		Root:        root,
		Patterns:    patterns,
		Tests:       *tests,
		Cache:       *cache,
		CacheDir:    *cacheDir,
		Parallelism: *workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if err := analysis.WriteDiagnostics(w, *format, res.Diags, root); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}
	if *boundsOut != "" {
		if err := writeBounds(*boundsOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
			os.Exit(2)
		}
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s) in %d package(s) (%d cached, %d analyzed)\n",
			len(res.Diags), res.Packages, res.CacheHits, res.CacheMisses)
		os.Exit(1)
	}
}

func writeBounds(path string, res *analysis.DriverResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return analysis.WriteBoundsReport(f, res.Bounds)
}
