// Command reprolint runs the repo's static-analysis suite — the
// machine-checked form of the atomic-statement model and the replay
// determinism contract (DESIGN.md §9). It is a multichecker over the
// analyzers in internal/analysis:
//
//	atomicaccess  raw mem accessor use outside mem/sim
//	ctxescape     *sim.Ctx escaping its invocation body
//	determinism   wall clock / unseeded rand / goroutines / map order
//	              in the replay-sensitive packages
//	simonly       native concurrency in algorithm packages
//	exhaustive    non-exhaustive switches over sim enums
//
// plus validation of every `//repro:allow <key> <reason>` marker:
// markers must parse, carry a non-empty reason, use a known key, and be
// load-bearing — a marker that suppresses no finding fails the lint, so
// annotations cannot rot.
//
// Usage:
//
//	reprolint [-list] [-tests=false] [./...]
//
// The only supported pattern is the whole module (./...); reprolint
// locates the module root from the working directory. Exit status is 1
// when any diagnostic is reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list analyzers and exit")
		tests = flag.Bool("tests", true, "also analyze _test.go files")
	)
	flag.Parse()
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if args := flag.Args(); len(args) > 1 || (len(args) == 1 && args[0] != "./...") {
		fmt.Fprintln(os.Stderr, "usage: reprolint [-list] [-tests=false] [./...]")
		os.Exit(2)
	}
	diags, err := run(*tests)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func run(tests bool) ([]analysis.Diagnostic, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	// The source importer resolves module-internal imports through the
	// go command, which needs a working directory inside the module.
	if err := os.Chdir(root); err != nil {
		return nil, err
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := analysis.PackageDirs(root)
	if err != nil {
		return nil, err
	}

	loader := analysis.NewLoader()
	analyzers := analysis.Analyzers()
	var diags []analysis.Diagnostic
	for _, dir := range dirs {
		pkgPath := modPath
		if dir != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(dir)
		}
		pkgs, err := loader.LoadDir(filepath.Join(root, dir), pkgPath, tests)
		if err != nil {
			return nil, err
		}
		for _, pkg := range pkgs {
			for _, a := range analyzers {
				if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
					continue
				}
				ds, err := pkg.Run(a)
				if err != nil {
					return nil, err
				}
				diags = append(diags, ds...)
			}
			diags = append(diags, analysis.MarkerProblems(pkg)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
