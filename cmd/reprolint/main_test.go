package main

import (
	"testing"

	"repro/internal/analysis"
)

// TestRepoLintsClean is the dogfood gate: the repo itself must produce
// zero findings, with every //repro:allow and //repro:bound marker
// load-bearing. Because marker consumption is the only way a marker
// counts as used, this single assertion also proves that removing any
// marker (or the finding/loop it covers) fails the lint — in
// particular, baseline.LockCounter's spin loop fails waitfreebound the
// moment its `unbounded` marker is deleted.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.RunDriver(analysis.DriverOptions{
		Root:  root,
		Tests: true,
		// Hermetic: never read or write the working tree's cache.
		Cache: false,
	})
	if err != nil {
		t.Fatalf("reprolint: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("%s", d)
	}

	// The derived bounds report must re-derive the paper's Theorem 1
	// constant from source: unicons.Decide is exactly 8 statements,
	// with no incompleteness caveats.
	var decide *analysis.OpBound
	for i := range res.Bounds.Ops {
		op := &res.Bounds.Ops[i]
		if op.Func == "(*repro/internal/unicons.Object).Decide" {
			decide = op
		}
	}
	if decide == nil {
		t.Fatal("bounds report is missing unicons.Decide")
	}
	if decide.Bound != "8" || len(decide.Incomplete) != 0 {
		t.Errorf("unicons.Decide derived bound = %q (incomplete %v), want exactly 8",
			decide.Bound, decide.Incomplete)
	}
}
