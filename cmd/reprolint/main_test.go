package main

import (
	"os"
	"testing"
)

// TestRepoLintsClean is the dogfood gate: the repo itself must produce
// zero findings, with every //repro:allow marker load-bearing. Because
// marker suppression is the only way a marker counts as used, this
// single assertion also proves that removing any marker (or the finding
// it covers) fails the lint.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	diags, err := run(true)
	if err != nil {
		t.Fatalf("reprolint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
