// Command tracer regenerates the paper's Fig. 1 and Fig. 2: the
// interleavings of three processes accessing a common object on one
// processor under (a) quantum-based and (b) priority-based scheduling
// (experiment E2).
//
// Usage:
//
//	tracer            # both figures
//	tracer -fig 1a    # quantum-based interleaving only
//	tracer -fig 1b    # priority-based interleaving only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	fig := flag.String("fig", "both", "which figure: 1a|1b|both")
	q := flag.Int("q", 8, "scheduling quantum for the quantum-based figure")
	flag.Parse()

	if *fig == "1a" || *fig == "both" {
		// Fig. 1(a)/Fig. 2: three equal-priority processes, quantum
		// scheduling; the rotate schedule gives exactly the staggered
		// pattern of Fig. 2, with quantum boundaries visible as bursts.
		res, err := core.RunUniConsensus(core.UniConsensusOpts{
			N: 3, V: 1, Quantum: *q, Scheduler: "rotate", Trace: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
		fmt.Printf("Fig. 1(a)/Fig. 2 — quantum-based interleaving (Q=%d):\n", *q)
		fmt.Println("legend: [ invocation start  ] end  ! resumes after preemption")
		fmt.Println("        R read  W write  L local statement")
		fmt.Print(res.Trace)
		fmt.Printf("decisions=%v preemptions=%d\n\n", res.Decisions, res.Preemptions)
	}
	if *fig == "1b" || *fig == "both" {
		// Fig. 1(b): three processes at distinct priorities; preemptors
		// run to completion before the preempted process resumes.
		res, err := core.RunUniConsensus(core.UniConsensusOpts{
			N: 3, V: 3, Quantum: *q, Scheduler: "rotate", Trace: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
		fmt.Println("Fig. 1(b) — priority-based interleaving (p lowest, r highest):")
		fmt.Print(res.Trace)
		fmt.Printf("decisions=%v\n", res.Decisions)
	}
}
