// Command tracer regenerates the paper's Fig. 1 and Fig. 2: the
// interleavings of three processes accessing a common object on one
// processor under (a) quantum-based and (b) priority-based scheduling
// (experiment E2).
//
// Usage:
//
//	tracer            # both figures, to stdout
//	tracer -fig 1a    # quantum-based interleaving only
//	tracer -fig 1b    # priority-based interleaving only
//	tracer -o fig.txt # write the rendered timelines to a file
//
// With -o the rendered output goes to the named file instead of stdout,
// so tracer output composes with repro artifacts in the same directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

func main() {
	fig := flag.String("fig", "both", "which figure: 1a|1b|both")
	q := flag.Int("q", 8, "scheduling quantum for the quantum-based figure")
	outPath := flag.String("o", "", "write the rendered timelines to this file instead of stdout")
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tracer:", err)
				os.Exit(1)
			}
		}()
		out = f
	}

	if *fig == "1a" || *fig == "both" {
		// Fig. 1(a)/Fig. 2: three equal-priority processes, quantum
		// scheduling; the rotate schedule gives exactly the staggered
		// pattern of Fig. 2, with quantum boundaries visible as bursts.
		res, err := core.RunUniConsensus(core.UniConsensusOpts{
			N: 3, V: 1, Quantum: *q, Scheduler: "rotate", Trace: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "Fig. 1(a)/Fig. 2 — quantum-based interleaving (Q=%d):\n", *q)
		fmt.Fprintln(out, "legend: [ invocation start  ] end  ! resumes after preemption")
		fmt.Fprintln(out, "        R read  W write  L local statement")
		fmt.Fprint(out, res.Trace)
		fmt.Fprintf(out, "decisions=%v preemptions=%d\n\n", res.Decisions, res.Preemptions)
	}
	if *fig == "1b" || *fig == "both" {
		// Fig. 1(b): three processes at distinct priorities; preemptors
		// run to completion before the preempted process resumes.
		res, err := core.RunUniConsensus(core.UniConsensusOpts{
			N: 3, V: 3, Quantum: *q, Scheduler: "rotate", Trace: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
		fmt.Fprintln(out, "Fig. 1(b) — priority-based interleaving (p lowest, r highest):")
		fmt.Fprint(out, res.Trace)
		fmt.Fprintf(out, "decisions=%v\n", res.Decisions)
	}
}
