// Command benchjson measures explorer and shrinker throughput and
// appends a machine-readable JSON data point to the repo's bench
// trajectory (`make bench-json` → BENCH_explore.json). The file is a
// bench.History — {"latest": ..., "history": [...]} — so the newest
// report always sits at a stable key while past runs accumulate. The
// format is documented in EXPERIMENTS.md ("Bench trajectory").
//
// Usage:
//
//	benchjson                       # writes BENCH_explore.json
//	benchjson -o out.json
//	benchjson -parallel 4           # worker count for the parallel leg
//	benchjson -gate                 # regression gate: compare a fresh
//	                                # run against the committed baseline
//	                                # and exit 1 on a >25% throughput drop
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
)

// report is the BENCH_explore.json schema, version 4 (version 2 added
// the reduction comparison; version 3 added steal counts and
// allocs-per-schedule to the explore legs, the reduced-mode cost
// ratio, and renamed the misleading sleep_pruned_runs stat to
// sleep_deadlock_runs; version 4 added gomaxprocs, the speedup_note
// degenerate-parallelism flag, and the progress section — the
// practically-wait-free measurement pair).
type report struct {
	Version   int    `json:"version"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go"`
	CPUs      int    `json:"cpus"`
	// GoMaxProcs is runtime.GOMAXPROCS at measurement time (schema v4).
	// It can sit below cpus — cgroup limits, GOMAXPROCS env — in which
	// case the parallel leg never had cpus workers and the speedup
	// figure must be read against this, not cpus.
	GoMaxProcs int              `json:"gomaxprocs"`
	Sequential bench.Throughput `json:"explore_sequential"`
	Parallel   bench.Throughput `json:"explore_parallel"`
	Speedup    float64          `json:"speedup"`
	// SpeedupNote flags a degenerate speedup figure (schema v4): when
	// the parallel leg ran with one worker or on one schedulable CPU,
	// speedup ~1.0 is expected and says nothing about the explorer.
	SpeedupNote string                 `json:"speedup_note,omitempty"`
	Reduction   bench.ReductionBench   `json:"reduction"`
	Shrink      bench.ShrinkThroughput `json:"shrink"`
	// Progress is the measured wait-free vs lock-based progress
	// distribution pair (schema v4). Deterministic given its seeded
	// model and replay count, so the committed value is reproducible on
	// any machine.
	Progress *bench.ProgressBench `json:"progress,omitempty"`
}

func main() {
	var (
		out      = flag.String("o", "BENCH_explore.json", "output path")
		parallel = flag.Int("parallel", 0, "workers for the parallel leg (0 = all CPUs)")
		budget   = flag.Int("shrink-budget", 0, "shrink candidate budget (0 = internal/minimize default)")
		gate     = flag.Bool("gate", false, "regression gate: run the plain and reduced explore legs, compare against -baseline, exit 1 on a drop larger than -gate-drop")
		baseline = flag.String("baseline", "BENCH_explore.json", "committed baseline for -gate")
		gateDrop = flag.Float64("gate-drop", 0.25, "max tolerated fractional throughput drop for -gate")
		model    = flag.String("model", "", "scheduler model for the progress measurement pair (\"\" = bench default)")
		replays  = flag.Int("replays", 2000, "replay count for the progress measurement pair")
	)
	flag.Parse()

	if *gate {
		runGate(*baseline, *gateDrop)
		return
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	seq, err := bench.ExploreThroughput(1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: sequential: %d schedules in %.2fs (%.0f/sec, %.2f allocs/schedule)\n",
		seq.Schedules, seq.Seconds, seq.PerSec, seq.AllocsPerSchedule)
	par, err := bench.ExploreThroughput(workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: parallel(%d): %d schedules in %.2fs (%.0f/sec, %.2fx, %d steals)\n",
		workers, par.Schedules, par.Seconds, par.PerSec, par.PerSec/seq.PerSec, par.Steals)
	red, err := bench.MeasureReduction(workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: reduction(%s): %d -> %d schedules (%.1fx fewer), %d runs incl. pruned, %.0f/sec reduced (%.2fx plain per-run cost)\n",
		red.Mode, red.PlainSchedules, red.ReducedSchedules, red.Ratio, red.ReducedRuns, red.ReducedPerSec, red.CostRatio)
	shr, err := bench.MeasureShrink(*budget)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: shrink: %d candidate replays in %.2fs (%.0f/sec), %d -> %d decisions\n",
		shr.Candidates, shr.Seconds, shr.PerSec, shr.FromDecisions, shr.ToDecisions)
	prog, err := bench.MeasureProgress(*model, *replays, workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: progress(%s, %d replays): waitfree max %d (bound %d, %d censored) vs lockbased worst %d (%d censored): gap %.1fx\n",
		prog.Model, prog.Replays, prog.WaitFree.Max, prog.WaitFree.DeclaredBound, prog.WaitFree.Censored,
		max(prog.Locked.Max, prog.Locked.CensoredMax), prog.Locked.Censored, prog.Gap)

	gmp := runtime.GOMAXPROCS(0)
	var note string
	if workers == 1 || gmp == 1 {
		note = fmt.Sprintf("parallel leg ran with %d worker(s) at GOMAXPROCS=%d; speedup is not a parallelism measurement", workers, gmp)
		fmt.Printf("benchjson: note: %s\n", note)
	}
	rep := report{
		Version:     4,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		CPUs:        runtime.NumCPU(),
		GoMaxProcs:  gmp,
		Sequential:  seq,
		Parallel:    par,
		Speedup:     par.PerSec / seq.PerSec,
		SpeedupNote: note,
		Reduction:   red,
		Shrink:      shr,
		Progress:    &prog,
	}
	entry, err := json.Marshal(rep)
	if err != nil {
		fatal(err)
	}
	// The output file is a bench.History: {"latest": <this report>,
	// "history": [...]} — the stable `latest` key is what `make
	// bench-gate` and the server's GET /bench read, while history keeps
	// the trajectory across PRs. A pre-history bare report upgrades in
	// place on the first append.
	prev, err := os.ReadFile(*out)
	if err != nil && !os.IsNotExist(err) {
		fatal(err)
	}
	file, err := bench.AppendHistory(prev, entry)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, file, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %s\n", *out)
}

// gateAttempts is how many times the gate re-times each leg, keeping
// the best rate. A loaded or frequency-throttled CI box can halve any
// single timing; the best of a few attempts approximates what the
// machine can actually do, which is what a regression gate should
// compare against the baseline.
const gateAttempts = 3

// runGate is the CI regression gate (`make bench-gate`): it re-times
// the sequential plain leg and the reduced leg (best of gateAttempts
// each) and fails if either schedules/sec figure drops more than drop
// below the committed baseline, if the reduced-mode per-run cost ratio
// rises more than drop above it, or if the progress measurement's
// starvation gap falls more than drop below it. Only regressions fail;
// improvements and baseline-schema gaps (e.g. a pre-v3 baseline
// without a cost ratio, or a pre-v4 one without a progress section)
// pass with a note, so the gate never blocks the PR that introduces
// each figure.
func runGate(baselinePath string, drop float64) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(fmt.Errorf("gate: reading baseline: %w", err))
	}
	// ParseHistory accepts both the history wrapper and a legacy bare
	// report, so the gate works against baselines from either era.
	h, err := bench.ParseHistory(data)
	if err != nil {
		fatal(fmt.Errorf("gate: parsing baseline %s: %w", baselinePath, err))
	}
	if h.Latest == nil {
		fatal(fmt.Errorf("gate: baseline %s has no entries", baselinePath))
	}
	var base report
	if err := json.Unmarshal(h.Latest, &base); err != nil {
		fatal(fmt.Errorf("gate: parsing baseline %s latest entry: %w", baselinePath, err))
	}
	var seqRate, redRate float64
	costRatio := 0.0
	for i := 0; i < gateAttempts; i++ {
		seq, err := bench.ExploreThroughput(1)
		if err != nil {
			fatal(err)
		}
		red, err := bench.MeasureReduction(1)
		if err != nil {
			fatal(err)
		}
		seqRate = max(seqRate, seq.PerSec)
		redRate = max(redRate, red.ReducedPerSec)
		// The cost ratio is a cost: keep the best (lowest) attempt, the
		// same way the rates keep the best (highest).
		if costRatio == 0 || red.CostRatio < costRatio {
			costRatio = red.CostRatio
		}
	}
	failed := false
	checkLeg := func(name string, now, was float64) {
		if was <= 0 {
			fmt.Printf("benchjson: gate: %s: no baseline figure, skipping\n", name)
			return
		}
		floor := was * (1 - drop)
		verdict := "ok"
		if now < floor {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchjson: gate: %s: %.0f/sec vs baseline %.0f/sec (floor %.0f): %s\n",
			name, now, was, floor, verdict)
	}
	checkLeg("plain explore", seqRate, base.Sequential.PerSec)
	checkLeg("reduced explore", redRate, base.Reduction.ReducedPerSec)
	if was := base.Reduction.CostRatio; was <= 0 {
		fmt.Printf("benchjson: gate: reduced cost ratio: no baseline figure, skipping\n")
	} else {
		ceiling := was * (1 + drop)
		verdict := "ok"
		if costRatio > ceiling {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchjson: gate: reduced cost ratio: %.2fx vs baseline %.2fx (ceiling %.2fx): %s\n",
			costRatio, was, ceiling, verdict)
	}
	if base.Progress == nil || base.Progress.Gap <= 0 {
		fmt.Printf("benchjson: gate: progress gap: no baseline figure, skipping\n")
	} else {
		// Re-measure with the baseline's own model and replay count: the
		// measurement is a deterministic function of both, so on any
		// machine the gap should land exactly on the baseline — the
		// tolerance only buys room for deliberate workload retunes.
		prog, err := bench.MeasureProgress(base.Progress.Model, base.Progress.Replays, 1)
		if err != nil {
			fatal(fmt.Errorf("gate: progress measurement: %w", err))
		}
		floor := base.Progress.Gap * (1 - drop)
		verdict := "ok"
		if prog.Gap < floor {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchjson: gate: progress gap: %.1fx vs baseline %.1fx (floor %.1f): %s\n",
			prog.Gap, base.Progress.Gap, floor, verdict)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: gate: regressed more than %.0f%% against %s\n", drop*100, baselinePath)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
