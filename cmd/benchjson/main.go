// Command benchjson measures explorer and shrinker throughput and
// writes a machine-readable JSON data point, the repo's bench
// trajectory across PRs (`make bench-json` → BENCH_explore.json). The
// format is documented in EXPERIMENTS.md ("Bench trajectory").
//
// Usage:
//
//	benchjson                       # writes BENCH_explore.json
//	benchjson -o out.json
//	benchjson -parallel 4           # worker count for the parallel leg
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
)

// report is the BENCH_explore.json schema, version 2 (version 2 added
// the reduction comparison).
type report struct {
	Version    int                    `json:"version"`
	Timestamp  string                 `json:"timestamp"`
	GoVersion  string                 `json:"go"`
	CPUs       int                    `json:"cpus"`
	Sequential bench.Throughput       `json:"explore_sequential"`
	Parallel   bench.Throughput       `json:"explore_parallel"`
	Speedup    float64                `json:"speedup"`
	Reduction  bench.ReductionBench   `json:"reduction"`
	Shrink     bench.ShrinkThroughput `json:"shrink"`
}

func main() {
	var (
		out      = flag.String("o", "BENCH_explore.json", "output path")
		parallel = flag.Int("parallel", 0, "workers for the parallel leg (0 = all CPUs)")
		budget   = flag.Int("shrink-budget", 0, "shrink candidate budget (0 = internal/minimize default)")
	)
	flag.Parse()

	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	seq, err := bench.ExploreThroughput(1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: sequential: %d schedules in %.2fs (%.0f/sec)\n",
		seq.Schedules, seq.Seconds, seq.PerSec)
	par, err := bench.ExploreThroughput(workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: parallel(%d): %d schedules in %.2fs (%.0f/sec, %.2fx)\n",
		workers, par.Schedules, par.Seconds, par.PerSec, par.PerSec/seq.PerSec)
	red, err := bench.MeasureReduction(workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: reduction(%s): %d -> %d schedules (%.1fx fewer), %.0f/sec reduced\n",
		red.Mode, red.PlainSchedules, red.ReducedSchedules, red.Ratio, red.ReducedPerSec)
	shr, err := bench.MeasureShrink(*budget)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: shrink: %d candidate replays in %.2fs (%.0f/sec), %d -> %d decisions\n",
		shr.Candidates, shr.Seconds, shr.PerSec, shr.FromDecisions, shr.ToDecisions)

	rep := report{
		Version:    2,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		Sequential: seq,
		Parallel:   par,
		Speedup:    par.PerSec / seq.PerSec,
		Reduction:  red,
		Shrink:     shr,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
