// Command shrink minimizes a counterexample repro bundle to a kernel a
// human can read straight off the timeline.
//
// The input is either a bundle written by cmd/checker -artifact-dir,
// cmd/soak -artifact-dir, or internal/artifact directly — or a captured
// soak log, in which case the machine-readable last-line JSON summary is
// parsed and its "artifact" path loaded. The bundle is replayed,
// shrunk (ddmin chunk removal, per-decision lowering, crash-point
// removal, quantum/level lowering; every accepted candidate re-verified
// by a fresh replay), and the minimized bundle written back out. Before
// and after ASCII timelines are printed so the reduction is visible.
//
// Usage:
//
//	shrink bundle.json                      # writes bundle.min.json
//	shrink -o small.json bundle.json
//	shrink -budget 2000 bundle.json         # more candidate replays
//	shrink -match wait-freedom bundle.json  # preserve the failure kind
//	shrink soak.log                         # follow the log's "artifact" path
//	shrink -q bundle.json                   # stats only, no timelines
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/artifact"
	"repro/internal/minimize"
)

func main() {
	var (
		out    = flag.String("o", "", "output path for the minimized bundle (default <input>.min.json)")
		budget = flag.Int("budget", 0, "candidate replays allowed (0 = internal/minimize default)")
		match  = flag.String("match", "", "only accept candidates whose error contains this substring (default: any failure)")
		quiet  = flag.Bool("q", false, "suppress the before/after timelines")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: shrink [-o out.json] [-budget N] [-match substr] [-q] <bundle.json | soak.log>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	in := flag.Arg(0)

	b, src, err := load(in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("shrink: loaded %s (workload %q, %s)\n", src, b.Meta.Workload, describe(b))

	// The bundle's recorded state is advisory; show the pre-shrink run
	// from a fresh replay so the "before" picture cannot be stale.
	rep, err := artifact.Replay(b, artifact.ReplayOptions{Trace: true})
	if err != nil {
		fatal(err)
	}
	if rep.Err == nil {
		fatal(fmt.Errorf("bundle does not fail its property; nothing to shrink"))
	}
	fmt.Printf("shrink: before: %v (%d steps)\n", rep.Err, rep.Steps)
	if !*quiet {
		fmt.Printf("\n--- before ---\n%s\n", rep.Trace)
	}

	opts := minimize.Options{Budget: *budget}
	if *match != "" {
		opts.Match = func(err error) bool { return strings.Contains(err.Error(), *match) }
	}
	min, stats, err := minimize.Shrink(b, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("shrink: %s\n", stats)
	fmt.Printf("shrink: after: %s\n", min.Err)
	fmt.Printf("shrink: decisions=%v crashes=%v\n", min.Sched.Decisions, min.Meta.Crashes)
	if !*quiet {
		fmt.Printf("\n--- after ---\n%s\n", min.Trace)
	}

	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(src, ".json") + ".min.json"
	}
	if err := min.Save(dst); err != nil {
		fatal(err)
	}
	fmt.Printf("shrink: minimized bundle written to %s\n", dst)
}

// load reads the input as a repro bundle, or — when it is a soak log —
// follows the "artifact" path in the log's last-line JSON summary. It
// returns the bundle and the path it was actually loaded from.
func load(path string) (*artifact.Bundle, string, error) {
	b, berr := artifact.Load(path)
	if berr == nil {
		return b, path, nil
	}
	art, serr := soakArtifact(path)
	if serr != nil {
		return nil, "", fmt.Errorf("%s is neither a repro bundle (%v) nor a soak log (%v)", path, berr, serr)
	}
	b, err := artifact.Load(art)
	if err != nil {
		return nil, "", err
	}
	return b, art, nil
}

// soakArtifact extracts the "artifact" path from the last non-empty
// line of a cmd/soak log.
func soakArtifact(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	last := strings.TrimSpace(lines[len(lines)-1])
	var summary struct {
		Failed   bool   `json:"failed"`
		Artifact string `json:"artifact"`
	}
	if err := json.Unmarshal([]byte(last), &summary); err != nil {
		return "", fmt.Errorf("last line is not a soak summary: %w", err)
	}
	if !summary.Failed {
		return "", fmt.Errorf("soak summary reports no failure")
	}
	if summary.Artifact == "" {
		return "", fmt.Errorf("soak summary names no artifact (was soak run with -artifact-dir?)")
	}
	return summary.Artifact, nil
}

func describe(b *artifact.Bundle) string {
	if b.Sched.Random {
		return fmt.Sprintf("random schedule seed %d, %d planned crashes", b.Sched.Seed, len(b.Meta.Crashes))
	}
	return fmt.Sprintf("%d decisions, %d planned crashes", len(b.Sched.Decisions), len(b.Meta.Crashes))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "shrink: %v\n", err)
	os.Exit(1)
}
