// Command server runs the checker farm: a long-running HTTP service
// that accepts check and soak jobs over REST (internal/service),
// schedules them multi-tenant over the shared exploration engine, and
// persists everything in an internal/store directory so jobs survive
// restarts — on boot every job that was queued or running when the
// previous process died is resumed from its last checkpoint.
//
// Usage:
//
//	server -addr :8080 -store ./farm
//	server -addr :8080 -store ./farm -workers 4 -max-jobs 2 -queue 16
//
// Submit jobs with curl (see README.md "Running the farm"):
//
//	curl -X POST localhost:8080/jobs -d '{"kind":"check","check":{"meta":{"workload":"unicons","n":2,"q":8,"max_steps":262144},"mode":"all"}}'
//	curl localhost:8080/jobs/job-000001
//	curl localhost:8080/jobs/job-000001/events
//	curl -X DELETE localhost:8080/jobs/job-000001
//
// SIGINT/SIGTERM stop gracefully: running jobs are interrupted at
// their next durability boundary, checkpointed, and marked for resume;
// the process then exits 0. A second signal aborts immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		storeDir = flag.String("store", "./farm", "persistent store directory (jobs, artifacts, bench history)")
		workers  = flag.Int("workers", 0, "global exploration-worker budget shared across jobs (0 = all CPUs)")
		maxJobs  = flag.Int("max-jobs", 0, "max concurrently running jobs (0 = 2)")
		queue    = flag.Int("queue", 0, "bounded job-queue depth; a full queue rejects submissions (0 = 16)")
		leg      = flag.Int("leg", 0, "schedules per durability leg for check jobs (0 = 2000)")
	)
	flag.Parse()

	st, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
	svc, err := service.New(service.Config{
		Store:         st,
		GlobalWorkers: *workers,
		MaxActiveJobs: *maxJobs,
		QueueDepth:    *queue,
		LegSchedules:  *leg,
		Log:           func(msg string) { fmt.Fprintln(os.Stderr, "server: "+msg) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "server: signal received; interrupting jobs at their next checkpoint (signal again to abort)")
		go func() {
			<-sigs
			fmt.Fprintln(os.Stderr, "server: second signal; aborting")
			os.Exit(130)
		}()
		// Stop accepting and running work first, then close the listener:
		// in-flight event streams end when the service shuts down.
		svc.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		close(done)
	}()

	fmt.Printf("server: listening on %s, store %s\n", *addr, *storeDir)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("server: graceful shutdown complete")
}
