// Command quantumsweep regenerates the paper's Table 1 empirically
// (experiment E1): for each consensus number C = P..2P it sweeps the
// scheduling quantum under an adversarial schedule battery and reports
// the largest failing and smallest working quantum.
//
// The battery's bounded-deviation leg runs with full reduction
// (sleep sets + fingerprint pruning) by default; reductions preserve
// verdicts, so the frontier is unchanged, only faster. -no-reduction
// restores the plain enumeration for cross-checking.
//
// Usage:
//
//	quantumsweep -p 2 -m 3 -v 1 -seeds 150
//	quantumsweep -p 2 -m 3 -no-reduction   # plain enumeration cross-check
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/check"
)

func main() {
	var (
		p        = flag.Int("p", 2, "processors")
		m        = flag.Int("m", 3, "processes per processor")
		v        = flag.Int("v", 1, "priority levels")
		seeds    = flag.Int("seeds", 150, "random schedules per battery")
		grid     = flag.String("grid", "", "comma-separated quantum grid (default built-in)")
		parallel = flag.Int("parallel", 0, "workers per schedule battery (0 = all CPUs, 1 = sequential)")
		noRed    = flag.Bool("no-reduction", false, "disable exploration reductions in the deviation battery leg (slower, same verdicts)")
	)
	flag.Parse()

	var qGrid []int
	if *grid != "" {
		for _, s := range strings.Split(*grid, ",") {
			q, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Printf("quantumsweep: bad grid entry %q: %v\n", s, err)
				return
			}
			qGrid = append(qGrid, q)
		}
	}
	red := check.ReductionFull
	if *noRed {
		red = check.ReductionNone
	}
	rows := bench.Table1SweepRed(*p, *m, *v, *seeds, qGrid, *parallel, red)
	fmt.Print(bench.RenderTable1(*p, *m, *v, rows))
}
