// Command soak stress-tests the full object stack for a configurable
// duration: randomized schedules over mixed workloads (Fig. 3 consensus,
// Fig. 5 C&S with and without reclamation, level-local objects,
// universal counter/queue/stack, Fig. 7 consensus), verifying every
// run's invariants. Runs are dispatched to a pool of workers; each run's
// workload is derived deterministically from the base seed and its run
// index, so a failure reproduces with the same -seed (and -crash-seed)
// at any -parallel setting.
//
// With -crashes > 0 every run additionally injects up to that many
// seeded random crash-stop faults, and the invariants are checked in
// their crash-tolerant form: survivors must agree and the queue may be
// short only by what crashed mid-operation.
//
// Exit status is non-zero on the first violation. The last line of
// stdout is a machine-readable JSON summary:
//
//	{"runs":N,"violations":V,"crashes":C,"failed":false}
//
// Usage:
//
//	soak -seconds 30
//	soak -runs 500        # fixed run count instead of a time budget
//	soak -runs 500 -parallel 1   # sequential
//	soak -runs 500 -crashes 2    # crash up to 2 processes per run
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	var (
		seconds   = flag.Int("seconds", 10, "time budget (ignored when -runs > 0)")
		runs      = flag.Int("runs", 0, "fixed number of runs (0 = use -seconds)")
		seed      = flag.Int64("seed", time.Now().UnixNano(), "base seed")
		parallel  = flag.Int("parallel", 0, "concurrent soak workers (0 = all CPUs)")
		crashes   = flag.Int("crashes", 0, "max crash-stop faults injected per run (capped at nprocs-1)")
		crashSeed = flag.Int64("crash-seed", 0, "base seed for crash injection (0 = derive from -seed)")
	)
	flag.Parse()

	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if *crashSeed == 0 {
		*crashSeed = *seed ^ 0x5deece66d
	}
	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	fmt.Printf("soak: base seed %d, crash seed %d, max crashes/run %d, %d workers\n",
		*seed, *crashSeed, *crashes, workers)

	var (
		next     atomic.Int64
		done     atomic.Int64
		injected atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		errRun   int64
		errOut   error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				idx := next.Add(1) - 1
				if *runs > 0 && idx >= int64(*runs) {
					return
				}
				if *runs == 0 && time.Now().After(deadline) {
					return
				}
				nCrashes, err := oneRun(*seed, *crashSeed, idx, *crashes)
				injected.Add(int64(nCrashes))
				if err != nil {
					mu.Lock()
					if errOut == nil || idx < errRun {
						errRun, errOut = idx, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if errOut != nil {
		fmt.Fprintf(os.Stderr, "soak: FAILED at run %d (base seed %d, crash seed %d) after %d clean runs: %v\n",
			errRun, *seed, *crashSeed, done.Load(), errOut)
		summary(done.Load(), 1, injected.Load(), true)
		os.Exit(1)
	}
	fmt.Printf("soak: %d runs clean, %d crashes injected\n", done.Load(), injected.Load())
	summary(done.Load(), 0, injected.Load(), false)
}

// summary prints the machine-readable last-line summary.
func summary(runs, violations, crashes int64, failed bool) {
	fmt.Printf("{\"runs\":%d,\"violations\":%d,\"crashes\":%d,\"failed\":%v}\n",
		runs, violations, crashes, failed)
}

// oneRun builds run idx's random mixed workload from the base seed,
// optionally injects up to maxCrashes crash-stop faults, and verifies
// the crash-tolerant invariants. It returns the number of crashes
// injected. All state is local to the call, so runs are safe to execute
// concurrently.
func oneRun(base, crashBase, idx int64, maxCrashes int) (int, error) {
	rng := rand.New(rand.NewSource(int64(uint64(base) + uint64(idx)*0x9e3779b97f4a7c15)))
	n := 2 + rng.Intn(6)
	levels := 1 + rng.Intn(3)
	quantum := repro.RecommendedQuantum + rng.Intn(32)
	seed := rng.Int63()

	k := maxCrashes
	if k > n-1 {
		k = n - 1 // wait-freedom is only meaningful with a survivor
	}
	var chooser repro.Scheduler = repro.NewRandomScheduler(seed)
	var crasher *repro.RandomCrashScheduler
	if k > 0 {
		crasher = repro.NewRandomCrashScheduler(chooser,
			int64(uint64(crashBase)+uint64(idx)*0x9e3779b97f4a7c15), k, 0)
		chooser = crasher
	}

	aud := repro.NewAuditor(quantum)
	sys := repro.NewSystem(repro.Config{
		Processors: 1,
		Quantum:    quantum,
		Chooser:    chooser,
		MaxSteps:   1 << 22,
		Observer:   aud,
	})
	cons := repro.NewConsensus("cons")
	cas := repro.NewReclaimingCAS("cas", levels, 0, 2)
	ctr := repro.NewCounter("ctr", 0)
	q := repro.NewQueue("q")

	// consOuts uses 0 as the "never finished" sentinel (proposals are
	// 1..n); ops are counted only when their invocation ran to the end,
	// so a crashed process's in-flight op is uncounted even if applied.
	consOuts := make([]repro.Word, n)
	procs := make([]*repro.Process, n)
	incs := 0
	enqs, deqs := 0, 0

	for i := 0; i < n; i++ {
		i := i
		procs[i] = sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1 + i%levels})
		p := procs[i]
		p.AddInvocation(func(c *repro.Ctx) {
			consOuts[i] = cons.Decide(c, repro.Word(i+1))
		})
		ops := 1 + rng.Intn(3)
		for op := 0; op < ops; op++ {
			switch rng.Intn(4) {
			case 0:
				p.AddInvocation(func(c *repro.Ctx) {
					for {
						v := cas.Read(c)
						if cas.CompareAndSwap(c, v, v+1) {
							incs++
							return
						}
					}
				})
			case 1:
				p.AddInvocation(func(c *repro.Ctx) {
					ctr.Inc(c)
					incs++
				})
			case 2:
				p.AddInvocation(func(c *repro.Ctx) {
					q.Enq(c, repro.Word(i))
					enqs++
				})
			default:
				p.AddInvocation(func(c *repro.Ctx) {
					if q.Deq(c) != repro.QueueEmpty {
						deqs++
					}
				})
			}
		}
	}
	nCrashes := func() int {
		if crasher == nil {
			return 0
		}
		return crasher.Injected
	}
	if err := sys.Run(); err != nil {
		return nCrashes(), fmt.Errorf("seed %d: run: %w", seed, err)
	}
	crashed := 0
	decided := repro.Word(0)
	for i, p := range procs {
		if p.Crashed() {
			crashed++
			continue
		}
		if consOuts[i] == 0 || consOuts[i] == repro.Bottom {
			return nCrashes(), fmt.Errorf("seed %d: survivor %d never decided: %v", seed, i, consOuts)
		}
		if decided == 0 {
			decided = consOuts[i]
		} else if consOuts[i] != decided {
			return nCrashes(), fmt.Errorf("seed %d: consensus disagreement at %d: %v", seed, i, consOuts)
		}
	}
	for i, p := range procs {
		if p.Crashed() && consOuts[i] != 0 && consOuts[i] != decided {
			return nCrashes(), fmt.Errorf("seed %d: crashed process %d recorded %d != decided %d",
				seed, i, consOuts[i], decided)
		}
	}
	// Each crashed process has at most one in-flight queue op that may
	// have been applied without being counted, so the imbalance is
	// bounded by the crash count (and is exactly 0 without crashes).
	if d := deqs + q.PeekLen() - enqs; d < -crashed || d > crashed {
		return nCrashes(), fmt.Errorf("seed %d: queue imbalance %d exceeds %d crashes: %d deq + %d left vs %d enq",
			seed, d, crashed, deqs, q.PeekLen(), enqs)
	}
	if err := aud.Err(); err != nil {
		return nCrashes(), fmt.Errorf("seed %d: %w", seed, err)
	}
	return nCrashes(), nil
}
