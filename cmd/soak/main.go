// Command soak stress-tests the full object stack for a configurable
// duration: randomized schedules over mixed workloads (Fig. 3 consensus,
// Fig. 5 C&S with reclamation, universal counter/queue), verifying every
// run's crash-tolerant invariants plus an independent Axiom 1/2 auditor.
// Each run is the registered "soakmix" artifact workload with its
// parameters and schedule derived deterministically from the base seed
// and the run index (artifact.SoakMeta), so a failure reproduces with
// the same -seed (and -crash-seed) at any -parallel setting — and can be
// saved as a replayable repro bundle.
//
// With -workload the campaign instead pins every run to one registered
// workload family (e.g. lockcounter) with fixed -n/-v/-q/-waitfree-bound
// parameters; only the seeded schedule and crash plan vary per run
// (artifact.SeededMeta). The workload choice is part of the campaign
// identity, so a fixed-workload state directory cannot be resumed as a
// soakmix sweep or vice versa.
//
// With -crashes > 0 every run additionally injects up to that many
// seeded random crash-stop faults.
//
// The flags assemble an internal/service/jobspec.Soak — the same
// serializable job spec the job server (cmd/server) accepts over REST —
// so a CLI invocation and the equivalent POSTed job run identically.
//
// The runner is a durable campaign (internal/campaign). With -state-dir
// progress is journaled and checkpointed crash-safely: a campaign killed
// at any point — SIGKILL included — resumes exactly where it left off
// with
//
//	soak -resume <dir>
//
// which reads the full spec (seeds and workload parameters) back from
// the directory's checkpoint. -run-timeout arms a per-run watchdog that
// turns a stuck schedule into a recorded incident instead of a hang, and
// -mem-soft-mb sheds parallelism under memory pressure rather than
// dying.
//
// SIGINT/SIGTERM stop gracefully: in-flight runs finish, the summary is
// still printed, and with -state-dir the state is checkpointed for
// resume (exit 0); without one the interrupted run exits 130. A second
// signal aborts immediately.
//
// Exit status is non-zero on the first violation. With -artifact-dir
// (or a -state-dir, which defaults it to <dir>/artifacts) the failing
// run is written there as a repro bundle for cmd/shrink. The last line
// of stdout is a machine-readable JSON summary:
//
//	{"crashes":C,"failed":false,"interrupted":false,"runs":N,"timeouts":T,"violations":V}
//
// plus an "artifact":"<path>" field when a bundle was written and a
// "resumed":K field on resumed campaigns; cmd/shrink reads the "failed"
// and "artifact" fields directly from a captured soak log.
//
// Usage:
//
//	soak -seconds 30
//	soak -runs 500        # fixed run count instead of a time budget
//	soak -runs 500 -parallel 1   # sequential
//	soak -runs 500 -crashes 2    # crash up to 2 processes per run
//	soak -seconds 60 -crashes 2 -artifact-dir ./soak-artifacts
//	soak -runs 200 -workload lockcounter -n 2 -v 2 -q 4 -waitfree-bound 60
//	soak -runs 200 -sched-model markov:stay=0.9   # Markov-walk schedules, still seed-derived
//	soak -runs 100000 -state-dir ./campaign   # durable; kill it anytime
//	soak -resume ./campaign                   # continue where it stopped
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/service/jobspec"
)

func main() {
	var (
		seconds    = flag.Int("seconds", 10, "time budget (ignored when -runs > 0)")
		runs       = flag.Int64("runs", 0, "fixed number of runs (0 = use -seconds)")
		seed       = flag.Int64("seed", time.Now().UnixNano(), "base seed")
		parallel   = flag.Int("parallel", 0, "concurrent soak workers (0 = all CPUs)")
		crashes    = flag.Int("crashes", 0, "max crash-stop faults injected per run (capped at nprocs-1)")
		crashSeed  = flag.Int64("crash-seed", 0, "base seed for crash injection (0 = derive from -seed)")
		workload   = flag.String("workload", "", "pin every run to one registered workload family instead of the soakmix sweep")
		n          = flag.Int("n", 0, "processes for a fixed -workload (0 = workload default)")
		v          = flag.Int("v", 0, "priority levels for a fixed -workload (0 = workload default)")
		q          = flag.Int("q", 0, "scheduling quantum for a fixed -workload (0 = workload default)")
		wfBound    = flag.Int64("waitfree-bound", 0, "fail any fixed-workload run in which a live process exceeds this many of its own statements in one invocation (0 = off)")
		schedModel = flag.String("sched-model", "", "replace the seeded-random schedule source with a scheduler model (simple sched.ParseModelSpec specs, e.g. markov:stay=0.8; per-run seeds still derive from -seed)")
		artDir     = flag.String("artifact-dir", "", "write failing runs as repro bundles into this directory")
		stateDir   = flag.String("state-dir", "", "journal and checkpoint progress into this directory (crash-safe, resumable)")
		resume     = flag.String("resume", "", "resume the campaign persisted in this state directory (the spec is read from its checkpoint)")
		runTimeout = flag.Duration("run-timeout", 0, "per-run watchdog deadline: a run exceeding it twice is recorded as an incident and skipped (0 = off)")
		memSoftMB  = flag.Int64("mem-soft-mb", 0, "soft heap ceiling in MiB: under pressure, step worker count down instead of dying (0 = off)")
		ckptEvery  = flag.Int64("checkpoint-every", 0, "completed runs between checkpoint snapshots (0 = default)")
		keepGoing  = flag.Bool("keep-going", false, "record violations and continue instead of stopping at the first one")
	)
	flag.Parse()

	spec := &jobspec.Soak{
		Workload:        *workload,
		N:               *n,
		V:               *v,
		Quantum:         *q,
		WaitFreeBound:   *wfBound,
		Model:           *schedModel,
		Runs:            *runs,
		Seed:            *seed,
		CrashSeed:       *crashSeed,
		MaxCrashes:      *crashes,
		Parallelism:     *parallel,
		RunDeadlineMS:   runTimeout.Milliseconds(),
		CheckpointEvery: *ckptEvery,
		MemSoftMB:       *memSoftMB,
		KeepGoing:       *keepGoing,
	}
	dir := *stateDir
	if *resume != "" {
		if dir != "" && dir != *resume {
			fmt.Fprintln(os.Stderr, "soak: -resume and -state-dir name different directories")
			os.Exit(2)
		}
		dir = *resume
		cp, err := campaign.LoadCheckpoint(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			os.Exit(2)
		}
		if cp == nil {
			fmt.Fprintf(os.Stderr, "soak: nothing to resume in %s (no checkpoint)\n", dir)
			os.Exit(2)
		}
		restored := jobspec.SoakFromIdentity(cp.Identity)
		restored.Runs = spec.Runs
		restored.Parallelism = spec.Parallelism
		restored.RunDeadlineMS = spec.RunDeadlineMS
		restored.CheckpointEvery = spec.CheckpointEvery
		restored.MemSoftMB = spec.MemSoftMB
		restored.KeepGoing = spec.KeepGoing
		spec = restored
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(2)
	}

	workers := spec.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	fmt.Printf("soak: base seed %d, crash seed %d, max crashes/run %d, %d workers\n",
		spec.Seed, spec.ResolvedCrashSeed(), spec.MaxCrashes, workers)
	if spec.Workload != "" {
		fmt.Printf("soak: fixed workload %s (n=%d v=%d q=%d waitfree-bound=%d)\n",
			spec.Workload, spec.N, spec.V, spec.Quantum, spec.WaitFreeBound)
	}

	// Graceful stop: closed by the first signal or the -seconds timer.
	stop := make(chan struct{})
	var stopOnce sync.Once
	requestStop := func() { stopOnce.Do(func() { close(stop) }) }
	var signalled atomic.Bool

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		signalled.Store(true)
		fmt.Fprintln(os.Stderr, "soak: signal received; finishing in-flight runs (signal again to abort)")
		requestStop()
		<-sigs
		fmt.Fprintln(os.Stderr, "soak: second signal; aborting without checkpoint")
		os.Exit(130)
	}()

	if spec.Runs == 0 {
		timer := time.AfterFunc(time.Duration(*seconds)*time.Second, requestStop)
		defer timer.Stop()
	}

	cfg := spec.Config()
	cfg.StateDir = dir
	cfg.ArtifactDir = *artDir
	cfg.Stop = stop
	cfg.Log = func(msg string) { fmt.Fprintln(os.Stderr, "soak: "+msg) }
	res, err := campaign.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(2)
	}

	s := res.State
	interrupted := signalled.Load() || (spec.Runs > 0 && res.Interrupted)
	cleanRuns := s.Runs - int64(len(s.Violations)) - s.TimedOut
	artPath := ""
	if len(s.Violations) > 0 {
		artPath = s.Violations[0].Artifact
	}

	if res.Failed() {
		viol := s.Violations[0]
		if viol.Artifact != "" {
			fmt.Printf("soak: repro bundle written to %s\n", viol.Artifact)
		}
		fmt.Fprintf(os.Stderr, "soak: FAILED at run %d (base seed %d, crash seed %d) after %d clean runs: %s\n",
			viol.Idx, spec.Seed, spec.ResolvedCrashSeed(), cleanRuns, viol.Err)
		summary(&s, true, interrupted, artPath)
		os.Exit(1)
	}

	fmt.Printf("soak: %d runs clean, %d crashes injected, %d timed out\n", cleanRuns, s.Crashes, s.TimedOut)
	if interrupted && dir != "" {
		fmt.Printf("soak: state saved; continue with: soak -resume %s\n", dir)
	}
	summary(&s, false, interrupted, "")
	if signalled.Load() && dir == "" {
		os.Exit(130) // interrupted without durable state: nonzero, like a killed soak
	}
}

// summary prints the machine-readable last-line summary.
func summary(s *campaign.State, failed, interrupted bool, artifactPath string) {
	line := map[string]any{
		"runs": s.Runs, "violations": len(s.Violations), "crashes": s.Crashes,
		"timeouts": s.TimedOut, "failed": failed, "interrupted": interrupted,
	}
	if artifactPath != "" {
		line["artifact"] = artifactPath
	}
	if s.Resumed > 0 {
		line["resumed"] = s.Resumed
	}
	data, err := json.Marshal(line)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(data))
}
