// Command soak stress-tests the full object stack for a configurable
// duration: randomized schedules over mixed workloads (Fig. 3 consensus,
// Fig. 5 C&S with and without reclamation, level-local objects,
// universal counter/queue/stack, Fig. 7 consensus), verifying every
// run's invariants. Runs are dispatched to a pool of workers; each run's
// workload is derived deterministically from the base seed and its run
// index, so a failure reproduces with the same -seed at any -parallel
// setting. Exit status is non-zero on the first violation.
//
// Usage:
//
//	soak -seconds 30
//	soak -runs 500        # fixed run count instead of a time budget
//	soak -runs 500 -parallel 1   # sequential
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	var (
		seconds  = flag.Int("seconds", 10, "time budget (ignored when -runs > 0)")
		runs     = flag.Int("runs", 0, "fixed number of runs (0 = use -seconds)")
		seed     = flag.Int64("seed", time.Now().UnixNano(), "base seed")
		parallel = flag.Int("parallel", 0, "concurrent soak workers (0 = all CPUs)")
	)
	flag.Parse()

	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	fmt.Printf("soak: base seed %d, %d workers\n", *seed, workers)

	var (
		next   atomic.Int64
		done   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errRun int64
		errOut error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				idx := next.Add(1) - 1
				if *runs > 0 && idx >= int64(*runs) {
					return
				}
				if *runs == 0 && time.Now().After(deadline) {
					return
				}
				if err := oneRun(*seed, idx); err != nil {
					mu.Lock()
					if errOut == nil || idx < errRun {
						errRun, errOut = idx, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if errOut != nil {
		fmt.Fprintf(os.Stderr, "soak: FAILED at run %d (base seed %d) after %d clean runs: %v\n",
			errRun, *seed, done.Load(), errOut)
		os.Exit(1)
	}
	fmt.Printf("soak: %d runs clean\n", done.Load())
}

// oneRun builds run idx's random mixed workload from the base seed and
// verifies it. All state is local to the call, so runs are safe to
// execute concurrently.
func oneRun(base, idx int64) error {
	rng := rand.New(rand.NewSource(int64(uint64(base) + uint64(idx)*0x9e3779b97f4a7c15)))
	n := 2 + rng.Intn(6)
	levels := 1 + rng.Intn(3)
	quantum := repro.RecommendedQuantum + rng.Intn(32)
	seed := rng.Int63()

	aud := repro.NewAuditor(quantum)
	sys := repro.NewSystem(repro.Config{
		Processors: 1,
		Quantum:    quantum,
		Chooser:    repro.NewRandomScheduler(seed),
		MaxSteps:   1 << 22,
		Observer:   aud,
	})
	cons := repro.NewConsensus("cons")
	cas := repro.NewReclaimingCAS("cas", levels, 0, 2)
	ctr := repro.NewCounter("ctr", 0)
	q := repro.NewQueue("q")

	consOuts := make([]repro.Word, n)
	incs := 0
	enqs, deqs := 0, 0

	for i := 0; i < n; i++ {
		i := i
		p := sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1 + i%levels})
		p.AddInvocation(func(c *repro.Ctx) {
			consOuts[i] = cons.Decide(c, repro.Word(i+1))
		})
		ops := 1 + rng.Intn(3)
		for k := 0; k < ops; k++ {
			switch rng.Intn(4) {
			case 0:
				p.AddInvocation(func(c *repro.Ctx) {
					for {
						v := cas.Read(c)
						if cas.CompareAndSwap(c, v, v+1) {
							incs++
							return
						}
					}
				})
			case 1:
				p.AddInvocation(func(c *repro.Ctx) {
					ctr.Inc(c)
					incs++
				})
			case 2:
				p.AddInvocation(func(c *repro.Ctx) {
					q.Enq(c, repro.Word(i))
					enqs++
				})
			default:
				p.AddInvocation(func(c *repro.Ctx) {
					if q.Deq(c) != repro.QueueEmpty {
						deqs++
					}
				})
			}
		}
	}
	if err := sys.Run(); err != nil {
		return fmt.Errorf("seed %d: run: %w", seed, err)
	}
	for i, v := range consOuts {
		if v != consOuts[0] || v == repro.Bottom {
			return fmt.Errorf("seed %d: consensus disagreement at %d: %v", seed, i, consOuts)
		}
	}
	if deqs+q.PeekLen() != enqs {
		return fmt.Errorf("seed %d: queue lost items: %d deq + %d left != %d enq",
			seed, deqs, q.PeekLen(), enqs)
	}
	if err := aud.Err(); err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	return nil
}
