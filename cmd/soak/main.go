// Command soak stress-tests the full object stack for a configurable
// duration: randomized schedules over mixed workloads (Fig. 3 consensus,
// Fig. 5 C&S with reclamation, universal counter/queue), verifying every
// run's crash-tolerant invariants plus an independent Axiom 1/2 auditor.
// Each run is the registered "soakmix" artifact workload with its
// parameters and schedule derived deterministically from the base seed
// and the run index (artifact.SoakMeta), so a failure reproduces with
// the same -seed (and -crash-seed) at any -parallel setting — and can be
// saved as a replayable repro bundle.
//
// With -crashes > 0 every run additionally injects up to that many
// seeded random crash-stop faults.
//
// Exit status is non-zero on the first violation. With -artifact-dir the
// canonically first failing run is written there as a repro bundle for
// cmd/shrink. The last line of stdout is a machine-readable JSON
// summary:
//
//	{"runs":N,"violations":V,"crashes":C,"failed":false}
//
// plus an "artifact":"<path>" field when a bundle was written; cmd/shrink
// reads this line directly from a captured soak log.
//
// Usage:
//
//	soak -seconds 30
//	soak -runs 500        # fixed run count instead of a time budget
//	soak -runs 500 -parallel 1   # sequential
//	soak -runs 500 -crashes 2    # crash up to 2 processes per run
//	soak -seconds 60 -crashes 2 -artifact-dir ./soak-artifacts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
)

func main() {
	var (
		seconds   = flag.Int("seconds", 10, "time budget (ignored when -runs > 0)")
		runs      = flag.Int("runs", 0, "fixed number of runs (0 = use -seconds)")
		seed      = flag.Int64("seed", time.Now().UnixNano(), "base seed")
		parallel  = flag.Int("parallel", 0, "concurrent soak workers (0 = all CPUs)")
		crashes   = flag.Int("crashes", 0, "max crash-stop faults injected per run (capped at nprocs-1)")
		crashSeed = flag.Int64("crash-seed", 0, "base seed for crash injection (0 = derive from -seed)")
		artDir    = flag.String("artifact-dir", "", "write the first failing run as a repro bundle into this directory")
	)
	flag.Parse()

	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if *crashSeed == 0 {
		*crashSeed = *seed ^ 0x5deece66d
	}
	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	fmt.Printf("soak: base seed %d, crash seed %d, max crashes/run %d, %d workers\n",
		*seed, *crashSeed, *crashes, workers)

	var (
		next     atomic.Int64
		done     atomic.Int64
		injected atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		errRun   int64
		errOut   error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				idx := next.Add(1) - 1
				if *runs > 0 && idx >= int64(*runs) {
					return
				}
				if *runs == 0 && time.Now().After(deadline) {
					return
				}
				nCrashed, err := oneRun(*seed, *crashSeed, idx, *crashes)
				injected.Add(int64(nCrashed))
				if err != nil {
					mu.Lock()
					if errOut == nil || idx < errRun {
						errRun, errOut = idx, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if errOut != nil {
		// Re-capture the canonically first failing run as a repro
		// bundle: the trace-bearing bundle is the input to cmd/shrink.
		artPath := ""
		if *artDir != "" {
			meta, s := artifact.SoakMeta(*seed, *crashSeed, errRun, *crashes)
			if b, rep, err := artifact.Capture(meta, s); err != nil {
				fmt.Fprintf(os.Stderr, "soak: artifact capture failed: %v\n", err)
			} else if !rep.Failed() {
				fmt.Fprintf(os.Stderr, "soak: artifact replay of run %d did not reproduce the failure\n", errRun)
			} else if artPath, err = b.SaveDir(*artDir); err != nil {
				fmt.Fprintf(os.Stderr, "soak: %v\n", err)
				artPath = ""
			} else {
				fmt.Printf("soak: repro bundle written to %s\n", artPath)
			}
		}
		fmt.Fprintf(os.Stderr, "soak: FAILED at run %d (base seed %d, crash seed %d) after %d clean runs: %v\n",
			errRun, *seed, *crashSeed, done.Load(), errOut)
		summary(done.Load(), 1, injected.Load(), true, artPath)
		os.Exit(1)
	}
	fmt.Printf("soak: %d runs clean, %d crashes injected\n", done.Load(), injected.Load())
	summary(done.Load(), 0, injected.Load(), false, "")
}

// summary prints the machine-readable last-line summary.
func summary(runs, violations, crashes int64, failed bool, artifactPath string) {
	line := map[string]any{
		"runs": runs, "violations": violations, "crashes": crashes, "failed": failed,
	}
	if artifactPath != "" {
		line["artifact"] = artifactPath
	}
	data, err := json.Marshal(line)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(data))
}

// oneRun replays soak run idx — the "soakmix" artifact workload with
// SoakMeta-derived parameters, schedule, and crash plan — and verifies
// its crash-tolerant invariants. It returns the number of processes
// crashed by fault injection. All state is local to the call, so runs
// are safe to execute concurrently.
func oneRun(base, crashBase, idx int64, maxCrashes int) (int, error) {
	meta, s := artifact.SoakMeta(base, crashBase, idx, maxCrashes)
	rep, err := artifact.Replay(&artifact.Bundle{Version: artifact.Version, Meta: meta, Sched: s},
		artifact.ReplayOptions{})
	if err != nil {
		return 0, fmt.Errorf("run %d: %w", idx, err)
	}
	if rep.Err != nil {
		return rep.Crashed, fmt.Errorf("run %d (schedule seed %d): %w", idx, s.Seed, rep.Err)
	}
	return rep.Crashed, nil
}
