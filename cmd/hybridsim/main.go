// Command hybridsim runs the paper's algorithms on the simulated
// hybrid-scheduled system from command-line flags.
//
// Usage:
//
//	hybridsim -alg fig3 -n 8 -v 3 -q 8 -sched random:7
//	hybridsim -alg fig5 -n 6 -v 4 -ops 3 -q 32 -sched rotate
//	hybridsim -alg fig7 -p 3 -k 1 -m 2 -v 2 -q 2048 -sched random:1
//	hybridsim -alg fig9 -p 2 -k 0 -m 4 -v 2 -q 8 -sched rotate
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hybridsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		alg      = flag.String("alg", "fig3", "algorithm: fig3|fig5|fig7|fig9")
		n        = flag.Int("n", 4, "processes (fig3/fig5)")
		p        = flag.Int("p", 2, "processors (fig7/fig9)")
		k        = flag.Int("k", 0, "consensus-number surplus K, C=P+K (fig7/fig9)")
		m        = flag.Int("m", 2, "processes per processor (fig7/fig9)")
		v        = flag.Int("v", 1, "priority levels")
		ops      = flag.Int("ops", 2, "operations per process (fig5)")
		q        = flag.Int("q", 8, "scheduling quantum (statements)")
		schedStr = flag.String("sched", "random:1", "scheduler: first|rtc|rotate|random:<seed>|stagger:<period>:<phase>")
		showTr   = flag.Bool("trace", false, "render the interleaving timeline")
	)
	flag.Parse()

	switch *alg {
	case "fig3":
		res, err := core.RunUniConsensus(core.UniConsensusOpts{
			N: *n, V: *v, Quantum: *q, Scheduler: *schedStr, Trace: *showTr,
		})
		if err != nil {
			return err
		}
		fmt.Printf("fig3 consensus: N=%d V=%d Q=%d sched=%s\n", *n, *v, *q, *schedStr)
		fmt.Printf("decisions: %v  agreed=%v\n", res.Decisions, res.Agreed)
		fmt.Printf("steps=%d worst-op=%d stmts, preemptions=%d\n", res.Steps, res.WorstOpStmts, res.Preemptions)
		if *showTr {
			fmt.Print(res.Trace)
		}
	case "fig5":
		res, err := core.RunCASWorkload(core.CASWorkloadOpts{
			N: *n, V: *v, OpsPer: *ops, Quantum: *q, Scheduler: *schedStr,
		})
		if err != nil {
			return err
		}
		fmt.Printf("fig5 C&S counter: N=%d V=%d ops=%d Q=%d sched=%s\n", *n, *v, *ops, *q, *schedStr)
		fmt.Printf("final=%d want=%d steps=%d worst-op=%d stmts, max head walk=%d\n",
			res.Final, res.Want, res.Steps, res.WorstOpStmts, res.MaxWalk)
		if res.Final != res.Want {
			return fmt.Errorf("counter mismatch: %d != %d", res.Final, res.Want)
		}
	case "fig7", "fig9":
		res, err := core.RunMultiConsensus(core.MultiConsensusOpts{
			P: *p, K: *k, M: *m, V: *v, Quantum: *q,
			Scheduler: *schedStr, Fair: *alg == "fig9", Trace: *showTr,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s consensus: P=%d C=%d M=%d V=%d Q=%d sched=%s\n",
			*alg, *p, *p+*k, *m, *v, *q, *schedStr)
		fmt.Printf("decisions: %v  agreed=%v\n", res.Decisions, res.Agreed)
		fmt.Printf("steps=%d worst-op=%d stmts, preemptions=%d\n", res.Steps, res.WorstOpStmts, res.Preemptions)
		if *showTr {
			fmt.Print(res.Trace)
		}
	default:
		return fmt.Errorf("unknown -alg %q", *alg)
	}
	return nil
}
