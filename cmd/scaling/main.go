// Command scaling regenerates the paper's complexity-claim experiments
// as data series (DESIGN.md index E3, E4, E5, E8):
//
//	E3  Fig. 3 / Theorem 1 — constant stmts/op vs process count
//	E4  Fig. 5 / Theorem 2 — O(V) stmts/op vs priority levels (and
//	    independence from N)
//	E5  Fig. 7 / Theorem 4 — polynomial stmts/op vs processes/processor
//	E8  §1 complexity contrast — polynomial level count vs the 2^V
//	    shape of the prior priority-based construction [7]
//
// Usage:
//
//	scaling              # all series
//	scaling -exp e4      # one series
package main

import (
	"flag"
	"fmt"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: e3|e4|e5|e8|all")
	seed := flag.Int64("seed", 1, "scheduler seed")
	flag.Parse()

	if *exp == "e3" || *exp == "all" {
		pts := bench.Fig3Scaling([]int{1, 2, 4, 8, 16, 32, 64, 128}, *seed)
		fmt.Print(bench.RenderScaling(
			"E3: Fig. 3 consensus — stmts/op vs N (paper: constant, exactly 8)", "N", pts))
		fmt.Println()
	}
	if *exp == "e4" || *exp == "all" {
		pts := bench.Fig5Scaling([]int{1, 2, 4, 8, 16, 32}, 4, 2, *seed)
		fmt.Print(bench.RenderScaling(
			"E4: Fig. 5 C&S — stmts/op vs V (paper: O(V)), N=4 fixed", "V", pts))
		fmt.Println()
		pts = bench.Fig5ScalingN([]int{2, 4, 8, 16}, 4, 2, *seed)
		fmt.Print(bench.RenderScaling(
			"E4b: Fig. 5 C&S — stmts/op vs N (paper: independent of N), V=4 fixed", "N", pts))
		fmt.Println()
	}
	if *exp == "e5" || *exp == "all" {
		pts := bench.Fig7Scaling([]int{1, 2, 3, 4, 6}, 2, 1, 1, 2048, *seed)
		fmt.Print(bench.RenderScaling(
			"E5: Fig. 7 consensus — stmts/op vs M (paper: polynomial; L linear in M), P=2 C=3", "M", pts))
		fmt.Println()
	}
	if *exp == "e8" || *exp == "all" {
		fmt.Print(bench.ExpBaselineCurve([]int{1, 2, 4, 8, 12, 16}, 2, 1, 2))
	}
}
