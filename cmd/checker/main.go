// Command checker model-checks the paper's algorithms over schedule
// space: exhaustively for tiny configurations, with a context-switch
// deviation budget or random fuzzing for larger ones.
//
// Violations are reported with their canonical decision vectors; with
// -artifact-dir each one is additionally written as a replayable repro
// bundle (see internal/artifact and cmd/shrink), and -minimize shrinks
// every bundle to a minimal still-failing kernel first.
//
// Usage:
//
//	checker -alg fig3 -n 2 -q 8 -mode all
//	checker -alg fig3 -n 3 -q 2 -mode budget -budget 3   # finds the Q<8 violation
//	checker -alg fig7 -p 2 -q 2048 -mode fuzz -seeds 500
//	checker -alg fig7 -p 2 -mode all -timeout 30s        # partial results at the deadline
//	checker -alg fig3 -n 3 -waitfree-bound 8             # enforce the Theorem 1 step bound
//	checker -alg fig3 -n 3 -q 2 -minimize -artifact-dir ./artifacts
//	checker -alg fig3 -n 2 -q 0 -mode all -reduction full  # same verdict, far fewer schedules
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/artifact"
	"repro/internal/check"
)

func main() {
	var (
		alg        = flag.String("alg", "fig3", "algorithm: fig3|fig7")
		n          = flag.Int("n", 2, "processes (fig3)")
		v          = flag.Int("v", 1, "priority levels")
		p          = flag.Int("p", 2, "processors (fig7)")
		k          = flag.Int("k", 0, "C = P+K (fig7)")
		m          = flag.Int("m", 1, "processes per processor (fig7)")
		q          = flag.Int("q", 8, "scheduling quantum")
		mode       = flag.String("mode", "budget", "exploration: all|budget|fuzz")
		budget     = flag.Int("budget", 3, "context-switch deviation budget")
		seeds      = flag.Int("seeds", 500, "fuzz seeds")
		maxSch     = flag.Int("max", 200000, "schedule cap")
		parallel   = flag.Int("parallel", 0, "exploration workers (0 = all CPUs, 1 = sequential)")
		progress   = flag.Bool("progress", false, "report live schedules/sec and violation count on stderr")
		timeout    = flag.Duration("timeout", 0, "wall-clock bound; on expiry the exploration stops at a schedule boundary with partial results (0 = none)")
		wfBound    = flag.Int64("waitfree-bound", 0, "fail any run in which a live process exceeds this many of its own statements in one invocation (0 = off)")
		reduction  = flag.String("reduction", "none", "exploration reduction: none|sleepset|fingerprint|full (verdict-preserving; violation counts become lower bounds)")
		artDir     = flag.String("artifact-dir", "", "write a replayable repro bundle per violation into this directory")
		minimizeF  = flag.Bool("minimize", false, "shrink each violation to a minimal still-failing schedule before reporting")
		shrinkBudg = flag.Int("shrink-budget", 0, "candidate replays per shrunk violation (0 = internal/minimize default)")
	)
	flag.Parse()

	var meta artifact.Meta
	switch *alg {
	case "fig3":
		meta = artifact.Meta{Workload: "unicons", N: *n, V: *v, Quantum: *q, MaxSteps: 1 << 18}
	case "fig7":
		meta = artifact.Meta{Workload: "multicons", P: *p, K: *k, M: *m, V: *v, Quantum: *q, MaxSteps: 1 << 23}
	default:
		fmt.Fprintf(os.Stderr, "checker: unknown -alg %q\n", *alg)
		os.Exit(2)
	}
	build, err := check.BuilderFor(meta)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checker: %v\n", err)
		os.Exit(2)
	}

	red, err := check.ParseReduction(*reduction)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checker: %v\n", err)
		os.Exit(2)
	}
	opts := check.Options{MaxSchedules: *maxSch, Parallelism: *parallel, WaitFreeBound: *wfBound, Reduction: red}
	if *minimizeF || *artDir != "" {
		opts.ArtifactMeta = &meta
		opts.Minimize = *minimizeF
		opts.ShrinkBudget = *shrinkBudg
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Context = ctx
	}
	if *progress {
		opts.Progress = func(info check.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "checker: %d schedules, %d violations, %.0f schedules/sec\n",
				info.Schedules, info.Violations, info.SchedulesPerSec)
		}
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	fmt.Printf("exploring with %d workers\n", workers)
	var res *check.Result
	switch *mode {
	case "all":
		res = check.ExploreAll(build, opts)
	case "budget":
		res = check.ExploreBudget(build, *budget, opts)
	case "fuzz":
		res = check.Fuzz(build, *seeds, opts)
	default:
		fmt.Fprintf(os.Stderr, "checker: unknown -mode %q\n", *mode)
		os.Exit(2)
	}

	fmt.Printf("explored %d schedules (truncated=%v)\n", res.Schedules, res.Truncated)
	if rs := res.Reduction; rs != nil {
		fmt.Printf("reduction %s: %d sleep-deadlock runs, %d sleep-skipped branches, %d fingerprint-pruned runs\n",
			rs.Mode, rs.SleepDeadlockRuns, rs.SleepSkippedBranches, rs.FingerprintPrunedRuns)
		if rs.CacheHits > 0 || rs.CacheEntries > 0 {
			fmt.Printf("fingerprint cache: %d hits, %d entries, %d evictions\n",
				rs.CacheHits, rs.CacheEntries, rs.CacheEvictions)
		}
	}
	if res.Interrupted {
		fmt.Printf("interrupted by -timeout %v: results are partial\n", *timeout)
	}
	if res.StepLimited > 0 {
		fmt.Printf("%d runs hit the step limit (counted separately, not violations)\n", res.StepLimited)
	}
	if res.Aliased > 0 {
		fmt.Printf("skipped %d aliased replays (non-reentrant builder?)\n", res.Aliased)
	}
	if res.OK() {
		fmt.Println("no violations found")
		return
	}
	fmt.Printf("VIOLATIONS: %d recorded of %d total\n", len(res.Violations), res.ViolationsTotal)
	for i := range res.Violations {
		viol := &res.Violations[i]
		fmt.Printf("  %s: %v\n", viol.Schedule, viol.Err)
		if viol.Decisions != nil {
			fmt.Printf("    decisions=%v\n", viol.Decisions)
		}
		if viol.Shrink != nil {
			fmt.Printf("    shrunk: %s\n", viol.Shrink)
		}
		if viol.ForensicsErr != nil {
			fmt.Fprintf(os.Stderr, "checker: forensics failed for %s: %v\n", viol.Schedule, viol.ForensicsErr)
		}
		if viol.Artifact != nil && *artDir != "" {
			path, err := viol.Artifact.SaveDir(*artDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "checker: %v\n", err)
			} else {
				fmt.Printf("    artifact: %s\n", path)
			}
		}
	}
	os.Exit(1)
}
