// Command checker model-checks the paper's algorithms over schedule
// space: exhaustively for tiny configurations, with a context-switch
// deviation budget or random fuzzing for larger ones.
//
// Usage:
//
//	checker -alg fig3 -n 2 -q 8 -mode all
//	checker -alg fig3 -n 3 -q 2 -mode budget -budget 3   # finds the Q<8 violation
//	checker -alg fig7 -p 2 -q 2048 -mode fuzz -seeds 500
//	checker -alg fig7 -p 2 -mode all -timeout 30s        # partial results at the deadline
//	checker -alg fig3 -n 3 -waitfree-bound 8             # enforce the Theorem 1 step bound
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/sim"
	"repro/internal/unicons"
)

func main() {
	var (
		alg      = flag.String("alg", "fig3", "algorithm: fig3|fig7")
		n        = flag.Int("n", 2, "processes (fig3)")
		v        = flag.Int("v", 1, "priority levels")
		p        = flag.Int("p", 2, "processors (fig7)")
		k        = flag.Int("k", 0, "C = P+K (fig7)")
		m        = flag.Int("m", 1, "processes per processor (fig7)")
		q        = flag.Int("q", 8, "scheduling quantum")
		mode     = flag.String("mode", "budget", "exploration: all|budget|fuzz")
		budget   = flag.Int("budget", 3, "context-switch deviation budget")
		seeds    = flag.Int("seeds", 500, "fuzz seeds")
		maxSch   = flag.Int("max", 200000, "schedule cap")
		parallel = flag.Int("parallel", 0, "exploration workers (0 = all CPUs, 1 = sequential)")
		progress = flag.Bool("progress", false, "report live schedules/sec and violation count on stderr")
		timeout  = flag.Duration("timeout", 0, "wall-clock bound; on expiry the exploration stops at a schedule boundary with partial results (0 = none)")
		wfBound  = flag.Int64("waitfree-bound", 0, "fail any run in which a live process exceeds this many of its own statements in one invocation (0 = off)")
	)
	flag.Parse()

	var build check.Builder
	switch *alg {
	case "fig3":
		build = fig3Builder(*n, *v, *q)
	case "fig7":
		build = fig7Builder(multicons.Config{Name: "f7", P: *p, K: *k, M: *m, V: *v}, *q)
	default:
		fmt.Fprintf(os.Stderr, "checker: unknown -alg %q\n", *alg)
		os.Exit(2)
	}

	opts := check.Options{MaxSchedules: *maxSch, Parallelism: *parallel, WaitFreeBound: *wfBound}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Context = ctx
	}
	if *progress {
		opts.Progress = func(info check.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "checker: %d schedules, %d violations, %.0f schedules/sec\n",
				info.Schedules, info.Violations, info.SchedulesPerSec)
		}
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	fmt.Printf("exploring with %d workers\n", workers)
	var res *check.Result
	switch *mode {
	case "all":
		res = check.ExploreAll(build, opts)
	case "budget":
		res = check.ExploreBudget(build, *budget, opts)
	case "fuzz":
		res = check.Fuzz(build, *seeds, opts)
	default:
		fmt.Fprintf(os.Stderr, "checker: unknown -mode %q\n", *mode)
		os.Exit(2)
	}

	fmt.Printf("explored %d schedules (truncated=%v)\n", res.Schedules, res.Truncated)
	if res.Interrupted {
		fmt.Printf("interrupted by -timeout %v: results are partial\n", *timeout)
	}
	if res.StepLimited > 0 {
		fmt.Printf("%d runs hit the step limit (counted separately, not violations)\n", res.StepLimited)
	}
	if res.Aliased > 0 {
		fmt.Printf("skipped %d aliased replays (non-reentrant builder?)\n", res.Aliased)
	}
	if res.OK() {
		fmt.Println("no violations found")
		return
	}
	fmt.Printf("VIOLATIONS: %d recorded of %d total\n", len(res.Violations), res.ViolationsTotal)
	for _, viol := range res.Violations {
		fmt.Printf("  %s: %v\n", viol.Schedule, viol.Err)
	}
	os.Exit(1)
}

func fig3Builder(n, v, q int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: q, Chooser: ch, MaxSteps: 1 << 18})
		obj := unicons.New("cons")
		outs := make([]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			pri := 1
			if v > 1 {
				pri = 1 + i%v
			}
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: pri}).
				AddInvocation(func(c *sim.Ctx) { outs[i] = obj.Decide(c, mem.Word(i+1)) })
		}
		return sys, verifyAgreement(outs)
	}
}

func fig7Builder(cfg multicons.Config, q int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: cfg.P, Quantum: q, Chooser: ch, MaxSteps: 1 << 23})
		alg := multicons.New(cfg)
		n := cfg.P * cfg.M
		outs := make([]mem.Word, n)
		id := 0
		for i := 0; i < cfg.P; i++ {
			for j := 0; j < cfg.M; j++ {
				me := id
				sys.AddProcess(sim.ProcSpec{Processor: i, Priority: 1 + j%cfg.V}).
					AddInvocation(func(c *sim.Ctx) { outs[me] = alg.Decide(c, mem.Word(me+1)) })
				id++
			}
		}
		return sys, verifyAgreement(outs)
	}
}

func verifyAgreement(outs []mem.Word) check.Verify {
	return func(runErr error) error {
		if runErr != nil {
			return fmt.Errorf("run failed: %w", runErr)
		}
		for i, o := range outs {
			if o == mem.Bottom {
				return fmt.Errorf("process %d decided ⊥", i)
			}
			if o != outs[0] {
				return fmt.Errorf("agreement violated: %v", outs)
			}
		}
		return nil
	}
}
