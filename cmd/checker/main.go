// Command checker model-checks the paper's algorithms over schedule
// space: exhaustively for tiny configurations, with a context-switch
// deviation budget or random fuzzing for larger ones.
//
// Violations are reported with their canonical decision vectors; with
// -artifact-dir each one is additionally written as a replayable repro
// bundle (see internal/artifact and cmd/shrink), and -minimize shrinks
// every bundle to a minimal still-failing kernel first.
//
// The flags assemble an internal/service/jobspec.Check — the same
// serializable job spec the job server (cmd/server) accepts over REST —
// so a CLI invocation and the equivalent POSTed job run identically.
//
// Usage:
//
//	checker -alg fig3 -n 2 -q 8 -mode all
//	checker -alg fig3 -n 3 -q 2 -mode budget -budget 3   # finds the Q<8 violation
//	checker -alg fig7 -p 2 -q 2048 -mode fuzz -seeds 500
//	checker -alg fig7 -p 2 -mode all -timeout 30s        # partial results at the deadline
//	checker -alg fig3 -n 3 -waitfree-bound 8             # enforce the Theorem 1 step bound
//	checker -alg fig3 -n 3 -q 2 -minimize -artifact-dir ./artifacts
//	checker -alg fig3 -n 2 -q 0 -mode all -reduction full  # same verdict, far fewer schedules
//	checker -alg fig7 -p 2 -mode all -timeout 30s -frontier-out f.json  # export the unexplored remainder
//	checker -alg fig7 -p 2 -mode all -frontier-in f.json                # ...and continue it later
//
// Exit status: 0 = exploration complete, no violations; 1 = violations
// found; 2 = usage error; 3 = interrupted by -timeout with no violation
// in the explored part (the verdict is partial, distinguishable from a
// clean complete run).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/service/jobspec"
)

func main() {
	var (
		alg        = flag.String("alg", "fig3", "algorithm: fig3|fig7")
		n          = flag.Int("n", 2, "processes (fig3)")
		v          = flag.Int("v", 1, "priority levels")
		p          = flag.Int("p", 2, "processors (fig7)")
		k          = flag.Int("k", 0, "C = P+K (fig7)")
		m          = flag.Int("m", 1, "processes per processor (fig7)")
		q          = flag.Int("q", 8, "scheduling quantum")
		mode       = flag.String("mode", "budget", "exploration: all|budget|fuzz")
		budget     = flag.Int("budget", 3, "context-switch deviation budget")
		seeds      = flag.Int("seeds", 500, "fuzz seeds")
		maxSch     = flag.Int("max", 200000, "schedule cap")
		parallel   = flag.Int("parallel", 0, "exploration workers (0 = all CPUs, 1 = sequential)")
		progress   = flag.Bool("progress", false, "report live schedules/sec and violation count on stderr")
		timeout    = flag.Duration("timeout", 0, "wall-clock bound; on expiry the exploration stops at a schedule boundary with partial results (0 = none)")
		wfBound    = flag.Int64("waitfree-bound", 0, "fail any run in which a live process exceeds this many of its own statements in one invocation (0 = off)")
		reduction  = flag.String("reduction", "none", "exploration reduction: none|sleepset|fingerprint|full (verdict-preserving; violation counts become lower bounds)")
		artDir     = flag.String("artifact-dir", "", "write a replayable repro bundle per violation into this directory")
		minimizeF  = flag.Bool("minimize", false, "shrink each violation to a minimal still-failing schedule before reporting")
		shrinkBudg = flag.Int("shrink-budget", 0, "candidate replays per shrunk violation (0 = internal/minimize default)")
		runDeadl   = flag.Duration("run-deadline", 0, "per-run wall-clock bound; a run exceeding it twice is skipped and counted, never hangs the exploration (0 = off)")
		memSoftMB  = flag.Int64("mem-soft-mb", 0, "soft heap ceiling in MiB: under pressure, shed the fingerprint cache and step workers down instead of dying (0 = off)")
		frontOut   = flag.String("frontier-out", "", "when the exploration is cut short, write the unexplored frontier to this file (modes all|budget, -reduction none)")
		frontIn    = flag.String("frontier-in", "", "seed the exploration from a frontier file written by -frontier-out instead of the root")
	)
	flag.Parse()

	var meta artifact.Meta
	switch *alg {
	case "fig3":
		meta = artifact.Meta{Workload: "unicons", N: *n, V: *v, Quantum: *q, MaxSteps: 1 << 18}
	case "fig7":
		meta = artifact.Meta{Workload: "multicons", P: *p, K: *k, M: *m, V: *v, Quantum: *q, MaxSteps: 1 << 23}
	default:
		fmt.Fprintf(os.Stderr, "checker: unknown -alg %q\n", *alg)
		os.Exit(2)
	}
	meta.WaitFreeBound = *wfBound
	spec := &jobspec.Check{
		Meta:          meta,
		Mode:          *mode,
		Budget:        *budget,
		Seeds:         *seeds,
		MaxSchedules:  *maxSch,
		Parallelism:   *parallel,
		Reduction:     *reduction,
		Artifacts:     *artDir != "",
		Minimize:      *minimizeF,
		ShrinkBudget:  *shrinkBudg,
		RunDeadlineMS: runDeadl.Milliseconds(),
		MemSoftMB:     *memSoftMB,
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "checker: %v\n", err)
		os.Exit(2)
	}
	build, err := spec.Builder()
	if err != nil {
		fmt.Fprintf(os.Stderr, "checker: %v\n", err)
		os.Exit(2)
	}
	opts, err := spec.Options()
	if err != nil {
		fmt.Fprintf(os.Stderr, "checker: %v\n", err)
		os.Exit(2)
	}

	if *frontOut != "" || *frontIn != "" {
		if !spec.Durable() {
			if *mode == "fuzz" {
				fmt.Fprintln(os.Stderr, "checker: frontier export/resume is for the tree explorers (-mode all|budget), not fuzz")
			} else {
				fmt.Fprintln(os.Stderr, "checker: frontier export/resume requires -reduction none (reduced explorations prune against in-memory state that a frontier cannot carry)")
			}
			os.Exit(2)
		}
		opts.ExportFrontier = *frontOut != ""
	}
	if *frontIn != "" {
		data, err := os.ReadFile(*frontIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checker: %v\n", err)
			os.Exit(2)
		}
		f := &check.Frontier{}
		if err := json.Unmarshal(data, f); err != nil {
			fmt.Fprintf(os.Stderr, "checker: frontier %s: %v\n", *frontIn, err)
			os.Exit(2)
		}
		if f.Empty() {
			fmt.Println("frontier is empty: the exported exploration had already completed")
			return
		}
		opts.SeedFrontier = f
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Context = ctx
	}
	if *progress {
		opts.Progress = func(info check.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "checker: %d schedules, %d violations, %.0f schedules/sec\n",
				info.Schedules, info.Violations, info.SchedulesPerSec)
		}
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	fmt.Printf("exploring with %d workers\n", workers)
	res := spec.Run(build, opts)

	fmt.Printf("explored %d schedules (truncated=%v)\n", res.Schedules, res.Truncated)
	if rs := res.Reduction; rs != nil {
		fmt.Printf("reduction %s: %d sleep-deadlock runs, %d sleep-skipped branches, %d fingerprint-pruned runs\n",
			rs.Mode, rs.SleepDeadlockRuns, rs.SleepSkippedBranches, rs.FingerprintPrunedRuns)
		if rs.CacheHits > 0 || rs.CacheEntries > 0 {
			fmt.Printf("fingerprint cache: %d hits, %d entries, %d evictions\n",
				rs.CacheHits, rs.CacheEntries, rs.CacheEvictions)
		}
	}
	if res.Interrupted {
		fmt.Printf("interrupted by -timeout %v: results are partial (%d schedules explored, %d violations, %d work steals)\n",
			*timeout, res.Schedules, res.ViolationsTotal, res.Steals)
	}
	if res.TimedOutRuns > 0 {
		fmt.Printf("%d runs exceeded -run-deadline %v twice and were skipped (coverage is partial)\n",
			res.TimedOutRuns, *runDeadl)
	}
	for _, ev := range res.Degradations {
		fmt.Printf("degraded: %s\n", ev)
	}
	if *frontOut != "" {
		if res.Frontier == nil {
			fmt.Println("exploration ran to completion: no frontier to export")
		} else {
			data, err := json.MarshalIndent(res.Frontier, "", " ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "checker: encode frontier: %v\n", err)
				os.Exit(2)
			}
			if err := os.WriteFile(*frontOut, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "checker: %v\n", err)
				os.Exit(2)
			}
			fmt.Printf("frontier: %d unexplored subtrees written to %s (continue with -frontier-in)\n",
				len(res.Frontier.Items), *frontOut)
		}
	}
	if res.StepLimited > 0 {
		fmt.Printf("%d runs hit the step limit (counted separately, not violations)\n", res.StepLimited)
	}
	if res.Aliased > 0 {
		fmt.Printf("skipped %d aliased replays (non-reentrant builder?)\n", res.Aliased)
	}
	if res.OK() {
		fmt.Println("no violations found")
		if res.Interrupted {
			os.Exit(3) // clean so far, but the verdict is partial
		}
		return
	}
	fmt.Printf("VIOLATIONS: %d recorded of %d total\n", len(res.Violations), res.ViolationsTotal)
	for i := range res.Violations {
		viol := &res.Violations[i]
		fmt.Printf("  %s: %v\n", viol.Schedule, viol.Err)
		if viol.Decisions != nil {
			fmt.Printf("    decisions=%v\n", viol.Decisions)
		}
		if viol.Shrink != nil {
			fmt.Printf("    shrunk: %s\n", viol.Shrink)
		}
		if viol.ForensicsErr != nil {
			fmt.Fprintf(os.Stderr, "checker: forensics failed for %s: %v\n", viol.Schedule, viol.ForensicsErr)
		}
		if viol.Artifact != nil && *artDir != "" {
			path, err := viol.Artifact.SaveDir(*artDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "checker: %v\n", err)
			} else {
				fmt.Printf("    artifact: %s\n", path)
			}
		}
	}
	os.Exit(1)
}
