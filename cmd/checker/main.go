// Command checker model-checks the paper's algorithms over schedule
// space: exhaustively for tiny configurations, with a context-switch
// deviation budget or random fuzzing for larger ones.
//
// Violations are reported with their canonical decision vectors; with
// -artifact-dir each one is additionally written as a replayable repro
// bundle (see internal/artifact and cmd/shrink), and -minimize shrinks
// every bundle to a minimal still-failing kernel first.
//
// The flags assemble an internal/service/jobspec.Check — the same
// serializable job spec the job server (cmd/server) accepts over REST —
// so a CLI invocation and the equivalent POSTed job run identically.
//
// Usage:
//
//	checker -alg fig3 -n 2 -q 8 -mode all
//	checker -alg fig3 -n 3 -q 2 -mode budget -budget 3   # finds the Q<8 violation
//	checker -alg fig7 -p 2 -q 2048 -mode fuzz -seeds 500
//	checker -alg fig7 -p 2 -mode all -timeout 30s        # partial results at the deadline
//	checker -alg fig3 -n 3 -waitfree-bound 8             # enforce the Theorem 1 step bound
//	checker -alg fig3 -n 3 -q 2 -minimize -artifact-dir ./artifacts
//	checker -alg fig3 -n 2 -q 0 -mode all -reduction full  # same verdict, far fewer schedules
//	checker -alg fig7 -p 2 -mode all -timeout 30s -frontier-out f.json  # export the unexplored remainder
//	checker -alg fig7 -p 2 -mode all -frontier-in f.json                # ...and continue it later
//	checker -alg fig3 -n 3 -q 2 -mode fuzz -sched-model markov:stay=0.8,seed=7
//	checker -alg fig3 -n 3 -q 2 -measure -assert-max-within 8           # measured wait-freedom
//	checker -alg lockcounter -n 2 -v 2 -q 2 -max-steps 2000 -measure -assert-max-above 100
//
// -alg also accepts any registered workload name directly (fig3 and
// fig7 are aliases for unicons and multicons); -measure switches from
// checking to measuring — it fuzzes -replays runs under -sched-model
// and reports the per-invocation statement distribution
// (check.ProgressStats, written as JSON to -measure-out) instead of a
// verdict. The -assert-max-* flags turn a measurement into a CI
// assertion without any JSON postprocessing.
//
// Exit status: 0 = exploration complete, no violations; 1 = violations
// found (or a -measure assertion failed); 2 = usage error; 3 =
// interrupted by -timeout with no violation in the explored part (the
// verdict is partial, distinguishable from a clean complete run).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/service/jobspec"
)

func main() {
	var (
		alg        = flag.String("alg", "fig3", "algorithm: fig3|fig7, or any registered workload name")
		n          = flag.Int("n", 2, "processes (fig3)")
		v          = flag.Int("v", 1, "priority levels")
		p          = flag.Int("p", 2, "processors (fig7)")
		k          = flag.Int("k", 0, "C = P+K (fig7)")
		m          = flag.Int("m", 1, "processes per processor (fig7)")
		q          = flag.Int("q", 8, "scheduling quantum")
		mode       = flag.String("mode", "budget", "exploration: all|budget|fuzz")
		budget     = flag.Int("budget", 3, "context-switch deviation budget")
		seeds      = flag.Int("seeds", 500, "fuzz seeds")
		maxSch     = flag.Int("max", 200000, "schedule cap")
		parallel   = flag.Int("parallel", 0, "exploration workers (0 = all CPUs, 1 = sequential)")
		progress   = flag.Bool("progress", false, "report live schedules/sec and violation count on stderr")
		timeout    = flag.Duration("timeout", 0, "wall-clock bound; on expiry the exploration stops at a schedule boundary with partial results (0 = none)")
		wfBound    = flag.Int64("waitfree-bound", 0, "fail any run in which a live process exceeds this many of its own statements in one invocation (0 = off)")
		reduction  = flag.String("reduction", "none", "exploration reduction: none|sleepset|fingerprint|full (verdict-preserving; violation counts become lower bounds)")
		artDir     = flag.String("artifact-dir", "", "write a replayable repro bundle per violation into this directory")
		minimizeF  = flag.Bool("minimize", false, "shrink each violation to a minimal still-failing schedule before reporting")
		shrinkBudg = flag.Int("shrink-budget", 0, "candidate replays per shrunk violation (0 = internal/minimize default)")
		runDeadl   = flag.Duration("run-deadline", 0, "per-run wall-clock bound; a run exceeding it twice is skipped and counted, never hangs the exploration (0 = off)")
		memSoftMB  = flag.Int64("mem-soft-mb", 0, "soft heap ceiling in MiB: under pressure, shed the fingerprint cache and step workers down instead of dying (0 = off)")
		frontOut   = flag.String("frontier-out", "", "when the exploration is cut short, write the unexplored frontier to this file (modes all|budget, -reduction none)")
		frontIn    = flag.String("frontier-in", "", "seed the exploration from a frontier file written by -frontier-out instead of the root")
		maxSteps   = flag.Int64("max-steps", 0, "per-run simulator step limit (0 = per-algorithm default)")
		schedModel = flag.String("sched-model", "", "scheduler model for -mode fuzz and -measure (sched.ParseModelSpec grammar, e.g. markov:stay=0.8,seed=7; \"\" = seeded random / uniform)")
		measure    = flag.Bool("measure", false, "measure instead of check: fuzz -replays runs under -sched-model and report the per-invocation statement distribution")
		measureOut = flag.String("measure-out", "", "write the measured check.ProgressStats JSON to this file")
		replays    = flag.Int("replays", 0, "measured runs for -measure (0 = jobspec default)")
		maxAbove   = flag.Int64("assert-max-above", 0, "with -measure: exit 1 unless the observed worst case (completed or censored) exceeds this (negative-control assertion; 0 = off)")
		maxWithin  = flag.Int64("assert-max-within", 0, "with -measure: exit 1 unless every invocation completed within this many statements (wait-freedom assertion; 0 = off)")
	)
	flag.Parse()

	var meta artifact.Meta
	switch *alg {
	case "fig3", "unicons":
		meta = artifact.Meta{Workload: "unicons", N: *n, V: *v, Quantum: *q, MaxSteps: 1 << 18}
	case "fig7", "multicons":
		meta = artifact.Meta{Workload: "multicons", P: *p, K: *k, M: *m, V: *v, Quantum: *q, MaxSteps: 1 << 23}
	default:
		if !artifact.Known(*alg) {
			fmt.Fprintf(os.Stderr, "checker: unknown -alg %q (have fig3, fig7, %v)\n", *alg, artifact.Workloads())
			os.Exit(2)
		}
		meta = artifact.Meta{Workload: *alg, N: *n, V: *v, P: *p, K: *k, M: *m, Quantum: *q, MaxSteps: 1 << 18}
	}
	if *maxSteps > 0 {
		meta.MaxSteps = *maxSteps
	}
	meta.WaitFreeBound = *wfBound

	if *measure {
		runMeasure(meta, *schedModel, *replays, *parallel, *runDeadl, *measureOut, *maxAbove, *maxWithin, *progress)
		return
	}
	spec := &jobspec.Check{
		Meta:          meta,
		Mode:          *mode,
		Model:         *schedModel,
		Budget:        *budget,
		Seeds:         *seeds,
		MaxSchedules:  *maxSch,
		Parallelism:   *parallel,
		Reduction:     *reduction,
		Artifacts:     *artDir != "",
		Minimize:      *minimizeF,
		ShrinkBudget:  *shrinkBudg,
		RunDeadlineMS: runDeadl.Milliseconds(),
		MemSoftMB:     *memSoftMB,
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "checker: %v\n", err)
		os.Exit(2)
	}
	build, err := spec.Builder()
	if err != nil {
		fmt.Fprintf(os.Stderr, "checker: %v\n", err)
		os.Exit(2)
	}
	opts, err := spec.Options()
	if err != nil {
		fmt.Fprintf(os.Stderr, "checker: %v\n", err)
		os.Exit(2)
	}

	if *frontOut != "" || *frontIn != "" {
		if !spec.Durable() {
			if *mode == "fuzz" {
				fmt.Fprintln(os.Stderr, "checker: frontier export/resume is for the tree explorers (-mode all|budget), not fuzz")
			} else {
				fmt.Fprintln(os.Stderr, "checker: frontier export/resume requires -reduction none (reduced explorations prune against in-memory state that a frontier cannot carry)")
			}
			os.Exit(2)
		}
		opts.ExportFrontier = *frontOut != ""
	}
	if *frontIn != "" {
		data, err := os.ReadFile(*frontIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checker: %v\n", err)
			os.Exit(2)
		}
		f := &check.Frontier{}
		if err := json.Unmarshal(data, f); err != nil {
			fmt.Fprintf(os.Stderr, "checker: frontier %s: %v\n", *frontIn, err)
			os.Exit(2)
		}
		if f.Empty() {
			fmt.Println("frontier is empty: the exported exploration had already completed")
			return
		}
		opts.SeedFrontier = f
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Context = ctx
	}
	if *progress {
		opts.Progress = func(info check.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "checker: %d schedules, %d violations, %.0f schedules/sec\n",
				info.Schedules, info.Violations, info.SchedulesPerSec)
		}
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	fmt.Printf("exploring with %d workers\n", workers)
	res := spec.Run(build, opts)

	fmt.Printf("explored %d schedules (truncated=%v)\n", res.Schedules, res.Truncated)
	if rs := res.Reduction; rs != nil {
		fmt.Printf("reduction %s: %d sleep-deadlock runs, %d sleep-skipped branches, %d fingerprint-pruned runs\n",
			rs.Mode, rs.SleepDeadlockRuns, rs.SleepSkippedBranches, rs.FingerprintPrunedRuns)
		if rs.CacheHits > 0 || rs.CacheEntries > 0 {
			fmt.Printf("fingerprint cache: %d hits, %d entries, %d evictions\n",
				rs.CacheHits, rs.CacheEntries, rs.CacheEvictions)
		}
	}
	if res.Interrupted {
		fmt.Printf("interrupted by -timeout %v: results are partial (%d schedules explored, %d violations, %d work steals)\n",
			*timeout, res.Schedules, res.ViolationsTotal, res.Steals)
	}
	if res.TimedOutRuns > 0 {
		fmt.Printf("%d runs exceeded -run-deadline %v twice and were skipped (coverage is partial)\n",
			res.TimedOutRuns, *runDeadl)
	}
	for _, ev := range res.Degradations {
		fmt.Printf("degraded: %s\n", ev)
	}
	if *frontOut != "" {
		if res.Frontier == nil {
			fmt.Println("exploration ran to completion: no frontier to export")
		} else {
			data, err := json.MarshalIndent(res.Frontier, "", " ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "checker: encode frontier: %v\n", err)
				os.Exit(2)
			}
			if err := os.WriteFile(*frontOut, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "checker: %v\n", err)
				os.Exit(2)
			}
			fmt.Printf("frontier: %d unexplored subtrees written to %s (continue with -frontier-in)\n",
				len(res.Frontier.Items), *frontOut)
		}
	}
	if res.StepLimited > 0 {
		fmt.Printf("%d runs hit the step limit (counted separately, not violations)\n", res.StepLimited)
	}
	if res.Aliased > 0 {
		fmt.Printf("skipped %d aliased replays (non-reentrant builder?)\n", res.Aliased)
	}
	if res.OK() {
		fmt.Println("no violations found")
		if res.Interrupted {
			os.Exit(3) // clean so far, but the verdict is partial
		}
		return
	}
	fmt.Printf("VIOLATIONS: %d recorded of %d total\n", len(res.Violations), res.ViolationsTotal)
	for i := range res.Violations {
		viol := &res.Violations[i]
		fmt.Printf("  %s: %v\n", viol.Schedule, viol.Err)
		if viol.Decisions != nil {
			fmt.Printf("    decisions=%v\n", viol.Decisions)
		}
		if viol.Shrink != nil {
			fmt.Printf("    shrunk: %s\n", viol.Shrink)
		}
		if viol.ForensicsErr != nil {
			fmt.Fprintf(os.Stderr, "checker: forensics failed for %s: %v\n", viol.Schedule, viol.ForensicsErr)
		}
		if viol.Artifact != nil && *artDir != "" {
			path, err := viol.Artifact.SaveDir(*artDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "checker: %v\n", err)
			} else {
				fmt.Printf("    artifact: %s\n", path)
			}
		}
	}
	os.Exit(1)
}

// runMeasure executes a measurement campaign (-measure): the CLI face
// of a jobspec.Measure, so `checker -measure` and the equivalent
// POSTed measure job produce the same distribution. Assertions make
// the measurement a self-contained CI check: -assert-max-within pins
// practical wait-freedom (every invocation finished, none past the
// bound), -assert-max-above pins that a negative control visibly
// starves.
func runMeasure(meta artifact.Meta, model string, replays, parallel int, runDeadline time.Duration, outPath string, maxAbove, maxWithin int64, progress bool) {
	spec := &jobspec.Measure{
		Meta:          meta,
		Model:         model,
		Replays:       replays,
		Parallelism:   parallel,
		RunDeadlineMS: runDeadline.Milliseconds(),
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "checker: %v\n", err)
		os.Exit(2)
	}
	build, err := spec.Builder()
	if err != nil {
		fmt.Fprintf(os.Stderr, "checker: %v\n", err)
		os.Exit(2)
	}
	opts, err := spec.Options()
	if err != nil {
		fmt.Fprintf(os.Stderr, "checker: %v\n", err)
		os.Exit(2)
	}
	if progress {
		opts.Progress = func(info check.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "checker: %d replays, %.0f/sec\n", info.Schedules, info.SchedulesPerSec)
		}
	}
	fmt.Printf("measuring %s under %s: %d replays\n", meta.Workload, spec.ResolvedModel(), spec.ResolvedReplays())
	res := spec.Run(build, opts)
	p := res.Progress
	if p == nil || p.Runs == 0 {
		fmt.Fprintln(os.Stderr, "checker: measurement produced no runs")
		os.Exit(2)
	}
	worst := max(p.Max, p.CensoredMax)
	fmt.Printf("measured %d runs, %d invocation samples (%d censored)\n", p.Runs, p.Samples, p.Censored)
	fmt.Printf("stmts/invocation: p50=%d p90=%d p99=%d p999=%d max=%d", p.P50, p.P90, p.P99, p.P999, p.Max)
	if p.CensoredMax > 0 {
		fmt.Printf(" censored-max=%d", p.CensoredMax)
	}
	fmt.Println()
	if p.HalfLife > 0 {
		fmt.Printf("tail half-life: %.1f stmts\n", p.HalfLife)
	}
	if meta.WaitFreeBound > 0 {
		fmt.Printf("%d of %d runs exceeded the declared bound %d\n", res.ViolationsTotal, p.Runs, meta.WaitFreeBound)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(p, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "checker: encode distribution: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "checker: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("distribution written to %s\n", outPath)
	}
	failed := false
	if maxWithin > 0 {
		if p.Censored > 0 {
			fmt.Printf("ASSERTION FAILED: %d invocations never finished (want all within %d stmts)\n", p.Censored, maxWithin)
			failed = true
		} else if p.Max > maxWithin {
			fmt.Printf("ASSERTION FAILED: max %d stmts/invocation exceeds %d\n", p.Max, maxWithin)
			failed = true
		} else {
			fmt.Printf("assertion ok: all invocations within %d stmts (max %d, none censored)\n", maxWithin, p.Max)
		}
	}
	if maxAbove > 0 {
		if worst <= maxAbove {
			fmt.Printf("ASSERTION FAILED: worst case %d stmts does not exceed %d (negative control did not starve)\n", worst, maxAbove)
			failed = true
		} else {
			fmt.Printf("assertion ok: worst case %d stmts exceeds %d\n", worst, maxAbove)
		}
	}
	if failed {
		os.Exit(1)
	}
}
