// Benchmarks regenerating the paper's tables and figures (experiment
// index E1-E8 in DESIGN.md). Absolute wall-clock times measure the
// simulator, not the authors' hardware; the meaningful metrics are the
// reported stmts/op (statement counts inside the simulated system) and
// their shape across parameters. Run:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/bench"
)

// BenchmarkTable1Point (E1) runs one Fig. 7 consensus per iteration at a
// representative Table 1 grid point (P=2, C=3, Q above the measured
// frontier) and reports simulated statements per consensus.
func BenchmarkTable1Point(b *testing.B) {
	for _, tc := range []struct{ k, q int }{
		{0, 64}, {1, 64}, {2, 64},
	} {
		b.Run(fmt.Sprintf("P2C%dQ%d", 2+tc.k, tc.q), func(b *testing.B) {
			var stmts int64
			for i := 0; i < b.N; i++ {
				res := runFig7(b, 2, tc.k, 2, 1, tc.q, int64(i))
				stmts += res.steps
			}
			b.ReportMetric(float64(stmts)/float64(b.N), "stmts/consensus")
		})
	}
}

// BenchmarkFig3Consensus (E3, Theorem 1) runs Fig. 3 uniprocessor
// consensus across process counts; stmts/op must stay exactly 8.
func BenchmarkFig3Consensus(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			var worst int64
			for i := 0; i < b.N; i++ {
				pts := bench.Fig3Scaling([]int{n}, int64(i))
				if pts[0].Stmts > worst {
					worst = pts[0].Stmts
				}
			}
			b.ReportMetric(float64(worst), "stmts/op")
		})
	}
}

// BenchmarkFig5CAS (E4, Theorem 2) runs the Fig. 5 C&S counter workload
// across priority-level counts; stmts/op must grow linearly in V.
func BenchmarkFig5CAS(b *testing.B) {
	for _, v := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("V%d", v), func(b *testing.B) {
			var worst int64
			for i := 0; i < b.N; i++ {
				pts := bench.Fig5Scaling([]int{v}, 4, 2, int64(i))
				if pts[0].Stmts > worst {
					worst = pts[0].Stmts
				}
			}
			b.ReportMetric(float64(worst), "stmts/op")
		})
	}
}

// BenchmarkFig7Scaling (E5, Theorem 4 / Fig. 8) runs full multiprocessor
// consensus across M; stmts/op must grow polynomially (L is linear in
// M).
func BenchmarkFig7Scaling(b *testing.B) {
	for _, m := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("M%d", m), func(b *testing.B) {
			var worst int64
			for i := 0; i < b.N; i++ {
				pts := bench.Fig7Scaling([]int{m}, 2, 1, 1, 2048, int64(i))
				if pts[0].Stmts > worst {
					worst = pts[0].Stmts
				}
			}
			b.ReportMetric(float64(worst), "stmts/op")
		})
	}
}

// BenchmarkFig9Fair (E7, §5) runs the fair-scheduling variant at the
// constant quantum Q=8.
func BenchmarkFig9Fair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := repro.NewSystem(repro.Config{
			Processors: 2, Quantum: 8,
			Chooser: repro.NewRandomScheduler(int64(i)), MaxSteps: 1 << 22,
		})
		alg := repro.NewFairConsensus("f9", 2, 1, 0)
		outs := make([]repro.Word, 6)
		for j := 0; j < 6; j++ {
			me := j
			sys.AddProcess(repro.ProcSpec{Processor: j % 2, Priority: 1}).
				AddInvocation(func(c *repro.Ctx) { outs[me] = alg.Decide(c, repro.Word(me+1)) })
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			if o != outs[0] {
				b.Fatalf("disagreement: %v", outs)
			}
		}
	}
}

// BenchmarkLowerBoundSearch (E6, Theorem 3) measures how fast the
// budgeted explorer finds a quantum violation in Fig. 3 at Q=2.
func BenchmarkLowerBoundSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := repro.ExploreBudget(fig3BadQBuilder(), 3,
			repro.ExploreOptions{StopAtFirst: true})
		if res.OK() {
			b.Fatal("no violation found at Q=2")
		}
	}
}

// BenchmarkUniversalCounter exercises the read/write universal object
// (the Theorem 1 universality layer) under contention.
func BenchmarkUniversalCounter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := repro.NewSystem(repro.Config{
			Processors: 1, Quantum: repro.RecommendedQuantum,
			Chooser: repro.NewRandomScheduler(int64(i)),
		})
		ctr := repro.NewCounter("ctr", 0)
		for j := 0; j < 4; j++ {
			p := sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1 + j%2})
			for k := 0; k < 4; k++ {
				p.AddInvocation(func(c *repro.Ctx) { ctr.Inc(c) })
			}
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		if ctr.Peek() != 16 {
			b.Fatalf("final = %d", ctr.Peek())
		}
	}
}

// BenchmarkWaitFreeVsLock (E8 flavor) contrasts the wait-free counter
// with the lock-based baseline under a benign scheduler (the only
// regime where the lock completes at all).
func BenchmarkWaitFreeVsLock(b *testing.B) {
	b.Run("waitfree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := repro.NewSystem(repro.Config{Processors: 1, Quantum: 64,
				Chooser: repro.NewRunToCompletionScheduler()})
			ctr := repro.NewCounter("ctr", 0)
			for j := 0; j < 4; j++ {
				p := sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1})
				for k := 0; k < 4; k++ {
					p.AddInvocation(func(c *repro.Ctx) { ctr.Inc(c) })
				}
			}
			if err := sys.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := repro.NewSystem(repro.Config{Processors: 1, Quantum: 64,
				Chooser: repro.NewRunToCompletionScheduler()})
			ctr := repro.NewLockCounter("lk", 0)
			for j := 0; j < 4; j++ {
				p := sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1})
				for k := 0; k < 4; k++ {
					p.AddInvocation(func(c *repro.Ctx) { ctr.Inc(c) })
				}
			}
			if err := sys.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulator measures raw simulator statement throughput — the
// substrate cost underlying every other number here.
func BenchmarkSimulator(b *testing.B) {
	sys := repro.NewSystem(repro.Config{Processors: 1, Quantum: 8, MaxSteps: 1 << 62})
	r := repro.NewReg("r")
	p := sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1})
	n := b.N
	p.AddInvocation(func(c *repro.Ctx) {
		for i := 0; i < n; i++ {
			c.Write(r, repro.Word(i))
		}
	})
	b.ResetTimer()
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
}

type fig7Run struct{ steps int64 }

func runFig7(b *testing.B, p, k, m, v, q int, seed int64) fig7Run {
	b.Helper()
	sys := repro.NewSystem(repro.Config{
		Processors: p, Quantum: q,
		Chooser: repro.NewRandomScheduler(seed), MaxSteps: 1 << 23,
	})
	alg := repro.NewMultiConsensus(repro.MultiConsensusConfig{
		Name: "b", P: p, K: k, M: m, V: v,
	})
	n := p * m
	outs := make([]repro.Word, n)
	id := 0
	for i := 0; i < p; i++ {
		for j := 0; j < m; j++ {
			me := id
			sys.AddProcess(repro.ProcSpec{Processor: i, Priority: 1 + j%v}).
				AddInvocation(func(c *repro.Ctx) { outs[me] = alg.Decide(c, repro.Word(me+1)) })
			id++
		}
	}
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
	for _, o := range outs {
		if o != outs[0] || o == repro.Bottom {
			b.Fatalf("disagreement: %v", outs)
		}
	}
	return fig7Run{steps: sys.Steps()}
}

func fig3BadQBuilder() repro.Builder {
	return func(ch repro.Scheduler) (*repro.System, repro.Verify) {
		sys := repro.NewSystem(repro.Config{Processors: 1, Quantum: 2, Chooser: ch, MaxSteps: 1 << 16})
		obj := repro.NewConsensus("cons")
		outs := make([]repro.Word, 3)
		for i := 0; i < 3; i++ {
			i := i
			sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *repro.Ctx) { outs[i] = obj.Decide(c, repro.Word(i+1)) })
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			for _, o := range outs {
				if o != outs[0] {
					return fmt.Errorf("disagreement: %v", outs)
				}
			}
			return nil
		}
		return sys, verify
	}
}
