#!/usr/bin/env sh
# End-to-end smoke test for the checker service (DESIGN.md §12): boot
# cmd/server over a fresh store, drive the REST API with curl — submit
# an exhaustive unicons check and a violating lockcounter soak, poll
# both to their terminal states, fetch a repro bundle by content key —
# then SIGTERM the server and require a clean graceful shutdown.
#
# Tunables (env): PORT, SOAK_RUNS.
set -eu

PORT=${PORT:-18080}
SOAK_RUNS=${SOAK_RUNS:-60}
BASE="http://127.0.0.1:$PORT"

work=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "server-smoke: building cmd/server"
go build -o "$work/server" ./cmd/server

echo "server-smoke: starting on $BASE (store $work/farm)"
"$work/server" -addr "127.0.0.1:$PORT" -store "$work/farm" >"$work/server.log" 2>&1 &
server_pid=$!

i=0
until curl -fs "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "server-smoke: FAIL: server never became healthy" >&2
        cat "$work/server.log" >&2
        exit 1
    fi
    sleep 0.1
done

# jget FILE KEY: pull a scalar out of the server's indented JSON.
jget() {
    sed -n 's/.*"'"$2"'": *"\{0,1\}\([^",}]*\)"\{0,1\}.*/\1/p' "$1" | head -n 1
}

# poll_terminal ID: poll GET /jobs/ID until the state is terminal.
poll_terminal() {
    j=0
    while :; do
        curl -fs "$BASE/jobs/$1" >"$work/status.json"
        state=$(jget "$work/status.json" state)
        case $state in
        done | failed | cancelled | error) printf '%s' "$state"; return 0 ;;
        esac
        j=$((j + 1))
        if [ "$j" -gt 600 ]; then
            echo "server-smoke: FAIL: job $1 stuck in state $state" >&2
            cat "$work/status.json" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "server-smoke: submitting exhaustive unicons check (N=2, Q=8)"
curl -fs -X POST "$BASE/jobs" -d '{
  "kind": "check",
  "check": {
    "meta": {"workload": "unicons", "n": 2, "v": 1, "quantum": 8, "max_steps": 262144},
    "mode": "all"
  }
}' >"$work/submit1.json"
check_id=$(jget "$work/submit1.json" id)
[ -n "$check_id" ] || { echo "server-smoke: FAIL: no job id in $(cat "$work/submit1.json")" >&2; exit 1; }

echo "server-smoke: submitting lockcounter soak ($SOAK_RUNS runs under a wait-free bound)"
curl -fs -X POST "$BASE/jobs" -d '{
  "kind": "soak",
  "soak": {
    "workload": "lockcounter", "n": 2, "v": 2, "quantum": 4, "waitfree_bound": 60,
    "runs": '"$SOAK_RUNS"', "seed": 7, "keep_going": true
  }
}' >"$work/submit2.json"
soak_id=$(jget "$work/submit2.json" id)
[ -n "$soak_id" ] || { echo "server-smoke: FAIL: no job id in $(cat "$work/submit2.json")" >&2; exit 1; }

state=$(poll_terminal "$check_id")
schedules=$(jget "$work/status.json" schedules)
if [ "$state" != "done" ] || [ "$schedules" != "114" ]; then
    echo "server-smoke: FAIL: unicons check ended $state with $schedules schedules (want done/114)" >&2
    cat "$work/status.json" >&2
    exit 1
fi
echo "server-smoke: check $check_id done (114 schedules, clean)"

state=$(poll_terminal "$soak_id")
if [ "$state" != "failed" ]; then
    echo "server-smoke: FAIL: lockcounter soak ended $state (want failed: the bound must be violated)" >&2
    cat "$work/status.json" >&2
    exit 1
fi
key=$(grep -o '[0-9a-f]\{64\}' "$work/status.json" | head -n 1)
[ -n "$key" ] || { echo "server-smoke: FAIL: failed soak reported no artifact keys" >&2; exit 1; }
echo "server-smoke: soak $soak_id failed as expected; fetching bundle $key"

curl -fs "$BASE/artifacts/$key" >"$work/bundle.json"
if ! grep -q '"workload":"lockcounter"' "$work/bundle.json"; then
    echo "server-smoke: FAIL: fetched bundle is not a lockcounter repro" >&2
    head -c 400 "$work/bundle.json" >&2
    exit 1
fi

echo "server-smoke: SIGTERM, expecting graceful shutdown"
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
    echo "server-smoke: FAIL: server exited nonzero on SIGTERM" >&2
    cat "$work/server.log" >&2
    exit 1
fi
server_pid=""
if ! grep -q 'graceful shutdown complete' "$work/server.log"; then
    echo "server-smoke: FAIL: no graceful-shutdown log line" >&2
    cat "$work/server.log" >&2
    exit 1
fi

echo "server-smoke: PASS: submit, schedule, persist, fetch, and graceful shutdown all verified"
