#!/usr/bin/env sh
# Kill-resume smoke test for the durable campaign runner (DESIGN.md §11):
# start a durable soak, SIGKILL it mid-campaign (no graceful shutdown, no
# final checkpoint — the journal tail is whatever the crash left), resume
# from the state directory, and assert the resumed campaign's final
# summary is identical to an uninterrupted run of the same seeds.
#
# Tunables (env): RUNS (campaign length), SEED, KILL_AFTER (seconds
# before the SIGKILL), PARALLEL.
set -eu

RUNS=${RUNS:-20000}
SEED=${SEED:-1}
KILL_AFTER=${KILL_AFTER:-2}
PARALLEL=${PARALLEL:-2}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "soak-resume-smoke: building cmd/soak"
go build -o "$work/soak" ./cmd/soak

echo "soak-resume-smoke: uninterrupted baseline (-runs $RUNS -seed $SEED)"
"$work/soak" -runs "$RUNS" -seed "$SEED" -parallel "$PARALLEL" >"$work/base.log"
base=$(tail -n 1 "$work/base.log")

echo "soak-resume-smoke: durable leg, SIGKILL after ${KILL_AFTER}s"
"$work/soak" -runs "$RUNS" -seed "$SEED" -parallel "$PARALLEL" \
    -state-dir "$work/state" -checkpoint-every 64 >"$work/leg1.log" 2>&1 &
pid=$!
sleep "$KILL_AFTER"
if ! kill -9 "$pid" 2>/dev/null; then
    echo "soak-resume-smoke: FAIL: campaign finished before the kill; raise RUNS or lower KILL_AFTER" >&2
    exit 1
fi
wait "$pid" 2>/dev/null || true
if grep -q '"runs"' "$work/leg1.log"; then
    echo "soak-resume-smoke: FAIL: first leg printed a summary — it completed before the kill" >&2
    exit 1
fi
echo "soak-resume-smoke: killed; resuming from $work/state"

"$work/soak" -resume "$work/state" -runs "$RUNS" -parallel "$PARALLEL" >"$work/resume.log"
resumed=$(tail -n 1 "$work/resume.log")
# The resume summary carries an extra "resumed" count; everything else —
# run totals, violations, crashes, timeouts, verdict — must match the
# uninterrupted baseline byte for byte.
normalized=$(printf '%s\n' "$resumed" | sed 's/,"resumed":[0-9]*//')

if [ "$normalized" != "$base" ]; then
    echo "soak-resume-smoke: FAIL: resumed summary diverges from uninterrupted run" >&2
    echo "  uninterrupted: $base" >&2
    echo "  resumed:       $resumed" >&2
    exit 1
fi
case $resumed in
*'"resumed":'*) ;;
*)
    echo "soak-resume-smoke: FAIL: resume leg did not report a resume: $resumed" >&2
    exit 1
    ;;
esac

echo "soak-resume-smoke: PASS: resumed campaign converged to the uninterrupted summary"
echo "  $base"
