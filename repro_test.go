package repro_test

import (
	"fmt"
	"sort"
	"testing"

	"repro"
)

// TestPublicAPISmoke drives every major public entry point once.
func TestPublicAPISmoke(t *testing.T) {
	sys := repro.NewSystem(repro.Config{
		Processors: 1,
		Quantum:    repro.RecommendedQuantum,
		Chooser:    repro.NewRandomScheduler(1),
	})
	cons := repro.NewConsensus("c")
	cas := repro.NewCAS("cas", 2, 0)
	ctr := repro.NewCounter("ctr", 0)
	q := repro.NewQueue("q")
	var consOut, casVal, deq repro.Word
	sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *repro.Ctx) {
			consOut = cons.Decide(c, 11)
			cas.CompareAndSwap(c, 0, 5)
			casVal = cas.Read(c)
			ctr.Inc(c)
			q.Enq(c, 9)
			deq = q.Deq(c)
		})
	sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 2}).
		AddInvocation(func(c *repro.Ctx) {
			cons.Decide(c, 22)
			ctr.Inc(c)
		})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if consOut != 11 && consOut != 22 {
		t.Fatalf("consensus = %d", consOut)
	}
	if casVal != 5 || deq != 9 || ctr.Peek() != 2 {
		t.Fatalf("cas=%d deq=%d ctr=%d", casVal, deq, ctr.Peek())
	}
}

// TestQuantumConstantsExported pins the documented bounds.
func TestQuantumConstantsExported(t *testing.T) {
	if repro.MinQuantumConsensus != 8 {
		t.Fatalf("MinQuantumConsensus = %d, want 8 (Theorem 1)", repro.MinQuantumConsensus)
	}
	if repro.MinQuantumCAS != 8 {
		t.Fatalf("MinQuantumCAS = %d", repro.MinQuantumCAS)
	}
	if repro.RecommendedQuantum < repro.MinQuantumConsensus {
		t.Fatal("RecommendedQuantum below the safety bound")
	}
}

// TestTraceRecorderPublic exercises tracing through the facade.
func TestTraceRecorderPublic(t *testing.T) {
	rec := repro.NewTraceRecorder(0)
	sys := repro.NewSystem(repro.Config{
		Processors: 1, Quantum: 8, Observer: rec,
		Chooser: repro.NewRotateScheduler(),
	})
	cons := repro.NewConsensus("c")
	for i := 0; i < 3; i++ {
		sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *repro.Ctx) { cons.Decide(c, 1) })
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := rec.Render(repro.TraceRenderOptions{Ops: true})
	if len(out) == 0 {
		t.Fatal("empty trace render")
	}
}

// ExampleNewConsensus demonstrates Theorem 1: constant-time wait-free
// consensus from reads and writes on one hybrid-scheduled processor.
func ExampleNewConsensus() {
	sys := repro.NewSystem(repro.Config{
		Processors: 1,
		Quantum:    repro.MinQuantumConsensus, // Q >= 8
	})
	cons := repro.NewConsensus("example")
	outs := make([]repro.Word, 3)
	for i := 0; i < 3; i++ {
		i := i
		sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1 + i}).
			AddInvocation(func(c *repro.Ctx) {
				outs[i] = cons.Decide(c, repro.Word(i+1))
			})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	fmt.Println(outs[0] == outs[1] && outs[1] == outs[2])
	// Output: true
}

// ExampleNewCounter demonstrates the universal construction: a
// linearizable wait-free counter shared across priority levels.
func ExampleNewCounter() {
	sys := repro.NewSystem(repro.Config{
		Processors: 1,
		Quantum:    repro.RecommendedQuantum,
		Chooser:    repro.NewRandomScheduler(7),
	})
	ctr := repro.NewCounter("tickets", 0)
	tickets := make([]int, 0, 6)
	for i := 0; i < 3; i++ {
		p := sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1 + i%2})
		for k := 0; k < 2; k++ {
			p.AddInvocation(func(c *repro.Ctx) {
				tickets = append(tickets, int(ctr.Inc(c)))
			})
		}
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	sort.Ints(tickets)
	fmt.Println(tickets)
	// Output: [0 1 2 3 4 5]
}

// ExampleNewMultiConsensus demonstrates Theorem 4: 3-consensus objects
// deciding for 4 processes on 2 processors.
func ExampleNewMultiConsensus() {
	sys := repro.NewSystem(repro.Config{
		Processors: 2,
		Quantum:    2048,
		MaxSteps:   1 << 22,
	})
	alg := repro.NewMultiConsensus(repro.MultiConsensusConfig{
		Name: "ex", P: 2, K: 1, M: 2, V: 1,
	})
	outs := make([]repro.Word, 4)
	for i := 0; i < 4; i++ {
		i := i
		sys.AddProcess(repro.ProcSpec{Processor: i % 2, Priority: 1}).
			AddInvocation(func(c *repro.Ctx) {
				outs[i] = alg.Decide(c, repro.Word(i+1))
			})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	agreed := true
	for _, o := range outs {
		agreed = agreed && o == outs[0]
	}
	fmt.Println(agreed)
	// Output: true
}

// ExampleExploreBudget demonstrates the model checker exhibiting the
// quantum lower bound: at Q=2 the Fig. 3 algorithm has a disagreement
// schedule.
func ExampleExploreBudget() {
	build := func(ch repro.Scheduler) (*repro.System, repro.Verify) {
		sys := repro.NewSystem(repro.Config{Processors: 1, Quantum: 2, Chooser: ch})
		cons := repro.NewConsensus("c")
		outs := make([]repro.Word, 3)
		for i := 0; i < 3; i++ {
			i := i
			sys.AddProcess(repro.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *repro.Ctx) { outs[i] = cons.Decide(c, repro.Word(i+1)) })
		}
		return sys, func(runErr error) error {
			if runErr != nil {
				return runErr
			}
			for _, o := range outs {
				if o != outs[0] {
					return fmt.Errorf("disagreement")
				}
			}
			return nil
		}
	}
	res := repro.ExploreBudget(build, 3, repro.ExploreOptions{StopAtFirst: true})
	fmt.Println(res.OK())
	// Output: false
}

// TestForensicsFacade drives the counterexample-forensics exports over
// the committed LockCounter repro bundle: load, fresh replay, shrink,
// and engine integration via ArtifactBuilder + ExploreOptions.
func TestForensicsFacade(t *testing.T) {
	b, err := repro.LoadArtifact("internal/artifact/testdata/lockcounter.json")
	if err != nil {
		t.Fatalf("LoadArtifact: %v", err)
	}
	rep, err := repro.ReplayArtifact(b, repro.ReplayOptions{Trace: true})
	if err != nil {
		t.Fatalf("ReplayArtifact: %v", err)
	}
	if rep.Err == nil {
		t.Fatal("committed bundle replayed clean; it must reproduce its violation")
	}
	min, stats, err := repro.Shrink(b, repro.ShrinkOptions{})
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if len(min.Sched.Decisions) > len(b.Sched.Decisions) || stats.Tried == 0 {
		t.Fatalf("shrink grew the bundle: %d -> %d decisions (%s)",
			len(b.Sched.Decisions), len(min.Sched.Decisions), stats)
	}

	build, err := repro.ArtifactBuilder(b.Meta)
	if err != nil {
		t.Fatalf("ArtifactBuilder: %v", err)
	}
	meta := b.Meta
	res := repro.Fuzz(build, 200, repro.ExploreOptions{
		ArtifactMeta: &meta, Minimize: true, StopAtFirst: true, Parallelism: 1,
		WaitFreeBound: meta.WaitFreeBound,
	})
	if res.OK() {
		t.Fatal("LockCounter fuzz found no wait-freedom violation in 200 seeds")
	}
	v := res.First()
	if v.Artifact == nil || v.ForensicsErr != nil {
		t.Fatalf("violation missing artifact (forensics err: %v)", v.ForensicsErr)
	}
}
