// Package renaming implements the wait-free renaming objects discussed
// in the paper's §5 for hybrid-scheduled uniprocessors.
//
// Two objects are provided:
//
//   - LevelNames: one-shot renaming that "assigns the same name to
//     same-priority processes" — the identifier scheme §5 uses to extend
//     the Fig. 7 multiprocessor consensus to dynamic priorities. The
//     first process of a given priority to arrive claims the next name
//     through a per-level Fig. 3 consensus; same-priority peers adopt it.
//
//   - LongLived: long-lived renaming in the style of Moir & Anderson [5]
//     — names can be repeatedly acquired and released. Built from reads
//     and writes via the universal construction, so it is wait-free and
//     linearizable for all priority levels of one processor. The paper
//     notes that an O(V)-time long-lived renaming is an open problem;
//     this construction is correct but takes O(interference) time, as
//     recorded in DESIGN.md.
package renaming

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/unicons"
	"repro/internal/universal"
)

// LevelNames assigns one name per priority level, the same name to all
// processes of that level. Names are dense: 1, 2, ... in level-arrival
// order.
type LevelNames struct {
	levels  []*unicons.Object  // per-level name cell
	counter *universal.Counter // next name; cross-level, so built on Fig. 3
}

// NewLevelNames returns a one-shot level-renaming object for priorities
// 1..v.
func NewLevelNames(name string, v int) *LevelNames {
	return &LevelNames{
		levels:  make([]*unicons.Object, v+1),
		counter: universal.NewCounter(name+".next", 1),
	}
}

func (r *LevelNames) level(pri int) *unicons.Object {
	if r.levels[pri] == nil {
		r.levels[pri] = unicons.New(fmt.Sprintf("rename.level[%d]", pri))
	}
	return r.levels[pri]
}

// Name returns the caller's level's name, claiming the next dense name
// if the level has none yet. Same-priority processes always receive the
// same name.
//
// The name counter is shared across levels; a claim races it upward via
// CAS until it either wins a slot or observes its level named. All
// claimers of one level propose through the level's consensus cell, so
// exactly one claimed name sticks.
func (r *LevelNames) Name(c *sim.Ctx, v int) mem.Word {
	lvl := r.level(v)
	if n := lvl.ReadValue(c); n != mem.Bottom {
		return n
	}
	// Claim a candidate name: fetch-and-increment on the shared counter
	// (cross-level, hence the universal counter). Names claimed by
	// losing proposals leak, which renaming permits: names stay unique
	// and bounded by claiming levels plus interference.
	cand := r.counter.Inc(c)
	return lvl.Decide(c, cand)
}

// LongLived is a long-lived M-renaming object: processes repeatedly
// acquire a free name in 1..Size and later release it. Linearizable and
// wait-free for all priority levels of one hybrid-scheduled processor;
// reads and writes only underneath.
type LongLived struct {
	o *universal.Object
}

// Size is the name-space size of a LongLived object (bitmask state in a
// packed word).
const Size = 32

// Op encoding for the universal object.
const (
	opAcquire = 1
	opRelease = 2
)

// NoName is returned by Acquire when all Size names are taken.
const NoName = mem.Word(0)

func renameApply(state any, op mem.Word) (any, mem.Word) {
	mask := state.(mem.Word)
	switch op & 0xF {
	case opAcquire:
		for n := mem.Word(1); n <= Size; n++ {
			if mask&(1<<(n-1)) == 0 {
				return mask | 1<<(n-1), n
			}
		}
		return mask, NoName
	case opRelease:
		n := op >> 4
		return mask &^ (1 << (n - 1)), 0
	default:
		panic(fmt.Sprintf("renaming: bad op %#x", op))
	}
}

// NewLongLived returns an empty long-lived renaming object.
func NewLongLived(name string) *LongLived {
	return &LongLived{o: universal.New(name, mem.Word(0), renameApply)}
}

// Acquire claims and returns the smallest free name in 1..Size, or
// NoName if none is free.
func (r *LongLived) Acquire(c *sim.Ctx) mem.Word {
	return r.o.Invoke(c, opAcquire)
}

// Release frees a name previously returned by Acquire.
func (r *LongLived) Release(c *sim.Ctx, n mem.Word) {
	if n < 1 || n > Size {
		panic(fmt.Sprintf("renaming: release of invalid name %d", n))
	}
	r.o.Invoke(c, opRelease|n<<4)
}

// PeekTaken returns the number of currently held names. Post-run
// inspection only.
func (r *LongLived) PeekTaken() int {
	mask := r.o.PeekState().(mem.Word)
	n := 0
	for i := 0; i < Size; i++ {
		if mask&(1<<i) != 0 {
			n++
		}
	}
	return n
}
