package renaming_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/renaming"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// TestLevelNamesSameLevelSameName fuzzes the §5 level-renaming scheme:
// processes of one priority level always receive the same name, distinct
// levels receive distinct names.
func TestLevelNamesSameLevelSameName(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const n, v = 6, 3
		sys := sim.New(sim.Config{Processors: 1, Quantum: 32, Chooser: ch, MaxSteps: 1 << 18})
		r := renaming.NewLevelNames("rn", v)
		names := make([]mem.Word, n)
		pris := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			pris[i] = 1 + i%v
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: pris[i]}).
				AddInvocation(func(c *sim.Ctx) { names[i] = r.Name(c, c.Pri()) })
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			byLevel := map[int]mem.Word{}
			byName := map[mem.Word]int{}
			for i := 0; i < n; i++ {
				if names[i] == mem.Bottom {
					return fmt.Errorf("process %d got no name", i)
				}
				if prev, ok := byLevel[pris[i]]; ok && prev != names[i] {
					return fmt.Errorf("level %d got names %d and %d", pris[i], prev, names[i])
				}
				byLevel[pris[i]] = names[i]
				if lvl, ok := byName[names[i]]; ok && lvl != pris[i] {
					return fmt.Errorf("name %d shared by levels %d and %d", names[i], lvl, pris[i])
				}
				byName[names[i]] = pris[i]
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 400, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// TestLongLivedUniqueWhileHeld fuzzes acquire/release cycles: at no
// point may two processes hold the same name.
func TestLongLivedUniqueWhileHeld(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const n, rounds = 4, 3
		sys := sim.New(sim.Config{Processors: 1, Quantum: 32, Chooser: ch, MaxSteps: 1 << 20})
		r := renaming.NewLongLived("rn")
		violation := ""
		held := map[mem.Word]int{}
		for i := 0; i < n; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%2})
			for k := 0; k < rounds; k++ {
				var got mem.Word
				p.AddInvocation(func(c *sim.Ctx) {
					got = r.Acquire(c)
					if got == renaming.NoName {
						violation = fmt.Sprintf("process %d: namespace exhausted", i)
						return
					}
					if owner, taken := held[got]; taken {
						violation = fmt.Sprintf("name %d held by %d and %d", got, owner, i)
						return
					}
					held[got] = i
				})
				p.AddInvocation(func(c *sim.Ctx) {
					if got == renaming.NoName {
						c.Local(1)
						return
					}
					delete(held, got)
					r.Release(c, got)
				})
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			if violation != "" {
				return fmt.Errorf("%s", violation)
			}
			if r.PeekTaken() != 0 {
				return fmt.Errorf("%d names leaked", r.PeekTaken())
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 300, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// TestLongLivedSmallestFree checks the smallest-free-name rule
// sequentially.
func TestLongLivedSmallestFree(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 32})
	r := renaming.NewLongLived("rn")
	var a, b, c1, again mem.Word
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			a = r.Acquire(c)
			b = r.Acquire(c)
			c1 = r.Acquire(c)
			r.Release(c, b)
			again = r.Acquire(c)
		})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a != 1 || b != 2 || c1 != 3 || again != 2 {
		t.Fatalf("names = %d,%d,%d then %d; want 1,2,3 then 2", a, b, c1, again)
	}
}

// TestLevelNamesSupportsDynamicPriorityConsensus is the §5 pipeline:
// level renaming supplies identifiers, then same-named (same-level)
// processes share Fig. 3 consensus objects indexed by name.
func TestLevelNamesSupportsDynamicPriorityConsensus(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 32})
	r := renaming.NewLevelNames("rn", 2)
	cons := map[mem.Word]*unicons.Object{
		1: unicons.New("c1"), 2: unicons.New("c2"),
	}
	outs := make([]mem.Word, 4)
	for i := 0; i < 4; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%2}).
			AddInvocation(func(c *sim.Ctx) {
				name := r.Name(c, c.Pri())
				outs[i] = cons[name].Decide(c, mem.Word(i+1))
			})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if outs[0] != outs[2] || outs[1] != outs[3] {
		t.Fatalf("same-level processes disagreed: %v", outs)
	}
}
