package minimize_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/minimize"
	"repro/internal/sched"
	"repro/internal/unicons"
)

// findFailure sweeps seeded-random schedules until one violates the
// workload's property.
func findFailure(t *testing.T, meta artifact.Meta, maxSeed int64) *artifact.Bundle {
	t.Helper()
	for seed := int64(1); seed <= maxSeed; seed++ {
		b, rep, err := artifact.Capture(meta, artifact.Sched{Random: true, Seed: seed})
		if err != nil {
			t.Fatalf("Capture(seed=%d): %v", seed, err)
		}
		if rep.Failed() {
			return b
		}
	}
	t.Fatalf("no violating schedule for %+v in %d seeds", meta, maxSeed)
	return nil
}

// TestShrinkLockCounter is the ISSUE's acceptance bar: shrinking a
// LockCounter wait-freedom violation must converge to ≤ 12 decisions,
// verified by replaying the minimized bundle through artifact.Replay.
func TestShrinkLockCounter(t *testing.T) {
	meta := artifact.Meta{Workload: "lockcounter", N: 2, V: 2, Quantum: 4,
		MaxSteps: 2000, WaitFreeBound: 50}
	b := findFailure(t, meta, 200)

	min, stats, err := minimize.Shrink(b, minimize.Options{
		Match: func(err error) bool {
			return strings.Contains(err.Error(), "wait-freedom violated")
		},
	})
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	t.Logf("shrink: %s", stats)
	t.Logf("minimized decisions: %v", min.Sched.Decisions)

	if n := len(min.Sched.Decisions); n > 12 {
		t.Fatalf("minimized bundle has %d decisions, want ≤ 12", n)
	}
	rep, err := artifact.Replay(min, artifact.ReplayOptions{Trace: true})
	if err != nil {
		t.Fatalf("Replay(minimized): %v", err)
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "wait-freedom violated") {
		t.Fatalf("minimized bundle no longer violates wait-freedom: %v", rep.Err)
	}
	if rep.Err.Error() != min.Err {
		t.Fatalf("minimized bundle's recorded error is stale:\n  recorded: %s\n  replayed: %s", min.Err, rep.Err)
	}
	if rep.Trace == "" {
		t.Fatal("minimized replay rendered no timeline")
	}
}

// TestShrinkUnicons: an agreement violation at Q = 1 reduces without
// losing the failure, and the stats account for the reduction.
func TestShrinkUnicons(t *testing.T) {
	meta := artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 1, MaxSteps: 1 << 16}
	b := findFailure(t, meta, 2000)

	min, stats, err := minimize.Shrink(b, minimize.Options{})
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	t.Logf("shrink: %s", stats)
	if stats.ToDecisions > stats.FromDecisions {
		t.Fatalf("shrink grew the decision vector: %s", stats)
	}
	if stats.Tried == 0 || stats.Accepted == 0 {
		t.Fatalf("shrink did no work: %s", stats)
	}
	if min.Err == "" {
		t.Fatal("minimized bundle records no violation")
	}
	rep, err := artifact.Replay(min, artifact.ReplayOptions{})
	if err != nil {
		t.Fatalf("Replay(minimized): %v", err)
	}
	if rep.Err == nil || rep.Err.Error() != min.Err {
		t.Fatalf("minimized bundle does not reproduce: recorded %q, replayed %v", min.Err, rep.Err)
	}
}

// TestShrinkDeterministic: the shrinker is a deterministic function of
// its input bundle — two runs agree byte-for-byte.
func TestShrinkDeterministic(t *testing.T) {
	meta := artifact.Meta{Workload: "hybridcas", N: 3, V: 1, Quantum: 1, MaxSteps: 1 << 16}
	b := findFailure(t, meta, 2000)

	m1, s1, err := minimize.Shrink(b, minimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, s2, err := minimize.Shrink(b, minimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(m1)
	j2, _ := json.Marshal(m2)
	if string(j1) != string(j2) {
		t.Fatalf("shrink nondeterministic:\n%s\n%s", j1, j2)
	}
	if *s1 != *s2 {
		t.Fatalf("shrink stats nondeterministic: %s vs %s", s1, s2)
	}
}

// TestShrinkDropsIrrelevantCrash: a crash point the failure never
// needed is removed by the crash-removal pass.
func TestShrinkDropsIrrelevantCrash(t *testing.T) {
	meta := artifact.Meta{Workload: "universal", N: 2, V: 1,
		Quantum: unicons.MinQuantum, MaxSteps: 1 << 16}
	// The lost-accounting crash found in the artifact round-trip test,
	// plus a decoy crash point far past the end of the run.
	meta.Crashes = []sched.CrashPoint{
		{Proc: 0, Step: 4},
		{Proc: 1, Step: 1 << 40},
	}
	b, rep, err := artifact.Capture(meta, artifact.Sched{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("crash plan did not produce a violation: %v", rep.Err)
	}

	min, stats, err := minimize.Shrink(b, minimize.Options{})
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	t.Logf("shrink: %s", stats)
	if len(min.Meta.Crashes) != 1 {
		t.Fatalf("crash plan = %v, want only the load-bearing point", min.Meta.Crashes)
	}
	if min.Meta.Crashes[0].Proc != 0 {
		t.Fatalf("shrink kept the decoy crash: %v", min.Meta.Crashes)
	}
}

// TestShrinkBudget: an exhausted budget still yields a valid (merely
// less-minimal) bundle, and reports the truncation.
func TestShrinkBudget(t *testing.T) {
	meta := artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 1, MaxSteps: 1 << 16}
	b := findFailure(t, meta, 2000)

	min, stats, err := minimize.Shrink(b, minimize.Options{Budget: 2})
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if !stats.BudgetExhausted {
		t.Fatalf("budget 2 not reported exhausted: %s", stats)
	}
	rep, err := artifact.Replay(min, artifact.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err == nil || rep.Err.Error() != min.Err {
		t.Fatalf("budget-truncated bundle does not reproduce: recorded %q, replayed %v", min.Err, rep.Err)
	}
}

// TestShrinkRejectsPassingBundle: a bundle whose run satisfies the
// property is not a counterexample and must be refused, not "shrunk".
func TestShrinkRejectsPassingBundle(t *testing.T) {
	meta := artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: unicons.MinQuantum}
	b, rep, err := artifact.Capture(meta, artifact.Sched{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("control run unexpectedly failed: %v", rep.Err)
	}
	if _, _, err := minimize.Shrink(b, minimize.Options{}); err == nil ||
		!strings.Contains(err.Error(), "does not fail") {
		t.Fatalf("passing bundle accepted for shrinking: %v", err)
	}
}
