// Package minimize shrinks counterexample bundles to minimal kernels.
//
// The shrinker is a deterministic fixpoint of reduction passes over a
// script-mode artifact bundle: ddmin-style chunk removal over the
// decision vector, per-decision lowering toward candidate 0, crash-point
// removal, and quantum/priority-level lowering — each candidate edit is
// accepted only if a full fresh replay still fails the property. The
// paper's own arguments (the Fig. 6/10 valency proofs, Theorem 1's
// Q ≥ 8 bound) rest on adversarial schedules of a handful of decisions;
// this package mechanically reduces multi-thousand-step violating runs
// to that scale.
//
// Soundness rule: every accepted candidate is re-verified by replaying
// it through internal/artifact from scratch, and the final bundle is
// re-captured (error text and trace re-rendered) from one more fresh
// execution. No cached verdict is ever trusted.
package minimize

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/sched"
)

// DefaultBudget is the replay budget a zero Options.Budget selects.
// Shrinking is post-processing on already-found violations, so the
// default is sized to finish a bundle in well under a second.
const DefaultBudget = 500

// Options configures one Shrink.
type Options struct {
	// Budget caps the number of candidate replays (0 = DefaultBudget,
	// < 0 = unlimited). When the budget runs out the best bundle found
	// so far is returned; Stats.BudgetExhausted reports the truncation.
	Budget int
	// Match decides which replay outcomes count as "still failing".
	// nil accepts any property violation, which shrinks hardest; pin it
	// (e.g. to a substring of the original error) to preserve a
	// specific failure kind through the reduction.
	Match func(err error) bool
}

// Stats describes what one Shrink did.
type Stats struct {
	// Tried and Accepted count candidate replays and accepted edits.
	Tried    int
	Accepted int
	// FromDecisions/ToDecisions are the decision-vector lengths before
	// and after (after normalization to script mode).
	FromDecisions int
	ToDecisions   int
	// FromSteps/ToSteps are the executed statement counts before/after.
	FromSteps int64
	ToSteps   int64
	// FromCrashes/ToCrashes count planned crash points before/after.
	FromCrashes int
	ToCrashes   int
	// FromQuantum/ToQuantum and FromLevels/ToLevels track config
	// lowering.
	FromQuantum int
	ToQuantum   int
	FromLevels  int
	ToLevels    int
	// BudgetExhausted reports that the replay budget ran out before the
	// reduction reached a fixpoint.
	BudgetExhausted bool
}

func (s *Stats) String() string {
	return fmt.Sprintf("decisions %d→%d, steps %d→%d, crashes %d→%d, Q %d→%d, levels %d→%d (%d candidates, %d accepted%s)",
		s.FromDecisions, s.ToDecisions, s.FromSteps, s.ToSteps,
		s.FromCrashes, s.ToCrashes, s.FromQuantum, s.ToQuantum,
		s.FromLevels, s.ToLevels, s.Tried, s.Accepted,
		map[bool]string{true: ", budget exhausted", false: ""}[s.BudgetExhausted])
}

// shrinker carries the current best counterexample and the budget.
type shrinker struct {
	opts  Options
	stats Stats

	meta artifact.Meta
	dec  []int
	rep  *artifact.Report
}

// Shrink reduces a failing bundle to a minimal still-failing bundle.
// Random-mode bundles are first normalized to script mode. The returned
// bundle's Err and Trace come from a final fresh execution of the
// minimized schedule. Shrink fails up front if the input bundle does not
// (or no longer does) fail its property.
func Shrink(b *artifact.Bundle, opts Options) (*artifact.Bundle, *Stats, error) {
	if b.Sched.Random {
		nb, err := artifact.Normalize(b)
		if err != nil {
			return nil, nil, err
		}
		b = nb
	}
	if opts.Budget == 0 {
		opts.Budget = DefaultBudget
	}
	match := opts.Match
	if match == nil {
		match = func(error) bool { return true }
	}

	s := &shrinker{opts: opts, meta: b.Meta, dec: append([]int(nil), b.Sched.Decisions...)}

	// Establish the baseline: the input must fail before we shrink it.
	rep, ok := s.replay(s.meta, s.dec)
	if rep == nil {
		return nil, nil, fmt.Errorf("minimize: replay budget too small to verify the input bundle")
	}
	if !ok {
		return nil, nil, fmt.Errorf("minimize: bundle does not fail its property (outcome: %v)", rep.Err)
	}
	s.accept(s.meta, s.dec, rep)
	s.stats.FromDecisions = len(s.dec)
	s.stats.FromSteps = rep.Steps
	s.stats.FromCrashes = len(s.meta.Crashes)
	s.stats.FromQuantum = s.meta.Quantum
	s.stats.FromLevels = s.meta.V

	// Fixpoint over the reduction passes: each pass may enable further
	// reductions in the others (a removed crash point shortens the run,
	// a lowered quantum removes preemption decisions, ...).
	for {
		before := s.stats.Accepted
		s.ddmin()
		s.lowerDecisions()
		s.dropCrashes()
		s.lowerQuantum()
		s.lowerLevels()
		if s.stats.Accepted == before || s.exhausted() {
			break
		}
	}

	s.stats.ToDecisions = len(s.dec)
	s.stats.ToSteps = s.rep.Steps
	s.stats.ToCrashes = len(s.meta.Crashes)
	s.stats.ToQuantum = s.meta.Quantum
	s.stats.ToLevels = s.meta.V
	s.stats.BudgetExhausted = s.exhausted()

	// Never trust a cached result: the returned bundle is re-captured
	// from one final fresh execution of the minimized schedule.
	min, frep, err := artifact.Capture(s.meta, artifact.Sched{Decisions: s.dec})
	if err != nil {
		return nil, nil, err
	}
	if frep.Err == nil || !match(frep.Err) {
		return nil, nil, fmt.Errorf("minimize: final re-verification diverged (nondeterministic workload?): %v", frep.Err)
	}
	return min, &s.stats, nil
}

func (s *shrinker) exhausted() bool {
	return s.opts.Budget > 0 && s.stats.Tried >= s.opts.Budget
}

// replay runs one candidate from scratch and reports whether it still
// fails per Match. A nil report means the budget is exhausted.
func (s *shrinker) replay(meta artifact.Meta, dec []int) (*artifact.Report, bool) {
	if s.exhausted() {
		return nil, false
	}
	s.stats.Tried++
	rep, err := artifact.Replay(&artifact.Bundle{Version: artifact.Version, Meta: meta,
		Sched: artifact.Sched{Decisions: dec}}, artifact.ReplayOptions{})
	if err != nil {
		// Unknown workload etc. — cannot happen for candidates derived
		// from a bundle that already replayed, but fail closed.
		return &artifact.Report{Err: err}, false
	}
	match := s.opts.Match
	if match == nil {
		match = func(error) bool { return true }
	}
	return rep, rep.Err != nil && match(rep.Err)
}

// accept installs a still-failing candidate as the current best, first
// canonicalizing the decision vector against the observed fan-outs:
// indices past the last decision point are dead, decisions above their
// fan-out are clamped to the alias actually executed, and trailing
// zeros are dropped (past the script's end the replay picks 0 anyway).
// These rewrites only relabel the identical run, so no re-verification
// is needed.
func (s *shrinker) accept(meta artifact.Meta, dec []int, rep *artifact.Report) {
	if len(dec) > len(rep.Fanouts) {
		dec = dec[:len(rep.Fanouts)]
	}
	for i, f := range rep.Fanouts {
		if i < len(dec) && f > 0 && dec[i] > f-1 {
			dec[i] = f - 1
		}
	}
	n := len(dec)
	for n > 0 && dec[n-1] == 0 {
		n--
	}
	s.meta, s.dec, s.rep = meta, dec[:n:n], rep
}

// try replays (meta, dec) and accepts it if it still fails.
func (s *shrinker) try(meta artifact.Meta, dec []int) bool {
	rep, ok := s.replay(meta, dec)
	if !ok {
		return false
	}
	s.stats.Accepted++
	s.accept(meta, dec, rep)
	return true
}

// without returns dec with [lo,hi) removed.
func without(dec []int, lo, hi int) []int {
	out := make([]int, 0, len(dec)-(hi-lo))
	out = append(out, dec[:lo]...)
	return append(out, dec[hi:]...)
}

// ddmin is delta debugging over the decision vector: try dropping
// chunks, halving the chunk size whenever no chunk at the current
// granularity can go.
func (s *shrinker) ddmin() {
	chunk := (len(s.dec) + 1) / 2
	for chunk >= 1 && !s.exhausted() {
		removed := false
		for lo := 0; lo < len(s.dec); {
			hi := lo + chunk
			if hi > len(s.dec) {
				hi = len(s.dec)
			}
			if s.try(s.meta, without(s.dec, lo, hi)) {
				removed = true
				// s.dec shrank; retry the same offset.
				continue
			}
			if s.exhausted() {
				return
			}
			lo = hi
		}
		if !removed {
			chunk /= 2
		} else if chunk > len(s.dec) {
			chunk = len(s.dec)
		}
	}
}

// lowerDecisions tries to lower each remaining decision toward
// candidate 0 (the kernel's default pick), accepting the lowest value
// that still fails. Lower indices both read better and convert to
// trailing zeros that trim away.
func (s *shrinker) lowerDecisions() {
	for i := 0; i < len(s.dec); i++ {
		for v := 0; v < s.dec[i]; v++ {
			cand := append([]int(nil), s.dec...)
			cand[i] = v
			if s.try(s.meta, cand) {
				break
			}
			if s.exhausted() {
				return
			}
			if i >= len(s.dec) {
				break
			}
		}
	}
}

// dropCrashes tries to remove each planned crash point.
func (s *shrinker) dropCrashes() {
	for i := 0; i < len(s.meta.Crashes); {
		meta := s.meta
		meta.Crashes = append([]sched.CrashPoint(nil), s.meta.Crashes...)
		meta.Crashes = append(meta.Crashes[:i], meta.Crashes[i+1:]...)
		if len(meta.Crashes) == 0 {
			meta.Crashes = nil
		}
		if s.try(meta, append([]int(nil), s.dec...)) {
			continue
		}
		if s.exhausted() {
			return
		}
		i++
	}
}

// lowerQuantum walks the quantum down while the property still fails; a
// counterexample at a smaller Q is a strictly stronger exhibit against
// the quantum premise.
func (s *shrinker) lowerQuantum() {
	for s.meta.Quantum > 1 {
		meta := s.meta
		meta.Quantum--
		if !s.try(meta, append([]int(nil), s.dec...)) {
			return
		}
	}
}

// lowerLevels walks the priority-level count down while the property
// still fails, flattening priority structure the violation never needed.
func (s *shrinker) lowerLevels() {
	for s.meta.V > 1 {
		meta := s.meta
		meta.V--
		if !s.try(meta, append([]int(nil), s.dec...)) {
			return
		}
	}
}
