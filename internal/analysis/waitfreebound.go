package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WaitFreeBound is the static form of the paper's progress argument:
// every loop and every recursion cycle in algorithm code must be
// syntactically bounded by a constant or a model parameter (n, p, v,
// m, l/levels, ...), or carry a validated `//repro:bound <expr>
// <reason>` marker. From the resulting per-loop trip bounds it derives
// each function's worst-case atomic-statement count (one statement per
// sim.Ctx access, Theorems 1/2/4's unit) and exports it as a
// cross-package fact; exported operations land in the bounds report
// that internal/artifact reconciles against the registry's declared
// WaitFreeBound values.
//
// Soundness caveats (DESIGN.md §13): identifiers are trusted as model
// parameters by naming convention and are not checked loop-invariant;
// interface dispatch and calls through function values cost zero and
// mark the fact Incomplete; range loops and len()/cap()-bounded loops
// are accepted as syntactically bounded (the collection is finite) but
// their bounds are symbolic unless a marker refines them. The dynamic
// check.Options.WaitFreeBound property backstops all three gaps.
var WaitFreeBound = &Analyzer{
	Name:      "waitfreebound",
	Doc:       "loops and recursion in algorithm packages must be bounded by a constant, a model parameter, or a reasoned //repro:bound marker; derives per-operation statement bounds",
	SkipTests: true,
	AppliesTo: func(pkgPath string) bool { return pathIn(pkgPath, boundPackages...) },
	Run:       runWaitFreeBound,
}

// Loop classification: how much the analyzer trusts a derived trip
// bound.
const (
	classTrusted = iota // constant or model-parameter bound: self-sufficient
	classLen            // bounded by a collection's size: accepted, symbolic
	classUnknown        // not syntactically bounded: marker required
)

func runWaitFreeBound(pass *Pass) error {
	// Pass 1: loop discipline. Every for/range statement anywhere in
	// the package (methods, closures, initializers) is classified;
	// unbounded ones need a covering //repro:bound marker or are
	// reported. The resulting trip bounds feed the cost walker.
	loops := map[ast.Node]*Bound{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				b, class := deriveForBound(pass, n)
				loops[n] = resolveLoopBound(pass, n.Pos(), b, class)
			case *ast.RangeStmt:
				b, class := deriveRangeBound(pass, n)
				loops[n] = resolveLoopBound(pass, n.Pos(), b, class)
			}
			return true
		})
	}

	decls, order := declaredFuncs(pass)

	// Pass 2: recursion. Build the intra-package static call graph and
	// find cycle members; each needs a bound marker on its declaration
	// (the expression bounds the whole call, depth included).
	edges := map[*types.Func][]*types.Func{}
	for _, fn := range order {
		seen := map[*types.Func]bool{}
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pass.Info, call)
			if callee != nil && decls[callee] != nil && !seen[callee] && !isInterfaceCall(pass.Info, call) {
				seen[callee] = true
				edges[fn] = append(edges[fn], callee)
			}
			return true
		})
	}
	w := &costWalker{pass: pass, loops: loops, decls: decls, nodes: map[*types.Func]*costNode{}}
	for _, fn := range cycleMembers(order, edges) {
		decl := decls[fn]
		node := w.node(fn)
		node.fixed = true
		if m := pass.pkg.boundMarkerFor(pass.Fset.Position(decl.Pos())); m != nil {
			m.Used = true
			node.cost = m.Bound
		} else {
			pass.Reportf(decl.Name.Pos(),
				"recursive call cycle through %s has no statically bounded depth; add //repro:bound <expr> <reason> on the declaration bounding the whole call's statement count",
				fn.Name())
			node.cost = BUnbounded()
		}
	}

	// Pass 3: derive per-function worst-case statement counts and
	// export them as facts; exported operations feed the bounds report.
	facts := pass.pkg.ensureFacts()
	for _, fn := range order {
		decl := decls[fn]
		node := w.funcCost(fn)
		ff := facts.fact(fn.FullName())
		ff.Cost = node.cost
		ff.Incomplete = append(ff.Incomplete, sortedKeys(node.incomplete)...)
		ff.Op = isOperation(decl, fn)
		pos := pass.Fset.Position(decl.Pos())
		ff.File, ff.Line = pos.Filename, pos.Line
	}
	return nil
}

// resolveLoopBound reconciles a derived trip bound with any covering
// //repro:bound marker and reports undisciplined loops.
func resolveLoopBound(pass *Pass, pos token.Pos, derived *Bound, class int) *Bound {
	m := pass.pkg.boundMarkerFor(pass.Fset.Position(pos))
	if class == classTrusted {
		// A marker here bounds nothing the analyzer doesn't already
		// know; leaving it unused makes MarkerProblems report it stale.
		return derived
	}
	if m != nil {
		m.Used = true
		return m.Bound
	}
	if class == classLen {
		return derived
	}
	pass.Reportf(pos,
		"unbounded loop: not syntactically bounded by a constant or model parameter; add //repro:bound <expr> <reason> justifying its trip bound")
	return BUnbounded()
}

// deriveForBound bounds a 3-clause counting loop:
//
//	for i := A; i < B; i++   → B − A      (A a non-negative int literal, else B)
//	for i := A; i <= B; i++  → B − A + 1
//	for i := A; i > B; i--   → A − B      (B a non-negative int literal)
//	for i := A; i >= B; i--  → A − B + 1
//
// The bound expression B (resp. A) must reduce to constants, model
// parameters, or len/cap of a collection; anything else — including
// cond-only and infinite loops — is classUnknown and needs a marker.
func deriveForBound(pass *Pass, fs *ast.ForStmt) (*Bound, int) {
	if fs.Cond == nil || fs.Init == nil || fs.Post == nil {
		return nil, classUnknown
	}
	init, ok := fs.Init.(*ast.AssignStmt)
	if !ok || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return nil, classUnknown
	}
	iv, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, classUnknown
	}
	post, ok := fs.Post.(*ast.IncDecStmt)
	if !ok || !sameIdent(post.X, iv) {
		return nil, classUnknown
	}
	cond, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok {
		return nil, classUnknown
	}
	op, limit := cond.Op, ast.Expr(nil)
	switch {
	case sameIdent(cond.X, iv):
		limit = cond.Y
	case sameIdent(cond.Y, iv):
		limit = cond.X
		op = flipCmp(op)
	default:
		return nil, classUnknown
	}
	switch {
	case post.Tok == token.INC && (op == token.LSS || op == token.LEQ):
		b, class := exprBound(pass, limit)
		if class == classUnknown {
			return nil, classUnknown
		}
		if op == token.LEQ {
			b = BAdd(b, BConst(1))
		}
		if n, ok := intLit(init.Rhs[0]); ok && n > 0 {
			b = BSub(b, BConst(n))
		}
		return b, class
	case post.Tok == token.DEC && (op == token.GTR || op == token.GEQ):
		// Descending: the floor must be a non-negative literal (the
		// repo's descending loops all run to 0), the ceiling A follows
		// the same expression rules.
		floor, ok := intLit(limit)
		if !ok || floor < 0 {
			return nil, classUnknown
		}
		b, class := exprBound(pass, init.Rhs[0])
		if class == classUnknown {
			return nil, classUnknown
		}
		if op == token.GEQ {
			b = BAdd(b, BConst(1))
		}
		if floor > 0 {
			b = BSub(b, BConst(floor))
		}
		return b, class
	}
	return nil, classUnknown
}

// deriveRangeBound bounds a range statement. Ranging a collection is
// always syntactically bounded (the collection is finite); ranging an
// integer follows the expression rules; ranging a channel or function
// iterator is unknown.
func deriveRangeBound(pass *Pass, rs *ast.RangeStmt) (*Bound, int) {
	tv, ok := pass.Info.Types[rs.X]
	if !ok {
		return nil, classUnknown
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Basic:
		if t.Info()&types.IsInteger != 0 {
			return exprBound(pass, rs.X)
		}
		if t.Info()&types.IsString != 0 {
			return BSym("len(" + types.ExprString(rs.X) + ")"), classLen
		}
	case *types.Array:
		return BConst(t.Len()), classTrusted
	case *types.Pointer:
		if a, ok := t.Elem().Underlying().(*types.Array); ok {
			return BConst(a.Len()), classTrusted
		}
	case *types.Slice, *types.Map:
		return BSym("len(" + types.ExprString(rs.X) + ")"), classLen
	}
	return nil, classUnknown
}

// exprBound turns a source bound expression into a Bound: int literals
// and typed constants fold to constants; identifiers (and selector
// fields, reduced to their last component) matching the model-parameter
// vocabulary become trusted symbols; len/cap calls become symbolic
// collection sizes; +, − and * combine. Anything else is unknown.
func exprBound(pass *Pass, e ast.Expr) (*Bound, int) {
	e = ast.Unparen(e)
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if n, exact := constant.Int64Val(tv.Value); exact {
			return BConst(n), classTrusted
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		return identBound(e.Name)
	case *ast.SelectorExpr:
		return identBound(e.Sel.Name)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && len(e.Args) == 1 {
			return BSym(id.Name + "(" + types.ExprString(e.Args[0]) + ")"), classLen
		}
	case *ast.BinaryExpr:
		x, cx := exprBound(pass, e.X)
		y, cy := exprBound(pass, e.Y)
		if cx == classUnknown || cy == classUnknown {
			return nil, classUnknown
		}
		class := cx
		if cy > class {
			class = cy
		}
		switch e.Op {
		case token.ADD:
			return BAdd(x, y), class
		case token.SUB:
			return BSub(x, y), class
		case token.MUL:
			return BMul(x, y), class
		}
	}
	return nil, classUnknown
}

// identBound maps a source identifier to a model-parameter symbol when
// the (lowercased) name is in the trusted vocabulary.
func identBound(name string) (*Bound, int) {
	lower := strings.ToLower(name)
	if trustedSourceParam(lower) {
		return BSym(lower), classTrusted
	}
	return nil, classUnknown
}

func sameIdent(e ast.Expr, id *ast.Ident) bool {
	x, ok := ast.Unparen(e).(*ast.Ident)
	return ok && x.Name == id.Name
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

func intLit(e ast.Expr) (int64, bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.SUB {
		n, ok := intLit(u.X)
		return -n, ok
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	var n int64
	for _, c := range lit.Value {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// cycleMembers returns the functions on recursion cycles (members of a
// multi-node strongly connected component, or with a self edge), in
// source order. Tarjan's algorithm over the intra-package call graph.
func cycleMembers(order []*types.Func, edges map[*types.Func][]*types.Func) []*types.Func {
	index := map[*types.Func]int{}
	low := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	next := 0
	inCycle := map[*types.Func]bool{}

	var strong func(fn *types.Func)
	strong = func(fn *types.Func) {
		index[fn] = next
		low[fn] = next
		next++
		stack = append(stack, fn)
		onStack[fn] = true
		for _, m := range edges[fn] {
			if _, seen := index[m]; !seen {
				strong(m)
				if low[m] < low[fn] {
					low[fn] = low[m]
				}
			} else if onStack[m] && index[m] < low[fn] {
				low[fn] = index[m]
			}
		}
		if low[fn] == index[fn] {
			var scc []*types.Func
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == fn {
					break
				}
			}
			if len(scc) > 1 {
				for _, m := range scc {
					inCycle[m] = true
				}
			}
		}
	}
	for _, fn := range order {
		if _, seen := index[fn]; !seen {
			strong(fn)
		}
	}
	// Self edges are cycles Tarjan's SCC size test misses.
	for fn, ms := range edges {
		for _, m := range ms {
			if m == fn {
				inCycle[fn] = true
			}
		}
	}
	var out []*types.Func
	for _, fn := range order {
		if inCycle[fn] {
			out = append(out, fn)
		}
	}
	return out
}

// A costNode memoizes one function's derived cost.
type costNode struct {
	cost       *Bound
	incomplete map[string]bool
	fixed      bool // recursion: cost pinned by marker or Unbounded
	visiting   bool
}

// costWalker derives worst-case statement counts: one per sim.Ctx
// shared access (Read/Write/CCons/CASPrim/LoadPrim), n for Local(n),
// loop bodies multiplied by their trip bounds, branches joined by max,
// same-package calls inlined, cross-package calls resolved through dep
// facts.
type costWalker struct {
	pass  *Pass
	loops map[ast.Node]*Bound
	decls map[*types.Func]*ast.FuncDecl
	nodes map[*types.Func]*costNode
}

func (w *costWalker) node(fn *types.Func) *costNode {
	n := w.nodes[fn]
	if n == nil {
		n = &costNode{incomplete: map[string]bool{}}
		w.nodes[fn] = n
	}
	return n
}

func (w *costWalker) funcCost(fn *types.Func) *costNode {
	node := w.node(fn)
	if node.fixed || node.cost != nil {
		return node
	}
	if node.visiting {
		// Unmarked cycle member costs were pinned Unbounded in pass 2;
		// reaching here would mean a cycle the SCC pass missed.
		node.cost = BUnbounded()
		return node
	}
	node.visiting = true
	node.cost = w.block(fn, w.decls[fn].Body)
	node.visiting = false
	return node
}

func (w *costWalker) block(fn *types.Func, b *ast.BlockStmt) *Bound {
	if b == nil {
		return BConst(0)
	}
	return w.stmts(fn, b.List)
}

func (w *costWalker) stmts(fn *types.Func, list []ast.Stmt) *Bound {
	total := BConst(0)
	for _, s := range list {
		total = BAdd(total, w.stmt(fn, s))
	}
	return total
}

func (w *costWalker) stmt(fn *types.Func, s ast.Stmt) *Bound {
	switch s := s.(type) {
	case nil:
		return BConst(0)
	case *ast.ExprStmt:
		return w.expr(fn, s.X)
	case *ast.AssignStmt:
		total := BConst(0)
		for _, e := range s.Rhs {
			total = BAdd(total, w.expr(fn, e))
		}
		for _, e := range s.Lhs {
			total = BAdd(total, w.expr(fn, e))
		}
		return total
	case *ast.ReturnStmt:
		total := BConst(0)
		for _, e := range s.Results {
			total = BAdd(total, w.expr(fn, e))
		}
		return total
	case *ast.IfStmt:
		return BAdd(w.stmt(fn, s.Init), w.expr(fn, s.Cond),
			BMax(w.block(fn, s.Body), w.stmt(fn, s.Else)))
	case *ast.ForStmt:
		trips := w.loops[s]
		iter := BAdd(w.expr(fn, s.Cond), w.block(fn, s.Body), w.stmt(fn, s.Post))
		// The condition runs once more than the body (the exiting test).
		return BAdd(w.stmt(fn, s.Init), BMul(trips, iter), w.expr(fn, s.Cond))
	case *ast.RangeStmt:
		return BAdd(w.expr(fn, s.X), BMul(w.loops[s], w.block(fn, s.Body)))
	case *ast.BlockStmt:
		return w.stmts(fn, s.List)
	case *ast.SwitchStmt:
		total := BAdd(w.stmt(fn, s.Init), w.expr(fn, s.Tag))
		var branches []*Bound
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			b := w.stmts(fn, cc.Body)
			for _, e := range cc.List {
				b = BAdd(b, w.expr(fn, e))
			}
			branches = append(branches, b)
		}
		return BAdd(total, BMax(branches...))
	case *ast.TypeSwitchStmt:
		total := BAdd(w.stmt(fn, s.Init), w.stmt(fn, s.Assign))
		var branches []*Bound
		for _, c := range s.Body.List {
			branches = append(branches, w.stmts(fn, c.(*ast.CaseClause).Body))
		}
		return BAdd(total, BMax(branches...))
	case *ast.LabeledStmt:
		return w.stmt(fn, s.Stmt)
	case *ast.IncDecStmt:
		return w.expr(fn, s.X)
	case *ast.DeferStmt:
		return w.expr(fn, s.Call)
	case *ast.GoStmt:
		return w.expr(fn, s.Call)
	case *ast.DeclStmt:
		total := BConst(0)
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						total = BAdd(total, w.expr(fn, e))
					}
				}
			}
		}
		return total
	case *ast.SendStmt:
		return BAdd(w.expr(fn, s.Chan), w.expr(fn, s.Value))
	case *ast.SelectStmt:
		var branches []*Bound
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branches = append(branches, BAdd(w.stmt(fn, cc.Comm), w.stmts(fn, cc.Body)))
		}
		return BMax(branches...)
	}
	return BConst(0)
}

func (w *costWalker) expr(fn *types.Func, e ast.Expr) *Bound {
	switch e := e.(type) {
	case nil:
		return BConst(0)
	case *ast.CallExpr:
		total := BConst(0)
		for _, a := range e.Args {
			total = BAdd(total, w.expr(fn, a))
		}
		return BAdd(total, w.call(fn, e))
	case *ast.FuncLit:
		// A closure's body costs nothing where it is *built*; it is
		// charged where it is invoked (immediately-invoked literals are
		// inlined by w.call; escaping closures run under their own
		// invocation's accounting).
		return BConst(0)
	case *ast.ParenExpr:
		return w.expr(fn, e.X)
	case *ast.UnaryExpr:
		return w.expr(fn, e.X)
	case *ast.StarExpr:
		return w.expr(fn, e.X)
	case *ast.BinaryExpr:
		return BAdd(w.expr(fn, e.X), w.expr(fn, e.Y))
	case *ast.SelectorExpr:
		return w.expr(fn, e.X)
	case *ast.IndexExpr:
		return BAdd(w.expr(fn, e.X), w.expr(fn, e.Index))
	case *ast.SliceExpr:
		return BAdd(w.expr(fn, e.X), w.expr(fn, e.Low), w.expr(fn, e.High), w.expr(fn, e.Max))
	case *ast.CompositeLit:
		total := BConst(0)
		for _, el := range e.Elts {
			total = BAdd(total, w.expr(fn, el))
		}
		return total
	case *ast.KeyValueExpr:
		return BAdd(w.expr(fn, e.Key), w.expr(fn, e.Value))
	case *ast.TypeAssertExpr:
		return w.expr(fn, e.X)
	}
	return BConst(0)
}

// call charges one static call: Ctx accessors charge their statements,
// same-package callees are inlined, cross-package callees resolve
// through dep facts, dynamic and interface calls cost zero and mark the
// function Incomplete.
func (w *costWalker) call(fn *types.Func, call *ast.CallExpr) *Bound {
	node := w.node(fn)
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return w.block(fn, lit.Body) // immediately-invoked closure
	}
	callee := staticCallee(w.pass.Info, call)
	if callee == nil {
		if isDynamicCall(w.pass.Info, call) {
			node.incomplete["call through a function value"] = true
		}
		return BConst(0)
	}
	if isInterfaceCall(w.pass.Info, call) {
		node.incomplete["interface dispatch to "+callee.Name()] = true
		return BConst(0)
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return BConst(0)
	}
	switch {
	case pkg.Path() == simPath:
		return w.ctxCharge(fn, callee, call)
	case pkg.Path() == w.pass.Pkg.Path():
		if w.decls[callee] == nil {
			return BConst(0)
		}
		sub := w.funcCost(callee)
		for k := range sub.incomplete {
			node.incomplete[k] = true
		}
		return sub.cost
	case pathIn(pkg.Path(), boundPackages...):
		if ff := w.pass.pkg.depFact(pkg.Path(), callee.FullName()); ff != nil {
			for _, k := range ff.Incomplete {
				node.incomplete[k] = true
			}
			return ff.Cost
		}
		node.incomplete["unresolved call to "+callee.FullName()] = true
		return BConst(0)
	}
	// mem, stdlib, and engine packages charge no statements themselves
	// (raw mem access is atomicaccess/statementcharge's department).
	return BConst(0)
}

// ctxCharge prices a call into the sim package: the five Ctx shared
// accessors charge one statement, Local(n) charges n, everything else
// (ID, Pri, Processor, Now, constructors...) charges zero.
func (w *costWalker) ctxCharge(fn *types.Func, callee *types.Func, call *ast.CallExpr) *Bound {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || typeName(sig.Recv().Type()) != "Ctx" {
		return BConst(0)
	}
	switch callee.Name() {
	case "Read", "Write", "CCons", "CASPrim", "LoadPrim":
		return BConst(1)
	case "Local":
		if len(call.Args) == 1 {
			if tv, ok := w.pass.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if n, exact := constant.Int64Val(tv.Value); exact {
					return BConst(n)
				}
			}
		}
		w.node(fn).incomplete["Local with a non-constant statement count"] = true
		return BConst(0)
	}
	return BConst(0)
}

// isDynamicCall reports whether the call goes through a func-typed
// value (variable, field, parameter) rather than a declared function,
// builtin, or type conversion.
func isDynamicCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok {
		if tv.IsType() || tv.IsBuiltin() {
			return false
		}
		_, isSig := tv.Type.Underlying().(*types.Signature)
		return isSig
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
