package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// A Bound is a symbolic worst-case count: a small expression tree over
// integer constants and model parameters (n, p, v, k, m, ...). The
// waitfreebound analyzer derives one per function (worst-case atomic
// statements per invocation) and one per loop (worst-case trip count);
// `//repro:bound <expr> <reason>` markers parse to one.
//
// Bounds form a join-semilattice with Unbounded as top: any arithmetic
// over Unbounded is Unbounded, except multiplication by the constant 0
// (a loop whose body charges no statement costs nothing however often
// it spins — termination is enforced separately, by the marker
// discipline, not by the cost algebra).
type Bound struct {
	Kind string   `json:"kind"`           // "const", "sym", "add", "sub", "mul", "max", "unbounded"
	N    int64    `json:"n,omitempty"`    // Kind "const"
	Sym  string   `json:"sym,omitempty"`  // Kind "sym"
	Args []*Bound `json:"args,omitempty"` // Kind "add"/"sub"/"mul"/"max"
}

// Bound kinds.
const (
	boundConst     = "const"
	boundSym       = "sym"
	boundAdd       = "add"
	boundSub       = "sub"
	boundMul       = "mul"
	boundMax       = "max"
	boundUnbounded = "unbounded"
)

// BConst returns the constant bound n.
func BConst(n int64) *Bound { return &Bound{Kind: boundConst, N: n} }

// BSym returns the symbolic bound named s (a model parameter or an
// opaque source expression such as "len(o.cells)").
func BSym(s string) *Bound { return &Bound{Kind: boundSym, Sym: s} }

// BUnbounded returns the top element: no static bound.
func BUnbounded() *Bound { return &Bound{Kind: boundUnbounded} }

// IsConst reports whether b is the constant n.
func (b *Bound) IsConst(n int64) bool {
	return b != nil && b.Kind == boundConst && b.N == n
}

// Unbounded reports whether b contains no static bound.
func (b *Bound) Unbounded() bool { return b != nil && b.Kind == boundUnbounded }

// BAdd returns the simplified sum of bounds; nil operands count as 0.
func BAdd(bs ...*Bound) *Bound {
	var (
		c    int64
		rest []*Bound
	)
	for _, b := range bs {
		switch {
		case b == nil:
		case b.Kind == boundUnbounded:
			return BUnbounded()
		case b.Kind == boundConst:
			c += b.N
		case b.Kind == boundAdd:
			inner := BAdd(b.Args...)
			if inner.Unbounded() {
				return BUnbounded()
			}
			if inner.Kind == boundAdd {
				rest = append(rest, inner.Args...)
			} else if !inner.IsConst(0) {
				rest = append(rest, inner)
			}
		default:
			rest = append(rest, b)
		}
	}
	// Re-fold constants that surfaced from nested adds.
	flat := rest[:0]
	for _, b := range rest {
		if b.Kind == boundConst {
			c += b.N
		} else {
			flat = append(flat, b)
		}
	}
	if c != 0 {
		flat = append(flat, BConst(c))
	}
	switch len(flat) {
	case 0:
		return BConst(0)
	case 1:
		return flat[0]
	}
	return &Bound{Kind: boundAdd, Args: append([]*Bound(nil), flat...)}
}

// BSub returns the simplified difference a−b.
func BSub(a, b *Bound) *Bound {
	if a == nil {
		a = BConst(0)
	}
	if b == nil || b.IsConst(0) {
		return a
	}
	if a.Unbounded() || b.Unbounded() {
		return BUnbounded()
	}
	if a.Kind == boundConst && b.Kind == boundConst {
		return BConst(a.N - b.N)
	}
	return &Bound{Kind: boundSub, Args: []*Bound{a, b}}
}

// BMul returns the simplified product a·b. Multiplying Unbounded by the
// constant 0 yields 0 (see the type comment).
func BMul(a, b *Bound) *Bound {
	if a == nil || b == nil || a.IsConst(0) || b.IsConst(0) {
		return BConst(0)
	}
	if a.Unbounded() || b.Unbounded() {
		return BUnbounded()
	}
	if a.IsConst(1) {
		return b
	}
	if b.IsConst(1) {
		return a
	}
	if a.Kind == boundConst && b.Kind == boundConst {
		return BConst(a.N * b.N)
	}
	return &Bound{Kind: boundMul, Args: []*Bound{a, b}}
}

// BMax returns the simplified maximum of bounds; nil operands are
// ignored (max of nothing is 0).
func BMax(bs ...*Bound) *Bound {
	var (
		c     int64
		hasC  bool
		rest  []*Bound
		added = map[string]bool{}
	)
	queue := append([]*Bound(nil), bs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		switch {
		case b == nil:
		case b.Kind == boundUnbounded:
			return BUnbounded()
		case b.Kind == boundConst:
			if !hasC || b.N > c {
				c, hasC = b.N, true
			}
		case b.Kind == boundMax:
			queue = append(queue, b.Args...)
		default:
			if s := b.String(); !added[s] {
				added[s] = true
				rest = append(rest, b)
			}
		}
	}
	if len(rest) == 0 {
		if hasC {
			return BConst(c)
		}
		return BConst(0)
	}
	if hasC && c != 0 {
		rest = append(rest, BConst(c))
	}
	if len(rest) == 1 {
		return rest[0]
	}
	return &Bound{Kind: boundMax, Args: rest}
}

// String renders b in the marker grammar (plus max(...) and len(...)
// symbols, which the grammar cannot express — String is for reports and
// messages, not guaranteed re-parseable).
func (b *Bound) String() string {
	if b == nil {
		return "0"
	}
	switch b.Kind {
	case boundConst:
		return fmt.Sprintf("%d", b.N)
	case boundSym:
		return b.Sym
	case boundUnbounded:
		return "unbounded"
	case boundAdd:
		parts := make([]string, len(b.Args))
		for i, a := range b.Args {
			parts[i] = a.String()
		}
		return strings.Join(parts, "+")
	case boundSub:
		return b.Args[0].String() + "-" + parenIfComposite(b.Args[1])
	case boundMul:
		return parenIfSum(b.Args[0]) + "*" + parenIfSum(b.Args[1])
	case boundMax:
		parts := make([]string, len(b.Args))
		for i, a := range b.Args {
			parts[i] = a.String()
		}
		return "max(" + strings.Join(parts, ",") + ")"
	}
	return "?"
}

func parenIfComposite(b *Bound) string {
	if b.Kind == boundAdd || b.Kind == boundSub || b.Kind == boundMul {
		return "(" + b.String() + ")"
	}
	return b.String()
}

func parenIfSum(b *Bound) string {
	if b.Kind == boundAdd || b.Kind == boundSub {
		return "(" + b.String() + ")"
	}
	return b.String()
}

// Eval evaluates b under env (symbol → value). The second result is
// false when b is unbounded or mentions a symbol absent from env.
func (b *Bound) Eval(env map[string]int64) (int64, bool) {
	if b == nil {
		return 0, true
	}
	switch b.Kind {
	case boundConst:
		return b.N, true
	case boundSym:
		v, ok := env[b.Sym]
		return v, ok
	case boundUnbounded:
		return 0, false
	case boundAdd:
		var sum int64
		for _, a := range b.Args {
			v, ok := a.Eval(env)
			if !ok {
				return 0, false
			}
			sum += v
		}
		return sum, true
	case boundSub:
		x, ok1 := b.Args[0].Eval(env)
		y, ok2 := b.Args[1].Eval(env)
		return x - y, ok1 && ok2
	case boundMul:
		x, ok1 := b.Args[0].Eval(env)
		y, ok2 := b.Args[1].Eval(env)
		return x * y, ok1 && ok2
	case boundMax:
		var best int64
		for i, a := range b.Args {
			v, ok := a.Eval(env)
			if !ok {
				return 0, false
			}
			if i == 0 || v > best {
				best = v
			}
		}
		return best, true
	}
	return 0, false
}

// Syms appends every distinct symbol mentioned in b, sorted.
func (b *Bound) Syms() []string {
	set := map[string]bool{}
	var walk func(*Bound)
	walk = func(b *Bound) {
		if b == nil {
			return
		}
		if b.Kind == boundSym {
			set[b.Sym] = true
		}
		for _, a := range b.Args {
			walk(a)
		}
	}
	walk(b)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// boundParams is the vocabulary of model parameters a //repro:bound
// expression may mention, matched case-insensitively. They mirror the
// paper's quantities: n processes, p processors, v priority levels, k
// blessed processors, m processes per (processor, priority) class, l /
// levels for the Fig. 7 level count, plus the repo's own knobs (size
// for renaming's namespace, q for the quantum, pri for a process's
// priority, opsper for harness operations per process, threshold for
// the reclamation drain cadence).
var boundParams = map[string]bool{
	"n": true, "p": true, "v": true, "k": true, "m": true,
	"l": true, "levels": true, "size": true, "q": true,
	"pri": true, "opsper": true, "threshold": true,
}

// BoundParams returns the marker-expression parameter vocabulary,
// sorted.
func BoundParams() []string {
	out := make([]string, 0, len(boundParams))
	for s := range boundParams {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// trustedSourceParam reports whether a source identifier (already
// lowercased, selector paths reduced to their last component) is
// accepted as a model parameter without a marker. `k` is excluded: in
// this codebase a source-level k is a chain index or map key, never the
// paper's K, so a loop bounded by one needs an explicit marker.
func trustedSourceParam(name string) bool {
	return name != "k" && boundParams[name]
}

// ParseBound parses the //repro:bound expression grammar:
//
//	expr   := term (('+'|'-') term)*
//	term   := factor ('*' factor)*
//	factor := INT | PARAM | 'unbounded' | 'max' '(' expr (',' expr)* ')' | '(' expr ')'
//
// Identifiers are lowercased; the caller checks them against
// BoundParams. Whitespace is not allowed (the expression is a single
// whitespace-delimited marker field).
func ParseBound(s string) (*Bound, error) {
	p := &boundParser{src: s}
	b, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("trailing %q", p.src[p.pos:])
	}
	return b, nil
}

type boundParser struct {
	src string
	pos int
}

func (p *boundParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *boundParser) parseExpr() (*Bound, error) {
	b, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '+':
			p.pos++
			t, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			b = BAdd(b, t)
		case '-':
			p.pos++
			t, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			b = BSub(b, t)
		default:
			return b, nil
		}
	}
}

func (p *boundParser) parseTerm() (*Bound, error) {
	b, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek() == '*' {
		p.pos++
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		b = BMul(b, f)
	}
	return b, nil
}

func (p *boundParser) parseFactor() (*Bound, error) {
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ) at offset %d", p.pos)
		}
		p.pos++
		return b, nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.peek() >= '0' && p.peek() <= '9' {
			p.pos++
		}
		var n int64
		if _, err := fmt.Sscanf(p.src[start:p.pos], "%d", &n); err != nil {
			return nil, err
		}
		return BConst(n), nil
	case isIdentByte(c):
		start := p.pos
		for isIdentByte(p.peek()) || (p.peek() >= '0' && p.peek() <= '9') {
			p.pos++
		}
		name := strings.ToLower(p.src[start:p.pos])
		if name == "unbounded" {
			return BUnbounded(), nil
		}
		if name == "max" && p.peek() == '(' {
			p.pos++
			var args []*Bound
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.peek() == ',' {
					p.pos++
					continue
				}
				break
			}
			if p.peek() != ')' {
				return nil, fmt.Errorf("missing ) at offset %d", p.pos)
			}
			p.pos++
			return BMax(args...), nil
		}
		return BSym(name), nil
	case c == 0:
		return nil, fmt.Errorf("unexpected end of expression")
	default:
		return nil, fmt.Errorf("unexpected %q at offset %d", string(c), p.pos)
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// MarshalJSON/UnmarshalJSON use the struct shape directly; declared so a
// nil *Bound round-trips as JSON null.
var (
	_ json.Marshaler   = (*Bound)(nil)
	_ json.Unmarshaler = (*Bound)(nil)
)

type boundJSON struct {
	Kind string   `json:"kind"`
	N    int64    `json:"n,omitempty"`
	Sym  string   `json:"sym,omitempty"`
	Args []*Bound `json:"args,omitempty"`
}

// MarshalJSON encodes the expression tree.
func (b *Bound) MarshalJSON() ([]byte, error) {
	if b == nil {
		return []byte("null"), nil
	}
	return json.Marshal(boundJSON{Kind: b.Kind, N: b.N, Sym: b.Sym, Args: b.Args})
}

// UnmarshalJSON decodes the expression tree.
func (b *Bound) UnmarshalJSON(data []byte) error {
	var v boundJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	b.Kind, b.N, b.Sym, b.Args = v.Kind, v.N, v.Sym, v.Args
	return nil
}
