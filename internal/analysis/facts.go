package analysis

import "sort"

// A FuncFact is what the interprocedural analyzers export about one
// function, keyed by types.Func.FullName (e.g.
// "(*repro/internal/unicons.Object).Decide"). Facts flow from a
// package's pass to every dependent package's pass, so waitfreebound
// and statementcharge resolve cross-package calls without re-analyzing
// the callee — the modular-facts analogue of x/tools' analysis.Fact.
type FuncFact struct {
	// Name is the types.Func.FullName of the function.
	Name string `json:"name"`
	// Op marks an exported operation: an exported function or method
	// taking a *sim.Ctx (the unit the paper's per-invocation bounds are
	// stated over).
	Op bool `json:"op,omitempty"`
	// Cost is the derived worst-case atomic-statement count of one call
	// (waitfreebound).
	Cost *Bound `json:"cost,omitempty"`
	// Incomplete lists the reasons Cost is a lower-bound certificate
	// only (interface dispatch, function values, unresolved callees).
	// Empty means Cost covers every statement the call can charge.
	Incomplete []string `json:"incomplete,omitempty"`
	// RawChain is "" when no raw shared-mem accessor is reachable from
	// the function through static calls; otherwise it renders one
	// offending call chain, e.g. "middle → rawHelper → (*mem.Reg).Load"
	// (statementcharge).
	RawChain string `json:"rawChain,omitempty"`
	// File/Line locate the declaration (driver-root-relative in cached
	// facts).
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
}

// PackageFacts is every exported fact of one package.
type PackageFacts struct {
	Path  string               `json:"path"`
	Funcs map[string]*FuncFact `json:"funcs"`
}

// fact returns the named FuncFact, creating it on first use.
func (pf *PackageFacts) fact(name string) *FuncFact {
	if pf.Funcs == nil {
		pf.Funcs = map[string]*FuncFact{}
	}
	f := pf.Funcs[name]
	if f == nil {
		f = &FuncFact{Name: name}
		pf.Funcs[name] = f
	}
	return f
}

// sortedFuncs returns the facts in Name order.
func (pf *PackageFacts) sortedFuncs() []*FuncFact {
	out := make([]*FuncFact, 0, len(pf.Funcs))
	for _, f := range pf.Funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Facts returns the facts the analyzers exported for pkg (nil before
// any fact-producing analyzer has run).
func (pkg *Package) Facts() *PackageFacts { return pkg.facts }

// SetDepFacts installs the facts of pkg's (transitive) dependencies,
// keyed by import path. The driver calls this before running analyzers
// so cross-package calls resolve; analysistest leaves it empty.
func (pkg *Package) SetDepFacts(deps map[string]*PackageFacts) { pkg.depFacts = deps }

// depFact resolves the fact for a function in dependency package path,
// or nil.
func (pkg *Package) depFact(path, fullName string) *FuncFact {
	pf := pkg.depFacts[path]
	if pf == nil {
		return nil
	}
	return pf.Funcs[fullName]
}

// ensureFacts returns pkg's fact set, creating it on first use.
func (pkg *Package) ensureFacts() *PackageFacts {
	if pkg.facts == nil {
		pkg.facts = &PackageFacts{Path: pkg.Path}
	}
	return pkg.facts
}
