package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StatementCharge is the interprocedural complement to atomicaccess:
// it proves no exported operation reaches a raw shared-mem accessor
// *through helper calls* — the laundering the intra-package,
// single-site atomicaccess pass cannot see. Direct in-body raw access
// stays atomicaccess's report (one finding per site, not two); this
// pass flags the call edge from an operation into any function whose
// transitive static call graph touches a raw accessor, across packages
// via the RawChain fact.
//
// Soundness caveat (DESIGN.md §13): calls through interfaces and
// function values are assumed clean — the concrete body is statically
// unknown — so a raw access hidden behind dynamic dispatch is only
// caught by atomicaccess at its definition site (which suffices unless
// the definition site carries a post-run allow marker *and* the value
// is invoked mid-run; the Auditor polices that dynamically).
var StatementCharge = &Analyzer{
	Name:      "statementcharge",
	Doc:       "every shared-mem access reachable from an exported algorithm operation must be charged through sim.Ctx; flags raw accessors laundered through helper calls, across packages",
	AllowKeys: []string{"charge"},
	SkipTests: true,
	AppliesTo: func(pkgPath string) bool { return pathIn(pkgPath, boundPackages...) },
	Run:       runStatementCharge,
}

type chargeNode struct {
	decl *ast.FuncDecl
	// ownRaw describes the function's first direct raw accessor use
	// ("" if none). Allow markers don't clear it: a post-run marker
	// suppresses atomicaccess's diagnostic at the site, but the
	// function still touches raw memory, and an operation calling it
	// mid-run is exactly the bug this pass exists to catch.
	ownRaw string
	calls  []chargeEdge
	chain  string
	done   bool
	onPath bool
}

type chargeEdge struct {
	pos    token.Pos
	callee *types.Func
}

func runStatementCharge(pass *Pass) error {
	decls, order := declaredFuncs(pass)
	nodes := map[*types.Func]*chargeNode{}
	for _, fn := range order {
		node := &chargeNode{decl: decls[fn]}
		nodes[fn] = node
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if desc := rawMemUse(pass.Info, n); desc != "" && node.ownRaw == "" {
					node.ownRaw = desc + " (" + pass.Fset.Position(n.Sel.Pos()).String() + ")"
				}
			case *ast.CallExpr:
				callee := staticCallee(pass.Info, n)
				if callee != nil && !isInterfaceCall(pass.Info, n) {
					node.calls = append(node.calls, chargeEdge{pos: n.Pos(), callee: callee})
				}
			}
			return true
		})
	}

	var chainOf func(fn *types.Func) string
	// resolve renders the raw-reaching chain starting at (and naming)
	// callee, or "" when callee is clean or unresolvable.
	resolve := func(callee *types.Func) string {
		pkg := callee.Pkg()
		if pkg == nil {
			return ""
		}
		switch {
		case pkg.Path() == pass.Pkg.Path():
			if nodes[callee] == nil {
				return ""
			}
			if c := chainOf(callee); c != "" {
				return callee.Name() + " → " + c
			}
		case pathIn(pkg.Path(), boundPackages...):
			if ff := pass.pkg.depFact(pkg.Path(), callee.FullName()); ff != nil && ff.RawChain != "" {
				return ff.RawChain
			}
		}
		return ""
	}
	chainOf = func(fn *types.Func) string {
		node := nodes[fn]
		if node.done {
			return node.chain
		}
		if node.onPath {
			return "" // recursion: the raw shows up at another cycle member
		}
		node.onPath = true
		if node.ownRaw != "" {
			node.chain = node.ownRaw
		} else {
			for _, e := range node.calls {
				if c := resolve(e.callee); c != "" {
					node.chain = c
					break
				}
			}
		}
		node.onPath = false
		node.done = true
		return node.chain
	}

	facts := pass.pkg.ensureFacts()
	for _, fn := range order {
		node := nodes[fn]
		chain := chainOf(fn)
		ff := facts.fact(fn.FullName())
		if chain != "" {
			ff.RawChain = fn.Name() + " → " + chain
		}
		if !isOperation(node.decl, fn) {
			continue
		}
		// Direct raw access in the operation body is atomicaccess's
		// finding; here we flag the call edges that launder one.
		for _, e := range node.calls {
			if c := resolve(e.callee); c != "" {
				pass.Reportf(e.pos,
					"operation %s reaches a raw mem access outside sim.Ctx statement accounting: %s; route it through the Ctx or annotate //repro:allow charge <reason>",
					fn.Name(), c)
			}
		}
	}
	return nil
}

// rawMemUse reports whether sel selects a raw mem accessor method or a
// field on a mem type, returning a short description ("" if not). The
// same table atomicaccess enforces site-locally.
func rawMemUse(info *types.Info, sel *ast.SelectorExpr) string {
	s := info.Selections[sel]
	if s == nil {
		return ""
	}
	obj := s.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != memPath {
		return ""
	}
	switch s.Kind() {
	case types.MethodVal, types.MethodExpr:
		recv := typeName(s.Recv())
		if rawAccessors[recv][obj.Name()] {
			return "raw mem." + recv + "." + obj.Name()
		}
	case types.FieldVal:
		return "field " + typeName(s.Recv()) + "." + obj.Name()
	}
	return ""
}
