package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

func TestValidPattern(t *testing.T) {
	for _, p := range []string{".", "./...", "./internal/mem", "./internal/sim/...", "./cmd/reprolint"} {
		if err := analysis.ValidPattern(p); err != nil {
			t.Errorf("ValidPattern(%q) = %v, want nil", p, err)
		}
	}
	for _, p := range []string{"", "internal/mem", "./", "./a//b", "./../escape", "./a/../b", "/abs"} {
		if err := analysis.ValidPattern(p); err == nil {
			t.Errorf("ValidPattern(%q) = nil, want error", p)
		}
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("FindModuleRoot returned %s with no go.mod: %v", root, err)
	}
}

// TestDriverCacheWarm pins the incremental cache contract: a cold run
// analyzes every needed package, an immediate re-run over unchanged
// sources answers entirely from the cache with identical results.
func TestDriverCacheWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks packages from source; skipped in -short")
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	opts := analysis.DriverOptions{
		Root:     root,
		Patterns: []string{"./internal/mem"},
		Cache:    true,
		CacheDir: t.TempDir(),
	}
	cold, err := analysis.RunDriver(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheMisses != cold.Analyzed || cold.CacheHits != 0 {
		t.Errorf("cold run: hits=%d misses=%d analyzed=%d, want all misses",
			cold.CacheHits, cold.CacheMisses, cold.Analyzed)
	}
	warm, err := analysis.RunDriver(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != warm.Analyzed || warm.CacheMisses != 0 {
		t.Errorf("warm run: hits=%d misses=%d analyzed=%d, want all hits",
			warm.CacheHits, warm.CacheMisses, warm.Analyzed)
	}
	if len(warm.Diags) != len(cold.Diags) {
		t.Errorf("warm run diags = %d, cold = %d", len(warm.Diags), len(cold.Diags))
	}
	for i := range warm.Diags {
		if warm.Diags[i] != cold.Diags[i] {
			t.Errorf("diag %d: warm %v != cold %v", i, warm.Diags[i], cold.Diags[i])
		}
	}
}

// TestDriverUnknownPattern pins the driver's selection error.
func TestDriverUnknownPattern(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.RunDriver(analysis.DriverOptions{
		Root:     root,
		Patterns: []string{"./no/such/dir"},
	}); err == nil {
		t.Fatal("expected an error for a pattern matching nothing")
	}
}
