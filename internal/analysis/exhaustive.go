package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive requires every switch over a sim event/op enum (a defined
// integer type in repro/internal/sim with two or more declared
// constants) to either cover every constant or carry a default clause.
// Observers dispatch on these enums; a silently-ignored new event kind
// (the SchedCrash case added with the fault model) is exactly how a
// trace or audit goes quietly incomplete.
var Exhaustive = &Analyzer{
	Name:      "exhaustive",
	Doc:       "switches over sim event/op enums must cover every constant or have a default",
	AllowKeys: []string{"exhaustive"},
	Run:       runExhaustive,
}

func runExhaustive(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != simPath {
				return true
			}
			if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
				return true
			}
			consts := enumConstants(obj.Pkg(), named)
			if len(consts) < 2 {
				return true
			}
			covered := map[string]bool{}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // default clause present
				}
				for _, e := range cc.List {
					if ctv, ok := pass.Info.Types[e]; ok && ctv.Value != nil {
						covered[ctv.Value.ExactString()] = true
					}
				}
			}
			var missing []string
			for val, name := range consts {
				if !covered[val] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(sw.Pos(), "switch over sim.%s misses %s; add the cases or a default clause",
					obj.Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// enumConstants returns value→name for every package-level constant of
// exactly type named declared in pkg. Constants sharing a value (enum
// aliases) collapse to one entry.
func enumConstants(pkg *types.Package, named *types.Named) map[string]string {
	out := map[string]string{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		val := c.Val().ExactString()
		if prev, ok := out[val]; ok {
			out[val] = fmt.Sprintf("%s/%s", prev, name)
		} else {
			out[val] = name
		}
	}
	return out
}
