package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// algorithmPackages are the packages implementing the paper's
// algorithms and their comparators. Their concurrency is *simulated*:
// processes are sim goroutines driven one atomic statement at a time by
// the kernel, so the algorithm code itself must be straight-line Go —
// native synchronization or concurrency there would race the simulated
// schedule and void every counted bound.
var algorithmPackages = []string{
	"repro/internal/unicons",
	"repro/internal/multicons",
	"repro/internal/hybridcas",
	"repro/internal/universal",
	"repro/internal/qlocal",
	"repro/internal/renaming",
	"repro/internal/baseline",
}

// SimOnly forbids native concurrency and environment access in
// algorithm packages: importing sync (tests may import sync/atomic for
// cross-checking the simulator), time, os, runtime, iter, or math/rand
// (either version — stochastic scheduling lives in internal/sched's
// seeded models, never inside an algorithm whose statement bounds are
// being counted), and any go statement or channel type outside test
// files. There is deliberately no allow marker — an algorithm that
// "needs" native concurrency is modeling the wrong machine.
//
// The runtime and iter bans came with the inline coroutine kernel:
// process bodies now execute on a coroutine resumed from the explorer
// worker's own goroutine, so a runtime scheduling call (Gosched,
// LockOSThread, Goexit) from a step function no longer perturbs a
// dedicated goroutine — it stalls or kills the engine worker driving
// thousands of other schedules. Likewise a body that builds its own
// iter.Pull coroutine allocates per run (breaking the pooled
// zero-alloc replay loop) and leaks the nested coroutine when the
// kernel aborts the body during System.Close.
var SimOnly = &Analyzer{
	Name:      "simonly",
	Doc:       "algorithm packages run on the simulated machine only: no sync/time/os/runtime/iter imports, no go statements, no channels",
	AppliesTo: func(pkgPath string) bool { return pathIn(pkgPath, algorithmPackages...) },
	Run:       runSimOnly,
}

func runSimOnly(pass *Pass) error {
	for _, f := range pass.Files {
		isTest := pass.IsTest(f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case path == "sync/atomic":
				if !isTest {
					pass.Reportf(imp.Pos(), "algorithm packages must not import sync/atomic outside tests; concurrency is simulated through sim.Ctx, never native")
				}
			case path == "sync" || strings.HasPrefix(path, "sync/"):
				pass.Reportf(imp.Pos(), "algorithm packages must not import %s; concurrency is simulated through sim.Ctx, never native", path)
			case path == "time" || path == "os":
				pass.Reportf(imp.Pos(), "algorithm packages must not import %s; the simulated machine has no wall clock or environment", path)
			case path == "math/rand" || path == "math/rand/v2":
				if !isTest {
					pass.Reportf(imp.Pos(), "algorithm packages must not import %s; randomness belongs to the scheduler models (internal/sched), never to an algorithm whose step bounds are being counted", path)
				}
			case path == "runtime" || strings.HasPrefix(path, "runtime/"):
				if !isTest {
					pass.Reportf(imp.Pos(), "algorithm packages must not import %s; process bodies run inline on an explorer worker, so runtime scheduling calls stall the engine, not a private goroutine", path)
				}
			case path == "iter":
				if !isTest {
					pass.Reportf(imp.Pos(), "algorithm packages must not import iter; the kernel owns the one coroutine per process, and nested iter.Pull coroutines allocate per run and leak on abort")
				}
			}
		}
		if isTest {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in an algorithm package; processes are scheduled by the sim kernel, never natively")
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type in an algorithm package; processes communicate through shared mem registers under sim.Ctx only")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in an algorithm package; concurrency is simulated, never native")
			}
			return true
		})
	}
	return nil
}
