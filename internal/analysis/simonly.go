package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// algorithmPackages are the packages implementing the paper's
// algorithms and their comparators. Their concurrency is *simulated*:
// processes are sim goroutines driven one atomic statement at a time by
// the kernel, so the algorithm code itself must be straight-line Go —
// native synchronization or concurrency there would race the simulated
// schedule and void every counted bound.
var algorithmPackages = []string{
	"repro/internal/unicons",
	"repro/internal/multicons",
	"repro/internal/hybridcas",
	"repro/internal/universal",
	"repro/internal/qlocal",
	"repro/internal/renaming",
	"repro/internal/baseline",
}

// SimOnly forbids native concurrency and environment access in
// algorithm packages: importing sync (tests may import sync/atomic for
// cross-checking the simulator), time, or os, and any go statement or
// channel type outside test files. There is deliberately no allow
// marker — an algorithm that "needs" native concurrency is modeling the
// wrong machine.
var SimOnly = &Analyzer{
	Name:      "simonly",
	Doc:       "algorithm packages run on the simulated machine only: no sync/time/os imports, no go statements, no channels",
	AppliesTo: func(pkgPath string) bool { return pathIn(pkgPath, algorithmPackages...) },
	Run:       runSimOnly,
}

func runSimOnly(pass *Pass) error {
	for _, f := range pass.Files {
		isTest := pass.IsTest(f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case path == "sync/atomic":
				if !isTest {
					pass.Reportf(imp.Pos(), "algorithm packages must not import sync/atomic outside tests; concurrency is simulated through sim.Ctx, never native")
				}
			case path == "sync" || strings.HasPrefix(path, "sync/"):
				pass.Reportf(imp.Pos(), "algorithm packages must not import %s; concurrency is simulated through sim.Ctx, never native", path)
			case path == "time" || path == "os":
				pass.Reportf(imp.Pos(), "algorithm packages must not import %s; the simulated machine has no wall clock or environment", path)
			}
		}
		if isTest {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in an algorithm package; processes are scheduled by the sim kernel, never natively")
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type in an algorithm package; processes communicate through shared mem registers under sim.Ctx only")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in an algorithm package; concurrency is simulated, never native")
			}
			return true
		})
	}
	return nil
}
