package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxEscape flags a *sim.Ctx that escapes the invocation body it was
// handed to: stored into a struct field, global, map/slice element, or
// channel; returned from a function; or captured by a closure that
// itself escapes. The Ctx is the statement baton — it is valid only
// while the kernel has granted its process the next atomic statement,
// so any copy that outlives the invocation lets code execute "atomic"
// statements outside the schedule, silently corrupting the statement
// accounting every theorem bound depends on. The sim package itself
// (which mints and retires batons) is exempt.
var CtxEscape = &Analyzer{
	Name:      "ctxescape",
	Doc:       "the *sim.Ctx statement baton must not outlive the invocation body it was passed to",
	AllowKeys: []string{"ctxescape"},
	AppliesTo: func(pkgPath string) bool { return !pathIn(pkgPath, simPath) },
	Run:       runCtxEscape,
}

func runCtxEscape(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Lhs) != len(n.Rhs) {
						break // multi-value call; checked via return sites
					}
					if !isCtx(pass, rhs) {
						continue
					}
					switch lhs := n.Lhs[i].(type) {
					case *ast.SelectorExpr:
						if s := pass.Info.Selections[lhs]; s != nil && s.Kind() == types.FieldVal {
							pass.Reportf(n.Pos(), "*sim.Ctx stored into struct field %s; the statement baton must not outlive its invocation", lhs.Sel.Name)
						}
					case *ast.IndexExpr:
						pass.Reportf(n.Pos(), "*sim.Ctx stored into a container element; the statement baton must not outlive its invocation")
					case *ast.Ident:
						if obj := pass.Info.Uses[lhs]; obj != nil && isGlobalVar(obj) {
							pass.Reportf(n.Pos(), "*sim.Ctx stored into package-level variable %s; the statement baton must not outlive its invocation", lhs.Name)
						}
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if isCtx(pass, v) {
						for _, name := range n.Names {
							if obj := pass.Info.Defs[name]; obj != nil && isGlobalVar(obj) {
								pass.Reportf(n.Pos(), "*sim.Ctx stored into package-level variable %s; the statement baton must not outlive its invocation", name.Name)
							}
						}
					}
				}
			case *ast.SendStmt:
				if isCtx(pass, n.Value) {
					pass.Reportf(n.Pos(), "*sim.Ctx sent on a channel; the statement baton must not outlive its invocation")
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isCtx(pass, v) {
						pass.Reportf(v.Pos(), "*sim.Ctx stored into a composite literal; the statement baton must not outlive its invocation")
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if isCtx(pass, r) {
						pass.Reportf(r.Pos(), "*sim.Ctx returned from a function; pass the baton down the call stack only")
					}
				}
			case *ast.FuncLit:
				checkCtxCapture(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// checkCtxCapture flags lit when it captures a Ctx declared outside
// itself and the closure escapes — it is stored, sent, returned, or
// launched as a goroutine rather than invoked (or deferred) in place.
// Calling a ctx-capturing helper immediately stays within the
// invocation and is fine.
func checkCtxCapture(pass *Pass, file *ast.File, lit *ast.FuncLit) {
	captured := token.NoPos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured.IsValid() {
			return !captured.IsValid()
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || !isCtxType(obj.Type()) {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			captured = id.Pos()
		}
		return true
	})
	if !captured.IsValid() {
		return
	}
	if use := escapingLitUse(pass, file, lit); use != "" {
		pass.Reportf(lit.Pos(), "closure capturing a *sim.Ctx is %s; the statement baton must not outlive its invocation", use)
	}
}

// escapingLitUse classifies how lit is consumed by its innermost
// enclosing node, returning "" when the use cannot outlive the
// enclosing invocation (immediate call, defer, or a plain local
// binding).
func escapingLitUse(pass *Pass, file *ast.File, lit *ast.FuncLit) string {
	path := enclosing(file, lit)
	for i := len(path) - 2; i >= 0; i-- {
		switch parent := path[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			if stripParens(parent.Fun) == lit {
				// Immediately invoked — unless the invocation is a `go`
				// statement, which runs it off the simulated schedule.
				if i > 0 {
					if _, isGo := path[i-1].(*ast.GoStmt); isGo {
						return "launched as a goroutine"
					}
				}
				return ""
			}
			return "passed to a call that may retain it"
		case *ast.DeferStmt:
			return ""
		case *ast.GoStmt:
			return "launched as a goroutine"
		case *ast.AssignStmt, *ast.ValueSpec:
			// Local binding: a later stored/returned use of the variable
			// is out of this pass's reach, but the overwhelmingly common
			// case (helper := func(){...}; helper()) is legitimate.
			return ""
		case *ast.ReturnStmt:
			return "returned"
		case *ast.SendStmt:
			return "sent on a channel"
		case *ast.CompositeLit:
			return "stored into a composite literal"
		case *ast.KeyValueExpr:
			continue
		default:
			_ = parent
			return ""
		}
	}
	return ""
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// enclosing returns the path of nodes from file down to target.
func enclosing(file *ast.File, target ast.Node) []ast.Node {
	var path, found []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		path = append(path, n)
		if n == target {
			found = append([]ast.Node(nil), path...)
			return false
		}
		return true
	})
	return found
}

func isCtx(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && isCtxType(tv.Type)
}

// isCtxType reports whether t is sim.Ctx or *sim.Ctx.
func isCtxType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Ctx" && obj.Pkg() != nil && obj.Pkg().Path() == simPath
}

// isGlobalVar reports whether obj is a package-level variable.
func isGlobalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() != nil && v.Parent() == v.Pkg().Scope()
}
