// Package fixture exercises the ctxescape analyzer: the *sim.Ctx
// statement baton must not outlive the invocation body it was passed
// to.
package fixture

import "repro/internal/sim"

type holder struct{ c *sim.Ctx }

var leaked *sim.Ctx

func storeField(h *holder, c *sim.Ctx) {
	h.c = c // want `\*sim\.Ctx stored into struct field c`
}

func storeGlobal(c *sim.Ctx) {
	leaked = c // want `stored into package-level variable leaked`
}

func storeElem(m map[int]*sim.Ctx, c *sim.Ctx) {
	m[0] = c // want `stored into a container element`
}

func sendChan(ch chan *sim.Ctx, c *sim.Ctx) {
	ch <- c // want `sent on a channel`
}

func ret(c *sim.Ctx) *sim.Ctx {
	return c // want `returned from a function`
}

func lit(c *sim.Ctx) *holder {
	return &holder{c: c} // want `stored into a composite literal`
}

func escapeClosure(c *sim.Ctx, sink func(func())) {
	sink(func() { c.Local(1) }) // want `passed to a call that may retain it`
}

func goClosure(c *sim.Ctx) {
	go func() { c.Local(1) }() // want `launched as a goroutine`
}

// Staying inside the invocation is fine: helpers called in place,
// IIFEs, and defers all complete before the body returns the baton.
func okUses(c *sim.Ctx) {
	helper := func() { c.Local(1) }
	helper()
	func() { c.Local(1) }()
	defer func() { c.Local(1) }()
	own(c)
}

// Passing the baton down the call stack is the intended pattern.
func own(c *sim.Ctx) { c.Local(1) }

// A closure with its own Ctx parameter captures nothing.
func ownParam(register func(func(*sim.Ctx))) {
	register(func(c *sim.Ctx) { c.Local(1) })
}
