// Package fixture exercises allow-marker validation: markers must
// parse, use a known key, carry a reason, and be load-bearing.
package fixture

//repro:allow post-run
func malformed() {}

//repro:allow frobnicate this key exists in no analyzer
func unknownKey() {}

//repro:allow post-run suppresses nothing here, so it is stale
func stale() {}
