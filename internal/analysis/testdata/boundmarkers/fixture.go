// Package fixture exercises //repro:bound marker validation: the
// expression must parse, mention only known model parameters, and be
// load-bearing — a marker on a loop the analyzer already bounds is
// stale, and a broken marker bounds nothing (so the loop is reported
// too).
package fixture

func malformedExpr(n int) int {
	x := 0
	//repro:bound 2*+q a dangling operator never parses // want `malformed //repro:bound expression "2\*\+q"`
	for x < n { // want `unbounded loop`
		x++
	}
	return x
}

func unknownParam(n int) int {
	x := 0
	//repro:bound zz*2 zz is nobody's model parameter // want `//repro:bound expression "zz\*2" mentions unknown model parameter "zz"`
	for x < n { // want `unbounded loop`
		x++
	}
	return x
}

func staleOnParametric(n int) int {
	s := 0
	//repro:bound n the analyzer derives this bound itself, so the marker is dead weight // want `stale //repro:bound n marker bounds no loop or recursion cycle`
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
