// Markers in test files are stale by construction: waitfreebound and
// statementcharge skip _test.go files (post-run verification is outside
// the statement-accounting discipline), so nothing ever consumes a
// marker here — the validator reports it rather than letting a
// meaningless annotation imply a checked bound.
package fixture_test

func spinUntil(n int) int {
	x := 0
	//repro:bound n test files are outside the bound discipline, so this bounds nothing // want `stale //repro:bound n marker bounds no loop or recursion cycle`
	for x < n {
		x++
	}
	return x
}

//repro:allow charge test files are outside the charge discipline, so this suppresses nothing // want `stale //repro:allow charge marker suppresses no finding`
func unusedAllow() int {
	return spinUntil(3)
}
