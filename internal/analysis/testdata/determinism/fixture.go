// Package fixture exercises the determinism analyzer: replay-sensitive
// code must be a deterministic function of its inputs.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"time"
)

func wallclock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func markedWallclock() time.Time {
	//repro:allow walltime fixture diagnostic timing never reaches replayed output
	return time.Now()
}

func unseeded() int {
	return rand.Intn(4) // want `math/rand\.Intn draws from the shared unseeded source`
}

// seeded generators replay byte-identically and are the sanctioned form.
func seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(4)
}

func spawn() {
	go func() {}() // want `goroutine spawn in a replay-sensitive package`
}

func markedSpawn(work func()) {
	//repro:allow goroutine fixture worker pool merges results canonically
	go work()
}

func mapOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

// sortedIdiom is the one marker-free map range: collect into a slice,
// sort immediately after — iteration order provably cannot escape.
func sortedIdiom(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func markedCount(m map[string]int) int {
	n := 0
	//repro:allow maporder order-insensitive counting loop
	for range m {
		n++
	}
	return n
}

// Slice iteration is ordered and always fine.
func sliceRange(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// A state fingerprint must never fold map iteration order into the
// hash: two runs of the same schedule would fingerprint differently,
// and reduced explorations would prune differently run to run.
func fingerprintLeak(cells map[int]uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range cells { // want `map iteration order is nondeterministic`
		h ^= v
		h *= 1099511628211
	}
	return h
}

// Order-independent folds (XOR commutes) are sanctioned with a marker —
// the idiom behind the incremental memory fingerprint.
func fingerprintXOR(cells map[int]uint64) uint64 {
	var h uint64
	//repro:allow maporder XOR fold is order-independent
	for _, v := range cells {
		h ^= v
	}
	return h
}

// GC-coupled reuse breaks the pooled-replay idiom: which buffer a
// sync.Pool hands back depends on per-P caches and collection timing,
// so warm-vs-zeroed state would vary run to run. Pool buffers as
// long-lived fields with an explicit Reset before each run.
var scratch = sync.Pool{ // want `sync\.Pool reuse depends on per-P caches and GC timing`
	New: func() any { return new([]int) },
}

func pooledAppend(x int) {
	buf := scratch.Get().(*[]int)
	*buf = append((*buf)[:0], x)
	scratch.Put(buf)
}

// The sanctioned pooling shape: the buffer is a field of a long-lived
// object, truncated by Reset before each reuse — which memory a run
// sees is a pure function of the run sequence.
type pooled struct{ buf []int }

func (p *pooled) Reset() { p.buf = p.buf[:0] }

func finalized(p *pooled) {
	runtime.SetFinalizer(p, func(*pooled) {}) // want `runtime\.SetFinalizer ties object lifetime to GC timing`
}

// The campaign key sanctions internal/campaign's durability plumbing:
// watchdog deadlines, retry backoff, and the memory monitor read real
// time to decide WHEN work runs, never WHAT a run computes. The marker
// consumes the same walltime diagnostics the unmarked form raises.
func watchdogDeadline(deadline time.Duration) func() bool {
	//repro:allow campaign per-replay watchdog deadline; a timed-out run is a recorded incident, never replayed output
	start := time.Now()
	return func() bool {
		//repro:allow campaign per-replay watchdog deadline; a timed-out run is a recorded incident, never replayed output
		return time.Since(start) > deadline
	}
}

// Without the marker the same shape is flagged: campaign code gets no
// blanket exemption, each walltime site needs its reasoned annotation.
func unmarkedDeadline(deadline time.Duration) func() bool {
	start := time.Now() // want `time\.Now reads the wall clock`
	return func() bool {
		return time.Since(start) > deadline // want `time\.Since reads the wall clock`
	}
}

// The service key sanctions internal/service's scheduler plumbing the
// same way: the dispatcher, job runners, and cancellation watchers are
// goroutines that decide when and where jobs execute, while every
// job's result stays a deterministic function of its spec.
func markedDispatcher(run func()) {
	//repro:allow service the dispatcher orders job starts; job results are functions of their specs
	go run()
}

// No blanket exemption for service code either: an unmarked spawn in
// the service package is still flagged.
func unmarkedDispatcher(run func()) {
	go run() // want `goroutine spawn in a replay-sensitive package`
}

// math/rand/v2's package-level draws come from a global source seeded
// with runtime entropy at process start — different every run, so the
// same diagnostic applies to the v2 API.
func unseededV2() int {
	return randv2.IntN(4) // want `math/rand/v2\.IntN draws from the runtime-seeded global source`
}

func shuffledV2(xs []int) {
	randv2.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand/v2\.Shuffle draws from the runtime-seeded global source`
}

// Explicitly seeded v2 generators are the stochastic schedulers'
// sanctioned idiom: the stream is a pure function of the seed pair.
func seededV2(seed uint64) int {
	return randv2.New(randv2.NewPCG(seed, seed+1)).IntN(4)
}

// A seeded ChaCha8 source is equally deterministic.
func seededChaCha(key [32]byte) uint64 {
	return randv2.NewChaCha8(key).Uint64()
}

// Method calls on a seeded *rand.Rand are not package-level draws and
// pass without markers, whatever the method.
func seededV2Methods(r *randv2.Rand) float64 {
	return r.Float64() + float64(r.IntN(3))
}

// Cache eviction must not draw unseeded randomness to pick a victim:
// which entries survive decides which runs get pruned, so a random
// policy would make reduced schedule counts unreproducible. Use FIFO or
// any other input-deterministic policy.
func evictRandom(order []uint64) uint64 {
	return order[rand.Intn(len(order))] // want `math/rand\.Intn draws from the shared unseeded source`
}
