// Package fixture exercises the exhaustive analyzer: switches over sim
// event/op enums must cover every constant or carry a default.
package fixture

import "repro/internal/sim"

func full(k sim.SchedKind) bool {
	switch k {
	case sim.SchedArrive, sim.SchedPreempt, sim.SchedInvEnd, sim.SchedProcDone, sim.SchedCrash:
		return true
	}
	return false
}

func missing(k sim.SchedKind) {
	switch k { // want `switch over sim\.SchedKind misses SchedCrash, SchedProcDone`
	case sim.SchedArrive, sim.SchedPreempt, sim.SchedInvEnd:
	}
}

func defaulted(k sim.SchedKind) {
	switch k {
	case sim.SchedArrive:
	default:
	}
}

func ops(o sim.Op) {
	switch o { // want `switch over sim\.Op misses OpLocal`
	case sim.OpRead, sim.OpWrite, sim.OpCons:
	}
}

func allowedPartial(k sim.SchedKind) {
	//repro:allow exhaustive fixture demonstrates a justified partial dispatch
	switch k {
	case sim.SchedArrive:
	}
}

// Switches over non-sim types are out of scope.
func notEnum(n int) {
	switch n {
	case 1:
	}
}
