package fixture

// Tests may import sync/atomic to cross-check the simulator natively;
// everything else stays forbidden even here.

import (
	"sync/atomic"
	"time" // want `must not import time`
)

var testFlag atomic.Bool

var _ = time.Second
