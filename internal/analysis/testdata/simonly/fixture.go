// Package fixture exercises the simonly analyzer: algorithm packages
// model the paper's machine, whose concurrency is simulated by the sim
// kernel — never native.
package fixture

import (
	"iter"                // want `must not import iter`
	"math/rand"           // want `must not import math/rand`
	randv2 "math/rand/v2" // want `must not import math/rand/v2`
	"os"                  // want `must not import os`
	"runtime"             // want `must not import runtime`
	"sync"                // want `must not import sync`
	"sync/atomic"         // want `must not import sync/atomic outside tests`
	"time"                // want `must not import time`
)

var (
	mu      sync.Mutex
	flag    atomic.Bool
	_       = time.Second
	environ = os.Args
)

func spawn() {
	go work() // want `go statement in an algorithm package`
}

func work() { mu.Lock(); defer mu.Unlock(); flag.Store(true); _ = environ }

// Even a seeded generator is out of place in an algorithm: a "wait-free"
// bound measured over random in-algorithm choices is not the paper's
// bound. Randomized scheduling belongs to internal/sched's models.
func randomizedBackoff(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(4) + randv2.New(randv2.NewPCG(1, 2)).IntN(4)
}

type pipe chan int // want `channel type in an algorithm package`

func sel() {
	select {} // want `select statement in an algorithm package`
}

// Under the inline coroutine kernel a process body runs on the explorer
// worker's goroutine: yielding the native scheduler from a step stalls
// the engine, and a body-owned coroutine allocates per run and leaks
// when the kernel aborts it.
func politeSpin() {
	runtime.Gosched()
}

func ownCoroutine() iter.Seq[int] {
	return func(yield func(int) bool) { yield(1) }
}
