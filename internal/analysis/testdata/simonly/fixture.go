// Package fixture exercises the simonly analyzer: algorithm packages
// model the paper's machine, whose concurrency is simulated by the sim
// kernel — never native.
package fixture

import (
	"os"          // want `must not import os`
	"sync"        // want `must not import sync`
	"sync/atomic" // want `must not import sync/atomic outside tests`
	"time"        // want `must not import time`
)

var (
	mu      sync.Mutex
	flag    atomic.Bool
	_       = time.Second
	environ = os.Args
)

func spawn() {
	go work() // want `go statement in an algorithm package`
}

func work() { mu.Lock(); defer mu.Unlock(); flag.Store(true); _ = environ }

type pipe chan int // want `channel type in an algorithm package`

func sel() {
	select {} // want `select statement in an algorithm package`
}
