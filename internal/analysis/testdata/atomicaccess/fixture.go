// Package fixture exercises the atomicaccess analyzer: every shared
// access must go through sim.Ctx, charging exactly one atomic
// statement.
package fixture

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// doubleCharge reproduces the exact bug class atomicaccess exists for:
// the body performs TWO shared reads while charging ONE statement (the
// c.Read). Under that accounting a Fig. 3-style invocation would claim
// 8 statements while actually touching shared memory more often, faking
// a Q >= 8 bound that the real interleavings can break.
func doubleCharge(c *sim.Ctx, a, b *mem.Reg) mem.Word {
	v := c.Read(a) // one statement, one access: correct
	w := b.Load()  // want `raw mem\.Reg\.Load bypasses sim\.Ctx statement accounting`
	return v + w
}

func rawStore(r *mem.Reg) {
	r.Store(1) // want `raw mem\.Reg\.Store bypasses`
}

func rawInvoke(o *mem.ConsObject) mem.Word {
	return o.Invoke(7) // want `raw mem\.ConsObject\.Invoke bypasses`
}

func rawInspect(o *mem.ConsObject) (int, mem.Word) {
	return o.Invocations(), // want `raw mem\.ConsObject\.Invocations bypasses`
		o.Decided() // want `raw mem\.ConsObject\.Decided bypasses`
}

func rawCAS(o *mem.CASObject) bool {
	return o.CompareAndSwap(0, 1) // want `raw mem\.CASObject\.CompareAndSwap bypasses`
}

func rawCASLoad(o *mem.CASObject) mem.Word {
	return o.Load() // want `raw mem\.CASObject\.Load bypasses`
}

// peek is legitimate post-run inspection and carries the allow marker.
func peek(r *mem.Reg) mem.Word {
	//repro:allow post-run fixture inspection helper reads only after the run completes
	return r.Load()
}

// viaCtx is the discipline the analyzer enforces: every access charges
// exactly one statement under the baton.
func viaCtx(c *sim.Ctx, r *mem.Reg, o *mem.ConsObject, w *mem.CASObject) mem.Word {
	v := c.Read(r)
	c.Write(r, v+1)
	c.CASPrim(w, 0, 1)
	_ = c.LoadPrim(w)
	return c.CCons(o, v)
}

// metadata accessors are not shared state and stay unflagged.
func metadata(r *mem.Reg, o *mem.ConsObject) (string, int) {
	return r.Name(), o.C()
}
