// Package fixture exercises the waitfreebound analyzer: every loop and
// recursion cycle must be syntactically bounded by a constant or model
// parameter, or carry a reasoned //repro:bound marker; derived costs
// charge one statement per sim.Ctx shared access.
package fixture

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// Object is a minimal Fig. 3-shaped operation carrier: Decide below
// must derive a worst-case cost of exactly 8 statements (asserted via
// the exported facts in analyzers_test.go).
type Object struct {
	r *mem.Reg
}

// Decide mirrors unicons.Decide's statement shape: Local(1), a
// three-trip loop of one Read plus a one-statement branch, and a final
// Read — 1 + 3·(1+1) + 1 = 8.
func (o *Object) Decide(c *sim.Ctx, v mem.Word) mem.Word {
	c.Local(1)
	for i := 0; i < 3; i++ {
		if c.Read(o.r) == 0 {
			c.Local(1)
		} else {
			c.Write(o.r, v)
		}
	}
	return c.Read(o.r)
}

// Bounded forms: constants, model parameters, descending counts, and
// collection ranges are all self-sufficient — no marker needed.
func bounded(n, v int, regs []*mem.Reg) int {
	s := 0
	for i := 0; i < 8; i++ {
		s += i
	}
	for i := 1; i <= n; i++ {
		s += i
	}
	for i := v; i > 0; i-- {
		s += i
	}
	for _, r := range regs {
		_ = r
	}
	var fixed [4]int
	for i := range fixed {
		s += i
	}
	return s
}

func infinite(done bool) {
	for { // want `unbounded loop`
		if done {
			break
		}
	}
}

func condOnly(x int) int {
	for x > 0 { // want `unbounded loop`
		x /= 2
	}
	return x
}

// mutableBound's limit is a plain local variable, not a model
// parameter: nothing syntactic keeps it from growing mid-loop.
func mutableBound(xs []int) int {
	limit := len(xs) * 2
	s := 0
	for i := 0; i < limit; i++ { // want `unbounded loop`
		s += i
	}
	return s
}

// markedSpin is the sanctioned escape hatch: a reasoned marker bounds
// what syntax cannot.
func markedSpin(c *sim.Ctx, r *mem.Reg, m int) {
	//repro:bound m a round is lost only to one of at most m same-level deciders
	for c.Read(r) != 0 {
		c.Local(1)
	}
}

func unmarkedRecursion(n int) int { // want `recursive call cycle through unmarkedRecursion`
	if n <= 0 {
		return 0
	}
	return 1 + unmarkedRecursion(n-1)
}

//repro:bound n the recursion strips one level per call and there are at most n levels
func markedRecursion(n int) int {
	if n <= 0 {
		return 0
	}
	return 1 + markedRecursion(n-1)
}
