// Package fixture exercises the statementcharge analyzer: an exported
// operation must not reach raw shared-memory accessors through helper
// calls — laundering a mem access through a helper would fake the
// atomic-statement accounting the quantum bounds rest on.
package fixture

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// Object carries the operations under test.
type Object struct {
	r *mem.Reg
}

// OpClean is the discipline: every shared access goes through the Ctx.
func (o *Object) OpClean(c *sim.Ctx) mem.Word {
	return c.Read(o.r)
}

// rawHelper touches shared memory directly; atomicaccess flags the
// access itself, statementcharge flags operations that reach it.
func (o *Object) rawHelper() mem.Word {
	return o.r.Load()
}

// middle launders the raw access behind one more frame.
func (o *Object) middle(c *sim.Ctx) mem.Word {
	return o.rawHelper()
}

// OpLaundered reaches the raw access two calls deep: the finding lands
// on the call edge inside the operation, naming the chain.
func (o *Object) OpLaundered(c *sim.Ctx) mem.Word {
	return o.middle(c) // want `reaches a raw mem access outside sim\.Ctx statement accounting`
}

// OpAllowed documents a sanctioned exception with a reasoned marker.
func (o *Object) OpAllowed(c *sim.Ctx) mem.Word {
	//repro:allow charge fixture exception: reads a register the harness guarantees quiescent
	return o.rawHelper()
}

// Snapshot has no Ctx parameter, so it is post-run inspection, not an
// operation: statementcharge leaves it to atomicaccess's discipline.
func (o *Object) Snapshot() mem.Word {
	return o.rawHelper()
}
