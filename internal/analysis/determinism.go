package analysis

import (
	"go/ast"
	"go/types"
)

// replayPackages are the packages bound by the artifact determinism
// contract: given the same inputs (meta, decisions, seeds), they must
// produce byte-identical results, so a saved repro bundle replays
// faithfully on any machine at any parallelism. sim and sched joined
// the set when they grew the fingerprint/reduction machinery: a state
// fingerprint polluted by map order or a cache eviction drawing
// unseeded randomness would make reduced explorations unreproducible.
var replayPackages = []string{
	"repro/internal/check",
	"repro/internal/artifact",
	"repro/internal/minimize",
	"repro/internal/trace",
	"repro/internal/sim",
	"repro/internal/sched",
	"repro/internal/campaign",
	"repro/internal/store",
	"repro/internal/service",
	"repro/internal/service/jobspec",
}

// Determinism flags nondeterminism sources in the replay-sensitive
// packages: wall-clock reads, unseeded math/rand and math/rand/v2
// global-source draws, goroutine spawns
// outside the sanctioned worker pools, map iteration whose order can
// leak into output, and GC-coupled object reuse (sync.Pool,
// runtime.SetFinalizer). Sanctioned uses carry markers — walltime,
// goroutine, maporder, rand, campaign, service — each with a reason
// the driver validates. The campaign key is reserved for
// internal/campaign's durability plumbing: watchdog deadlines, retry
// backoff, and the memory monitor legitimately read real time, but
// only to decide WHEN work runs, never WHAT a run computes — run
// outcomes stay a pure function of the run index. The service key is
// the same bargain one layer up: internal/service's scheduler
// goroutines (dispatcher, job runners, cancellation watchers) decide
// when and where jobs execute, but every job's result remains a
// deterministic function of its spec — which is why the store and
// jobspec packages sit in the replay set with NO sanctioned
// nondeterminism of their own.
// A map range is accepted without a marker in exactly one idiom: a
// single-statement body appending keys/values to a slice, immediately
// followed by a sort of that slice (order provably cannot escape).
//
// The pooling ban pins the allocation-free replay idiom: reusable
// buffers are long-lived fields truncated or cleared by an explicit
// Reset before each run (Script.Reset, Reduced.Reset, System.Reset
// hooks), so which memory a run reuses is a pure function of the
// schedule sequence. sync.Pool hands back objects based on per-P
// caches and GC timing — whether a buffer returns warm or zeroed, and
// which worker gets whose leftovers, would vary run to run — and
// finalizers resurrect state on a GC schedule no replay controls.
var Determinism = &Analyzer{
	Name:      "determinism",
	Doc:       "replay-sensitive packages (check, artifact, minimize, trace, sim, sched, campaign, store, service) must be deterministic functions of their inputs",
	AllowKeys: []string{"walltime", "goroutine", "maporder", "rand", "campaign", "service"},
	SkipTests: true,
	AppliesTo: func(pkgPath string) bool { return pathIn(pkgPath, replayPackages...) },
	Run:       runDeterminism,
}

// walltimeFuncs are the time functions that read the wall clock or
// depend on real elapsed time.
var walltimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// seededRandFuncs are the math/rand functions that construct explicitly
// seeded generators; everything else at package level draws from the
// shared, run-dependent source.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// seededRandV2Funcs are the math/rand/v2 constructors that build
// explicitly seeded generators — rand.New(rand.NewPCG(s1, s2)) is the
// stochastic schedulers' sanctioned idiom. Everything else at package
// level (IntN, N, Perm, Shuffle, ...) draws from the v2 global source,
// which is seeded from runtime entropy at process start and therefore
// differs on every run.
var seededRandV2Funcs = map[string]bool{"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawn in a replay-sensitive package; results must merge in canonical order — annotate sanctioned worker pools //repro:allow goroutine <reason>")
			case *ast.CallExpr:
				if pkg, name := pkgFunc(pass, n.Fun); pkg != "" {
					switch {
					case pkg == "time" && walltimeFuncs[name]:
						pass.Reportf(n.Pos(), "time.%s reads the wall clock in a replay-sensitive package; derive timing from simulation steps or annotate //repro:allow walltime <reason>", name)
					case pkg == "math/rand" && !seededRandFuncs[name]:
						pass.Reportf(n.Pos(), "math/rand.%s draws from the shared unseeded source; use rand.New(rand.NewSource(seed)) so replays are reproducible", name)
					case pkg == "math/rand/v2" && !seededRandV2Funcs[name]:
						pass.Reportf(n.Pos(), "math/rand/v2.%s draws from the runtime-seeded global source; use rand.New(rand.NewPCG(seed1, seed2)) so replays are reproducible", name)
					case pkg == "runtime" && name == "SetFinalizer":
						pass.Reportf(n.Pos(), "runtime.SetFinalizer ties object lifetime to GC timing in a replay-sensitive package; release resources explicitly (Close, Reset) instead")
					}
				}
			case *ast.SelectorExpr:
				if obj, ok := pass.Info.Uses[n.Sel].(*types.TypeName); ok &&
					obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool" {
					pass.Reportf(n.Pos(), "sync.Pool reuse depends on per-P caches and GC timing; pool buffers as long-lived fields with an explicit Reset before each run instead")
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !sortedCollect(pass, f, n) {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic and may reach output; collect-and-sort the keys or annotate //repro:allow maporder <reason>")
					}
				}
			}
			return true
		})
	}
	return nil
}

// pkgFunc resolves fun to (package path, function name) when it is a
// direct reference to a package-level function, else ("", "").
func pkgFunc(pass *Pass, fun ast.Expr) (string, string) {
	sel, ok := stripParens(fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if pass.Info.Selections[sel] != nil {
		return "", "" // method or field, not a package-qualified func
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", ""
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// sortedCollect recognizes the one map-range idiom whose order cannot
// escape: the body is a single append of the key or value into a slice
// variable, and the statement immediately after the loop sorts that
// slice (any sort.* call mentioning it).
func sortedCollect(pass *Pass, file *ast.File, loop *ast.RangeStmt) bool {
	if len(loop.Body.List) != 1 {
		return false
	}
	assign, ok := loop.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	target, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	targetObj := pass.Info.Uses[target]
	if targetObj == nil {
		return false
	}
	// Find the statement following the loop in its enclosing block and
	// require it to be a sort of the collected slice.
	next := nextStmt(file, loop)
	if next == nil {
		return false
	}
	expr, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	if pkg, _ := pkgFunc(pass, sortCall.Fun); pkg != "sort" && pkg != "slices" {
		return false
	}
	mentions := false
	for _, arg := range sortCall.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == targetObj {
				mentions = true
			}
			return !mentions
		})
	}
	return mentions
}

// nextStmt returns the statement immediately following s in its
// innermost enclosing statement list, or nil.
func nextStmt(file *ast.File, s ast.Stmt) ast.Stmt {
	var next ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		if next != nil {
			return false
		}
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, st := range list {
			if st == s && i+1 < len(list) {
				next = list[i+1]
				return false
			}
		}
		return true
	})
	return next
}
