package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression marker. The grammar is
//
//	//repro:allow <key> <reason...>
//
// where <key> names the discipline being waived (e.g. post-run,
// walltime, goroutine, maporder, rand, ctxescape, exhaustive) and
// <reason> is free text justifying the waiver. A marker suppresses
// diagnostics on its own line or, for a marker alone on its line, on
// the line below. Markers must be load-bearing: the driver fails on any
// marker that suppresses no diagnostic, so annotations cannot rot.
const allowPrefix = "//repro:allow"

// A Marker is one parsed //repro:allow comment.
type Marker struct {
	Pos    token.Position
	Key    string
	Reason string
	// Standalone reports the marker occupies its own line (so it covers
	// the line below rather than its own).
	Standalone bool
	// Used is set when the marker suppresses at least one diagnostic.
	Used bool
}

// collectMarkers parses every //repro:allow marker in files.
func collectMarkers(fset *token.FileSet, files []*ast.File) []*Marker {
	var ms []*Marker
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				pos := fset.Position(c.Pos())
				m := &Marker{Pos: pos, Standalone: onOwnLine(fset, f, c)}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					m.Key = fields[0]
					m.Reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				}
				ms = append(ms, m)
			}
		}
	}
	return ms
}

// onOwnLine reports whether comment c is the only thing on its source
// line (i.e. no code shares the line), making it cover the next line.
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	own := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !own {
			return false
		}
		// Any non-comment node starting or ending on the marker's line
		// means code shares the line.
		switch n.(type) {
		case *ast.File, *ast.Comment, *ast.CommentGroup:
			return true
		}
		if fset.Position(n.Pos()).Line == line || fset.Position(n.End()).Line == line {
			own = false
			return false
		}
		return true
	})
	return own
}

// markerFor returns a marker covering pos whose key is in keys, or nil.
func (pkg *Package) markerFor(pos token.Position, keys []string) *Marker {
	for _, m := range pkg.Markers {
		if m.Pos.Filename != pos.Filename || m.Reason == "" {
			continue
		}
		covers := m.Pos.Line == pos.Line || (m.Standalone && m.Pos.Line == pos.Line-1)
		if !covers {
			continue
		}
		for _, k := range keys {
			if m.Key == k {
				return m
			}
		}
	}
	return nil
}

// ValidKeys is the set of marker keys any analyzer honors. Markers with
// other keys are reported as malformed.
func ValidKeys() map[string]bool {
	keys := map[string]bool{}
	for _, a := range Analyzers() {
		for _, k := range a.AllowKeys {
			keys[k] = true
		}
	}
	return keys
}

// MarkerProblems validates pkg's markers after every analyzer has run:
// a marker with an empty reason, an unknown key, or that suppressed no
// diagnostic (stale) is itself a diagnostic — the allow grammar is
// machine-checked and annotations cannot rot.
func MarkerProblems(pkg *Package) []Diagnostic {
	valid := ValidKeys()
	var out []Diagnostic
	for _, m := range pkg.Markers {
		switch {
		case m.Key == "" || m.Reason == "":
			out = append(out, Diagnostic{Pos: m.Pos, Analyzer: "allowmarker",
				Message: "malformed //repro:allow marker: want //repro:allow <key> <reason>"})
		case !valid[m.Key]:
			out = append(out, Diagnostic{Pos: m.Pos, Analyzer: "allowmarker",
				Message: "unknown //repro:allow key " + m.Key})
		case !m.Used:
			out = append(out, Diagnostic{Pos: m.Pos, Analyzer: "allowmarker",
				Message: "stale //repro:allow " + m.Key + " marker suppresses no finding; delete it"})
		}
	}
	return out
}
