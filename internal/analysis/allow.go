package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression marker. The grammar is
//
//	//repro:allow <key> <reason...>
//
// where <key> names the discipline being waived (e.g. post-run,
// walltime, goroutine, maporder, rand, ctxescape, exhaustive) and
// <reason> is free text justifying the waiver. A marker suppresses
// diagnostics on its own line or, for a marker alone on its line, on
// the line below. Markers must be load-bearing: the driver fails on any
// marker that suppresses no diagnostic, so annotations cannot rot.
const allowPrefix = "//repro:allow"

// boundPrefix introduces a loop/recursion bound annotation:
//
//	//repro:bound <expr> <reason...>
//
// where <expr> is a ParseBound expression over the BoundParams
// vocabulary (e.g. `m`, `threshold+1`, `2*l+m`, `unbounded`) and
// <reason> is free text arguing why the bound holds. The waitfreebound
// analyzer consumes the marker for a loop or recursion cycle it cannot
// bound syntactically; like allow markers, bound markers must be
// load-bearing — one attached to a loop the analyzer already bounds on
// its own is reported stale.
const boundPrefix = "//repro:bound"

// Marker kinds.
const (
	markerAllow = "allow"
	markerBound = "bound"
)

// A Marker is one parsed //repro:allow or //repro:bound comment.
type Marker struct {
	Pos token.Position
	// Kind is markerAllow or markerBound.
	Kind string
	// Key is the allow key, or the raw bound expression text.
	Key    string
	Reason string
	// Bound is the parsed expression for well-formed bound markers.
	Bound *Bound
	// BoundErr holds the parse error for malformed bound expressions.
	BoundErr string
	// Standalone reports the marker occupies its own line (so it covers
	// the line below rather than its own).
	Standalone bool
	// Used is set when the marker suppresses at least one diagnostic
	// (allow) or bounds at least one loop or recursion cycle (bound).
	Used bool
}

// collectMarkers parses every //repro:allow and //repro:bound marker in
// files.
func collectMarkers(fset *token.FileSet, files []*ast.File) []*Marker {
	var ms []*Marker
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kind, rest := markerAllow, ""
				switch {
				case strings.HasPrefix(c.Text, allowPrefix):
					rest = strings.TrimPrefix(c.Text, allowPrefix)
				case strings.HasPrefix(c.Text, boundPrefix):
					kind = markerBound
					rest = strings.TrimPrefix(c.Text, boundPrefix)
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				m := &Marker{Pos: pos, Kind: kind, Standalone: onOwnLine(fset, f, c)}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					m.Key = fields[0]
					m.Reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				}
				if kind == markerBound && m.Key != "" {
					b, err := ParseBound(m.Key)
					if err != nil {
						m.BoundErr = err.Error()
					} else {
						m.Bound = b
					}
				}
				ms = append(ms, m)
			}
		}
	}
	return ms
}

// onOwnLine reports whether comment c is the only thing on its source
// line (i.e. no code shares the line), making it cover the next line.
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	own := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !own {
			return false
		}
		// Any non-comment node starting or ending on the marker's line
		// means code shares the line.
		switch n.(type) {
		case *ast.File, *ast.Comment, *ast.CommentGroup:
			return true
		}
		if fset.Position(n.Pos()).Line == line || fset.Position(n.End()).Line == line {
			own = false
			return false
		}
		return true
	})
	return own
}

// markerFor returns an allow marker covering pos whose key is in keys,
// or nil.
func (pkg *Package) markerFor(pos token.Position, keys []string) *Marker {
	for _, m := range pkg.Markers {
		if m.Kind != markerAllow || m.Pos.Filename != pos.Filename || m.Reason == "" {
			continue
		}
		if !m.covers(pos) {
			continue
		}
		for _, k := range keys {
			if m.Key == k {
				return m
			}
		}
	}
	return nil
}

// covers reports whether m annotates the source line of pos: its own
// line, or the line below for a marker alone on its line.
func (m *Marker) covers(pos token.Position) bool {
	return m.Pos.Line == pos.Line || (m.Standalone && m.Pos.Line == pos.Line-1)
}

// boundMarkerFor returns a well-formed bound marker covering pos whose
// expression mentions only known model parameters, or nil. Malformed
// and unknown-parameter markers are left for MarkerProblems to report
// (and the uncovered loop is reported too — a broken marker bounds
// nothing).
func (pkg *Package) boundMarkerFor(pos token.Position) *Marker {
	for _, m := range pkg.Markers {
		if m.Kind != markerBound || m.Bound == nil || m.Reason == "" {
			continue
		}
		if m.Pos.Filename == pos.Filename && m.covers(pos) && unknownBoundParam(m.Bound) == "" {
			return m
		}
	}
	return nil
}

// unknownBoundParam returns the first symbol in b outside the
// BoundParams vocabulary, or "".
func unknownBoundParam(b *Bound) string {
	for _, s := range b.Syms() {
		if !boundParams[s] {
			return s
		}
	}
	return ""
}

// ValidKeys is the set of marker keys any analyzer honors. Markers with
// other keys are reported as malformed.
func ValidKeys() map[string]bool {
	keys := map[string]bool{}
	for _, a := range Analyzers() {
		for _, k := range a.AllowKeys {
			keys[k] = true
		}
	}
	return keys
}

// MarkerProblems validates pkg's markers after every analyzer has run:
// a marker with an empty reason, an unknown key, a malformed or
// unknown-parameter bound expression, or that suppressed/bounded
// nothing (stale) is itself a diagnostic — the marker grammar is
// machine-checked and annotations cannot rot.
func MarkerProblems(pkg *Package) []Diagnostic {
	valid := ValidKeys()
	var out []Diagnostic
	report := func(m *Marker, format string, args ...any) {
		out = append(out, Diagnostic{Pos: m.Pos, Analyzer: "allowmarker",
			Message: fmt.Sprintf(format, args...)})
	}
	for _, m := range pkg.Markers {
		if m.Kind == markerBound {
			switch {
			case m.Key == "" || m.Reason == "":
				report(m, "malformed //repro:bound marker: want //repro:bound <expr> <reason>")
			case m.BoundErr != "":
				report(m, "malformed //repro:bound expression %q: %s", m.Key, m.BoundErr)
			case unknownBoundParam(m.Bound) != "":
				report(m, "//repro:bound expression %q mentions unknown model parameter %q (known: %s)",
					m.Key, unknownBoundParam(m.Bound), strings.Join(BoundParams(), " "))
			case !m.Used:
				report(m, "stale //repro:bound %s marker bounds no loop or recursion cycle; delete it", m.Key)
			}
			continue
		}
		switch {
		case m.Key == "" || m.Reason == "":
			report(m, "malformed //repro:allow marker: want //repro:allow <key> <reason>")
		case !valid[m.Key]:
			report(m, "unknown //repro:allow key %s", m.Key)
		case !m.Used:
			report(m, "stale //repro:allow %s marker suppresses no finding; delete it", m.Key)
		}
	}
	return out
}
