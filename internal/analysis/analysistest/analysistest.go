// Package analysistest runs a reprolint analyzer over a fixture
// package and checks its diagnostics against `// want "re"` comment
// expectations, mirroring the x/tools analysistest contract on the
// repo's dependency-free analysis framework.
//
// A fixture line producing a diagnostic carries a trailing comment
//
//	code() // want `regexp`   (or: // want "regexp")
//
// (multiple `// want` clauses may appear in one comment; each must
// match a distinct diagnostic on that line). Every diagnostic must be
// wanted and every want must be matched, including suppression: a
// fixture line with a valid //repro:allow marker must produce no
// diagnostic, or the run fails.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+(?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

// Run loads the fixture package rooted at dir (relative to the test's
// working directory), runs a over it, and reports mismatches on t. It
// returns the packages it loaded so callers can make further assertions
// (e.g. marker staleness).
func Run(t *testing.T, a *analysis.Analyzer, dir string) []*analysis.Package {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadDir(abs, fixturePath(abs), true)
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("analysistest: no packages in %s", dir)
	}
	for _, pkg := range pkgs {
		diags, err := pkg.Run(a)
		if err != nil {
			t.Fatalf("analysistest: run %s on %s: %v", a.Name, pkg.Path, err)
		}
		checkWants(t, abs, diags)
	}
	return pkgs
}

// RunMarkers loads the fixture package rooted at dir, runs every
// analyzer in as over each of its packages (primary and external test),
// then validates the fixture's //repro:allow and //repro:bound markers
// with analysis.MarkerProblems, and checks the combined diagnostics
// against the dir's `// want` expectations in one pass. Use this for
// fixtures exercising marker grammar and staleness, where the
// diagnostics of several packages and the marker validator must be
// reconciled against one set of expectations.
func RunMarkers(t *testing.T, dir string, as ...*analysis.Analyzer) []*analysis.Package {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadDir(abs, fixturePath(abs), true)
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("analysistest: no packages in %s", dir)
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range as {
			ds, err := pkg.Run(a)
			if err != nil {
				t.Fatalf("analysistest: run %s on %s: %v", a.Name, pkg.Path, err)
			}
			diags = append(diags, ds...)
		}
		diags = append(diags, analysis.MarkerProblems(pkg)...)
	}
	checkWants(t, abs, diags)
	return pkgs
}

// fixturePath synthesizes a stable module-internal import path for a
// fixture directory so AppliesTo-style filters (bypassed here) and
// diagnostics have something meaningful to print.
func fixturePath(abs string) string {
	base := filepath.Base(abs)
	return "repro/internal/analysis/testdata/" + base
}

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkWants compares diagnostics against the `// want` expectations of
// every fixture file in dir.
func checkWants(t *testing.T, dir string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*want{} // "file:line" → expectations
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				key := fmt.Sprintf("%s:%d", path, i+1)
				wants[key] = append(wants[key], &want{re: re, raw: pat})
			}
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.raw)
			}
		}
	}
}
