package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package plus its suppression
// markers. A directory yields one primary Package (library files plus
// in-package _test.go files) and, when present, a second Package for
// the external foo_test package (Path suffixed "_test").
type Package struct {
	// Dir is the package directory; Path its import path.
	Dir  string
	Path string

	Fset      *token.FileSet
	Files     []*ast.File
	TestFiles map[*ast.File]bool
	Types     *types.Package
	Info      *types.Info
	Markers   []*Marker

	// facts accumulates what this package's analyzers export; depFacts
	// holds the already-computed facts of dependency packages (see
	// facts.go).
	facts    *PackageFacts
	depFacts map[string]*PackageFacts
}

// A Loader parses and type-checks packages of this module from source.
// The zero value is not usable; construct with NewLoader. One Loader
// shares a FileSet and a source importer (which caches transitively
// type-checked dependencies) across every LoadDir call.
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a Loader backed by the standard library's source
// importer. The importer resolves module-internal import paths through
// the go command, so the process's working directory must be inside the
// module.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadDir parses and type-checks the package in dir under import path
// pkgPath. includeTests folds _test.go files in: in-package test files
// join the primary package, external (foo_test) files form a second
// returned package with path pkgPath+"_test".
func (l *Loader) LoadDir(dir, pkgPath string, includeTests bool) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	// Parse, splitting files by declared package name: the directory's
	// base package (with any in-package tests) vs. the external _test
	// package.
	var primary, external []*ast.File
	tests := map[*ast.File]bool{}
	baseName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkgName := f.Name.Name
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest {
			tests[f] = true
		}
		switch {
		case strings.HasSuffix(pkgName, "_test"):
			external = append(external, f)
		default:
			if baseName == "" {
				baseName = pkgName
			} else if pkgName != baseName {
				return nil, fmt.Errorf("%s: mixed package names %s and %s", dir, baseName, pkgName)
			}
			primary = append(primary, f)
		}
	}

	var out []*Package
	if len(primary) > 0 {
		pkg, err := l.check(dir, pkgPath, primary, tests)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if len(external) > 0 {
		pkg, err := l.check(dir, pkgPath+"_test", external, tests)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func (l *Loader) check(dir, pkgPath string, files []*ast.File, tests map[*ast.File]bool) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	return &Package{
		Dir:       dir,
		Path:      pkgPath,
		Fset:      l.fset,
		Files:     files,
		TestFiles: tests,
		Types:     tpkg,
		Info:      info,
		Markers:   collectMarkers(l.fset, files),
	}, nil
}

// PackageDirs walks root (a module root) and returns every directory
// holding .go files, as module-root-relative paths in lexical order.
// testdata, hidden, and vendor directories are skipped.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(fi.Name(), ".go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
				dirs = append(dirs, rel)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || d != dirs[i-1] {
			out = append(out, d)
		}
	}
	return out, nil
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}
