// Package analysis is reprolint's static-analysis framework: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis (which is
// deliberately not vendored — the repo builds offline with the standard
// library only). It loads and type-checks packages of this module from
// source, runs Analyzer passes over them, and applies the
// `//repro:allow` suppression-marker discipline.
//
// The analyzers in this package turn the repo's two core conventions
// into machine-checked invariants:
//
//   - the *atomic-statement model*: every shared access in algorithm
//     code goes through sim.Ctx, charging exactly one statement, so the
//     paper's Q ≥ 8 / Q ≥ c quantum bounds and the WaitFreeBound
//     property remain sound (atomicaccess, ctxescape, simonly,
//     exhaustive);
//   - the *replay-determinism contract*: the forensics packages
//     (check, artifact, minimize, trace) produce byte-identical output
//     for identical inputs, so saved repro bundles replay faithfully
//     (determinism).
//
// See DESIGN.md §9 for the normative statement of both disciplines.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one reprolint pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// AllowKeys lists the `//repro:allow <key> <reason>` marker keys
	// that suppress this analyzer's diagnostics. Empty means the
	// analyzer is strict: nothing suppresses it.
	AllowKeys []string
	// SkipTests excludes _test.go files from the pass. Analyzers whose
	// invariant concerns shipped algorithm/engine code (not post-run
	// test verification) set this.
	SkipTests bool
	// AppliesTo reports whether the pass runs over the package with the
	// given import path. nil means every package. The driver consults
	// this; analysistest bypasses it so fixtures can live anywhere.
	AppliesTo func(pkgPath string) bool
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, already filtered per
	// Analyzer.SkipTests.
	Files []*ast.File
	// Pkg and Info are the type-checker's results for the package
	// (including any in-package test files, regardless of SkipTests —
	// type information is whole-package).
	Pkg  *types.Package
	Info *types.Info
	// IsTest reports whether a file is a _test.go file.
	IsTest func(*ast.File) bool

	pkg   *Package
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run executes a on pkg, applying SkipTests filtering and
// `//repro:allow` suppression. Suppressed diagnostics mark their marker
// as load-bearing (Marker.Used); the driver later reports any marker
// that suppressed nothing.
func (pkg *Package) Run(a *Analyzer) ([]Diagnostic, error) {
	files := pkg.Files
	if a.SkipTests {
		files = nil
		for _, f := range pkg.Files {
			if !pkg.TestFiles[f] {
				files = append(files, f)
			}
		}
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		IsTest:   func(f *ast.File) bool { return pkg.TestFiles[f] },
		pkg:      pkg,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	kept := diags[:0]
	for _, d := range diags {
		if m := pkg.markerFor(d.Pos, a.AllowKeys); m != nil {
			m.Used = true
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool { return lessPos(kept[i].Pos, kept[j].Pos) })
	return kept, nil
}

func lessPos(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// Analyzers returns every reprolint pass, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicAccess,
		CtxEscape,
		Determinism,
		SimOnly,
		Exhaustive,
		WaitFreeBound,
		StatementCharge,
	}
}

// pathIn reports whether pkgPath is one of paths.
func pathIn(pkgPath string, paths ...string) bool {
	// An external test package shares its base package's discipline.
	pkgPath = strings.TrimSuffix(pkgPath, "_test")
	for _, p := range paths {
		if pkgPath == p {
			return true
		}
	}
	return false
}
