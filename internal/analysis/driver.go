package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// suiteVersion keys the incremental cache to the analyzer suite: bump
// it whenever an analyzer, the marker grammar, or the fact model
// changes meaning, so stale entries can never mask new findings.
const suiteVersion = 1

// DriverOptions configures one RunDriver invocation.
type DriverOptions struct {
	// Root is the module root (see FindModuleRoot).
	Root string
	// Patterns selects packages: "./..." (default), "./dir", or
	// "./dir/...". Dependencies of selected packages are analyzed too
	// (their facts feed the interprocedural passes) but only selected
	// packages' diagnostics are reported.
	Patterns []string
	// Tests includes _test.go files.
	Tests bool
	// Cache enables the content-hash-keyed incremental cache.
	Cache bool
	// CacheDir overrides the cache location (default
	// <Root>/.reprolint-cache).
	CacheDir string
	// Parallelism caps concurrent package analysis (default GOMAXPROCS,
	// min 1). Each worker owns its own loader, so type-checking runs
	// genuinely in parallel across the package graph.
	Parallelism int
}

// DriverResult is what RunDriver produces.
type DriverResult struct {
	// Diags are the findings for selected packages, in file/line order.
	Diags []Diagnostic
	// Bounds is the derived per-operation statement-bound report over
	// every analyzed algorithm package.
	Bounds *BoundsReport
	// Packages counts selected (reported-on) package directories;
	// Analyzed counts directories analyzed including dependencies.
	Packages int
	Analyzed int
	// CacheHits/CacheMisses count per-directory cache outcomes (zero
	// when the cache is off).
	CacheHits   int
	CacheMisses int
}

// BoundsReport is the machine-readable bounds artifact: the statically
// derived worst-case statement count of every exported operation in
// the algorithm packages.
type BoundsReport struct {
	Version int       `json:"version"`
	Ops     []OpBound `json:"ops"`
}

// OpBound is one operation's derived bound.
type OpBound struct {
	Package string `json:"package"`
	Func    string `json:"func"`
	// Bound renders Expr; Expr is the evaluable tree.
	Bound     string `json:"bound"`
	Expr      *Bound `json:"expr,omitempty"`
	Unbounded bool   `json:"unbounded,omitempty"`
	// Incomplete lists why the bound is a lower-bound certificate only
	// (interface dispatch, function values); empty means total.
	Incomplete []string `json:"incomplete,omitempty"`
	File       string   `json:"file,omitempty"`
	Line       int      `json:"line,omitempty"`
}

// ValidPattern checks a package pattern: ".", "./...", "./dir", or
// "./dir/...", relative to the module root, no ".." segments.
func ValidPattern(p string) error {
	if p == "." || p == "./..." {
		return nil
	}
	rest, ok := strings.CutPrefix(p, "./")
	if !ok || rest == "" {
		return fmt.Errorf("bad package pattern %q: want ./dir, ./dir/..., or ./...", p)
	}
	rest = strings.TrimSuffix(rest, "/...")
	for _, seg := range strings.Split(rest, "/") {
		if seg == "" || seg == ".." || seg == "." {
			return fmt.Errorf("bad package pattern %q: empty or dot path segment", p)
		}
	}
	return nil
}

// matchesPatterns reports whether the root-relative package dir is
// selected by patterns (each already validated).
func matchesPatterns(patterns []string, relDir string) bool {
	for _, p := range patterns {
		if p == "./..." {
			return true
		}
		if p == "." {
			if relDir == "." {
				return true
			}
			continue
		}
		rest := strings.TrimPrefix(p, "./")
		if dir, ok := strings.CutSuffix(rest, "/..."); ok {
			if relDir == dir || strings.HasPrefix(relDir, dir+"/") {
				return true
			}
			continue
		}
		if relDir == rest {
			return true
		}
	}
	return false
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// dirInfo is one package directory's scan result.
type dirInfo struct {
	rel     string
	pkgPath string
	// files are the included .go file names (per Tests), sorted, with
	// content hashes.
	files  []string
	hashes []string
	// deps are root-relative dirs of module-internal imports.
	deps []string
}

// dirState tracks one directory through the worker pool.
type dirState struct {
	info    *dirInfo
	key     string // cache key, computed once deps are done
	diags   []Diagnostic
	facts   *PackageFacts
	hit     bool
	pending int // unfinished deps
}

// RunDriver analyzes the selected packages (plus their module-internal
// dependencies, whose facts the interprocedural analyzers consume) in
// package-graph-parallel topological order, consulting the incremental
// cache, and returns sorted diagnostics plus the derived bounds report.
//
// The process working directory must be inside the module: the source
// importer resolves module-internal imports through the go command.
func RunDriver(opts DriverOptions) (*DriverResult, error) {
	root, err := filepath.Abs(opts.Root)
	if err != nil {
		return nil, err
	}
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if err := ValidPattern(p); err != nil {
			return nil, err
		}
	}
	cacheDir := opts.CacheDir
	if cacheDir == "" {
		cacheDir = filepath.Join(root, ".reprolint-cache")
	}

	dirs, err := PackageDirs(root)
	if err != nil {
		return nil, err
	}
	infos := map[string]*dirInfo{}
	for _, rel := range dirs {
		info, err := scanDir(root, modPath, rel, opts.Tests)
		if err != nil {
			return nil, err
		}
		if info != nil {
			infos[rel] = info
		}
	}

	// Selection + transitive dependency closure.
	selected := map[string]bool{}
	for rel := range infos {
		if matchesPatterns(patterns, rel) {
			selected[rel] = true
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("patterns %v match no packages under %s", patterns, root)
	}
	needed := map[string]bool{}
	var grow func(rel string)
	grow = func(rel string) {
		if needed[rel] {
			return
		}
		needed[rel] = true
		for _, d := range infos[rel].deps {
			if infos[d] != nil {
				grow(d)
			}
		}
	}
	for rel := range selected {
		grow(rel)
	}

	// Topological worker pool over the needed subgraph.
	states := map[string]*dirState{}
	dependents := map[string][]string{}
	var ready []string
	for rel := range needed {
		info := infos[rel]
		st := &dirState{info: info}
		for _, d := range info.deps {
			if needed[d] && infos[d] != nil {
				st.pending++
				dependents[d] = append(dependents[d], rel)
			}
		}
		states[rel] = st
		if st.pending == 0 {
			ready = append(ready, rel)
		}
	}
	sort.Strings(ready)

	// Sanity: the non-test import graph must be acyclic, or the pool
	// below would wait forever. Kahn's algorithm over a scratch copy.
	{
		pend := map[string]int{}
		for rel, st := range states {
			pend[rel] = st.pending
		}
		queue := append([]string(nil), ready...)
		done := 0
		for len(queue) > 0 {
			rel := queue[0]
			queue = queue[1:]
			done++
			for _, dep := range dependents[rel] {
				if pend[dep]--; pend[dep] == 0 {
					queue = append(queue, dep)
				}
			}
		}
		if done != len(needed) {
			var stuck []string
			for rel, n := range pend {
				if n > 0 {
					stuck = append(stuck, rel)
				}
			}
			sort.Strings(stuck)
			return nil, fmt.Errorf("import cycle among package dirs %v", stuck)
		}
	}

	parallelism := opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(needed) {
		parallelism = len(needed)
	}
	if parallelism < 1 {
		parallelism = 1
	}

	var (
		mu        sync.Mutex
		cond      = sync.Cond{L: &mu}
		remaining = len(needed)
		firstErr  error
		hits      int
		misses    int
	)
	// transitiveDeps collects the needed dependency closure of rel,
	// excluding rel.
	transitiveDeps := func(rel string) []string {
		seen := map[string]bool{}
		var walk func(string)
		walk = func(r string) {
			for _, d := range infos[r].deps {
				if infos[d] != nil && !seen[d] {
					seen[d] = true
					walk(d)
				}
			}
		}
		walk(rel)
		out := make([]string, 0, len(seen))
		for d := range seen {
			out = append(out, d)
		}
		sort.Strings(out)
		return out
	}

	worker := func() {
		var loader *Loader
		for {
			mu.Lock()
			for len(ready) == 0 && remaining > 0 && firstErr == nil {
				cond.Wait()
			}
			if remaining == 0 || firstErr != nil {
				mu.Unlock()
				return
			}
			rel := ready[0]
			ready = ready[1:]
			st := states[rel]
			// Snapshot dep facts and compute the cache key under the
			// lock (deps are complete by topo order).
			deps := transitiveDeps(rel)
			depFacts := map[string]*PackageFacts{}
			depKeys := make([]string, 0, len(deps))
			for _, d := range deps {
				ds := states[d]
				if ds.facts != nil {
					depFacts[ds.info.pkgPath] = ds.facts
				}
				depKeys = append(depKeys, ds.key)
			}
			st.key = cacheKey(modPath, opts.Tests, st.info, depKeys)
			mu.Unlock()

			var (
				diags []Diagnostic
				facts *PackageFacts
				hit   bool
				err   error
			)
			if opts.Cache {
				diags, facts, hit = readCacheEntry(cacheDir, st.key, root)
			}
			if !hit {
				if loader == nil {
					loader = NewLoader()
				}
				diags, facts, err = analyzeDir(loader, root, st.info, opts.Tests, depFacts)
				if err == nil && opts.Cache {
					writeCacheEntry(cacheDir, st.key, root, st.info, diags, facts)
				}
			}

			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				st.diags, st.facts, st.hit = diags, facts, hit
				if hit {
					hits++
				} else {
					misses++
				}
			}
			remaining--
			for _, dep := range dependents[rel] {
				ds := states[dep]
				ds.pending--
				if ds.pending == 0 {
					ready = append(ready, dep)
				}
			}
			sort.Strings(ready)
			cond.Broadcast()
			mu.Unlock()
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < parallelism; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Assemble: diagnostics from selected packages only, bounds from
	// every analyzed algorithm package.
	res := &DriverResult{Packages: len(selected), Analyzed: len(needed), CacheHits: hits, CacheMisses: misses}
	var orderedNeeded []string
	for rel := range needed {
		orderedNeeded = append(orderedNeeded, rel)
	}
	sort.Strings(orderedNeeded)
	factsByPath := map[string]*PackageFacts{}
	for _, rel := range orderedNeeded {
		st := states[rel]
		if selected[rel] {
			res.Diags = append(res.Diags, st.diags...)
		}
		if st.facts != nil {
			factsByPath[st.info.pkgPath] = st.facts
		}
	}
	SortDiagnostics(res.Diags)
	res.Bounds = assembleBounds(root, factsByPath)
	return res, nil
}

// SortDiagnostics orders diags by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// scanDir reads a package directory's .go files (per tests), hashing
// contents and collecting module-internal imports. Returns nil when no
// files survive the filter.
func scanDir(root, modPath, rel string, tests bool) (*dirInfo, error) {
	abs := filepath.Join(root, rel)
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	info := &dirInfo{rel: rel, pkgPath: pkgPathFor(modPath, rel)}
	fset := token.NewFileSet()
	depSet := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(abs, name))
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256(data)
		info.files = append(info.files, name)
		info.hashes = append(info.hashes, hex.EncodeToString(sum[:]))
		// Dependency edges come from non-test files only: that is the
		// compile graph, which Go keeps acyclic, and it is exactly the
		// graph facts flow along (the interprocedural analyzers skip
		// test files). Test imports may cycle — package foo's external
		// test legally imports packages that import foo — so using them
		// for ordering would wedge the topological pool. Test files
		// still count toward the cache key via their content hashes.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, data, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Join(rel, name), err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			var depRel string
			switch {
			case path == modPath:
				depRel = "."
			case strings.HasPrefix(path, modPath+"/"):
				depRel = path[len(modPath)+1:]
			default:
				continue
			}
			if depRel != rel {
				depSet[depRel] = true
			}
		}
	}
	if len(info.files) == 0 {
		return nil, nil
	}
	for d := range depSet {
		info.deps = append(info.deps, d)
	}
	sort.Strings(info.deps)
	return info, nil
}

func pkgPathFor(modPath, rel string) string {
	if rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// analyzeDir loads, type-checks, and runs every applicable analyzer
// plus marker validation over one directory's packages.
func analyzeDir(loader *Loader, root string, info *dirInfo, tests bool, depFacts map[string]*PackageFacts) ([]Diagnostic, *PackageFacts, error) {
	pkgs, err := loader.LoadDir(filepath.Join(root, info.rel), info.pkgPath, tests)
	if err != nil {
		return nil, nil, err
	}
	var diags []Diagnostic
	var facts *PackageFacts
	for _, pkg := range pkgs {
		pkg.SetDepFacts(depFacts)
		for _, a := range Analyzers() {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			ds, err := pkg.Run(a)
			if err != nil {
				return nil, nil, err
			}
			diags = append(diags, ds...)
		}
		diags = append(diags, MarkerProblems(pkg)...)
		if pkg.Path == info.pkgPath {
			facts = pkg.Facts()
		}
	}
	SortDiagnostics(diags)
	return diags, facts, nil
}

// cacheKey fingerprints everything a directory's result depends on:
// suite version, module, tests flag, the directory's file contents, and
// the cache keys of its dependency closure (so a dep edit invalidates
// dependents transitively).
func cacheKey(modPath string, tests bool, info *dirInfo, depKeys []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d\x00%s\x00%s\x00tests=%v\x00", suiteVersion, modPath, info.rel, tests)
	for i, name := range info.files {
		fmt.Fprintf(h, "%s\x00%s\x00", name, info.hashes[i])
	}
	sorted := append([]string(nil), depKeys...)
	sort.Strings(sorted)
	for _, k := range sorted {
		fmt.Fprintf(h, "dep\x00%s\x00", k)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is the on-disk cache record. Positions are stored
// root-relative so the cache survives a checkout move.
type cacheEntry struct {
	Version int           `json:"version"`
	Dir     string        `json:"dir"`
	Diags   []cachedDiag  `json:"diags,omitempty"`
	Facts   *PackageFacts `json:"facts,omitempty"`
}

type cachedDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func readCacheEntry(cacheDir, key, root string) ([]Diagnostic, *PackageFacts, bool) {
	data, err := os.ReadFile(filepath.Join(cacheDir, key+".json"))
	if err != nil {
		return nil, nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Version != suiteVersion {
		return nil, nil, false
	}
	diags := make([]Diagnostic, 0, len(e.Diags))
	for _, d := range e.Diags {
		diags = append(diags, Diagnostic{
			Pos:      token.Position{Filename: filepath.Join(root, filepath.FromSlash(d.File)), Line: d.Line, Column: d.Col},
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	if e.Facts != nil {
		for _, ff := range e.Facts.Funcs {
			if ff.File != "" {
				ff.File = filepath.Join(root, filepath.FromSlash(ff.File))
			}
		}
	}
	return diags, e.Facts, true
}

func writeCacheEntry(cacheDir, key, root string, info *dirInfo, diags []Diagnostic, facts *PackageFacts) {
	// Cache writes are best-effort: a read-only checkout still lints.
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return
	}
	e := cacheEntry{Version: suiteVersion, Dir: info.rel}
	for _, d := range diags {
		e.Diags = append(e.Diags, cachedDiag{
			File:     relToRoot(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	if facts != nil {
		// Deep-copy so relativizing File doesn't mutate the live facts
		// dependents are about to read.
		cp := &PackageFacts{Path: facts.Path, Funcs: map[string]*FuncFact{}}
		for name, ff := range facts.Funcs {
			dup := *ff
			dup.File = relToRoot(root, ff.File)
			cp.Funcs[name] = &dup
		}
		e.Facts = cp
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp := filepath.Join(cacheDir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(cacheDir, key+".json"))
}

func relToRoot(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// assembleBounds builds the bounds report from the analyzed algorithm
// packages' facts.
func assembleBounds(root string, factsByPath map[string]*PackageFacts) *BoundsReport {
	report := &BoundsReport{Version: 1}
	var paths []string
	for path := range factsByPath {
		if pathIn(path, boundPackages...) {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	for _, path := range paths {
		for _, ff := range factsByPath[path].sortedFuncs() {
			if !ff.Op {
				continue
			}
			report.Ops = append(report.Ops, OpBound{
				Package:    path,
				Func:       ff.Name,
				Bound:      ff.Cost.String(),
				Expr:       ff.Cost,
				Unbounded:  ff.Cost.Unbounded(),
				Incomplete: ff.Incomplete,
				File:       relToRoot(root, ff.File),
				Line:       ff.Line,
			})
		}
	}
	return report
}
