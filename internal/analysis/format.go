package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Formats renders driver diagnostics for humans (text), tooling (json),
// code scanners (sarif), and GitHub's annotation grammar (github).

// FormatNames lists the supported -format values.
func FormatNames() []string { return []string{"text", "json", "sarif", "github"} }

// WriteBoundsReport encodes the derived bounds report as indented JSON.
func WriteBoundsReport(w io.Writer, report *BoundsReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// WriteDiagnostics renders diags in the named format. root relativizes
// paths for the sarif and github formats (SARIF artifact URIs and
// workflow annotations are repo-relative).
func WriteDiagnostics(w io.Writer, format string, diags []Diagnostic, root string) error {
	switch format {
	case "", "text":
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
		return nil
	case "json":
		return writeJSONDiags(w, diags, root)
	case "sarif":
		return WriteSARIF(w, diags, root)
	case "github":
		for _, d := range diags {
			fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::%s: %s\n",
				relToRoot(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		return nil
	}
	return fmt.Errorf("unknown format %q (want one of %v)", format, FormatNames())
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSONDiags(w io.Writer, diags []Diagnostic, root string) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File: relToRoot(root, d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"findings": findings})
}

// SARIF 2.1.0 minimal subset: one run, one rule per analyzer, one
// result per diagnostic.
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription sarifText     `json:"shortDescription"`
	FullDescription  sarifText     `json:"fullDescription,omitempty"`
	DefaultConfig    sarifSeverity `json:"defaultConfiguration"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifSeverity struct {
	Level string `json:"level"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes diags as a SARIF 2.1.0 log, paths relative to
// root.
func WriteSARIF(w io.Writer, diags []Diagnostic, root string) error {
	ruleDocs := map[string]string{"allowmarker": "marker grammar and load-bearing-ness validation"}
	for _, a := range Analyzers() {
		ruleDocs[a.Name] = a.Doc
	}
	seen := map[string]bool{}
	var ruleIDs []string
	for _, d := range diags {
		if !seen[d.Analyzer] {
			seen[d.Analyzer] = true
			ruleIDs = append(ruleIDs, d.Analyzer)
		}
	}
	sort.Strings(ruleIDs)
	rules := make([]sarifRule, 0, len(ruleIDs))
	for _, id := range ruleIDs {
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifText{Text: id},
			FullDescription:  sarifText{Text: ruleDocs[id]},
			DefaultConfig:    sarifSeverity{Level: "error"},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relToRoot(root, d.Pos.Filename)},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "reprolint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
