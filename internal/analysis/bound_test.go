package analysis_test

import (
	"encoding/json"
	"testing"

	"repro/internal/analysis"
)

func TestParseBound(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String() rendering; "" means parse error
	}{
		{"8", "8"},
		{"n", "n"},
		{"N", "n"},
		{"m+1", "m+1"},
		{"2*l+m", "2*l+m"},
		{"threshold+1", "threshold+1"},
		{"max(n,m)", "max(n,m)"},
		{"max(1,n,m+2)", "max(n,m+2,1)"}, // constants fold to the back
		{"(n+1)*m", "(n+1)*m"},
		{"n-1", "n-1"},
		{"unbounded", "unbounded"},
		{"unbounded+1", "unbounded"},
		{"0*unbounded", "0"},
		{"2*3", "6"},
		{"1+2+3", "6"},
		{"", ""},
		{"2*+q", ""},
		{"n+", ""},
		{"max(", ""},
		{"max()", ""},
		{"n)", ""},
		{"3..", ""},
	}
	for _, c := range cases {
		b, err := analysis.ParseBound(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParseBound(%q) = %s, want error", c.in, b)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBound(%q): %v", c.in, err)
			continue
		}
		if got := b.String(); got != c.want {
			t.Errorf("ParseBound(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBoundEval(t *testing.T) {
	env := map[string]int64{"n": 4, "m": 3, "l": 2}
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"8", 8, true},
		{"n", 4, true},
		{"2*l+m", 7, true},
		{"max(n,m+2)", 5, true},
		{"n-m", 1, true},
		{"unbounded", 0, false},
		{"q", 0, false}, // q not in env
	}
	for _, c := range cases {
		b, err := analysis.ParseBound(c.in)
		if err != nil {
			t.Fatalf("ParseBound(%q): %v", c.in, err)
		}
		got, ok := b.Eval(env)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Eval(%q) = %d, %v; want %d, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestBoundJSONRoundTrip(t *testing.T) {
	for _, expr := range []string{"8", "n", "m+1", "2*l+m", "max(1,n,m+2)", "(n+1)*m", "n-1", "unbounded"} {
		b, err := analysis.ParseBound(expr)
		if err != nil {
			t.Fatalf("ParseBound(%q): %v", expr, err)
		}
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("marshal %q: %v", expr, err)
		}
		var back analysis.Bound
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %q (%s): %v", expr, data, err)
		}
		if got, want := back.String(), b.String(); got != want {
			t.Errorf("round trip %q: got %q, want %q", expr, got, want)
		}
	}
}

func TestBoundAlgebra(t *testing.T) {
	n := analysis.BSym("n")
	if got := analysis.BAdd(analysis.BConst(2), analysis.BConst(3), n).String(); got != "n+5" && got != "2+3+n" && got != "5+n" {
		// Constant folding order is an implementation detail; pin only
		// that constants fold.
		b, _ := analysis.ParseBound(got)
		if v, ok := b.Eval(map[string]int64{"n": 1}); !ok || v != 6 {
			t.Errorf("BAdd(2,3,n) = %q, want something evaluating to 6 at n=1", got)
		}
	}
	if got := analysis.BMul(analysis.BUnbounded(), analysis.BConst(0)).String(); got != "0" {
		t.Errorf("unbounded * 0 = %q, want 0", got)
	}
	if got := analysis.BMax(n, analysis.BUnbounded()).String(); got != "unbounded" {
		t.Errorf("max(n, unbounded) = %q, want unbounded", got)
	}
	if !analysis.BUnbounded().Unbounded() {
		t.Errorf("BUnbounded().Unbounded() = false")
	}
	if analysis.BConst(7).Unbounded() {
		t.Errorf("BConst(7).Unbounded() = true")
	}
}
