package analysis

import (
	"go/ast"
	"go/types"
)

// Shared helpers for the interprocedural analyzers (waitfreebound,
// statementcharge): static callee resolution over go/types, and the
// definition of an "operation" — the unit the paper's per-invocation
// bounds are stated over.

// boundPackages are the packages under the wait-freedom loop/charge
// discipline: the algorithm packages plus the core harness that drives
// their invocations.
var boundPackages = append(append([]string{}, algorithmPackages...), "repro/internal/core")

// staticCallee resolves the *types.Func a call statically invokes, or
// nil for dynamic calls (function values, builtins like len, type
// conversions). Interface-method calls do resolve to the interface's
// *types.Func — callers distinguish them with isInterfaceCall.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if s := info.Selections[fun]; s != nil {
			if s.Kind() == types.FieldVal {
				return nil // call through a func-typed field: dynamic
			}
			f, _ := s.Obj().(*types.Func)
			return f
		}
		// Qualified identifier: pkg.Func.
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isInterfaceCall reports whether the call dispatches through an
// interface (so the concrete body is statically unknown).
func isInterfaceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := info.Selections[sel]
	return s != nil && types.IsInterface(s.Recv())
}

// hasCtxParam reports whether fn takes a *sim.Ctx parameter.
func hasCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p, ok := params.At(i).Type().(*types.Pointer)
		if !ok {
			continue
		}
		n, ok := p.Elem().(*types.Named)
		if ok && n.Obj().Name() == "Ctx" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == simPath {
			return true
		}
	}
	return false
}

// isOperation reports whether decl is an exported operation: exported
// name, exported (or absent) receiver type, and a *sim.Ctx parameter.
func isOperation(decl *ast.FuncDecl, fn *types.Func) bool {
	if !decl.Name.IsExported() || !hasCtxParam(fn) {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if !ast.IsExported(typeName(recv.Type())) {
			return false
		}
	}
	return true
}

// declaredFuncs collects every function declaration with a body, in
// file/source order, mapping its *types.Func.
func declaredFuncs(pass *Pass) (map[*types.Func]*ast.FuncDecl, []*types.Func) {
	decls := map[*types.Func]*ast.FuncDecl{}
	var order []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			decls[obj] = fd
			order = append(order, obj)
		}
	}
	return decls, order
}
