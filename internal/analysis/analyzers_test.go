package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestAtomicAccess(t *testing.T) {
	pkgs := analysistest.Run(t, analysis.AtomicAccess, "testdata/atomicaccess")
	assertNoStaleMarkers(t, pkgs)
}

func TestCtxEscape(t *testing.T) {
	analysistest.Run(t, analysis.CtxEscape, "testdata/ctxescape")
}

func TestDeterminism(t *testing.T) {
	pkgs := analysistest.Run(t, analysis.Determinism, "testdata/determinism")
	assertNoStaleMarkers(t, pkgs)
}

func TestSimOnly(t *testing.T) {
	analysistest.Run(t, analysis.SimOnly, "testdata/simonly")
}

func TestExhaustive(t *testing.T) {
	pkgs := analysistest.Run(t, analysis.Exhaustive, "testdata/exhaustive")
	assertNoStaleMarkers(t, pkgs)
}

func TestWaitFreeBound(t *testing.T) {
	// RunMarkers also validates the fixture's //repro:bound markers:
	// every one must be load-bearing.
	pkgs := analysistest.RunMarkers(t, "testdata/waitfreebound", analysis.WaitFreeBound)
	// The fixture's Decide mirrors unicons.Decide's statement shape; its
	// derived worst-case cost must be exactly 8, with no caveats.
	const decide = "(*repro/internal/analysis/testdata/waitfreebound.Object).Decide"
	for _, pkg := range pkgs {
		facts := pkg.Facts()
		if facts == nil || facts.Funcs[decide] == nil {
			continue
		}
		ff := facts.Funcs[decide]
		if !ff.Op {
			t.Errorf("Decide not classified as an operation")
		}
		if got := ff.Cost.String(); got != "8" {
			t.Errorf("Decide derived cost = %s, want 8", got)
		}
		if len(ff.Incomplete) != 0 {
			t.Errorf("Decide cost incomplete: %v", ff.Incomplete)
		}
		return
	}
	t.Fatalf("no package exported a fact for %s", decide)
}

func TestStatementCharge(t *testing.T) {
	pkgs := analysistest.Run(t, analysis.StatementCharge, "testdata/statementcharge")
	assertNoStaleMarkers(t, pkgs)
}

// TestBoundMarkers exercises the marker validator's bound-specific
// cases — malformed expressions, unknown model parameters, stale
// markers — including markers in an external _test package, which are
// stale by construction (the bound analyzers skip test files).
func TestBoundMarkers(t *testing.T) {
	analysistest.RunMarkers(t, "testdata/boundmarkers", analysis.WaitFreeBound)
}

// TestBoundMarkerMissingReason covers the one grammar error a fixture
// `// want` comment cannot express: trailing text after the expression
// becomes the reason, so a reasonless marker must be built directly.
func TestBoundMarkerMissingReason(t *testing.T) {
	pkg := &analysis.Package{Markers: []*analysis.Marker{
		{Kind: "bound", Key: "n", Reason: ""},
		{Kind: "bound", Key: "", Reason: ""},
	}}
	problems := analysis.MarkerProblems(pkg)
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2: %v", len(problems), problems)
	}
	for _, p := range problems {
		if !strings.Contains(p.Message, "malformed //repro:bound marker: want //repro:bound <expr> <reason>") {
			t.Errorf("problem = %q, want the malformed-marker message", p.Message)
		}
	}
}

// assertNoStaleMarkers re-validates that every fixture marker was
// load-bearing for the analyzer under test.
func assertNoStaleMarkers(t *testing.T, pkgs []*analysis.Package) {
	t.Helper()
	for _, pkg := range pkgs {
		for _, d := range analysis.MarkerProblems(pkg) {
			t.Errorf("marker problem: %s", d)
		}
	}
}

// TestScopes pins the driver-level package filters to the disciplines
// in ISSUE/DESIGN: atomicaccess exempts mem+sim, ctxescape exempts sim,
// determinism covers exactly the replay-sensitive packages, simonly
// exactly the algorithm packages.
func TestScopes(t *testing.T) {
	cases := []struct {
		a    *analysis.Analyzer
		pkg  string
		want bool
	}{
		{analysis.AtomicAccess, "repro/internal/mem", false},
		{analysis.AtomicAccess, "repro/internal/sim", false},
		{analysis.AtomicAccess, "repro/internal/sim_test", false},
		{analysis.AtomicAccess, "repro/internal/unicons", true},
		{analysis.AtomicAccess, "repro/cmd/soak", true},
		{analysis.CtxEscape, "repro/internal/sim", false},
		{analysis.CtxEscape, "repro/internal/check", true},
		{analysis.Determinism, "repro/internal/check", true},
		{analysis.Determinism, "repro/internal/artifact", true},
		{analysis.Determinism, "repro/internal/minimize", true},
		{analysis.Determinism, "repro/internal/trace", true},
		{analysis.Determinism, "repro/internal/sim", true},
		{analysis.Determinism, "repro/internal/sched", true},
		{analysis.Determinism, "repro/internal/campaign", true},
		{analysis.Determinism, "repro/internal/store", true},
		{analysis.Determinism, "repro/internal/service", true},
		{analysis.Determinism, "repro/internal/service/jobspec", true},
		{analysis.Determinism, "repro/internal/bench", false},
		{analysis.SimOnly, "repro/internal/unicons", true},
		{analysis.SimOnly, "repro/internal/multicons", true},
		{analysis.SimOnly, "repro/internal/hybridcas", true},
		{analysis.SimOnly, "repro/internal/universal", true},
		{analysis.SimOnly, "repro/internal/qlocal", true},
		{analysis.SimOnly, "repro/internal/renaming", true},
		{analysis.SimOnly, "repro/internal/baseline", true},
		{analysis.SimOnly, "repro/internal/baseline_test", true},
		{analysis.SimOnly, "repro/internal/check", false},
		{analysis.WaitFreeBound, "repro/internal/unicons", true},
		{analysis.WaitFreeBound, "repro/internal/unicons_test", true},
		{analysis.WaitFreeBound, "repro/internal/core", true},
		{analysis.WaitFreeBound, "repro/internal/check", false},
		{analysis.WaitFreeBound, "repro/internal/mem", false},
		{analysis.StatementCharge, "repro/internal/qlocal", true},
		{analysis.StatementCharge, "repro/internal/core", true},
		{analysis.StatementCharge, "repro/internal/sim", false},
		{analysis.StatementCharge, "repro/internal/check", false},
	}
	for _, c := range cases {
		if got := c.a.AppliesTo == nil || c.a.AppliesTo(c.pkg); got != c.want {
			t.Errorf("%s.AppliesTo(%s) = %v, want %v", c.a.Name, c.pkg, got, c.want)
		}
	}
	if analysis.Exhaustive.AppliesTo != nil {
		t.Errorf("exhaustive should apply to every package")
	}
}

func TestAnalyzerInventory(t *testing.T) {
	want := []string{"atomicaccess", "ctxescape", "determinism", "simonly", "exhaustive", "waitfreebound", "statementcharge"}
	got := analysis.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
	}
	keys := analysis.ValidKeys()
	for _, k := range []string{"post-run", "walltime", "goroutine", "maporder", "rand", "campaign", "service", "ctxescape", "exhaustive", "charge"} {
		if !keys[k] {
			t.Errorf("ValidKeys missing %q", k)
		}
	}
}

func TestMarkerValidation(t *testing.T) {
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadDir("testdata/allowmarkers", "repro/internal/analysis/testdata/allowmarkers", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	// Run every analyzer so legitimate markers would be consumed; the
	// fixture's are all defective.
	for _, a := range analysis.Analyzers() {
		if _, err := pkg.Run(a); err != nil {
			t.Fatal(err)
		}
	}
	problems := analysis.MarkerProblems(pkg)
	if len(problems) != 3 {
		t.Fatalf("got %d marker problems, want 3: %v", len(problems), problems)
	}
	for i, wantSub := range []string{"malformed //repro:allow marker", "unknown //repro:allow key frobnicate", "stale //repro:allow post-run marker"} {
		if !strings.Contains(problems[i].Message, wantSub) {
			t.Errorf("problem %d = %q, want containing %q", i, problems[i].Message, wantSub)
		}
	}
}
