package analysis

import (
	"go/ast"
	"go/types"
)

// memPath is the package whose raw accessors bypass statement
// accounting; simPath is the only package allowed to call them (it owns
// the statement baton).
const (
	memPath = "repro/internal/mem"
	simPath = "repro/internal/sim"
)

// rawAccessors are the mem methods that read or write shared state
// without charging an atomic statement. Everything an algorithm does to
// shared memory must instead go through sim.Ctx (Read/Write/CCons/
// CASPrim/LoadPrim), which serializes the access under the baton and
// charges exactly one statement — the unit all of the paper's quantum
// bounds (Theorems 1–4, Table 1) count. Name/C and the constructors are
// metadata, not shared state, and stay unflagged.
var rawAccessors = map[string]map[string]bool{
	"Reg":        {"Load": true, "Store": true},
	"ConsObject": {"Invoke": true, "Invocations": true, "Decided": true},
	"CASObject":  {"Load": true, "CompareAndSwap": true},
}

// AtomicAccess flags raw mem accessor use (and direct field access on
// mem types) outside the mem and sim packages. Legitimate post-run
// inspection — verify phases, trace rendering, Peek-style helpers —
// carries an explicit `//repro:allow post-run <reason>` marker instead.
// Test files are exempt: by construction they inspect state only after
// Run returns, and their in-run bodies execute under a Ctx the Auditor
// already polices dynamically.
var AtomicAccess = &Analyzer{
	Name:      "atomicaccess",
	Doc:       "raw mem accessors bypass sim.Ctx statement accounting; every shared access in algorithm code must charge exactly one atomic statement",
	AllowKeys: []string{"post-run"},
	SkipTests: true,
	AppliesTo: func(pkgPath string) bool { return !pathIn(pkgPath, memPath, simPath) },
	Run:       runAtomicAccess,
}

func runAtomicAccess(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.Info.Selections[sel]
			if s == nil {
				return true
			}
			obj := s.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != memPath {
				return true
			}
			switch s.Kind() {
			case types.MethodVal, types.MethodExpr:
				recv := typeName(s.Recv())
				if rawAccessors[recv][obj.Name()] {
					pass.Reportf(sel.Sel.Pos(),
						"raw mem.%s.%s bypasses sim.Ctx statement accounting; route the access through a Ctx or annotate //repro:allow post-run <reason>",
						recv, obj.Name())
				}
			case types.FieldVal:
				pass.Reportf(sel.Sel.Pos(),
					"direct field access %s.%s on a mem type outside mem/sim; shared state must be reached through sim.Ctx",
					typeName(s.Recv()), obj.Name())
			}
			return true
		})
	}
	return nil
}

// typeName returns the bare name of t's named type, dereferencing one
// pointer level.
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
