// Package store is the job service's persistent artifact store: one
// directory tree holding everything the server must not lose across a
// restart — per-job state (spec, status, progress, campaign state
// directories), content-addressed repro bundles, and the appended bench
// history. All writes are atomic (write-temp-then-rename), so a crash
// at any point leaves every file either old or new, never torn; this is
// what lets the server treat the store as the single source of truth on
// boot and resume interrupted jobs from it.
//
// Layout under the root:
//
//	jobs/job-000001/spec.json      the submitted jobspec.Spec
//	jobs/job-000001/status.json    the server's job status record
//	jobs/job-000001/progress.json  cumulative check-job result + frontier
//	jobs/job-000001/state/         campaign state dir (soak jobs)
//	jobs/job-000001/scratch/       per-job scratch artifact dir
//	artifacts/<sha256>.json        content-addressed repro bundles
//	bench.json                     appended bench history (internal/bench)
//
// Job IDs are dense ("job-%06d"): CreateJob scans the existing IDs and
// allocates max+1, so IDs stay stable and sortable across restarts.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"repro/internal/artifact"
	"repro/internal/bench"
)

// Store is a handle on one store root. The mutex serializes ID
// allocation and bench appends; everything else is naturally safe
// because writes are atomic renames of content-complete files.
type Store struct {
	root string
	mu   sync.Mutex
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "jobs"), filepath.Join(dir, "artifacts")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// writeAtomic writes data to path via a temporary file in the same
// directory plus a rename, so readers (and post-crash recovery) never
// observe a partial file.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	return nil
}

// jobIDRe is the only job-ID shape the store accepts; it doubles as
// path-traversal protection for IDs arriving from URLs.
var jobIDRe = regexp.MustCompile(`^job-[0-9]{6}$`)

// ValidJobID reports whether id has the store's job-ID shape.
func ValidJobID(id string) bool { return jobIDRe.MatchString(id) }

// jobDir resolves a job directory, rejecting malformed IDs.
func (s *Store) jobDir(id string) (string, error) {
	if !ValidJobID(id) {
		return "", fmt.Errorf("store: malformed job id %q", id)
	}
	return filepath.Join(s.root, "jobs", id), nil
}

// CreateJob allocates the next job ID and creates its directory.
func (s *Store) CreateJob() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids, err := s.JobIDs()
	if err != nil {
		return "", err
	}
	next := 1
	if len(ids) > 0 {
		last := ids[len(ids)-1]
		n, err := strconv.Atoi(last[len("job-"):])
		if err != nil {
			return "", fmt.Errorf("store: corrupt job id %q", last)
		}
		next = n + 1
	}
	id := fmt.Sprintf("job-%06d", next)
	dir, err := s.jobDir(id)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	return id, nil
}

// JobIDs lists the store's job IDs in ascending order.
func (s *Store) JobIDs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() && ValidJobID(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// HasJob reports whether id names an existing job directory.
func (s *Store) HasJob(id string) bool {
	dir, err := s.jobDir(id)
	if err != nil {
		return false
	}
	info, err := os.Stat(dir)
	return err == nil && info.IsDir()
}

// WriteJobFile atomically writes one file inside a job's directory.
// name must be a bare file name (no separators).
func (s *Store) WriteJobFile(id, name string, data []byte) error {
	dir, err := s.jobDir(id)
	if err != nil {
		return err
	}
	if name == "" || name != filepath.Base(name) {
		return fmt.Errorf("store: bad job file name %q", name)
	}
	return writeAtomic(filepath.Join(dir, name), data)
}

// ReadJobFile reads one file from a job's directory; (nil, nil) when
// the file does not exist.
func (s *Store) ReadJobFile(id, name string) ([]byte, error) {
	dir, err := s.jobDir(id)
	if err != nil {
		return nil, err
	}
	if name == "" || name != filepath.Base(name) {
		return nil, fmt.Errorf("store: bad job file name %q", name)
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// StateDir returns a job's campaign state directory (not created until
// the campaign first writes to it).
func (s *Store) StateDir(id string) (string, error) {
	dir, err := s.jobDir(id)
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, "state"), nil
}

// ScratchDir returns a job's scratch artifact directory, where a
// running job drops bundles before they are imported into the
// content-addressed area.
func (s *Store) ScratchDir(id string) (string, error) {
	dir, err := s.jobDir(id)
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, "scratch"), nil
}

// artifactKeyRe is the only artifact-key shape the store accepts
// (lowercase sha256 hex), doubling as path-traversal protection.
var artifactKeyRe = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidArtifactKey reports whether key has the store's key shape.
func ValidArtifactKey(key string) bool { return artifactKeyRe.MatchString(key) }

// PutArtifact stores a repro bundle content-addressed and returns its
// key (the sha256 of its compact JSON encoding). Storing the same
// bundle twice is a no-op returning the same key.
func (s *Store) PutArtifact(b *artifact.Bundle) (string, error) {
	data, err := json.Marshal(b)
	if err != nil {
		return "", fmt.Errorf("store: encode bundle: %w", err)
	}
	sum := sha256.Sum256(data)
	key := hex.EncodeToString(sum[:])
	// Bundles historically persist with a trailing newline the key does
	// not cover; keys must stay stable, so the raw path is separate.
	if err := s.putBlob(key, append(data, '\n')); err != nil {
		return "", err
	}
	return key, nil
}

// PutRawArtifact stores an arbitrary JSON document (a lint job's SARIF
// log or bounds report) content-addressed by the sha256 of its exact
// bytes, and returns the key. Idempotent like PutArtifact.
func (s *Store) PutRawArtifact(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	key := hex.EncodeToString(sum[:])
	if err := s.putBlob(key, data); err != nil {
		return "", err
	}
	return key, nil
}

// putBlob writes one content-addressed file, skipping the write when
// the key already exists (content-addressing makes re-writes no-ops).
func (s *Store) putBlob(key string, data []byte) error {
	path := filepath.Join(s.root, "artifacts", key+".json")
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	return writeAtomic(path, data)
}

// ImportArtifact loads a bundle file (e.g. from a job's scratch or
// campaign artifact directory) and stores it content-addressed.
func (s *Store) ImportArtifact(path string) (string, error) {
	b, err := artifact.Load(path)
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	return s.PutArtifact(b)
}

// Artifact returns a stored bundle's JSON by key; (nil, nil) when the
// key is unknown.
func (s *Store) Artifact(key string) ([]byte, error) {
	if !ValidArtifactKey(key) {
		return nil, fmt.Errorf("store: malformed artifact key %q", key)
	}
	data, err := os.ReadFile(filepath.Join(s.root, "artifacts", key+".json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// ArtifactKeys lists the stored bundle keys in ascending order.
func (s *Store) ArtifactKeys() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "artifacts"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if len(name) == 64+len(".json") && ValidArtifactKey(name[:64]) {
			keys = append(keys, name[:64])
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// benchPath is the store's appended bench-history file.
func (s *Store) benchPath() string { return filepath.Join(s.root, "bench.json") }

// AppendBench appends one bench report to the store's history file
// (internal/bench {latest, history} format, shared with cmd/benchjson).
func (s *Store) AppendBench(entry []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	existing, err := os.ReadFile(s.benchPath())
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	merged, err := bench.AppendHistory(existing, entry)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeAtomic(s.benchPath(), merged)
}

// BenchHistory returns the store's bench history; an empty-but-valid
// history when nothing was appended yet.
func (s *Store) BenchHistory() ([]byte, error) {
	data, err := os.ReadFile(s.benchPath())
	if os.IsNotExist(err) {
		h := &bench.History{}
		return h.Encode()
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}
