package store_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/store"
)

func open(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateJobAllocatesDenseIDs(t *testing.T) {
	s := open(t)
	for i, want := range []string{"job-000001", "job-000002", "job-000003"} {
		id, err := s.CreateJob()
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("job %d got id %s, want %s", i, id, want)
		}
	}
	// Reopening the same root continues the sequence (IDs survive
	// restarts).
	s2, err := store.Open(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	id, err := s2.CreateJob()
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-000004" {
		t.Fatalf("after reopen got id %s, want job-000004", id)
	}
	ids, err := s2.JobIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 || ids[0] != "job-000001" || ids[3] != "job-000004" {
		t.Fatalf("JobIDs = %v", ids)
	}
}

func TestJobFilesRoundTrip(t *testing.T) {
	s := open(t)
	id, err := s.CreateJob()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJobFile(id, "status.json", []byte(`{"state":"queued"}`)); err != nil {
		t.Fatal(err)
	}
	data, err := s.ReadJobFile(id, "status.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"state":"queued"}` {
		t.Fatalf("read back %q", data)
	}
	missing, err := s.ReadJobFile(id, "nope.json")
	if err != nil || missing != nil {
		t.Fatalf("missing file: data=%q err=%v, want nil/nil", missing, err)
	}
	if !s.HasJob(id) || s.HasJob("job-999999") {
		t.Fatal("HasJob wrong")
	}
}

func TestMalformedIDsAndNamesRejected(t *testing.T) {
	s := open(t)
	for _, id := range []string{"", "job-1", "../etc", "job-00000a", "job-0000001"} {
		if err := s.WriteJobFile(id, "x.json", nil); err == nil {
			t.Errorf("malformed id %q accepted", id)
		}
		if store.ValidJobID(id) {
			t.Errorf("ValidJobID(%q) = true", id)
		}
	}
	id, err := s.CreateJob()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "a/b.json", "../escape"} {
		if err := s.WriteJobFile(id, name, nil); err == nil {
			t.Errorf("bad file name %q accepted", name)
		}
		if _, err := s.ReadJobFile(id, name); err == nil {
			t.Errorf("bad file name %q accepted on read", name)
		}
	}
}

func TestArtifactContentAddressing(t *testing.T) {
	s := open(t)
	b, _, err := artifact.Capture(artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 8, MaxSteps: 1 << 18},
		artifact.Sched{Random: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	key1, err := s.PutArtifact(b)
	if err != nil {
		t.Fatal(err)
	}
	if !store.ValidArtifactKey(key1) {
		t.Fatalf("key %q not a sha256 hex string", key1)
	}
	// Same content, same key, no error (dedup).
	key2, err := s.PutArtifact(b)
	if err != nil || key2 != key1 {
		t.Fatalf("re-put: key %s err %v, want %s nil", key2, err, key1)
	}
	data, err := s.Artifact(key1)
	if err != nil || data == nil {
		t.Fatalf("fetch: %v", err)
	}
	unknown, err := s.Artifact("0000000000000000000000000000000000000000000000000000000000000000")
	if err != nil || unknown != nil {
		t.Fatalf("unknown key: data=%v err=%v, want nil/nil", unknown, err)
	}
	if _, err := s.Artifact("../../etc/passwd"); err == nil {
		t.Fatal("malformed key accepted")
	}
	keys, err := s.ArtifactKeys()
	if err != nil || len(keys) != 1 || keys[0] != key1 {
		t.Fatalf("ArtifactKeys = %v, %v", keys, err)
	}
}

func TestImportArtifact(t *testing.T) {
	s := open(t)
	b, _, err := artifact.Capture(artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 8, MaxSteps: 1 << 18},
		artifact.Sched{Random: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	key, err := s.ImportArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.Artifact(key)
	if err != nil || data == nil {
		t.Fatalf("imported bundle not retrievable: %v", err)
	}
	if _, err := s.ImportArtifact(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing bundle file accepted")
	}
}

func TestBenchHistoryAppend(t *testing.T) {
	s := open(t)
	empty, err := s.BenchHistory()
	if err != nil {
		t.Fatal(err)
	}
	h, err := bench.ParseHistory(empty)
	if err != nil || len(h.History) != 0 {
		t.Fatalf("empty store history: %v %v", h, err)
	}
	if err := s.AppendBench([]byte(`{"schema":3,"run":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBench([]byte(`{"schema":3,"run":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBench([]byte("{broken")); err == nil {
		t.Fatal("invalid bench entry accepted")
	}
	data, err := s.BenchHistory()
	if err != nil {
		t.Fatal(err)
	}
	h, err = bench.ParseHistory(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.History) != 2 {
		t.Fatalf("history has %d entries, want 2", len(h.History))
	}
	var latest struct {
		Run int `json:"run"`
	}
	if err := json.Unmarshal(h.Latest, &latest); err != nil || latest.Run != 2 {
		t.Fatalf("latest entry %s (err %v), want run 2", h.Latest, err)
	}
}

func TestStateAndScratchDirsAreInsideJob(t *testing.T) {
	s := open(t)
	id, err := s.CreateJob()
	if err != nil {
		t.Fatal(err)
	}
	state, err := s.StateDir(id)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := s.ScratchDir(id)
	if err != nil {
		t.Fatal(err)
	}
	jobRoot := filepath.Join(s.Root(), "jobs", id)
	for _, dir := range []string{state, scratch} {
		rel, err := filepath.Rel(jobRoot, dir)
		if err != nil || rel == ".." || filepath.IsAbs(rel) {
			t.Fatalf("dir %s escapes job root %s", dir, jobRoot)
		}
	}
	if _, err := s.StateDir("bogus"); err == nil {
		t.Fatal("malformed id accepted")
	}
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	s := open(t)
	id, err := s.CreateJob()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJobFile(id, "status.json", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(s.Root(), "jobs", id))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}
