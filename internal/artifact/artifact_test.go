package artifact_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/qlocal"
	"repro/internal/sched"
	"repro/internal/unicons"
)

// findRandomFailure sweeps seeded-random schedules until one violates
// the workload's property and returns the captured bundle.
func findRandomFailure(t *testing.T, meta artifact.Meta, s artifact.Sched, maxSeed int64) *artifact.Bundle {
	t.Helper()
	for seed := int64(1); seed <= maxSeed; seed++ {
		s := s
		s.Random = true
		s.Seed = seed
		if s.MaxCrashes > 0 {
			s.CrashSeed = seed * 7
		}
		b, rep, err := artifact.Capture(meta, s)
		if err != nil {
			t.Fatalf("Capture(seed=%d): %v", seed, err)
		}
		if rep.Failed() {
			return b
		}
	}
	t.Fatalf("no violating schedule for %+v in %d seeds", meta, maxSeed)
	return nil
}

// roundTrip is the bundle stability property: Save → Load → Replay must
// reproduce the identical verifier error and the identical event trace.
func roundTrip(t *testing.T, b *artifact.Bundle) {
	t.Helper()
	if b.Err == "" {
		t.Fatal("bundle records no violation; nothing to round-trip")
	}
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := b.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	lb, err := artifact.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	rep, err := artifact.Replay(lb, artifact.ReplayOptions{Trace: true})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Err == nil {
		t.Fatalf("replayed run passed; bundle recorded %q", b.Err)
	}
	if rep.Err.Error() != b.Err {
		t.Fatalf("replayed error diverged:\n  recorded: %s\n  replayed: %s", b.Err, rep.Err)
	}
	if rep.Trace != b.Trace {
		t.Fatalf("replayed trace diverged from recorded trace:\nrecorded:\n%s\nreplayed:\n%s", b.Trace, rep.Trace)
	}
}

// normalize converts b to script mode and asserts the canonical form
// still fails identically.
func normalize(t *testing.T, b *artifact.Bundle) *artifact.Bundle {
	t.Helper()
	nb, err := artifact.Normalize(b)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if nb.Sched.Random {
		t.Fatal("normalized bundle still in random mode")
	}
	if nb.Err != b.Err {
		t.Fatalf("normalization changed the outcome: %q -> %q", b.Err, nb.Err)
	}
	return nb
}

// TestRoundTripUnicons: an agreement violation below Theorem 1's Q ≥ 8
// premise survives Save/Load/Replay in both random and script mode.
func TestRoundTripUnicons(t *testing.T) {
	meta := artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 1, MaxSteps: 1 << 16}
	b := findRandomFailure(t, meta, artifact.Sched{}, 2000)
	if !strings.Contains(b.Err, "agreement violated") && !strings.Contains(b.Err, "decided ⊥") {
		t.Fatalf("unexpected violation kind: %s", b.Err)
	}
	roundTrip(t, b)
	roundTrip(t, normalize(t, b))
}

// TestRoundTripHybridCAS: a multiple-winner C&S violation below the
// object's quantum bound survives the round trip.
func TestRoundTripHybridCAS(t *testing.T) {
	meta := artifact.Meta{Workload: "hybridcas", N: 3, V: 1, Quantum: 1, MaxSteps: 1 << 16}
	b := findRandomFailure(t, meta, artifact.Sched{}, 2000)
	if !strings.Contains(b.Err, "winners") {
		t.Fatalf("unexpected violation kind: %s", b.Err)
	}
	roundTrip(t, b)
	roundTrip(t, normalize(t, b))
}

// TestRoundTripUniversalCrash: a planned crash-stop fault that lands
// after an increment linearizes but before its invocation completes
// yields the lost-accounting counterexample; the crash plan is part of
// the bundle and the violation survives the round trip.
func TestRoundTripUniversalCrash(t *testing.T) {
	base := artifact.Meta{Workload: "universal", N: 2, V: 1, Quantum: unicons.MinQuantum, MaxSteps: 1 << 16}
	for proc := 0; proc < 2; proc++ {
		for step := int64(1); step <= 300; step++ {
			meta := base
			meta.Crashes = []sched.CrashPoint{{Proc: proc, Step: step}}
			b, rep, err := artifact.Capture(meta, artifact.Sched{})
			if err != nil {
				t.Fatalf("Capture: %v", err)
			}
			if rep.Failed() && strings.Contains(b.Err, "counter reads") {
				t.Logf("crash of proc %d at step %d: %s", proc, step, b.Err)
				roundTrip(t, b)
				return
			}
		}
	}
	t.Fatal("no crash point turned the universal counter inconsistent; the lost-accounting window vanished")
}

// TestRoundTripLockCounter: the blocking negative control's wait-freedom
// violation (priority inversion) survives the round trip after
// normalization to script mode.
func TestRoundTripLockCounter(t *testing.T) {
	meta := artifact.Meta{Workload: "lockcounter", N: 2, V: 2, Quantum: 4,
		MaxSteps: 2000, WaitFreeBound: 50}
	b := findRandomFailure(t, meta, artifact.Sched{}, 200)
	if !strings.Contains(b.Err, "wait-freedom violated") {
		t.Fatalf("unexpected violation kind: %s", b.Err)
	}
	nb := normalize(t, b)
	roundTrip(t, nb)
}

// TestRoundTripSoakMixCrash: a crash-injected randomized soak workload
// (the cmd/soak configuration) normalizes to script mode — seeded
// random schedule and probabilistic crashes become an explicit decision
// vector and crash plan — and replays identically.
func TestRoundTripSoakMixCrash(t *testing.T) {
	for idx := int64(0); idx < 40; idx++ {
		meta, s := artifact.SoakMeta(11, 13, idx, 2)
		b, rep, err := artifact.Capture(meta, s)
		if err != nil {
			t.Fatalf("Capture(idx=%d): %v", idx, err)
		}
		_ = rep
		nb, err := artifact.Normalize(b)
		if err != nil {
			t.Fatalf("Normalize(idx=%d): %v", idx, err)
		}
		if nb.Err != b.Err {
			t.Fatalf("idx=%d: normalization changed outcome %q -> %q", idx, b.Err, nb.Err)
		}
	}
}

// TestReplayDeterminism: every registered workload must be a
// deterministic function of (meta, schedule) — two captures of the same
// bundle must agree byte-for-byte on error text and trace.
func TestReplayDeterminism(t *testing.T) {
	metas := []artifact.Meta{
		{Workload: "unicons", N: 4, V: 2, Quantum: unicons.MinQuantum},
		{Workload: "multicons", P: 2, M: 2, V: 2, K: 1, Quantum: 64, MaxSteps: 1 << 20},
		{Workload: "hybridcas", N: 3, V: 2, Quantum: unicons.MinQuantum},
		{Workload: "universal", N: 3, V: 2, Quantum: unicons.MinQuantum},
		{Workload: "lockcounter", N: 2, V: 2, Quantum: 4, MaxSteps: 2000, WaitFreeBound: 50},
		{Workload: "soakmix", N: 3, V: 2, Quantum: qlocal.RecommendedQuantum, WorkSeed: 42},
	}
	for _, meta := range metas {
		meta := meta
		t.Run(meta.Workload, func(t *testing.T) {
			s := artifact.Sched{Random: true, Seed: 5}
			a1, r1, err := artifact.Capture(meta, s)
			if err != nil {
				t.Fatal(err)
			}
			a2, r2, err := artifact.Capture(meta, s)
			if err != nil {
				t.Fatal(err)
			}
			if a1.Err != a2.Err {
				t.Fatalf("outcome nondeterministic: %q vs %q", a1.Err, a2.Err)
			}
			if a1.Trace != a2.Trace {
				t.Fatal("trace nondeterministic")
			}
			if r1.Steps != r2.Steps {
				t.Fatalf("step count nondeterministic: %d vs %d", r1.Steps, r2.Steps)
			}
		})
	}
}

// TestLoadRejects: future versions and nameless bundles are unusable.
func TestLoadRejects(t *testing.T) {
	dir := t.TempDir()

	future := &artifact.Bundle{Version: artifact.Version + 1, Meta: artifact.Meta{Workload: "unicons"}}
	p1 := filepath.Join(dir, "future.json")
	if err := future.Save(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := artifact.Load(p1); err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Fatalf("future version accepted: %v", err)
	}

	nameless := &artifact.Bundle{Version: artifact.Version}
	p2 := filepath.Join(dir, "nameless.json")
	if err := nameless.Save(p2); err != nil {
		t.Fatal(err)
	}
	if _, err := artifact.Load(p2); err == nil || !strings.Contains(err.Error(), "names no workload") {
		t.Fatalf("nameless bundle accepted: %v", err)
	}

	bogus := &artifact.Bundle{Version: artifact.Version, Meta: artifact.Meta{Workload: "nope"}}
	if _, err := artifact.Replay(bogus, artifact.ReplayOptions{}); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("unknown workload accepted: %v", err)
	}
}

// TestSaveDirNames: SaveDir derives a stable content-addressed name.
func TestSaveDirNames(t *testing.T) {
	b := &artifact.Bundle{Version: artifact.Version,
		Meta:  artifact.Meta{Workload: "unicons", N: 2, Quantum: 1},
		Sched: artifact.Sched{Decisions: []int{1, 0, 1}},
		Err:   "agreement violated: [1 2]"}
	dir := t.TempDir()
	p1, err := b.SaveDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.SaveDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("content-derived name unstable: %s vs %s", p1, p2)
	}
	if !strings.HasPrefix(filepath.Base(p1), "unicons-") {
		t.Fatalf("name %s does not lead with the workload", p1)
	}
	if _, err := artifact.Load(p1); err != nil {
		t.Fatalf("Load(SaveDir output): %v", err)
	}
}

// TestWorkloadRegistry: the registry is stable and sorted.
func TestWorkloadRegistry(t *testing.T) {
	want := []string{"hybridcas", "lockcounter", "multicons", "soakmix", "unicons", "universal"}
	got := artifact.Workloads()
	if len(got) != len(want) {
		t.Fatalf("Workloads() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Workloads() = %v, want %v", got, want)
		}
	}
}

// TestReplayStop: ReplayOptions.Stop is the per-replay watchdog — an
// expired deadline cuts the run off (Report.Stopped, RunErr =
// ErrPickAbort) instead of letting it run, and a never-firing Stop is
// transparent.
func TestReplayStop(t *testing.T) {
	meta := artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: unicons.MinQuantum, MaxSteps: 1 << 16}
	b, clean, err := artifact.Capture(meta, artifact.Sched{Random: true, Seed: 5})
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}

	rep, err := artifact.Replay(b, artifact.ReplayOptions{
		Stop:           func() bool { return true },
		StopCheckEvery: 1,
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !rep.Stopped {
		t.Fatal("Report.Stopped not set under an always-firing Stop")
	}
	if rep.Steps >= clean.Steps {
		t.Fatalf("stopped replay ran %d steps, full run %d", rep.Steps, clean.Steps)
	}

	rep, err = artifact.Replay(b, artifact.ReplayOptions{
		Stop:           func() bool { return false },
		StopCheckEvery: 1,
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Stopped {
		t.Fatal("Report.Stopped set though Stop never fired")
	}
	if rep.Steps != clean.Steps {
		t.Fatalf("inert Stop changed the run: %d vs %d steps", rep.Steps, clean.Steps)
	}
}
