package artifact

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/baseline"
	"repro/internal/hybridcas"
	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/qlocal"
	"repro/internal/sim"
	"repro/internal/unicons"
	"repro/internal/universal"
)

// BuildFunc constructs a workload's system wired to the given chooser
// and (possibly nil) external observer, and returns the post-run
// verifier. Builders that install their own observer (e.g. an axiom
// auditor) must tee it with obs. Builders must be deterministic
// functions of (meta, decision sequence): replaying the same decisions
// must reproduce the identical run.
type BuildFunc func(meta Meta, ch sim.Chooser, obs sim.Observer) (*sim.System, func(error) error)

// workloads is the replayable-workload registry. Every entry must build
// the system solely from Meta, so a saved bundle reconstructs the exact
// system that failed.
var workloads = map[string]BuildFunc{
	"unicons":     buildUnicons,
	"multicons":   buildMulticons,
	"hybridcas":   buildHybridCAS,
	"universal":   buildUniversal,
	"lockcounter": buildLockCounter,
	"soakmix":     buildSoakMix,
}

// Known reports whether a workload name is registered.
func Known(workload string) bool {
	_, ok := workloads[workload]
	return ok
}

// Workloads returns the registered workload names, sorted.
func Workloads() []string {
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Build constructs meta's workload, or reports an unknown workload name.
func Build(meta Meta, ch sim.Chooser, obs sim.Observer) (*sim.System, func(error) error, error) {
	build, err := builderFor(meta)
	if err != nil {
		return nil, nil, err
	}
	sys, verify := build(meta, ch, obs)
	return sys, verify, nil
}

func builderFor(meta Meta) (BuildFunc, error) {
	build, ok := workloads[meta.Workload]
	if !ok {
		return nil, fmt.Errorf("artifact: unknown workload %q (have %v)", meta.Workload, Workloads())
	}
	return build, nil
}

func defInt(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func defInt64(v, def int64) int64 {
	if v <= 0 {
		return def
	}
	return v
}

// verifyAgreement is the consensus verifier shared by the unicons and
// multicons workloads: every process decided, and all decisions agree.
func verifyAgreement(outs []mem.Word) func(error) error {
	return func(runErr error) error {
		if runErr != nil {
			return fmt.Errorf("run failed: %w", runErr)
		}
		for i, o := range outs {
			if o == mem.Bottom {
				return fmt.Errorf("process %d decided ⊥", i)
			}
			if o != outs[0] {
				return fmt.Errorf("agreement violated: %v", outs)
			}
		}
		return nil
	}
}

// buildUnicons is the Fig. 3 uniprocessor consensus workload: Meta.N
// deciders across Meta.V priority levels at Meta.Quantum.
func buildUnicons(m Meta, ch sim.Chooser, obs sim.Observer) (*sim.System, func(error) error) {
	n, v := defInt(m.N, 2), defInt(m.V, 1)
	sys := sim.New(sim.Config{Processors: 1, Quantum: m.Quantum, Chooser: ch,
		MaxSteps: defInt64(m.MaxSteps, 1<<18), Observer: obs})
	obj := unicons.New("cons")
	outs := make([]mem.Word, n)
	for i := 0; i < n; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%v}).
			AddInvocation(func(c *sim.Ctx) { outs[i] = obj.Decide(c, mem.Word(i+1)) })
	}
	sys.OnReset(func() {
		obj.Reset()
		clear(outs)
	})
	return sys, verifyAgreement(outs)
}

// buildMulticons is the Fig. 7 multiprocessor consensus workload:
// Meta.P processors times Meta.M processes over Meta.V levels, with
// consensus number C = P + Meta.K.
func buildMulticons(m Meta, ch sim.Chooser, obs sim.Observer) (*sim.System, func(error) error) {
	p, mm, v := defInt(m.P, 2), defInt(m.M, 1), defInt(m.V, 1)
	sys := sim.New(sim.Config{Processors: p, Quantum: m.Quantum, Chooser: ch,
		MaxSteps: defInt64(m.MaxSteps, 1<<23), Observer: obs})
	cfg := multicons.Config{Name: "f7", P: p, K: m.K, M: mm, V: v}
	alg := multicons.New(cfg)
	outs := make([]mem.Word, p*mm)
	id := 0
	for i := 0; i < p; i++ {
		for j := 0; j < mm; j++ {
			me := id
			sys.AddProcess(sim.ProcSpec{Processor: i, Priority: 1 + j%v}).
				AddInvocation(func(c *sim.Ctx) { outs[me] = alg.Decide(c, mem.Word(me+1)) })
			id++
		}
	}
	// Rebuild-in-hook: the Fig. 7 instance holds per-run decision state
	// throughout its register tree, so a pooled rerun swaps in a fresh
	// instance under the same name (identical ids, footprints, and
	// fingerprints — the invocation closures capture the variable).
	sys.OnReset(func() {
		alg = multicons.New(cfg)
		clear(outs)
	})
	return sys, verifyAgreement(outs)
}

// buildHybridCAS is the Fig. 5 C&S workload: Meta.N processes across
// Meta.V levels race one CompareAndSwap(0, id+1) each. Exactly one must
// win; below the object's quantum bound the underlying consensus cells
// break and double (or zero) wins appear.
func buildHybridCAS(m Meta, ch sim.Chooser, obs sim.Observer) (*sim.System, func(error) error) {
	n, v := defInt(m.N, 2), defInt(m.V, 1)
	sys := sim.New(sim.Config{Processors: 1, Quantum: m.Quantum, Chooser: ch,
		MaxSteps: defInt64(m.MaxSteps, 1<<18), Observer: obs})
	obj := hybridcas.New("cas", v, 0)
	wins := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%v}).
			AddInvocation(func(c *sim.Ctx) { wins[i] = obj.CompareAndSwap(c, 0, mem.Word(i+1)) })
	}
	sys.OnReset(func() {
		obj = hybridcas.New("cas", v, 0)
		clear(wins)
	})
	verify := func(runErr error) error {
		if runErr != nil {
			return fmt.Errorf("run failed: %w", runErr)
		}
		won := 0
		for _, w := range wins {
			if w {
				won++
			}
		}
		if won != 1 {
			return fmt.Errorf("CAS(0,·) had %d winners, want exactly 1: %v", won, wins)
		}
		return nil
	}
	return sys, verify
}

// buildUniversal is the universal-counter workload: Meta.N processes
// across Meta.V levels each increment a wait-free counter once. The
// verifier demands the final value equal the number of increments whose
// invocations ran to completion — deliberately crash-unaware, so a
// planned crash that lands after an increment linearizes but before its
// invocation finishes yields the classic lost-accounting counterexample.
func buildUniversal(m Meta, ch sim.Chooser, obs sim.Observer) (*sim.System, func(error) error) {
	n, v := defInt(m.N, 2), defInt(m.V, 1)
	sys := sim.New(sim.Config{Processors: 1, Quantum: m.Quantum, Chooser: ch,
		MaxSteps: defInt64(m.MaxSteps, 1<<20), Observer: obs})
	ctr := universal.NewCounter("ctr", 0)
	completed := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%v}).
			AddInvocation(func(c *sim.Ctx) {
				ctr.Inc(c)
				completed[i] = true
			})
	}
	sys.OnReset(func() {
		ctr = universal.NewCounter("ctr", 0)
		clear(completed)
	})
	verify := func(runErr error) error {
		if runErr != nil {
			return fmt.Errorf("run failed: %w", runErr)
		}
		done := 0
		for _, ok := range completed {
			if ok {
				done++
			}
		}
		if got := ctr.Peek(); got != mem.Word(done) {
			return fmt.Errorf("counter reads %d after %d completed increments", got, done)
		}
		return nil
	}
	return sys, verify
}

// buildLockCounter is the blocking negative control: Meta.N processes
// across Meta.V ≥ 2 levels each increment a spinlock-guarded counter.
// Under priority inversion a preempted lock holder never runs again
// below a spinning higher-priority waiter; with Meta.WaitFreeBound set,
// the replay fails with a wait-freedom violation (the verifier itself
// only checks the counter when the run completes).
func buildLockCounter(m Meta, ch sim.Chooser, obs sim.Observer) (*sim.System, func(error) error) {
	n, v := defInt(m.N, 2), defInt(m.V, 2)
	sys := sim.New(sim.Config{Processors: 1, Quantum: m.Quantum, Chooser: ch,
		MaxSteps: defInt64(m.MaxSteps, 1<<12), Observer: obs})
	ctr := baseline.NewLockCounter("lc", 0)
	completed := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%v}).
			AddInvocation(func(c *sim.Ctx) {
				ctr.Inc(c)
				completed[i] = true
			})
	}
	sys.OnReset(func() {
		ctr = baseline.NewLockCounter("lc", 0)
		clear(completed)
	})
	verify := func(runErr error) error {
		if runErr != nil {
			return fmt.Errorf("run failed: %w", runErr)
		}
		done := 0
		for _, ok := range completed {
			if ok {
				done++
			}
		}
		if got := ctr.Peek(); got != mem.Word(done) {
			return fmt.Errorf("lock counter reads %d after %d increments", got, done)
		}
		return nil
	}
	return sys, verify
}

// soakOpsSalt decorrelates the ops-plan PRNG from the parameter PRNG so
// the workload shape (N, V, Q) can be stored explicitly in Meta — and
// edited by the shrinker — without re-deriving the operation mix.
const soakOpsSalt = 0x736f616b6d6978 // "soakmix"

// soakGolden is the Weyl increment soak runs use to derive per-run seeds
// from a base seed.
const soakGolden = 0x9e3779b97f4a7c15

// SoakMeta derives run idx of a soak sweep: the randomized mixed
// workload (its N, V, Q resolved into the Meta) plus the seeded-random
// schedule and crash plan cmd/soak executes. maxCrashes is capped at
// N-1 so wait-freedom keeps a survivor to talk about.
func SoakMeta(base, crashBase, idx int64, maxCrashes int) (Meta, Sched) {
	workSeed := int64(uint64(base) + uint64(idx)*soakGolden)
	rng := rand.New(rand.NewSource(workSeed))
	n := 2 + rng.Intn(6)
	levels := 1 + rng.Intn(3)
	quantum := qlocal.RecommendedQuantum + rng.Intn(32)
	schedSeed := rng.Int63()

	meta := Meta{
		Workload: "soakmix",
		N:        n,
		V:        levels,
		Quantum:  quantum,
		MaxSteps: 1 << 22,
		WorkSeed: workSeed,
	}
	s := Sched{Random: true, Seed: schedSeed}
	if k := min(maxCrashes, n-1); k > 0 {
		s.CrashSeed = int64(uint64(crashBase) + uint64(idx)*soakGolden)
		s.MaxCrashes = k
	}
	return meta, s
}

// SeededMeta derives run idx of a fixed-workload soak sweep: unlike
// SoakMeta, the workload identity (name, N, V, Quantum, wait-freedom
// bound) is pinned by the caller and only the schedule — a seeded
// random chooser plus an optional seeded crash plan — varies with the
// run index. This is how a campaign soaks a single registered family
// (e.g. the lockcounter negative control under a wait-freedom bound)
// instead of the randomized soakmix: every run is still a pure
// function of (spec, idx), so the campaign resumes and replays
// exactly. maxCrashes is capped at N-1, matching SoakMeta.
func SeededMeta(workload string, n, v, quantum int, wfBound int64, base, crashBase, idx int64, maxCrashes int) (Meta, Sched) {
	schedSeed := int64(uint64(base) + uint64(idx)*soakGolden)
	meta := Meta{
		Workload:      workload,
		N:             n,
		V:             v,
		Quantum:       quantum,
		WaitFreeBound: wfBound,
	}
	s := Sched{Random: true, Seed: schedSeed}
	procs := defInt(n, 2)
	if k := min(maxCrashes, procs-1); k > 0 {
		s.CrashSeed = int64(uint64(crashBase) + uint64(idx)*soakGolden)
		s.MaxCrashes = k
	}
	return meta, s
}

// buildSoakMix is the cmd/soak mixed workload: each of Meta.N processes
// first runs Fig. 3 consensus, then a WorkSeed-derived mix of reclaiming
// C&S increments, universal counter increments, and queue operations.
// The verifier applies the crash-tolerant soak invariants: survivors
// agree on consensus, crashed processes that decided agree too, the
// queue imbalance is bounded by the crash count, and an independent
// auditor re-verifies Axioms 1-2 from the event stream.
func buildSoakMix(m Meta, ch sim.Chooser, obs sim.Observer) (*sim.System, func(error) error) {
	n, v := defInt(m.N, 2), defInt(m.V, 1)
	opsRng := rand.New(rand.NewSource(m.WorkSeed ^ soakOpsSalt))

	aud := sim.NewAuditor(m.Quantum)
	var observer sim.Observer = aud
	if obs != nil {
		observer = &sim.Tee{Observers: []sim.Observer{aud, obs}}
	}
	sys := sim.New(sim.Config{Processors: 1, Quantum: m.Quantum, Chooser: ch,
		MaxSteps: defInt64(m.MaxSteps, 1<<22), Observer: observer})

	cons := unicons.New("cons")
	cas := hybridcas.NewReclaiming("cas", v, 0, 2)
	ctr := universal.NewCounter("ctr", 0)
	q := universal.NewQueue("q")

	// consOuts uses 0 as the "never finished" sentinel (proposals are
	// 1..n); ops are counted only when their invocation ran to the end,
	// so a crashed process's in-flight op is uncounted even if applied.
	consOuts := make([]mem.Word, n)
	procs := make([]*sim.Process, n)
	enqs, deqs := 0, 0

	for i := 0; i < n; i++ {
		i := i
		procs[i] = sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%v})
		p := procs[i]
		p.AddInvocation(func(c *sim.Ctx) {
			consOuts[i] = cons.Decide(c, mem.Word(i+1))
		})
		ops := 1 + opsRng.Intn(3)
		for op := 0; op < ops; op++ {
			switch opsRng.Intn(4) {
			case 0:
				p.AddInvocation(func(c *sim.Ctx) {
					for {
						v := cas.Read(c)
						if cas.CompareAndSwap(c, v, v+1) {
							return
						}
					}
				})
			case 1:
				p.AddInvocation(func(c *sim.Ctx) {
					ctr.Inc(c)
				})
			case 2:
				p.AddInvocation(func(c *sim.Ctx) {
					q.Enq(c, mem.Word(i))
					enqs++
				})
			default:
				p.AddInvocation(func(c *sim.Ctx) {
					if q.Deq(c) != universal.QueueEmpty {
						deqs++
					}
				})
			}
		}
	}

	sys.OnReset(func() {
		cons.Reset()
		cas = hybridcas.NewReclaiming("cas", v, 0, 2)
		ctr = universal.NewCounter("ctr", 0)
		q = universal.NewQueue("q")
		clear(consOuts)
		enqs, deqs = 0, 0
		aud.Reset()
	})
	verify := func(runErr error) error {
		if runErr != nil {
			return fmt.Errorf("run failed: %w", runErr)
		}
		crashed := 0
		decided := mem.Word(0)
		for i, p := range procs {
			if p.Crashed() {
				crashed++
				continue
			}
			if consOuts[i] == 0 || consOuts[i] == mem.Bottom {
				return fmt.Errorf("survivor %d never decided: %v", i, consOuts)
			}
			if decided == 0 {
				decided = consOuts[i]
			} else if consOuts[i] != decided {
				return fmt.Errorf("consensus disagreement at %d: %v", i, consOuts)
			}
		}
		for i, p := range procs {
			if p.Crashed() && consOuts[i] != 0 && consOuts[i] != decided {
				return fmt.Errorf("crashed process %d recorded %d != decided %d", i, consOuts[i], decided)
			}
		}
		// Each crashed process has at most one in-flight queue op that
		// may have been applied without being counted, so the imbalance
		// is bounded by the crash count (exactly 0 without crashes).
		if d := deqs + q.PeekLen() - enqs; d < -crashed || d > crashed {
			return fmt.Errorf("queue imbalance %d exceeds %d crashes: %d deq + %d left vs %d enq",
				d, crashed, deqs, q.PeekLen(), enqs)
		}
		return aud.Err()
	}
	return sys, verify
}
