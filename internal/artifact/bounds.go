package artifact

import (
	"repro/internal/multicons"
)

// Declared wait-freedom bounds: the registry's per-workload statement
// budgets, the values a checker arms check.Options.WaitFreeBound with
// and the anchor the static bounds report is reconciled against
// (reprolint's waitfreebound analyzer re-derives per-operation
// worst-case statement counts from source; TestDeclaredBoundsReconcile
// proves derived ≤ declared under each workload's parameters).

// DeclaredBound returns the declared worst-case atomic-statement count
// for a single operation of meta's workload, in the paper's unit (one
// shared access = one statement). Zero means the workload declares no
// wait-freedom bound: lockcounter is the blocking negative control
// (its spin loop is the §1 priority-inversion scenario), and soakmix
// mixes in a lock-free C&S retry that is only practically wait-free.
func DeclaredBound(m Meta) int64 {
	n, v := defInt(m.N, 2), defInt(m.V, 1)
	switch m.Workload {
	case "unicons":
		// Theorem 1: Fig. 3 decides in exactly 8 statements.
		return 8
	case "hybridcas", "universal":
		// Coarse linear budgets: the Fig. 5 scan and the universal
		// construction's helping loops are linear in processes and
		// levels; 500 absorbs the per-round qlocal constants.
		return int64(500 * (v + n))
	case "multicons":
		p, mm := defInt(m.P, 2), defInt(m.M, 1)
		cfg := multicons.Config{P: p, K: m.K, M: mm, V: v}
		return int64(200 * (cfg.Levels() + p*mm))
	}
	return 0
}

// BoundEnv returns the model-parameter valuation for meta, the
// environment the statically derived bound expressions evaluate under
// when reconciling against DeclaredBound. Symbols follow the
// //repro:bound vocabulary; the per-class count m is the largest
// number of processes sharing one (processor, priority) class, which
// the single-processor workloads bound by N and multicons pins to
// Meta.M.
func BoundEnv(m Meta) map[string]int64 {
	n, v := defInt(m.N, 2), defInt(m.V, 1)
	env := map[string]int64{
		"n":         int64(n),
		"p":         1,
		"v":         int64(v),
		"k":         int64(m.K),
		"m":         int64(n),
		"l":         int64(v),
		"levels":    int64(v),
		"pri":       int64(v),
		"q":         int64(m.Quantum),
		"size":      32,
		"threshold": 2,
		"opsper":    1,
	}
	if m.Workload == "multicons" {
		p, mm := defInt(m.P, 2), defInt(m.M, 1)
		cfg := multicons.Config{P: p, K: m.K, M: mm, V: v}
		env["p"] = int64(p)
		env["m"] = int64(mm)
		env["n"] = int64(p * mm)
		env["l"] = int64(cfg.Levels())
	}
	return env
}
