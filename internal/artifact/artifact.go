// Package artifact implements counterexample repro bundles: versioned,
// JSON-serializable records of everything needed to deterministically
// replay a violating run — workload identity and configuration, the
// schedule (an explicit decision vector, or a seeded random strategy),
// crash plan, wait-freedom bound, the verifier's error text, and a
// rendered timeline. Bundles are the currency of the forensics pipeline:
// the exploration engine (internal/check) attaches them to violations,
// cmd/soak and cmd/checker write them to an artifact directory on
// failure, the shrinker (internal/minimize) reduces them to minimal
// kernels, and cmd/shrink drives the whole loop from the command line.
//
// A bundle references its system under test by workload name (see
// workloads.go) rather than by closure, which is what makes it
// serializable: Replay looks the builder up in the workload registry and
// reconstructs the identical system from the bundle's Meta. The replay
// contract therefore is: for a fixed Meta, the workload builder must be
// a deterministic function of the decision sequence.
//
// Bundles come in two schedule modes. Script mode (Sched.Random false)
// replays an explicit decision vector and an explicit crash plan — the
// canonical, shrinkable form. Random mode (Sched.Random true) re-derives
// the schedule and crash pattern from seeds, matching how fuzzers and
// cmd/soak found the failure; Normalize converts it to script mode by
// replaying once with recording wrappers.
package artifact

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime/debug"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Version is the current bundle format version. Load rejects bundles
// with a newer version; older versions are upgraded where possible.
// Version history:
//
//	1: script and seeded-random schedule modes.
//	2: adds Sched.Model — registered scheduler-model specs
//	   (sched.ModelSpec) as a first-class schedule mode. Version-1
//	   bundles load and replay unchanged.
const Version = 2

// Meta identifies the workload a bundle replays and its full
// configuration. Field applicability varies by workload; unused fields
// are zero and omitted from the JSON encoding.
type Meta struct {
	// Workload names the registered workload (see Workloads).
	Workload string `json:"workload"`
	// N is the process count (uniprocessor workloads).
	N int `json:"n,omitempty"`
	// P is the processor count (multicons).
	P int `json:"p,omitempty"`
	// M is the per-processor process count (multicons).
	M int `json:"m,omitempty"`
	// V is the number of priority levels.
	V int `json:"v,omitempty"`
	// K selects the consensus number C = P+K (multicons).
	K int `json:"k,omitempty"`
	// Quantum is the scheduling quantum Q in statements.
	Quantum int `json:"quantum"`
	// MaxSteps bounds the replayed run (0 = the workload's default).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// WaitFreeBound, if > 0, fails the replay when a live process
	// executes more than this many of its own statements within one
	// invocation (the check.Options.WaitFreeBound property).
	WaitFreeBound int64 `json:"waitfree_bound,omitempty"`
	// Crashes is the planned crash-stop fault schedule, applied by
	// wrapping the chooser in sched.Crash.
	Crashes []sched.CrashPoint `json:"crashes,omitempty"`
	// WorkSeed derives randomized workload content (soakmix).
	WorkSeed int64 `json:"work_seed,omitempty"`
}

// Sched describes how the replay resolves scheduling nondeterminism.
// Mode precedence: a non-nil Model selects model mode (version 2);
// otherwise Random selects seeded-random mode; otherwise the bundle is
// in script mode.
type Sched struct {
	// Model, if non-nil, replays through a registered scheduler model
	// (sched.NewFromSpec). A nonzero Seed overrides the spec's own
	// seed, so campaign runs can share one spec and store only their
	// derived per-run seed. Random-mode crash injection
	// (CrashSeed/MaxCrashes/CrashProb) composes with model mode
	// unchanged.
	Model *sched.ModelSpec `json:"model,omitempty"`
	// Random selects seeded-random mode; otherwise the bundle is in
	// script mode and Decisions is replayed through sched.Script.
	Random bool `json:"random,omitempty"`
	// Decisions is the script-mode decision vector (candidate index at
	// each decision point; past the end the replay picks candidate 0).
	Decisions []int `json:"decisions,omitempty"`
	// Seed seeds the random-mode chooser (and overrides the model's
	// seed in model mode).
	Seed int64 `json:"seed,omitempty"`
	// CrashSeed/MaxCrashes/CrashProb configure random-mode crash
	// injection (sched.RandomCrash); MaxCrashes 0 disables it.
	CrashSeed  int64   `json:"crash_seed,omitempty"`
	MaxCrashes int     `json:"max_crashes,omitempty"`
	CrashProb  float64 `json:"crash_prob,omitempty"`
}

// Bundle is one serializable counterexample.
type Bundle struct {
	// Version is the bundle format version (see Version).
	Version int `json:"version"`
	// Meta identifies and configures the workload.
	Meta Meta `json:"meta"`
	// Sched resolves the schedule.
	Sched Sched `json:"sched"`
	// Err is the verifier error text of the recorded run ("" = the run
	// passed — not a counterexample).
	Err string `json:"err,omitempty"`
	// Trace is the rendered ASCII timeline of the recorded run.
	Trace string `json:"trace,omitempty"`
}

// ReplayOptions controls one Replay.
type ReplayOptions struct {
	// Trace renders the run's timeline into Report.Trace.
	Trace bool
	// TraceLimit bounds the trace recorder (0 = trace.NewRecorder's
	// default).
	TraceLimit int
	// Record captures the taken decision vector and fired crash points
	// into the Report (the raw material for Normalize).
	Record bool
	// Stop, if non-nil, is polled during the run (every StopCheckEvery
	// decisions, via sched.Watchdog); once it reports true the run is
	// cut off, Report.Stopped is set, and Report.RunErr is
	// sim.ErrPickAbort. This is the per-replay watchdog hook: callers
	// supply a deadline check and a stuck schedule becomes a recorded
	// timeout instead of a hang. A stopped run's Report.Err reflects
	// only what the truncated run established (the verifier still runs).
	Stop func() bool
	// StopCheckEvery is the decision interval between Stop polls
	// (0 = sched.Watchdog's default).
	StopCheckEvery int
}

// Report is the outcome of one Replay.
type Report struct {
	// Err is the property outcome: the verifier error joined with the
	// wait-freedom check, nil for a clean run. A panic anywhere in the
	// build, run, or verifier is reported here, not as a crash.
	Err error
	// RunErr is the raw error from System.Run (nil, ErrStepLimit, ...).
	RunErr error
	// Steps is the number of statements the run executed.
	Steps int64
	// Crashed is the number of processes halted by crash-stop faults.
	Crashed int
	// Stopped reports that ReplayOptions.Stop cut the run off before it
	// completed (the watchdog fired).
	Stopped bool
	// Fanouts is the fan-out (candidate count) at each decision point.
	Fanouts []int
	// Decisions is the recorded taken decision vector (Record only).
	Decisions []int
	// Fired is the recorded fired crash plan (Record only).
	Fired []sched.CrashPoint
	// Trace is the rendered timeline (Trace only).
	Trace string
}

// Failed reports whether the replay found a property violation.
func (r *Report) Failed() bool { return r.Err != nil }

// Replay deterministically re-executes the bundle's run and re-verifies
// its property from scratch. It never trusts the bundle's recorded Err:
// the returned Report carries a freshly computed outcome. A non-nil
// error return means the bundle itself is unusable (unknown workload,
// bad version); property violations are reported via Report.Err.
func Replay(b *Bundle, opts ReplayOptions) (*Report, error) {
	if b.Version > Version {
		return nil, fmt.Errorf("artifact: bundle version %d newer than supported %d", b.Version, Version)
	}
	build, err := builderFor(b.Meta)
	if err != nil {
		return nil, err
	}

	var ch sim.Chooser
	var script *sched.Script
	if b.Sched.Model != nil {
		spec := b.Sched.Model
		if b.Sched.Seed != 0 {
			spec = spec.Clone()
			spec.Seed = b.Sched.Seed
		}
		mch, err := sched.NewFromSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("artifact: scheduler model: %w", err)
		}
		ch = mch
		if b.Sched.MaxCrashes > 0 {
			ch = sched.NewRandomCrash(ch, b.Sched.CrashSeed, b.Sched.MaxCrashes, b.Sched.CrashProb)
		}
	} else if b.Sched.Random {
		ch = sched.NewRandom(b.Sched.Seed)
		if b.Sched.MaxCrashes > 0 {
			ch = sched.NewRandomCrash(ch, b.Sched.CrashSeed, b.Sched.MaxCrashes, b.Sched.CrashProb)
		}
	} else {
		script = &sched.Script{Decisions: b.Sched.Decisions}
		ch = script
	}
	if len(b.Meta.Crashes) > 0 {
		ch = sched.NewCrash(ch, b.Meta.Crashes...)
	}
	var rec *sched.Record
	if opts.Record {
		rec = sched.NewRecord(ch)
		ch = rec
	}
	var wd *sched.Watchdog
	if opts.Stop != nil {
		wd = &sched.Watchdog{Inner: ch, Stop: opts.Stop, CheckEvery: opts.StopCheckEvery}
		ch = wd
	}
	var tr *trace.Recorder
	var obs sim.Observer
	if opts.Trace {
		tr = trace.NewRecorder(opts.TraceLimit)
		obs = tr
	}

	rep := &Report{}
	rep.Err = protectedReplay(func() error {
		sys, verify := build(b.Meta, ch, obs)
		rep.RunErr = sys.Run()
		rep.Steps = sys.Steps()
		rep.Crashed = sys.CrashedCount()
		return outcome(sys, verify, rep.RunErr, b.Meta.WaitFreeBound)
	})
	if wd != nil {
		rep.Stopped = wd.Fired
	}
	switch {
	case rec != nil:
		rep.Fanouts = rec.Fanouts
		rep.Decisions = rec.Taken
		rep.Fired = rec.Fired
	case script != nil:
		rep.Fanouts = script.Fanouts
	}
	if tr != nil {
		rep.Trace = tr.Render(trace.RenderOptions{Ops: true})
	}
	return rep, nil
}

// protectedReplay converts a panic in the builder, run, or verifier into
// a property error, so one bad bundle cannot kill its caller.
func protectedReplay(f func() error) (verr error) {
	defer func() {
		if r := recover(); r != nil {
			verr = fmt.Errorf("artifact: replay panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return f()
}

// outcome mirrors the exploration engine's per-run verdict: step-limit
// aborts echoed verbatim by the verifier are not violations by
// themselves, while a distinct verifier error — or the wait-freedom
// bound firing on the aborted run — is.
func outcome(sys *sim.System, verify func(error) error, runErr error, bound int64) error {
	limited := errors.Is(runErr, sim.ErrStepLimit)
	verr := verify(runErr)
	if verr != nil && limited && errors.Is(verr, sim.ErrStepLimit) {
		verr = nil
	}
	return errors.Join(verr, waitFree(sys, bound))
}

// waitFree enforces Meta.WaitFreeBound over a completed run (the same
// property check.Options.WaitFreeBound applies during exploration).
func waitFree(sys *sim.System, bound int64) error {
	if bound <= 0 {
		return nil
	}
	for _, p := range sys.Processes() {
		if p.Crashed() {
			continue
		}
		if n := p.WorstInvStmts(); n > bound {
			return fmt.Errorf("artifact: wait-freedom violated: %s executed %d of its own statements in one invocation (bound %d)",
				p.Name(), n, bound)
		}
	}
	return nil
}

// Capture replays (meta, schedule) once with tracing and returns the
// filled-in bundle together with the replay report. The bundle's Err and
// Trace always come from this fresh execution. Note a bundle whose run
// passes (Report.Err nil) is not a counterexample; callers deciding
// whether to save should check the report.
func Capture(meta Meta, s Sched) (*Bundle, *Report, error) {
	b := &Bundle{Version: Version, Meta: meta, Sched: s}
	rep, err := Replay(b, ReplayOptions{Trace: true})
	if err != nil {
		return nil, nil, err
	}
	if rep.Err != nil {
		b.Err = rep.Err.Error()
	}
	b.Trace = rep.Trace
	return b, rep, nil
}

// Normalize converts a bundle to canonical script mode: the run is
// replayed once with recording wrappers, and the recorded decision
// vector and fired crash points become the bundle's explicit schedule
// (trailing zero decisions are trimmed — past the script's end the
// replay picks candidate 0, so the run is unchanged). The normalized
// bundle is then re-executed from scratch; if its outcome differs from
// the recording run's, the workload broke the determinism contract and
// Normalize reports it rather than returning a bundle that lies.
func Normalize(b *Bundle) (*Bundle, error) {
	rep, err := Replay(b, ReplayOptions{Record: true})
	if err != nil {
		return nil, err
	}
	meta := b.Meta
	meta.Crashes = rep.Fired
	nb, nrep, err := Capture(meta, Sched{Decisions: trimZeros(rep.Decisions)})
	if err != nil {
		return nil, err
	}
	if errText(nrep.Err) != errText(rep.Err) {
		return nil, fmt.Errorf("artifact: normalize diverged (workload not a deterministic function of the decision sequence?): recorded %q, replayed %q",
			errText(rep.Err), errText(nrep.Err))
	}
	return nb, nil
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// trimZeros drops trailing zero decisions, the canonical short form of a
// script-mode vector.
func trimZeros(dec []int) []int {
	n := len(dec)
	for n > 0 && dec[n-1] == 0 {
		n--
	}
	return dec[:n]
}

// Save writes the bundle as indented JSON to path.
func (b *Bundle) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("artifact: encode: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// SaveDir writes the bundle into dir (created if needed) under a
// content-derived name "<workload>-<hash>.json" and returns the path.
func (b *Bundle) SaveDir(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("artifact: %w", err)
	}
	data, err := json.Marshal(b)
	if err != nil {
		return "", fmt.Errorf("artifact: encode: %w", err)
	}
	h := fnv.New32a()
	h.Write(data)
	path := filepath.Join(dir, fmt.Sprintf("%s-%08x.json", b.Meta.Workload, h.Sum32()))
	return path, b.Save(path)
}

// Load reads a bundle from path, rejecting unknown future versions.
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	b := &Bundle{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("artifact: decode %s: %w", path, err)
	}
	if b.Version > Version {
		return nil, fmt.Errorf("artifact: %s: bundle version %d newer than supported %d", path, b.Version, Version)
	}
	if b.Meta.Workload == "" {
		return nil, fmt.Errorf("artifact: %s: bundle names no workload", path)
	}
	if b.Sched.Model != nil {
		if err := b.Sched.Model.Validate(); err != nil {
			return nil, fmt.Errorf("artifact: %s: %w", path, err)
		}
	}
	return b, nil
}
