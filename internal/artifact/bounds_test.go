package artifact_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/artifact"
)

// TestDeclaredBoundsReconcile closes the loop between the paper's
// theorems, the registry's declared wait-freedom budgets, and the
// source code: reprolint's waitfreebound analyzer re-derives each
// operation's worst-case statement count from the implementation, and
// this test proves derived ≤ declared under every registered
// workload's parameters — with unicons.Decide landing on Theorem 1's
// constant exactly, and the blocking negative control staying
// unbounded.
func TestDeclaredBoundsReconcile(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the algorithm packages from source; skipped in -short")
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.RunDriver(analysis.DriverOptions{
		Root:  root,
		Cache: false,
		Patterns: []string{
			"./internal/unicons", "./internal/multicons", "./internal/hybridcas",
			"./internal/universal", "./internal/qlocal", "./internal/renaming",
			"./internal/baseline", "./internal/core",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]*analysis.OpBound{}
	for i := range res.Bounds.Ops {
		op := &res.Bounds.Ops[i]
		ops[op.Func] = op
	}
	get := func(name string) *analysis.OpBound {
		t.Helper()
		op := ops[name]
		if op == nil {
			t.Fatalf("bounds report is missing %s", name)
		}
		return op
	}

	// Theorem 1: the Fig. 3 implementation decides in exactly 8
	// statements, and the registry declares exactly that.
	unicons := artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 8}
	decide := get("(*repro/internal/unicons.Object).Decide")
	if decide.Bound != "8" || len(decide.Incomplete) != 0 {
		t.Errorf("unicons.Decide derived %q (incomplete %v), want exactly 8", decide.Bound, decide.Incomplete)
	}
	if d := artifact.DeclaredBound(unicons); d != 8 {
		t.Errorf("DeclaredBound(unicons) = %d, want 8", d)
	}

	// Every bounded workload: the statically derived expression,
	// evaluated under the workload's parameters, must fit the declared
	// budget.
	cases := []struct {
		meta artifact.Meta
		ops  []string
	}{
		{artifact.Meta{Workload: "unicons", N: 2, V: 1},
			[]string{"(*repro/internal/unicons.Object).Decide"}},
		{artifact.Meta{Workload: "hybridcas", N: 4, V: 2},
			[]string{"(*repro/internal/hybridcas.Object).CompareAndSwap", "(*repro/internal/hybridcas.Object).Read"}},
		{artifact.Meta{Workload: "multicons", P: 2, M: 1, V: 1},
			[]string{"(*repro/internal/multicons.Algorithm).Decide"}},
		{artifact.Meta{Workload: "universal", N: 3, V: 1},
			[]string{"(*repro/internal/universal.Counter).Inc"}},
	}
	for _, c := range cases {
		declared := artifact.DeclaredBound(c.meta)
		if declared <= 0 {
			t.Errorf("%s: DeclaredBound = %d, want positive", c.meta.Workload, declared)
			continue
		}
		env := artifact.BoundEnv(c.meta)
		for _, name := range c.ops {
			op := get(name)
			got, ok := op.Expr.Eval(env)
			if !ok {
				t.Errorf("%s: %s = %q does not evaluate under %v", c.meta.Workload, name, op.Bound, env)
				continue
			}
			if got > declared {
				t.Errorf("%s: %s derives %d statements (from %q), above the declared %d",
					c.meta.Workload, name, got, op.Bound, declared)
			}
		}
	}

	// The blocking negative control and the fair-scheduling-only Fig. 9
	// are the ONLY unbounded operations — LockCounter.Inc must fail the
	// static discipline (its marker says so), and nothing else may.
	wantUnbounded := map[string]bool{
		"(*repro/internal/baseline.LockCounter).Inc": true,
		"(*repro/internal/multicons.Fair).Decide":    true,
	}
	for _, op := range res.Bounds.Ops {
		if op.Unbounded != wantUnbounded[op.Func] {
			t.Errorf("%s unbounded = %v, want %v", op.Func, op.Unbounded, wantUnbounded[op.Func])
		}
	}
	if d := artifact.DeclaredBound(artifact.Meta{Workload: "lockcounter", N: 2, V: 2}); d != 0 {
		t.Errorf("DeclaredBound(lockcounter) = %d, want 0 (blocking control declares no bound)", d)
	}
}
