package artifact_test

import (
	"flag"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/minimize"
)

// -update regenerates the committed testdata bundles from scratch
// (random-seed search + shrink) instead of only checking them:
//
//	go test ./internal/artifact -run TestCommitted -update
var update = flag.Bool("update", false, "regenerate committed testdata bundles")

const lockCounterPath = "testdata/lockcounter.json"

// TestCommittedLockCounterArtifact is the stability check over the
// repo's committed minimized counterexample: the bundle keeps failing
// with the recorded wait-freedom violation, and stays small enough to
// read off the timeline (the ISSUE's ≤ 12 decision acceptance bar).
// With -update the bundle is first regenerated deterministically.
func TestCommittedLockCounterArtifact(t *testing.T) {
	if *update {
		meta := artifact.Meta{Workload: "lockcounter", N: 2, V: 2, Quantum: 4,
			MaxSteps: 2000, WaitFreeBound: 50}
		b := findRandomFailure(t, meta, artifact.Sched{}, 200)
		min, stats, err := minimize.Shrink(b, minimize.Options{
			Match: func(err error) bool {
				return strings.Contains(err.Error(), "wait-freedom violated")
			},
		})
		if err != nil {
			t.Fatalf("Shrink: %v", err)
		}
		t.Logf("regenerated %s: %s", lockCounterPath, stats)
		if err := min.Save(lockCounterPath); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}

	b, err := artifact.Load(filepath.Join("testdata", "lockcounter.json"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if n := len(b.Sched.Decisions); n > 12 {
		t.Fatalf("committed artifact has %d decisions, want ≤ 12", n)
	}
	rep, err := artifact.Replay(b, artifact.ReplayOptions{Trace: true})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "wait-freedom violated") {
		t.Fatalf("committed artifact no longer violates wait-freedom: %v", rep.Err)
	}
	if rep.Err.Error() != b.Err {
		t.Fatalf("outcome drifted from recorded error:\n  recorded: %s\n  replayed: %s", b.Err, rep.Err)
	}
	if rep.Trace != b.Trace {
		t.Fatal("rendered timeline drifted from the committed trace")
	}
}
