package artifact_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/sched"
)

var modelMeta = artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 2, MaxSteps: 1 << 16}

// TestModelBundleRoundTrip pins the version-2 serialization: a bundle
// carrying a scheduler-model spec saves, loads back byte-identically,
// and replays deterministically.
func TestModelBundleRoundTrip(t *testing.T) {
	spec, err := sched.ParseModelSpec("markov:stay=0.8,seed=21")
	if err != nil {
		t.Fatal(err)
	}
	b, rep, err := artifact.Capture(modelMeta, artifact.Sched{Model: spec})
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != artifact.Version {
		t.Fatalf("captured bundle version %d, want %d", b.Version, artifact.Version)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := artifact.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(b)
	bb, _ := json.Marshal(got)
	if string(a) != string(bb) {
		t.Errorf("round trip changed the bundle\n saved:  %s\n loaded: %s", a, bb)
	}
	rep2, err := artifact.Replay(got, artifact.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if errText(rep.Err) != errText(rep2.Err) || rep.Steps != rep2.Steps {
		t.Errorf("replay diverged: (%q, %d) vs (%q, %d)", errText(rep.Err), rep.Steps, errText(rep2.Err), rep2.Steps)
	}
}

// TestModelSeedOverride pins that Sched.Seed overrides the model
// spec's own seed: (spec seed s, override 0) equals (spec seed 0,
// override s) and differs from other seeds.
func TestModelSeedOverride(t *testing.T) {
	run := func(specSeed, override int64) *artifact.Report {
		spec := &sched.ModelSpec{Name: "uniform", Seed: specSeed}
		b := &artifact.Bundle{Version: artifact.Version, Meta: modelMeta, Sched: artifact.Sched{Model: spec, Seed: override}}
		rep, err := artifact.Replay(b, artifact.ReplayOptions{Record: true})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	direct := run(17, 0)
	overridden := run(3, 17)
	a, _ := json.Marshal(direct.Decisions)
	b, _ := json.Marshal(overridden.Decisions)
	if string(a) != string(b) {
		t.Errorf("seed override diverged from direct seed: %s vs %s", a, b)
	}
	other := run(18, 0)
	c, _ := json.Marshal(other.Decisions)
	if string(a) == string(c) {
		t.Errorf("seeds 17 and 18 produced identical decision traces")
	}
}

// TestModelLegacyEquivalence is the artifact leg of the
// behavior-preservation cross-check: a legacy random-mode bundle and a
// model-mode bundle naming the random model (same seeds, same crash
// knobs) replay byte-identically and normalize to byte-identical
// script bundles.
func TestModelLegacyEquivalence(t *testing.T) {
	meta := modelMeta
	legacy := &artifact.Bundle{Version: 1, Meta: meta,
		Sched: artifact.Sched{Random: true, Seed: 5, CrashSeed: 9, MaxCrashes: 1, CrashProb: 0.05}}
	model := &artifact.Bundle{Version: artifact.Version, Meta: meta,
		Sched: artifact.Sched{Model: &sched.ModelSpec{Name: "random"}, Seed: 5, CrashSeed: 9, MaxCrashes: 1, CrashProb: 0.05}}

	lr, err := artifact.Replay(legacy, artifact.ReplayOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := artifact.Replay(model, artifact.ReplayOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(struct {
		Dec   []int
		Fired []sched.CrashPoint
		Steps int64
		Err   string
	}{lr.Decisions, lr.Fired, lr.Steps, errText(lr.Err)})
	b, _ := json.Marshal(struct {
		Dec   []int
		Fired []sched.CrashPoint
		Steps int64
		Err   string
	}{mr.Decisions, mr.Fired, mr.Steps, errText(mr.Err)})
	if string(a) != string(b) {
		t.Errorf("legacy and model replays differ\n legacy: %s\n model:  %s", a, b)
	}

	ln, err := artifact.Normalize(legacy)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := artifact.Normalize(model)
	if err != nil {
		t.Fatal(err)
	}
	la, _ := json.Marshal(ln)
	ma, _ := json.Marshal(mn)
	if string(la) != string(ma) {
		t.Errorf("normalized bundles differ\n legacy: %s\n model:  %s", la, ma)
	}
}

// TestModelLoadRejects pins the load-time rejection surface for model
// bundles: unknown models and malformed specs fail Load, and
// version-1 bundles still load.
func TestModelLoadRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := artifact.Load(write("v1.json",
		`{"version":1,"meta":{"workload":"unicons","n":2,"quantum":2},"sched":{"random":true,"seed":3}}`)); err != nil {
		t.Errorf("version-1 bundle rejected: %v", err)
	}
	if _, err := artifact.Load(write("badmodel.json",
		`{"version":2,"meta":{"workload":"unicons","n":2,"quantum":2},"sched":{"model":{"name":"nosuch"}}}`)); err == nil || !strings.Contains(err.Error(), "unknown scheduler model") {
		t.Errorf("unknown model accepted: %v", err)
	}
	if _, err := artifact.Load(write("badparam.json",
		`{"version":2,"meta":{"workload":"unicons","n":2,"quantum":2},"sched":{"model":{"name":"markov","params":{"warp":1}}}}`)); err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Errorf("unknown model parameter accepted: %v", err)
	}
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
