package bench

import (
	"fmt"

	"repro/internal/hybridcas"
	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// Fig3Scaling measures Theorem 1's constant-time claim: worst-case
// statements per consensus operation as the number of processes grows
// (E3). The paper predicts a flat series at exactly 8.
func Fig3Scaling(ns []int, seed int64) []ScalingPoint {
	pts := make([]ScalingPoint, 0, len(ns))
	for _, n := range ns {
		sys := sim.New(sim.Config{Processors: 1, Quantum: unicons.MinQuantum, Chooser: sched.NewRandom(seed)})
		obj := unicons.New("cons")
		for i := 0; i < n; i++ {
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%4}).
				AddInvocation(func(c *sim.Ctx) { obj.Decide(c, 1) })
		}
		if err := sys.Run(); err != nil {
			panic(fmt.Sprintf("bench: Fig3Scaling n=%d: %v", n, err))
		}
		pts = append(pts, ScalingPoint{X: n, Stmts: worstInv(sys)})
	}
	return pts
}

// Fig5Scaling measures Theorem 2's O(V) claim: worst-case statements per
// C&S operation as the number of priority levels grows, with the process
// count fixed (E4).
func Fig5Scaling(vs []int, n, opsPer int, seed int64) []ScalingPoint {
	pts := make([]ScalingPoint, 0, len(vs))
	for _, v := range vs {
		sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum, Chooser: sched.NewRandom(seed)})
		obj := hybridcas.New("cas", v, 0)
		for i := 0; i < n; i++ {
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%v})
			for k := 0; k < opsPer; k++ {
				p.AddInvocation(func(c *sim.Ctx) {
					for {
						x := obj.Read(c)
						if obj.CompareAndSwap(c, x, x+1) {
							return
						}
					}
				})
			}
		}
		if err := sys.Run(); err != nil {
			panic(fmt.Sprintf("bench: Fig5Scaling v=%d: %v", v, err))
		}
		pts = append(pts, ScalingPoint{X: v, Stmts: worstInv(sys)})
	}
	return pts
}

// Fig5ScalingN measures the complementary E4 axis: worst-case statements
// per C&S operation as the process count grows with V fixed. Theorem 2
// predicts no dependence on N (up to contention-driven retries).
func Fig5ScalingN(ns []int, v, opsPer int, seed int64) []ScalingPoint {
	pts := make([]ScalingPoint, 0, len(ns))
	for _, n := range ns {
		sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum, Chooser: sched.NewRandom(seed)})
		obj := hybridcas.New("cas", v, 0)
		for i := 0; i < n; i++ {
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%v})
			for k := 0; k < opsPer; k++ {
				p.AddInvocation(func(c *sim.Ctx) {
					for {
						x := obj.Read(c)
						if obj.CompareAndSwap(c, x, x+1) {
							return
						}
					}
				})
			}
		}
		if err := sys.Run(); err != nil {
			panic(fmt.Sprintf("bench: Fig5ScalingN n=%d: %v", n, err))
		}
		pts = append(pts, ScalingPoint{X: n, Stmts: worstInv(sys)})
	}
	return pts
}

// Fig7Scaling measures Theorem 4's polynomial-time claim: worst-case
// statements per multiprocessor consensus as M (processes per processor)
// grows (E5). L grows linearly in M, so the series should be roughly
// linear — polynomial, not exponential.
func Fig7Scaling(ms []int, p, k, v, quantum int, seed int64) []ScalingPoint {
	pts := make([]ScalingPoint, 0, len(ms))
	for _, m := range ms {
		cfg := multicons.Config{Name: "f7", P: p, K: k, M: m, V: v}
		sys := sim.New(sim.Config{Processors: p, Quantum: quantum, Chooser: sched.NewRandom(seed), MaxSteps: 1 << 24})
		alg := multicons.New(cfg)
		for i := 0; i < p; i++ {
			for j := 0; j < m; j++ {
				me := i*m + j
				sys.AddProcess(sim.ProcSpec{Processor: i, Priority: 1 + j%v}).
					AddInvocation(func(c *sim.Ctx) { alg.Decide(c, mem.Word(me+1)) })
			}
		}
		if err := sys.Run(); err != nil {
			panic(fmt.Sprintf("bench: Fig7Scaling m=%d: %v", m, err))
		}
		pts = append(pts, ScalingPoint{X: m, Stmts: worstInv(sys)})
	}
	return pts
}

// ExpBaselineCurve renders the E8 contrast: the measured polynomial cost
// of the paper's algorithm (Fig. 7 level count and statements) against
// the exponential 2^V cost shape of the prior priority-based
// construction [7], whose full algorithm text is not available (see
// DESIGN.md).
func ExpBaselineCurve(vs []int, p, k, m int) string {
	out := fmt.Sprintf("E8: polynomial (this paper) vs exponential ([7]-shape) cost, P=%d K=%d M=%d\n", p, k, m)
	out += fmt.Sprintf("%4s %22s %22s\n", "V", "Fig7 levels (poly)", "[7] objects (2^V)")
	for _, v := range vs {
		cfg := multicons.Config{P: p, K: k, M: m, V: v}
		out += fmt.Sprintf("%4d %22d %22d\n", v, cfg.Levels(), 1<<v)
	}
	return out
}

func worstInv(sys *sim.System) int64 {
	var worst int64
	for _, p := range sys.Processes() {
		if p.MaxInvStmts() > worst {
			worst = p.MaxInvStmts()
		}
	}
	return worst
}
