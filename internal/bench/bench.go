// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation-bearing content as machine-run
// experiments (see DESIGN.md's per-experiment index E1-E8) and renders
// paper-style text tables. The testing.B benchmarks in the repository
// root and the cmd/ binaries are thin drivers over this package.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/sched"
	"repro/internal/sim"
)

// fig7Builder constructs one Fig. 7 consensus run for the harness.
func fig7Builder(cfg multicons.Config, quantum int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: cfg.P, Quantum: quantum, Chooser: ch, MaxSteps: 1 << 23})
		alg := multicons.New(cfg)
		n := cfg.P * cfg.M
		outs := make([]mem.Word, n)
		id := 0
		for i := 0; i < cfg.P; i++ {
			for j := 0; j < cfg.M; j++ {
				me := id
				sys.AddProcess(sim.ProcSpec{
					Processor: i,
					Priority:  1 + j%cfg.V,
					Name:      fmt.Sprintf("p%d.%d", i, j),
				}).AddInvocation(func(c *sim.Ctx) {
					outs[me] = alg.Decide(c, mem.Word(me+1))
				})
				id++
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			first := outs[0]
			for i, v := range outs {
				if v == mem.Bottom {
					return fmt.Errorf("process %d decided ⊥", i)
				}
				if v != first {
					return fmt.Errorf("agreement violated: %v", outs)
				}
			}
			return nil
		}
		return sys, verify
	}
}

// budgetLegSchedules caps the bounded-deviation leg of the quantum
// battery so large configurations stay a battery, not a proof.
const budgetLegSchedules = 128

// quantumHolds reports whether the Fig. 7 configuration passes a battery
// of adversarial schedules at quantum q: the maximally-preempting Rotate
// schedule, quantum-stagger adversaries at several alignment phases (the
// Theorem 3 construction), `seeds` pseudo-random schedules, and a
// bounded exhaustive leg over every single-switch deviation from the
// default schedule. The deterministic battery fans out over parallelism
// workers (0 = NumCPU); the fuzz and deviation legs run on the parallel
// explorer with the same worker budget, the deviation leg with the
// given reduction (ReductionNone restores the plain enumeration).
func quantumHolds(cfg multicons.Config, q, seeds, parallelism int, red check.Reduction) bool {
	build := fig7Builder(cfg, q)
	adversaries := []sim.Chooser{sched.NewRotate()}
	for phase := 0; phase < min(q, 8); phase++ {
		adversaries = append(adversaries, sched.NewStagger(q, phase))
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var failed atomic.Bool
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, adv := range adversaries {
		if failed.Load() {
			break
		}
		adv := adv
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if failed.Load() {
				return
			}
			sys, verify := build(adv)
			if verify(sys.Run()) != nil {
				failed.Store(true)
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return false
	}
	res := check.Fuzz(build, seeds, check.Options{StopAtFirst: true, Parallelism: parallelism})
	if !res.OK() {
		return false
	}
	bres := check.ExploreBudget(build, 1, check.Options{
		StopAtFirst:  true,
		Parallelism:  parallelism,
		MaxSchedules: budgetLegSchedules,
		Reduction:    red,
	})
	return bres.OK()
}

// Table1Row is one row of the reproduced Table 1: for consensus number
// C = P + K, the smallest quantum that passed the adversarial battery
// and the largest quantum that failed it.
type Table1Row struct {
	C           int
	K           int
	MinWorkingQ int // 0 = no grid point passed
	MaxFailingQ int // 0 = no grid point failed
	PaperFactor int // the paper's bound shape: 2P+1-C (clamped at 2)
}

// DefaultQGrid is the quantum grid used by the Table 1 sweep.
func DefaultQGrid() []int {
	return []int{1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048}
}

// Table1Sweep reproduces Table 1 for a P-processor system with M
// processes per processor over V priority levels: for each C in
// [P, 2P+1] it sweeps the quantum grid under adversarial schedules and
// records the empirical universality frontier. The per-point schedule
// batteries run on the parallel explorer with the default worker count
// (runtime.NumCPU()); use Table1SweepPar to control it.
func Table1Sweep(p, m, v, seeds int, qGrid []int) []Table1Row {
	return Table1SweepPar(p, m, v, seeds, qGrid, 0)
}

// Table1SweepPar is Table1Sweep with an explicit worker count per
// schedule battery (0 = runtime.NumCPU(), 1 = sequential). The
// bounded-deviation battery leg runs with full reduction; use
// Table1SweepRed to control it.
func Table1SweepPar(p, m, v, seeds int, qGrid []int, parallelism int) []Table1Row {
	return Table1SweepRed(p, m, v, seeds, qGrid, parallelism, check.ReductionFull)
}

// Table1SweepRed is Table1SweepPar with an explicit reduction for the
// bounded-deviation battery leg. Reductions preserve verdicts, so the
// sweep's frontier is reduction-independent; ReductionNone exists as an
// escape hatch for cross-checking.
func Table1SweepRed(p, m, v, seeds int, qGrid []int, parallelism int, red check.Reduction) []Table1Row {
	if qGrid == nil {
		qGrid = DefaultQGrid()
	}
	var rows []Table1Row
	for k := 0; k <= p; k++ {
		cfg := multicons.Config{Name: "t1", P: p, K: k, M: m, V: v}
		row := Table1Row{C: p + k, K: k, PaperFactor: max(2, 2*p+1-(p+k))}
		for _, q := range qGrid {
			if quantumHolds(cfg, q, seeds, parallelism, red) {
				if row.MinWorkingQ == 0 {
					row.MinWorkingQ = q
				}
			} else {
				row.MaxFailingQ = q
				row.MinWorkingQ = 0 // require all larger grid points to pass
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable1 renders the sweep next to the paper's bound shape.
func RenderTable1(p, m, v int, rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 reproduction: P=%d processors, M=%d processes/processor, V=%d levels\n", p, m, v)
	fmt.Fprintf(&b, "paper: universal iff Q >= c(2P+1-C) for P<=C<=2P, Q >= c*2 for C>=2P (Tmax=Tmin=1)\n\n")
	fmt.Fprintf(&b, "%4s %4s %18s %14s %14s\n", "C", "K", "paper Q-factor", "max failing Q", "min working Q")
	for _, r := range rows {
		fail := "-"
		if r.MaxFailingQ > 0 {
			fail = fmt.Sprintf("%d", r.MaxFailingQ)
		}
		work := "-"
		if r.MinWorkingQ > 0 {
			work = fmt.Sprintf("%d", r.MinWorkingQ)
		}
		fmt.Fprintf(&b, "%4d %4d %18s %14s %14s\n",
			r.C, r.K, fmt.Sprintf("(2P+1-C)=%d", r.PaperFactor), fail, work)
	}
	return b.String()
}

// ScalingPoint is one measurement of a scaling experiment: worst-case
// statements per operation at parameter X.
type ScalingPoint struct {
	X     int
	Stmts int64
}

// RenderScaling renders a scaling series.
func RenderScaling(title, xlabel string, pts []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%8s %16s\n", title, xlabel, "stmts/op (max)")
	for _, pt := range pts {
		fmt.Fprintf(&b, "%8d %16d\n", pt.X, pt.Stmts)
	}
	return b.String()
}

// ProbeQuantum runs the adversarial battery once for a single (K, Q)
// point and returns the first violation found, or nil. The fuzz sweep
// runs on the parallel explorer with the default worker count.
func ProbeQuantum(p, k, m, v, q, seeds int) error {
	cfg := multicons.Config{Name: "probe", P: p, K: k, M: m, V: v}
	build := fig7Builder(cfg, q)
	sys, verify := build(sched.NewRotate())
	if err := verify(sys.Run()); err != nil {
		return err
	}
	res := check.Fuzz(build, seeds, check.Options{StopAtFirst: true})
	if !res.OK() {
		return res.First().Err
	}
	return nil
}
