package bench_test

import (
	"encoding/json"
	"testing"

	"repro/internal/bench"
)

// TestMeasureProgressGapAndDeterminism pins the bench-level progress
// measurement: under the default seeded model the wait-free leg is
// bounded and uncensored, the negative control starves, the gap is
// large, and the whole report is a deterministic function of the
// replay count — identical at parallelism 1 and 4, so the committed
// BENCH_explore.json progress section is machine-independent.
func TestMeasureProgressGapAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement sweep is not short")
	}
	const replays = 300
	seq, err := bench.MeasureProgress("", replays, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := bench.MeasureProgress("", replays, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(seq)
	b, _ := json.Marshal(par)
	if string(a) != string(b) {
		t.Errorf("progress measurement differs across parallelism\n seq: %s\n par: %s", a, b)
	}
	if seq.WaitFree.DeclaredBound == 0 || seq.WaitFree.Max > seq.WaitFree.DeclaredBound {
		t.Errorf("wait-free leg out of bound: %+v", seq.WaitFree)
	}
	if seq.Locked.Censored == 0 {
		t.Errorf("negative control shows no starved invocations: %+v", seq.Locked)
	}
	if seq.Gap < 2 {
		t.Errorf("starvation gap %.2f, want >= 2", seq.Gap)
	}
}

// TestMeasureProgressRejectsBadModel pins the error surface: an
// unparseable or unknown model fails fast instead of measuring under
// something else.
func TestMeasureProgressRejectsBadModel(t *testing.T) {
	if _, err := bench.MeasureProgress("nosuch", 10, 1); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := bench.MeasureProgress("markov:warp=1", 10, 1); err == nil {
		t.Error("unknown parameter accepted")
	}
}
