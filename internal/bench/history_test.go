package bench_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/bench"
)

// compact normalizes JSON for comparison: history entries keep their
// meaning, not their whitespace, across encode/parse round trips.
func compact(t *testing.T, data []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		t.Fatalf("invalid JSON %q: %v", data, err)
	}
	return buf.String()
}

func TestParseHistoryEmpty(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("  \n")} {
		h, err := bench.ParseHistory(data)
		if err != nil {
			t.Fatalf("empty input rejected: %v", err)
		}
		if h.Latest != nil || len(h.History) != 0 {
			t.Fatalf("empty input produced non-empty history: %+v", h)
		}
	}
}

func TestParseHistoryLegacyUpgrade(t *testing.T) {
	// A pre-wrapper BENCH_explore.json is a bare report object; parsing
	// must upgrade it to a single-entry history whose latest is the
	// whole document.
	legacy := []byte(`{"schema": 3, "go": "go1.23", "explore": {"schedules_per_sec": 100}}` + "\n")
	h, err := bench.ParseHistory(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.History) != 1 {
		t.Fatalf("legacy upgrade: %d history entries, want 1", len(h.History))
	}
	var latest map[string]json.RawMessage
	if err := json.Unmarshal(h.Latest, &latest); err != nil {
		t.Fatal(err)
	}
	if string(latest["schema"]) != "3" {
		t.Fatalf("legacy latest lost content: %s", h.Latest)
	}
}

func TestAppendHistoryRoundTrip(t *testing.T) {
	var file []byte
	var err error
	for i := 1; i <= 3; i++ {
		file, err = bench.AppendHistory(file, []byte(fmt.Sprintf(`{"schema":3,"run":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	h, err := bench.ParseHistory(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.History) != 3 {
		t.Fatalf("%d history entries, want 3", len(h.History))
	}
	if compact(t, h.Latest) != `{"schema":3,"run":3}` {
		t.Fatalf("latest is %s", h.Latest)
	}
	if compact(t, h.History[0]) != `{"schema":3,"run":1}` {
		t.Fatalf("history[0] is %s", h.History[0])
	}
}

func TestAppendHistoryCap(t *testing.T) {
	h := &bench.History{}
	for i := 0; i < bench.HistoryCap+10; i++ {
		h.Append(json.RawMessage(fmt.Sprintf(`{"run":%d}`, i)))
	}
	if len(h.History) != bench.HistoryCap {
		t.Fatalf("history grew to %d, cap is %d", len(h.History), bench.HistoryCap)
	}
	if string(h.History[0]) != `{"run":10}` {
		t.Fatalf("oldest retained entry is %s, want run 10", h.History[0])
	}
	if string(h.Latest) != fmt.Sprintf(`{"run":%d}`, bench.HistoryCap+9) {
		t.Fatalf("latest is %s", h.Latest)
	}
}

func TestAppendHistoryRejectsInvalidEntry(t *testing.T) {
	if _, err := bench.AppendHistory(nil, []byte("{broken")); err == nil {
		t.Fatal("invalid JSON entry accepted")
	}
}

func TestEncodeIsParseable(t *testing.T) {
	h := &bench.History{}
	h.Append(json.RawMessage(`{"a":1}`))
	data, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := bench.ParseHistory(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.History) != 1 || compact(t, back.Latest) != `{"a":1}` {
		t.Fatalf("encode/parse round trip mismatch: %s", back.Latest)
	}
}
