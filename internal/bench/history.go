package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// History is the shared bench-trajectory file format used by both the
// committed BENCH_explore.json (cmd/benchjson) and the server's bench
// store (internal/store, served at GET /bench): the most recent data
// point lives at the stable "latest" key — which is what `make
// bench-gate` compares against — and every appended point accumulates
// in "history", oldest first. Entries are opaque JSON objects
// (cmd/benchjson's report schema; see EXPERIMENTS.md "Bench
// trajectory"), so the format survives report-schema bumps without a
// rewrite.
type History struct {
	Latest  json.RawMessage   `json:"latest"`
	History []json.RawMessage `json:"history"`
}

// HistoryCap bounds the history array: appending beyond it drops the
// oldest entries, keeping the file size pinned across years of PRs.
const HistoryCap = 100

// ParseHistory decodes a bench file in either format: the {latest,
// history} wrapper, or a bare legacy report (pre-wrapper
// BENCH_explore.json), which is upgraded to a History whose single
// entry is also its latest. nil or empty data yields an empty History.
func ParseHistory(data []byte) (*History, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return &History{}, nil
	}
	h := &History{}
	if err := json.Unmarshal(data, h); err != nil {
		return nil, fmt.Errorf("bench: parse history: %w", err)
	}
	if h.Latest != nil {
		return h, nil
	}
	// Legacy single-report file: no "latest" key. Keep the whole document
	// as the one (and latest) entry.
	var legacy map[string]json.RawMessage
	if err := json.Unmarshal(data, &legacy); err != nil {
		return nil, fmt.Errorf("bench: parse legacy bench file: %w", err)
	}
	raw := json.RawMessage(bytes.TrimSpace(data))
	return &History{Latest: raw, History: []json.RawMessage{raw}}, nil
}

// Append adds entry as the new latest data point, retiring overflow
// beyond HistoryCap, and returns the updated History.
func (h *History) Append(entry json.RawMessage) *History {
	h.Latest = entry
	h.History = append(h.History, entry)
	if n := len(h.History); n > HistoryCap {
		h.History = append([]json.RawMessage(nil), h.History[n-HistoryCap:]...)
	}
	return h
}

// Encode renders the history file as indented JSON with a trailing
// newline, the on-disk form shared by BENCH_explore.json and the
// store.
func (h *History) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encode history: %w", err)
	}
	return append(data, '\n'), nil
}

// AppendHistory is the one-shot form: parse existing (either format,
// possibly empty), append entry, re-encode.
func AppendHistory(existing, entry []byte) ([]byte, error) {
	if !json.Valid(entry) {
		return nil, fmt.Errorf("bench: appended entry is not valid JSON")
	}
	h, err := ParseHistory(existing)
	if err != nil {
		return nil, err
	}
	return h.Append(json.RawMessage(bytes.TrimSpace(entry))).Encode()
}
