package bench

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/sched"
)

// ProgressLeg is the measured per-invocation progress distribution of
// one workload under the stochastic scheduler: the summary statistics
// of a check.ProgressStats, without the histogram (the full
// distribution is the measurement job's artifact; the bench trajectory
// keeps only the tail figures the gate compares).
type ProgressLeg struct {
	Workload string `json:"workload"`
	// DeclaredBound is the workload's declared worst-case statement
	// bound (artifact.DeclaredBound; 0 when the workload declares none,
	// as the negative control deliberately does).
	DeclaredBound int64 `json:"declared_bound,omitempty"`
	Samples       int64 `json:"samples"`
	// Censored counts invocations still unfinished when their run ended
	// — the starvation signal. Zero for a wait-free algorithm under any
	// scheduler that keeps scheduling everyone.
	Censored int64 `json:"censored"`
	P50      int64 `json:"p50"`
	P99      int64 `json:"p99"`
	P999     int64 `json:"p999"`
	Max      int64 `json:"max"`
	// CensoredMax is the largest in-flight statement count among
	// censored invocations — a lower bound on how far past Max the true
	// worst case lies.
	CensoredMax int64   `json:"censored_max,omitempty"`
	HalfLife    float64 `json:"half_life,omitempty"`
}

// worst is the leg's observed worst case: the larger of the completed
// maximum and the censored lower bound.
func (l ProgressLeg) worst() int64 {
	return max(l.Max, l.CensoredMax)
}

// ProgressBench is the "practically wait-free" comparison (schema v4):
// the Fig. 3 wait-free consensus and the lock-based counter negative
// control measured under the same stochastic scheduler and replay
// count. The wait-free leg must respect its declared bound at every
// percentile; the lock-based leg starves, and Gap quantifies by how
// much.
type ProgressBench struct {
	Model   string `json:"sched_model"`
	Replays int    `json:"replays"`
	// WaitFree is the Fig. 3 unicons leg, Locked the lockcounter
	// negative control.
	WaitFree ProgressLeg `json:"waitfree"`
	Locked   ProgressLeg `json:"lockbased"`
	// Gap is the starvation gap: the lock-based worst case (completed
	// max or censored lower bound, whichever is larger) over the
	// wait-free observed max. The headline figure the bench gate holds.
	Gap float64 `json:"starvation_gap"`
}

// Pinned measurement workloads: the Fig. 3 algorithm in its correct
// three-process configuration, and the lock-based counter in the
// starvation-prone configuration the negative-control tests use. Small
// step limits keep a starved lockcounter run from spinning long.
var (
	progressWaitFreeMeta = artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 2, MaxSteps: 1 << 14}
	progressLockedMeta   = artifact.Meta{Workload: "lockcounter", N: 2, V: 2, Quantum: 2, MaxSteps: 4000}
)

// DefaultProgressModel is the scheduler model MeasureProgress uses when
// given none: seeded uniform-random, so the whole measurement is a
// deterministic function of the replay count.
const DefaultProgressModel = "uniform:seed=1"

// measureLeg fuzzes one workload in measurement mode and reduces the
// resulting distribution to a leg summary.
func measureLeg(meta artifact.Meta, spec *sched.ModelSpec, replays, parallelism int) (ProgressLeg, error) {
	build, err := check.BuilderFor(meta)
	if err != nil {
		return ProgressLeg{}, err
	}
	res := check.Fuzz(build, replays, check.Options{
		MaxSchedules: replays,
		Parallelism:  parallelism,
		SchedModel:   spec,
		Measure:      true,
	})
	p := res.Progress
	if p == nil || p.Runs == 0 {
		return ProgressLeg{}, fmt.Errorf("bench: %s measurement produced no runs", meta.Workload)
	}
	return ProgressLeg{
		Workload:      meta.Workload,
		DeclaredBound: artifact.DeclaredBound(meta),
		Samples:       p.Samples,
		Censored:      p.Censored,
		P50:           p.P50,
		P99:           p.P99,
		P999:          p.P999,
		Max:           p.Max,
		CensoredMax:   p.CensoredMax,
		HalfLife:      p.HalfLife,
	}, nil
}

// MeasureProgress runs the practically-wait-free measurement pair:
// both pinned workloads fuzzed `replays` times under the same scheduler
// model ("" = DefaultProgressModel). Like MeasureReduction, the bench
// doubles as a soundness cross-check — it errors if the wait-free leg
// exceeds its declared bound or shows censored (starved) invocations,
// or if the negative control fails to starve at all, since a progress
// section asserting a gap that is not there would poison the baseline
// the gate compares against.
func MeasureProgress(model string, replays, parallelism int) (ProgressBench, error) {
	if model == "" {
		model = DefaultProgressModel
	}
	spec, err := sched.ParseModelSpec(model)
	if err != nil {
		return ProgressBench{}, fmt.Errorf("bench: %w", err)
	}
	wf, err := measureLeg(progressWaitFreeMeta, spec, replays, parallelism)
	if err != nil {
		return ProgressBench{}, err
	}
	lk, err := measureLeg(progressLockedMeta, spec, replays, parallelism)
	if err != nil {
		return ProgressBench{}, err
	}
	if wf.DeclaredBound > 0 && wf.Max > wf.DeclaredBound {
		return ProgressBench{}, fmt.Errorf("bench: wait-free leg exceeded its declared bound: max %d > %d", wf.Max, wf.DeclaredBound)
	}
	if wf.Censored != 0 {
		return ProgressBench{}, fmt.Errorf("bench: wait-free leg left %d invocations unfinished", wf.Censored)
	}
	if lk.Censored == 0 && lk.worst() <= wf.Max {
		return ProgressBench{}, fmt.Errorf("bench: negative control did not starve (worst %d vs wait-free max %d)", lk.worst(), wf.Max)
	}
	return ProgressBench{
		Model:    spec.String(),
		Replays:  replays,
		WaitFree: wf,
		Locked:   lk,
		Gap:      float64(lk.worst()) / float64(wf.Max),
	}, nil
}
