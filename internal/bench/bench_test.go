package bench_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/unicons"
)

func TestFig3ScalingIsConstant(t *testing.T) {
	pts := bench.Fig3Scaling([]int{1, 4, 16, 64}, 1)
	for _, p := range pts {
		if p.Stmts != unicons.Stmts {
			t.Fatalf("n=%d: stmts/op = %d, want exactly %d", p.X, p.Stmts, unicons.Stmts)
		}
	}
}

func TestFig5ScalingShape(t *testing.T) {
	pts := bench.Fig5Scaling([]int{1, 4, 16}, 4, 2, 1)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Growth from V=4 to V=16 must be bounded by a generous linear
	// factor (scan costs 2 statements per level plus retry headroom).
	if pts[2].Stmts-pts[1].Stmts > 12*40 {
		t.Fatalf("V=4→16 growth %d too steep for O(V)", pts[2].Stmts-pts[1].Stmts)
	}
}

func TestFig7ScalingRuns(t *testing.T) {
	pts := bench.Fig7Scaling([]int{1, 2}, 2, 1, 1, 2048, 1)
	if len(pts) != 2 || pts[0].Stmts <= 0 {
		t.Fatalf("bad points: %+v", pts)
	}
}

func TestTable1SweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	grid := []int{1, 8, 64, 512, 2048}
	rows := bench.Table1Sweep(2, 2, 1, 5, grid)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (K=0..2)", len(rows))
	}
	out := bench.RenderTable1(2, 2, 1, rows)
	if !strings.Contains(out, "Table 1 reproduction") {
		t.Fatalf("bad render:\n%s", out)
	}
	for _, r := range rows {
		if r.MinWorkingQ == 0 {
			t.Errorf("C=%d: no working quantum found on grid %v", r.C, grid)
		}
	}
	t.Logf("\n%s", out)
}

func TestExpBaselineCurve(t *testing.T) {
	out := bench.ExpBaselineCurve([]int{1, 2, 4, 8}, 2, 1, 2)
	if !strings.Contains(out, "2^V") {
		t.Fatalf("bad render:\n%s", out)
	}
}

// TestMeasureReductionRatio pins the headline reduction claim: on the
// benchmark configuration, full reduction explores at least 5x fewer
// schedules than the plain enumeration for the same verdict.
// (MeasureReduction itself errors out if the verdicts disagree.)
func TestMeasureReductionRatio(t *testing.T) {
	rb, err := bench.MeasureReduction(1)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Ratio < 5 {
		t.Errorf("reduction ratio %.1fx (plain %d, reduced %d), want >= 5x",
			rb.Ratio, rb.PlainSchedules, rb.ReducedSchedules)
	}
	if rb.ReducedSchedules <= 0 || rb.PlainSchedules <= rb.ReducedSchedules {
		t.Errorf("implausible schedule counts: plain %d, reduced %d", rb.PlainSchedules, rb.ReducedSchedules)
	}
}
