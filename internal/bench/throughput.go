package bench

import (
	"fmt"
	"time"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/minimize"
)

// Throughput is one timed run of the schedule explorer.
type Throughput struct {
	Workers   int     `json:"workers"`
	Schedules int     `json:"schedules"`
	Seconds   float64 `json:"seconds"`
	PerSec    float64 `json:"schedules_per_sec"`
}

// ShrinkThroughput is one timed run of the counterexample shrinker:
// candidate replays per second over a real violating bundle.
type ShrinkThroughput struct {
	Workload      string  `json:"workload"`
	Candidates    int     `json:"candidate_replays"`
	Seconds       float64 `json:"seconds"`
	PerSec        float64 `json:"candidates_per_sec"`
	FromDecisions int     `json:"from_decisions"`
	ToDecisions   int     `json:"to_decisions"`
}

// exploreMeta is the fixed workload timed by ExploreThroughput: the
// Fig. 3 algorithm for three processes at a violating quantum, explored
// with a context-switch deviation budget. The run is deterministic, so
// sequential and parallel timings cover identical work.
var exploreMeta = artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 2, MaxSteps: 1 << 16}

const exploreBudget = 4

// ExploreThroughput times a deterministic budget exploration at the
// given worker count (1 = sequential, 0 = all CPUs) and reports
// schedules per second.
func ExploreThroughput(parallelism int) (Throughput, error) {
	build, err := check.BuilderFor(exploreMeta)
	if err != nil {
		return Throughput{}, err
	}
	opts := check.Options{Parallelism: parallelism, MaxSchedules: 1 << 22}
	start := time.Now()
	res := check.ExploreBudget(build, exploreBudget, opts)
	secs := time.Since(start).Seconds()
	if res.Truncated || res.Interrupted {
		return Throughput{}, fmt.Errorf("bench: exploration did not complete (%d schedules)", res.Schedules)
	}
	return Throughput{
		Workers:   parallelism,
		Schedules: res.Schedules,
		Seconds:   secs,
		PerSec:    float64(res.Schedules) / secs,
	}, nil
}

// MeasureShrink finds a deterministic unicons violation and times
// shrinking it, reporting candidate replays per second. The search and
// the shrinker are both deterministic, so the work (though not the
// wall-clock) is identical across runs.
func MeasureShrink(budget int) (ShrinkThroughput, error) {
	meta := artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 1, MaxSteps: 1 << 16}
	var bundle *artifact.Bundle
	for seed := int64(0); seed < 500; seed++ {
		b, _, err := artifact.Capture(meta, artifact.Sched{Random: true, Seed: seed})
		if err != nil {
			return ShrinkThroughput{}, err
		}
		if b.Err != "" {
			bundle = b
			break
		}
	}
	if bundle == nil {
		return ShrinkThroughput{}, fmt.Errorf("bench: no unicons violation in 500 seeds")
	}
	if norm, err := artifact.Normalize(bundle); err == nil {
		bundle = norm
	}
	start := time.Now()
	min, stats, err := minimize.Shrink(bundle, minimize.Options{Budget: budget})
	secs := time.Since(start).Seconds()
	if err != nil {
		return ShrinkThroughput{}, err
	}
	return ShrinkThroughput{
		Workload:      meta.Workload,
		Candidates:    stats.Tried,
		Seconds:       secs,
		PerSec:        float64(stats.Tried) / secs,
		FromDecisions: stats.FromDecisions,
		ToDecisions:   len(min.Sched.Decisions),
	}, nil
}
