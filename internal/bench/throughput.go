package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/minimize"
)

// Throughput is one timed run of the schedule explorer.
type Throughput struct {
	Workers   int     `json:"workers"`
	Schedules int     `json:"schedules"`
	Seconds   float64 `json:"seconds"`
	PerSec    float64 `json:"schedules_per_sec"`
	// Steals counts cross-worker deque steals (schema v3; always 0 for
	// one worker, and timing-dependent otherwise — a diagnostic, not a
	// determinism-covered result).
	Steals int64 `json:"steals"`
	// AllocsPerSchedule is the mean number of heap objects allocated
	// per schedule over the whole exploration (schema v3), measured
	// from runtime.MemStats.Mallocs. The pooled steady-state replay
	// loop allocates nothing; the residue is child work items, the
	// one-time probe builds, and collector bookkeeping.
	AllocsPerSchedule float64 `json:"allocs_per_schedule"`
}

// ShrinkThroughput is one timed run of the counterexample shrinker:
// candidate replays per second over a real violating bundle.
type ShrinkThroughput struct {
	Workload      string  `json:"workload"`
	Candidates    int     `json:"candidate_replays"`
	Seconds       float64 `json:"seconds"`
	PerSec        float64 `json:"candidates_per_sec"`
	FromDecisions int     `json:"from_decisions"`
	ToDecisions   int     `json:"to_decisions"`
}

// exploreMeta is the fixed workload timed by ExploreThroughput: the
// Fig. 3 algorithm for three processes at a violating quantum, explored
// with a context-switch deviation budget. The run is deterministic, so
// sequential and parallel timings cover identical work.
var exploreMeta = artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 2, MaxSteps: 1 << 16}

const exploreBudget = 4

// ExploreThroughput times a deterministic budget exploration at the
// given worker count (1 = sequential, 0 = all CPUs) and reports
// schedules per second.
func ExploreThroughput(parallelism int) (Throughput, error) {
	build, err := check.BuilderFor(exploreMeta)
	if err != nil {
		return Throughput{}, err
	}
	opts := check.Options{Parallelism: parallelism, MaxSchedules: 1 << 22}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res := check.ExploreBudget(build, exploreBudget, opts)
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if res.Truncated || res.Interrupted {
		return Throughput{}, fmt.Errorf("bench: exploration did not complete (%d schedules)", res.Schedules)
	}
	return Throughput{
		Workers:           parallelism,
		Schedules:         res.Schedules,
		Seconds:           secs,
		PerSec:            float64(res.Schedules) / secs,
		Steals:            res.Steals,
		AllocsPerSchedule: float64(after.Mallocs-before.Mallocs) / float64(res.Schedules),
	}, nil
}

// ReductionBench compares plain and reduced exploration of the same
// schedule tree: schedule counts, throughput, and the reduction ratio
// (plain schedules / reduced schedules — how many× fewer runs the
// reductions execute for the same verdict).
type ReductionBench struct {
	Workload         string  `json:"workload"`
	Mode             string  `json:"mode"`
	PlainSchedules   int     `json:"plain_schedules"`
	ReducedSchedules int     `json:"reduced_schedules"`
	Ratio            float64 `json:"reduction_ratio"`
	PlainPerSec      float64 `json:"plain_schedules_per_sec"`
	ReducedPerSec    float64 `json:"reduced_schedules_per_sec"`
	// ReducedRuns is the number of runs the reduced exploration
	// actually executed (schema v3): completed schedules plus runs the
	// reductions aborted mid-schedule (fingerprint-pruned and
	// sleep-deadlocked partial replays). Pruned partial replays are
	// real executed work — aborting one is how the reduction saves the
	// rest of its subtree — so per-run cost accounting divides by this,
	// not by ReducedSchedules.
	ReducedRuns int `json:"reduced_runs"`
	// CostRatio is the per-run cost of reduced mode relative to plain
	// (plain schedules/sec divided by reduced runs/sec, schema v3): how
	// much each reduced run pays for snapshots, sleep-set upkeep, and
	// fingerprint-cache visits. Reduction wins overall when CostRatio
	// is far below reduction_ratio.
	CostRatio float64 `json:"reduced_cost_ratio"`
	// SleepDeadlockRuns was misleadingly named sleep_pruned_runs before
	// schema v3: it counts whole runs aborted because every candidate
	// was asleep — impossible at N=2, where 0 is the correct value —
	// not the branch-level savings, which SleepSkipped reports.
	SleepDeadlockRuns int   `json:"sleep_deadlock_runs"`
	SleepSkipped      int64 `json:"sleep_skipped_branches"`
	FingerprintPruned int   `json:"fingerprint_pruned_runs"`
}

// reductionMeta is the fixed workload timed by MeasureReduction: the
// Fig. 3 algorithm for two processes at the fully-preemptive quantum,
// explored exhaustively. Small enough that the plain enumeration
// completes, adversarial enough that both runs find the violation.
var reductionMeta = artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 0, MaxSteps: 1 << 16}

// Repeat counts for MeasureReduction. The reduced exploration finishes
// in single-digit milliseconds, far too short for one shot to time
// reliably, so both legs repeat a fixed (deterministic) number of times
// and rates aggregate over the total. The reduced leg repeats more
// because it is that much shorter.
const (
	reductionPlainReps = 3
	reductionRedReps   = 20
)

// MeasureReduction explores the pinned configuration exhaustively —
// plain and with full reduction, each repeated a fixed number of times
// — at the given worker count and reports the reduction ratio. Both
// explorations must agree on the verdict (this configuration
// violates), or an error is returned: the benchmark doubles as a
// soundness cross-check.
func MeasureReduction(parallelism int) (ReductionBench, error) {
	build, err := check.BuilderFor(reductionMeta)
	if err != nil {
		return ReductionBench{}, err
	}
	opts := check.Options{Parallelism: parallelism, MaxSchedules: 1 << 22}
	var plain, red *check.Result
	start := time.Now()
	for i := 0; i < reductionPlainReps; i++ {
		plain = check.ExploreAll(build, opts)
	}
	plainSecs := time.Since(start).Seconds() / reductionPlainReps
	opts.Reduction = check.ReductionFull
	start = time.Now()
	for i := 0; i < reductionRedReps; i++ {
		red = check.ExploreAll(build, opts)
	}
	redSecs := time.Since(start).Seconds() / reductionRedReps
	for _, r := range []*check.Result{plain, red} {
		if r.Truncated || r.Interrupted {
			return ReductionBench{}, fmt.Errorf("bench: reduction exploration did not complete (%d schedules)", r.Schedules)
		}
	}
	if plain.OK() != red.OK() {
		return ReductionBench{}, fmt.Errorf("bench: reduction changed the verdict: plain %d violations, reduced %d",
			plain.ViolationsTotal, red.ViolationsTotal)
	}
	redRuns := red.Schedules + red.Reduction.FingerprintPrunedRuns + red.Reduction.SleepDeadlockRuns
	plainPerSec := float64(plain.Schedules) / plainSecs
	return ReductionBench{
		Workload:          reductionMeta.Workload,
		Mode:              check.ReductionFull.String(),
		PlainSchedules:    plain.Schedules,
		ReducedSchedules:  red.Schedules,
		Ratio:             float64(plain.Schedules) / float64(red.Schedules),
		PlainPerSec:       plainPerSec,
		ReducedPerSec:     float64(red.Schedules) / redSecs,
		ReducedRuns:       redRuns,
		CostRatio:         plainPerSec / (float64(redRuns) / redSecs),
		SleepDeadlockRuns: red.Reduction.SleepDeadlockRuns,
		SleepSkipped:      red.Reduction.SleepSkippedBranches,
		FingerprintPruned: red.Reduction.FingerprintPrunedRuns,
	}, nil
}

// MeasureShrink finds a deterministic unicons violation and times
// shrinking it, reporting candidate replays per second. The search and
// the shrinker are both deterministic, so the work (though not the
// wall-clock) is identical across runs.
func MeasureShrink(budget int) (ShrinkThroughput, error) {
	meta := artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 1, MaxSteps: 1 << 16}
	var bundle *artifact.Bundle
	for seed := int64(0); seed < 500; seed++ {
		b, _, err := artifact.Capture(meta, artifact.Sched{Random: true, Seed: seed})
		if err != nil {
			return ShrinkThroughput{}, err
		}
		if b.Err != "" {
			bundle = b
			break
		}
	}
	if bundle == nil {
		return ShrinkThroughput{}, fmt.Errorf("bench: no unicons violation in 500 seeds")
	}
	if norm, err := artifact.Normalize(bundle); err == nil {
		bundle = norm
	}
	start := time.Now()
	min, stats, err := minimize.Shrink(bundle, minimize.Options{Budget: budget})
	secs := time.Since(start).Seconds()
	if err != nil {
		return ShrinkThroughput{}, err
	}
	return ShrinkThroughput{
		Workload:      meta.Workload,
		Candidates:    stats.Tried,
		Seconds:       secs,
		PerSec:        float64(stats.Tried) / secs,
		FromDecisions: stats.FromDecisions,
		ToDecisions:   len(min.Sched.Decisions),
	}, nil
}
