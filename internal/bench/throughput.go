package bench

import (
	"fmt"
	"time"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/minimize"
)

// Throughput is one timed run of the schedule explorer.
type Throughput struct {
	Workers   int     `json:"workers"`
	Schedules int     `json:"schedules"`
	Seconds   float64 `json:"seconds"`
	PerSec    float64 `json:"schedules_per_sec"`
}

// ShrinkThroughput is one timed run of the counterexample shrinker:
// candidate replays per second over a real violating bundle.
type ShrinkThroughput struct {
	Workload      string  `json:"workload"`
	Candidates    int     `json:"candidate_replays"`
	Seconds       float64 `json:"seconds"`
	PerSec        float64 `json:"candidates_per_sec"`
	FromDecisions int     `json:"from_decisions"`
	ToDecisions   int     `json:"to_decisions"`
}

// exploreMeta is the fixed workload timed by ExploreThroughput: the
// Fig. 3 algorithm for three processes at a violating quantum, explored
// with a context-switch deviation budget. The run is deterministic, so
// sequential and parallel timings cover identical work.
var exploreMeta = artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 2, MaxSteps: 1 << 16}

const exploreBudget = 4

// ExploreThroughput times a deterministic budget exploration at the
// given worker count (1 = sequential, 0 = all CPUs) and reports
// schedules per second.
func ExploreThroughput(parallelism int) (Throughput, error) {
	build, err := check.BuilderFor(exploreMeta)
	if err != nil {
		return Throughput{}, err
	}
	opts := check.Options{Parallelism: parallelism, MaxSchedules: 1 << 22}
	start := time.Now()
	res := check.ExploreBudget(build, exploreBudget, opts)
	secs := time.Since(start).Seconds()
	if res.Truncated || res.Interrupted {
		return Throughput{}, fmt.Errorf("bench: exploration did not complete (%d schedules)", res.Schedules)
	}
	return Throughput{
		Workers:   parallelism,
		Schedules: res.Schedules,
		Seconds:   secs,
		PerSec:    float64(res.Schedules) / secs,
	}, nil
}

// ReductionBench compares plain and reduced exploration of the same
// schedule tree: schedule counts, throughput, and the reduction ratio
// (plain schedules / reduced schedules — how many× fewer runs the
// reductions execute for the same verdict).
type ReductionBench struct {
	Workload          string  `json:"workload"`
	Mode              string  `json:"mode"`
	PlainSchedules    int     `json:"plain_schedules"`
	ReducedSchedules  int     `json:"reduced_schedules"`
	Ratio             float64 `json:"reduction_ratio"`
	PlainPerSec       float64 `json:"plain_schedules_per_sec"`
	ReducedPerSec     float64 `json:"reduced_schedules_per_sec"`
	SleepPrunedRuns   int     `json:"sleep_pruned_runs"`
	SleepSkipped      int64   `json:"sleep_skipped_branches"`
	FingerprintPruned int     `json:"fingerprint_pruned_runs"`
}

// reductionMeta is the fixed workload timed by MeasureReduction: the
// Fig. 3 algorithm for two processes at the fully-preemptive quantum,
// explored exhaustively. Small enough that the plain enumeration
// completes, adversarial enough that both runs find the violation.
var reductionMeta = artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 0, MaxSteps: 1 << 16}

// MeasureReduction explores the pinned configuration exhaustively twice
// — plain and with full reduction — at the given worker count and
// reports the reduction ratio. Both explorations must agree on the
// verdict (this configuration violates), or an error is returned: the
// benchmark doubles as a soundness cross-check.
func MeasureReduction(parallelism int) (ReductionBench, error) {
	build, err := check.BuilderFor(reductionMeta)
	if err != nil {
		return ReductionBench{}, err
	}
	opts := check.Options{Parallelism: parallelism, MaxSchedules: 1 << 22}
	start := time.Now()
	plain := check.ExploreAll(build, opts)
	plainSecs := time.Since(start).Seconds()
	opts.Reduction = check.ReductionFull
	start = time.Now()
	red := check.ExploreAll(build, opts)
	redSecs := time.Since(start).Seconds()
	for _, r := range []*check.Result{plain, red} {
		if r.Truncated || r.Interrupted {
			return ReductionBench{}, fmt.Errorf("bench: reduction exploration did not complete (%d schedules)", r.Schedules)
		}
	}
	if plain.OK() != red.OK() {
		return ReductionBench{}, fmt.Errorf("bench: reduction changed the verdict: plain %d violations, reduced %d",
			plain.ViolationsTotal, red.ViolationsTotal)
	}
	return ReductionBench{
		Workload:          reductionMeta.Workload,
		Mode:              check.ReductionFull.String(),
		PlainSchedules:    plain.Schedules,
		ReducedSchedules:  red.Schedules,
		Ratio:             float64(plain.Schedules) / float64(red.Schedules),
		PlainPerSec:       float64(plain.Schedules) / plainSecs,
		ReducedPerSec:     float64(red.Schedules) / redSecs,
		SleepPrunedRuns:   red.Reduction.SleepPrunedRuns,
		SleepSkipped:      red.Reduction.SleepSkippedBranches,
		FingerprintPruned: red.Reduction.FingerprintPrunedRuns,
	}, nil
}

// MeasureShrink finds a deterministic unicons violation and times
// shrinking it, reporting candidate replays per second. The search and
// the shrinker are both deterministic, so the work (though not the
// wall-clock) is identical across runs.
func MeasureShrink(budget int) (ShrinkThroughput, error) {
	meta := artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 1, MaxSteps: 1 << 16}
	var bundle *artifact.Bundle
	for seed := int64(0); seed < 500; seed++ {
		b, _, err := artifact.Capture(meta, artifact.Sched{Random: true, Seed: seed})
		if err != nil {
			return ShrinkThroughput{}, err
		}
		if b.Err != "" {
			bundle = b
			break
		}
	}
	if bundle == nil {
		return ShrinkThroughput{}, fmt.Errorf("bench: no unicons violation in 500 seeds")
	}
	if norm, err := artifact.Normalize(bundle); err == nil {
		bundle = norm
	}
	start := time.Now()
	min, stats, err := minimize.Shrink(bundle, minimize.Options{Budget: budget})
	secs := time.Since(start).Seconds()
	if err != nil {
		return ShrinkThroughput{}, err
	}
	return ShrinkThroughput{
		Workload:      meta.Workload,
		Candidates:    stats.Tried,
		Seconds:       secs,
		PerSec:        float64(stats.Tried) / secs,
		FromDecisions: stats.FromDecisions,
		ToDecisions:   len(min.Sched.Decisions),
	}, nil
}
