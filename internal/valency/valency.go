// Package valency computationally reproduces the structure of the
// paper's lower-bound proof (§4.1, Appendix A, Fig. 6/Fig. 10): a
// valency analysis of consensus scenarios over the schedule tree.
//
// A schedule prefix is x-valent if every completion decides x, bivalent
// if at least two different decisions are reachable, and violating if
// some completion disagrees internally or returns ⊥. The proof of
// Theorem 3 works by showing the adversary can hold the execution in
// bivalent states forever; dually, for a correct wait-free algorithm
// every maximal path leaves bivalence in bounded depth through a
// "critical" state — a bivalent prefix all of whose successors are
// univalent — where the decisive symmetry-breaking step happens (the
// object O in Fig. 6).
//
// Analyze enumerates the full schedule tree by replay (the simulator
// cannot fork mid-run) and classifies every prefix. Feasible for tiny
// configurations only, like the proofs it mirrors.
package valency

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Outcome reports one completed run of a scenario.
type Outcome struct {
	// Decision is the agreed value, meaningful only when Valid.
	Decision mem.Word
	// Valid is false for runs that disagreed, decided ⊥, or failed.
	Valid bool
}

// Scenario builds a fresh system wired to the chooser and returns a
// function that computes the run's Outcome after Run completes.
type Scenario func(ch sim.Chooser) (*sim.System, func(runErr error) Outcome)

// Result summarizes a schedule-tree valency analysis.
type Result struct {
	// Leaves is the number of maximal schedules explored.
	Leaves int
	// Prefixes is the number of internal decision points.
	Prefixes int
	// Bivalent is the number of bivalent prefixes.
	Bivalent int
	// Critical is the number of critical states: bivalent prefixes whose
	// every child subtree is univalent or violating.
	Critical int
	// MaxBivalentDepth is the deepest bivalent prefix (decision index).
	MaxBivalentDepth int
	// Violations is the number of violating leaves.
	Violations int
	// Decisions counts leaves per decided value.
	Decisions map[mem.Word]int
	// Truncated reports whether the leaf cap stopped the enumeration.
	Truncated bool
}

// String renders a compact summary.
func (r *Result) String() string {
	var vals []mem.Word
	for v := range r.Decisions {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := fmt.Sprintf("leaves=%d prefixes=%d bivalent=%d critical=%d maxBivalentDepth=%d violations=%d decisions=",
		r.Leaves, r.Prefixes, r.Bivalent, r.Critical, r.MaxBivalentDepth, r.Violations)
	for _, v := range vals {
		s += fmt.Sprintf("[%d×%d]", v, r.Decisions[v])
	}
	if r.Truncated {
		s += " (truncated)"
	}
	return s
}

// node is one prefix in the replayed schedule tree.
type node struct {
	children map[int]*node
	outcomes map[mem.Word]int // decided value → leaf count below
	invalid  int              // violating leaves below
	depth    int
	leaf     bool
}

func newNode(depth int) *node {
	return &node{children: map[int]*node{}, outcomes: map[mem.Word]int{}, depth: depth}
}

// Analyze enumerates up to maxLeaves maximal schedules of the scenario
// and classifies every prefix's valency.
func Analyze(s Scenario, maxLeaves int) *Result {
	if maxLeaves <= 0 {
		maxLeaves = 100000
	}
	root := newNode(0)
	res := &Result{Decisions: map[mem.Word]int{}}

	var prefix []int
	for {
		if res.Leaves >= maxLeaves {
			res.Truncated = true
			break
		}
		script := &sched.Script{Decisions: prefix}
		sys, outcome := s(script)
		runErr := sys.Run()
		out := outcome(runErr)
		res.Leaves++

		// Record the leaf into the trie.
		taken := make([]int, len(script.Fanouts))
		copy(taken, prefix)
		n := root
		for _, d := range taken {
			child, ok := n.children[d]
			if !ok {
				child = newNode(n.depth + 1)
				n.children[d] = child
			}
			n = child
		}
		n.leaf = true
		if out.Valid {
			res.Decisions[out.Decision]++
		} else {
			res.Violations++
		}
		// Propagate to ancestors.
		n = root
		record := func(nd *node) {
			if out.Valid {
				nd.outcomes[out.Decision]++
			} else {
				nd.invalid++
			}
		}
		record(n)
		for _, d := range taken {
			n = n.children[d]
			record(n)
		}

		// Advance to the next schedule lexicographically.
		i := len(taken) - 1
		for i >= 0 && taken[i]+1 >= script.Fanouts[i] {
			i--
		}
		if i < 0 {
			break
		}
		prefix = append(taken[:i:i], taken[i]+1)
	}

	res.classify(root)
	return res
}

// AnalyzeBudget analyzes the subtree of schedules deviating from the
// default continue-current-process schedule in at most budget places
// (the same coverage as check.ExploreBudget). Valency classifications
// are relative to the explored subtree.
func AnalyzeBudget(s Scenario, budget, maxLeaves int) *Result {
	if maxLeaves <= 0 {
		maxLeaves = 100000
	}
	root := newNode(0)
	res := &Result{Decisions: map[mem.Word]int{}}

	var rec func(switches map[int64]int, minIndex int64, budget int)
	rec = func(switches map[int64]int, minIndex int64, budget int) {
		if res.Leaves >= maxLeaves {
			res.Truncated = true
			return
		}
		ch := &sched.BudgetedSwitch{SwitchAt: switches}
		sys, outcome := s(ch)
		runErr := sys.Run()
		out := outcome(runErr)
		res.Leaves++

		n := root
		record := func(nd *node) {
			if out.Valid {
				nd.outcomes[out.Decision]++
			} else {
				nd.invalid++
			}
		}
		record(n)
		for _, d := range ch.Taken {
			child, ok := n.children[d]
			if !ok {
				child = newNode(n.depth + 1)
				n.children[d] = child
			}
			n = child
			record(n)
		}
		n.leaf = true
		if out.Valid {
			res.Decisions[out.Decision]++
		} else {
			res.Violations++
		}

		if budget == 0 {
			return
		}
		for d := minIndex; d < int64(len(ch.Fanouts)); d++ {
			for choice := 0; choice < ch.Fanouts[d]; choice++ {
				if choice == ch.Taken[d] {
					continue
				}
				next := make(map[int64]int, len(switches)+1)
				for k, v := range switches {
					next[k] = v
				}
				next[d] = choice
				rec(next, d+1, budget-1)
				if res.Truncated {
					return
				}
			}
		}
	}
	rec(map[int64]int{}, 0, budget)
	res.classify(root)
	return res
}

// classify walks the trie computing the summary statistics.
func (res *Result) classify(root *node) {
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf && len(n.children) == 0 {
			return
		}
		res.Prefixes++
		if len(n.outcomes) >= 2 {
			res.Bivalent++
			if n.depth > res.MaxBivalentDepth {
				res.MaxBivalentDepth = n.depth
			}
			critical := true
			for _, ch := range n.children {
				if len(ch.outcomes) >= 2 {
					critical = false
					break
				}
			}
			if critical {
				res.Critical++
			}
		}
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(root)
}
