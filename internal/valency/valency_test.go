package valency_test

import (
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/unicons"
	"repro/internal/valency"
)

// fig3Scenario builds an n-process Fig. 3 consensus at quantum q.
func fig3Scenario(n, q int) valency.Scenario {
	return func(ch sim.Chooser) (*sim.System, func(error) valency.Outcome) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: q, Chooser: ch, MaxSteps: 1 << 16})
		obj := unicons.New("cons")
		outs := make([]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) { outs[i] = obj.Decide(c, mem.Word(i+1)) })
		}
		return sys, func(runErr error) valency.Outcome {
			if runErr != nil {
				return valency.Outcome{}
			}
			for _, o := range outs {
				if o != outs[0] || o == mem.Bottom {
					return valency.Outcome{}
				}
			}
			return valency.Outcome{Decision: outs[0], Valid: true}
		}
	}
}

// TestFig3ValencyStructure reproduces the valency-argument shape for a
// CORRECT algorithm: the initial state is bivalent (either proposal can
// win), critical states exist where the decision gets locked in, every
// leaf decides, and bivalence cannot persist to the end of the tree.
func TestFig3ValencyStructure(t *testing.T) {
	res := valency.Analyze(fig3Scenario(2, unicons.MinQuantum), 100000)
	if res.Truncated {
		t.Fatal("analysis truncated")
	}
	if res.Violations != 0 {
		t.Fatalf("correct algorithm shows %d violating leaves", res.Violations)
	}
	if len(res.Decisions) != 2 {
		t.Fatalf("expected both proposals decidable, got %v", res.Decisions)
	}
	if res.Bivalent == 0 {
		t.Fatal("initial state should be bivalent")
	}
	if res.Critical == 0 {
		t.Fatal("no critical states: the decision is never locked in?")
	}
	t.Logf("Fig. 3 Q=8: %s", res)
}

// TestFig3ValencyViolationsBelowQuantum shows the dual: below the
// quantum bound the (deviation-bounded) schedule tree contains
// violating leaves — the adversary need not even keep the run bivalent,
// it can break agreement outright. The full tree at Q=1 is far too
// large, so the analysis covers the ≤3-deviation subtree, which is
// where the earlier explorer found the disagreement.
func TestFig3ValencyViolationsBelowQuantum(t *testing.T) {
	res := valency.AnalyzeBudget(fig3Scenario(3, 1), 3, 100000)
	if res.Violations == 0 {
		t.Fatalf("no violations at Q=1: %s", res)
	}
	t.Logf("Fig. 3 Q=1 (budget 3): %s", res)
}

// exhaustionScenario is the Theorem 3/Fig. 6 engine: n processes on p
// processors invoke a single C-consensus object directly and return its
// response; with n > C some leaves must return ⊥ (violations).
func exhaustionScenario(n, p, c int) valency.Scenario {
	return func(ch sim.Chooser) (*sim.System, func(error) valency.Outcome) {
		sys := sim.New(sim.Config{Processors: p, Quantum: 1, Chooser: ch, MaxSteps: 1 << 14})
		obj := mem.NewConsObject("O", c)
		outs := make([]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: i % p, Priority: 1}).
				AddInvocation(func(cx *sim.Ctx) { outs[i] = cx.CCons(obj, mem.Word(i+1)) })
		}
		return sys, func(runErr error) valency.Outcome {
			if runErr != nil {
				return valency.Outcome{}
			}
			for _, o := range outs {
				if o != outs[0] || o == mem.Bottom {
					return valency.Outcome{}
				}
			}
			return valency.Outcome{Decision: outs[0], Valid: true}
		}
	}
}

// TestExhaustionValency reproduces the Fig. 6 situation: with more
// invokers than the consensus number, EVERY schedule ends in a
// violation (the late invoker always learns nothing), while with n ≤ C
// none does.
func TestExhaustionValency(t *testing.T) {
	bad := valency.Analyze(exhaustionScenario(3, 2, 2), 100000)
	if bad.Violations != bad.Leaves {
		t.Fatalf("n=3 > C=2: want all %d leaves violating, got %d", bad.Leaves, bad.Violations)
	}
	good := valency.Analyze(exhaustionScenario(2, 2, 2), 100000)
	if good.Violations != 0 {
		t.Fatalf("n=2 <= C=2: want no violations, got %d", good.Violations)
	}
	if len(good.Decisions) < 2 {
		t.Fatalf("n=2: both proposals should be reachable: %v", good.Decisions)
	}
	t.Logf("n>C: %s", bad)
	t.Logf("n<=C: %s", good)
}

// TestAnalyzeTruncation caps the enumeration.
func TestAnalyzeTruncation(t *testing.T) {
	res := valency.Analyze(fig3Scenario(3, unicons.MinQuantum), 10)
	if !res.Truncated || res.Leaves != 10 {
		t.Fatalf("leaves=%d truncated=%v, want 10/true", res.Leaves, res.Truncated)
	}
}

// TestResultString covers the renderer.
func TestResultString(t *testing.T) {
	res := valency.Analyze(fig3Scenario(2, unicons.MinQuantum), 100000)
	s := res.String()
	if s == "" {
		t.Fatal("empty summary")
	}
	fmt.Println("summary:", s)
}
