// Package mem provides the shared-memory substrate of the simulated
// multiprogrammed system: single-word atomic registers and C-consensus
// primitive objects, exactly as assumed by Anderson & Moir (PODC 1999).
//
// All values are single machine words (uint64). The paper's ⊥ ("bottom",
// no value) is represented by the reserved word Bottom. Registers and
// consensus objects must only be accessed through a sim.Ctx, which
// serializes accesses one atomic statement at a time; the Load/Store/
// Invoke methods here are therefore unsynchronized by design.
package mem

import "fmt"

// Word is the unit of shared storage. The paper packs whole records
// (e.g. Fig. 5's hdtype = (id, tag, last)) into one word; packages
// layering on mem do the same with bit fields.
type Word = uint64

// Bottom is the reserved word representing ⊥ (no value). No algorithm
// input value may equal Bottom; the paper makes the same assumption
// ("we assume no input value ... is ⊥").
const Bottom Word = ^Word(0)

// Reg is a single-word shared register supporting atomic read and write.
// The zero value is unusable; construct with NewReg or NewRegInit.
type Reg struct {
	name string
	id   uint64
	cell int
	v    Word
	init Word
}

// NewReg returns a register initialized to Bottom (⊥).
func NewReg(name string) *Reg {
	return NewRegInit(name, Bottom)
}

// NewRegInit returns a register initialized to v.
func NewRegInit(name string, v Word) *Reg {
	return &Reg{name: name, id: HashName(name), cell: -1, v: v, init: v}
}

// Name returns the register's diagnostic name.
func (r *Reg) Name() string { return r.name }

// Footprint returns the canonical footprint of one access of the given
// kind to this register.
func (r *Reg) Footprint(kind AccessKind) Footprint {
	return Footprint{Obj: r.id, Cell: r.cell, Kind: kind}
}

// StateHash returns this register's contribution to the memory-state
// fingerprint: 0 while the register holds its initial value, else a
// stable hash of (id, value). Because untouched objects contribute
// nothing, XOR-combining StateHash over any superset of the touched
// objects yields the same fingerprint for equal memory states,
// independent of access order.
func (r *Reg) StateHash() uint64 {
	if r.v == r.init {
		return 0
	}
	return Mix(r.id, r.v)
}

// Load returns the register's current value. It must only be called
// while holding the statement baton (i.e. from sim.Ctx) or after the
// simulation has completed.
func (r *Reg) Load() Word { return r.v }

// Store sets the register's value. The same access discipline as Load
// applies.
func (r *Reg) Store(v Word) { r.v = v }

// Reset restores the register to its initial value, for pooled reruns
// (sim.System.OnReset hooks). Must not be called mid-run.
func (r *Reg) Reset() { r.v = r.init }

// ResetRegs resets every register in a slice (NewRegArray layouts).
func ResetRegs(rs []*Reg) {
	for _, r := range rs {
		r.Reset()
	}
}

// NewRegArray allocates n registers named name[0..n-1], all ⊥.
func NewRegArray(name string, n int) []*Reg {
	return NewRegArrayInit(name, n, Bottom)
}

// NewRegArrayInit allocates n registers initialized to v.
func NewRegArrayInit(name string, n int, v Word) []*Reg {
	rs := make([]*Reg, n)
	for i := range rs {
		rs[i] = NewRegInit(fmt.Sprintf("%s[%d]", name, i), v)
		rs[i].cell = i
	}
	return rs
}

// NewRegMatrix allocates an n×m matrix of registers, all ⊥.
func NewRegMatrix(name string, n, m int) [][]*Reg {
	rows := make([][]*Reg, n)
	for i := range rows {
		rows[i] = make([]*Reg, m)
		for j := range rows[i] {
			rows[i][j] = NewReg(fmt.Sprintf("%s[%d][%d]", name, i, j))
			rows[i][j].cell = i*m + j
		}
	}
	return rows
}

// NewRegMatrixInit allocates an n×m matrix of registers initialized to v.
func NewRegMatrixInit(name string, n, m int, v Word) [][]*Reg {
	rows := make([][]*Reg, n)
	for i := range rows {
		rows[i] = make([]*Reg, m)
		for j := range rows[i] {
			rows[i][j] = NewRegInit(fmt.Sprintf("%s[%d][%d]", name, i, j), v)
			rows[i][j].cell = i*m + j
		}
	}
	return rows
}

// ConsObject is a primitive object with consensus number C, following
// the formal model of §4.1/Appendix A of the paper: the first invocation
// decides its proposed value; invocations 2..C return the decided value;
// every invocation after the C-th returns ⊥ ("no useful information").
// An invocation is a single atomic statement.
type ConsObject struct {
	name        string
	id          uint64
	cell        int
	c           int
	invocations int
	decided     Word
}

// NewConsObject returns a fresh C-consensus object. c must be ≥ 1.
func NewConsObject(name string, c int) *ConsObject {
	if c < 1 {
		panic(fmt.Sprintf("mem: consensus number must be >= 1, got %d", c))
	}
	return &ConsObject{name: name, id: HashName(name), cell: -1, c: c, decided: Bottom}
}

// Name returns the object's diagnostic name.
func (o *ConsObject) Name() string { return o.name }

// Footprint returns the canonical footprint of one invocation of this
// object. Invocations are read-modify-writes whose responses depend on
// order, so the kind is always AccessCons: no two invocations of the
// same object ever commute.
func (o *ConsObject) Footprint() Footprint {
	return Footprint{Obj: o.id, Cell: o.cell, Kind: AccessCons}
}

// StateHash returns this object's contribution to the memory-state
// fingerprint: 0 while never invoked, else a stable hash of (id,
// invocation count, decided value). See Reg.StateHash.
func (o *ConsObject) StateHash() uint64 {
	if o.invocations == 0 {
		return 0
	}
	return Mix(Mix(o.id, uint64(o.invocations)), o.decided)
}

// C returns the object's consensus number.
func (o *ConsObject) C() int { return o.c }

// Invocations returns how many times the object has been invoked.
func (o *ConsObject) Invocations() int { return o.invocations }

// Decided returns the decided value, or Bottom if never invoked.
func (o *ConsObject) Decided() Word { return o.decided }

// Invoke performs one invocation proposing v and returns the object's
// response under the paper's invocation-limit semantics. It must only be
// called while holding the statement baton (via sim.Ctx).
func (o *ConsObject) Invoke(v Word) Word {
	o.invocations++
	if o.invocations == 1 {
		o.decided = v
	}
	if o.invocations > o.c {
		return Bottom
	}
	return o.decided
}

// Reset restores the object to its never-invoked state, for pooled
// reruns (sim.System.OnReset hooks). Must not be called mid-run.
func (o *ConsObject) Reset() {
	o.invocations = 0
	o.decided = Bottom
}

// NewConsArray allocates n C-consensus objects named name[0..n-1].
func NewConsArray(name string, n, c int) []*ConsObject {
	os := make([]*ConsObject, n)
	for i := range os {
		os[i] = NewConsObject(fmt.Sprintf("%s[%d]", name, i), c)
		os[i].cell = i
	}
	return os
}
