package mem_test

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestRegInitialBottom(t *testing.T) {
	r := mem.NewReg("r")
	if r.Load() != mem.Bottom {
		t.Fatalf("fresh register = %d, want ⊥", r.Load())
	}
	if r.Name() != "r" {
		t.Fatalf("name = %q", r.Name())
	}
}

// TestRegStoreLoadRoundTrip: a register returns exactly what was stored.
func TestRegStoreLoadRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		r := mem.NewReg("r")
		r.Store(v)
		return r.Load() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRegLastWriteWins: after any store sequence, Load returns the last.
func TestRegLastWriteWins(t *testing.T) {
	f := func(vs []uint64) bool {
		if len(vs) == 0 {
			return true
		}
		r := mem.NewReg("r")
		for _, v := range vs {
			r.Store(v)
		}
		return r.Load() == vs[len(vs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegArrayNamesAndInit(t *testing.T) {
	rs := mem.NewRegArray("A", 3)
	if len(rs) != 3 {
		t.Fatalf("len = %d", len(rs))
	}
	if rs[1].Name() != "A[1]" {
		t.Fatalf("name = %q", rs[1].Name())
	}
	for _, r := range rs {
		if r.Load() != mem.Bottom {
			t.Fatal("array register not ⊥")
		}
	}
	rs2 := mem.NewRegArrayInit("B", 2, 7)
	if rs2[0].Load() != 7 || rs2[1].Load() != 7 {
		t.Fatal("init array wrong values")
	}
}

func TestRegMatrixShape(t *testing.T) {
	m := mem.NewRegMatrix("M", 2, 3)
	if len(m) != 2 || len(m[0]) != 3 {
		t.Fatalf("shape = %dx%d", len(m), len(m[0]))
	}
	if m[1][2].Name() != "M[1][2]" {
		t.Fatalf("name = %q", m[1][2].Name())
	}
	mi := mem.NewRegMatrixInit("N", 2, 2, 5)
	if mi[1][1].Load() != 5 {
		t.Fatal("matrix init wrong")
	}
}

// TestConsObjectSemantics checks the paper's C-consensus model: the
// first proposal is decided; invocations 2..C see it; invocations > C
// see ⊥ — for arbitrary C and proposal sequences.
func TestConsObjectSemantics(t *testing.T) {
	f := func(cRaw uint8, props []uint32) bool {
		c := int(cRaw%8) + 1
		o := mem.NewConsObject("o", c)
		if o.Decided() != mem.Bottom || o.C() != c {
			return false
		}
		for i, p := range props {
			got := o.Invoke(mem.Word(p))
			switch {
			case i >= c:
				if got != mem.Bottom {
					return false
				}
			case i == 0:
				if got != mem.Word(p) {
					return false
				}
			default:
				if got != mem.Word(props[0]) {
					return false
				}
			}
		}
		return o.Invocations() == len(props)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConsObjectPanicsOnBadC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for C=0")
		}
	}()
	mem.NewConsObject("bad", 0)
}

func TestConsArray(t *testing.T) {
	os := mem.NewConsArray("O", 4, 2)
	if len(os) != 4 {
		t.Fatalf("len = %d", len(os))
	}
	for _, o := range os {
		if o.C() != 2 {
			t.Fatal("wrong C")
		}
	}
	if os[2].Name() != "O[2]" {
		t.Fatalf("name = %q", os[2].Name())
	}
}

// TestCASObjectSemantics checks the baseline hardware-CAS word.
func TestCASObjectSemantics(t *testing.T) {
	f := func(init, old, new uint64) bool {
		o := mem.NewCASObject("c", init)
		ok := o.CompareAndSwap(old, new)
		if init == old {
			return ok && o.Load() == new
		}
		return !ok && o.Load() == init
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
