package mem

// CASObject is a hardware compare-and-swap word — a primitive with
// infinite consensus number in Herlihy's hierarchy. It exists only for
// the baseline comparators (e.g. the blocking lock): the paper's own
// algorithms use nothing stronger than registers and C-consensus
// objects. An invocation is one atomic statement.
type CASObject struct {
	name string
	v    Word
}

// NewCASObject returns a CAS word initialized to v.
func NewCASObject(name string, v Word) *CASObject {
	return &CASObject{name: name, v: v}
}

// Name returns the object's diagnostic name.
func (o *CASObject) Name() string { return o.name }

// Load returns the current value. Statement-baton discipline applies.
func (o *CASObject) Load() Word { return o.v }

// CompareAndSwap installs new if the value equals old, reporting whether
// it did. Statement-baton discipline applies (call via sim.Ctx).
func (o *CASObject) CompareAndSwap(old, new Word) bool {
	if o.v != old {
		return false
	}
	o.v = new
	return true
}
