package mem

// CASObject is a hardware compare-and-swap word — a primitive with
// infinite consensus number in Herlihy's hierarchy. It exists only for
// the baseline comparators (e.g. the blocking lock): the paper's own
// algorithms use nothing stronger than registers and C-consensus
// objects. An invocation is one atomic statement.
type CASObject struct {
	name string
	id   uint64
	v    Word
	init Word
}

// NewCASObject returns a CAS word initialized to v.
func NewCASObject(name string, v Word) *CASObject {
	return &CASObject{name: name, id: HashName(name), v: v, init: v}
}

// Name returns the object's diagnostic name.
func (o *CASObject) Name() string { return o.name }

// Footprint returns the canonical footprint of one access of the given
// kind to this object (AccessRead for Load, AccessCons for
// CompareAndSwap — a CAS is order-sensitive like a consensus
// invocation).
func (o *CASObject) Footprint(kind AccessKind) Footprint {
	return Footprint{Obj: o.id, Cell: -1, Kind: kind}
}

// StateHash returns this object's contribution to the memory-state
// fingerprint: 0 while at its initial value, else a stable hash of
// (id, value). See Reg.StateHash.
func (o *CASObject) StateHash() uint64 {
	if o.v == o.init {
		return 0
	}
	return Mix(o.id, o.v)
}

// Load returns the current value. Statement-baton discipline applies.
func (o *CASObject) Load() Word { return o.v }

// Reset restores the word to its initial value, for pooled reruns
// (sim.System.OnReset hooks). Must not be called mid-run.
func (o *CASObject) Reset() { o.v = o.init }

// CompareAndSwap installs new if the value equals old, reporting whether
// it did. Statement-baton discipline applies (call via sim.Ctx).
func (o *CASObject) CompareAndSwap(old, new Word) bool {
	if o.v != old {
		return false
	}
	o.v = new
	return true
}
