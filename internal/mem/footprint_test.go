package mem_test

import (
	"testing"

	"repro/internal/mem"
)

func TestFootprintCommutes(t *testing.T) {
	a := mem.HashName("A")
	b := mem.HashName("B")
	fp := func(obj uint64, cell int, kind mem.AccessKind) mem.Footprint {
		return mem.Footprint{Obj: obj, Cell: cell, Kind: kind}
	}
	cases := []struct {
		name string
		f, g mem.Footprint
		want bool
	}{
		{"zero-zero", mem.Footprint{}, mem.Footprint{}, true},
		{"zero-write", mem.Footprint{}, fp(a, -1, mem.AccessWrite), true},
		{"local-cons", fp(0, -1, mem.AccessLocal), fp(a, -1, mem.AccessCons), true},
		{"distinct-objects", fp(a, -1, mem.AccessWrite), fp(b, -1, mem.AccessWrite), true},
		{"distinct-cons", fp(a, -1, mem.AccessCons), fp(b, -1, mem.AccessCons), true},
		{"read-read", fp(a, -1, mem.AccessRead), fp(a, -1, mem.AccessRead), true},
		{"read-write", fp(a, -1, mem.AccessRead), fp(a, -1, mem.AccessWrite), false},
		{"write-write", fp(a, -1, mem.AccessWrite), fp(a, -1, mem.AccessWrite), false},
		{"cons-read", fp(a, -1, mem.AccessCons), fp(a, -1, mem.AccessRead), false},
		{"cons-write", fp(a, -1, mem.AccessCons), fp(a, -1, mem.AccessWrite), false},
		{"cons-cons", fp(a, -1, mem.AccessCons), fp(a, -1, mem.AccessCons), false},
	}
	for _, tc := range cases {
		if got := tc.f.Commutes(tc.g); got != tc.want {
			t.Errorf("%s: Commutes = %v, want %v", tc.name, got, tc.want)
		}
		// Commutation is symmetric by definition.
		if got := tc.g.Commutes(tc.f); got != tc.want {
			t.Errorf("%s (swapped): Commutes = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestHashNameStableAndDistinct(t *testing.T) {
	if mem.HashName("shared") != mem.HashName("shared") {
		t.Error("HashName not stable across calls")
	}
	if mem.HashName("a") == mem.HashName("b") {
		t.Error("HashName collides on distinct short names")
	}
	if mem.HashName("") == 0 || mem.HashName("a") == 0 {
		t.Error("HashName returned the reserved no-object id 0")
	}
}

func TestMixOrderSensitive(t *testing.T) {
	h := uint64(0x12345)
	ab := mem.Mix(mem.Mix(h, 1), 2)
	ba := mem.Mix(mem.Mix(h, 2), 1)
	if ab == ba {
		t.Error("Mix is order-insensitive; fingerprints would conflate distinct histories")
	}
	if mem.Mix(h, 1) == mem.Mix(h, 2) {
		t.Error("Mix ignores its value argument")
	}
}
