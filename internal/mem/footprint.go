package mem

// AccessKind classifies one atomic statement's shared-memory effect,
// the granularity at which the explorer reasons about commutation.
type AccessKind int

// Access kinds.
const (
	// AccessLocal is a counted local statement: no shared object.
	AccessLocal AccessKind = iota + 1
	// AccessRead is an atomic shared read.
	AccessRead
	// AccessWrite is an atomic shared write.
	AccessWrite
	// AccessCons is a consensus-object (or primitive CAS) invocation: a
	// read-modify-write whose response depends on invocation order.
	AccessCons
)

// String returns a short mnemonic for the access kind.
func (k AccessKind) String() string {
	switch k {
	case AccessLocal:
		return "local"
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessCons:
		return "cons"
	default:
		return "?"
	}
}

// Footprint is the canonical description of one atomic statement's
// shared-memory access: which object it touches (by stable id), the
// cell index within a named array (-1 for scalars), and how. Local
// statements carry the zero object id and AccessLocal.
type Footprint struct {
	// Obj is the object's canonical id (a stable hash of its name),
	// identical across runs of the same workload. 0 for local statements.
	Obj uint64
	// Cell is the index within a named array, -1 for scalar objects and
	// local statements.
	Cell int
	// Kind is the access kind.
	Kind AccessKind
}

// Commutes reports whether two statements with these footprints can be
// executed in either order with the same effect on shared memory:
// accesses to distinct objects always commute, two reads of the same
// object commute, and everything else conflicts. A consensus invocation
// never commutes with any access to the same object — the first
// invocation decides, so order is the whole semantics. The zero
// footprint (and AccessLocal) touches nothing and commutes with all.
func (f Footprint) Commutes(g Footprint) bool {
	if f.Obj == 0 || g.Obj == 0 {
		return true
	}
	if f.Obj != g.Obj {
		return true
	}
	return f.Kind == AccessRead && g.Kind == AccessRead
}

// fnv-1a, the stable object-name hash behind canonical object ids.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// HashName returns the canonical object id for a diagnostic name: a
// 64-bit FNV-1a hash, stable across runs, processes, and machines.
func HashName(name string) uint64 {
	h := fnvOffset
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	if h == 0 {
		h = fnvPrime // reserve 0 for "no object"
	}
	return h
}

// Mix folds v into h with the FNV-1a step, the single mixing primitive
// behind every fingerprint in the simulator. It is deliberately order
// sensitive; order-independent combinations XOR the mixed terms.
func Mix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}
