package check

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/sched"
	"repro/internal/sim"
)

// SwitchRec is one directed deviation of an ExploreBudget frontier
// item, in its serializable form.
type SwitchRec struct {
	// Decision is the decision index the deviation applies at.
	Decision int64 `json:"d"`
	// Choice is the candidate index taken there.
	Choice int `json:"c"`
}

// FrontierItem is one unexplored subtree of an interrupted exploration,
// in serializable form. Exactly one of the two shapes is populated:
// Prefix for ExploreAll subtrees, Switches/Budget/MinIndex for
// ExploreBudget subtrees.
type FrontierItem struct {
	// Prefix is the ExploreAll decision-vector prefix rooting the
	// subtree (the root schedule is prefix followed by implicit zeros).
	Prefix []int `json:"prefix,omitempty"`
	// Switches are the ExploreBudget deviations applied so far.
	Switches []SwitchRec `json:"switches,omitempty"`
	// Budget is the remaining deviation budget of the subtree.
	Budget int `json:"budget,omitempty"`
	// MinIndex is the first decision index at which further deviations
	// may be placed.
	MinIndex int64 `json:"min_index,omitempty"`
}

// Frontier is the checkpointable remainder of an interrupted
// exploration: a set of disjoint unexplored subtrees whose union,
// together with the schedules already executed, exactly covers the full
// schedule space. A Frontier exported by an interrupted run (see
// Options.ExportFrontier) can be fed back via Options.SeedFrontier to
// continue exactly where the exploration left off: the resumed leg
// executes precisely the schedules the interrupted leg did not, so
// summing Schedules and merging Violations across legs reproduces the
// uninterrupted exploration.
//
// Frontier export/seed is supported for the plain (ReductionNone)
// ExploreAll and ExploreBudget explorers: reduced explorations carry
// cross-run pruning state (sleep sets, the fingerprint cache) that a
// frontier snapshot cannot soundly capture, so the reduced paths ignore
// both options.
type Frontier struct {
	// Explorer identifies the explorer the frontier belongs to:
	// "all" (ExploreAll) or "budget" (ExploreBudget).
	Explorer string `json:"explorer"`
	// Budget echoes the ExploreBudget root budget (diagnostic only; each
	// item carries its own remaining budget).
	Budget int `json:"budget,omitempty"`
	// Items are the unexplored subtrees, in canonical schedule order.
	Items []FrontierItem `json:"items"`
	// Schedules echoes how many schedules the interrupted leg executed
	// before exporting (diagnostic only).
	Schedules int `json:"schedules"`
}

// Empty reports whether the frontier holds no pending work.
func (f *Frontier) Empty() bool { return f == nil || len(f.Items) == 0 }

// keyedFrontier pairs an exported item with its canonical schedule key
// so the Result's frontier is ordered deterministically (for a
// deterministic interruption point — e.g. MaxSchedules at
// Parallelism 1 — the exported frontier is then byte-identical
// run-to-run).
type keyedFrontier struct {
	key  schedKey
	item FrontierItem
}

// exportAll records one unexplored ExploreAll subtree.
func (c *collector) exportAll(item *prefixItem) {
	prefix := append([]int(nil), item.prefix...)
	key := make(schedKey, len(prefix))
	for i, d := range prefix {
		key[i] = int64(d)
	}
	c.exportItem(keyedFrontier{key: key, item: FrontierItem{Prefix: prefix}})
}

// exportBudget records one unexplored ExploreBudget subtree.
func (c *collector) exportBudget(item *budgetItem) {
	fi := FrontierItem{Budget: item.budget, MinIndex: item.minIndex}
	key := make(schedKey, 0, 2*len(item.switches))
	for _, sw := range item.switches {
		fi.Switches = append(fi.Switches, SwitchRec{Decision: sw.d, Choice: sw.choice})
		key = append(key, sw.d, int64(sw.choice))
	}
	c.exportItem(keyedFrontier{key: key, item: fi})
}

func (c *collector) exportItem(kf keyedFrontier) {
	c.mu.Lock()
	c.fronts = append(c.fronts, kf)
	c.mu.Unlock()
}

// frontierResult assembles the exported frontier in canonical order.
func (c *collector) frontierResult(explorer string, budget int) *Frontier {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Slice(c.fronts, func(i, j int) bool { return keyLess(c.fronts[i].key, c.fronts[j].key) })
	f := &Frontier{Explorer: explorer, Budget: budget, Schedules: int(c.counted.Load())}
	for _, kf := range c.fronts {
		f.Items = append(f.Items, kf.item)
	}
	return f
}

// checkSeed validates that a seeded frontier was exported by the
// explorer now consuming it (a frontier's items only make sense to the
// explorer whose subtree shape they encode).
func checkSeed(f *Frontier, explorer string) {
	if f != nil && f.Explorer != "" && f.Explorer != explorer {
		panic(fmt.Sprintf("check: SeedFrontier exported by the %q explorer fed to %q", f.Explorer, explorer))
	}
}

// seedItemsAll converts a seeded frontier back into ExploreAll work
// items (the zero frontier yields the root subtree).
func seedItemsAll(f *Frontier) []*prefixItem {
	if f == nil {
		return []*prefixItem{{}}
	}
	items := make([]*prefixItem, len(f.Items))
	for i, fi := range f.Items {
		items[i] = &prefixItem{prefix: fi.Prefix}
	}
	return items
}

// seedItemsBudget converts a seeded frontier back into ExploreBudget
// work items.
func seedItemsBudget(f *Frontier, budget int) []*budgetItem {
	if f == nil {
		return []*budgetItem{{budget: budget}}
	}
	items := make([]*budgetItem, len(f.Items))
	for i, fi := range f.Items {
		it := &budgetItem{budget: fi.Budget, minIndex: fi.MinIndex}
		for _, sw := range fi.Switches {
			it.switches = append(it.switches, switchPoint{d: sw.Decision, choice: sw.Choice})
		}
		items[i] = it
	}
	return items
}

// watchdog is one worker's per-run deadline state (nil when
// Options.RunDeadline is unset: every method is nil-receiver safe, so
// the plain path pays nothing).
type watchdog struct {
	wd       sched.Watchdog
	deadline time.Duration
}

func newWatchdog(opts Options) *watchdog {
	if opts.RunDeadline <= 0 {
		return nil
	}
	return &watchdog{deadline: opts.RunDeadline}
}

// arm wraps ch for one run attempt, starting the deadline clock.
func (g *watchdog) arm(ch sim.Chooser) sim.Chooser {
	if g == nil {
		return ch
	}
	//repro:allow walltime per-run watchdog deadline; a fired deadline is counted in TimedOutRuns, never replayed output
	start := time.Now()
	g.wd.Rearm(ch)
	g.wd.Stop = func() bool {
		//repro:allow walltime per-run watchdog deadline; a fired deadline is counted in TimedOutRuns, never replayed output
		return time.Since(start) > g.deadline
	}
	return &g.wd
}

// fired reports whether the last armed run was cut off.
func (g *watchdog) fired() bool { return g != nil && g.wd.Fired }

// Degradation ladder: when Options.MemSoftLimit is set, the collector
// polls the heap every ProgressEvery schedules and, while over the
// limit, takes one mitigation step per poll: first shed the fingerprint
// cache (reduced modes only — dropping entries only forgoes pruning,
// never soundness), then halve the number of workers allowed to claim
// new work, down to one. Each step is reported via Options.OnDegrade
// and recorded in Result.Degradations. Steps never affect verdicts;
// under reduction they can increase the schedule count (less pruning),
// and parked workers only shrink the live frontier footprint.

// memPressure polls the heap (called from count() at progress
// boundaries) and takes at most one degradation step.
func (c *collector) memPressure() {
	if c.memSoft == 0 {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc <= c.memSoft {
		return
	}
	c.mu.Lock()
	event := ""
	switch {
	case !c.cacheShed && c.cache != nil:
		c.cacheShed = true
		c.cache.shed()
		event = fmt.Sprintf("memory pressure: heap %dMB over soft limit %dMB; shed fingerprint cache", ms.HeapAlloc>>20, c.memSoft>>20)
	default:
		if n := c.allowed.Load(); n > 1 {
			c.allowed.Store((n + 1) / 2)
			event = fmt.Sprintf("memory pressure: heap %dMB over soft limit %dMB; stepped workers %d -> %d", ms.HeapAlloc>>20, c.memSoft>>20, n, (n+1)/2)
		} else if !c.degradeFloor {
			c.degradeFloor = true
			event = fmt.Sprintf("memory pressure: heap %dMB over soft limit %dMB with all mitigations applied; continuing at minimum", ms.HeapAlloc>>20, c.memSoft>>20)
		}
	}
	if event != "" {
		c.degradations = append(c.degradations, event)
		if c.opts.OnDegrade != nil {
			c.opts.OnDegrade(event)
		}
	}
	c.mu.Unlock()
	if event != "" {
		runtime.GC()
	}
}

// parked reports whether worker w has been parked by the degradation
// ladder: it must stop claiming new work (its queued items remain
// stealable). Worker 0 never parks, so the exploration always
// progresses.
func (c *collector) parked(w int) bool {
	return w > 0 && int32(w) >= c.allowed.Load()
}
