package check

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// This file implements Options.Measure, the "practically wait-free"
// measurement mode: across a fuzz sweep's replays it records the
// distribution of per-invocation own-statement counts
// (sim.Process.InvStmts) and reports empirical progress bounds — tail
// percentiles, the maximum observed invocation, and the starvation
// half-life of the tail. Wait-free constructions show a compact tail
// that respects their declared bound at every percentile; the
// lockcounter negative control shows a censored-dominated tail whose
// maximum tracks the step budget (unbounded-trending).
//
// Determinism under pooled parallel replay: each worker accumulates
// into a private histogram and merges it into the collector once, and
// merging is integer addition — commutative and associative — so the
// final histogram (and every statistic derived from it) is independent
// of worker count, scheduling, and merge order. The per-run samples
// themselves are replay-deterministic (the sim is a pure function of
// the decision sequence), so Measure at Parallelism 1 and 64 produce
// byte-identical ProgressStats.

// ProgressBucket is one histogram cell of a measured distribution:
// Count invocations completed in exactly Stmts own statements, and
// Censored invocations were still in flight at that count when their
// run ended.
type ProgressBucket struct {
	Stmts    int64 `json:"stmts"`
	Count    int64 `json:"count,omitempty"`
	Censored int64 `json:"censored,omitempty"`
}

// ProgressStats is the empirical progress-bound report of a measured
// exploration (Options.Measure).
//
// Percentiles are computed over the combined sample: completed
// invocations at their exact cost plus censored (in-flight at run end,
// non-crashed) invocations at their observed cost. A censored sample
// is a lower bound on its invocation's true cost, so every reported
// percentile is a lower bound on the true tail — conservative in
// exactly the direction that makes "the tail respects the declared
// bound" a meaningful claim. Crashed processes' in-flight statements
// are excluded, mirroring the WaitFreeBound property.
type ProgressStats struct {
	// Runs is the number of measured runs (executed schedules).
	Runs int64 `json:"runs"`
	// Samples is the number of completed invocations observed.
	Samples int64 `json:"samples"`
	// Censored is the number of in-flight invocations observed at run
	// end (excluding crashed processes). A large censored share is
	// itself a starvation signal: invocations that never finish.
	Censored int64 `json:"censored"`
	// P50/P90/P99/P999 are tail percentiles of per-invocation
	// own-statement cost over the combined sample.
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P99  int64 `json:"p99"`
	P999 int64 `json:"p999"`
	// Max is the worst observed invocation (completed or censored).
	Max int64 `json:"max"`
	// CensoredMax is the worst censored observation alone. When it
	// equals Max and tracks the run step budget, the workload is
	// starvation-bound, not just slow.
	CensoredMax int64 `json:"censored_max,omitempty"`
	// HalfLife estimates the tail decay rate: the number of additional
	// statements over which the survival probability halves, fitted
	// between P50 and P999 (0 when the tail is too compact or too small
	// to fit). Wait-free workloads have a half-life of a few
	// statements; a starving workload's half-life grows with the step
	// budget because probability mass piles up at the censoring point.
	HalfLife float64 `json:"half_life"`
	// Hist is the full distribution, ascending by Stmts — the raw data
	// behind the summary, exported so campaigns can re-aggregate.
	Hist []ProgressBucket `json:"hist,omitempty"`
}

// measureAcc is one worker's private histogram accumulator.
type measureAcc struct {
	completed map[int64]int64
	censored  map[int64]int64
	runs      int64
}

func newMeasureAcc() *measureAcc {
	return &measureAcc{completed: map[int64]int64{}, censored: map[int64]int64{}}
}

// observe folds one completed run's invocation samples in. Crashed
// processes' in-flight invocations are skipped; their completed
// invocations (pre-crash) still count.
func (a *measureAcc) observe(sys *sim.System) {
	a.runs++
	for _, p := range sys.Processes() {
		for _, n := range p.InvStmts() {
			a.completed[n]++
		}
		if !p.Crashed() {
			if n := p.InflightStmts(); n > 0 {
				a.censored[n]++
			}
		}
	}
}

// mergeMeasure folds a worker's accumulator into the collector's.
// Addition is commutative, so the merged histogram is independent of
// worker timing and merge order.
func (c *collector) mergeMeasure(a *measureAcc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.measure == nil {
		c.measure = newMeasureAcc()
	}
	c.measure.runs += a.runs
	//repro:allow maporder commutative addition into a map; merge order cannot reach output
	for k, v := range a.completed {
		c.measure.completed[k] += v
	}
	//repro:allow maporder commutative addition into a map; merge order cannot reach output
	for k, v := range a.censored {
		c.measure.censored[k] += v
	}
}

// stats reduces the merged histogram to the exported report.
func (a *measureAcc) stats() *ProgressStats {
	st := &ProgressStats{Runs: a.runs}
	values := map[int64]bool{}
	//repro:allow maporder commutative sum and set insertion; the value set is sorted before emission
	for k, v := range a.completed {
		st.Samples += v
		values[k] = true
	}
	//repro:allow maporder commutative sum, set insertion, and max; the value set is sorted before emission
	for k, v := range a.censored {
		st.Censored += v
		values[k] = true
		if k > st.CensoredMax {
			st.CensoredMax = k
		}
	}
	if len(values) == 0 {
		return st
	}
	keys := make([]int64, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	st.Hist = make([]ProgressBucket, 0, len(keys))
	for _, k := range keys {
		st.Hist = append(st.Hist, ProgressBucket{Stmts: k, Count: a.completed[k], Censored: a.censored[k]})
	}
	total := st.Samples + st.Censored
	st.Max = keys[len(keys)-1]
	quantile := func(q float64) int64 {
		want := int64(math.Ceil(q * float64(total)))
		if want < 1 {
			want = 1
		}
		var cum int64
		for _, b := range st.Hist {
			cum += b.Count + b.Censored
			if cum >= want {
				return b.Stmts
			}
		}
		return st.Max
	}
	st.P50 = quantile(0.50)
	st.P90 = quantile(0.90)
	st.P99 = quantile(0.99)
	st.P999 = quantile(0.999)
	// Survival-based half-life fit between P50 and P999: the span
	// divided by how many halvings the survival function undergoes
	// across it.
	surv := func(v int64) int64 {
		var n int64
		for _, b := range st.Hist {
			if b.Stmts > v {
				n += b.Count + b.Censored
			}
		}
		return n
	}
	s50, s999 := surv(st.P50), surv(st.P999)
	if st.P999 > st.P50 && s999 > 0 && s50 > s999 {
		st.HalfLife = float64(st.P999-st.P50) / math.Log2(float64(s50)/float64(s999))
	}
	return st
}
