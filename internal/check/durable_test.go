package check_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/sim"
)

// racyCounterBuilder is a 2-process racy read-modify-write counter with
// a lost-update bug reachable only under preemption — the standard
// workload for resume tests that must carry violations across legs.
func racyCounterBuilder(ch sim.Chooser) (*sim.System, check.Verify) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Chooser: ch, MaxSteps: 1 << 12})
	r := mem.NewReg("r")
	for i := 0; i < 2; i++ {
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				v := c.Read(r)
				if v == mem.Bottom {
					v = 0
				}
				c.Write(r, v+1)
			})
	}
	verify := func(runErr error) error {
		if runErr != nil {
			return runErr
		}
		if r.Load() != 2 {
			return fmt.Errorf("lost update: final=%d", r.Load())
		}
		return nil
	}
	return sys, verify
}

// resumeToCompletion repeatedly seeds the exported frontier back into
// leg until the frontier drains, JSON round-tripping it between legs to
// prove it survives serialization (the campaign checkpoint path).
// Returns the summed schedule and violation counts over all legs.
func resumeToCompletion(t *testing.T, leg func(f *check.Frontier) *check.Result) (schedules, violations int) {
	t.Helper()
	var f *check.Frontier
	for legs := 0; ; legs++ {
		if legs > 10000 {
			t.Fatal("resume did not converge")
		}
		res := leg(f)
		schedules += res.Schedules
		violations += res.ViolationsTotal
		if res.Frontier.Empty() {
			return schedules, violations
		}
		b, err := json.Marshal(res.Frontier)
		if err != nil {
			t.Fatalf("marshal frontier: %v", err)
		}
		f = new(check.Frontier)
		if err := json.Unmarshal(b, f); err != nil {
			t.Fatalf("unmarshal frontier: %v", err)
		}
	}
}

// TestFrontierResumeExploreAll: an ExploreAll interrupted every few
// schedules and resumed from its exported frontier executes, over all
// legs, exactly the schedules of the uninterrupted exploration.
func TestFrontierResumeExploreAll(t *testing.T) {
	build := twoProcBuilder(4, 1)
	full := check.ExploreAll(build, check.Options{Parallelism: 1})
	if full.Truncated || full.Schedules < 10 {
		t.Fatalf("baseline: schedules=%d truncated=%v", full.Schedules, full.Truncated)
	}
	legs := 0
	schedules, _ := resumeToCompletion(t, func(f *check.Frontier) *check.Result {
		legs++
		return check.ExploreAll(build, check.Options{
			Parallelism: 1, MaxSchedules: 5, ExportFrontier: true, SeedFrontier: f,
		})
	})
	if schedules != full.Schedules {
		t.Fatalf("resumed legs executed %d schedules, uninterrupted executed %d", schedules, full.Schedules)
	}
	if legs < 3 {
		t.Fatalf("only %d legs; the interruption never bit", legs)
	}
}

// TestFrontierResumeExploreBudget: same equivalence for the budgeted
// explorer, including the violation count — every lost update found by
// the uninterrupted exploration is found by exactly one leg.
func TestFrontierResumeExploreBudget(t *testing.T) {
	full := check.ExploreBudget(racyCounterBuilder, 2, check.Options{Parallelism: 1})
	if full.OK() {
		t.Fatal("baseline found no lost update")
	}
	legs := 0
	schedules, violations := resumeToCompletion(t, func(f *check.Frontier) *check.Result {
		legs++
		return check.ExploreBudget(racyCounterBuilder, 2, check.Options{
			Parallelism: 1, MaxSchedules: 3, ExportFrontier: true, SeedFrontier: f,
		})
	})
	if schedules != full.Schedules {
		t.Fatalf("resumed legs executed %d schedules, uninterrupted executed %d", schedules, full.Schedules)
	}
	if violations != full.ViolationsTotal {
		t.Fatalf("resumed legs found %d violations, uninterrupted found %d", violations, full.ViolationsTotal)
	}
	if legs < 2 {
		t.Fatalf("only %d legs; the interruption never bit", legs)
	}
}

// TestFrontierResumeParallel: a frontier exported by an interrupted
// parallel exploration (claim-failure and drain export paths) resumed
// in parallel still covers the space exactly: summed schedules match
// the uninterrupted count.
func TestFrontierResumeParallel(t *testing.T) {
	build := twoProcBuilder(4, 1)
	full := check.ExploreAll(build, check.Options{Parallelism: 1})
	schedules, _ := resumeToCompletion(t, func(f *check.Frontier) *check.Result {
		return check.ExploreAll(build, check.Options{
			Parallelism: 4, MaxSchedules: 10, ExportFrontier: true, SeedFrontier: f,
		})
	})
	if schedules != full.Schedules {
		t.Fatalf("parallel resumed legs executed %d schedules, uninterrupted executed %d", schedules, full.Schedules)
	}
}

// TestFrontierExportDeterministic: with a deterministic interruption
// point (MaxSchedules at Parallelism 1) the exported frontier is
// byte-identical run to run — the property campaign checkpoints build
// on.
func TestFrontierExportDeterministic(t *testing.T) {
	build := twoProcBuilder(4, 1)
	opts := check.Options{Parallelism: 1, MaxSchedules: 7, ExportFrontier: true}
	a := check.ExploreAll(build, opts)
	b := check.ExploreAll(build, opts)
	if a.Frontier.Empty() || b.Frontier.Empty() {
		t.Fatal("interrupted runs exported no frontier")
	}
	aj, _ := json.Marshal(a.Frontier)
	bj, _ := json.Marshal(b.Frontier)
	if string(aj) != string(bj) {
		t.Fatalf("frontier export not deterministic:\n%s\n%s", aj, bj)
	}
}

// TestFrontierCompleteRunExportsNothing: a run that finishes leaves no
// frontier.
func TestFrontierCompleteRunExportsNothing(t *testing.T) {
	res := check.ExploreAll(twoProcBuilder(3, 1), check.Options{Parallelism: 1, ExportFrontier: true})
	if !res.Frontier.Empty() {
		t.Fatalf("complete exploration exported %d frontier items", len(res.Frontier.Items))
	}
}

// TestFrontierSeedWrongExplorer: feeding a budget frontier to
// ExploreAll is a programming error and panics loudly instead of
// silently misreading the items.
func TestFrontierSeedWrongExplorer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on explorer mismatch")
		}
	}()
	check.ExploreAll(twoProcBuilder(1, 1), check.Options{
		SeedFrontier: &check.Frontier{Explorer: "budget"},
	})
}

// TestRunDeadlineSkipsStuckRuns: under an immediately-expired deadline
// every run is cut off, retried once, then counted in TimedOutRuns —
// the exploration returns instead of hanging.
func TestRunDeadlineSkipsStuckRuns(t *testing.T) {
	// 2×200 statements at quantum 1: hundreds of decisions per run, so
	// the watchdog's default check interval is crossed many times.
	build := twoProcBuilder(200, 1)
	res := check.ExploreAll(build, check.Options{Parallelism: 1, RunDeadline: time.Nanosecond})
	if res.TimedOutRuns != 1 || res.Schedules != 1 {
		t.Fatalf("TimedOutRuns=%d Schedules=%d, want 1/1 (root run times out, subtree skipped)",
			res.TimedOutRuns, res.Schedules)
	}
	if !res.OK() {
		t.Fatalf("timed-out run recorded a violation: %+v", res.First())
	}
}

// TestRunDeadlineFuzz: each fuzz seed under an expired deadline is a
// counted timeout, and all seeds are still visited.
func TestRunDeadlineFuzz(t *testing.T) {
	build := twoProcBuilder(200, 1)
	res := check.Fuzz(build, 5, check.Options{Parallelism: 1, RunDeadline: time.Nanosecond})
	if res.TimedOutRuns != 5 || res.Schedules != 5 {
		t.Fatalf("TimedOutRuns=%d Schedules=%d, want 5/5", res.TimedOutRuns, res.Schedules)
	}
}

// TestRunDeadlineReduced: the reduced explorer honors the deadline too.
func TestRunDeadlineReduced(t *testing.T) {
	build := twoProcBuilder(200, 1)
	res := check.ExploreAll(build, check.Options{
		Parallelism: 1, RunDeadline: time.Nanosecond, Reduction: check.ReductionFull,
	})
	if res.TimedOutRuns == 0 {
		t.Fatal("reduced exploration ignored RunDeadline")
	}
}

// TestRunDeadlineGenerous: a deadline no run approaches changes
// nothing: same schedule count, zero timeouts.
func TestRunDeadlineGenerous(t *testing.T) {
	build := twoProcBuilder(3, 1)
	plain := check.ExploreAll(build, check.Options{Parallelism: 1})
	res := check.ExploreAll(build, check.Options{Parallelism: 1, RunDeadline: time.Hour})
	if res.TimedOutRuns != 0 {
		t.Fatalf("TimedOutRuns=%d under a generous deadline", res.TimedOutRuns)
	}
	if res.Schedules != plain.Schedules {
		t.Fatalf("deadline changed coverage: %d vs %d schedules", res.Schedules, plain.Schedules)
	}
}

// TestMemSoftLimitParksWorkers: an unreachable soft limit walks the
// degradation ladder — workers step down to one, then a single floor
// event — while the exploration still covers every schedule (parked
// workers' queues are stolen by the survivors).
func TestMemSoftLimitParksWorkers(t *testing.T) {
	build := twoProcBuilder(4, 1)
	baseline := check.ExploreAll(build, check.Options{Parallelism: 1})
	events := 0
	res := check.ExploreAll(build, check.Options{
		Parallelism:   4,
		MemSoftLimit:  1, // 1 byte: always over
		ProgressEvery: 1,
		OnDegrade:     func(string) { events++ },
	})
	if res.Schedules != baseline.Schedules {
		t.Fatalf("degraded exploration covered %d schedules, baseline %d", res.Schedules, baseline.Schedules)
	}
	if len(res.Degradations) != 3 || events != 3 {
		t.Fatalf("degradations=%d OnDegrade calls=%d, want 3 (4->2, 2->1, floor):\n%s",
			len(res.Degradations), events, strings.Join(res.Degradations, "\n"))
	}
	if !strings.Contains(res.Degradations[0], "stepped workers 4 -> 2") ||
		!strings.Contains(res.Degradations[1], "stepped workers 2 -> 1") ||
		!strings.Contains(res.Degradations[2], "minimum") {
		t.Fatalf("unexpected ladder:\n%s", strings.Join(res.Degradations, "\n"))
	}
}

// TestMemSoftLimitShedsCache: with a fingerprint cache active the first
// ladder step sheds it (and says so), before any workers are parked.
func TestMemSoftLimitShedsCache(t *testing.T) {
	res := check.ExploreBudget(racyCounterBuilder, 2, check.Options{
		Parallelism:   1,
		Reduction:     check.ReductionFingerprint,
		MemSoftLimit:  1,
		ProgressEvery: 1,
	})
	if len(res.Degradations) == 0 || !strings.Contains(res.Degradations[0], "shed fingerprint cache") {
		t.Fatalf("first degradation step should shed the cache:\n%s", strings.Join(res.Degradations, "\n"))
	}
	if res.OK() {
		t.Fatal("degraded exploration lost the planted violation")
	}
}

// TestNoMemLimitNoDegradations: the ladder is inert unless asked for.
func TestNoMemLimitNoDegradations(t *testing.T) {
	res := check.ExploreAll(twoProcBuilder(3, 1), check.Options{Parallelism: 2, ProgressEvery: 1})
	if len(res.Degradations) != 0 {
		t.Fatalf("unexpected degradations: %v", res.Degradations)
	}
}
