package check

import (
	"fmt"
	"sync"

	"repro/internal/artifact"
	"repro/internal/minimize"
	"repro/internal/sched"
	"repro/internal/sim"
)

// BuilderFor adapts a registered artifact workload to a check.Builder,
// the glue between exploration and forensics: exploring with the
// returned builder while passing the same meta as Options.ArtifactMeta
// guarantees every recorded violation replays — and shrinks — through
// internal/artifact exactly as it was found. The returned builder is
// reentrant (all run state is created per call), so any Parallelism is
// safe.
func BuilderFor(meta artifact.Meta) (Builder, error) {
	if !artifact.Known(meta.Workload) {
		return nil, fmt.Errorf("check: unknown workload %q (have %v)", meta.Workload, artifact.Workloads())
	}
	return func(ch sim.Chooser) (*sim.System, Verify) {
		var cr *sched.Crash
		if len(meta.Crashes) > 0 {
			cr = sched.NewCrash(ch, meta.Crashes...)
			ch = cr
		}
		sys, verify, err := artifact.Build(meta, ch, nil)
		if err != nil {
			// Unreachable: the workload was validated above.
			panic(err)
		}
		if cr != nil && sys.Reusable() {
			// The crash plan must rearm on every pooled rerun. Gated on
			// Reusable: OnReset itself marks a system reusable, and a
			// workload without its own reset hooks must not be pooled.
			sys.OnReset(cr.Reset)
		}
		return sys, Verify(verify)
	}, nil
}

// forensics is the post-exploration pass over the final violation list:
// each violation's decision vector is re-executed through
// internal/artifact and the resulting repro bundle attached, minimized
// first when Options.Minimize is set. The pass runs after the merge on
// the already-canonical list and each violation is processed
// independently with a deterministic shrinker, so the outcome is
// byte-identical regardless of Parallelism or worker timing; the fan-out
// only changes wall-clock time.
func (c *collector) forensics(res *Result) {
	if c.opts.ArtifactMeta == nil || len(res.Violations) == 0 {
		return
	}
	meta := *c.opts.ArtifactMeta
	if meta.WaitFreeBound == 0 {
		meta.WaitFreeBound = c.opts.WaitFreeBound
	}

	sem := make(chan struct{}, c.opts.parallelism())
	var wg sync.WaitGroup
	for i := range res.Violations {
		v := &res.Violations[i]
		if v.Decisions == nil {
			// The run panicked (no reliable decision vector) or a
			// non-recording path produced it; nothing to replay.
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		//repro:allow goroutine sanctioned forensics pool; each worker owns one violation slot, so the merged result is order-independent
		go func() {
			defer func() { <-sem; wg.Done() }()
			c.forensicsOne(meta, v)
		}()
	}
	wg.Wait()
}

// forensicsOne captures (and optionally minimizes) one violation's repro
// bundle. The bundle always comes from a fresh execution; a replay that
// no longer fails means the builder is not the workload ArtifactMeta
// declared, which is reported on the violation rather than attaching a
// bundle that lies.
func (c *collector) forensicsOne(meta artifact.Meta, v *Violation) {
	b, rep, err := artifact.Capture(meta, artifact.Sched{Decisions: v.Decisions})
	if err != nil {
		v.ForensicsErr = err
		return
	}
	if rep.Err == nil {
		v.ForensicsErr = fmt.Errorf("check: artifact replay of decisions %v passed; builder is not the declared %q workload",
			v.Decisions, meta.Workload)
		return
	}
	v.Artifact = b
	if !c.opts.Minimize {
		return
	}
	min, stats, err := minimize.Shrink(b, minimize.Options{Budget: c.opts.ShrinkBudget})
	if err != nil {
		v.ForensicsErr = err
		return
	}
	v.Artifact, v.Shrink = min, stats
}
