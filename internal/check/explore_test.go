package check_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/sim"
)

// twoProcBuilder: two single-invocation processes each executing `stmts`
// local statements; verify always passes.
func twoProcBuilder(stmts, quantum int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: quantum, Chooser: ch})
		for i := 0; i < 2; i++ {
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) { c.Local(stmts) })
		}
		return sys, func(runErr error) error { return runErr }
	}
}

// TestExploreAllCountsSchedules pins the full-tree schedule count for a
// tiny analyzable case: 2 processes × 1 statement each on one level,
// quantum 1. Decisions: who starts (2 ways); after its single-statement
// invocation ends, the other runs — 2 schedules.
func TestExploreAllCountsSchedules(t *testing.T) {
	res := check.ExploreAll(twoProcBuilder(1, 1), check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
	if res.Schedules != 2 {
		t.Fatalf("schedules = %d, want 2", res.Schedules)
	}
}

// TestExploreAllGrowsWithStatements: more statements → more preemption
// points → more schedules, and all are explored without truncation.
func TestExploreAllGrowsWithStatements(t *testing.T) {
	prev := 0
	for _, stmts := range []int{1, 2, 3} {
		res := check.ExploreAll(twoProcBuilder(stmts, 1), check.Options{MaxSchedules: 100000})
		if res.Truncated {
			t.Fatalf("stmts=%d truncated", stmts)
		}
		if res.Schedules <= prev {
			t.Fatalf("stmts=%d: schedules %d did not grow from %d", stmts, res.Schedules, prev)
		}
		prev = res.Schedules
	}
}

// TestExploreBudgetZeroIsSingleRun: budget 0 runs exactly the default
// schedule.
func TestExploreBudgetZeroIsSingleRun(t *testing.T) {
	res := check.ExploreBudget(twoProcBuilder(4, 2), 0, check.Options{})
	if res.Schedules != 1 {
		t.Fatalf("schedules = %d, want 1", res.Schedules)
	}
}

// TestExploreBudgetMonotone: a larger budget explores at least as many
// schedules.
func TestExploreBudgetMonotone(t *testing.T) {
	prev := 0
	for budget := 0; budget <= 3; budget++ {
		res := check.ExploreBudget(twoProcBuilder(4, 2), budget, check.Options{MaxSchedules: 100000})
		if res.Schedules < prev {
			t.Fatalf("budget %d explored %d < %d", budget, res.Schedules, prev)
		}
		prev = res.Schedules
	}
	if prev < 10 {
		t.Fatalf("budget 3 explored only %d schedules", prev)
	}
}

// TestExploreFindsPlantedBug: a violation reachable only via a specific
// preemption must be found by the budgeted explorer but not by the
// default schedule.
func TestExploreFindsPlantedBug(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: ch, MaxSteps: 1 << 12})
		r := mem.NewReg("r")
		bad := false
		// Process 0 writes 1 then 2; process 1 reads twice. The "bug"
		// fires iff process 1 observes the intermediate value 1.
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				c.Write(r, 1)
				c.Write(r, 2)
			})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				if c.Read(r) == 1 {
					bad = true
				}
				c.Read(r)
			})
		verify := func(runErr error) error {
			if runErr != nil {
				return runErr
			}
			if bad {
				return errors.New("intermediate state observed")
			}
			return nil
		}
		return sys, verify
	}
	if res := check.ExploreBudget(build, 0, check.Options{}); !res.OK() {
		t.Fatal("default schedule should not hit the planted bug")
	}
	res := check.ExploreBudget(build, 1, check.Options{})
	if res.OK() {
		t.Fatalf("budget-1 exploration missed the planted bug (%d schedules)", res.Schedules)
	}
}

// TestStopAtFirst stops exploration at the first violation. Parallelism
// is pinned to 1: the exact executed-schedule count under StopAtFirst is
// a sequential-engine guarantee (parallel workers stop cooperatively but
// may have started further runs; see
// TestParallelStopAtFirstFindsViolation).
func TestStopAtFirst(t *testing.T) {
	calls := 0
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: ch})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(3) })
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(3) })
		calls++
		return sys, func(error) error { return errors.New("always fails") }
	}
	res := check.Fuzz(build, 50, check.Options{StopAtFirst: true, Parallelism: 1})
	if res.OK() || calls != 1 {
		t.Fatalf("calls = %d, want 1 (stop at first)", calls)
	}
	if res.ViolationsTotal != 1 {
		t.Fatalf("ViolationsTotal = %d, want 1", res.ViolationsTotal)
	}
}

// TestMaxViolationsCap caps recorded violations without stopping.
func TestMaxViolationsCap(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: ch})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(1) })
		return sys, func(error) error { return errors.New("fails") }
	}
	res := check.Fuzz(build, 30, check.Options{MaxViolations: 4})
	if res.Schedules != 30 {
		t.Fatalf("schedules = %d, want 30", res.Schedules)
	}
	if len(res.Violations) != 4 {
		t.Fatalf("violations recorded = %d, want 4", len(res.Violations))
	}
	if res.ViolationsTotal != 30 {
		t.Fatalf("ViolationsTotal = %d, want 30 (cap must not hide the count)", res.ViolationsTotal)
	}
	// The canonical merge must keep the first seeds, not arbitrary ones.
	for i, v := range res.Violations {
		if want := fmt.Sprintf("seed=%d", i); v.Schedule != want {
			t.Fatalf("violation %d schedule = %q, want %q", i, v.Schedule, want)
		}
	}
}

// TestMaxSchedulesTruncates caps the exploration.
func TestMaxSchedulesTruncates(t *testing.T) {
	res := check.ExploreAll(twoProcBuilder(6, 1), check.Options{MaxSchedules: 10})
	if !res.Truncated || res.Schedules != 10 {
		t.Fatalf("schedules=%d truncated=%v, want 10/true", res.Schedules, res.Truncated)
	}
}

// TestViolationSchedulesReplayable: a reported budgeted-exploration
// violation names its switch placements, which rebuilt with the same
// builder reproduce the violation.
func TestViolationSchedulesReplayable(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Chooser: ch, MaxSteps: 1 << 12})
		r := mem.NewReg("r")
		outs := make([]mem.Word, 2)
		for i := 0; i < 2; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) {
					// Racy read-modify-write.
					v := c.Read(r)
					if v == mem.Bottom {
						v = 0
					}
					c.Write(r, v+1)
					outs[i] = v + 1
				})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return runErr
			}
			if r.Load() != 2 {
				return fmt.Errorf("lost update: final=%d", r.Load())
			}
			return nil
		}
		return sys, verify
	}
	res := check.ExploreBudget(build, 1, check.Options{StopAtFirst: true})
	if res.OK() {
		t.Fatal("lost update not found")
	}
	if res.First().Schedule == "" {
		t.Fatal("violation lacks schedule description")
	}
}
