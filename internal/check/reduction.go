package check

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Reduction selects which exploration reductions are active. Both
// reductions preserve verdicts: a reduced exploration that runs to
// completion reports a violation if and only if the plain exploration
// does (see DESIGN.md §10 for the soundness argument). They do not
// preserve violation counts — equivalent interleavings of the same bug
// collapse into one representative — so ViolationsTotal under reduction
// is a lower bound on the plain count.
type Reduction int

const (
	// ReductionNone preserves the historical plain enumeration exactly.
	ReductionNone Reduction = iota
	// ReductionSleepSet enables sleep-set partial-order reduction in
	// ExploreAll: sibling branches whose next statements commute with
	// everything executed since are never spawned. ExploreBudget ignores
	// it (its schedules are identified by switch words, not decision
	// prefixes).
	ReductionSleepSet
	// ReductionFingerprint enables visited-state fingerprint pruning in
	// ExploreAll and ExploreBudget: a run reaching a state a canonically
	// earlier run already covered with at least the same freedom aborts.
	ReductionFingerprint
	// ReductionFull enables both.
	ReductionFull
)

func (r Reduction) sleepSets() bool {
	return r == ReductionSleepSet || r == ReductionFull
}

func (r Reduction) fingerprints() bool {
	return r == ReductionFingerprint || r == ReductionFull
}

// String implements fmt.Stringer (and the flag.Value convention used by
// cmd/checker).
func (r Reduction) String() string {
	switch r {
	case ReductionNone:
		return "none"
	case ReductionSleepSet:
		return "sleepset"
	case ReductionFingerprint:
		return "fingerprint"
	case ReductionFull:
		return "full"
	default:
		return fmt.Sprintf("Reduction(%d)", int(r))
	}
}

// ParseReduction parses the CLI spelling of a Reduction.
func ParseReduction(s string) (Reduction, error) {
	switch s {
	case "none":
		return ReductionNone, nil
	case "sleepset":
		return ReductionSleepSet, nil
	case "fingerprint":
		return ReductionFingerprint, nil
	case "full":
		return ReductionFull, nil
	default:
		return ReductionNone, fmt.Errorf("check: unknown reduction %q (want none, sleepset, fingerprint, or full)", s)
	}
}

// ReductionStats reports what the reductions did during one exploration.
type ReductionStats struct {
	// Mode is the Reduction the exploration ran with.
	Mode string
	// SleepDeadlockRuns counts runs aborted mid-schedule because every
	// enabled candidate was asleep (sched.Reduced.SleepDeadlock): the
	// whole continuation was covered by earlier sibling subtrees. This
	// was misleadingly reported as sleep_pruned_runs before bench
	// schema v3; virtually all sleep-set savings are skipped branches
	// (SleepSkippedBranches), and 0 here is the expected value: a
	// deadlock needs EVERY candidate asleep, but the process granted
	// the preceding statement is never asleep (running a process wakes
	// its own entries, and branches are only spawned to awake
	// candidates), so as long as it stays enabled there is an awake
	// candidate, and when it departs — invocation end, completion,
	// crash — the access is globally dependent and wakes everyone. Only
	// a workload whose running process blocks mid-invocation without a
	// globally-dependent access could trigger it; no registered
	// workload does.
	SleepDeadlockRuns int
	// SleepSkippedBranches counts subtree children never spawned because
	// the branch candidate was asleep at its decision point.
	SleepSkippedBranches int64
	// FingerprintPrunedRuns counts runs aborted on reaching a state a
	// canonically earlier visit already covered.
	FingerprintPrunedRuns int
	// CacheHits counts fingerprint-cache lookups that found an entry
	// (whether or not the entry justified pruning).
	CacheHits int64
	// CacheEntries is the number of cache entries live at the end.
	CacheEntries int
	// CacheEvictions counts FIFO evictions forced by
	// Options.ReductionCache. Evictions only reduce pruning, never
	// soundness.
	CacheEvictions int64
}

// unboundedBudget is the deviation budget reported for ExploreAll
// subtrees, which may deviate at every remaining decision.
const unboundedBudget = math.MaxInt

// fpEntry is one visited-state record: the canonical identity of the
// visit (its taken-decision vector), the sleep set it ran under, and the
// deviation budget it had. A later visit of the same state may be pruned
// only if this visit is strictly more canonical, explored at least as
// freely (superset budget, subset sleep), and is not simply the same
// run's own earlier pass through a default-continuation cycle.
type fpEntry struct {
	key    []int
	sleep  []sched.SleepEntry
	budget int
}

// fpCache is the bounded visited-fingerprint cache shared by all
// workers of one exploration. Eviction is FIFO by insertion order:
// deterministic, and sound because dropping an entry only forgoes
// pruning. With Parallelism > 1 the insert/lookup interleaving across
// workers is timing-dependent, so reduced-mode schedule counts (never
// verdicts) can vary run-to-run; Parallelism: 1 restores byte-identical
// counts.
type fpCache struct {
	mu sync.Mutex
	// noLock elides the mutex on the single-worker path (Parallelism
	// 1), where visit() is on the per-decision hot loop and even an
	// uncontended lock pair is measurable.
	noLock    bool
	capacity  int
	entries   map[uint64]fpEntry
	order     []uint64 // FIFO insertion ring
	head      int
	hits      int64
	evictions int64
	// keyChunk is the current slab for entry key copies: keys are
	// immutable once inserted (the replace path reuses the entry's own
	// slice), so carving them out of shared chunks cuts one heap object
	// per visited state to 1/keyChunkSize amortized. FIFO eviction
	// retires keys in roughly insertion order, so dead keys cluster in
	// the oldest chunks and a chunk is collected once its window of
	// entries has been evicted.
	keyChunk []int
}

const keyChunkSize = 4096

func newFPCache(capacity int) *fpCache {
	// The map is NOT pre-sized to capacity: the default cap is 2^20
	// entries, and clearing that many empty buckets up front costs more
	// than entire small explorations (it was 75% of reduced-mode CPU on
	// the bench workload). capacity only bounds eviction; the map grows
	// to fit actual use.
	hint := capacity / 4
	if hint > 1024 {
		hint = 1024
	}
	return &fpCache{
		capacity: capacity,
		entries:  make(map[uint64]fpEntry, hint),
	}
}

// putKey copies key into the current chunk, returning a stable
// full-capacity subslice.
func (c *fpCache) putKey(key []int) []int {
	if len(c.keyChunk)+len(key) > cap(c.keyChunk) {
		n := keyChunkSize
		if len(key) > n {
			n = len(key)
		}
		c.keyChunk = make([]int, 0, n)
	}
	ks := len(c.keyChunk)
	c.keyChunk = append(c.keyChunk, key...)
	return c.keyChunk[ks:len(c.keyChunk):len(c.keyChunk)]
}

// compareKey orders taken-decision vectors lexicographically with a
// proper prefix before its extensions — a well-founded total order on
// visits, which the pruning induction needs.
func compareKey(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// isPrefix reports whether a is a proper prefix of b.
func isPrefix(a, b []int) bool {
	if len(a) >= len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sleepSubset reports whether every entry of a is present in b.
func sleepSubset(a, b []sched.SleepEntry) bool {
	for _, e := range a {
		found := false
		for _, f := range b {
			if e == f {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// visit records or consults the cache for state fingerprint fp reached
// by the run identified by taken, and reports whether the run may be
// pruned here. taken and sleep are only valid during the call (they are
// copied on insert).
//
// The rules, each load-bearing for soundness:
//
//   - miss: insert, never prune — the current run claims the state.
//   - hit with an entry whose key is a proper prefix of taken: the
//     run's own earlier pass (a default-continuation cycle); pruning
//     would cut deviations past this point that nobody else generates,
//     so the run continues (and, like the plain explorer, terminates
//     via MaxSteps if the cycle is real).
//   - hit with a strictly smaller key: the earlier visitor's subtree
//     covers ours if its budget was at least ours and its sleep set at
//     most ours; then prune. Induction over the well-founded key order
//     bottoms out at the minimal visitor, which is never pruned.
//   - hit with a strictly larger key: the current run is the more
//     canonical visitor; it replaces the entry and continues.
func (c *fpCache) visit(fp uint64, taken []int, sleep []sched.SleepEntry, budget int) bool {
	if !c.noLock {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	e, ok := c.entries[fp]
	if !ok {
		c.insert(fp, taken, sleep, budget)
		return false
	}
	c.hits++
	switch cmp := compareKey(e.key, taken); {
	case cmp == 0:
		return false
	case cmp < 0:
		if isPrefix(e.key, taken) {
			return false
		}
		return e.budget >= budget && sleepSubset(e.sleep, sleep)
	default:
		// The current run is the more canonical visitor: replace the
		// entry in place, reusing its slices (they belong to this entry
		// alone, so truncate-and-append cannot alias another visitor).
		e.key = append(e.key[:0], taken...)
		e.sleep = append(e.sleep[:0], sleep...)
		e.budget = budget
		c.entries[fp] = e
		return false
	}
}

func (c *fpCache) insert(fp uint64, taken []int, sleep []sched.SleepEntry, budget int) {
	if len(c.entries) >= c.capacity {
		victim := c.order[c.head]
		c.order[c.head] = fp
		c.head = (c.head + 1) % len(c.order)
		delete(c.entries, victim)
		c.evictions++
	} else {
		c.order = append(c.order, fp)
	}
	var sleepCopy []sched.SleepEntry
	if len(sleep) > 0 {
		sleepCopy = append(sleepCopy, sleep...)
	}
	c.entries[fp] = fpEntry{
		key:    c.putKey(taken),
		sleep:  sleepCopy,
		budget: budget,
	}
}

// shed empties the cache under memory pressure (the collector's
// degradation ladder). Sound for the same reason FIFO eviction is:
// dropping entries only forgoes pruning, so later runs re-execute work
// instead of being cut off — verdicts are unaffected. The noLock fast
// path is safe here too: at Parallelism 1 shed runs on the single
// exploring goroutine, between runs.
func (c *fpCache) shed() {
	if !c.noLock {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.entries = make(map[uint64]fpEntry, 64)
	c.order = nil
	c.head = 0
	c.keyChunk = nil
}

func (c *fpCache) stats() (hits, evictions int64, entries int) {
	if !c.noLock {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.hits, c.evictions, len(c.entries)
}

// pruneFunc adapts the cache to the chooser-side sched.PruneFunc
// contract: the state key folds the chooser's private steering state
// (PruneInfo.Extra) into the system fingerprint, since two states equal
// in the system but steered differently have different futures.
func (c *fpCache) pruneFunc() sched.PruneFunc {
	return func(info sched.PruneInfo) bool {
		fp := mem.Mix(info.Decision.Sys.Fingerprint(), info.Extra)
		return c.visit(fp, info.Taken, info.Sleep, info.Budget)
	}
}

// redItem identifies one reduced-ExploreAll subtree: the decision prefix
// and the sleep set in effect immediately after its branch decision.
type redItem struct {
	prefix []int
	sleep  []sched.SleepEntry
}

// exploreAllReduced is ExploreAll with reductions active. The schedule
// tree is partitioned into decision-prefix subtrees exactly as in the
// plain explorer; reductions only remove work: asleep branches are never
// spawned, all-asleep and revisited-state runs abort early, and an
// aborted run still seeds its children for the decisions it completed.
func exploreAllReduced(build Builder, opts Options) *Result {
	c := newCollector(opts)
	var cache *fpCache
	if opts.Reduction.fingerprints() {
		cache = newFPCache(opts.reductionCache())
		cache.noLock = opts.parallelism() == 1
		c.cache = cache
	}
	explore(c, []*redItem{{}}, opts.parallelism(), nil, func() func(*redItem, func(*redItem)) {
		w := &redWorker{
			c:    c,
			r:    newRunner(build),
			ch:   &sched.Reduced{SleepSets: opts.Reduction.sleepSets(), Budget: unboundedBudget},
			mode: opts.Reduction,
			dog:  newWatchdog(opts),
		}
		if cache != nil {
			w.ch.Prune = cache.pruneFunc()
		}
		return w.process
	})
	res := c.result()
	res.Reduction = c.reductionStats(opts.Reduction, cache)
	return res
}

// redWorker is one reduced-ExploreAll worker's pooled state: the system
// runner and the reduced chooser (whose snapshot arenas are reused
// across every schedule the worker executes).
type redWorker struct {
	c    *collector
	r    *runner
	ch   *sched.Reduced
	mode Reduction
	dog  *watchdog
}

func (w *redWorker) process(item *redItem, push func(*redItem)) {
	c := w.c
	if !c.claim() {
		return
	}
	ch := w.ch
	describe := func() string { return fmt.Sprintf("decisions=%v", item.prefix) }
	var verr error
	var panicked bool
	for attempt := 0; ; attempt++ {
		ch.Reset(item.prefix, item.sleep)
		wch := w.dog.arm(ch)
		verr, panicked = protectedRun(describe, func() error {
			sys, verify, runErr := w.r.run(wch)
			if w.dog.fired() {
				return nil // timed out; handled below
			}
			if errors.Is(runErr, sim.ErrPickAbort) {
				return nil // pruned, not an outcome
			}
			if ch.Clamped || len(ch.Fanouts) < len(item.prefix) {
				return nil // aliased; detected below from the chooser state
			}
			return c.outcome(sys, verify, runErr)
		})
		if !panicked && w.dog.fired() && attempt == 0 {
			continue // retry a timed-out run once
		}
		break
	}
	if panicked {
		w.r.invalidate()
	}
	if !panicked && w.dog.fired() {
		c.timedOut.Add(1)
		c.count()
		return
	}
	pruned := ch.Pruned || ch.SleepDeadlock
	if !panicked && (ch.Clamped || len(ch.Fanouts) < len(item.prefix)) {
		c.unclaim()
		return
	}
	if verr != nil {
		key := make(schedKey, len(item.prefix))
		for i, d := range item.prefix {
			key[i] = int64(d)
		}
		var dec []int
		if !panicked {
			dec = canonDecisions(ch.Taken)
		}
		c.violation(key, describe(), verr, dec)
	}
	if pruned && !panicked {
		// A pruned run is a covered partial replay, not a schedule: free
		// its MaxSchedules slot, tally it, and still descend into the
		// children of the decisions it did complete.
		c.release()
		if ch.Pruned {
			c.redFPPruned.Add(1)
		} else {
			c.redSleepPruned.Add(1)
		}
	} else {
		c.count()
	}
	if c.stopped() || panicked {
		return
	}
	base := len(item.prefix)
	// Children are slab-allocated: one counting pass sizes three exact
	// backing arrays (items, prefixes, sleep sets), then the fill pass
	// carves three-index subslices out of them. Exact capacities mean
	// the fill appends never reallocate, so &items[k] pointers and slab
	// subslices stay stable, and a schedule's whole frontier costs three
	// heap objects instead of three per child.
	children, prefixInts, sleepEnts := 0, 0, 0
	for i := base; i < len(ch.Taken); i++ {
		snap := ch.Snaps[i-base]
		for j := range snap.Cands {
			if j == snap.Taken || snap.Cands[j].Asleep {
				continue
			}
			children++
			prefixInts += i + 1
			if w.mode.sleepSets() {
				sleepEnts += len(snap.Sleep)
				for m := 0; m < j; m++ {
					if cm := snap.Cands[m]; !cm.Asleep && cm.FpKnown {
						sleepEnts++
					}
				}
			}
		}
	}
	if children == 0 {
		// Still tally the asleep branches the loop below would have.
		for i := base; i < len(ch.Taken); i++ {
			snap := ch.Snaps[i-base]
			for j := range snap.Cands {
				if j != snap.Taken && snap.Cands[j].Asleep {
					c.redSleepSkipped.Add(1)
				}
			}
		}
		return
	}
	items := make([]redItem, 0, children)
	prefixSlab := make([]int, 0, prefixInts)
	sleepSlab := make([]sched.SleepEntry, 0, sleepEnts)
	for i := base; i < len(ch.Taken); i++ {
		snap := ch.Snaps[i-base]
		for j := len(snap.Cands) - 1; j >= 0; j-- {
			if j == snap.Taken {
				continue
			}
			if snap.Cands[j].Asleep {
				c.redSleepSkipped.Add(1)
				continue
			}
			ps := len(prefixSlab)
			prefixSlab = append(prefixSlab, ch.Taken[:i]...)
			prefixSlab = append(prefixSlab, j)
			var childSleep []sched.SleepEntry
			if w.mode.sleepSets() {
				// The child wakes after its earlier siblings: it inherits
				// this decision's live sleep set plus every awake sibling
				// explored before it (the taken branch and awake branches
				// at smaller indices), so their orderings are never
				// re-derived. Siblings with unknown footprints (arrivals)
				// cannot be represented and are simply not slept on. The
				// copy detaches the child from the chooser's snapshot
				// arena, which the next Reset reuses.
				ss := len(sleepSlab)
				sleepSlab = append(sleepSlab, snap.Sleep...)
				for m := 0; m < j; m++ {
					cm := snap.Cands[m]
					if !cm.Asleep && cm.FpKnown {
						sleepSlab = append(sleepSlab, sched.SleepEntry{Proc: cm.Proc, Processor: cm.Processor, Fp: cm.Fp})
					}
				}
				childSleep = sleepSlab[ss:len(sleepSlab):len(sleepSlab)]
			}
			items = append(items, redItem{
				prefix: prefixSlab[ps:len(prefixSlab):len(prefixSlab)],
				sleep:  childSleep,
			})
			push(&items[len(items)-1])
		}
	}
}
