package check_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// panickyBuilder plants a panic reachable only via a specific
// preemption: the verifier panics iff process 1 observed the
// intermediate value of process 0's two-write update.
func panickyBuilder(ch sim.Chooser) (*sim.System, check.Verify) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: ch, MaxSteps: 1 << 12})
	r := mem.NewReg("r")
	sawIntermediate := false
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			c.Write(r, 1)
			c.Write(r, 2)
		})
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			if c.Read(r) == 1 {
				sawIntermediate = true
			}
		})
	return sys, func(runErr error) error {
		if sawIntermediate {
			panic("verifier exploded")
		}
		return runErr
	}
}

// TestPanicContainment: a panicking verifier on some schedules must be
// recorded as a replayable violation — with the decision vector intact —
// while every other schedule's result survives.
func TestPanicContainment(t *testing.T) {
	res := check.ExploreAll(panickyBuilder, check.Options{Parallelism: 4, MaxSchedules: 100000})
	if res.ViolationsTotal == 0 {
		t.Fatal("panicking schedules recorded no violations")
	}
	if res.Schedules <= res.ViolationsTotal {
		t.Fatalf("only panicking schedules counted: %d schedules, %d violations",
			res.Schedules, res.ViolationsTotal)
	}
	first := res.First()
	if !strings.HasPrefix(first.Schedule, "decisions=") {
		t.Fatalf("violation lost its decision vector: %q", first.Schedule)
	}
	if !strings.Contains(first.Err.Error(), "panic on schedule decisions=") ||
		!strings.Contains(first.Err.Error(), "verifier exploded") {
		t.Fatalf("panic not converted to a replayable violation: %v", first.Err)
	}
}

// TestPanicContainmentDeterministic: schedule and violation counts for
// the completed subtrees are identical across parallelism levels even
// when some schedules panic.
func TestPanicContainmentDeterministic(t *testing.T) {
	seq := check.ExploreAll(panickyBuilder, check.Options{Parallelism: 1, MaxSchedules: 100000})
	for _, par := range []int{2, 4, 8} {
		res := check.ExploreAll(panickyBuilder, check.Options{Parallelism: par, MaxSchedules: 100000})
		if res.Schedules != seq.Schedules || res.ViolationsTotal != seq.ViolationsTotal {
			t.Fatalf("parallelism %d: (%d schedules, %d violations) != sequential (%d, %d)",
				par, res.Schedules, res.ViolationsTotal, seq.Schedules, seq.ViolationsTotal)
		}
		if res.First().Schedule != seq.First().Schedule {
			t.Fatalf("parallelism %d: first violation %q != sequential %q",
				par, res.First().Schedule, seq.First().Schedule)
		}
	}
}

// TestPanicInBuilderContained: a panic in the builder itself (before the
// run even starts) is contained the same way.
func TestPanicInBuilderContained(t *testing.T) {
	var calls atomic.Int64
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		if calls.Add(1) == 1 {
			panic("builder exploded")
		}
		sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: ch})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(1) })
		return sys, func(runErr error) error { return runErr }
	}
	res := check.Fuzz(build, 8, check.Options{Parallelism: 1})
	if res.ViolationsTotal != 1 {
		t.Fatalf("ViolationsTotal = %d, want 1", res.ViolationsTotal)
	}
	if res.Schedules != 8 {
		t.Fatalf("schedules after a builder panic = %d, want 8", res.Schedules)
	}
	if !strings.Contains(res.First().Err.Error(), "builder exploded") {
		t.Fatalf("builder panic not recorded: %v", res.First().Err)
	}
}

// TestContextCancelPartialResults: cancelling mid-exploration returns
// the schedules completed so far with Interrupted set.
func TestContextCancelPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var runs atomic.Int64
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		if runs.Add(1) == 10 {
			cancel()
		}
		sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Chooser: ch})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(4) })
		return sys, func(runErr error) error { return runErr }
	}
	res := check.Fuzz(build, 1_000_000, check.Options{Parallelism: 2, MaxSchedules: 1_000_000, Context: ctx})
	if !res.Interrupted {
		t.Fatal("Interrupted not set after cancellation")
	}
	if res.Schedules == 0 || res.Schedules >= 1_000_000 {
		t.Fatalf("schedules = %d, want partial progress", res.Schedules)
	}
}

// TestContextPreCancelled: an already-cancelled context returns
// immediately with no work done, for all three explorers.
func TestContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := check.Options{Context: ctx}
	build := twoProcBuilder(4, 2)
	for name, res := range map[string]*check.Result{
		"ExploreAll":    check.ExploreAll(build, opts),
		"ExploreBudget": check.ExploreBudget(build, 2, opts),
		"Fuzz":          check.Fuzz(build, 100, opts),
	} {
		if !res.Interrupted {
			t.Errorf("%s: Interrupted not set", name)
		}
		if res.Schedules != 0 {
			t.Errorf("%s: executed %d schedules under a cancelled context", name, res.Schedules)
		}
	}
}

// TestContextDeadline: a short deadline interrupts a large exploration
// at a schedule boundary with partial results.
func TestContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res := check.Fuzz(twoProcBuilder(8, 2), 100_000_000, check.Options{
		Parallelism: 2, MaxSchedules: 100_000_000, Context: ctx,
	})
	if !res.Interrupted {
		t.Fatal("deadline expiry did not set Interrupted")
	}
	if res.Schedules >= 100_000_000 {
		t.Fatal("exploration ran to completion despite the deadline")
	}
}

// TestWaitFreeBoundCatchesCrashedLockHolder is the robustness negative
// control: baseline.LockCounter's holder crashes while holding the lock,
// the survivor spins forever, and the WaitFreeBound property — not the
// step limit — must report it as a wait-freedom violation.
func TestWaitFreeBoundCatchesCrashedLockHolder(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		// Crash the holder right after its lock CAS and guarded read.
		crashing := sched.NewCrash(ch, sched.CrashPoint{Proc: 0, Step: 2})
		sys := sim.New(sim.Config{Processors: 1, Quantum: 4, Chooser: crashing, MaxSteps: 2000})
		ctr := baseline.NewLockCounter("ctr", 0)
		for i := 0; i < 2; i++ {
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) { ctr.Inc(c) })
		}
		return sys, func(runErr error) error { return runErr }
	}
	res := check.ExploreBudget(build, 0, check.Options{WaitFreeBound: 50})
	if res.StepLimited != 1 {
		t.Fatalf("StepLimited = %d, want 1 (survivor spins to the step limit)", res.StepLimited)
	}
	if res.ViolationsTotal != 1 {
		t.Fatalf("ViolationsTotal = %d, want 1", res.ViolationsTotal)
	}
	if !strings.Contains(res.First().Err.Error(), "wait-freedom violated") {
		t.Fatalf("violation is not the wait-freedom property: %v", res.First().Err)
	}
}

// TestWaitFreeBoundCatchesPriorityInversion: without any crash, a
// higher-priority spinner above a preempted lock holder (the paper's §1
// priority-inversion livelock) must also trip the bound under fuzzing.
func TestWaitFreeBoundCatchesPriorityInversion(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 4, Chooser: ch, MaxSteps: 2000})
		ctr := baseline.NewLockCounter("ctr", 0)
		for i, pri := range []int{1, 2} {
			_ = i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: pri}).
				AddInvocation(func(c *sim.Ctx) { ctr.Inc(c) })
		}
		return sys, func(runErr error) error { return runErr }
	}
	res := check.Fuzz(build, 64, check.Options{WaitFreeBound: 50})
	if res.ViolationsTotal == 0 {
		t.Fatal("priority-inversion livelock escaped WaitFreeBound under 64 seeds")
	}
	if res.StepLimited == 0 {
		t.Fatal("livelocked runs not tallied in StepLimited")
	}
	for _, v := range res.Violations {
		if !strings.Contains(v.Err.Error(), "wait-freedom violated") {
			t.Fatalf("unexpected violation kind: %v", v.Err)
		}
	}
}

// TestStepLimitNotConflatedWithViolations (and the converse): a verifier
// that merely echoes sim.ErrStepLimit records no violation — the abort
// is tallied in StepLimited — while a verifier mapping the abort to a
// distinct property error still records one.
func TestStepLimitNotConflatedWithViolations(t *testing.T) {
	spinner := func(verify func(error) error) check.Builder {
		return func(ch sim.Chooser) (*sim.System, check.Verify) {
			sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Chooser: ch, MaxSteps: 100})
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) {
					for {
						c.Local(1)
					}
				})
			return sys, verify
		}
	}

	echo := check.Fuzz(spinner(func(runErr error) error { return runErr }), 5, check.Options{})
	if echo.StepLimited != 5 {
		t.Fatalf("StepLimited = %d, want 5", echo.StepLimited)
	}
	if !echo.OK() || echo.ViolationsTotal != 0 {
		t.Fatalf("echoed step limits recorded as violations: %+v", echo.Violations)
	}

	wrapped := check.Fuzz(spinner(func(runErr error) error {
		if errors.Is(runErr, sim.ErrStepLimit) {
			return fmt.Errorf("progress property failed: %w", errors.New(runErr.Error()))
		}
		return runErr
	}), 5, check.Options{})
	if wrapped.StepLimited != 5 {
		t.Fatalf("StepLimited = %d, want 5", wrapped.StepLimited)
	}
	if wrapped.ViolationsTotal != 5 {
		t.Fatalf("distinct property errors suppressed: ViolationsTotal = %d, want 5", wrapped.ViolationsTotal)
	}
}

// TestWaitFreeBoundIgnoresCrashedProcesses: a crashed process's partial
// invocation must not trip the bound (it is departed, not starving).
func TestWaitFreeBoundIgnoresCrashedProcesses(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		// Process 0 spins; it is crashed after 60 statements — beyond the
		// bound, but crashes are exempt. Process 1 finishes briskly.
		crashing := sched.NewCrash(ch, sched.CrashPoint{Proc: 0, Step: 60})
		sys := sim.New(sim.Config{Processors: 1, Quantum: 4, Chooser: crashing, MaxSteps: 2000})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 2}).
			AddInvocation(func(c *sim.Ctx) {
				for {
					c.Local(1)
				}
			})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(4) })
		return sys, func(runErr error) error { return runErr }
	}
	res := check.ExploreBudget(build, 0, check.Options{WaitFreeBound: 50})
	if !res.OK() {
		t.Fatalf("crashed process tripped the wait-free bound: %+v", res.First())
	}
}
