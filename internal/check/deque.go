package check

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// wsRing is one fixed-size power-of-two circular buffer of a wsDeque.
// Slots are atomic pointers so a thief's read of a slot the owner is
// concurrently recycling is well-defined (and race-detector clean); the
// top CAS decides who owns the element.
type wsRing[T any] struct {
	mask  int64
	elems []atomic.Pointer[T]
}

func newWSRing[T any](n int64) *wsRing[T] {
	return &wsRing[T]{mask: n - 1, elems: make([]atomic.Pointer[T], n)}
}

func (r *wsRing[T]) get(i int64) *T    { return r.elems[i&r.mask].Load() }
func (r *wsRing[T]) put(i int64, v *T) { r.elems[i&r.mask].Store(v) }
func (r *wsRing[T]) capacity() int64   { return int64(len(r.elems)) }

// wsDeque is a Chase–Lev work-stealing deque: the owning worker pushes
// and pops at the bottom (LIFO, preserving the explorer's depth-first
// canonical order and locality), thieves steal single items from the
// top (FIFO — the shallowest, largest subtrees, which keeps steals
// rare). Go's atomic operations are sequentially consistent, so the
// algorithm needs no explicit fences. When the ring fills, the owner
// grows it by copying the live window into a doubled ring; thieves
// holding the retired ring still read consistent values (the retired
// ring is never written again) and the top CAS arbitrates ownership.
type wsDeque[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[wsRing[T]]
}

func newWSDeque[T any]() *wsDeque[T] {
	d := &wsDeque[T]{}
	d.ring.Store(newWSRing[T](64))
	return d
}

// push appends v at the bottom. Owner only.
func (d *wsDeque[T]) push(v *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= r.capacity() {
		nr := newWSRing[T](r.capacity() * 2)
		for i := t; i < b; i++ {
			nr.put(i, r.get(i))
		}
		d.ring.Store(nr)
		r = nr
	}
	r.put(b, v)
	d.bottom.Store(b + 1)
}

// pop removes and returns the bottom item, or nil when the deque is
// empty (or the last item was lost to a concurrent thief). Owner only.
func (d *wsDeque[T]) pop() *T {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return nil
	}
	v := d.ring.Load().get(b)
	if t == b {
		// Last item: race thieves via the top CAS, then reset to a
		// canonical empty state either way.
		if !d.top.CompareAndSwap(t, t+1) {
			v = nil
		}
		d.bottom.Store(b + 1)
	}
	return v
}

// steal removes and returns the top item. retry reports that the CAS
// lost a race (with the owner's pop of the last item or another thief)
// and the deque may still be non-empty. Any goroutine.
func (d *wsDeque[T]) steal() (v *T, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	v = d.ring.Load().get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, true
	}
	return v, false
}

// wsEngine runs one parallel exploration: per-worker Chase–Lev deques,
// a pending-item count for termination detection, and the collector
// for cooperative cancellation.
type wsEngine[T any] struct {
	c       *collector
	deques  []*wsDeque[T]
	export  func(*T)     // non-nil when the frontier is exported on stop
	pending atomic.Int64 // items pushed but not yet fully processed
}

// worker is one worker's loop: drain the own deque bottom-first, then
// sweep the other workers' deques for a steal, then back off until
// either work appears or the frontier drains. pending is decremented
// only after an item's children are pushed, so it never reaches zero
// while reachable work remains.
//
// On a stop with frontier export active, the worker moves its own
// remaining deque items to the frontier before exiting; an item another
// worker stole concurrently is exported by that worker's process call
// (its claim fails), so every unexplored subtree lands in the frontier
// exactly once. A worker parked by the memory-pressure ladder simply
// exits: its queued items remain stealable by the survivors.
func (e *wsEngine[T]) worker(w int, process func(item *T, push func(*T))) {
	own := e.deques[w]
	push := func(item *T) {
		e.pending.Add(1)
		own.push(item)
	}
	idle := 0
	for {
		if e.c.stopped() {
			e.drain(own)
			return
		}
		if e.c.parked(w) {
			return
		}
		item := own.pop()
		if item == nil {
			item = e.steal(w)
		}
		if item == nil {
			if e.pending.Load() == 0 {
				return
			}
			if idle++; idle < 32 {
				runtime.Gosched()
			} else {
				//repro:allow walltime idle backoff between steal sweeps; affects only wall-clock, results merge in canonical order
				time.Sleep(20 * time.Microsecond)
			}
			continue
		}
		idle = 0
		process(item, push)
		e.pending.Add(-1)
	}
}

// drain exports every item left in the worker's own deque after a stop.
func (e *wsEngine[T]) drain(own *wsDeque[T]) {
	if e.export == nil {
		return
	}
	for {
		item := own.pop()
		if item == nil {
			return
		}
		e.export(item)
	}
}

// steal sweeps the other workers' deques starting after w.
func (e *wsEngine[T]) steal(w int) *T {
	n := len(e.deques)
	for off := 1; off < n; off++ {
		d := e.deques[(w+off)%n]
		for {
			item, retry := d.steal()
			if item != nil {
				e.c.steals.Add(1)
				return item
			}
			if !retry {
				break
			}
		}
	}
	return nil
}

// explore drives process over the frontier of schedule subtrees rooted
// at roots (a single root item for a fresh exploration, or a seeded
// frontier's subtrees for a resumed one). With parallelism 1 the
// frontier is a plain LIFO stack and the whole exploration runs on the
// calling goroutine — no worker pool, no synchronization beyond the
// collector's — reproducing the canonical sequential enumeration order
// exactly. Otherwise each of parallelism workers owns a deque and
// steals when dry. newWorker is called once per worker and returns
// that worker's process function, which owns all pooled per-worker
// state (system runner, choosers, scratch buffers); process must push
// an item's children before returning. export, if non-nil, receives
// every item left unprocessed when the exploration stops early (the
// frontier-checkpoint hook).
func explore[T any](c *collector, roots []*T, parallelism int, export func(*T), newWorker func() func(item *T, push func(*T))) {
	if parallelism <= 1 {
		process := newWorker()
		// Reversed so the first root is popped (and explored) first,
		// preserving canonical order across a resume.
		stack := make([]*T, 0, len(roots))
		for i := len(roots) - 1; i >= 0; i-- {
			stack = append(stack, roots[i])
		}
		push := func(item *T) { stack = append(stack, item) }
		for len(stack) > 0 {
			if c.stopped() {
				if export != nil {
					for _, item := range stack {
						export(item)
					}
				}
				return
			}
			item := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			process(item, push)
		}
		return
	}
	e := &wsEngine[T]{c: c, deques: make([]*wsDeque[T], parallelism), export: export}
	for i := range e.deques {
		e.deques[i] = newWSDeque[T]()
	}
	e.pending.Store(int64(len(roots)))
	for i, root := range roots {
		e.deques[i%parallelism].push(root)
	}
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		//repro:allow goroutine sanctioned explorer worker pool; the collector merges results in canonical schedule order
		go func(w int) {
			defer wg.Done()
			e.worker(w, newWorker())
		}(w)
	}
	wg.Wait()
}
