package check_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/hybridcas"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// fig3Builder builds the Fig. 3 uniprocessor consensus configuration
// used by the determinism tests: n deciders at quantum q, verifying
// agreement and non-⊥ decisions. At q below Theorem 1's bound (Q ≥ 8)
// the schedule space contains genuine violations, which exercises the
// violation-merge path, not just counting.
func fig3Builder(n, q int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: q, Chooser: ch, MaxSteps: 1 << 16})
		obj := unicons.New("cons")
		outs := make([]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) { outs[i] = obj.Decide(c, mem.Word(i+1)) })
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			for i, o := range outs {
				if o == mem.Bottom {
					return fmt.Errorf("process %d decided ⊥", i)
				}
				if o != outs[0] {
					return fmt.Errorf("disagreement: %v", outs)
				}
			}
			return nil
		}
		return sys, verify
	}
}

// renderResult serializes every observable field of a Result, including
// violation schedules, error texts, decision vectors, and attached
// forensics (artifact JSON, shrink stats), for byte-identical
// comparison.
func renderResult(res *check.Result) string {
	s := fmt.Sprintf("schedules=%d truncated=%v total=%d aliased=%d\n",
		res.Schedules, res.Truncated, res.ViolationsTotal, res.Aliased)
	for _, v := range res.Violations {
		s += fmt.Sprintf("%s: %v decisions=%v\n", v.Schedule, v.Err, v.Decisions)
		if v.Artifact != nil {
			aj, err := json.Marshal(v.Artifact)
			if err != nil {
				panic(err)
			}
			s += fmt.Sprintf("  artifact=%s\n", aj)
		}
		if v.Shrink != nil {
			s += fmt.Sprintf("  shrink=%s\n", v.Shrink)
		}
		if v.ForensicsErr != nil {
			s += fmt.Sprintf("  forensics-err=%v\n", v.ForensicsErr)
		}
	}
	return s
}

// TestParallelMatchesSequential asserts the determinism guarantee: for
// explorations that run to completion, the parallel engine returns a
// Result byte-identical to the sequential (Parallelism: 1) engine —
// schedule counts, violation order, schedule strings, and error texts —
// on small Fig. 3 configurations both above and below the quantum
// bound.
func TestParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(opts check.Options) *check.Result
	}{
		{"ExploreAll/q3-violations", func(o check.Options) *check.Result {
			return check.ExploreAll(fig3Builder(2, 3), o)
		}},
		{"ExploreAll/q8-clean", func(o check.Options) *check.Result {
			o.MaxSchedules = 500000
			return check.ExploreAll(fig3Builder(2, 8), o)
		}},
		{"ExploreBudget/q2-violations", func(o check.Options) *check.Result {
			return check.ExploreBudget(fig3Builder(3, 2), 2, o)
		}},
		{"ExploreBudget/q8-clean", func(o check.Options) *check.Result {
			return check.ExploreBudget(fig3Builder(3, 8), 2, o)
		}},
		{"Fuzz/q2-violations", func(o check.Options) *check.Result {
			return check.Fuzz(fig3Builder(3, 2), 300, o)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq := renderResult(tc.run(check.Options{Parallelism: 1}))
			for _, par := range []int{2, 4, 8} {
				got := renderResult(tc.run(check.Options{Parallelism: par}))
				if got != seq {
					t.Fatalf("parallelism %d diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", par, seq, got)
				}
			}
		})
	}
}

// TestParallelMinimizeCanonicalOrder extends the determinism guarantee
// to the forensics pass: with Options.Minimize on and Parallelism > 1,
// Result.Violations order, Result.First(), the captured decision
// vectors, the attached (minimized) artifact bundles, and the shrink
// stats must all be byte-identical to the sequential run — the shrinker
// is deterministic per violation and runs on the already-merged
// canonical list, so worker timing must not leak into the output.
func TestParallelMinimizeCanonicalOrder(t *testing.T) {
	// Per-strategy configurations with known violations that each
	// exploration completes (an incomplete exploration's schedule set is
	// timing-dependent by design and would invalidate the comparison).
	small := artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 3, MaxSteps: 1 << 16}
	wide := artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 2, MaxSteps: 1 << 16}
	for _, tc := range []struct {
		name string
		meta artifact.Meta
		run  func(b check.Builder, opts check.Options) *check.Result
	}{
		{"ExploreAll", small, func(b check.Builder, o check.Options) *check.Result {
			return check.ExploreAll(b, o)
		}},
		{"ExploreBudget", wide, func(b check.Builder, o check.Options) *check.Result {
			o.MaxSchedules = 1000000
			return check.ExploreBudget(b, 3, o)
		}},
		{"Fuzz", wide, func(b check.Builder, o check.Options) *check.Result {
			return check.Fuzz(b, 400, o)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			meta := tc.meta
			build, err := check.BuilderFor(meta)
			if err != nil {
				t.Fatal(err)
			}
			opts := func(par int) check.Options {
				return check.Options{Parallelism: par, ArtifactMeta: &meta,
					Minimize: true, MaxViolations: 4}
			}
			run := func(o check.Options) *check.Result { return tc.run(build, o) }
			seqRes := run(opts(1))
			if seqRes.OK() {
				t.Fatal("no violations below the quantum bound; the test exercises nothing")
			}
			if seqRes.Truncated || seqRes.Interrupted {
				t.Fatalf("exploration incomplete (truncated=%v interrupted=%v); comparison invalid",
					seqRes.Truncated, seqRes.Interrupted)
			}
			first := seqRes.First()
			if first.Artifact == nil {
				t.Fatalf("violation carries no artifact: %+v", first)
			}
			if first.Shrink == nil {
				t.Fatal("violation carries no shrink stats")
			}
			if first.ForensicsErr != nil {
				t.Fatalf("forensics failed: %v", first.ForensicsErr)
			}
			// The attached bundle must itself reproduce a violation.
			rep, err := artifact.Replay(first.Artifact, artifact.ReplayOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Err == nil || rep.Err.Error() != first.Artifact.Err {
				t.Fatalf("attached bundle does not reproduce: recorded %q, replayed %v",
					first.Artifact.Err, rep.Err)
			}
			seq := renderResult(seqRes)
			for _, par := range []int{2, 8} {
				got := renderResult(run(opts(par)))
				if got != seq {
					t.Fatalf("parallelism %d diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", par, seq, got)
				}
			}
		})
	}
}

// TestForensicsRejectsForeignBuilder: a builder that is NOT the
// workload ArtifactMeta declares must yield ForensicsErr, never an
// artifact bundle that does not reproduce the violation.
func TestForensicsRejectsForeignBuilder(t *testing.T) {
	meta := artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 8, MaxSteps: 1 << 16}
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 8, Chooser: ch, MaxSteps: 1 << 16})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(2) })
		return sys, func(error) error { return errors.New("always fails") }
	}
	res := check.ExploreAll(build, check.Options{Parallelism: 1, ArtifactMeta: &meta})
	if res.OK() {
		t.Fatal("no violation recorded")
	}
	v := res.First()
	if v.Artifact != nil {
		t.Fatalf("non-reproducing artifact attached: %+v", v.Artifact)
	}
	if v.ForensicsErr == nil || !strings.Contains(v.ForensicsErr.Error(), "not the declared") {
		t.Fatalf("ForensicsErr = %v, want declared-workload mismatch", v.ForensicsErr)
	}
}

// TestParallelStopAtFirstFindsViolation: with Parallelism > 1,
// StopAtFirst must still return a violation when one exists, stop
// claiming work cooperatively, and report exactly one violation. The
// exact schedule count is timing-dependent and deliberately not
// asserted (that is the sequential engine's guarantee; see
// TestStopAtFirst).
func TestParallelStopAtFirstFindsViolation(t *testing.T) {
	var builds atomic.Int64
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		builds.Add(1)
		sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: ch})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(2) })
		return sys, func(error) error { return errors.New("always fails") }
	}
	res := check.Fuzz(build, 10000, check.Options{StopAtFirst: true, Parallelism: 4})
	if res.OK() {
		t.Fatal("violation not reported")
	}
	if len(res.Violations) != 1 {
		t.Fatalf("StopAtFirst returned %d violations, want 1", len(res.Violations))
	}
	if res.ViolationsTotal < 1 {
		t.Fatalf("ViolationsTotal = %d, want >= 1", res.ViolationsTotal)
	}
	if n := builds.Load(); n >= 10000 {
		t.Fatalf("cooperative cancellation did not stop the sweep (%d builds)", n)
	}
}

// TestParallelLinearizabilityRaceSmoke drives the parallel explorer over
// the Fig. 5 (hybridcas) linearizability builder. Under `go test -race`
// this guards the builder-reentrancy contract: the history collector,
// object, and output state are created inside the builder, so concurrent
// workers must not race. It also exercises check.History's
// one-run-at-a-time assumption — each run appends to its own collector.
func TestParallelLinearizabilityRaceSmoke(t *testing.T) {
	const (
		kindRead = iota + 1
		kindCAS
	)
	spec := func(state any, op check.HistOp) (any, uint64) {
		v := state.(uint64)
		switch op.Kind {
		case kindRead:
			return v, v
		case kindCAS:
			if v == op.Args[0] {
				return op.Args[1], 1
			}
			return v, 0
		default:
			panic("bad kind")
		}
	}
	key := func(state any) uint64 { return state.(uint64) }
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const levels = 2
		sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 20})
		obj := hybridcas.New("cas", levels, 0)
		hist := &check.History{}
		for i := 0; i < 3; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%levels})
			p.AddInvocation(func(c *sim.Ctx) {
				start := c.Now()
				v := obj.Read(c)
				hist.Add(check.HistOp{Proc: c.ID(), Start: start, End: c.Now(), Kind: kindRead, Ret: v})
				start = c.Now()
				ok := obj.CompareAndSwap(c, v, v+mem.Word(i)+1)
				r := mem.Word(0)
				if ok {
					r = 1
				}
				hist.Add(check.HistOp{Proc: c.ID(), Start: start, End: c.Now(),
					Kind: kindCAS, Args: [2]uint64{v, v + mem.Word(i) + 1}, Ret: r})
			})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			return hist.Check(uint64(0), spec, key)
		}
		return sys, verify
	}
	seeds := 200
	if testing.Short() {
		seeds = 50
	}
	if res := check.Fuzz(build, seeds, check.Options{Parallelism: 8}); !res.OK() {
		t.Fatalf("non-linearizable history: %+v", res.First())
	}
	if res := check.ExploreBudget(build, 1, check.Options{Parallelism: 8, MaxSchedules: 5000}); !res.OK() {
		t.Fatalf("non-linearizable history (budget): %+v", res.First())
	}
}

// flakyFanoutBuilder is deliberately NOT a deterministic function of the
// decision sequence: the first build has three processes, later builds
// two, so replays of vectors generated from the first run see smaller
// fan-outs. Such replays clamp (alias an in-range vector) and must be
// skipped, not counted as distinct schedules.
func flakyFanoutBuilder() check.Builder {
	var builds atomic.Int64
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		n := 2
		if builds.Add(1) == 1 {
			n = 3
		}
		sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: ch})
		for i := 0; i < n; i++ {
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) { c.Local(1) })
		}
		return sys, func(runErr error) error { return runErr }
	}
}

// TestExploreAllSkipsClampedAliases: the 3-process first run yields the
// decision tree {[], [1], [2], [0 1]}, but the 2-process replays only
// have fan-out 2 at the single decision point: [2] clamps onto [1], and
// [0 1] never consumes its second decision. Both alias already-counted
// schedules; only the root and [1] are genuine.
func TestExploreAllSkipsClampedAliases(t *testing.T) {
	res := check.ExploreAll(flakyFanoutBuilder(), check.Options{Parallelism: 1})
	if res.Schedules != 2 {
		t.Fatalf("schedules = %d, want 2 (aliased replays double-counted)", res.Schedules)
	}
	if res.Aliased != 2 {
		t.Fatalf("aliased = %d, want 2", res.Aliased)
	}
	if !res.OK() {
		t.Fatalf("unexpected violation: %+v", res.First())
	}
}

// TestExploreBudgetSkipsClampedAliases is the BudgetedSwitch analogue:
// the first (3-process) run seeds deviations {d0→1, d0→2, d1→1}; on the
// 2-process replays d0→2 clamps and d1→1 is never reached, so both are
// aliases of counted schedules.
func TestExploreBudgetSkipsClampedAliases(t *testing.T) {
	res := check.ExploreBudget(flakyFanoutBuilder(), 1, check.Options{Parallelism: 1})
	if res.Schedules != 2 {
		t.Fatalf("schedules = %d, want 2 (aliased replays double-counted)", res.Schedules)
	}
	if res.Aliased != 2 {
		t.Fatalf("aliased = %d, want 2", res.Aliased)
	}
}

// TestProgressHook: the Progress hook receives monotonically increasing
// schedule counts and a live violation counter.
func TestProgressHook(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: ch})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(1) })
		return sys, func(error) error { return errors.New("fails") }
	}
	var calls []check.ProgressInfo
	res := check.Fuzz(build, 40, check.Options{
		MaxViolations: 1000,
		ProgressEvery: 10,
		Parallelism:   1,
		Progress:      func(info check.ProgressInfo) { calls = append(calls, info) },
	})
	if res.Schedules != 40 {
		t.Fatalf("schedules = %d, want 40", res.Schedules)
	}
	if len(calls) != 4 {
		t.Fatalf("progress calls = %d, want 4", len(calls))
	}
	var last int64
	for _, info := range calls {
		if info.Schedules <= last {
			t.Fatalf("progress schedules not increasing: %+v", calls)
		}
		last = info.Schedules
	}
	if final := calls[len(calls)-1]; final.Schedules != 40 || final.Violations != 40 {
		t.Fatalf("final progress = %+v, want 40 schedules / 40 violations", final)
	}
}
