package check_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/check"
	"repro/internal/hybridcas"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// fig3Builder builds the Fig. 3 uniprocessor consensus configuration
// used by the determinism tests: n deciders at quantum q, verifying
// agreement and non-⊥ decisions. At q below Theorem 1's bound (Q ≥ 8)
// the schedule space contains genuine violations, which exercises the
// violation-merge path, not just counting.
func fig3Builder(n, q int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: q, Chooser: ch, MaxSteps: 1 << 16})
		obj := unicons.New("cons")
		outs := make([]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) { outs[i] = obj.Decide(c, mem.Word(i+1)) })
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			for i, o := range outs {
				if o == mem.Bottom {
					return fmt.Errorf("process %d decided ⊥", i)
				}
				if o != outs[0] {
					return fmt.Errorf("disagreement: %v", outs)
				}
			}
			return nil
		}
		return sys, verify
	}
}

// renderResult serializes every observable field of a Result, including
// violation schedules and error texts, for byte-identical comparison.
func renderResult(res *check.Result) string {
	s := fmt.Sprintf("schedules=%d truncated=%v total=%d aliased=%d\n",
		res.Schedules, res.Truncated, res.ViolationsTotal, res.Aliased)
	for _, v := range res.Violations {
		s += fmt.Sprintf("%s: %v\n", v.Schedule, v.Err)
	}
	return s
}

// TestParallelMatchesSequential asserts the determinism guarantee: for
// explorations that run to completion, the parallel engine returns a
// Result byte-identical to the sequential (Parallelism: 1) engine —
// schedule counts, violation order, schedule strings, and error texts —
// on small Fig. 3 configurations both above and below the quantum
// bound.
func TestParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(opts check.Options) *check.Result
	}{
		{"ExploreAll/q3-violations", func(o check.Options) *check.Result {
			return check.ExploreAll(fig3Builder(2, 3), o)
		}},
		{"ExploreAll/q8-clean", func(o check.Options) *check.Result {
			o.MaxSchedules = 500000
			return check.ExploreAll(fig3Builder(2, 8), o)
		}},
		{"ExploreBudget/q2-violations", func(o check.Options) *check.Result {
			return check.ExploreBudget(fig3Builder(3, 2), 2, o)
		}},
		{"ExploreBudget/q8-clean", func(o check.Options) *check.Result {
			return check.ExploreBudget(fig3Builder(3, 8), 2, o)
		}},
		{"Fuzz/q2-violations", func(o check.Options) *check.Result {
			return check.Fuzz(fig3Builder(3, 2), 300, o)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq := renderResult(tc.run(check.Options{Parallelism: 1}))
			for _, par := range []int{2, 4, 8} {
				got := renderResult(tc.run(check.Options{Parallelism: par}))
				if got != seq {
					t.Fatalf("parallelism %d diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", par, seq, got)
				}
			}
		})
	}
}

// TestParallelStopAtFirstFindsViolation: with Parallelism > 1,
// StopAtFirst must still return a violation when one exists, stop
// claiming work cooperatively, and report exactly one violation. The
// exact schedule count is timing-dependent and deliberately not
// asserted (that is the sequential engine's guarantee; see
// TestStopAtFirst).
func TestParallelStopAtFirstFindsViolation(t *testing.T) {
	var builds atomic.Int64
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		builds.Add(1)
		sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: ch})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(2) })
		return sys, func(error) error { return errors.New("always fails") }
	}
	res := check.Fuzz(build, 10000, check.Options{StopAtFirst: true, Parallelism: 4})
	if res.OK() {
		t.Fatal("violation not reported")
	}
	if len(res.Violations) != 1 {
		t.Fatalf("StopAtFirst returned %d violations, want 1", len(res.Violations))
	}
	if res.ViolationsTotal < 1 {
		t.Fatalf("ViolationsTotal = %d, want >= 1", res.ViolationsTotal)
	}
	if n := builds.Load(); n >= 10000 {
		t.Fatalf("cooperative cancellation did not stop the sweep (%d builds)", n)
	}
}

// TestParallelLinearizabilityRaceSmoke drives the parallel explorer over
// the Fig. 5 (hybridcas) linearizability builder. Under `go test -race`
// this guards the builder-reentrancy contract: the history collector,
// object, and output state are created inside the builder, so concurrent
// workers must not race. It also exercises check.History's
// one-run-at-a-time assumption — each run appends to its own collector.
func TestParallelLinearizabilityRaceSmoke(t *testing.T) {
	const (
		kindRead = iota + 1
		kindCAS
	)
	spec := func(state any, op check.HistOp) (any, uint64) {
		v := state.(uint64)
		switch op.Kind {
		case kindRead:
			return v, v
		case kindCAS:
			if v == op.Args[0] {
				return op.Args[1], 1
			}
			return v, 0
		default:
			panic("bad kind")
		}
	}
	key := func(state any) uint64 { return state.(uint64) }
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const levels = 2
		sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 20})
		obj := hybridcas.New("cas", levels, 0)
		hist := &check.History{}
		for i := 0; i < 3; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%levels})
			p.AddInvocation(func(c *sim.Ctx) {
				start := c.Now()
				v := obj.Read(c)
				hist.Add(check.HistOp{Proc: c.ID(), Start: start, End: c.Now(), Kind: kindRead, Ret: v})
				start = c.Now()
				ok := obj.CompareAndSwap(c, v, v+mem.Word(i)+1)
				r := mem.Word(0)
				if ok {
					r = 1
				}
				hist.Add(check.HistOp{Proc: c.ID(), Start: start, End: c.Now(),
					Kind: kindCAS, Args: [2]uint64{v, v + mem.Word(i) + 1}, Ret: r})
			})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			return hist.Check(uint64(0), spec, key)
		}
		return sys, verify
	}
	seeds := 200
	if testing.Short() {
		seeds = 50
	}
	if res := check.Fuzz(build, seeds, check.Options{Parallelism: 8}); !res.OK() {
		t.Fatalf("non-linearizable history: %+v", res.First())
	}
	if res := check.ExploreBudget(build, 1, check.Options{Parallelism: 8, MaxSchedules: 5000}); !res.OK() {
		t.Fatalf("non-linearizable history (budget): %+v", res.First())
	}
}

// flakyFanoutBuilder is deliberately NOT a deterministic function of the
// decision sequence: the first build has three processes, later builds
// two, so replays of vectors generated from the first run see smaller
// fan-outs. Such replays clamp (alias an in-range vector) and must be
// skipped, not counted as distinct schedules.
func flakyFanoutBuilder() check.Builder {
	var builds atomic.Int64
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		n := 2
		if builds.Add(1) == 1 {
			n = 3
		}
		sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: ch})
		for i := 0; i < n; i++ {
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) { c.Local(1) })
		}
		return sys, func(runErr error) error { return runErr }
	}
}

// TestExploreAllSkipsClampedAliases: the 3-process first run yields the
// decision tree {[], [1], [2], [0 1]}, but the 2-process replays only
// have fan-out 2 at the single decision point: [2] clamps onto [1], and
// [0 1] never consumes its second decision. Both alias already-counted
// schedules; only the root and [1] are genuine.
func TestExploreAllSkipsClampedAliases(t *testing.T) {
	res := check.ExploreAll(flakyFanoutBuilder(), check.Options{Parallelism: 1})
	if res.Schedules != 2 {
		t.Fatalf("schedules = %d, want 2 (aliased replays double-counted)", res.Schedules)
	}
	if res.Aliased != 2 {
		t.Fatalf("aliased = %d, want 2", res.Aliased)
	}
	if !res.OK() {
		t.Fatalf("unexpected violation: %+v", res.First())
	}
}

// TestExploreBudgetSkipsClampedAliases is the BudgetedSwitch analogue:
// the first (3-process) run seeds deviations {d0→1, d0→2, d1→1}; on the
// 2-process replays d0→2 clamps and d1→1 is never reached, so both are
// aliases of counted schedules.
func TestExploreBudgetSkipsClampedAliases(t *testing.T) {
	res := check.ExploreBudget(flakyFanoutBuilder(), 1, check.Options{Parallelism: 1})
	if res.Schedules != 2 {
		t.Fatalf("schedules = %d, want 2 (aliased replays double-counted)", res.Schedules)
	}
	if res.Aliased != 2 {
		t.Fatalf("aliased = %d, want 2", res.Aliased)
	}
}

// TestProgressHook: the Progress hook receives monotonically increasing
// schedule counts and a live violation counter.
func TestProgressHook(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: ch})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(1) })
		return sys, func(error) error { return errors.New("fails") }
	}
	var calls []check.ProgressInfo
	res := check.Fuzz(build, 40, check.Options{
		MaxViolations: 1000,
		ProgressEvery: 10,
		Parallelism:   1,
		Progress:      func(info check.ProgressInfo) { calls = append(calls, info) },
	})
	if res.Schedules != 40 {
		t.Fatalf("schedules = %d, want 40", res.Schedules)
	}
	if len(calls) != 4 {
		t.Fatalf("progress calls = %d, want 4", len(calls))
	}
	var last int64
	for _, info := range calls {
		if info.Schedules <= last {
			t.Fatalf("progress schedules not increasing: %+v", calls)
		}
		last = info.Schedules
	}
	if final := calls[len(calls)-1]; final.Schedules != 40 || final.Violations != 40 {
		t.Fatalf("final progress = %+v, want 40 schedules / 40 violations", final)
	}
}
