package check_test

import (
	"testing"

	"repro/internal/check"
)

// Counter spec: kind 1 = fetch-and-increment (returns prior value).
func ctrSpec(state any, op check.HistOp) (any, uint64) {
	v := state.(uint64)
	return v + 1, v
}

func ctrKey(state any) uint64 { return state.(uint64) }

func TestLinearizableSequential(t *testing.T) {
	ops := []check.HistOp{
		{Proc: 0, Start: 0, End: 1, Ret: 0},
		{Proc: 1, Start: 2, End: 3, Ret: 1},
		{Proc: 0, Start: 4, End: 5, Ret: 2},
	}
	if err := check.Linearizable(ops, uint64(0), ctrSpec, ctrKey); err != nil {
		t.Fatalf("sequential history rejected: %v", err)
	}
}

func TestLinearizableConcurrentReorder(t *testing.T) {
	// Two overlapping increments may linearize in either order; the
	// returns force the reversed one.
	ops := []check.HistOp{
		{Proc: 0, Start: 0, End: 10, Ret: 1},
		{Proc: 1, Start: 1, End: 9, Ret: 0},
	}
	if err := check.Linearizable(ops, uint64(0), ctrSpec, ctrKey); err != nil {
		t.Fatalf("concurrent reorder rejected: %v", err)
	}
}

func TestLinearizableRejectsRealTimeViolation(t *testing.T) {
	// p1's increment completes strictly before p0's begins, yet p0
	// claims the earlier ticket: no linearization exists.
	ops := []check.HistOp{
		{Proc: 1, Start: 0, End: 1, Ret: 1},
		{Proc: 0, Start: 5, End: 6, Ret: 0},
	}
	if err := check.Linearizable(ops, uint64(0), ctrSpec, ctrKey); err == nil {
		t.Fatal("real-time violation accepted")
	}
}

func TestLinearizableRejectsDuplicateTickets(t *testing.T) {
	ops := []check.HistOp{
		{Proc: 0, Start: 0, End: 10, Ret: 0},
		{Proc: 1, Start: 1, End: 9, Ret: 0},
	}
	if err := check.Linearizable(ops, uint64(0), ctrSpec, ctrKey); err == nil {
		t.Fatal("duplicate tickets accepted")
	}
}

func TestLinearizableWithoutMemo(t *testing.T) {
	ops := []check.HistOp{
		{Proc: 0, Start: 0, End: 3, Ret: 0},
		{Proc: 1, Start: 1, End: 4, Ret: 1},
	}
	if err := check.Linearizable(ops, uint64(0), ctrSpec, nil); err != nil {
		t.Fatalf("rejected without memo: %v", err)
	}
}

func TestLinearizableTooLong(t *testing.T) {
	ops := make([]check.HistOp, 65)
	if err := check.Linearizable(ops, uint64(0), ctrSpec, ctrKey); err == nil {
		t.Fatal("65-op history accepted")
	}
}

// CAS spec over a register: kind 1 = read, kind 2 = CAS(old, new)
// returning 1 on success.
func casSpec(state any, op check.HistOp) (any, uint64) {
	v := state.(uint64)
	switch op.Kind {
	case 1:
		return v, v
	case 2:
		if v == op.Args[0] {
			return op.Args[1], 1
		}
		return v, 0
	default:
		panic("bad kind")
	}
}

func TestLinearizableCASHistory(t *testing.T) {
	ops := []check.HistOp{
		{Proc: 0, Kind: 2, Args: [2]uint64{0, 5}, Start: 0, End: 8, Ret: 1},
		{Proc: 1, Kind: 2, Args: [2]uint64{0, 7}, Start: 1, End: 9, Ret: 0},
		{Proc: 2, Kind: 1, Start: 10, End: 11, Ret: 5},
	}
	if err := check.Linearizable(ops, uint64(0), casSpec, ctrKey); err != nil {
		t.Fatalf("valid CAS history rejected: %v", err)
	}
	// Flip the read to an impossible value.
	ops[2].Ret = 7
	if err := check.Linearizable(ops, uint64(0), casSpec, ctrKey); err == nil {
		t.Fatal("impossible CAS history accepted")
	}
}

func TestHistoryCollector(t *testing.T) {
	var h check.History
	h.Add(check.HistOp{Proc: 0, Start: 0, End: 1, Ret: 0})
	h.Add(check.HistOp{Proc: 1, Start: 2, End: 3, Ret: 1})
	if len(h.Ops()) != 2 {
		t.Fatalf("ops = %d", len(h.Ops()))
	}
	if err := h.Check(uint64(0), ctrSpec, ctrKey); err != nil {
		t.Fatalf("Check: %v", err)
	}
}
