package check

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/artifact"
	"repro/internal/sched"
)

// TestPooledReplayAllocFree pins the tentpole allocation guarantee: the
// steady-state replay loop — Script reset, pooled System reset, run,
// verify — performs zero heap allocations per schedule for the pinned
// unicons workload. A regression here (a forgotten buffer reset, a
// fresh slice or map per run, a new closure on the hot path) is the
// kind of cost that silently erodes explorer throughput.
func TestPooledReplayAllocFree(t *testing.T) {
	build, err := BuilderFor(artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 8, MaxSteps: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(build)
	script := &sched.Script{}
	replay := func(decisions []int) error {
		script.Reset(decisions)
		_, verify, runErr := r.run(script)
		return verify(runErr)
	}
	// Warm up: probe-build the pooled system and grow every reusable
	// buffer (fan-out records, kernel access logs, candidate scratch)
	// to its steady-state capacity.
	warmup := [][]int{nil, {1}, {2}, {0, 1}, {1, 2, 1}}
	for _, dec := range warmup {
		if verr := replay(dec); verr != nil {
			t.Fatalf("warmup replay %v: unexpected violation: %v", dec, verr)
		}
	}
	if !r.pooled {
		t.Fatal("unicons workload did not produce a reusable system; pooling is off")
	}
	decisions := []int{1, 2, 1}
	allocs := testing.AllocsPerRun(200, func() {
		if verr := replay(decisions); verr != nil {
			t.Fatalf("replay %v: unexpected violation: %v", decisions, verr)
		}
	})
	if allocs != 0 {
		t.Fatalf("pooled replay loop allocates %v objects per schedule; want 0", allocs)
	}
}

// TestWSDequeStress hammers one wsDeque with its owner and several
// thieves and checks every pushed item is consumed exactly once —
// nothing lost, nothing double-taken. Run under `go test -race` (the
// CI race job) this doubles as the memory-safety smoke test for the
// steal path, including ring growth while thieves hold the retired
// ring.
func TestWSDequeStress(t *testing.T) {
	const (
		items   = 50000
		thieves = 4
	)
	d := newWSDeque[int]()
	taken := make([]atomic.Int32, items)
	var consumed atomic.Int64
	consume := func(v *int) {
		if n := taken[*v].Add(1); n != 1 {
			t.Errorf("item %d consumed %d times", *v, n)
		}
		consumed.Add(1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, retry := d.steal()
				if v != nil {
					consume(v)
					continue
				}
				if !retry {
					select {
					case <-stop:
						// Drain once more after the owner is done so no
						// item is stranded between the emptiness check
						// and the close.
						for {
							v, retry := d.steal()
							if v != nil {
								consume(v)
							} else if !retry {
								return
							}
						}
					default:
					}
				}
			}
		}()
	}
	vals := make([]int, items)
	for i := 0; i < items; i++ {
		vals[i] = i
		d.push(&vals[i])
		// Interleave owner pops so the bottom races the thieves' top.
		if i%3 == 0 {
			if v := d.pop(); v != nil {
				consume(v)
			}
		}
	}
	for {
		v := d.pop()
		if v == nil {
			break
		}
		consume(v)
	}
	close(stop)
	wg.Wait()
	// The owner's final pop loop can observe nil on a lost race while a
	// thief still holds the last item, so only after all goroutines
	// join is the total meaningful.
	if n := consumed.Load(); n != items {
		t.Fatalf("consumed %d of %d items", n, items)
	}
	for i := range taken {
		if taken[i].Load() != 1 {
			t.Fatalf("item %d consumed %d times; want exactly 1", i, taken[i].Load())
		}
	}
}

// TestSleepDeadlockAccounting pins the audited semantics of the
// ReductionStats sleep counters (renamed from the misleading
// sleep_pruned_runs in bench schema v3): on a sleep-set exploration
// that exercises the reduction heavily, all savings are skipped
// branches and no run aborts in sleep deadlock — the granted process
// is never asleep while enabled, and its departure wakes everyone (see
// the SleepDeadlockRuns doc). If a workload change ever makes deadlock
// reachable here, this test fails and the stat's documentation must be
// revisited rather than silently drifting.
func TestSleepDeadlockAccounting(t *testing.T) {
	build, err := BuilderFor(artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 0, MaxSteps: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	res := ExploreAll(build, Options{Parallelism: 1, MaxSchedules: 1 << 22, Reduction: ReductionSleepSet})
	if res.Truncated || res.Interrupted {
		t.Fatalf("exploration did not complete: %+v", res)
	}
	rs := res.Reduction
	if rs == nil {
		t.Fatal("no ReductionStats on a reduced exploration")
	}
	if rs.SleepSkippedBranches == 0 {
		t.Error("sleep-set reduction skipped no branches; the config no longer exercises the reduction")
	}
	if rs.SleepDeadlockRuns != 0 {
		t.Errorf("SleepDeadlockRuns = %d; the documented unreachability argument no longer holds — update the stat docs",
			rs.SleepDeadlockRuns)
	}
}
