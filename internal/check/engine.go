package check

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/sim"
)

// schedKey canonically orders schedules: lexicographic over the
// elements, with a proper prefix ordered before its extensions. For
// ExploreAll the key is the decision-vector prefix (work prefixes end
// in a non-zero digit, so this matches zero-padded vector order); for
// ExploreBudget it is the flattened (index, choice) switch word; for
// Fuzz it is the seed.
type schedKey []int64

func keyLess(a, b schedKey) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

type keyedViolation struct {
	key schedKey
	v   Violation
}

// collector aggregates run outcomes across workers: it enforces
// MaxSchedules via atomic slot claims, merges violations in canonical
// schedule order, drives cooperative cancellation for StopAtFirst, and
// emits Progress snapshots.
type collector struct {
	opts        Options
	ctx         context.Context
	maxSched    int64
	maxViol     int
	claimed     atomic.Int64 // schedule slots claimed (bounded by maxSched)
	counted     atomic.Int64 // schedules executed and counted
	violTotal   atomic.Int64
	aliased     atomic.Int64
	stepLimited atomic.Int64
	steals      atomic.Int64 // work items taken from another worker's deque

	// Reduction tallies (zero when Options.Reduction is ReductionNone).
	redSleepPruned  atomic.Int64
	redFPPruned     atomic.Int64
	redSleepSkipped atomic.Int64
	timedOut        atomic.Int64 // runs skipped by the RunDeadline watchdog
	truncated       atomic.Bool
	interrupted     atomic.Bool
	stop            atomic.Bool

	// Degradation-ladder state (Options.MemSoftLimit); see frontier.go.
	memSoft      uint64
	allowed      atomic.Int32 // workers allowed to claim new work
	cache        *fpCache     // sheddable fingerprint cache, may be nil
	cacheShed    bool         // under mu
	degradeFloor bool         // under mu
	degradations []string     // under mu

	mu      sync.Mutex
	viols   []keyedViolation // sorted by key, capped at maxViol
	fronts  []keyedFrontier  // exported frontier items (ExportFrontier)
	measure *measureAcc      // merged measurement histogram (Options.Measure)

	start     time.Time
	progEvery int64
}

func newCollector(opts Options) *collector {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	c := &collector{
		opts:     opts,
		ctx:      ctx,
		maxSched: int64(opts.maxSchedules()),
		maxViol:  opts.maxViolations(),
		memSoft:  opts.MemSoftLimit,
		//repro:allow walltime start feeds only Result.Elapsed and progress reporting, never replayed output
		start:     time.Now(),
		progEvery: opts.progressEvery(),
	}
	c.allowed.Store(int32(opts.parallelism()))
	return c
}

// stopped reports whether the exploration should stop claiming work,
// polling Options.Context for cancellation.
func (c *collector) stopped() bool {
	if c.stop.Load() {
		return true
	}
	if c.ctx.Err() != nil {
		c.interrupted.Store(true)
		c.stop.Store(true)
		return true
	}
	return false
}

// claim reserves one schedule slot; on failure the exploration is
// truncated and cancelled.
func (c *collector) claim() bool {
	if c.stopped() {
		return false
	}
	if c.claimed.Add(1) > c.maxSched {
		c.claimed.Add(-1)
		c.truncated.Store(true)
		c.stop.Store(true)
		return false
	}
	return true
}

// unclaim releases a slot whose run turned out to be a clamped alias of
// another schedule.
func (c *collector) unclaim() {
	c.claimed.Add(-1)
	c.aliased.Add(1)
}

// release frees a slot claimed by a run a reduction pruned: a covered
// partial replay is neither a schedule nor an alias, so it never counts
// against MaxSchedules.
func (c *collector) release() {
	c.claimed.Add(-1)
}

// reductionStats assembles the ReductionStats for a finished reduced
// exploration (cache may be nil for sleep-set-only mode).
func (c *collector) reductionStats(mode Reduction, cache *fpCache) *ReductionStats {
	rs := &ReductionStats{
		Mode:                  mode.String(),
		SleepDeadlockRuns:     int(c.redSleepPruned.Load()),
		SleepSkippedBranches:  c.redSleepSkipped.Load(),
		FingerprintPrunedRuns: int(c.redFPPruned.Load()),
	}
	if cache != nil {
		rs.CacheHits, rs.CacheEvictions, rs.CacheEntries = cache.stats()
	}
	return rs
}

// count records one executed schedule, polls memory pressure, and
// emits progress when due.
func (c *collector) count() {
	n := c.counted.Add(1)
	if n%c.progEvery == 0 {
		c.memPressure()
	}
	if c.opts.Progress != nil && n%c.progEvery == 0 {
		//repro:allow walltime elapsed feeds only ProgressInfo/Result.Elapsed diagnostics, never replayed output
		elapsed := time.Since(c.start)
		info := ProgressInfo{Schedules: n, Violations: c.violTotal.Load(), Elapsed: elapsed}
		if s := elapsed.Seconds(); s > 0 {
			info.SchedulesPerSec = float64(n) / s
		}
		c.mu.Lock()
		c.opts.Progress(info)
		c.mu.Unlock()
	}
}

// violation merges one violation into the canonically ordered, capped
// list and triggers StopAtFirst cancellation. decisions, if non-nil, is
// the run's canonical decision vector (ownership passes to the
// collector).
func (c *collector) violation(key schedKey, schedule string, err error, decisions []int) {
	c.violTotal.Add(1)
	c.mu.Lock()
	i := sort.Search(len(c.viols), func(i int) bool { return keyLess(key, c.viols[i].key) })
	if i < c.maxViol {
		c.viols = append(c.viols, keyedViolation{})
		copy(c.viols[i+1:], c.viols[i:])
		c.viols[i] = keyedViolation{key: key, v: Violation{Schedule: schedule, Err: err, Decisions: decisions}}
		if len(c.viols) > c.maxViol {
			c.viols = c.viols[:c.maxViol]
		}
	}
	c.mu.Unlock()
	if c.opts.StopAtFirst {
		c.stop.Store(true)
	}
}

// canonDecisions copies a taken decision vector into canonical script
// form: trailing zeros are trimmed, since past the script's end a replay
// picks candidate 0 anyway. The result is never nil — an all-zeros run
// canonicalizes to the empty (but present) vector, distinguishing it
// from a run whose decisions could not be captured.
func canonDecisions(taken []int) []int {
	n := len(taken)
	for n > 0 && taken[n-1] == 0 {
		n--
	}
	out := make([]int, n)
	copy(out, taken[:n])
	return out
}

// outcome runs the builder's verifier and the collector-level property
// checks over one completed run, merging everything into a single
// violation error (nil for a clean run). Step-limit aborts are tallied
// in Result.StepLimited and suppressed as violations when the verifier
// merely echoes them; a verifier error distinct from the abort — or a
// WaitFreeBound hit on the aborted run — still counts.
func (c *collector) outcome(sys *sim.System, verify Verify, runErr error) error {
	limited := errors.Is(runErr, sim.ErrStepLimit)
	if limited {
		c.stepLimited.Add(1)
	}
	verr := verify(runErr)
	if verr != nil && limited && errors.Is(verr, sim.ErrStepLimit) {
		verr = nil
	}
	return errors.Join(verr, c.waitFree(sys))
}

// waitFree enforces Options.WaitFreeBound on one completed run: every
// live (non-crashed) process must have executed at most the bound of
// its own statements within any single invocation, finished or not.
func (c *collector) waitFree(sys *sim.System) error {
	b := c.opts.WaitFreeBound
	if b <= 0 {
		return nil
	}
	for _, p := range sys.Processes() {
		if p.Crashed() {
			continue
		}
		if n := p.WorstInvStmts(); n > b {
			return fmt.Errorf("check: wait-freedom violated: %s executed %d of its own statements in one invocation (bound %d)",
				p.Name(), n, b)
		}
	}
	return nil
}

// protectedRun invokes f, converting a panic anywhere in the builder,
// the run, or the verifier into a violation error so one bad schedule
// cannot kill the whole exploration. describe names the run for the
// error text; it is invoked only on panic, which keeps schedule-string
// formatting off the hot path.
func protectedRun(describe func() string, f func() error) (verr error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			verr = fmt.Errorf("check: panic on schedule %s: %v\n%s", describe(), r, debug.Stack())
		}
	}()
	return f(), false
}

func (c *collector) result() *Result {
	res := &Result{
		Schedules:       int(c.counted.Load()),
		ViolationsTotal: int(c.violTotal.Load()),
		Truncated:       c.truncated.Load(),
		Aliased:         int(c.aliased.Load()),
		StepLimited:     int(c.stepLimited.Load()),
		Steals:          c.steals.Load(),
		Interrupted:     c.interrupted.Load(),
		TimedOutRuns:    int(c.timedOut.Load()),
	}
	c.mu.Lock()
	res.Degradations = c.degradations
	if c.opts.Measure {
		m := c.measure
		if m == nil {
			m = newMeasureAcc() // measured exploration with zero runs
		}
		res.Progress = m.stats()
	}
	c.mu.Unlock()
	viols := c.viols
	if c.opts.StopAtFirst && len(viols) > 1 {
		viols = viols[:1]
	}
	for _, kv := range viols {
		res.Violations = append(res.Violations, kv.v)
	}
	c.forensics(res)
	return res
}

// chooserSlot lets a pooled system swap per-schedule choosers without
// rebuilding: the probe build wires the system's Config.Chooser to the
// slot (possibly wrapped, e.g. by a crash injector), and the worker
// points the slot at each schedule's chooser before each rerun. The
// slot implements sim.Crasher by delegation and reports via
// CrashesArmed whether the inner chooser can actually inject faults, so
// the kernel skips the per-step Crashes call for ordinary choosers.
type chooserSlot struct {
	ch      sim.Chooser
	crasher sim.Crasher
}

func (s *chooserSlot) set(ch sim.Chooser) {
	s.ch = ch
	s.crasher, _ = ch.(sim.Crasher)
}

// Pick implements sim.Chooser.
func (s *chooserSlot) Pick(d sim.Decision) int { return s.ch.Pick(d) }

// Crashes implements sim.Crasher.
func (s *chooserSlot) Crashes(d sim.Decision) []*sim.Process {
	if s.crasher == nil {
		return nil
	}
	return s.crasher.Crashes(d)
}

// CrashesArmed reports whether the current inner chooser can inject
// faults (see sim.Config.Chooser's crash-arming protocol).
func (s *chooserSlot) CrashesArmed() bool {
	if s.crasher == nil {
		return false
	}
	if ca, ok := s.crasher.(interface{ CrashesArmed() bool }); ok {
		return ca.CrashesArmed()
	}
	return true
}

// runner executes one schedule after another for a single worker,
// pooling the built system across replays when the builder constructs
// a reusable one (a system with sim.System.OnReset hooks registered —
// every registered artifact workload). The first run probes: the
// system is built once around a chooserSlot; if it reports Reusable,
// every later run swaps the slot to that schedule's chooser and Resets
// the system instead of rebuilding, which eliminates all steady-state
// allocation (shared objects, register files, processes, coroutine
// stacks). Builders that register no reset hooks keep the historical
// build-per-run behaviour — and its build-count semantics, on which
// alias detection for non-reentrant builders relies.
type runner struct {
	build  Builder
	slot   chooserSlot
	sys    *sim.System
	verify Verify
	probed bool
	pooled bool
}

func newRunner(build Builder) *runner { return &runner{build: build} }

// run executes one schedule under ch on the pooled or a fresh system.
func (r *runner) run(ch sim.Chooser) (*sim.System, Verify, error) {
	if r.pooled {
		r.slot.set(ch)
		r.sys.Reset()
		return r.sys, r.verify, r.sys.Run()
	}
	if !r.probed {
		r.probed = true
		r.slot.set(ch)
		sys, verify := r.build(&r.slot)
		if sys.Reusable() {
			r.pooled, r.sys, r.verify = true, sys, verify
		}
		return sys, verify, sys.Run()
	}
	sys, verify := r.build(ch)
	return sys, verify, sys.Run()
}

// invalidate discards the pooled system after a panic left it in an
// unknown state; the next run re-probes from a fresh build.
func (r *runner) invalidate() {
	if r.sys != nil {
		r.sys.Close()
	}
	r.probed, r.pooled, r.sys, r.verify = false, false, nil, nil
}

// prefixItem identifies one plain-ExploreAll subtree: the schedule at
// its root is prefix followed by implicit zeros.
type prefixItem struct {
	prefix []int
}

// ExploreAll exhaustively enumerates the full schedule tree (every
// choice at every decision point) up to opts.MaxSchedules schedules,
// fanning disjoint decision-vector subtrees out over
// opts.Parallelism workers.
func ExploreAll(build Builder, opts Options) *Result {
	if opts.Reduction != ReductionNone {
		return exploreAllReduced(build, opts)
	}
	checkSeed(opts.SeedFrontier, "all")
	c := newCollector(opts)
	var export func(*prefixItem)
	if opts.ExportFrontier {
		export = c.exportAll
	}
	explore(c, seedItemsAll(opts.SeedFrontier), opts.parallelism(), export,
		func() func(*prefixItem, func(*prefixItem)) {
			w := &allWorker{c: c, r: newRunner(build), script: &sched.Script{},
				dog: newWatchdog(opts), export: export}
			return w.process
		})
	res := c.result()
	if opts.ExportFrontier {
		if f := c.frontierResult("all", 0); !f.Empty() {
			res.Frontier = f
		}
	}
	return res
}

// allWorker is one plain-ExploreAll worker's pooled state: the system
// runner, the replay script, and a scratch decision buffer, all reused
// across every schedule the worker executes.
type allWorker struct {
	c      *collector
	r      *runner
	script *sched.Script
	dog    *watchdog
	export func(*prefixItem)
	taken  []int
}

// process executes the schedule at the root of the subtree identified
// by item.prefix (prefix followed by implicit zeros) and pushes the
// subtree's immediate sub-subtrees: every single-point deviation at or
// after len(prefix). Together with this run those exactly cover the
// subtree, so each schedule is executed once.
func (w *allWorker) process(item *prefixItem, push func(*prefixItem)) {
	c := w.c
	if !c.claim() {
		// The subtree was never entered; with ExportFrontier it moves to
		// the frontier instead of being dropped.
		if w.export != nil {
			w.export(item)
		}
		return
	}
	prefix := item.prefix
	script := w.script
	describe := func() string { return fmt.Sprintf("decisions=%v", prefix) }
	var verr error
	var panicked bool
	for attempt := 0; ; attempt++ {
		script.Reset(prefix)
		ch := w.dog.arm(script)
		verr, panicked = protectedRun(describe, func() error {
			sys, verify, runErr := w.r.run(ch)
			if w.dog.fired() {
				return nil // timed out; handled below
			}
			if script.Clamped || len(script.Fanouts) < len(prefix) {
				return nil // aliased; detected below from the script state
			}
			return c.outcome(sys, verify, runErr)
		})
		if !panicked && w.dog.fired() && attempt == 0 {
			continue // retry a timed-out run once
		}
		break
	}
	if panicked {
		w.r.invalidate()
	}
	if !panicked && w.dog.fired() {
		// Timed out twice: skip the schedule (and its subtree) rather
		// than hang; the run still occupies its MaxSchedules slot.
		c.timedOut.Add(1)
		c.count()
		return
	}
	if !panicked && (script.Clamped || len(script.Fanouts) < len(prefix)) {
		// The replay aliased a different decision vector (possible only
		// for builders that are not deterministic functions of the
		// decision sequence): skip it rather than double-count, and do
		// not descend into the aliased subtree.
		c.unclaim()
		return
	}
	if verr != nil {
		key := make(schedKey, len(prefix))
		for i, d := range prefix {
			key[i] = int64(d)
		}
		var dec []int
		if !panicked {
			dec = canonDecisions(prefix)
		}
		c.violation(key, describe(), verr, dec)
	}
	c.count()
	// After a panic the script's fan-out record is unreliable, so the
	// subtree below this schedule is not descended into; the violation
	// records the abandoned prefix. When exporting a frontier, a stop
	// must not drop this run's children: they are pushed anyway, and the
	// worker's drain pass moves them to the frontier.
	if panicked || (c.stopped() && w.export == nil) {
		return
	}
	taken := append(w.taken[:0], prefix...)
	for len(taken) < len(script.Fanouts) {
		taken = append(taken, 0)
	}
	w.taken = taken
	// Children in descending canonical order: pops come LIFO off the
	// bottom of the frontier, so the lexicographically smallest subtree
	// is popped first and a single worker reproduces the sequential
	// enumeration order exactly. Children are slab-allocated — exact
	// capacities sized by a counting pass, so the fill appends never
	// reallocate, item pointers and prefix subslices stay stable, and
	// the whole frontier of one schedule costs two heap objects. The
	// three-index subslicing keeps each child's prefix detached from
	// its neighbors' (appends force a copy).
	children, prefixInts := 0, 0
	for i := len(prefix); i < len(taken); i++ {
		if n := script.Fanouts[i] - 1; n > 0 {
			children += n
			prefixInts += n * (i + 1)
		}
	}
	if children == 0 {
		return
	}
	items := make([]prefixItem, 0, children)
	prefixSlab := make([]int, 0, prefixInts)
	for i := len(prefix); i < len(taken); i++ {
		for choice := script.Fanouts[i] - 1; choice >= 1; choice-- {
			ps := len(prefixSlab)
			prefixSlab = append(prefixSlab, taken[:i]...)
			prefixSlab = append(prefixSlab, choice)
			items = append(items, prefixItem{prefix: prefixSlab[ps:len(prefixSlab):len(prefixSlab)]})
			push(&items[len(items)-1])
		}
	}
}

// switchPoint is one directed deviation of an ExploreBudget schedule.
type switchPoint struct {
	d      int64
	choice int
}

// budgetItem identifies one ExploreBudget subtree: the deviations
// applied so far (sorted by decision index), the remaining deviation
// budget, and the first decision index at which further deviations may
// be placed (keeping every ≤budget-deviation schedule covered exactly
// once).
type budgetItem struct {
	switches []switchPoint
	budget   int
	minIndex int64
}

// ExploreBudget exhaustively enumerates schedules that deviate from the
// default continue-current-process schedule in at most budget decision
// points, fanning disjoint deviation subtrees out over
// opts.Parallelism workers. Deviation points are discovered lazily and
// placed in increasing order, so every ≤budget-deviation schedule is
// covered exactly once.
func ExploreBudget(build Builder, budget int, opts Options) *Result {
	checkSeed(opts.SeedFrontier, "budget")
	c := newCollector(opts)
	var cache *fpCache
	if opts.Reduction.fingerprints() {
		cache = newFPCache(opts.reductionCache())
		cache.noLock = opts.parallelism() == 1
		c.cache = cache
	}
	var export func(*budgetItem)
	if opts.ExportFrontier && opts.Reduction == ReductionNone {
		export = c.exportBudget
	}
	explore(c, seedItemsBudget(opts.SeedFrontier, budget), opts.parallelism(), export,
		func() func(*budgetItem, func(*budgetItem)) {
			w := &budgetWorker{c: c, r: newRunner(build), ch: &sched.BudgetedSwitch{},
				dog: newWatchdog(opts), export: export}
			if cache != nil {
				// The chooser consults the cache only past the last directed
				// switch, where the run is a pure default continuation from a
				// state the fingerprint fully identifies (plus the chooser's
				// current-process steering, folded in via PruneInfo.Extra).
				w.ch.Prune = cache.pruneFunc()
			}
			return w.process
		})
	res := c.result()
	if opts.Reduction != ReductionNone {
		res.Reduction = c.reductionStats(opts.Reduction, cache)
	}
	if export != nil {
		if f := c.frontierResult("budget", budget); !f.Empty() {
			res.Frontier = f
		}
	}
	return res
}

// budgetWorker is one ExploreBudget worker's pooled state.
type budgetWorker struct {
	c      *collector
	r      *runner
	ch     *sched.BudgetedSwitch
	dog    *watchdog
	export func(*budgetItem)
}

func (w *budgetWorker) process(item *budgetItem, push func(*budgetItem)) {
	c := w.c
	if !c.claim() {
		if w.export != nil {
			w.export(item)
		}
		return
	}
	ch := w.ch
	describe := func() string { return fmt.Sprintf("switches=%v", ch.SwitchAt) }
	aliased := func() bool {
		return ch.Clamped || (len(item.switches) > 0 && item.switches[len(item.switches)-1].d >= ch.Decision)
	}
	var verr error
	var panicked bool
	for attempt := 0; ; attempt++ {
		ch.Reset(item.budget)
		for _, sw := range item.switches {
			ch.SwitchAt[sw.d] = sw.choice
		}
		wch := w.dog.arm(ch)
		verr, panicked = protectedRun(describe, func() error {
			sys, verify, runErr := w.r.run(wch)
			if w.dog.fired() {
				return nil // timed out; handled below
			}
			if errors.Is(runErr, sim.ErrPickAbort) {
				return nil // pruned, not an outcome
			}
			if aliased() {
				return nil
			}
			return c.outcome(sys, verify, runErr)
		})
		if !panicked && w.dog.fired() && attempt == 0 {
			continue // retry a timed-out run once
		}
		break
	}
	if panicked {
		w.r.invalidate()
	}
	if !panicked && w.dog.fired() {
		c.timedOut.Add(1)
		c.count()
		return
	}
	if !panicked && aliased() {
		// A clamped or never-reached switch means the replay aliased a
		// schedule with a different switch word (non-reentrant builder);
		// skip it rather than double-count (see allWorker.process). A
		// pruned run cannot look aliased: pruning fires only past the
		// last directed switch, so every switch was reached.
		c.unclaim()
		return
	}
	if verr != nil {
		key := make(schedKey, 0, 2*len(item.switches))
		for _, sw := range item.switches {
			key = append(key, sw.d, int64(sw.choice))
		}
		var dec []int
		if !panicked {
			dec = canonDecisions(ch.Taken)
		}
		c.violation(key, describe(), verr, dec)
	}
	if ch.Pruned && !panicked {
		// A pruned run is a covered partial replay, not a schedule (see
		// redWorker.process); its completed decisions still seed
		// children below, and deviations at or after the prune point are
		// covered by the cached visitor.
		c.release()
		c.redFPPruned.Add(1)
	} else {
		c.count()
	}
	// See allWorker.process: no descent below a panicked schedule; a
	// stop with ExportFrontier still pushes children so the drain pass
	// moves them to the frontier.
	if panicked || item.budget == 0 || (c.stopped() && w.export == nil) {
		return
	}
	taken := ch.Taken
	// Children in descending canonical order (see allWorker.process).
	// The loop runs over decisions with a recorded choice — for a pruned
	// run that excludes the abort decision, whose deviations the cached
	// visitor covers.
	for d := int64(len(taken)) - 1; d >= item.minIndex; d-- {
		for choice := ch.Fanouts[d] - 1; choice >= 0; choice-- {
			if choice == taken[d] {
				continue
			}
			push(&budgetItem{
				switches: append(item.switches[:len(item.switches):len(item.switches)], switchPoint{d: d, choice: choice}),
				budget:   item.budget - 1,
				minIndex: d + 1,
			})
		}
	}
}

// Fuzz runs nSeeds seeded pseudo-random schedules, sharding the seed
// range over opts.Parallelism workers. Options.SchedModel swaps the
// schedule source for a registered scheduler model; Options.Measure
// additionally accumulates the empirical progress-bound report into
// Result.Progress.
func Fuzz(build Builder, nSeeds int, opts Options) *Result {
	if opts.SchedModel != nil {
		if err := opts.SchedModel.Validate(); err != nil {
			panic(err) // builder misuse: specs from user input are validated upstream
		}
	}
	c := newCollector(opts)
	n := int64(nSeeds)
	if n > c.maxSched {
		n = c.maxSched
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < opts.parallelism(); w++ {
		wg.Add(1)
		//repro:allow goroutine sanctioned fuzz worker pool; seeds partition by atomic counter and results merge in canonical seed order
		go func() {
			defer wg.Done()
			r := newRunner(build)
			dog := newWatchdog(opts)
			var rec *sched.Record
			if c.opts.needDecisions() {
				rec = sched.NewRecord(nil)
			}
			var acc *measureAcc
			if c.opts.Measure {
				acc = newMeasureAcc()
				defer func() { c.mergeMeasure(acc) }()
			}
			// Schedule source: the legacy seeded Random (reseeded in
			// place per run), a Reseedable single-node model (reseeded in
			// place with the derived run seed), or a full per-run model
			// rebuild for wrapper and non-reseedable specs.
			spec := opts.SchedModel
			var rng *sched.Random
			var fast sched.Reseedable
			if spec == nil {
				rng = sched.NewRandom(0)
			} else if spec.Inner == nil {
				if base, err := sched.NewFromSpec(spec); err == nil {
					fast, _ = base.(sched.Reseedable)
				}
			}
			chooserFor := func(seed int64) sim.Chooser {
				switch {
				case rng != nil:
					rng.Reseed(seed)
					return rng
				case fast != nil:
					fast.Reseed(sched.RunSeed(spec.Seed, seed))
					return fast
				default:
					ch, err := sched.NewFromSpec(spec.WithRunSeed(seed))
					if err != nil {
						panic(err) // unreachable: spec validated at entry
					}
					return ch
				}
			}
			for {
				if c.stopped() {
					return
				}
				seed := next.Add(1) - 1
				if seed >= n {
					return
				}
				var verr error
				var panicked bool
				describe := func() string { return fmt.Sprintf("seed=%d", seed) }
				for attempt := 0; ; attempt++ {
					var ch sim.Chooser = chooserFor(seed)
					if rec != nil {
						rec.Reset(ch)
						ch = rec
					}
					ch = dog.arm(ch)
					verr, panicked = protectedRun(describe, func() error {
						sys, verify, runErr := r.run(ch)
						if dog.fired() {
							return nil // timed out; handled below
						}
						out := c.outcome(sys, verify, runErr)
						if acc != nil {
							acc.observe(sys)
						}
						return out
					})
					if !panicked && dog.fired() && attempt == 0 {
						continue // retry a timed-out run once
					}
					break
				}
				if panicked {
					r.invalidate()
				}
				if !panicked && dog.fired() {
					c.timedOut.Add(1)
					c.count()
					continue
				}
				if verr != nil {
					var dec []int
					if rec != nil && !panicked {
						dec = canonDecisions(rec.Taken)
					}
					c.violation(schedKey{seed}, describe(), verr, dec)
				}
				c.count()
			}
		}()
	}
	wg.Wait()
	// The seed range was cut by MaxSchedules; as in the tree explorers,
	// a StopAtFirst hit reports the violation rather than truncation.
	if int64(nSeeds) > c.maxSched && !(opts.StopAtFirst && c.violTotal.Load() > 0) {
		c.truncated.Store(true)
	}
	return c.result()
}
