package check_test

import (
	"encoding/json"
	"testing"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/sched"
)

// fuzzModelSpecs pins one representative spec per registered scheduler
// model for the replay-determinism matrix. Wrapper rows nest a
// stochastic inner model; the randomcrash row is the matrix's
// crash-injection coverage.
var fuzzModelSpecs = map[string]string{
	"random":      "random:seed=11",
	"uniform":     "uniform:seed=11",
	"markov":      "markov:stay=0.8,seed=4",
	"noisy":       "noisy:eps=0.15,seed=6",
	"rtc":         "rtc",
	"rotate":      "rotate",
	"stagger":     "stagger:period=2,phase=1",
	"script":      `{"name":"script","decisions":[1,0,1,1,0,1]}`,
	"budgeted":    `{"name":"budgeted","decisions":[2,1,7,0]}`,
	"reduced":     `{"name":"reduced","decisions":[1,0]}`,
	"crash":       `{"name":"crash","plan":[{"Proc":1,"Step":6}],"inner":{"name":"uniform","seed":3}}`,
	"randomcrash": `{"name":"randomcrash","seed":9,"params":{"max":1,"prob":0.05},"inner":{"name":"markov","seed":2}}`,
	"watchdog":    `{"name":"watchdog","inner":{"name":"uniform","seed":3}}`,
	"record":      `{"name":"record","inner":{"name":"uniform","seed":3}}`,
}

// fuzzOutcome is the byte-comparable outcome of one model fuzz sweep.
type fuzzOutcome struct {
	Schedules       int
	ViolationsTotal int
	Violations      []struct {
		Schedule  string
		Err       string
		Decisions []int
	}
	Progress *check.ProgressStats
}

func runModelFuzz(t *testing.T, meta artifact.Meta, spec *sched.ModelSpec, bound int64, parallelism int) fuzzOutcome {
	t.Helper()
	build, err := check.BuilderFor(meta)
	if err != nil {
		t.Fatal(err)
	}
	res := check.Fuzz(build, 30, check.Options{
		MaxSchedules:     30,
		Parallelism:      parallelism,
		SchedModel:       spec,
		Measure:          true,
		CollectDecisions: true,
		WaitFreeBound:    bound,
	})
	out := fuzzOutcome{
		Schedules:       res.Schedules,
		ViolationsTotal: res.ViolationsTotal,
		Progress:        res.Progress,
	}
	for _, v := range res.Violations {
		out.Violations = append(out.Violations, struct {
			Schedule  string
			Err       string
			Decisions []int
		}{v.Schedule, v.Err.Error(), v.Decisions})
	}
	return out
}

// TestFuzzModelDeterminismMatrix is the satellite replay-determinism
// matrix: for every registered scheduler model, the same spec and seed
// range produce identical decision traces, verdicts, and measurement
// histograms at Parallelism 1 and 4 — including the crash-injecting
// rows — and every recorded violation trace replays to the same
// verdict through the script model.
func TestFuzzModelDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep is not short")
	}
	// The lockcounter negative control under a tight bound produces
	// violations, so verdict determinism is exercised, not just counts.
	meta := artifact.Meta{Workload: "lockcounter", N: 2, V: 2, Quantum: 2, MaxSteps: 2000}
	const bound = 200
	for name, specStr := range fuzzModelSpecs {
		t.Run(name, func(t *testing.T) {
			spec, err := sched.ParseModelSpec(specStr)
			if err != nil {
				t.Fatalf("ParseModelSpec(%q): %v", specStr, err)
			}
			seq := runModelFuzz(t, meta, spec, bound, 1)
			par := runModelFuzz(t, meta, spec, bound, 4)
			a, _ := json.Marshal(seq)
			b, _ := json.Marshal(par)
			if string(a) != string(b) {
				t.Errorf("P=1 and P=4 sweeps differ\n seq: %s\n par: %s", a, b)
			}
			// Every recorded violation replays to the same verdict
			// through the script model (fired crashes are part of the
			// decision-trace determinism above; the trace replay is
			// meaningful for crash-free rows and still must not diverge
			// in verdict kind for the rest).
			if spec.Name != "crash" && spec.Name != "randomcrash" {
				for _, v := range seq.Violations {
					replay := runModelFuzz(t, meta, &sched.ModelSpec{Name: "script", Decisions: v.Decisions}, bound, 1)
					if replay.ViolationsTotal == 0 {
						t.Errorf("violation %q did not reproduce via script replay", v.Schedule)
					}
				}
			}
		})
	}
}

// TestMeasureGap pins the headline empirical claim: under the same
// stochastic scheduler, the provably wait-free unicons respects its
// declared per-invocation bound at every percentile, while the
// lockcounter negative control starves — censored samples appear and
// the observed maximum blows past unicons's whole tail.
func TestMeasureGap(t *testing.T) {
	uniMeta := artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 2, MaxSteps: 1 << 14}
	lcMeta := artifact.Meta{Workload: "lockcounter", N: 2, V: 2, Quantum: 2, MaxSteps: 4000}
	spec, err := sched.ParseModelSpec("uniform:seed=1")
	if err != nil {
		t.Fatal(err)
	}
	uni := runModelFuzz(t, uniMeta, spec, 0, 2)
	lc := runModelFuzz(t, lcMeta, spec, 0, 2)
	if uni.Progress == nil || lc.Progress == nil {
		t.Fatalf("missing progress stats: %+v %+v", uni.Progress, lc.Progress)
	}
	if uni.Progress.Samples == 0 || lc.Progress.Samples+lc.Progress.Censored == 0 {
		t.Fatalf("empty measurement: uni=%+v lc=%+v", uni.Progress, lc.Progress)
	}
	if b := artifact.DeclaredBound(uniMeta); b > 0 && uni.Progress.Max > b {
		t.Errorf("unicons measured max %d exceeds declared bound %d", uni.Progress.Max, b)
	}
	if uni.Progress.Censored != 0 {
		t.Errorf("unicons left %d invocations unfinished under a uniform scheduler", uni.Progress.Censored)
	}
	if lc.Progress.Censored == 0 {
		t.Errorf("lockcounter negative control shows no censored (starved) invocations: %+v", lc.Progress)
	}
	if lc.Progress.Max < 2*uni.Progress.Max {
		t.Errorf("no measured starvation gap: lockcounter max %d vs unicons max %d", lc.Progress.Max, uni.Progress.Max)
	}
}

// TestMeasureLegacyPath pins that Measure works on the historical
// seeded-random path (SchedModel nil) and stays deterministic across
// parallelism there too.
func TestMeasureLegacyPath(t *testing.T) {
	meta := artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 2, MaxSteps: 1 << 14}
	seq := runModelFuzz(t, meta, nil, 0, 1)
	par := runModelFuzz(t, meta, nil, 0, 4)
	a, _ := json.Marshal(seq)
	b, _ := json.Marshal(par)
	if string(a) != string(b) {
		t.Errorf("legacy-path measurement differs across parallelism\n seq: %s\n par: %s", a, b)
	}
	if seq.Progress == nil || seq.Progress.Runs != 30 {
		t.Errorf("expected 30 measured runs, got %+v", seq.Progress)
	}
}
