package check_test

import (
	"errors"
	"testing"

	"repro/internal/check"
)

func TestResultMerge(t *testing.T) {
	cum := &check.Result{}
	leg1 := &check.Result{
		Schedules: 10, ViolationsTotal: 2, Aliased: 1, StepLimited: 3, Steals: 4, TimedOutRuns: 1,
		Violations:   []check.Violation{{Schedule: "a", Err: errors.New("x")}},
		Degradations: []string{"d1"},
		Truncated:    true,
		Frontier:     &check.Frontier{},
	}
	leg2 := &check.Result{
		Schedules: 5, ViolationsTotal: 1, Aliased: 2, StepLimited: 1, Steals: 1, TimedOutRuns: 2,
		Violations:   []check.Violation{{Schedule: "b", Err: errors.New("y")}},
		Degradations: []string{"d2"},
		Truncated:    false,
		Frontier:     nil,
	}
	cum.Merge(leg1)
	cum.Merge(leg2)
	if cum.Schedules != 15 || cum.ViolationsTotal != 3 || cum.Aliased != 3 ||
		cum.StepLimited != 4 || cum.Steals != 5 || cum.TimedOutRuns != 3 {
		t.Fatalf("tallies wrong: %+v", cum)
	}
	if len(cum.Violations) != 2 || cum.Violations[0].Schedule != "a" || cum.Violations[1].Schedule != "b" {
		t.Fatalf("violations not appended in leg order: %+v", cum.Violations)
	}
	if len(cum.Degradations) != 2 {
		t.Fatalf("degradations not appended: %v", cum.Degradations)
	}
	// Verdict-shaped fields come from the latest leg only.
	if cum.Truncated || cum.Frontier != nil {
		t.Fatalf("latest-leg fields not replaced: truncated=%v frontier=%v", cum.Truncated, cum.Frontier)
	}
}
