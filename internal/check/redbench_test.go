package check

import (
	"testing"

	"repro/internal/artifact"
)

func BenchmarkRedPlain(b *testing.B) {
	build, _ := BuilderFor(artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 0, MaxSteps: 1 << 16})
	b.ResetTimer()
	sched := 0
	for i := 0; i < b.N; i++ {
		res := ExploreAll(build, Options{Parallelism: 1, MaxSchedules: 1 << 22})
		sched += res.Schedules
	}
	b.ReportMetric(float64(sched)/b.Elapsed().Seconds(), "sched/s")
}

func BenchmarkRedFull(b *testing.B) {
	build, _ := BuilderFor(artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 0, MaxSteps: 1 << 16})
	b.ResetTimer()
	sched := 0
	for i := 0; i < b.N; i++ {
		res := ExploreAll(build, Options{Parallelism: 1, MaxSchedules: 1 << 22, Reduction: ReductionFull})
		sched += res.Schedules
	}
	b.ReportMetric(float64(sched)/b.Elapsed().Seconds(), "sched/s")
}

func BenchmarkRedSleep(b *testing.B) {
	build, _ := BuilderFor(artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 0, MaxSteps: 1 << 16})
	b.ResetTimer()
	sched := 0
	for i := 0; i < b.N; i++ {
		res := ExploreAll(build, Options{Parallelism: 1, MaxSchedules: 1 << 22, Reduction: ReductionSleepSet})
		sched += res.Schedules
	}
	b.ReportMetric(float64(sched)/b.Elapsed().Seconds(), "sched/s")
}

func BenchmarkRedFP(b *testing.B) {
	build, _ := BuilderFor(artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 0, MaxSteps: 1 << 16})
	b.ResetTimer()
	sched := 0
	for i := 0; i < b.N; i++ {
		res := ExploreAll(build, Options{Parallelism: 1, MaxSchedules: 1 << 22, Reduction: ReductionFingerprint})
		sched += res.Schedules
	}
	b.ReportMetric(float64(sched)/b.Elapsed().Seconds(), "sched/s")
}
