package check

import (
	"fmt"
	"sort"
)

// HistOp is one completed operation in a concurrent history, stamped
// with the simulator's logical clock (sim.Ctx.Now) at invocation start
// and completion.
type HistOp struct {
	// Proc identifies the invoking process (diagnostics only).
	Proc int
	// Start and End delimit the operation's real-time interval.
	Start, End int64
	// Kind and Args describe the operation for the spec.
	Kind int
	Args [2]uint64
	// Ret is the value the operation actually returned.
	Ret uint64
	// Desc labels the op in error messages.
	Desc string
}

// SeqSpec is a sequential specification: apply op to state, returning
// the new state and the return value a sequential execution would give.
// It must be pure.
type SeqSpec func(state any, op HistOp) (newState any, ret uint64)

// StateKey optionally folds a spec state into a comparable key for
// memoization; nil disables memoization (fine for histories of ≤ ~12
// ops).
type StateKey func(state any) uint64

// Linearizable reports whether the history has a linearization: a total
// order of the ops that (i) respects real-time order (op A before op B
// whenever A.End < B.Start) and (ii) yields each op's recorded return
// value under the sequential specification. It returns nil if one
// exists, and a diagnostic error otherwise.
//
// The search is the Wing & Gong algorithm with optional memoization;
// histories up to 64 operations are supported.
func Linearizable(ops []HistOp, initial any, spec SeqSpec, key StateKey) error {
	if len(ops) > 64 {
		return fmt.Errorf("check: history of %d ops exceeds 64-op limit", len(ops))
	}
	idx := make([]int, len(ops))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ops[idx[a]].Start < ops[idx[b]].Start })
	sorted := make([]HistOp, len(ops))
	for i, j := range idx {
		sorted[i] = ops[j]
	}

	type memoKey struct {
		taken uint64
		state uint64
	}
	var memo map[memoKey]bool
	if key != nil {
		memo = make(map[memoKey]bool)
	}

	var rec func(taken uint64, n int, state any) bool
	rec = func(taken uint64, n int, state any) bool {
		if n == len(sorted) {
			return true
		}
		if memo != nil {
			k := memoKey{taken: taken, state: key(state)}
			if memo[k] {
				return false // already proven a dead end
			}
			defer func() { memo[memoKey{taken: taken, state: key(state)}] = true }()
		}
		// An op may linearize next only if no untaken op completed
		// strictly before it started.
		minEnd := int64(1<<62 - 1)
		for i, op := range sorted {
			if taken&(1<<i) == 0 && op.End < minEnd {
				minEnd = op.End
			}
		}
		for i, op := range sorted {
			if taken&(1<<i) != 0 || op.Start > minEnd {
				continue
			}
			st, ret := spec(state, op)
			if ret != op.Ret {
				continue
			}
			if rec(taken|1<<i, n+1, st) {
				return true
			}
		}
		return false
	}
	if rec(0, 0, initial) {
		return nil
	}
	return fmt.Errorf("check: history of %d ops is not linearizable: %v", len(ops), describe(sorted))
}

func describe(ops []HistOp) []string {
	out := make([]string, len(ops))
	for i, op := range ops {
		d := op.Desc
		if d == "" {
			d = fmt.Sprintf("op%d(kind=%d,args=%v)=%d", i, op.Kind, op.Args, op.Ret)
		}
		out[i] = fmt.Sprintf("p%d[%d,%d] %s", op.Proc, op.Start, op.End, d)
	}
	return out
}

// History collects HistOps from concurrently running invocations. It is
// safe in the simulator's one-statement-at-a-time execution model (no
// two invocations append at the same instant).
type History struct {
	ops []HistOp
}

// Add appends a completed op.
func (h *History) Add(op HistOp) { h.ops = append(h.ops, op) }

// Ops returns the recorded ops.
func (h *History) Ops() []HistOp { return h.ops }

// Check runs Linearizable over the recorded history.
func (h *History) Check(initial any, spec SeqSpec, key StateKey) error {
	return Linearizable(h.ops, initial, spec, key)
}
