package check

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
)

func TestReductionParseStringRoundTrip(t *testing.T) {
	for _, r := range []Reduction{ReductionNone, ReductionSleepSet, ReductionFingerprint, ReductionFull} {
		got, err := ParseReduction(r.String())
		if err != nil {
			t.Errorf("ParseReduction(%q): %v", r.String(), err)
		}
		if got != r {
			t.Errorf("round trip %v -> %q -> %v", r, r.String(), got)
		}
	}
	if _, err := ParseReduction("bogus"); err == nil {
		t.Error("ParseReduction accepted \"bogus\"")
	}
}

func TestReductionComponents(t *testing.T) {
	cases := []struct {
		r          Reduction
		sleep, fps bool
	}{
		{ReductionNone, false, false},
		{ReductionSleepSet, true, false},
		{ReductionFingerprint, false, true},
		{ReductionFull, true, true},
	}
	for _, tc := range cases {
		if got := tc.r.sleepSets(); got != tc.sleep {
			t.Errorf("%v.sleepSets() = %v, want %v", tc.r, got, tc.sleep)
		}
		if got := tc.r.fingerprints(); got != tc.fps {
			t.Errorf("%v.fingerprints() = %v, want %v", tc.r, got, tc.fps)
		}
	}
}

func TestCompareKeyOrder(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{1, 2}, []int{1, 2}, 0},
		{nil, []int{0}, -1},
		{[]int{1}, []int{1, 0}, -1}, // proper prefix precedes its extension
		{[]int{0, 5}, []int{1}, -1}, // lexicographic before length
		{[]int{2}, []int{1, 9, 9}, 1},
	}
	for _, tc := range cases {
		if got := compareKey(tc.a, tc.b); got != tc.want {
			t.Errorf("compareKey(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := compareKey(tc.b, tc.a); got != -tc.want {
			t.Errorf("compareKey(%v, %v) = %d, want %d", tc.b, tc.a, got, -tc.want)
		}
	}
}

func TestIsPrefix(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{nil, []int{0}, true},
		{[]int{1}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1, 2}, false}, // proper prefix only
		{[]int{2}, []int{1, 2}, false},
		{[]int{1, 2, 3}, []int{1, 2}, false},
	}
	for _, tc := range cases {
		if got := isPrefix(tc.a, tc.b); got != tc.want {
			t.Errorf("isPrefix(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSleepSubset(t *testing.T) {
	e1 := sched.SleepEntry{Proc: 1, Fp: mem.Footprint{Obj: 7, Kind: mem.AccessRead}}
	e2 := sched.SleepEntry{Proc: 2, Fp: mem.Footprint{Obj: 7, Kind: mem.AccessWrite}}
	if !sleepSubset(nil, []sched.SleepEntry{e1}) {
		t.Error("empty set not a subset")
	}
	if !sleepSubset([]sched.SleepEntry{e1}, []sched.SleepEntry{e2, e1}) {
		t.Error("contained entry not found")
	}
	if sleepSubset([]sched.SleepEntry{e1, e2}, []sched.SleepEntry{e1}) {
		t.Error("superset accepted as subset")
	}
}

// TestFPCacheVisitRules pins each branch of the pruning rule; every one
// is load-bearing for soundness (see the visit doc comment).
func TestFPCacheVisitRules(t *testing.T) {
	e1 := sched.SleepEntry{Proc: 1}
	e2 := sched.SleepEntry{Proc: 2}

	c := newFPCache(16)
	// Miss: the visitor claims the state, never prunes.
	if c.visit(100, []int{1, 0}, []sched.SleepEntry{e1}, 5) {
		t.Fatal("pruned on a cache miss")
	}
	// Same key: a run revisiting its own entry (self-replay) continues.
	if c.visit(100, []int{1, 0}, nil, 5) {
		t.Fatal("pruned on an equal key")
	}
	// Cached key a proper prefix of ours: our own earlier pass through a
	// default-continuation cycle; pruning would lose deviations past it.
	if c.visit(100, []int{1, 0, 0, 0}, []sched.SleepEntry{e1}, 5) {
		t.Fatal("pruned on a default-continuation cycle")
	}
	// Strictly smaller non-prefix key with >= budget and subset sleep:
	// the canonical visitor covers us — prune.
	if !c.visit(100, []int{1, 1}, []sched.SleepEntry{e1, e2}, 5) {
		t.Fatal("did not prune a covered revisit")
	}
	// Same revisit but the cached visitor had a smaller budget: its
	// subtree explored fewer deviations than ours would — no prune.
	if c.visit(100, []int{1, 1}, []sched.SleepEntry{e1, e2}, 6) {
		t.Fatal("pruned despite a larger remaining budget")
	}
	// Same revisit but our sleep set lacks the cached visitor's entry:
	// the visitor skipped branches we must still explore — no prune.
	if c.visit(100, []int{1, 1}, []sched.SleepEntry{e2}, 5) {
		t.Fatal("pruned despite a non-superset sleep set")
	}

	// Larger cached key: the current run is the more canonical visitor;
	// it replaces the entry and continues, and the old key's runs now
	// defer to it.
	c2 := newFPCache(16)
	if c2.visit(200, []int{3}, nil, 5) {
		t.Fatal("pruned on a miss")
	}
	if c2.visit(200, []int{1, 1}, nil, 5) {
		t.Fatal("pruned the more-canonical replacement visitor")
	}
	if !c2.visit(200, []int{3}, nil, 5) {
		t.Fatal("old visitor not pruned after replacement")
	}
	hits, evictions, entries := c2.stats()
	if hits != 2 || evictions != 0 || entries != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (2, 0, 1)", hits, evictions, entries)
	}
}

// TestFPCacheFIFOEviction checks that overflow evicts the oldest entry
// and that an evicted fingerprint behaves as a fresh miss — forgoing
// pruning, never corrupting it.
func TestFPCacheFIFOEviction(t *testing.T) {
	c := newFPCache(2)
	for fp := uint64(1); fp <= 3; fp++ {
		if c.visit(fp, []int{0}, nil, 1) {
			t.Fatalf("pruned on insert of %d", fp)
		}
	}
	hits, evictions, entries := c.stats()
	if hits != 0 || evictions != 1 || entries != 2 {
		t.Fatalf("stats = (%d, %d, %d), want (0, 1, 2)", hits, evictions, entries)
	}
	// Fingerprint 1 was evicted: revisiting it is a miss (reinsert, no
	// prune) even though a covering visitor once existed.
	if c.visit(1, []int{5}, nil, 1) {
		t.Fatal("pruned on an evicted fingerprint")
	}
	// Fingerprint 3 is still cached; a later-key revisit prunes.
	if !c.visit(3, []int{9}, nil, 1) {
		t.Fatal("retained entry did not prune")
	}
}
