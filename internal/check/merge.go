package check

// Merge folds one continuation leg's result into the cumulative result
// of a multi-leg exploration. This is the aggregation half of frontier
// resume (Options.ExportFrontier / Options.SeedFrontier): an
// exploration executed as a sequence of legs — each seeded from the
// previous leg's frontier — covers exactly the schedules of the
// uninterrupted exploration, so summing the counts and concatenating
// the violations across legs reproduces the uninterrupted Result's
// totals. Monotone tallies (Schedules, ViolationsTotal, Aliased,
// StepLimited, Steals, TimedOutRuns) add; Violations and Degradations
// append in leg order (canonical within each leg, not across legs);
// the latest leg's verdict-shaped fields (Truncated, Interrupted,
// Frontier, Reduction) replace the previous ones, since only the most
// recent leg knows whether the exploration is still unfinished.
func (r *Result) Merge(leg *Result) {
	r.Schedules += leg.Schedules
	r.Violations = append(r.Violations, leg.Violations...)
	r.ViolationsTotal += leg.ViolationsTotal
	r.Aliased += leg.Aliased
	r.StepLimited += leg.StepLimited
	r.Steals += leg.Steals
	r.TimedOutRuns += leg.TimedOutRuns
	r.Degradations = append(r.Degradations, leg.Degradations...)
	r.Truncated = leg.Truncated
	r.Interrupted = leg.Interrupted
	r.Frontier = leg.Frontier
	r.Reduction = leg.Reduction
}
