package check_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/sched"
)

// crossModes is every reduction mode, plain first.
var crossModes = []check.Reduction{
	check.ReductionNone,
	check.ReductionSleepSet,
	check.ReductionFingerprint,
	check.ReductionFull,
}

// crossConfig is one pinned workload configuration of the cross-check
// matrix. budget 0 runs ExploreAll (the full tree — feasible for these
// sizes); budget > 0 runs ExploreBudget.
type crossConfig struct {
	name     string
	meta     artifact.Meta
	waitFree int64
	budget   int
	wantViol bool
}

// crossMatrix pins the reduced-vs-plain equivalence matrix: consensus
// workloads above and below their quantum thresholds, a multiprocessor
// configuration, crash injection, and the blocking negative control.
// Every configuration is small enough that the plain exploration runs to
// completion, so verdict equality is exact, not sampled.
var crossMatrix = []crossConfig{
	{name: "unicons-q0", meta: artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 0}, wantViol: true},
	{name: "unicons-q2", meta: artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 2}, wantViol: true},
	{name: "unicons-q5-ok", meta: artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 5}},
	{name: "unicons-2v-ok", meta: artifact.Meta{Workload: "unicons", N: 2, V: 2, Quantum: 2}},
	{name: "unicons-crash", meta: artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 2,
		Crashes: []sched.CrashPoint{{Proc: 0, Step: 4}}}, wantViol: true},
	{name: "hybridcas-b3", meta: artifact.Meta{Workload: "hybridcas", N: 2, V: 1, Quantum: 2},
		budget: 3, wantViol: true},
	{name: "multicons-b1-ok", meta: artifact.Meta{Workload: "multicons", P: 2, M: 1, V: 1, Quantum: 2},
		budget: 1},
	{name: "lockcounter", meta: artifact.Meta{Workload: "lockcounter", N: 2, V: 2, Quantum: 2, MaxSteps: 2000},
		waitFree: 200, wantViol: true},
}

func runCross(t *testing.T, cfg crossConfig, mode check.Reduction, parallelism int) *check.Result {
	t.Helper()
	build, err := check.BuilderFor(cfg.meta)
	if err != nil {
		t.Fatalf("BuilderFor(%s): %v", cfg.name, err)
	}
	opts := check.Options{
		MaxSchedules:  2_000_000,
		Parallelism:   parallelism,
		WaitFreeBound: cfg.waitFree,
		Reduction:     mode,
	}
	var res *check.Result
	if cfg.budget > 0 {
		res = check.ExploreBudget(build, cfg.budget, opts)
	} else {
		res = check.ExploreAll(build, opts)
	}
	if res.Truncated || res.Interrupted {
		t.Fatalf("%s/%v/p%d: exploration did not run to completion (truncated=%v interrupted=%v after %d schedules)",
			cfg.name, mode, parallelism, res.Truncated, res.Interrupted, res.Schedules)
	}
	return res
}

// TestCrossCheckReducedMatchesPlain is the reduced-vs-plain equivalence
// harness: over the pinned matrix, at every Parallelism, every reduction
// mode must reproduce the plain verdict exactly — violations exist under
// reduction iff they exist plain — while never executing more schedules
// and never inventing violations beyond the plain count (reduction
// merges equivalent counterexamples, so its total is a lower bound).
func TestCrossCheckReducedMatchesPlain(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-check matrix is heavyweight")
	}
	for _, cfg := range crossMatrix {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for _, parallelism := range []int{1, 4} {
				plain := runCross(t, cfg, check.ReductionNone, parallelism)
				if plain.Reduction != nil {
					t.Errorf("p%d: plain result carries ReductionStats", parallelism)
				}
				if got := !plain.OK(); got != cfg.wantViol {
					t.Fatalf("p%d: plain verdict violations=%v, want %v (total %d)",
						parallelism, got, cfg.wantViol, plain.ViolationsTotal)
				}
				for _, mode := range crossModes[1:] {
					red := runCross(t, cfg, mode, parallelism)
					if (red.ViolationsTotal > 0) != (plain.ViolationsTotal > 0) {
						t.Errorf("%v/p%d: verdict mismatch: reduced %d violations, plain %d",
							mode, parallelism, red.ViolationsTotal, plain.ViolationsTotal)
					}
					if red.ViolationsTotal > plain.ViolationsTotal {
						t.Errorf("%v/p%d: reduced found %d violations > plain %d",
							mode, parallelism, red.ViolationsTotal, plain.ViolationsTotal)
					}
					if red.Schedules > plain.Schedules {
						t.Errorf("%v/p%d: reduced executed %d schedules > plain %d",
							mode, parallelism, red.Schedules, plain.Schedules)
					}
					if red.Reduction == nil {
						t.Errorf("%v/p%d: reduced result missing ReductionStats", mode, parallelism)
					} else if red.Reduction.Mode != mode.String() {
						t.Errorf("%v/p%d: ReductionStats.Mode = %q", mode, parallelism, red.Reduction.Mode)
					}
				}
			}
		})
	}
}

// TestCrossCheckMinQFrontier sweeps the quantum on the Fig. 3 workload
// and requires every reduction mode to reproduce the plain exploration's
// minimal-Q frontier exactly: the same set of quanta with violations.
// A reduction that pruned a genuine counterexample would pass a failing
// quantum; one that invented violations would fail a passing quantum.
func TestCrossCheckMinQFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier sweep is heavyweight")
	}
	const maxQ = 6
	frontier := func(mode check.Reduction) string {
		var buf bytes.Buffer
		for q := 0; q <= maxQ; q++ {
			build, err := check.BuilderFor(artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: q})
			if err != nil {
				t.Fatal(err)
			}
			res := check.ExploreAll(build, check.Options{MaxSchedules: 2_000_000, Parallelism: 4, Reduction: mode})
			if res.Truncated || res.Interrupted {
				t.Fatalf("mode %v Q=%d: incomplete exploration", mode, q)
			}
			fmt.Fprintf(&buf, "Q%d:%v ", q, !res.OK())
		}
		return buf.String()
	}
	want := frontier(check.ReductionNone)
	if want != "Q0:true Q1:true Q2:true Q3:true Q4:true Q5:false Q6:false " {
		t.Fatalf("plain frontier moved: %s", want)
	}
	for _, mode := range crossModes[1:] {
		if got := frontier(mode); got != want {
			t.Errorf("mode %v frontier %s != plain %s", mode, got, want)
		}
	}
}

// TestReducedViolationForensicsDeterministic pins the repro pipeline for
// violations found under reduction: the attached artifact bundle and its
// shrink must be byte-identical across repeated explorations, and the
// bundle must actually replay to a failure.
func TestReducedViolationForensicsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("forensics cross-check is heavyweight")
	}
	meta := artifact.Meta{Workload: "hybridcas", N: 2, V: 1, Quantum: 2}
	run := func() *check.Result {
		build, err := check.BuilderFor(meta)
		if err != nil {
			t.Fatal(err)
		}
		res := check.ExploreBudget(build, 3, check.Options{
			MaxSchedules: 2_000_000,
			Parallelism:  1,
			Reduction:    check.ReductionFingerprint,
			ArtifactMeta: &meta,
			Minimize:     true,
		})
		if res.OK() {
			t.Fatal("expected a violation under reduction")
		}
		return res
	}
	encode := func(res *check.Result) []byte {
		v := res.First()
		if v.ForensicsErr != nil {
			t.Fatalf("forensics failed: %v", v.ForensicsErr)
		}
		if v.Artifact == nil || v.Shrink == nil {
			t.Fatalf("violation missing artifact (%v) or shrink stats (%v)", v.Artifact, v.Shrink)
		}
		b, err := json.Marshal(struct {
			Bundle *artifact.Bundle
			Shrink any
		}{v.Artifact, v.Shrink})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first, second := encode(run()), encode(run())
	if !bytes.Equal(first, second) {
		t.Errorf("reduced-mode forensics not byte-identical:\n%s\nvs\n%s", first, second)
	}
	// The bundle must reproduce the failure through the artifact pipeline.
	res := run()
	rep, err := artifact.Replay(res.First().Artifact, artifact.ReplayOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Err == nil {
		t.Error("minimized bundle of a reduction-found violation replayed clean")
	}
}
