// Package check provides schedule-space exploration and property
// checking for algorithms running on the internal/sim simulator.
//
// Three strategies are offered:
//
//   - ExploreAll: exhaustive DFS over every scheduling decision — the
//     full schedule tree. Feasible only for very small configurations.
//   - ExploreBudget: exhaustive DFS over schedules that deviate from the
//     default run-to-completion schedule in at most B places. For
//     quantum/priority-scheduled algorithms all interesting behaviour is
//     triggered by preemptions, so a small deviation budget covers the
//     cases the paper's proofs reason about (e.g. "at most one quantum
//     preemption per invocation").
//   - Fuzz: many seeded pseudo-random schedules.
//
// Each run is built fresh by a Builder, executed, and then verified by
// the Verify function the builder returned; violations are collected
// with a replayable description of the offending schedule.
package check

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
)

// Verify checks the outcome of one completed run. runErr is the error
// returned by System.Run (nil, ErrStepLimit, or a process panic); the
// verifier decides what constitutes a violation and returns a non-nil
// error for one.
type Verify func(runErr error) error

// Builder constructs a fresh system (with fresh shared objects) wired to
// the given chooser, returning the system and its outcome verifier.
type Builder func(ch sim.Chooser) (*sim.System, Verify)

// Options bounds an exploration.
type Options struct {
	// MaxSchedules caps the number of schedules executed (0 = 200000).
	MaxSchedules int
	// StopAtFirst stops at the first violation when true.
	StopAtFirst bool
	// MaxViolations caps recorded violations (0 = 16).
	MaxViolations int
}

func (o Options) maxSchedules() int {
	if o.MaxSchedules <= 0 {
		return 200000
	}
	return o.MaxSchedules
}

func (o Options) maxViolations() int {
	if o.MaxViolations <= 0 {
		return 16
	}
	return o.MaxViolations
}

// Violation describes one failed run.
type Violation struct {
	// Schedule is a replayable description of the offending schedule.
	Schedule string
	// Err is the verifier's error.
	Err error
}

// Result summarizes an exploration.
type Result struct {
	// Schedules is the number of schedules executed.
	Schedules int
	// Violations holds recorded violations (capped).
	Violations []Violation
	// Truncated reports whether MaxSchedules cut the exploration short.
	Truncated bool
}

// OK reports whether no violation was found.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// First returns the first violation, or nil.
func (r *Result) First() *Violation {
	if len(r.Violations) == 0 {
		return nil
	}
	return &r.Violations[0]
}

func (r *Result) add(opts Options, schedule string, err error) (stop bool) {
	if len(r.Violations) < opts.maxViolations() {
		r.Violations = append(r.Violations, Violation{Schedule: schedule, Err: err})
	}
	return opts.StopAtFirst
}

// ExploreAll exhaustively enumerates the full schedule tree (every
// choice at every decision point) up to opts.MaxSchedules schedules.
func ExploreAll(build Builder, opts Options) *Result {
	res := &Result{}
	var prefix []int
	for {
		if res.Schedules >= opts.maxSchedules() {
			res.Truncated = true
			return res
		}
		script := &sched.Script{Decisions: prefix}
		sys, verify := build(script)
		runErr := sys.Run()
		res.Schedules++
		if verr := verify(runErr); verr != nil {
			if res.add(opts, fmt.Sprintf("decisions=%v", prefix), verr) {
				return res
			}
		}
		// Compute the full decision vector this run took (prefix, then
		// implicit zeros), and advance it lexicographically.
		taken := make([]int, len(script.Fanouts))
		copy(taken, prefix)
		i := len(taken) - 1
		for i >= 0 && taken[i]+1 >= script.Fanouts[i] {
			i--
		}
		if i < 0 {
			return res
		}
		prefix = append(taken[:i:i], taken[i]+1)
	}
}

// ExploreBudget exhaustively enumerates schedules that deviate from the
// default continue-current-process schedule in at most budget decision
// points. Deviation points are discovered lazily and placed in
// increasing order, so every ≤budget-deviation schedule is covered
// exactly once.
func ExploreBudget(build Builder, budget int, opts Options) *Result {
	res := &Result{}
	var rec func(switches map[int64]int, minIndex int64, budget int) (stop bool)
	rec = func(switches map[int64]int, minIndex int64, budget int) bool {
		if res.Schedules >= opts.maxSchedules() {
			res.Truncated = true
			return true
		}
		ch := &sched.BudgetedSwitch{SwitchAt: switches}
		sys, verify := build(ch)
		runErr := sys.Run()
		res.Schedules++
		if verr := verify(runErr); verr != nil {
			if res.add(opts, fmt.Sprintf("switches=%v", switches), verr) {
				return true
			}
		}
		if budget == 0 {
			return false
		}
		fanouts := ch.Fanouts
		taken := ch.Taken
		for d := minIndex; d < int64(len(fanouts)); d++ {
			for choice := 0; choice < fanouts[d]; choice++ {
				if choice == taken[d] {
					continue
				}
				next := make(map[int64]int, len(switches)+1)
				for k, v := range switches {
					next[k] = v
				}
				next[d] = choice
				if rec(next, d+1, budget-1) {
					return true
				}
			}
		}
		return false
	}
	rec(map[int64]int{}, 0, budget)
	return res
}

// Fuzz runs nSeeds seeded pseudo-random schedules.
func Fuzz(build Builder, nSeeds int, opts Options) *Result {
	res := &Result{}
	for seed := 0; seed < nSeeds; seed++ {
		if res.Schedules >= opts.maxSchedules() {
			res.Truncated = true
			return res
		}
		sys, verify := build(sched.NewRandom(int64(seed)))
		runErr := sys.Run()
		res.Schedules++
		if verr := verify(runErr); verr != nil {
			if res.add(opts, fmt.Sprintf("seed=%d", seed), verr) {
				return res
			}
		}
	}
	return res
}
