// Package check provides schedule-space exploration and property
// checking for algorithms running on the internal/sim simulator.
//
// Three strategies are offered:
//
//   - ExploreAll: exhaustive DFS over every scheduling decision — the
//     full schedule tree. Feasible only for very small configurations.
//   - ExploreBudget: exhaustive DFS over schedules that deviate from the
//     default run-to-completion schedule in at most B places. For
//     quantum/priority-scheduled algorithms all interesting behaviour is
//     triggered by preemptions, so a small deviation budget covers the
//     cases the paper's proofs reason about (e.g. "at most one quantum
//     preemption per invocation").
//   - Fuzz: many seeded pseudo-random schedules.
//
// Each run is built fresh by a Builder, executed, and then verified by
// the Verify function the builder returned; violations are collected
// with a replayable description of the offending schedule.
//
// # Parallel exploration
//
// All three explorers fan work out over Options.Parallelism worker
// goroutines (default runtime.NumCPU()). ExploreAll and ExploreBudget
// partition the schedule tree: each worker owns a Chase–Lev
// work-stealing deque of decision-vector subtrees, pushing and popping
// children LIFO at the bottom and stealing the shallowest (largest)
// subtree from another worker's top only when its own deque runs dry
// (a subtree hand-off is a pure replay prefix, so no run state crosses
// workers; Result.Steals counts the hand-offs). Fuzz shards the seed
// range over workers via an atomic counter. Parallelism: 1 bypasses
// the worker pool and all cross-worker machinery entirely — the
// frontier is a plain stack on the calling goroutine — so sequential
// exploration pays no parallelism tax.
//
// Per-run cost: each worker pools one built system across all the
// schedules it executes when the builder constructs a reusable system
// (one with sim.System.OnReset hooks — every registered artifact
// workload); the steady-state replay loop then performs no heap
// allocation. Builders without reset hooks fall back to one fresh
// build per run.
//
// Builder reentrancy contract: because the Builder is called
// concurrently by the workers, it must be reentrant — every shared
// object, output slice, history collector, and any other per-run state
// must be created inside the builder, never captured from an enclosing
// scope and reused across runs. (A check.History in particular records
// one run at a time and must be created per build.) All builders in
// this repository follow this contract; Parallelism: 1 restores strict
// sequential execution for builders that cannot.
//
// Determinism guarantee: violations are merged in canonical schedule
// order (lexicographic decision vector for ExploreAll, lexicographic
// (index, choice) switch word for ExploreBudget, seed order for Fuzz),
// so for explorations that run to completion the Result — Schedules,
// Truncated, Violations, ViolationsTotal, and Result.First() — is
// byte-identical run-to-run and identical to the sequential
// (Parallelism: 1) engine, regardless of worker timing. When an
// exploration is cut short (StopAtFirst fires, or MaxSchedules
// truncates a parallel run), the number of schedules executed — and
// therefore which violations were reachable — can depend on worker
// timing; StopAtFirst still guarantees at least one violation is
// returned if any exists, and First() is the canonically smallest
// violation among those found.
//
// # Reductions
//
// Options.Reduction enables sleep-set partial-order reduction and/or
// visited-fingerprint pruning (DESIGN.md §10). Reductions preserve
// verdicts — a reduced exploration that runs to completion finds a
// violation iff the plain one does — but ViolationsTotal becomes a
// lower bound (equivalent interleavings collapse), and with
// Parallelism > 1 the reduced schedule counts (never verdicts) can
// vary run-to-run because fingerprint-cache insertion order is
// timing-dependent; Parallelism: 1 restores byte-identical counts.
// Violations found under reduction carry ordinary decision vectors, so
// artifact replay and shrinking are unchanged.
package check

import (
	"context"
	"runtime"
	"time"

	"repro/internal/artifact"
	"repro/internal/minimize"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Verify checks the outcome of one completed run. runErr is the error
// returned by System.Run (nil, ErrStepLimit, or a process panic); the
// verifier decides what constitutes a violation and returns a non-nil
// error for one.
type Verify func(runErr error) error

// Builder constructs a fresh system (with fresh shared objects) wired to
// the given chooser, returning the system and its outcome verifier.
//
// Builders must be reentrant: explorers call them from Parallelism
// concurrent workers, so all per-run state must be created inside the
// builder (see the package comment).
type Builder func(ch sim.Chooser) (*sim.System, Verify)

// ProgressInfo is a snapshot of a running exploration, delivered to
// Options.Progress.
type ProgressInfo struct {
	// Schedules is the number of schedules executed so far.
	Schedules int64
	// Violations is the number of violations found so far (uncapped).
	Violations int64
	// Elapsed is the wall-clock time since the exploration started.
	Elapsed time.Duration
	// SchedulesPerSec is the mean throughput since the start.
	SchedulesPerSec float64
}

// Options bounds an exploration.
type Options struct {
	// MaxSchedules caps the number of schedules executed (0 = 200000).
	MaxSchedules int
	// StopAtFirst stops at the first violation when true.
	StopAtFirst bool
	// MaxViolations caps recorded violations (0 = 16). Violations beyond
	// the cap are dropped from Violations but still counted in
	// ViolationsTotal.
	MaxViolations int
	// Parallelism is the number of worker goroutines exploring
	// concurrently (0 = runtime.NumCPU(), 1 = strict sequential). The
	// Builder must be reentrant for Parallelism > 1; see the package
	// comment.
	Parallelism int
	// Progress, if non-nil, is called (serialized, from a worker
	// goroutine) every ProgressEvery executed schedules with a
	// throughput snapshot.
	Progress func(ProgressInfo)
	// ProgressEvery is the schedule interval between Progress calls
	// (0 = 1000).
	ProgressEvery int
	// WaitFreeBound, if > 0, enforces wait-freedom as a per-run
	// property: a run violates it when any live (non-crashed) process
	// executes more than WaitFreeBound of its own statements within a
	// single invocation — regardless of what other processes do,
	// including crashing or stalling. The bound counts a process's OWN
	// statements (Process.WorstInvStmts), so an adversary starving a
	// process does not trip it; only unbounded retrying or spinning
	// does. Derive the bound from the paper's results: constant
	// (unicons.Stmts) for Fig. 3, O(V) for Fig. 5, polynomial in the
	// level count L for Fig. 7/Theorem 4.
	WaitFreeBound int64
	// Context, if non-nil, bounds the exploration in wall-clock time:
	// when it is cancelled or its deadline expires, workers stop
	// claiming schedules and the explorer returns the results collected
	// so far with Result.Interrupted set. Cancellation is honored at
	// schedule boundaries — an in-flight run completes first (a single
	// run is bounded by its system's MaxSteps).
	Context context.Context
	// CollectDecisions records the canonical decision vector of each
	// violating run in Violation.Decisions. The tree explorers capture
	// it for free; Fuzz pays one recording wrapper per run, so the
	// capture is opt-in. Implied by ArtifactMeta and Minimize.
	CollectDecisions bool
	// ArtifactMeta, if non-nil, declares that the Builder constructs
	// exactly the registered artifact workload this meta describes (use
	// BuilderFor to guarantee it). After the exploration finishes, each
	// recorded violation is re-executed from its decision vector and a
	// repro bundle is attached (Violation.Artifact); a violation whose
	// replay does not reproduce gets Violation.ForensicsErr instead. A
	// zero meta WaitFreeBound inherits Options.WaitFreeBound.
	ArtifactMeta *artifact.Meta
	// Reduction selects the exploration reductions (sleep-set
	// partial-order reduction, visited-fingerprint pruning, or both).
	// The zero value ReductionNone preserves the historical plain
	// enumeration exactly. Reductions preserve verdicts — a reduced
	// exploration that runs to completion finds a violation iff the
	// plain one does — but not violation counts: equivalent
	// interleavings collapse into one representative, so
	// ViolationsTotal under reduction is a lower bound on the plain
	// count. ExploreBudget honors only the fingerprint component; Fuzz
	// ignores Reduction entirely (pruning a single random path loses
	// coverage instead of saving it).
	Reduction Reduction
	// ReductionCache caps the visited-fingerprint cache (entries,
	// 0 = 1<<20). Overflow evicts FIFO, which only forgoes pruning.
	ReductionCache int
	// RunDeadline, if > 0, bounds each run in wall-clock time: a run
	// whose chooser is still being consulted past the deadline is cut
	// off (sched.Watchdog), retried once from scratch, and — if it times
	// out again — skipped and counted in Result.TimedOutRuns instead of
	// hanging the exploration. The subtree below a skipped schedule is
	// not descended into, so TimedOutRuns > 0 means coverage is partial;
	// the point of the watchdog is that a stuck schedule degrades to a
	// counted incident, never a wedged campaign.
	RunDeadline time.Duration
	// MemSoftLimit, if > 0, is a soft heap ceiling in bytes: the
	// collector polls the heap every ProgressEvery schedules and, while
	// over the limit, degrades gracefully one step per poll — shedding
	// the fingerprint cache first (reduced modes), then halving the
	// workers allowed to claim new work, down to one. Steps preserve
	// verdicts (under reduction they can only increase schedule counts)
	// and are reported via OnDegrade and Result.Degradations.
	MemSoftLimit uint64
	// OnDegrade, if non-nil, is called (serialized) with a description
	// of each degradation step MemSoftLimit triggers.
	OnDegrade func(event string)
	// ExportFrontier, when the exploration is cut short (Context
	// cancellation, MaxSchedules truncation, StopAtFirst), collects
	// every unexplored subtree into Result.Frontier instead of dropping
	// it; feeding that frontier back via SeedFrontier continues the
	// exploration exactly where it left off. Supported by the plain
	// (ReductionNone) ExploreAll and ExploreBudget explorers; the
	// reduced paths and Fuzz ignore it.
	ExportFrontier bool
	// SeedFrontier, if non-nil, starts the exploration from a previously
	// exported frontier's subtrees instead of the root. The frontier
	// must come from the same explorer over the same builder (the
	// explorers check Frontier.Explorer). ReductionNone only.
	SeedFrontier *Frontier
	// SchedModel selects the scheduler model Fuzz draws schedules from
	// (nil = the historical seeded sched.Random). Each seed's chooser
	// is the model rebuilt (or reseeded, for Reseedable single-node
	// specs) with every stochastic node's seed derived from (its
	// configured seed, the run seed) — so the sweep is deterministic
	// per (spec, seed range) and any single run replays from its
	// derived spec. Wrapper specs (e.g. randomcrash around markov)
	// inject faults exactly as the legacy crash-fuzz wiring did. The
	// spec must validate (sched.ModelSpec.Validate); Fuzz panics on an
	// invalid spec, as on any builder misuse. Tree explorers ignore
	// SchedModel: their schedules are decision vectors, not draws.
	SchedModel *sched.ModelSpec
	// Measure enables the "practically wait-free" measurement mode in
	// Fuzz: every executed run's per-invocation own-statement counts
	// (completed, plus censored in-flight counts of non-crashed
	// processes) are accumulated into a histogram, reduced to
	// Result.Progress. Worker-local accumulation with commutative
	// merge keeps the report byte-identical across Parallelism levels.
	// Runs skipped by RunDeadline and runs that panicked are not
	// measured. Tree explorers ignore Measure.
	Measure bool
	// Minimize shrinks each recorded violation's bundle to a minimal
	// still-failing kernel (internal/minimize) before attaching it.
	// Requires ArtifactMeta. Shrinking happens after exploration, fanned
	// over the worker pool, and is bounded per violation by
	// ShrinkBudget, so exploration throughput is unaffected.
	Minimize bool
	// ShrinkBudget caps candidate replays per shrunk violation
	// (0 = minimize.DefaultBudget).
	ShrinkBudget int
}

func (o Options) maxSchedules() int {
	if o.MaxSchedules <= 0 {
		return 200000
	}
	return o.MaxSchedules
}

func (o Options) maxViolations() int {
	if o.MaxViolations <= 0 {
		return 16
	}
	return o.MaxViolations
}

func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return runtime.NumCPU()
	}
	return o.Parallelism
}

// needDecisions reports whether Fuzz must pay for a per-run recording
// wrapper to capture decision vectors.
func (o Options) needDecisions() bool {
	return o.CollectDecisions || o.Minimize || o.ArtifactMeta != nil
}

func (o Options) reductionCache() int {
	if o.ReductionCache <= 0 {
		return 1 << 20
	}
	return o.ReductionCache
}

func (o Options) progressEvery() int64 {
	if o.ProgressEvery <= 0 {
		return 1000
	}
	return int64(o.ProgressEvery)
}

// Violation describes one failed run.
type Violation struct {
	// Schedule is a replayable description of the offending schedule.
	Schedule string
	// Err is the verifier's error.
	Err error
	// Decisions is the canonical script-mode decision vector of the
	// violating run (candidate index at each decision point, trailing
	// zeros trimmed), replayable through sched.Script or an artifact
	// bundle. Captured by the tree explorers always, by Fuzz when
	// Options.CollectDecisions (or ArtifactMeta/Minimize) is set, and
	// never for runs that panicked before completing.
	Decisions []int
	// Artifact is the violation's repro bundle (Options.ArtifactMeta),
	// minimized first when Options.Minimize is set.
	Artifact *artifact.Bundle
	// Shrink reports what minimization did (Options.Minimize).
	Shrink *minimize.Stats
	// ForensicsErr records why bundle capture or shrinking failed for
	// this violation (e.g. the builder is not the declared registered
	// workload); the violation itself is still valid.
	ForensicsErr error
}

// Result summarizes an exploration.
type Result struct {
	// Schedules is the number of schedules executed.
	Schedules int
	// Violations holds recorded violations in canonical schedule order,
	// capped at Options.MaxViolations.
	Violations []Violation
	// ViolationsTotal counts every violation found, including those the
	// MaxViolations cap dropped from Violations: a capped Result is
	// thereby distinguishable from one with exactly MaxViolations
	// failures.
	ViolationsTotal int
	// Truncated reports whether MaxSchedules cut the exploration short.
	Truncated bool
	// Aliased counts replays skipped because a scripted decision was
	// clamped (sched.Script.Clamped): such runs alias an in-range
	// decision vector and would double-count schedules. Always zero for
	// builders that are deterministic functions of the decision
	// sequence.
	Aliased int
	// StepLimited counts runs aborted by sim.ErrStepLimit
	// (Config.MaxSteps). A step-limit abort is an incomplete run, not by
	// itself a property violation, so it is tallied here instead of
	// being conflated with Violations: a verifier that merely echoes the
	// run error (errors.Is(verr, sim.ErrStepLimit)) records no
	// violation for such a run, while a verifier that maps the abort to
	// a distinct property error — or the WaitFreeBound check firing on
	// the aborted run — still does.
	StepLimited int
	// Steals counts work items taken from another worker's deque during
	// parallel exploration (always 0 for Parallelism 1, whose frontier
	// is a plain stack, and for Fuzz, which shards seeds instead). A
	// diagnostic only: it varies run-to-run with worker timing and
	// carries no determinism guarantee.
	Steals int64
	// Interrupted reports whether Options.Context was cancelled before
	// the exploration completed; Schedules then covers only the runs
	// finished before cancellation.
	Interrupted bool
	// TimedOutRuns counts schedules skipped by Options.RunDeadline: the
	// run exceeded the per-run deadline twice (original plus one retry)
	// and was cut off rather than allowed to hang the exploration. A
	// skipped schedule still counts in Schedules; its subtree is not
	// descended into.
	TimedOutRuns int
	// Degradations records the memory-pressure mitigation steps taken
	// under Options.MemSoftLimit, in order.
	Degradations []string
	// Frontier holds the unexplored remainder of a cut-short exploration
	// when Options.ExportFrontier is set (nil when the exploration ran
	// to completion — resuming from an empty frontier is a no-op — or
	// when the explorer does not support export). Pass it back via
	// Options.SeedFrontier to continue.
	Frontier *Frontier
	// Reduction reports what the reductions did; nil when
	// Options.Reduction was ReductionNone or the explorer ignores
	// reduction (Fuzz).
	Reduction *ReductionStats
	// Progress is the empirical progress-bound report of a measured
	// exploration (Options.Measure); nil otherwise.
	Progress *ProgressStats
}

// OK reports whether no violation was found.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// First returns the first violation in canonical schedule order, or nil.
func (r *Result) First() *Violation {
	if len(r.Violations) == 0 {
		return nil
	}
	return &r.Violations[0]
}
