package trace_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func runTraced(t *testing.T, ch sim.Chooser) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder(0)
	sys := sim.New(sim.Config{Processors: 1, Quantum: 3, Chooser: ch, Observer: rec})
	r := mem.NewReg("x")
	for i := 0; i < 3; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: []string{"p", "q", "r"}[i]}).
			AddInvocation(func(c *sim.Ctx) {
				for k := 0; k < 4; k++ {
					c.Write(r, mem.Word(i))
					c.Read(r)
				}
			})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rec
}

func TestRenderContainsProcessRows(t *testing.T) {
	rec := runTraced(t, sched.NewRotate())
	out := rec.Render(trace.RenderOptions{})
	for _, name := range []string{"p", "q", "r"} {
		if !strings.Contains(out, name+" ") && !strings.HasPrefix(out, name) {
			t.Fatalf("render missing row for %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "[") {
		t.Fatalf("render missing invocation-start marks:\n%s", out)
	}
}

func TestRenderMarksPreemptions(t *testing.T) {
	rec := runTraced(t, sched.NewRotate())
	if rec.Preemptions() == 0 {
		t.Fatal("rotate schedule produced no preemptions")
	}
	out := rec.Render(trace.RenderOptions{})
	if !strings.Contains(out, "!") {
		t.Fatalf("render missing preemption marks:\n%s", out)
	}
}

func TestRenderOpsMode(t *testing.T) {
	rec := runTraced(t, sim.FirstChooser{})
	out := rec.Render(trace.RenderOptions{Ops: true})
	if !strings.Contains(out, "W") || !strings.Contains(out, "R") {
		t.Fatalf("ops render missing R/W mnemonics:\n%s", out)
	}
}

func TestRenderWrapsBands(t *testing.T) {
	rec := runTraced(t, sim.FirstChooser{})
	out := rec.Render(trace.RenderOptions{MaxWidth: 10})
	if strings.Count(out, "t=") < 2 {
		t.Fatalf("expected multiple bands with MaxWidth=10:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	rec := trace.NewRecorder(4)
	if out := rec.Render(trace.RenderOptions{}); !strings.Contains(out, "no statements") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestRecorderLimit(t *testing.T) {
	rec := trace.NewRecorder(5)
	sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Observer: rec})
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) { c.Local(20) })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rec.Statements()) != 5 {
		t.Fatalf("recorded %d statements, want capped 5", len(rec.Statements()))
	}
	if len(rec.Schedules()) == 0 {
		t.Fatal("no scheduling events recorded")
	}
}

// TestRecorderTruncationMarker: a recorder that dropped events must say
// so — Dropped() counts them and Render appends a marker, so a cut-off
// forensics timeline cannot masquerade as a complete run.
func TestRecorderTruncationMarker(t *testing.T) {
	rec := trace.NewRecorder(5)
	sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Observer: rec})
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "p"}).
		AddInvocation(func(c *sim.Ctx) { c.Local(20) })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rec.Dropped() == 0 {
		t.Fatal("20-statement run with limit 5 reported Dropped() == 0")
	}
	out := rec.Render(trace.RenderOptions{})
	if !strings.Contains(out, "TRUNCATED") {
		t.Fatalf("render of a truncated recorder has no TRUNCATED marker:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("%d further events", rec.Dropped())) {
		t.Fatalf("marker does not report the dropped count %d:\n%s", rec.Dropped(), out)
	}
}

// TestRecorderNoMarkerWhenComplete: a recorder that kept every event
// renders no truncation marker and reports zero drops.
func TestRecorderNoMarkerWhenComplete(t *testing.T) {
	rec := runTraced(t, sched.NewRotate())
	if n := rec.Dropped(); n != 0 {
		t.Fatalf("complete run reported %d dropped events", n)
	}
	if out := rec.Render(trace.RenderOptions{}); strings.Contains(out, "TRUNCATED") {
		t.Fatalf("complete run rendered a truncation marker:\n%s", out)
	}
}

// TestRecorderEmptyTruncated: even a recorder whose buffer was too small
// to keep any statements reports the drop count in its render.
func TestRecorderEmptyTruncated(t *testing.T) {
	rec := trace.NewRecorder(1)
	rec.OnSchedule(sim.SchedEvent{})
	rec.OnSchedule(sim.SchedEvent{})
	out := rec.Render(trace.RenderOptions{})
	if !strings.Contains(out, "no statements recorded") || !strings.Contains(out, "dropped") {
		t.Fatalf("empty truncated render = %q", out)
	}
}

// TestOpString covers the op mnemonics.
func TestOpString(t *testing.T) {
	for op, want := range map[sim.Op]string{
		sim.OpRead: "R", sim.OpWrite: "W", sim.OpCons: "C", sim.OpLocal: "L", sim.Op(99): "?",
	} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	for k, want := range map[sim.SchedKind]string{
		sim.SchedArrive: "arrive", sim.SchedPreempt: "preempt",
		sim.SchedInvEnd: "inv-end", sim.SchedProcDone: "done", sim.SchedKind(99): "?",
	} {
		if k.String() != want {
			t.Fatalf("SchedKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

// TestRenderMarksCrashes: a crash-stop fault renders as 'X' at the
// point the process halted, so crash timelines are visibly different
// from completed ones (the exhaustive lint found this case silently
// ignored).
func TestRenderMarksCrashes(t *testing.T) {
	rec := trace.NewRecorder(0)
	sys := sim.New(sim.Config{
		Processors: 1, Quantum: 3,
		Chooser:  sched.NewCrash(sim.FirstChooser{}, sched.CrashPoint{Proc: 0, Step: 2}),
		Observer: rec, MaxSteps: 1 << 12,
	})
	r := mem.NewReg("x")
	for i := 0; i < 2; i++ {
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: []string{"p", "q"}[i]}).
			AddInvocation(func(c *sim.Ctx) {
				for k := 0; k < 4; k++ {
					c.Write(r, 1)
				}
			})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	crashes := 0
	for _, ev := range rec.Schedules() {
		if ev.Kind == sim.SchedCrash {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("planned crash did not occur")
	}
	out := rec.Render(trace.RenderOptions{})
	if !strings.Contains(out, "X") {
		t.Fatalf("render missing crash mark:\n%s", out)
	}
}
