package trace_test

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func runTraced(t *testing.T, ch sim.Chooser) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder(0)
	sys := sim.New(sim.Config{Processors: 1, Quantum: 3, Chooser: ch, Observer: rec})
	r := mem.NewReg("x")
	for i := 0; i < 3; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: []string{"p", "q", "r"}[i]}).
			AddInvocation(func(c *sim.Ctx) {
				for k := 0; k < 4; k++ {
					c.Write(r, mem.Word(i))
					c.Read(r)
				}
			})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rec
}

func TestRenderContainsProcessRows(t *testing.T) {
	rec := runTraced(t, sched.NewRotate())
	out := rec.Render(trace.RenderOptions{})
	for _, name := range []string{"p", "q", "r"} {
		if !strings.Contains(out, name+" ") && !strings.HasPrefix(out, name) {
			t.Fatalf("render missing row for %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "[") {
		t.Fatalf("render missing invocation-start marks:\n%s", out)
	}
}

func TestRenderMarksPreemptions(t *testing.T) {
	rec := runTraced(t, sched.NewRotate())
	if rec.Preemptions() == 0 {
		t.Fatal("rotate schedule produced no preemptions")
	}
	out := rec.Render(trace.RenderOptions{})
	if !strings.Contains(out, "!") {
		t.Fatalf("render missing preemption marks:\n%s", out)
	}
}

func TestRenderOpsMode(t *testing.T) {
	rec := runTraced(t, sim.FirstChooser{})
	out := rec.Render(trace.RenderOptions{Ops: true})
	if !strings.Contains(out, "W") || !strings.Contains(out, "R") {
		t.Fatalf("ops render missing R/W mnemonics:\n%s", out)
	}
}

func TestRenderWrapsBands(t *testing.T) {
	rec := runTraced(t, sim.FirstChooser{})
	out := rec.Render(trace.RenderOptions{MaxWidth: 10})
	if strings.Count(out, "t=") < 2 {
		t.Fatalf("expected multiple bands with MaxWidth=10:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	rec := trace.NewRecorder(4)
	if out := rec.Render(trace.RenderOptions{}); !strings.Contains(out, "no statements") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestRecorderLimit(t *testing.T) {
	rec := trace.NewRecorder(5)
	sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Observer: rec})
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) { c.Local(20) })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rec.Statements()) != 5 {
		t.Fatalf("recorded %d statements, want capped 5", len(rec.Statements()))
	}
	if len(rec.Schedules()) == 0 {
		t.Fatal("no scheduling events recorded")
	}
}

// TestOpString covers the op mnemonics.
func TestOpString(t *testing.T) {
	for op, want := range map[sim.Op]string{
		sim.OpRead: "R", sim.OpWrite: "W", sim.OpCons: "C", sim.OpLocal: "L", sim.Op(99): "?",
	} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	for k, want := range map[sim.SchedKind]string{
		sim.SchedArrive: "arrive", sim.SchedPreempt: "preempt",
		sim.SchedInvEnd: "inv-end", sim.SchedProcDone: "done", sim.SchedKind(99): "?",
	} {
		if k.String() != want {
			t.Fatalf("SchedKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
