// Package trace records simulation events and renders them as ASCII
// interleaving timelines in the style of the paper's Fig. 1 and Fig. 2:
// one row per process, time running left to right one column per atomic
// statement, object invocations between '[' and ']', with preemptions
// marked.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Recorder implements sim.Observer, buffering events for rendering.
// Events past the limit are counted, not stored: Dropped reports how
// many, and Render appends a truncation marker so a cut-off timeline
// cannot masquerade as a complete run.
type Recorder struct {
	stmts   []sim.StmtEvent
	scheds  []sim.SchedEvent
	limit   int
	dropped int
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder returns a recorder buffering up to limit statements
// (0 = 4096).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 4096
	}
	return &Recorder{limit: limit}
}

// OnStatement implements sim.Observer.
func (r *Recorder) OnStatement(ev sim.StmtEvent) {
	if len(r.stmts) < r.limit {
		r.stmts = append(r.stmts, ev)
	} else {
		r.dropped++
	}
}

// OnSchedule implements sim.Observer.
func (r *Recorder) OnSchedule(ev sim.SchedEvent) {
	if len(r.scheds) < r.limit {
		r.scheds = append(r.scheds, ev)
	} else {
		r.dropped++
	}
}

// Dropped returns the number of events (statement and scheduling) that
// arrived after the buffer limit and were discarded. A non-zero count
// means the recorded timeline is a prefix of the run, not the whole run.
func (r *Recorder) Dropped() int { return r.dropped }

// Statements returns the recorded statement events.
func (r *Recorder) Statements() []sim.StmtEvent { return r.stmts }

// Schedules returns the recorded scheduling events.
func (r *Recorder) Schedules() []sim.SchedEvent { return r.scheds }

// Preemptions returns the number of recorded same-priority preemptions.
func (r *Recorder) Preemptions() int {
	n := 0
	for _, ev := range r.scheds {
		if ev.Kind == sim.SchedPreempt {
			n++
		}
	}
	return n
}

// RenderOptions controls timeline rendering.
type RenderOptions struct {
	// Ops renders per-statement op mnemonics (R/W/C/L) instead of '='.
	Ops bool
	// MaxWidth wraps the timeline into bands of at most this many
	// columns (0 = 120).
	MaxWidth int
}

// Render produces the Fig. 1/2-style timeline. Each row is one process;
// '[' marks an invocation's first statement, ']' its last, '=' (or the
// op mnemonic) statements in between, '*' a single-statement invocation,
// '!' the first statement after suffering a same-priority preemption,
// and 'X' the point where a crash-stop fault halted the process for
// good. A recorder that dropped events past its buffer limit
// renders a trailing truncation marker — an incomplete forensics
// timeline always says so.
func (r *Recorder) Render(opts RenderOptions) string {
	if len(r.stmts) == 0 {
		if r.dropped > 0 {
			return fmt.Sprintf("(no statements recorded; %d events dropped past the %d-event buffer limit)\n",
				r.dropped, r.limit)
		}
		return "(no statements recorded)\n"
	}
	width := int(r.stmts[len(r.stmts)-1].Step) + 1
	maxw := opts.MaxWidth
	if maxw <= 0 {
		maxw = 120
	}

	// Collect processes in ID order.
	procSet := map[*sim.Process]bool{}
	for _, ev := range r.stmts {
		procSet[ev.Proc] = true
	}
	procs := make([]*sim.Process, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].ID() < procs[j].ID() })

	// Statement marks.
	rows := map[*sim.Process][]byte{}
	for _, p := range procs {
		rows[p] = []byte(strings.Repeat(" ", width))
	}
	for _, ev := range r.stmts {
		ch := byte('=')
		if opts.Ops {
			ch = ev.Op.String()[0]
		}
		rows[ev.Proc][ev.Step] = ch
	}
	// Invocation boundaries and preemption marks from scheduling events.
	for _, ev := range r.scheds {
		switch ev.Kind {
		case sim.SchedArrive:
			if ev.Step < int64(width) {
				rows[ev.Proc][ev.Step] = '['
			}
		case sim.SchedInvEnd, sim.SchedProcDone:
			if s := ev.Step - 1; s >= 0 && s < int64(width) && rows[ev.Proc][s] != ' ' && rows[ev.Proc][s] != '[' {
				rows[ev.Proc][s] = ']'
			}
		case sim.SchedPreempt:
			// Mark the preempted process's next statement with '!'.
			for s := ev.Step; s < int64(width); s++ {
				if rows[ev.Proc][s] != ' ' {
					rows[ev.Proc][s] = '!'
					break
				}
			}
		case sim.SchedCrash:
			// Mark the crash-stop point with 'X': the process halts
			// there and never acts again, so the rest of its row stays
			// blank. A crash after the last recorded statement clamps to
			// the final column; a process that never executed a
			// statement has no row to mark.
			row := rows[ev.Proc]
			if s := min(ev.Step, int64(width)-1); row != nil && row[s] == ' ' {
				row[s] = 'X'
			}
		}
	}

	var b strings.Builder
	nameW := 0
	for _, p := range procs {
		if len(p.Name()) > nameW {
			nameW = len(p.Name())
		}
	}
	for off := 0; off < width; off += maxw {
		end := off + maxw
		if end > width {
			end = width
		}
		if off > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%*s  t=%d..%d\n", nameW, "", off, end-1)
		for _, p := range procs {
			fmt.Fprintf(&b, "%-*s  %s\n", nameW, p.Name(), string(rows[p][off:end]))
		}
	}
	if r.dropped > 0 {
		fmt.Fprintf(&b, "\n... TRUNCATED: %d further events dropped past the %d-event buffer limit; the timeline above is a prefix of the run\n",
			r.dropped, r.limit)
	}
	return b.String()
}
