package campaign

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/sched"
)

// Config parameterizes one campaign.
type Config struct {
	// Runs is the total number of runs the campaign executes (indices
	// [0, Runs)). 0 means unbounded: run until Stop fires.
	Runs int64
	// BaseSeed and CrashSeed are the campaign identity: every run's
	// workload, schedule, and crash plan derive deterministically from
	// them and the run index.
	BaseSeed  int64
	CrashSeed int64
	// MaxCrashes caps injected crash-stop faults per run.
	MaxCrashes int
	// Workload, when non-empty and not "soakmix", pins every run to one
	// registered workload family with the parameters below
	// (artifact.SeededMeta): only the seeded schedule and crash plan
	// vary with the run index. Empty selects the classic randomized
	// soakmix sweep (artifact.SoakMeta). Part of the campaign identity.
	Workload string
	// N, V, Quantum and WaitFreeBound parameterize a fixed Workload
	// (ignored for soakmix).
	N, V, Quantum int
	WaitFreeBound int64
	// SchedModel, when non-nil, replaces the default seeded-random
	// schedule source with a registered scheduler model: every derived
	// run replays the model with its per-run derived seed (the
	// artifact.Sched.Seed override), so the campaign stays a
	// deterministic function of (identity, index). Use simple
	// (non-wrapper) specs here — crash injection comes from
	// CrashSeed/MaxCrashes, which compose with the model; a wrapper
	// spec's inner seeds would not vary per run. Part of the campaign
	// identity (canonical spec string).
	SchedModel *sched.ModelSpec
	// Parallel is the number of concurrent workers (0 = all CPUs).
	Parallel int
	// Derive maps a run index to the bundle to replay. Nil selects the
	// standard soak derivation, artifact.SoakMeta(BaseSeed, CrashSeed,
	// idx, MaxCrashes). A custom Derive must be deterministic in idx —
	// the whole durability story rests on re-deriving the same run.
	Derive func(idx int64) (artifact.Meta, artifact.Sched)
	// StateDir, when non-empty, makes the campaign durable: progress is
	// journaled and checkpointed there, and a fresh Run over the same
	// directory resumes instead of restarting. Empty = ephemeral.
	StateDir string
	// ArtifactDir receives repro bundles for violating runs ("" with a
	// StateDir defaults to <StateDir>/artifacts; "" without one writes
	// no bundles).
	ArtifactDir string
	// RunTimeout, if > 0, bounds each replay in wall-clock time: a run
	// still going past it is cut off, retried once, and — on a second
	// timeout — recorded as an incident (State.TimedOut) with an
	// incident bundle under <StateDir>/incidents, then counted as done.
	// A stuck schedule becomes a recorded artifact, never a hang.
	RunTimeout time.Duration
	// StopCheckEvery is the watchdog poll interval in decisions
	// (0 = sched.Watchdog's default).
	StopCheckEvery int
	// CheckpointEvery is the number of completed runs between
	// checkpoint snapshots (0 = 256). Each snapshot compacts the
	// journal.
	CheckpointEvery int64
	// MemSoftLimit, if > 0, is a soft heap ceiling in bytes: while the
	// heap stays above it the campaign steps its worker count down
	// (halving, to a floor of one), journaling each step. Verdicts are
	// unaffected; only throughput and footprint change.
	MemSoftLimit uint64
	// StopOnViolation stops the campaign at the first violation
	// (classic soak behavior) instead of recording it and continuing.
	StopOnViolation bool
	// Stop, when non-nil, requests a graceful stop when it becomes
	// readable (typically close()d by a signal handler): workers finish
	// their in-flight runs, a final checkpoint is written, and Run
	// returns with Interrupted set.
	Stop <-chan struct{}
	// Log, if non-nil, receives human-readable campaign events
	// (resume, degradation, durability warnings).
	Log func(string)
	// Progress, if non-nil, receives a cumulative snapshot every
	// ProgressEvery completed runs (serialized under the campaign's
	// state lock — keep the callback cheap and never call back into the
	// campaign from it). This is the job-service streaming hook: a
	// long-running campaign reports liveness without anyone tailing its
	// journal.
	Progress func(ProgressInfo)
	// ProgressEvery is the completed-run interval between Progress
	// calls (0 = 100).
	ProgressEvery int64

	// skipFinalCheckpoint simulates a hard kill (SIGKILL) in tests: the
	// leg exits without the final checkpoint/compaction, leaving the
	// journal tail exactly as a crash would.
	skipFinalCheckpoint bool
}

func (c Config) parallel() int {
	if c.Parallel <= 0 {
		return runtime.NumCPU()
	}
	return c.Parallel
}

func (c Config) checkpointEvery() int64 {
	if c.CheckpointEvery <= 0 {
		return 256
	}
	return c.CheckpointEvery
}

func (c Config) derive() func(int64) (artifact.Meta, artifact.Sched) {
	if c.Derive != nil {
		return c.Derive
	}
	base, crash, max := c.BaseSeed, c.CrashSeed, c.MaxCrashes
	// withModel rewrites a derived random-mode Sched into model mode:
	// the shared spec plus the per-run derived seed (which overrides the
	// spec's own seed at replay), with the crash knobs untouched.
	withModel := func(s artifact.Sched) artifact.Sched {
		if c.SchedModel != nil {
			s.Model = c.SchedModel
			s.Random = false
		}
		return s
	}
	if w := c.Workload; w != "" && w != "soakmix" {
		n, v, q, wf := c.N, c.V, c.Quantum, c.WaitFreeBound
		return func(idx int64) (artifact.Meta, artifact.Sched) {
			m, s := artifact.SeededMeta(w, n, v, q, wf, base, crash, idx, max)
			return m, withModel(s)
		}
	}
	return func(idx int64) (artifact.Meta, artifact.Sched) {
		m, s := artifact.SoakMeta(base, crash, idx, max)
		return m, withModel(s)
	}
}

func (c Config) identity() Identity {
	id := Identity{BaseSeed: c.BaseSeed, CrashSeed: c.CrashSeed, MaxCrashes: c.MaxCrashes}
	if w := c.Workload; w != "" && w != "soakmix" {
		id.Workload = w
		id.N, id.V, id.Quantum, id.WaitFreeBound = c.N, c.V, c.Quantum, c.WaitFreeBound
	}
	if c.SchedModel != nil {
		id.SchedModel = c.SchedModel.String()
	}
	return id
}

func (c Config) progressEvery() int64 {
	if c.ProgressEvery <= 0 {
		return 100
	}
	return c.ProgressEvery
}

// ProgressInfo is a cumulative campaign snapshot delivered to
// Config.Progress.
type ProgressInfo struct {
	// Runs is the number of completed runs so far (across resumes).
	Runs int64
	// Violations is the number of violations recorded so far.
	Violations int
	// Crashes is the total number of injected crash-stop faults.
	Crashes int64
	// TimedOut is the number of runs the watchdog recorded as incidents.
	TimedOut int64
}

// Result is the outcome of one Run (one leg of a possibly-resumed
// campaign). State is cumulative across legs.
type Result struct {
	State State
	// Interrupted reports the leg stopped before completing all Runs
	// (graceful stop or StopOnViolation); the state directory resumes
	// it.
	Interrupted bool
	// JournalDegraded reports the journal fell back to in-memory-only
	// mode after persistent I/O errors: the in-memory result is
	// complete, but progress since the degradation is not crash-safe.
	JournalDegraded bool
}

// Failed reports whether any run violated its property.
func (r *Result) Failed() bool { return len(r.State.Violations) > 0 }

// campaign is the runtime state of one Run call.
type campaign struct {
	cfg     Config
	derive  func(int64) (artifact.Meta, artifact.Sched)
	journal *Journal

	mu        sync.Mutex
	state     State
	inflight  map[int64]bool
	nextClaim int64
	sinceCkpt int64
	fatal     error

	allowed  atomic.Int32
	stopping atomic.Bool
}

// Run executes (or resumes) the campaign described by cfg. The
// returned error reports setup/persistence failures (unusable state
// dir, identity mismatch, broken workload registry entry); property
// violations are data, reported via Result.
func Run(cfg Config) (*Result, error) {
	c := &campaign{cfg: cfg, derive: cfg.derive(), inflight: make(map[int64]bool)}
	c.allowed.Store(int32(cfg.parallel()))

	if cfg.StateDir != "" {
		if err := c.recover(); err != nil {
			return nil, err
		}
		defer c.journal.Close()
	}
	c.nextClaim = c.state.NextIdx

	var wg sync.WaitGroup
	for w := 0; w < cfg.parallel(); w++ {
		wg.Add(1)
		//repro:allow goroutine campaign worker pool; run outcomes are keyed by index and merged into one idempotent done-set
		go func(w int) {
			defer wg.Done()
			c.worker(w)
		}(w)
	}
	wg.Wait()

	if c.journal != nil && !cfg.skipFinalCheckpoint {
		if err := c.checkpoint(); err != nil && cfg.Log != nil {
			cfg.Log(fmt.Sprintf("campaign: final checkpoint failed: %v", err))
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatal != nil {
		return nil, c.fatal
	}
	res := &Result{State: c.state}
	res.Interrupted = cfg.Runs == 0 || !c.complete()
	if c.journal != nil {
		res.JournalDegraded = c.journal.Degraded()
	}
	return res, nil
}

// recover loads the checkpoint and journal from the state directory
// and rebuilds the done-set.
func (c *campaign) recover() error {
	dir := c.cfg.StateDir
	if err := mkdirAll(dir); err != nil {
		return err
	}
	cp, err := LoadCheckpoint(dir)
	if err != nil {
		return err
	}
	if cp != nil {
		if cp.Identity != c.cfg.identity() {
			return fmt.Errorf("campaign: state dir %s belongs to campaign %+v, not %+v — refusing to mix runs",
				dir, cp.Identity, c.cfg.identity())
		}
		c.state = cp.State
	} else {
		// Persist the identity before the first run so a campaign killed
		// at ANY point leaves a state dir that knows its own seeds
		// (cmd/soak -resume reads them from here).
		if err := WriteCheckpoint(dir, &Checkpoint{Version: checkpointVersion, Identity: c.cfg.identity()}); err != nil {
			return err
		}
	}
	j, recs, err := OpenJournal(JournalPath(dir), c.cfg.Log)
	if err != nil {
		return err
	}
	c.journal = j
	for _, rec := range recs {
		c.state.apply(rec)
	}
	if cp != nil || len(recs) > 0 {
		c.state.Resumed++
		c.journal.Append(Record{Type: recNote,
			Event: fmt.Sprintf("resumed: %d runs done, next index %d", c.state.Runs, c.state.NextIdx)})
		if c.cfg.Log != nil {
			c.cfg.Log(fmt.Sprintf("campaign: resuming from %s: %d runs done (%d violations, %d timeouts), next index %d",
				dir, c.state.Runs, len(c.state.Violations), c.state.TimedOut, c.state.NextIdx))
		}
	}
	return nil
}

// complete reports whether every planned run is done. Caller holds mu.
func (c *campaign) complete() bool {
	return c.cfg.Runs > 0 && c.state.NextIdx >= c.cfg.Runs && len(c.state.Extras) == 0
}

// claim reserves the next unfinished run index, or -1 when the
// campaign is stopping or out of work.
func (c *campaign) claim() int64 {
	if c.stopRequested() {
		c.stopping.Store(true)
	}
	if c.stopping.Load() {
		return -1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.state.done(c.nextClaim) || c.inflight[c.nextClaim] {
		c.nextClaim++
	}
	if c.cfg.Runs > 0 && c.nextClaim >= c.cfg.Runs {
		return -1
	}
	idx := c.nextClaim
	c.inflight[idx] = true
	c.nextClaim++
	return idx
}

// stopRequested polls the graceful-stop channel without blocking.
func (c *campaign) stopRequested() bool {
	if c.cfg.Stop == nil {
		return false
	}
	select {
	case <-c.cfg.Stop:
		return true
	default:
		return false
	}
}

// worker is one campaign worker's loop.
func (c *campaign) worker(w int) {
	for {
		if w > 0 && int32(w) >= c.allowed.Load() {
			return // parked by the degradation ladder
		}
		idx := c.claim()
		if idx < 0 {
			return
		}
		rec, err := c.execute(idx)
		c.finish(idx, rec, err)
		if err != nil {
			return
		}
	}
}

// execute replays run idx under the watchdog and renders its outcome
// as a journal record. A non-nil error is fatal (broken registry
// entry), not a verdict.
func (c *campaign) execute(idx int64) (Record, error) {
	meta, s := c.derive(idx)
	b := &artifact.Bundle{Version: artifact.Version, Meta: meta, Sched: s}
	var rep *artifact.Report
	var err error
	for attempt := 0; ; attempt++ {
		opts := artifact.ReplayOptions{}
		if c.cfg.RunTimeout > 0 {
			//repro:allow campaign per-replay watchdog deadline; a timed-out run is a recorded incident, never replayed output
			start := time.Now()
			deadline := c.cfg.RunTimeout
			opts.Stop = func() bool {
				//repro:allow campaign per-replay watchdog deadline; a timed-out run is a recorded incident, never replayed output
				return time.Since(start) > deadline
			}
			opts.StopCheckEvery = c.cfg.StopCheckEvery
		}
		rep, err = artifact.Replay(b, opts)
		if err != nil {
			return Record{}, fmt.Errorf("campaign: run %d: %w", idx, err)
		}
		if rep.Stopped && attempt == 0 {
			continue // retry a timed-out run once before recording it
		}
		break
	}

	rec := Record{Type: recRun, Idx: idx, Crashed: rep.Crashed}
	switch {
	case rep.Stopped:
		rec.TimedOut = true
		rec.Artifact = c.saveIncident(idx, b)
		if c.cfg.Log != nil {
			c.cfg.Log(fmt.Sprintf("campaign: run %d timed out after %v (twice); recorded as incident and skipped", idx, c.cfg.RunTimeout))
		}
	case rep.Err != nil:
		rec.Err = rep.Err.Error()
		rec.Artifact = c.saveRepro(idx, meta, s)
		if c.cfg.StopOnViolation {
			c.stopping.Store(true)
		}
	}
	return rec, nil
}

// saveRepro re-captures a violating run as a trace-bearing repro
// bundle. Capture failures degrade to a logged warning: the violation
// is still recorded by index and error.
func (c *campaign) saveRepro(idx int64, meta artifact.Meta, s artifact.Sched) string {
	dir := c.artifactDir()
	if dir == "" {
		return ""
	}
	b, rep, err := artifact.Capture(meta, s)
	if err == nil && !rep.Failed() {
		err = fmt.Errorf("replay did not reproduce the failure")
	}
	var path string
	if err == nil {
		path, err = b.SaveDir(dir)
	}
	if err != nil {
		if c.cfg.Log != nil {
			c.cfg.Log(fmt.Sprintf("campaign: run %d: repro bundle not saved: %v", idx, err))
		}
		return ""
	}
	return path
}

// saveIncident records a twice-timed-out run's identity (meta +
// schedule, no trace) so it can be replayed and diagnosed offline.
func (c *campaign) saveIncident(idx int64, b *artifact.Bundle) string {
	if c.cfg.StateDir == "" {
		return ""
	}
	dir := filepath.Join(c.cfg.StateDir, "incidents")
	if err := mkdirAll(dir); err != nil {
		return ""
	}
	inc := *b
	inc.Err = fmt.Sprintf("watchdog: run %d exceeded %v twice", idx, c.cfg.RunTimeout)
	path, err := inc.SaveDir(dir)
	if err != nil {
		if c.cfg.Log != nil {
			c.cfg.Log(fmt.Sprintf("campaign: run %d: incident bundle not saved: %v", idx, err))
		}
		return ""
	}
	return path
}

func (c *campaign) artifactDir() string {
	if c.cfg.ArtifactDir != "" {
		return c.cfg.ArtifactDir
	}
	if c.cfg.StateDir != "" {
		return filepath.Join(c.cfg.StateDir, "artifacts")
	}
	return ""
}

// finish journals and folds in one completed run, checkpointing and
// polling the memory ladder at their cadences.
func (c *campaign) finish(idx int64, rec Record, fatal error) {
	c.mu.Lock()
	delete(c.inflight, idx)
	if fatal != nil {
		if c.fatal == nil {
			c.fatal = fatal
		}
		c.stopping.Store(true)
		c.mu.Unlock()
		return
	}
	c.state.apply(rec)
	c.sinceCkpt++
	needCkpt := c.journal != nil && c.sinceCkpt >= c.cfg.checkpointEvery()
	if needCkpt {
		c.sinceCkpt = 0
	}
	if c.cfg.Progress != nil && c.state.Runs%c.cfg.progressEvery() == 0 {
		c.cfg.Progress(ProgressInfo{Runs: c.state.Runs, Violations: len(c.state.Violations),
			Crashes: c.state.Crashes, TimedOut: c.state.TimedOut})
	}
	c.mu.Unlock()

	if c.journal != nil {
		c.journal.Append(rec)
	}
	if needCkpt {
		if err := c.checkpoint(); err != nil && c.cfg.Log != nil {
			c.cfg.Log(fmt.Sprintf("campaign: checkpoint failed (journal still authoritative): %v", err))
		}
	}
	c.memPressure()
}

// checkpoint atomically snapshots the state and compacts the journal.
func (c *campaign) checkpoint() error {
	c.mu.Lock()
	cp := &Checkpoint{Version: checkpointVersion, Identity: c.cfg.identity(), State: c.state.clone()}
	c.mu.Unlock()
	if err := WriteCheckpoint(c.cfg.StateDir, cp); err != nil {
		return err
	}
	c.journal.Compact()
	return nil
}

// clone deep-copies the state (the checkpoint writer must not race
// workers appending to the slices).
func (s *State) clone() State {
	out := *s
	out.Extras = append([]int64(nil), s.Extras...)
	out.Violations = append([]Violation(nil), s.Violations...)
	out.Degradations = append([]string(nil), s.Degradations...)
	return out
}

// memPressure walks the campaign's degradation ladder: while the heap
// sits above the soft limit, halve the allowed workers (to a floor of
// one), journaling each step.
func (c *campaign) memPressure() {
	if c.cfg.MemSoftLimit == 0 {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc <= c.cfg.MemSoftLimit {
		return
	}
	n := c.allowed.Load()
	if n <= 1 {
		return
	}
	if !c.allowed.CompareAndSwap(n, (n+1)/2) {
		return // another worker just stepped; one step per observation
	}
	event := fmt.Sprintf("memory pressure: heap %dMB over soft limit %dMB; stepped workers %d -> %d",
		ms.HeapAlloc>>20, c.cfg.MemSoftLimit>>20, n, (n+1)/2)
	c.mu.Lock()
	c.state.Degradations = append(c.state.Degradations, event)
	c.mu.Unlock()
	if c.journal != nil {
		c.journal.Append(Record{Type: recDegrade, Event: event})
	}
	if c.cfg.Log != nil {
		c.cfg.Log("campaign: " + event)
	}
	runtime.GC()
}
