package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// checkpointVersion guards the snapshot format.
const checkpointVersion = 1

// Identity pins a state directory to one campaign: resuming with
// different seeds, crash settings, or workload parameters would
// silently re-derive different runs under the same indices, so a
// mismatch is an error, not a resume. The identity carries everything
// the default derivations need, which is why a state directory alone
// suffices to resume (cmd/soak -resume reads the spec back from here).
type Identity struct {
	BaseSeed   int64 `json:"base_seed"`
	CrashSeed  int64 `json:"crash_seed"`
	MaxCrashes int   `json:"max_crashes"`
	// Workload pins a fixed-workload campaign (artifact.SeededMeta
	// derivation) to its registered family; empty means the classic
	// randomized soakmix sweep (artifact.SoakMeta), so pre-existing
	// checkpoints load unchanged.
	Workload string `json:"workload,omitempty"`
	// N, V, Quantum and WaitFreeBound parameterize the fixed workload
	// (unused, and zero, for soakmix).
	N             int   `json:"n,omitempty"`
	V             int   `json:"v,omitempty"`
	Quantum       int   `json:"quantum,omitempty"`
	WaitFreeBound int64 `json:"waitfree_bound,omitempty"`
	// SchedModel is the canonical scheduler-model spec string
	// (sched.ModelSpec.String) when the campaign replaces the default
	// seeded-random schedule source; empty for the default, so
	// pre-existing checkpoints load unchanged.
	SchedModel string `json:"sched_model,omitempty"`
}

// Violation is one property violation found by a campaign run.
type Violation struct {
	// Idx is the run index (the violation's identity across resumes).
	Idx int64 `json:"idx"`
	// Err is the verifier error.
	Err string `json:"err"`
	// Artifact is the saved repro bundle path ("" when no artifact
	// directory was configured or the capture failed).
	Artifact string `json:"artifact,omitempty"`
}

// State is the complete durable progress of a campaign. The done-set
// is a contiguous prefix [0, NextIdx) plus a sorted sparse tail Extras
// (indices completed out of order by parallel workers); everything
// else about the campaign is deterministically re-derivable from the
// done-set and the config, which is what makes resume exact.
type State struct {
	// NextIdx is the lowest run index not known to be done.
	NextIdx int64 `json:"next_idx"`
	// Extras are done indices > NextIdx, sorted ascending.
	Extras []int64 `json:"extras,omitempty"`
	// Runs is the number of completed runs (== NextIdx + len(Extras)).
	Runs int64 `json:"runs"`
	// Crashes is the total number of injected crash-stop faults.
	Crashes int64 `json:"crashes"`
	// TimedOut is the number of runs the watchdog cut off twice
	// (recorded incidents, counted as done).
	TimedOut int64 `json:"timed_out"`
	// Violations are the property violations found, sorted by Idx.
	Violations []Violation `json:"violations,omitempty"`
	// Degradations are the degradation-ladder events, in order.
	Degradations []string `json:"degradations,omitempty"`
	// Resumed counts how many times the campaign was resumed.
	Resumed int `json:"resumed"`
}

// done reports whether run idx is in the done-set.
func (s *State) done(idx int64) bool {
	if idx < s.NextIdx {
		return true
	}
	i := sort.Search(len(s.Extras), func(i int) bool { return s.Extras[i] >= idx })
	return i < len(s.Extras) && s.Extras[i] == idx
}

// markDone adds idx to the done-set and reports whether it was new
// (false = duplicate, e.g. a journal record replayed over a checkpoint
// that already contains it).
func (s *State) markDone(idx int64) bool {
	if s.done(idx) {
		return false
	}
	if idx == s.NextIdx {
		s.NextIdx++
		for len(s.Extras) > 0 && s.Extras[0] == s.NextIdx {
			s.Extras = s.Extras[1:]
			s.NextIdx++
		}
	} else {
		i := sort.Search(len(s.Extras), func(i int) bool { return s.Extras[i] >= idx })
		s.Extras = append(s.Extras, 0)
		copy(s.Extras[i+1:], s.Extras[i:])
		s.Extras[i] = idx
	}
	s.Runs++
	return true
}

// apply folds one journal record into the state, idempotently for run
// records (the only kind recovery can see twice).
func (s *State) apply(rec Record) {
	switch rec.Type {
	case recRun:
		if !s.markDone(rec.Idx) {
			return
		}
		s.Crashes += int64(rec.Crashed)
		if rec.TimedOut {
			s.TimedOut++
		}
		if rec.Err != "" {
			s.Violations = append(s.Violations, Violation{Idx: rec.Idx, Err: rec.Err, Artifact: rec.Artifact})
			sort.Slice(s.Violations, func(i, j int) bool { return s.Violations[i].Idx < s.Violations[j].Idx })
		}
	case recDegrade:
		s.Degradations = append(s.Degradations, rec.Event)
	}
}

// Checkpoint is the atomic snapshot written alongside the journal:
// state as of some moment, never torn (write-temp-then-rename), always
// consistent with replaying the journal's records on top (run records
// are idempotent). Recovery = load checkpoint (if any) + apply journal.
type Checkpoint struct {
	Version  int      `json:"version"`
	Identity Identity `json:"identity"`
	State    State    `json:"state"`
}

const (
	checkpointName = "checkpoint.json"
	journalName    = "journal.wal"
)

// mkdirAll wraps os.MkdirAll with the package's error prefix.
func mkdirAll(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// CheckpointPath returns the checkpoint location inside a state dir.
func CheckpointPath(dir string) string { return filepath.Join(dir, checkpointName) }

// JournalPath returns the journal location inside a state dir.
func JournalPath(dir string) string { return filepath.Join(dir, journalName) }

// WriteCheckpoint atomically persists cp into dir: the snapshot is
// written to a temporary file, synced, and renamed over the live
// checkpoint, so a crash at any point leaves either the old or the new
// snapshot — never a torn one.
func WriteCheckpoint(dir string, cp *Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encode checkpoint: %w", err)
	}
	data = append(data, '\n')
	tmp := CheckpointPath(dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, CheckpointPath(dir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint rename: %w", err)
	}
	return nil
}

// LoadCheckpoint reads the checkpoint from dir; (nil, nil) when none
// exists yet.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(CheckpointPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("campaign: decode checkpoint %s: %w", CheckpointPath(dir), err)
	}
	if cp.Version > checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint version %d newer than supported %d", cp.Version, checkpointVersion)
	}
	return cp, nil
}
