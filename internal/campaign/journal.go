// Package campaign runs durable, self-healing soak campaigns over the
// artifact workload registry: long sequences of deterministic replay
// runs whose progress survives crashes (an append-only checksummed
// write-ahead journal plus atomic checkpoint snapshots), whose stuck
// runs are cut off by per-replay watchdogs and recorded as incidents
// instead of hanging the campaign, and which degrade gracefully — not
// fatally — under memory pressure or persistent journal I/O errors.
//
// The durability contract: a campaign killed at ANY byte boundary (a
// torn journal write, a lost checkpoint rename, SIGKILL mid-run) and
// resumed from its state directory executes exactly the runs the
// interrupted campaign did not complete-and-persist, re-running at most
// the unpersisted tail. Because every run is a deterministic function
// of its index (Config.Derive), the resumed campaign's final state —
// run count, violations by index and error, repro-bundle bytes — is
// identical to an uninterrupted campaign's.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// Record is one journal entry. Type "run" records a completed run by
// index (clean, violating, or timed out); "degrade" records one
// degradation-ladder step; "note" records free-text campaign events
// (start, resume, stop). Run records are the load-bearing ones:
// recovery rebuilds the done-set from them, and applying the same run
// record twice is a no-op, so a checkpoint that overlaps the journal
// tail is harmless.
type Record struct {
	Type string `json:"type"`
	// Idx is the run index (run records).
	Idx int64 `json:"idx,omitempty"`
	// Crashed is the number of crash-stop faults the run injected.
	Crashed int `json:"crashed,omitempty"`
	// TimedOut marks a run the per-replay watchdog cut off twice; the
	// run is counted as done (an incident, not a verdict).
	TimedOut bool `json:"timed_out,omitempty"`
	// Err is the property violation the run found ("" = clean).
	Err string `json:"err,omitempty"`
	// Artifact is the path of the repro (or incident) bundle.
	Artifact string `json:"artifact,omitempty"`
	// Event is the degrade/note text.
	Event string `json:"event,omitempty"`
}

const (
	recRun     = "run"
	recDegrade = "degrade"
	recNote    = "note"
)

// envelope is the on-disk line format: the CRC-32 (IEEE) of the exact
// encoded record bytes, then the record. A torn or corrupted tail fails
// the checksum (or fails to parse, or lacks its newline) and recovery
// truncates the journal back to the last fully valid record.
type envelope struct {
	CRC string          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// appendRetries and appendBackoff bound the retry schedule for a failed
// journal write: appendRetries attempts with exponentially growing
// sleeps starting at appendBackoff. After the last failure the journal
// degrades to in-memory-only mode — the campaign keeps running and
// keeps correct in-memory state, it just stops being crash-safe — and
// says so loudly once.
const (
	appendRetries = 5
	appendBackoff = time.Millisecond
)

// defaultSleep paces journal write retries.
func defaultSleep(d time.Duration) {
	//repro:allow campaign journal write-retry backoff is pure I/O pacing; journal contents are a function of run outcomes alone
	time.Sleep(d)
}

// Journal is the append-only write-ahead log of campaign progress.
// Appends are serialized and written as single complete lines; the
// file is opened O_APPEND so a crash can only tear the final line,
// which recovery detects by checksum and truncates.
type Journal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	degraded bool
	lost     int
	warn     func(string)
	sleep    func(time.Duration)
}

// OpenJournal opens (or creates) the journal at path, recovering any
// existing contents: it returns every valid record in order and
// truncates the file after the last one, discarding a torn or corrupt
// tail. warn, if non-nil, receives human-readable durability warnings
// (I/O degradation, tail truncation).
func OpenJournal(path string, warn func(string)) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: read journal: %w", err)
	}
	recs, valid := scanJournal(data)
	if valid < int64(len(data)) {
		if warn != nil {
			warn(fmt.Sprintf("campaign: journal %s: discarding %d bytes of torn/corrupt tail after %d valid records",
				path, int64(len(data))-valid, len(recs)))
		}
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("campaign: truncate journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: seek journal: %w", err)
	}
	j := &Journal{path: path, f: f, warn: warn, sleep: defaultSleep}
	return j, recs, nil
}

// scanJournal parses data line by line and returns the decoded records
// of the longest valid prefix, plus that prefix's byte length. The
// first line that is incomplete (no newline), unparsable, or fails its
// checksum ends the scan: everything from its start is tail garbage.
func scanJournal(data []byte) (recs []Record, valid int64) {
	off := int64(0)
	for int(off) < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn final line
		}
		line := data[off : off+int64(nl)]
		rec, ok := decodeLine(line)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off += int64(nl) + 1
	}
	return recs, off
}

// decodeLine decodes and checksums one journal line.
func decodeLine(line []byte) (Record, bool) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Record{}, false
	}
	var crc uint32
	if _, err := fmt.Sscanf(env.CRC, "%08x", &crc); err != nil {
		return Record{}, false
	}
	if crc32.ChecksumIEEE(env.Rec) != crc {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(env.Rec, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// encodeLine renders rec as one checksummed journal line (newline
// included).
func encodeLine(rec Record) ([]byte, error) {
	recJSON, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(envelope{
		CRC: fmt.Sprintf("%08x", crc32.ChecksumIEEE(recJSON)),
		Rec: recJSON,
	})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// Append durably appends one record. A failed write is retried with
// bounded exponential backoff; if every retry fails the journal
// degrades to in-memory-only mode (Degraded reports true, the record
// and all subsequent ones are counted in Lost) and the campaign
// continues without crash-safety rather than dying. Append never
// returns an error: campaign progress must not hinge on the disk.
func (j *Journal) Append(rec Record) {
	line, err := encodeLine(rec)
	if err != nil {
		// A record that cannot be encoded is a programming error.
		panic(fmt.Sprintf("campaign: encode journal record: %v", err))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded {
		j.lost++
		return
	}
	for attempt := 0; ; attempt++ {
		_, err = j.f.Write(line)
		if err == nil {
			return
		}
		if attempt+1 >= appendRetries {
			break
		}
		j.sleep(appendBackoff << attempt)
	}
	j.degraded = true
	j.lost++
	if j.warn != nil {
		j.warn(fmt.Sprintf("campaign: journal %s: write failed after %d attempts (%v); DEGRADED to in-memory-only mode — progress is no longer crash-safe",
			j.path, appendRetries, err))
	}
}

// Degraded reports whether the journal gave up on persistence after
// repeated I/O errors.
func (j *Journal) Degraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// Lost is the number of records not persisted because of degradation.
func (j *Journal) Lost() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lost
}

// Sync flushes the journal to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded {
		return nil
	}
	return j.f.Sync()
}

// Compact empties the journal after its contents have been absorbed
// into a durably written checkpoint. If the truncate fails the journal
// keeps its contents (recovery re-applies them idempotently on top of
// the checkpoint, so an over-long journal is only a cost, never a
// correctness problem).
func (j *Journal) Compact() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded {
		return
	}
	if err := j.f.Truncate(0); err != nil {
		return
	}
	j.f.Seek(0, 0)
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
