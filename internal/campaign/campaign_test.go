package campaign

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/unicons"
)

// testDerive is a fast deterministic campaign: most indices replay a
// clean unicons run (every third one with a seeded crash-stop fault so
// the Crashes accounting is exercised), and every fifth-plus-three
// index replays the committed lockcounter wait-freedom violation — a
// deterministic, index-addressed failure the resume tests can count.
func testDerive(idx int64) (artifact.Meta, artifact.Sched) {
	if idx%5 == 3 {
		return artifact.Meta{Workload: "lockcounter", N: 2, V: 2, Quantum: 1,
				MaxSteps: 2000, WaitFreeBound: 50},
			artifact.Sched{Decisions: []int{0, 1}}
	}
	s := artifact.Sched{Random: true, Seed: idx + 1}
	if idx%3 == 1 {
		s.MaxCrashes = 1
		s.CrashSeed = idx*11 + 5
	}
	return artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: unicons.MinQuantum,
		MaxSteps: 1 << 16}, s
}

// violIdx lists the testDerive violation indices below n.
func violIdx(n int64) []int64 {
	var out []int64
	for i := int64(0); i < n; i++ {
		if i%5 == 3 {
			out = append(out, i)
		}
	}
	return out
}

// TestCampaignEphemeral: a state-less campaign runs every index,
// records the planted violations by index, and keeps going past them.
func TestCampaignEphemeral(t *testing.T) {
	res, err := Run(Config{Runs: 12, Parallel: 3, Derive: testDerive})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted || res.JournalDegraded {
		t.Fatalf("ephemeral full campaign: interrupted=%v degraded=%v", res.Interrupted, res.JournalDegraded)
	}
	s := res.State
	if s.Runs != 12 || s.NextIdx != 12 || len(s.Extras) != 0 || s.TimedOut != 0 {
		t.Fatalf("state: %+v", s)
	}
	// Every planted lockcounter index must be recorded; crash-injected
	// unicons runs may legitimately add more (deterministically).
	found := map[int64]string{}
	for _, v := range s.Violations {
		found[v.Idx] = v.Err
		if v.Artifact != "" {
			t.Fatalf("artifact path %q recorded without an artifact dir", v.Artifact)
		}
	}
	for _, idx := range violIdx(12) {
		if !strings.Contains(found[idx], "wait-freedom violated") {
			t.Fatalf("planted violation at %d missing or wrong: %+v", idx, s.Violations)
		}
	}
}

// stopAfter returns a Derive wrapper that closes the returned channel
// once n runs have been handed out — a deterministic-enough graceful
// interruption point for resume tests.
func stopAfter(n int64) (<-chan struct{}, func(int64) (artifact.Meta, artifact.Sched)) {
	ch := make(chan struct{})
	var count atomic.Int64
	var once sync.Once
	derive := func(idx int64) (artifact.Meta, artifact.Sched) {
		if count.Add(1) >= n {
			once.Do(func() { close(ch) })
		}
		return testDerive(idx)
	}
	return ch, derive
}

const testRuns = 25

func testConfig(dir string) Config {
	return Config{
		Runs: testRuns, BaseSeed: 7, CrashSeed: 13, Parallel: 3,
		Derive: testDerive, StateDir: dir, CheckpointEvery: 4,
	}
}

// runLeg runs one campaign leg and fails the test on a setup error.
func runLeg(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// normState strips the resume-dependent fields (Resumed counts legs,
// artifact paths embed the state dir) so states from different
// directories compare.
func normState(s State) State {
	s = s.clone()
	s.Resumed = 0
	for i := range s.Violations {
		if s.Violations[i].Artifact != "" {
			s.Violations[i].Artifact = filepath.Base(s.Violations[i].Artifact)
		}
	}
	return s
}

// artifactFiles maps basename -> content for every file in dir.
func artifactFiles(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return out
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

// assertEquivalent is the pinned resume-determinism property: an
// interrupted-and-resumed campaign must end in exactly the
// uninterrupted campaign's state — same run count, same violations by
// index and error, same crash/timeout tallies — with byte-identical
// repro artifacts.
func assertEquivalent(t *testing.T, name string, base *Result, baseDir string, got *Result, gotDir string) {
	t.Helper()
	if got.Interrupted {
		t.Fatalf("%s: final leg still interrupted", name)
	}
	if b, g := normState(base.State), normState(got.State); !reflect.DeepEqual(b, g) {
		t.Fatalf("%s: resumed state diverged from uninterrupted:\nbase: %+v\ngot:  %+v", name, b, g)
	}
	ba := artifactFiles(t, filepath.Join(baseDir, "artifacts"))
	ga := artifactFiles(t, filepath.Join(gotDir, "artifacts"))
	if !reflect.DeepEqual(ba, ga) {
		t.Fatalf("%s: artifacts diverged: base %v, got %v", name, keys(ba), keys(ga))
	}
	if len(ba) == 0 {
		t.Fatalf("%s: no artifacts to compare", name)
	}
}

func keys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestCampaignResumeEquivalence is the tentpole's pinned test: four
// interruption modes — graceful stop, hard kill (no final checkpoint),
// hard kill plus a torn journal tail, and a deleted checkpoint — each
// resumed to completion, must all converge to the uninterrupted
// campaign's exact state and artifacts.
func TestCampaignResumeEquivalence(t *testing.T) {
	baseDir := t.TempDir()
	base := runLeg(t, testConfig(baseDir))
	if base.Interrupted || len(base.State.Violations) < len(violIdx(testRuns)) {
		t.Fatalf("baseline: %+v", base.State)
	}

	t.Run("graceful", func(t *testing.T) {
		dir := t.TempDir()
		cfg := testConfig(dir)
		stop, derive := stopAfter(8)
		cfg.Stop, cfg.Derive = stop, derive
		leg1 := runLeg(t, cfg)
		if !leg1.Interrupted || leg1.State.Runs >= testRuns {
			t.Fatalf("leg1 was not interrupted: %+v", leg1.State)
		}
		leg2 := runLeg(t, testConfig(dir))
		if leg2.State.Resumed != 1 {
			t.Fatalf("leg2 did not resume: Resumed=%d", leg2.State.Resumed)
		}
		assertEquivalent(t, "graceful", base, baseDir, leg2, dir)
	})

	t.Run("hard-kill", func(t *testing.T) {
		dir := t.TempDir()
		cfg := testConfig(dir)
		stop, derive := stopAfter(8)
		cfg.Stop, cfg.Derive = stop, derive
		cfg.skipFinalCheckpoint = true // simulate SIGKILL: journal tail survives un-checkpointed
		leg1 := runLeg(t, cfg)
		if !leg1.Interrupted {
			t.Fatalf("leg1 was not interrupted: %+v", leg1.State)
		}
		leg2 := runLeg(t, testConfig(dir))
		assertEquivalent(t, "hard-kill", base, baseDir, leg2, dir)
	})

	t.Run("torn-tail", func(t *testing.T) {
		dir := t.TempDir()
		cfg := testConfig(dir)
		stop, derive := stopAfter(8)
		cfg.Stop, cfg.Derive = stop, derive
		cfg.skipFinalCheckpoint = true
		runLeg(t, cfg)
		// Tear the journal mid-record, as a crash mid-write would.
		jp := JournalPath(dir)
		if info, err := os.Stat(jp); err != nil {
			t.Fatal(err)
		} else if info.Size() > 3 {
			if err := os.Truncate(jp, info.Size()-3); err != nil {
				t.Fatal(err)
			}
		}
		leg2 := runLeg(t, testConfig(dir))
		assertEquivalent(t, "torn-tail", base, baseDir, leg2, dir)
	})

	t.Run("checkpoint-deleted", func(t *testing.T) {
		dir := t.TempDir()
		cfg := testConfig(dir)
		stop, derive := stopAfter(8)
		cfg.Stop, cfg.Derive = stop, derive
		cfg.skipFinalCheckpoint = true
		runLeg(t, cfg)
		// Lose the checkpoint entirely: the journal alone must recover
		// (post-compaction records replay; compacted-away runs re-run
		// deterministically to the same outcomes).
		os.Remove(CheckpointPath(dir))
		leg2 := runLeg(t, testConfig(dir))
		assertEquivalent(t, "checkpoint-deleted", base, baseDir, leg2, dir)
	})
}

// TestCampaignResumeNothingToDo: resuming a completed campaign runs
// zero new runs and reports the same result.
func TestCampaignResumeNothingToDo(t *testing.T) {
	dir := t.TempDir()
	first := runLeg(t, testConfig(dir))
	again := runLeg(t, testConfig(dir))
	if again.State.Resumed != 1 {
		t.Fatalf("Resumed=%d, want 1", again.State.Resumed)
	}
	if !reflect.DeepEqual(normState(first.State), normState(again.State)) {
		t.Fatalf("re-running a complete campaign changed its state:\n%+v\n%+v", first.State, again.State)
	}
}

// TestCampaignIdentityMismatch: a state dir refuses a campaign with
// different seeds instead of silently mixing incompatible runs.
func TestCampaignIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	runLeg(t, testConfig(dir))
	cfg := testConfig(dir)
	cfg.BaseSeed = 999
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("identity mismatch not rejected: %v", err)
	}
}

// TestCampaignStopOnViolation: classic soak behavior — stop at the
// first violation, which at Parallelism 1 is exactly run index 3.
func TestCampaignStopOnViolation(t *testing.T) {
	res, err := Run(Config{Runs: testRuns, Parallel: 1, Derive: testDerive, StopOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("StopOnViolation did not interrupt the campaign")
	}
	if res.State.Runs != 4 || len(res.State.Violations) != 1 || res.State.Violations[0].Idx != 3 {
		t.Fatalf("state: %+v", res.State)
	}
}

// TestCampaignWatchdogTimeout: under an immediately-expired RunTimeout
// every run times out twice, is recorded as an incident (with a bundle
// under incidents/), counted as done — and the campaign terminates
// instead of hanging. A resume then has nothing left to do.
func TestCampaignWatchdogTimeout(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Runs: 6, Parallel: 2, Derive: testDerive, StateDir: dir,
		RunTimeout: time.Nanosecond, StopCheckEvery: 1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.State
	if s.Runs != 6 || s.TimedOut != 6 || len(s.Violations) != 0 {
		t.Fatalf("state: %+v", s)
	}
	incidents := artifactFiles(t, filepath.Join(dir, "incidents"))
	if len(incidents) == 0 {
		t.Fatal("no incident bundles recorded")
	}
	for name, data := range incidents {
		if !strings.Contains(data, "watchdog") {
			t.Fatalf("incident %s lacks the watchdog marker", name)
		}
	}

	cfg.RunTimeout = 0
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.State.Runs != 6 || again.State.Resumed != 1 {
		t.Fatalf("resume after timeouts: %+v", again.State)
	}
}

// TestCampaignMemPressure: an unreachable soft limit steps the worker
// count down to one (journaled, in order) while the campaign still
// completes every run.
func TestCampaignMemPressure(t *testing.T) {
	res, err := Run(Config{
		Runs: 12, Parallel: 4, Derive: testDerive, MemSoftLimit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Runs != 12 || res.State.NextIdx != 12 {
		t.Fatalf("degraded campaign did not finish: %+v", res.State)
	}
	degr := res.State.Degradations
	if len(degr) != 2 ||
		!strings.Contains(degr[0], "stepped workers 4 -> 2") ||
		!strings.Contains(degr[1], "stepped workers 2 -> 1") {
		t.Fatalf("degradation ladder: %v", degr)
	}
}
