package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// testRecords is a small, varied record stream for recovery tests.
func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Type: recRun, Idx: int64(i), Crashed: i % 3}
		if i%5 == 3 {
			recs[i].Err = fmt.Sprintf("violation at %d", i)
			recs[i].Artifact = fmt.Sprintf("artifacts/bundle-%d.json", i)
		}
		if i%7 == 5 {
			recs[i] = Record{Type: recDegrade, Event: fmt.Sprintf("step %d", i)}
		}
	}
	return recs
}

// writeJournal writes recs to a fresh journal and returns the file
// bytes and the per-record end offsets.
func writeJournal(t *testing.T, dir string, recs []Record) (data []byte, ends []int64) {
	t.Helper()
	path := filepath.Join(dir, "journal.wal")
	j, got, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(got))
	}
	off := int64(0)
	for _, rec := range recs {
		j.Append(rec)
		line, err := encodeLine(rec)
		if err != nil {
			t.Fatal(err)
		}
		off += int64(len(line))
		ends = append(ends, off)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != off {
		t.Fatalf("journal is %d bytes, expected %d", len(data), off)
	}
	return data, ends
}

// recoverPrefix writes prefix to a fresh file and runs recovery.
func recoverPrefix(t *testing.T, dir, name string, prefix []byte) (*Journal, []Record) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, prefix, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", name, err)
	}
	return j, recs
}

// TestJournalKillPoints is the fault-injection suite of the journal's
// crash contract: for EVERY byte prefix of a journal file — every
// possible point a crash or torn write could leave it at — recovery
// returns exactly the records whose lines are fully contained in the
// prefix, truncates the garbage, and the journal accepts new appends
// that survive a further reopen.
func TestJournalKillPoints(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(12)
	data, ends := writeJournal(t, dir, recs)

	wantAt := func(n int64) []Record {
		var want []Record
		for i, end := range ends {
			if end <= n {
				want = recs[:i+1]
			}
		}
		return want
	}

	for n := int64(0); n <= int64(len(data)); n++ {
		name := fmt.Sprintf("kill-%d.wal", n)
		j, got, err := func() (*Journal, []Record, error) {
			path := filepath.Join(dir, name)
			if err := os.WriteFile(path, data[:n], 0o644); err != nil {
				t.Fatal(err)
			}
			return OpenJournal(path, nil)
		}()
		if err != nil {
			t.Fatalf("kill at byte %d: recovery failed: %v", n, err)
		}
		want := wantAt(n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kill at byte %d: recovered %d records, want %d", n, len(got), len(want))
		}
		// The recovered journal must keep working: append one record,
		// reopen, and see the recovered prefix plus the new record.
		extra := Record{Type: recRun, Idx: 1000 + n}
		j.Append(extra)
		if err := j.Close(); err != nil {
			t.Fatalf("kill at byte %d: close: %v", n, err)
		}
		_, again, err := OpenJournal(filepath.Join(dir, name), nil)
		if err != nil {
			t.Fatalf("kill at byte %d: reopen: %v", n, err)
		}
		if !reflect.DeepEqual(again, append(append([]Record(nil), want...), extra)) {
			t.Fatalf("kill at byte %d: append after recovery lost records", n)
		}
		os.Remove(filepath.Join(dir, name))
	}
}

// TestJournalCorruptTail: bit corruption inside the final record (not
// just truncation) fails its checksum and drops exactly that record.
func TestJournalCorruptTail(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(8)
	data, ends := writeJournal(t, dir, recs)

	lastStart := ends[len(ends)-2]
	for off := lastStart; off < int64(len(data))-1; off++ {
		corrupted := append([]byte(nil), data...)
		corrupted[off] ^= 0x20
		_, got := recoverPrefix(t, dir, "corrupt.wal", corrupted)
		// Either the final record is dropped (checksum/parse failure) or
		// — when the flip lands in ignorable JSON whitespace — recovery
		// may still accept it; it must never return garbage or fewer
		// than the intact prefix.
		if len(got) < len(recs)-1 || len(got) > len(recs) {
			t.Fatalf("flip at byte %d: recovered %d records, want %d or %d", off, len(got), len(recs)-1, len(recs))
		}
		if !reflect.DeepEqual(got[:len(recs)-1], recs[:len(recs)-1]) {
			t.Fatalf("flip at byte %d: intact prefix corrupted", off)
		}
		if len(got) == len(recs) && !reflect.DeepEqual(got[len(recs)-1], recs[len(recs)-1]) {
			t.Fatalf("flip at byte %d: accepted a corrupted record", off)
		}
	}

	// Garbage appended after valid records is discarded entirely.
	garbage := append(append([]byte(nil), data...), []byte("{\"crc\":\"zz")...)
	_, got := recoverPrefix(t, dir, "garbage.wal", garbage)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("garbage tail: recovered %d records, want %d", len(got), len(recs))
	}
}

// TestJournalConcurrentAppend: concurrent appends (exercised under
// -race in CI) are serialized; every record survives a reopen intact.
func TestJournalConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.Append(Record{Type: recRun, Idx: int64(w*each + i), Crashed: w})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != workers*each {
		t.Fatalf("recovered %d records, want %d", len(recs), workers*each)
	}
	seen := make(map[int64]bool)
	for _, rec := range recs {
		if seen[rec.Idx] {
			t.Fatalf("record %d recovered twice", rec.Idx)
		}
		seen[rec.Idx] = true
		if rec.Crashed != int(rec.Idx)/each {
			t.Fatalf("record %d interleaved with another append: crashed=%d", rec.Idx, rec.Crashed)
		}
	}
}

// TestJournalDegradesOnIOError: persistent write failures degrade the
// journal to in-memory-only mode with a single loud warning instead of
// failing the campaign; earlier records stay recoverable.
func TestJournalDegradesOnIOError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	j.warn = func(msg string) { warnings = append(warnings, msg) }
	slept := 0
	j.sleep = func(time.Duration) { slept++ }

	j.Append(Record{Type: recRun, Idx: 0})
	j.f.Close() // every subsequent write fails

	j.Append(Record{Type: recRun, Idx: 1})
	if !j.Degraded() {
		t.Fatal("journal not degraded after persistent write failure")
	}
	if slept != appendRetries-1 {
		t.Fatalf("backoff slept %d times, want %d", slept, appendRetries-1)
	}
	if len(warnings) != 1 || !bytes.Contains([]byte(warnings[0]), []byte("DEGRADED")) {
		t.Fatalf("want one loud degradation warning, got %q", warnings)
	}

	// Degraded mode: appends are counted, not retried, and no new
	// warnings pile up.
	j.Append(Record{Type: recRun, Idx: 2})
	if j.Lost() != 2 || len(warnings) != 1 || slept != appendRetries-1 {
		t.Fatalf("degraded append: lost=%d warnings=%d slept=%d", j.Lost(), len(warnings), slept)
	}

	// The record persisted before the failure is still recoverable.
	_, recs, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Idx != 0 {
		t.Fatalf("recovered %v, want the one pre-failure record", recs)
	}
}

// TestCheckpointAtomicity: a checkpoint write is all-or-nothing — the
// temp file never survives, and a rename either installs the complete
// new snapshot or leaves the old one.
func TestCheckpointAtomicity(t *testing.T) {
	dir := t.TempDir()
	old := &Checkpoint{Version: checkpointVersion, Identity: Identity{BaseSeed: 1},
		State: State{NextIdx: 5, Runs: 5}}
	if err := WriteCheckpoint(dir, old); err != nil {
		t.Fatal(err)
	}
	next := &Checkpoint{Version: checkpointVersion, Identity: Identity{BaseSeed: 1},
		State: State{NextIdx: 9, Runs: 9}}
	if err := WriteCheckpoint(dir, next); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(CheckpointPath(dir) + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp checkpoint left behind: %v", err)
	}
	got, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, next) {
		t.Fatalf("loaded %+v, want %+v", got, next)
	}
}

// TestStateMarkDone: the done-set absorbs out-of-order completions into
// the contiguous prefix and rejects duplicates.
func TestStateMarkDone(t *testing.T) {
	var s State
	for _, idx := range []int64{0, 2, 4, 3, 1} {
		if !s.markDone(idx) {
			t.Fatalf("markDone(%d) = false on first completion", idx)
		}
	}
	if s.NextIdx != 5 || len(s.Extras) != 0 || s.Runs != 5 {
		t.Fatalf("state after 0..4: %+v", s)
	}
	for _, idx := range []int64{0, 3, 4} {
		if s.markDone(idx) {
			t.Fatalf("markDone(%d) accepted a duplicate", idx)
		}
	}
	if s.Runs != 5 {
		t.Fatalf("duplicates changed Runs: %d", s.Runs)
	}
	s.markDone(10)
	if s.NextIdx != 5 || !reflect.DeepEqual(s.Extras, []int64{10}) {
		t.Fatalf("sparse completion mishandled: %+v", s)
	}
}
