package multicons_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/sched"
	"repro/internal/sim"
)

// runInstrumented runs one Fig. 7 consensus and returns the instance
// for lemma inspection.
func runInstrumented(t *testing.T, cfg multicons.Config, quantum int, ch sim.Chooser) *multicons.Algorithm {
	t.Helper()
	sys := sim.New(sim.Config{Processors: cfg.P, Quantum: quantum, Chooser: ch, MaxSteps: 1 << 23})
	alg := multicons.New(cfg)
	outs := make([]mem.Word, cfg.P*cfg.M)
	id := 0
	for i := 0; i < cfg.P; i++ {
		for j := 0; j < cfg.M; j++ {
			me := id
			sys.AddProcess(sim.ProcSpec{Processor: i, Priority: 1 + j%cfg.V}).
				AddInvocation(func(c *sim.Ctx) { outs[me] = alg.Decide(c, mem.Word(me+1)) })
			id++
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, o := range outs {
		if o != outs[0] || o == mem.Bottom {
			t.Fatalf("disagreement at %d: %v", i, outs)
		}
	}
	return alg
}

// TestLemma3DecidingLevelExists reproduces Appendix B's conclusion: with
// the formula's L and an adequate quantum, every adversarial run has a
// level at which all processors published — the deciding-level witness.
func TestLemma3DecidingLevelExists(t *testing.T) {
	for _, cfg := range []multicons.Config{
		{Name: "lm", P: 2, K: 0, M: 2, V: 1},
		{Name: "lm", P: 2, K: 1, M: 2, V: 2},
		{Name: "lm", P: 3, K: 1, M: 2, V: 2},
	} {
		for seed := int64(0); seed < 25; seed++ {
			alg := runInstrumented(t, cfg, 4096, sched.NewRandom(seed))
			if dl := alg.DecidingLevel(); dl == 0 {
				t.Fatalf("cfg=%+v seed=%d: no deciding-level witness; report=%+v",
					cfg, seed, alg.Report())
			}
		}
		alg := runInstrumented(t, cfg, 4096, sched.NewRotate())
		if alg.DecidingLevel() == 0 {
			t.Fatalf("cfg=%+v rotate: no deciding-level witness", cfg)
		}
	}
}

// TestLemma3AccessFailureBudget checks the empirical (terminal) access
// failures never exceed the Lemma 2+3 budget, even under the
// maximally-preempting adversary at a quantum near the frontier.
func TestLemma3AccessFailureBudget(t *testing.T) {
	for _, cfg := range []multicons.Config{
		{Name: "lm", P: 2, K: 0, M: 3, V: 1},
		{Name: "lm", P: 2, K: 2, M: 3, V: 1},
		{Name: "lm", P: 3, K: 1, M: 2, V: 2},
	} {
		budget := 0
		for seed := int64(0); seed < 25; seed++ {
			sys := sim.New(sim.Config{Processors: cfg.P, Quantum: 64,
				Chooser: sched.NewRandom(seed), MaxSteps: 1 << 23})
			alg := multicons.New(cfg)
			id := 0
			for i := 0; i < cfg.P; i++ {
				for j := 0; j < cfg.M; j++ {
					me := id
					sys.AddProcess(sim.ProcSpec{Processor: i, Priority: 1 + j%cfg.V}).
						AddInvocation(func(c *sim.Ctx) { alg.Decide(c, mem.Word(me+1)) })
					id++
				}
			}
			if err := sys.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if af := alg.TerminalAccessFailures(); af > alg.AccessFailureBudget() {
				t.Fatalf("cfg=%+v seed=%d: terminal access failures %d exceed Lemma budget %d",
					cfg, seed, af, alg.AccessFailureBudget())
			} else if af > budget {
				budget = af
			}
		}
		t.Logf("cfg P=%d K=%d M=%d: worst terminal AF %d within budget %d (L=%d)",
			cfg.P, cfg.K, cfg.M, budget,
			multicons.New(cfg).AccessFailureBudget(), cfg.Levels())
	}
}

// TestLemmaPortClaimsBounded checks port claims per processor stay
// within the paper's 2L+M overshoot bound.
func TestLemmaPortClaimsBounded(t *testing.T) {
	cfg := multicons.Config{Name: "lm", P: 2, K: 1, M: 3, V: 2}
	alg := runInstrumented(t, cfg, 2048, sched.NewRandom(5))
	total := 0
	for _, r := range alg.Report() {
		for i, n := range r.Claims {
			total += n
			// Per level per processor: at most numports claims can win
			// elections, but transient double-claims across priorities
			// are bounded by M.
			if n > 2+cfg.M {
				t.Fatalf("level %d processor %d claimed %d ports", r.Level, i, n)
			}
		}
		if r.Invocations > cfg.C() {
			t.Fatalf("level %d invoked %d > C=%d", r.Level, r.Invocations, cfg.C())
		}
	}
	if total == 0 {
		t.Fatal("no port claims recorded")
	}
}

// TestReportShape sanity-checks the report structure.
func TestReportShape(t *testing.T) {
	cfg := multicons.Config{Name: "lm", P: 2, K: 0, M: 1, V: 1}
	alg := runInstrumented(t, cfg, 4096, sim.FirstChooser{})
	rep := alg.Report()
	if len(rep) != alg.L() {
		t.Fatalf("report has %d levels, want %d", len(rep), alg.L())
	}
	if rep[0].Level != 1 || rep[len(rep)-1].Level != alg.L() {
		t.Fatalf("level numbering off: %d..%d", rep[0].Level, rep[len(rep)-1].Level)
	}
}
