package multicons_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/sched"
	"repro/internal/sim"
)

// crashFig7Builder is fig7Builder under a crash-stop adversary crashing
// up to k of the P*M processes. A crashed process forfeits at most one
// won-but-unannounced election per level walk, which the L-level tower
// absorbs: survivors must still agree on a valid proposal within the
// Theorem 4 polynomial bound. outs uses 0 as the "never finished"
// sentinel (proposals are 1..n).
func crashFig7Builder(cfg multicons.Config, quantum, k int, crashSeed *atomic.Int64) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		crashing := sched.NewRandomCrash(ch, crashSeed.Add(1), k, 0.02)
		aud := sim.NewAuditor(quantum)
		sys := sim.New(sim.Config{
			Processors: cfg.P, Quantum: quantum,
			Chooser: crashing, Observer: aud, MaxSteps: 1 << 22,
		})
		alg := multicons.New(cfg)
		n := cfg.P * cfg.M
		outs := make([]mem.Word, n)
		procs := make([]*sim.Process, n)
		id := 0
		for i := 0; i < cfg.P; i++ {
			for j := 0; j < cfg.M; j++ {
				me := id
				procs[me] = sys.AddProcess(sim.ProcSpec{
					Processor: i,
					Priority:  1 + j%cfg.V,
					Name:      fmt.Sprintf("p%d.%d", i, j),
				})
				procs[me].AddInvocation(func(c *sim.Ctx) {
					outs[me] = alg.Decide(c, mem.Word(me+1))
				})
				id++
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			if err := aud.Err(); err != nil {
				return err
			}
			decided := mem.Word(0)
			for i, p := range procs {
				if p.Crashed() {
					continue
				}
				if p.CompletedInvocations() != 1 || outs[i] == 0 {
					return fmt.Errorf("survivor %d did not decide (crashes must not block survivors)", i)
				}
				if outs[i] < 1 || outs[i] > mem.Word(n) {
					return fmt.Errorf("validity violated: survivor %d decided %d", i, outs[i])
				}
				if decided == 0 {
					decided = outs[i]
				} else if outs[i] != decided {
					return fmt.Errorf("agreement violated among survivors: outs=%v", outs)
				}
			}
			for i, p := range procs {
				if p.Crashed() && outs[i] != 0 && outs[i] != decided {
					return fmt.Errorf("crashed process %d recorded %d != decided %d", i, outs[i], decided)
				}
			}
			return nil
		}
		return sys, verify
	}
}

// TestFig7CrashFuzz: seeded random schedules plus seeded random
// crash-stop faults with every budget k in 1..n-1 find no violation of
// agreement, validity, or the polynomial wait-free bound.
func TestFig7CrashFuzz(t *testing.T) {
	for _, cfg := range []multicons.Config{
		{Name: "f7", P: 2, K: 0, M: 2, V: 1},
		{Name: "f7", P: 2, K: 1, M: 2, V: 2},
	} {
		n := cfg.P * cfg.M
		bound := int64(200 * (cfg.Levels() + n)) // Theorem 4 poly-bound idiom
		for k := 1; k < n; k++ {
			var crashSeed atomic.Int64
			res := check.Fuzz(crashFig7Builder(cfg, bigQ, k, &crashSeed), 40, check.Options{
				WaitFreeBound: bound,
			})
			if !res.OK() {
				t.Fatalf("cfg=%+v k=%d: %+v", cfg, k, res.First())
			}
			if res.StepLimited != 0 {
				t.Fatalf("cfg=%+v k=%d: %d runs hit the step limit", cfg, k, res.StepLimited)
			}
		}
	}
}

// TestFig7CrashPlannedSweep crashes the first process at a sweep of
// early points under a deterministic schedule: a dead election winner
// at any level must not block the survivors' tower climb.
func TestFig7CrashPlannedSweep(t *testing.T) {
	cfg := multicons.Config{Name: "f7", P: 2, K: 1, M: 2, V: 1}
	n := cfg.P * cfg.M
	for step := int64(0); step <= 120; step += 5 {
		aud := sim.NewAuditor(bigQ)
		sys := sim.New(sim.Config{
			Processors: cfg.P, Quantum: bigQ,
			Chooser:  sched.NewCrash(sim.FirstChooser{}, sched.CrashPoint{Proc: 0, Step: step}),
			Observer: aud, MaxSteps: 1 << 22,
		})
		alg := multicons.New(cfg)
		outs := make([]mem.Word, n)
		procs := make([]*sim.Process, n)
		id := 0
		for i := 0; i < cfg.P; i++ {
			for j := 0; j < cfg.M; j++ {
				me := id
				procs[me] = sys.AddProcess(sim.ProcSpec{Processor: i, Priority: 1})
				procs[me].AddInvocation(func(c *sim.Ctx) {
					outs[me] = alg.Decide(c, mem.Word(me+1))
				})
				id++
			}
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("step=%d: %v", step, err)
		}
		if err := aud.Err(); err != nil {
			t.Fatalf("step=%d: %v", step, err)
		}
		decided := mem.Word(0)
		for i, p := range procs {
			if p.Crashed() {
				continue
			}
			if outs[i] == 0 {
				t.Fatalf("step=%d: survivor %d never decided", step, i)
			}
			if decided == 0 {
				decided = outs[i]
			} else if outs[i] != decided {
				t.Fatalf("step=%d: survivors disagree: %v", step, outs)
			}
		}
	}
}
