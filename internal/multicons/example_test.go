package multicons_test

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Example demonstrates Theorem 4: four processes on two processors reach
// consensus through 3-consensus objects (C = P + K = 2 + 1), even though
// four participants exceed the objects' consensus number.
func Example() {
	sys := sim.New(sim.Config{
		Processors: 2,
		Quantum:    2048,
		Chooser:    sched.NewRandom(1),
		MaxSteps:   1 << 22,
	})
	alg := multicons.New(multicons.Config{Name: "ex", P: 2, K: 1, M: 2, V: 1})
	outs := make([]mem.Word, 4)
	for i := 0; i < 4; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: i % 2, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				outs[i] = alg.Decide(c, mem.Word(i+1))
			})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	fmt.Println(outs[0] == outs[1] && outs[1] == outs[2] && outs[2] == outs[3])
	// Output: true
}
