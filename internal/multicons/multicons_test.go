package multicons_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/sim"
)

// fig7Builder builds P processors × M processes (priorities cycling
// through 1..V), each deciding once with proposal id+1, and verifies
// agreement and validity.
func fig7Builder(cfg multicons.Config, quantum int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: cfg.P, Quantum: quantum, Chooser: ch, MaxSteps: 1 << 22})
		alg := multicons.New(cfg)
		n := cfg.P * cfg.M
		outs := make([]mem.Word, n)
		id := 0
		for i := 0; i < cfg.P; i++ {
			for j := 0; j < cfg.M; j++ {
				me := id
				sys.AddProcess(sim.ProcSpec{
					Processor: i,
					Priority:  1 + j%cfg.V,
					Name:      fmt.Sprintf("p%d.%d", i, j),
				}).AddInvocation(func(c *sim.Ctx) {
					outs[me] = alg.Decide(c, mem.Word(me+1))
				})
				id++
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			return verifyAgreement(outs, n)
		}
		return sys, verify
	}
}

func verifyAgreement(outs []mem.Word, n int) error {
	first := outs[0]
	for i, v := range outs {
		if v == mem.Bottom {
			return fmt.Errorf("process %d decided ⊥", i)
		}
		if v != first {
			return fmt.Errorf("agreement violated: outs=%v", outs)
		}
		if v < 1 || v > mem.Word(n) {
			return fmt.Errorf("validity violated: decided %d", v)
		}
	}
	return nil
}

// enough quantum for the Lemma 3 premise given this implementation's
// per-level statement cost.
const bigQ = 4096

func TestFig7Solo(t *testing.T) {
	cfg := multicons.Config{Name: "f7", P: 1, K: 0, M: 1, V: 1}
	res := check.ExploreAll(fig7Builder(cfg, bigQ), check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

func TestFig7LevelsFormula(t *testing.T) {
	for _, tc := range []struct {
		p, k, m, v int
		want       int
	}{
		// L = (K+1)M(1+P−K) + (P−K)²M + 1
		{1, 0, 1, 1, 1*1*2 + 1*1 + 1}, // 4
		{2, 0, 1, 1, 1*1*3 + 4*1 + 1}, // 8
		{2, 2, 1, 1, 3*1*1 + 0 + 1},   // 4
		{2, 1, 2, 1, 2*2*2 + 1*2 + 1}, // 11
		{4, 2, 3, 2, 3*3*3 + 4*3 + 1}, // 40
	} {
		cfg := multicons.Config{Name: "f7", P: tc.p, K: tc.k, M: tc.m, V: tc.v}
		if got := cfg.Levels(); got != tc.want {
			t.Errorf("Levels(P=%d K=%d M=%d) = %d, want %d", tc.p, tc.k, tc.m, got, tc.want)
		}
	}
}

func TestFig7TwoProcessorsExhaustiveBudget(t *testing.T) {
	cfg := multicons.Config{Name: "f7", P: 2, K: 0, M: 1, V: 1}
	// The full 2-deviation space is ~125k schedules (~100s); cap it to
	// keep the suite fast while still covering every early deviation.
	res := check.ExploreBudget(fig7Builder(cfg, bigQ), 2, check.Options{MaxSchedules: 15000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
	t.Logf("verified %d schedules (truncated=%v)", res.Schedules, res.Truncated)
}

func TestFig7Fuzz(t *testing.T) {
	for _, cfg := range []multicons.Config{
		{Name: "f7", P: 2, K: 0, M: 2, V: 1},
		{Name: "f7", P: 2, K: 1, M: 2, V: 2},
		{Name: "f7", P: 2, K: 2, M: 2, V: 2},
		{Name: "f7", P: 3, K: 1, M: 2, V: 2},
		{Name: "f7", P: 4, K: 2, M: 2, V: 2},
	} {
		res := check.Fuzz(fig7Builder(cfg, bigQ), 60, check.Options{})
		if !res.OK() {
			t.Fatalf("cfg=%+v: violation: %+v", cfg, res.First())
		}
	}
}

// TestFig7PortDiscipline verifies the port/election machinery caps every
// level's C-consensus object at C invocations (the paper's key resource
// invariant), under heavy adversarial fuzzing.
func TestFig7PortDiscipline(t *testing.T) {
	cfg := multicons.Config{Name: "f7", P: 2, K: 1, M: 3, V: 2}
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: cfg.P, Quantum: 64, Chooser: ch, MaxSteps: 1 << 22})
		alg := multicons.New(cfg)
		id := 0
		for i := 0; i < cfg.P; i++ {
			for j := 0; j < cfg.M; j++ {
				me := id
				sys.AddProcess(sim.ProcSpec{Processor: i, Priority: 1 + j%cfg.V}).
					AddInvocation(func(c *sim.Ctx) { alg.Decide(c, mem.Word(me+1)) })
				id++
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			for l, inv := range alg.Invocations() {
				if l >= 1 && inv > cfg.C() {
					return fmt.Errorf("level %d invoked %d times > C=%d", l, inv, cfg.C())
				}
			}
			return nil
		}
		return sys, verify
	}
	// Note the small quantum: the port discipline must hold regardless
	// of Q (only agreement needs the Table 1 bound).
	res := check.Fuzz(build, 100, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// TestFig7WaitFree bounds every process's own statements by a polynomial
// budget in (M, P, L) — Theorem 4's polynomial time claim.
func TestFig7WaitFree(t *testing.T) {
	cfg := multicons.Config{Name: "f7", P: 3, K: 1, M: 2, V: 2}
	build := fig7Builder(cfg, bigQ)
	budget := int64(200 * (cfg.Levels() + cfg.P*cfg.M)) // generous poly bound
	wrapped := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys, inner := build(ch)
		verify := func(runErr error) error {
			if err := inner(runErr); err != nil {
				return err
			}
			for _, p := range sys.Processes() {
				if p.MaxInvStmts() > budget {
					return fmt.Errorf("process %s took %d statements > budget %d",
						p.Name(), p.MaxInvStmts(), budget)
				}
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(wrapped, 50, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// fig9Builder builds a Fig. 9 (fair scheduling) instance. The chooser
// must be fair for termination (Random and Rotate are; FirstChooser is
// not).
func fig9Builder(p, v, k, n, quantum int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: p, Quantum: quantum, Chooser: ch, MaxSteps: 1 << 22})
		alg := multicons.NewFair("f9", p, v, k)
		outs := make([]mem.Word, n)
		for i := 0; i < n; i++ {
			me := i
			sys.AddProcess(sim.ProcSpec{
				Processor: i % p,
				Priority:  1 + (i/p)%v,
				Name:      fmt.Sprintf("p%d", i),
			}).AddInvocation(func(c *sim.Ctx) {
				outs[me] = alg.Decide(c, mem.Word(me+1))
			})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			return verifyAgreement(outs, n)
		}
		return sys, verify
	}
}

// TestFig9ConstantQuantum is the §5 headline: with fair quanta, P-
// consensus objects (K=0) and a small constant quantum solve consensus
// for many processes per processor.
func TestFig9ConstantQuantum(t *testing.T) {
	for _, tc := range []struct{ p, v, k, n int }{
		{1, 1, 0, 4},
		{2, 1, 0, 6},
		{2, 2, 0, 8},
		{3, 2, 1, 9},
	} {
		res := check.Fuzz(fig9Builder(tc.p, tc.v, tc.k, tc.n, 8), 60, check.Options{})
		if !res.OK() {
			t.Fatalf("cfg=%+v: violation: %+v", tc, res.First())
		}
	}
}

// TestFig9LosersSeeWinnersValue checks that election losers return the
// published decision, not their own proposal, when they lose.
func TestFig9LosersSeeWinnersValue(t *testing.T) {
	res := check.Fuzz(fig9Builder(2, 1, 0, 8, 8), 100, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}
