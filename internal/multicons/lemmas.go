package multicons

import "repro/internal/mem"

// Post-run analysis of an Algorithm instance, reproducing the counting
// arguments of the paper's Appendix B (Lemmas 2, 3, B.1, B.2).
//
// An "access failure" at level l (paper §4.2) is caused by processes
// that acquire a processor's port(s) for l but are preempted before
// publishing an output value; other processes then find the level
// inaccessible yet unpublished. Operationally, after a run completes,
// a level exhibits a *terminal* access failure on processor i if one of
// i's ports for the level was claimed but Outval[i][l] was never
// published (the claimer took the lines 15-16 early exit after a
// decision appeared): transient failures heal when the preempted
// claimer resumes and publishes, so the terminal count is a lower bound
// on the failures that occurred. The Lemma 3 bound must dominate it.

// LevelReport describes one consensus level after a run.
type LevelReport struct {
	// Level is the level number (1..L).
	Level int
	// Claims counts port claims per processor.
	Claims []int
	// Published reports whether each processor published Outval[i][l].
	Published []bool
	// Invocations is the level's C-consensus invocation count.
	Invocations int
}

// Failed reports whether the level shows a terminal access failure on
// any processor (claimed but never published).
func (r LevelReport) Failed() bool {
	for i := range r.Claims {
		if r.Claims[i] > 0 && !r.Published[i] {
			return true
		}
	}
	return false
}

// AllPublished reports whether every processor published at this level.
func (r LevelReport) AllPublished() bool {
	for _, p := range r.Published {
		if !p {
			return false
		}
	}
	return true
}

// Report returns per-level reports for levels 1..L. Post-run inspection
// only.
func (a *Algorithm) Report() []LevelReport {
	out := make([]LevelReport, 0, a.l)
	for l := 1; l <= a.l; l++ {
		r := LevelReport{
			Level:     l,
			Claims:    make([]int, a.cfg.P),
			Published: make([]bool, a.cfg.P),
			//repro:allow post-run Appendix B lemma accounting reads invocation counts after the run
			Invocations: a.levelObjs[l].Invocations(),
		}
		for i := 0; i < a.cfg.P; i++ {
			r.Claims[i] = a.claims[i][l]
			//repro:allow post-run terminal access-failure detection inspects Outval after the run
			r.Published[i] = a.outval[i][l].Load() != mem.Bottom
		}
		out = append(out, r)
	}
	return out
}

// TerminalAccessFailures counts levels with a terminal access failure —
// the empirical lower bound on the paper's AF. Post-run inspection only.
func (a *Algorithm) TerminalAccessFailures() int {
	n := 0
	for _, r := range a.Report() {
		if r.Failed() {
			n++
		}
	}
	return n
}

// AccessFailureBudget is the Lemma 3 bound on same-priority access
// failures, KM + (P−K)(L+M(P−K))/(1+P−K), plus Lemma 2's bound M on
// different-priority failures.
func (a *Algorithm) AccessFailureBudget() int {
	p, k, m, l := a.cfg.P, a.cfg.K, a.cfg.M, a.l
	pk := p - k
	return m + k*m + (pk*(l+m*pk))/(1+pk)
}

// DecidingLevel returns the lowest level at which every processor
// published an output — the operational witness of Lemma 3's "a
// deciding level exists" — or 0 if none. Post-run inspection only.
//
// Note the subtlety: a level every processor published is a *witness*
// that agreement propagated; the paper's deciding level (no access
// failure at all) implies such a level exists once the quantum meets the
// Table 1 bound.
func (a *Algorithm) DecidingLevel() int {
	for _, r := range a.Report() {
		if r.AllPublished() {
			return r.Level
		}
	}
	return 0
}

// noteClaim records a port claim for the lemma accounting
// (runtime-side).
func (a *Algorithm) noteClaim(processor, level int) {
	if level >= 1 && level <= a.l {
		a.claims[processor][level]++
	}
}
