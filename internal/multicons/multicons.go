// Package multicons implements the paper's multiprocessor consensus
// algorithms: Fig. 7 (Theorem 4) — wait-free consensus for any number of
// processes on P hybrid-scheduled processors from C-consensus objects
// with C = P + K ≥ P — and Fig. 9 (§5) — the constant-quantum variant
// for fairly scheduled systems.
//
// # Fig. 7 structure
//
// Processes march through L consensus levels (Fig. 8), where
//
//	L = (K+1)·M·(1+P−K) + (P−K)²·M + 1
//
// and M is the maximum number of processes per processor. Each level
// holds one C-consensus object with P+K ports: two ports on processors
// 1..K, one on processors K+1..P. A process claims ports through its
// processor's per-priority Port counter (level-local Q-F&I/Q-C&S from
// package qlocal) and must then win the port's local consensus
// (package unicons, correct across priority levels) before invoking the
// level's C-consensus object. Winners publish the level's output in
// Outval and advance their priority's Lastpub pointer; later levels use
// the newest published output as input. The pigeonhole argument of
// Lemma 3 guarantees a deciding level — one with no access failure on
// any processor — provided the quantum meets Table 1's bound; all
// processes then return that level's value.
package multicons

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/qlocal"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// Config parameterizes a Fig. 7 consensus instance.
type Config struct {
	// Name labels the instance's shared objects.
	Name string
	// P is the number of processors (≥ 1).
	P int
	// K sets the consensus number C = P + K of the per-level objects;
	// 0 ≤ K ≤ P.
	K int
	// M is the maximum number of processes on any processor (≥ 1).
	M int
	// V is the number of priority levels (≥ 1).
	V int
	// LOverride, if > 0, replaces the Lemma 3 level count — used by the
	// experiments that probe how many levels are really needed.
	LOverride int
}

// Levels returns the Lemma 3 level count L for the configuration:
// (K+1)M(1+P−K) + (P−K)²M + 1.
func (cfg Config) Levels() int {
	if cfg.LOverride > 0 {
		return cfg.LOverride
	}
	pk := cfg.P - cfg.K
	return (cfg.K+1)*cfg.M*(1+pk) + pk*pk*cfg.M + 1
}

// C returns the consensus number P + K of the per-level objects.
func (cfg Config) C() int { return cfg.P + cfg.K }

func (cfg Config) validate() {
	switch {
	case cfg.P < 1:
		panic(fmt.Sprintf("multicons: P must be >= 1, got %d", cfg.P))
	case cfg.K < 0 || cfg.K > cfg.P:
		panic(fmt.Sprintf("multicons: need 0 <= K <= P, got K=%d P=%d", cfg.K, cfg.P))
	case cfg.M < 1:
		panic(fmt.Sprintf("multicons: M must be >= 1, got %d", cfg.M))
	case cfg.V < 1:
		panic(fmt.Sprintf("multicons: V must be >= 1, got %d", cfg.V))
	}
}

// Algorithm is one instance of the Fig. 7 consensus algorithm. Every
// participating process calls Decide exactly once; the shared state is
// one-shot.
type Algorithm struct {
	cfg Config
	l   int

	levelObjs []*mem.ConsObject         // [1..L] C-consensus objects
	outval    [][]*mem.Reg              // [processor][1..L] published outputs
	port      [][]*qlocal.Object        // [processor][1..V] next-port counters
	lastpub   [][]*qlocal.Object        // [processor][1..V] newest published level
	elections []map[int]*unicons.Object // [processor][port] local consensus
	claims    [][]int                   // [processor][level] port claims (lemma accounting)
}

// New returns a fresh Fig. 7 instance.
func New(cfg Config) *Algorithm {
	cfg.validate()
	a := &Algorithm{cfg: cfg, l: cfg.Levels()}
	a.levelObjs = make([]*mem.ConsObject, a.l+1)
	for l := 1; l <= a.l; l++ {
		a.levelObjs[l] = mem.NewConsObject(fmt.Sprintf("%s.cons[%d]", cfg.Name, l), cfg.C())
	}
	a.outval = make([][]*mem.Reg, cfg.P)
	a.port = make([][]*qlocal.Object, cfg.P)
	a.lastpub = make([][]*qlocal.Object, cfg.P)
	a.elections = make([]map[int]*unicons.Object, cfg.P)
	for i := 0; i < cfg.P; i++ {
		a.outval[i] = mem.NewRegArray(fmt.Sprintf("%s.Outval[%d]", cfg.Name, i), a.l+1)
		a.port[i] = make([]*qlocal.Object, cfg.V+1)
		a.lastpub[i] = make([]*qlocal.Object, cfg.V+1)
		for v := 1; v <= cfg.V; v++ {
			// Port counters start at 1; Lastpub at 0 ("no published
			// value"), matching the paper's initialization.
			a.port[i][v] = qlocal.New(fmt.Sprintf("%s.Port[%d][%d]", cfg.Name, i, v), 1)
			a.lastpub[i][v] = qlocal.New(fmt.Sprintf("%s.Lastpub[%d][%d]", cfg.Name, i, v), 0)
		}
		a.elections[i] = make(map[int]*unicons.Object)
	}
	a.claims = make([][]int, cfg.P)
	for i := range a.claims {
		a.claims[i] = make([]int, a.l+1)
	}
	return a
}

// Config returns the instance's configuration.
func (a *Algorithm) Config() Config { return a.cfg }

// L returns the instance's level count.
func (a *Algorithm) L() int { return a.l }

// election returns the local consensus object for (processor, port),
// allocating lazily (runtime-side; ports are bounded by 2L+M).
func (a *Algorithm) election(processor, port int) *unicons.Object {
	o, ok := a.elections[processor][port]
	if !ok {
		o = unicons.New(fmt.Sprintf("%s.elect[%d][%d]", a.cfg.Name, processor, port))
		a.elections[processor][port] = o
	}
	return o
}

// Decide performs the Fig. 7 decide(val) operation for the calling
// process and returns the consensus value. val must not be ⊥ and must
// fit the qlocal value domain checks used internally (any word except ⊥
// is fine for the value itself; it is stored in plain registers).
func (a *Algorithm) Decide(c *sim.Ctx, val mem.Word) mem.Word {
	if val == mem.Bottom {
		panic("multicons: ⊥ is not a proposable value")
	}
	pr, pri := c.Processor(), c.Pri()
	if pri > a.cfg.V {
		panic(fmt.Sprintf("multicons: process priority %d exceeds configured V=%d", pri, a.cfg.V))
	}

	// Lines 1-2: return immediately if a decision is already published.
	if lastval := c.Read(a.outval[pr][a.l]); lastval != mem.Bottom {
		return lastval
	}
	// Line 3: processors 1..K have two ports per object.
	numports := 1
	if pr < a.cfg.K {
		numports = 2
	}
	// Line 4.
	input := val
	prevlevel, level := 0, 0

	// Lines 5-13: lower-priority processes may have made progress while
	// we were not running; absorb their Port and Lastpub counters. Reads
	// of other levels' counters are single register reads (WeakRead);
	// updates to our own level's counters use level-local C&S.
	for v := 1; v < pri; v++ {
		_, lowerport := a.port[pr][v].WeakRead(c)
		myport := a.port[pr][pri].Load(c)
		if lowerport > myport {
			a.port[pr][pri].CAS(c, myport, lowerport)
		}
		_, lowerpub := a.lastpub[pr][v].WeakRead(c)
		mypub := a.lastpub[pr][pri].Load(c)
		if lowerpub > mypub {
			a.lastpub[pr][pri].CAS(c, mypub, lowerpub)
		}
	}

	// Lines 14-34: proceed through the consensus levels.
	//repro:bound 2*l+m each iteration consumes a port or re-reads after a same-level loss: the port vector holds at most 2 ports per level per priority, and same-level interference re-runs a level at most M times (Lemma 3)
	for level <= a.l {
		// Lines 15-16: higher-priority processes may have preempted us
		// and decided.
		if lastval := c.Read(a.outval[pr][a.l]); lastval != mem.Bottom {
			return lastval
		}
		// Lines 17-18: determine the next port and its level.
		port := int(a.port[pr][pri].Load(c))
		level = (port-1)/numports + 1
		// Lines 19-25: claim a port. If the next port still belongs to
		// the level we just accessed (two-port processors), jump the
		// counter past that level while claiming atomically.
		if prevlevel == level {
			newport := port + numports
			if a.port[pr][pri].CAS(c, mem.Word(port), mem.Word(newport+1)) {
				port = newport
			} else {
				port = int(a.port[pr][pri].FetchInc(c))
			}
		} else {
			port = int(a.port[pr][pri].FetchInc(c))
		}
		// Line 26.
		level = (port-1)/numports + 1
		a.noteClaim(pr, level)
		// Lines 27-28: input is the newest published output, if any.
		publevel := int(a.lastpub[pr][pri].Load(c))
		if publevel != 0 {
			input = c.Read(a.outval[pr][publevel])
		}
		// Lines 29-33.
		if level <= a.l {
			// Line 30: local consensus grants the port to one process.
			me := mem.Word(c.ID() + 1)
			if a.election(pr, port).Decide(c, me) == me {
				// Line 31: invoke the level's C-consensus object. The
				// port discipline caps invocations at C, so ⊥ is
				// impossible here.
				output := c.CCons(a.levelObjs[level], input)
				if output == mem.Bottom {
					panic(fmt.Sprintf("multicons: level %d object exhausted (port discipline violated)", level))
				}
				// Lines 32-33: publish.
				c.Write(a.outval[pr][level], output)
				a.lastpub[pr][pri].CAS(c, mem.Word(publevel), mem.Word(level))
			}
		}
		// Line 34.
		prevlevel = level
	}
	// Lines 35-36.
	publevel := int(a.lastpub[pr][pri].Load(c))
	return c.Read(a.outval[pr][publevel])
}

// Invocations returns the per-level C-consensus invocation counts
// (index 1..L). Post-run inspection only.
func (a *Algorithm) Invocations() []int {
	out := make([]int, a.l+1)
	for l := 1; l <= a.l; l++ {
		//repro:allow post-run invocation counts are read only after the run completes
		out[l] = a.levelObjs[l].Invocations()
	}
	return out
}
