package multicons_test

import (
	"testing"
	"testing/quick"

	"repro/internal/multicons"
)

// TestLevelsFormulaProperties property-checks the Lemma 3 level count
// L = (K+1)M(1+P−K) + (P−K)²M + 1 over random legal configurations.
func TestLevelsFormulaProperties(t *testing.T) {
	f := func(pRaw, kRaw, mRaw uint8) bool {
		p := int(pRaw%6) + 1
		k := int(kRaw) % (p + 1)
		m := int(mRaw%5) + 1
		cfg := multicons.Config{P: p, K: k, M: m, V: 1}
		l := cfg.Levels()
		pk := p - k
		// Exact formula.
		if l != (k+1)*m*(1+pk)+pk*pk*m+1 {
			return false
		}
		// Lemma 3: L must exceed the access-failure budget
		// M + KM + (P−K)(L+M(P−K))/(1+P−K), i.e. the algorithm always
		// has a deciding level.
		af := m + k*m + (pk*(l+m*pk))/(1+pk)
		if l <= af-pk { // integer-division slack of up to (P−K)
			return false
		}
		// Monotone in M: more processes need more levels.
		bigger := multicons.Config{P: p, K: k, M: m + 1, V: 1}
		return bigger.Levels() > l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestConfigC checks C = P + K.
func TestConfigC(t *testing.T) {
	f := func(pRaw, kRaw uint8) bool {
		p := int(pRaw%8) + 1
		k := int(kRaw) % (p + 1)
		return multicons.Config{P: p, K: k, M: 1, V: 1}.C() == p+k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigLOverride(t *testing.T) {
	cfg := multicons.Config{P: 2, K: 0, M: 2, V: 1, LOverride: 5}
	if cfg.Levels() != 5 {
		t.Fatalf("Levels = %d, want override 5", cfg.Levels())
	}
}

func TestNewValidates(t *testing.T) {
	for _, cfg := range []multicons.Config{
		{P: 0, K: 0, M: 1, V: 1},
		{P: 2, K: 3, M: 1, V: 1},
		{P: 2, K: -1, M: 1, V: 1},
		{P: 2, K: 0, M: 0, V: 1},
		{P: 2, K: 0, M: 1, V: 0},
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			multicons.New(cfg)
		}()
	}
}
