package multicons

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// Fair implements the paper's Fig. 9: multiprocessor consensus for any
// number of processes on P processors using a quantum of constant size,
// assuming quanta are allocated fairly among equal-priority processes.
//
// One process per (processor, priority) pair is elected through a local
// uniprocessor consensus object (Fig. 3, constant quantum). Election
// losers wait — finitely, by fairness — for the winners to decide; the
// winners run the Fig. 7 algorithm, which needs only a constant quantum
// here because at most one participant per priority level exists on each
// processor, eliminating same-priority access failures entirely.
//
// Fig. 9 is wait-free in the paper's §5 sense ("each process completes
// an operation in a finite number of its own steps" under fair quantum
// allocation); under an unfair chooser a loser may spin until the
// simulator's step limit.
type Fair struct {
	cfg       Config
	elections [][]*unicons.Object // [processor][priority]
	output    *mem.Reg
	global    *Algorithm
}

// NewFair returns a Fig. 9 instance for P processors and V priority
// levels using (P+K)-consensus objects. K may be 0: with fairness,
// P-consensus primitives suffice for any number of processes.
func NewFair(name string, p, v, k int) *Fair {
	cfg := Config{Name: name + ".global", P: p, K: k, M: v, V: v}
	cfg.validate()
	f := &Fair{
		cfg:    cfg,
		output: mem.NewReg(name + ".Output"),
		// The global phase sees at most one process per priority per
		// processor, so its M is the number of priority levels.
		global: New(cfg),
	}
	f.elections = make([][]*unicons.Object, p)
	for i := 0; i < p; i++ {
		f.elections[i] = make([]*unicons.Object, v+1)
		for pri := 1; pri <= v; pri++ {
			f.elections[i][pri] = unicons.New(fmt.Sprintf("%s.elect[%d][%d]", name, i, pri))
		}
	}
	return f
}

// Decide performs the Fig. 9 decide(val) operation and returns the
// consensus value. val must not be ⊥.
func (f *Fair) Decide(c *sim.Ctx, val mem.Word) mem.Word {
	if val == mem.Bottom {
		panic("multicons: ⊥ is not a proposable value")
	}
	me := mem.Word(c.ID() + 1)
	// Lines 1-3: elect one process per priority level per processor;
	// losers wait for the decision (finitely, under fair scheduling).
	if f.elections[c.Processor()][c.Pri()].Decide(c, me) != me {
		//repro:bound unbounded Fig. 9's premise is fair scheduling: losers spin on Output until the winner decides — finite under fairness, but with no hybrid-scheduling statement bound
		for {
			if out := c.Read(f.output); out != mem.Bottom {
				return out
			}
		}
	}
	// Lines 4-6: winners run the priority-based global phase.
	out := f.global.Decide(c, val)
	c.Write(f.output, out)
	return out
}
