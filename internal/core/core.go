// Package core assembles the paper's algorithms into runnable
// scenarios: it builds a simulated hybrid-scheduled system, wires in the
// chosen algorithm and workload, runs it, and reports outcomes. The
// cmd/ binaries, the examples, and parts of the experiment harness are
// thin layers over this package.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hybridcas"
	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/unicons"
)

// ParseScheduler builds a scheduler from a spec string:
//
//	first            — deterministic, preemption-averse
//	rtc              — run-to-completion
//	rotate           — maximal legal preemption round-robin
//	random:<seed>    — seeded pseudo-random
//	stagger:<period>:<phase> — Theorem 3 quantum-stagger adversary
func ParseScheduler(spec string) (sim.Chooser, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "first", "":
		return sim.FirstChooser{}, nil
	case "rtc":
		return &sched.RunToCompletion{}, nil
	case "rotate":
		return sched.NewRotate(), nil
	case "random":
		seed := int64(1)
		if len(parts) > 1 {
			s, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("core: bad random seed %q: %w", parts[1], err)
			}
			seed = s
		}
		return sched.NewRandom(seed), nil
	case "stagger":
		period, phase := 8, 0
		var err error
		if len(parts) > 1 {
			if period, err = strconv.Atoi(parts[1]); err != nil {
				return nil, fmt.Errorf("core: bad stagger period %q: %w", parts[1], err)
			}
		}
		if len(parts) > 2 {
			if phase, err = strconv.Atoi(parts[2]); err != nil {
				return nil, fmt.Errorf("core: bad stagger phase %q: %w", parts[2], err)
			}
		}
		return sched.NewStagger(period, phase), nil
	default:
		return nil, fmt.Errorf("core: unknown scheduler %q", spec)
	}
}

// ConsensusResult reports one consensus scenario run.
type ConsensusResult struct {
	// Decisions holds each process's decision, in process order.
	Decisions []mem.Word
	// Agreed reports whether all decisions are equal and non-⊥.
	Agreed bool
	// Steps is the total statements executed.
	Steps int64
	// WorstOpStmts is the largest per-invocation statement count.
	WorstOpStmts int64
	// Preemptions is the total same-priority preemptions.
	Preemptions int
	// Trace, if recording was requested, renders the interleaving.
	Trace string
}

func summarize(sys *sim.System, outs []mem.Word, rec *trace.Recorder) *ConsensusResult {
	res := &ConsensusResult{Decisions: outs, Agreed: true}
	for _, v := range outs {
		if v == mem.Bottom || v != outs[0] {
			res.Agreed = false
		}
	}
	res.Steps = sys.Steps()
	for _, p := range sys.Processes() {
		if p.MaxInvStmts() > res.WorstOpStmts {
			res.WorstOpStmts = p.MaxInvStmts()
		}
		res.Preemptions += p.Preemptions()
	}
	if rec != nil {
		res.Trace = rec.Render(trace.RenderOptions{Ops: true})
	}
	return res
}

// UniConsensusOpts parameterizes RunUniConsensus.
type UniConsensusOpts struct {
	N         int    // processes
	V         int    // priority levels (processes cycle through 1..V)
	Quantum   int    // scheduling quantum
	Scheduler string // ParseScheduler spec
	Trace     bool   // record and render the interleaving
}

// RunUniConsensus runs the Fig. 3 uniprocessor consensus with N
// processes proposing 1..N.
func RunUniConsensus(opts UniConsensusOpts) (*ConsensusResult, error) {
	ch, err := ParseScheduler(opts.Scheduler)
	if err != nil {
		return nil, err
	}
	var rec *trace.Recorder
	cfg := sim.Config{Processors: 1, Quantum: opts.Quantum, Chooser: ch, MaxSteps: 1 << 20}
	if opts.Trace {
		rec = trace.NewRecorder(0)
		cfg.Observer = rec
	}
	sys := sim.New(cfg)
	obj := unicons.New("cons")
	outs := make([]mem.Word, opts.N)
	for i := 0; i < opts.N; i++ {
		i := i
		v := 1
		if opts.V > 1 {
			v = 1 + i%opts.V
		}
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: v, Name: fmt.Sprintf("p%d", i)}).
			AddInvocation(func(c *sim.Ctx) { outs[i] = obj.Decide(c, mem.Word(i+1)) })
	}
	if err := sys.Run(); err != nil && !errors.Is(err, sim.ErrStepLimit) {
		return nil, err
	}
	return summarize(sys, outs, rec), nil
}

// MultiConsensusOpts parameterizes RunMultiConsensus.
type MultiConsensusOpts struct {
	P         int // processors
	K         int // C = P + K
	M         int // processes per processor
	V         int // priority levels
	Quantum   int
	Scheduler string
	Fair      bool // run Fig. 9 instead of Fig. 7
	Trace     bool
}

// RunMultiConsensus runs the Fig. 7 (or, with Fair, Fig. 9)
// multiprocessor consensus with P×M processes proposing 1..P·M.
func RunMultiConsensus(opts MultiConsensusOpts) (*ConsensusResult, error) {
	ch, err := ParseScheduler(opts.Scheduler)
	if err != nil {
		return nil, err
	}
	var rec *trace.Recorder
	cfg := sim.Config{Processors: opts.P, Quantum: opts.Quantum, Chooser: ch, MaxSteps: 1 << 23}
	if opts.Trace {
		rec = trace.NewRecorder(0)
		cfg.Observer = rec
	}
	sys := sim.New(cfg)
	var decide func(c *sim.Ctx, val mem.Word) mem.Word
	if opts.Fair {
		decide = multicons.NewFair("mc", opts.P, opts.V, opts.K).Decide
	} else {
		decide = multicons.New(multicons.Config{
			Name: "mc", P: opts.P, K: opts.K, M: opts.M, V: opts.V,
		}).Decide
	}
	n := opts.P * opts.M
	outs := make([]mem.Word, n)
	id := 0
	for i := 0; i < opts.P; i++ {
		for j := 0; j < opts.M; j++ {
			me := id
			sys.AddProcess(sim.ProcSpec{
				Processor: i,
				Priority:  1 + j%opts.V,
				Name:      fmt.Sprintf("p%d.%d", i, j),
			}).AddInvocation(func(c *sim.Ctx) { outs[me] = decide(c, mem.Word(me+1)) })
			id++
		}
	}
	if err := sys.Run(); err != nil && !errors.Is(err, sim.ErrStepLimit) {
		return nil, err
	}
	return summarize(sys, outs, rec), nil
}

// CASWorkloadOpts parameterizes RunCASWorkload.
type CASWorkloadOpts struct {
	N         int // processes
	V         int // priority levels
	OpsPer    int // increments per process
	Quantum   int
	Scheduler string
}

// CASWorkloadResult reports a Fig. 5 counter workload.
type CASWorkloadResult struct {
	Final        mem.Word
	Want         mem.Word
	Steps        int64
	WorstOpStmts int64
	MaxWalk      int
}

// RunCASWorkload drives the Fig. 5 C&S object through a counter
// workload: each process performs OpsPer successful increments via CAS
// retry loops.
func RunCASWorkload(opts CASWorkloadOpts) (*CASWorkloadResult, error) {
	ch, err := ParseScheduler(opts.Scheduler)
	if err != nil {
		return nil, err
	}
	sys := sim.New(sim.Config{Processors: 1, Quantum: opts.Quantum, Chooser: ch, MaxSteps: 1 << 22})
	obj := hybridcas.New("cas", opts.V, 0)
	for i := 0; i < opts.N; i++ {
		p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%opts.V})
		for k := 0; k < opts.OpsPer; k++ {
			p.AddInvocation(func(c *sim.Ctx) {
				//repro:bound unbounded lock-free C&S retry workload: per-invocation progress is unbounded by design — the practically-wait-free layer measures exactly this gap
				for {
					v := obj.Read(c)
					if obj.CompareAndSwap(c, v, v+1) {
						return
					}
				}
			})
		}
	}
	if err := sys.Run(); err != nil {
		return nil, err
	}
	res := &CASWorkloadResult{
		Final:   obj.Peek(),
		Want:    mem.Word(opts.N * opts.OpsPer),
		Steps:   sys.Steps(),
		MaxWalk: obj.MaxWalk(),
	}
	for _, p := range sys.Processes() {
		if p.MaxInvStmts() > res.WorstOpStmts {
			res.WorstOpStmts = p.MaxInvStmts()
		}
	}
	return res, nil
}
