package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParseScheduler(t *testing.T) {
	for _, spec := range []string{"first", "", "rtc", "rotate", "random", "random:42", "stagger", "stagger:8", "stagger:8:2"} {
		if _, err := core.ParseScheduler(spec); err != nil {
			t.Errorf("ParseScheduler(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"bogus", "random:x", "stagger:x", "stagger:8:y"} {
		if _, err := core.ParseScheduler(spec); err == nil {
			t.Errorf("ParseScheduler(%q) succeeded, want error", spec)
		}
	}
}

func TestRunUniConsensus(t *testing.T) {
	res, err := core.RunUniConsensus(core.UniConsensusOpts{
		N: 5, V: 2, Quantum: 8, Scheduler: "random:3", Trace: true,
	})
	if err != nil {
		t.Fatalf("RunUniConsensus: %v", err)
	}
	if !res.Agreed {
		t.Fatalf("disagreement: %v", res.Decisions)
	}
	if res.WorstOpStmts != 8 {
		t.Fatalf("worst op = %d statements, want 8", res.WorstOpStmts)
	}
	if !strings.Contains(res.Trace, "p0") {
		t.Fatal("trace missing process row")
	}
}

func TestRunUniConsensusBadScheduler(t *testing.T) {
	if _, err := core.RunUniConsensus(core.UniConsensusOpts{N: 2, Quantum: 8, Scheduler: "nope"}); err == nil {
		t.Fatal("bad scheduler accepted")
	}
}

func TestRunMultiConsensusFig7(t *testing.T) {
	res, err := core.RunMultiConsensus(core.MultiConsensusOpts{
		P: 2, K: 1, M: 2, V: 2, Quantum: 2048, Scheduler: "random:1",
	})
	if err != nil {
		t.Fatalf("RunMultiConsensus: %v", err)
	}
	if !res.Agreed {
		t.Fatalf("disagreement: %v", res.Decisions)
	}
	if len(res.Decisions) != 4 {
		t.Fatalf("decisions = %d, want 4", len(res.Decisions))
	}
}

func TestRunMultiConsensusFig9(t *testing.T) {
	res, err := core.RunMultiConsensus(core.MultiConsensusOpts{
		P: 2, K: 0, M: 3, V: 1, Quantum: 8, Scheduler: "rotate", Fair: true,
	})
	if err != nil {
		t.Fatalf("RunMultiConsensus fair: %v", err)
	}
	if !res.Agreed {
		t.Fatalf("disagreement: %v", res.Decisions)
	}
}

func TestRunCASWorkload(t *testing.T) {
	res, err := core.RunCASWorkload(core.CASWorkloadOpts{
		N: 4, V: 2, OpsPer: 3, Quantum: 32, Scheduler: "random:5",
	})
	if err != nil {
		t.Fatalf("RunCASWorkload: %v", err)
	}
	if res.Final != res.Want {
		t.Fatalf("final = %d, want %d", res.Final, res.Want)
	}
	if res.WorstOpStmts <= 0 || res.Steps <= 0 {
		t.Fatalf("bad stats: %+v", res)
	}
}
