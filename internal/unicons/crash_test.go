package unicons_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// crashConsensusBuilder is consensusBuilder under a crash-stop
// adversary: every built run additionally crashes up to k of the n
// processes at seeded random points. Survivors must still reach
// agreement on a valid proposal within the constant step bound; a
// crashed process that recorded an output before dying must agree too.
// outs uses 0 as the "never finished" sentinel (proposals are 1..n).
func crashConsensusBuilder(n, k int, crashSeed *atomic.Int64) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		crashing := sched.NewRandomCrash(ch, crashSeed.Add(1), k, 0.05)
		aud := sim.NewAuditor(unicons.MinQuantum)
		sys := sim.New(sim.Config{
			Processors: 1, Quantum: unicons.MinQuantum,
			Chooser: crashing, Observer: aud, MaxSteps: 1 << 16,
		})
		obj := unicons.New("cons")
		outs := make([]mem.Word, n)
		procs := make([]*sim.Process, n)
		for i := 0; i < n; i++ {
			i := i
			procs[i] = sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: fmt.Sprintf("p%d", i)})
			procs[i].AddInvocation(func(c *sim.Ctx) {
				outs[i] = obj.Decide(c, mem.Word(i+1))
			})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			if err := aud.Err(); err != nil {
				return err
			}
			decided := mem.Word(0)
			for i, p := range procs {
				if p.Crashed() {
					continue
				}
				if p.CompletedInvocations() != 1 || outs[i] == 0 {
					return fmt.Errorf("survivor %d did not decide (crashes must not block survivors)", i)
				}
				if outs[i] < 1 || outs[i] > mem.Word(n) {
					return fmt.Errorf("validity violated: survivor %d decided %d", i, outs[i])
				}
				if decided == 0 {
					decided = outs[i]
				} else if outs[i] != decided {
					return fmt.Errorf("agreement violated among survivors: outs=%v", outs)
				}
			}
			for i, p := range procs {
				if p.Crashed() && outs[i] != 0 && outs[i] != decided {
					return fmt.Errorf("crashed process %d recorded %d != decided %d", i, outs[i], decided)
				}
			}
			return nil
		}
		return sys, verify
	}
}

// TestUniconsCrashFuzz: for every crash budget k in 1..n-1, seeded
// random schedules with seeded random crash-stop faults find no
// violation of agreement, validity, or the constant wait-free bound.
func TestUniconsCrashFuzz(t *testing.T) {
	for _, n := range []int{3, 4} {
		for k := 1; k < n; k++ {
			var crashSeed atomic.Int64
			res := check.Fuzz(crashConsensusBuilder(n, k, &crashSeed), 150, check.Options{
				WaitFreeBound: unicons.Stmts,
			})
			if !res.OK() {
				t.Fatalf("n=%d k=%d: %+v", n, k, res.First())
			}
			if res.StepLimited != 0 {
				t.Fatalf("n=%d k=%d: %d runs hit the step limit", n, k, res.StepLimited)
			}
		}
	}
}

// TestUniconsCrashEveryPoint sweeps a planned crash of the first-running
// process over every point of its 8-statement invocation, under both a
// run-to-completion and a maximally-switching inner schedule: wherever
// the victim dies, survivors decide a single valid value.
func TestUniconsCrashEveryPoint(t *testing.T) {
	for step := int64(0); step <= 2*unicons.Stmts; step++ {
		for chName, mk := range map[string]func() sim.Chooser{
			"first":  func() sim.Chooser { return sim.FirstChooser{} },
			"rotate": func() sim.Chooser { return sched.NewRotate() },
		} {
			aud := sim.NewAuditor(unicons.MinQuantum)
			sys := sim.New(sim.Config{
				Processors: 1, Quantum: unicons.MinQuantum,
				Chooser:  sched.NewCrash(mk(), sched.CrashPoint{Proc: 0, Step: step}),
				Observer: aud, MaxSteps: 1 << 12,
			})
			obj := unicons.New("cons")
			const n = 3
			outs := make([]mem.Word, n)
			procs := make([]*sim.Process, n)
			for i := 0; i < n; i++ {
				i := i
				procs[i] = sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
				procs[i].AddInvocation(func(c *sim.Ctx) {
					outs[i] = obj.Decide(c, mem.Word(i+1))
				})
			}
			if err := sys.Run(); err != nil {
				t.Fatalf("step=%d %s: %v", step, chName, err)
			}
			if err := aud.Err(); err != nil {
				t.Fatalf("step=%d %s: %v", step, chName, err)
			}
			decided := mem.Word(0)
			for i, p := range procs {
				if p.Crashed() {
					continue
				}
				if outs[i] == 0 {
					t.Fatalf("step=%d %s: survivor %d never decided", step, chName, i)
				}
				if decided == 0 {
					decided = outs[i]
				} else if outs[i] != decided {
					t.Fatalf("step=%d %s: survivors disagree: %v", step, chName, outs)
				}
			}
		}
	}
}
