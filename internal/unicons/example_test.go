package unicons_test

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// Example demonstrates Theorem 1: five processes across three priority
// levels reach consensus in exactly 8 statements each, using only reads
// and writes, on a hybrid-scheduled uniprocessor with Q = 8.
func Example() {
	sys := sim.New(sim.Config{
		Processors: 1,
		Quantum:    unicons.MinQuantum,
		Chooser:    sched.NewRandom(3),
	})
	obj := unicons.New("cons")
	outs := make([]uint64, 5)
	for i := 0; i < 5; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%3}).
			AddInvocation(func(c *sim.Ctx) {
				outs[i] = obj.Decide(c, uint64(i+1))
			})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	agreed := true
	for _, o := range outs {
		agreed = agreed && o == outs[0]
	}
	fmt.Println(agreed)
	// Output: true
}
