// Package unicons implements the paper's Fig. 3 algorithm: wait-free,
// constant-time consensus for any number of processes on one
// hybrid-scheduled processor, using only reads and writes (Theorem 1).
//
// The algorithm copies a value from P[1] to P[2] to P[3] (0-indexed here
// as P[0..2]); every process returns the value it reads in P[3]. It is
// correct whenever the scheduling quantum Q ensures each process is
// quantum-preempted at most once per invocation; the invocation is 8
// statements, so Q ≥ 8 suffices (MinQuantum).
//
// The object is one-shot as a consensus object but supports an arbitrary
// number of deciding processes, and is readable (ReadValue), which is how
// Fig. 5 consults the nxt-pointer consensus cells.
package unicons

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// MinQuantum is the smallest quantum for which Decide is guaranteed
// correct on a hybrid-scheduled uniprocessor: the invocation is 8
// statements, so Q ≥ 8 ensures at most one quantum preemption per
// invocation (Theorem 1).
const MinQuantum = 8

// Stmts is the exact number of atomic statements executed by one Decide
// invocation — constant, independent of the number of processes and
// priority levels.
const Stmts = 8

// Object is a Fig. 3 consensus object: three shared registers, all
// initially ⊥.
type Object struct {
	// P holds the three copy-chain registers (the paper's P[1..3]).
	P []*mem.Reg
}

// New returns a fresh consensus object.
func New(name string) *Object {
	return &Object{P: mem.NewRegArray(name+".P", 3)}
}

// Reset restores all three registers to ⊥, for pooled reruns
// (sim.System.OnReset hooks). Must not be called mid-run.
func (o *Object) Reset() { mem.ResetRegs(o.P) }

// Decide performs the Fig. 3 decide(val) operation for the calling
// process and returns the consensus value. val must not be ⊥.
//
// Statement accounting matches the paper's straight-line expansion
// (8 statements): v := val; then for each of the three registers a read
// followed by either a local assignment or a write; then the final read
// of P[3].
func (o *Object) Decide(c *sim.Ctx, val mem.Word) mem.Word {
	if val == mem.Bottom {
		panic(fmt.Sprintf("unicons: process %d proposed ⊥", c.ID()))
	}
	c.Local(1) // statement 1: v := val
	v := val
	for i := 0; i < 3; i++ {
		w := c.Read(o.P[i]) // statement 3: w := P[i]
		if w != mem.Bottom {
			v = w
			c.Local(1) // statement 5: v := w
		} else {
			c.Write(o.P[i], v) // statement 6: P[i] := v
		}
	}
	return c.Read(o.P[2]) // statement 7: return P[3]
}

// ReadValue reads the consensus object without deciding: it returns ⊥ if
// no decision is visible yet, and otherwise joins the copy chain to
// return the decided value. This is the read implementation the paper
// gives for Fig. 5: "if P[1] = ⊥ then return ⊥ else return decide(P[1])".
func (o *Object) ReadValue(c *sim.Ctx) mem.Word {
	w := c.Read(o.P[0])
	if w == mem.Bottom {
		return mem.Bottom
	}
	return o.Decide(c, w)
}

// Peek returns the current value of P[3] without executing statements.
// It is a post-run inspection helper for tests and must not be called
// from algorithm code.
func (o *Object) Peek() mem.Word {
	//repro:allow post-run inspection helper; reads P[3] after the run completes, charging no statement
	return o.P[2].Load()
}
