package unicons_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// consensusBuilder builds a uniprocessor system in which each of the n
// processes (with the given priorities) decides with proposal id+1, and
// verifies agreement, validity, and the constant step bound.
func consensusBuilder(n, quantum int, priorities []int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: quantum, Chooser: ch, MaxSteps: 1 << 16})
		obj := unicons.New("cons")
		outs := make([]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			pri := 1
			if priorities != nil {
				pri = priorities[i]
			}
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: pri, Name: fmt.Sprintf("p%d", i)}).
				AddInvocation(func(c *sim.Ctx) {
					outs[i] = obj.Decide(c, mem.Word(i+1))
				})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			return verifyConsensus(sys, outs, n)
		}
		return sys, verify
	}
}

func verifyConsensus(sys *sim.System, outs []mem.Word, n int) error {
	first := outs[0]
	for i, v := range outs {
		if v == mem.Bottom {
			return fmt.Errorf("process %d decided ⊥", i)
		}
		if v != first {
			return fmt.Errorf("agreement violated: outs=%v", outs)
		}
		if v < 1 || v > mem.Word(n) {
			return fmt.Errorf("validity violated: decided %d not a proposal", v)
		}
	}
	for _, p := range sys.Processes() {
		if p.MaxInvStmts() > unicons.Stmts {
			return fmt.Errorf("process %s took %d statements, want <= %d",
				p.Name(), p.MaxInvStmts(), unicons.Stmts)
		}
	}
	return nil
}

func TestDecideSolo(t *testing.T) {
	res := check.ExploreAll(consensusBuilder(1, unicons.MinQuantum, nil), check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
	if res.Schedules != 1 {
		t.Fatalf("schedules = %d, want 1", res.Schedules)
	}
}

// TestDecideExhaustiveTwoProcs verifies agreement/validity over the FULL
// schedule tree for two same-priority processes with Q = 8.
func TestDecideExhaustiveTwoProcs(t *testing.T) {
	res := check.ExploreAll(consensusBuilder(2, unicons.MinQuantum, nil), check.Options{MaxSchedules: 500000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
	if res.Truncated {
		t.Fatalf("exploration truncated at %d schedules", res.Schedules)
	}
	t.Logf("verified %d schedules", res.Schedules)
}

// TestDecideExhaustiveTwoPrios verifies the full schedule tree for two
// processes at different priorities (pure priority-based preemption).
func TestDecideExhaustiveTwoPrios(t *testing.T) {
	res := check.ExploreAll(consensusBuilder(2, unicons.MinQuantum, []int{1, 2}), check.Options{MaxSchedules: 500000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
	if res.Truncated {
		t.Fatal("exploration truncated")
	}
}

// TestDecideBudgetedThreeProcs verifies all schedules with up to 3
// deviations for three processes across two priority levels.
func TestDecideBudgetedThreeProcs(t *testing.T) {
	res := check.ExploreBudget(consensusBuilder(3, unicons.MinQuantum, []int{1, 1, 2}), 3,
		check.Options{MaxSchedules: 400000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
	t.Logf("verified %d schedules (truncated=%v)", res.Schedules, res.Truncated)
}

// TestDecideFuzz fuzzes larger configurations: up to 8 processes over 3
// priority levels.
func TestDecideFuzz(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		pri := make([]int, n)
		for i := range pri {
			pri[i] = 1 + i%3
		}
		res := check.Fuzz(consensusBuilder(n, unicons.MinQuantum, pri), 500, check.Options{})
		if !res.OK() {
			t.Fatalf("n=%d: violation: %+v", n, res.First())
		}
	}
}

// TestDecideSmallQuantumFails locks in the quantum requirement: with a
// quantum well below MinQuantum (so a process can be quantum-preempted
// more than once per invocation), some schedule must violate agreement.
// This is the negative control for Theorem 1's premise.
func TestDecideSmallQuantumFails(t *testing.T) {
	for q := 1; q <= 3; q++ {
		res := check.ExploreBudget(consensusBuilder(3, q, nil), 3,
			check.Options{MaxSchedules: 300000, StopAtFirst: true})
		if !res.OK() {
			t.Logf("Q=%d: found violating schedule after %d schedules: %v",
				q, res.Schedules, res.First().Err)
			return
		}
	}
	t.Fatal("no agreement violation found for Q in 1..3; quantum premise seems unnecessary (model error?)")
}

// TestReadValueBeforeAndAfter verifies ReadValue returns ⊥ before any
// decision and the decided value after.
func TestReadValueBeforeAndAfter(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: unicons.MinQuantum})
	obj := unicons.New("cons")
	var before, after, decided mem.Word
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			before = obj.ReadValue(c)
			decided = obj.Decide(c, 42)
			after = obj.ReadValue(c)
		})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if before != mem.Bottom {
		t.Fatalf("ReadValue before decide = %d, want ⊥", before)
	}
	if decided != 42 || after != 42 {
		t.Fatalf("decided=%d after=%d, want 42,42", decided, after)
	}
}

// TestReadValueAgreesUnderContention fuzzes concurrent Decide + ReadValue:
// any non-⊥ ReadValue must equal the consensus value.
func TestReadValueAgreesUnderContention(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const n = 4
		sys := sim.New(sim.Config{Processors: 1, Quantum: unicons.MinQuantum + 1, Chooser: ch, MaxSteps: 1 << 16})
		obj := unicons.New("cons")
		outs := make([]mem.Word, n)
		reads := make([]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%2}).
				AddInvocation(func(c *sim.Ctx) {
					outs[i] = obj.Decide(c, mem.Word(i+1))
					reads[i] = obj.ReadValue(c)
				})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			for i := 1; i < n; i++ {
				if outs[i] != outs[0] {
					return fmt.Errorf("agreement violated: %v", outs)
				}
			}
			for i, r := range reads {
				if r != mem.Bottom && r != outs[0] {
					return fmt.Errorf("ReadValue[%d] = %d disagrees with decision %d", i, r, outs[0])
				}
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 800, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// TestDecideProposalBottomPanics documents that proposing ⊥ is a caller
// error.
func TestDecideProposalBottomPanics(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: unicons.MinQuantum})
	obj := unicons.New("cons")
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			c.Local(1)
			obj.Decide(c, mem.Bottom)
		})
	if err := sys.Run(); err == nil {
		t.Fatal("Run succeeded, want error from ⊥ proposal")
	}
}

// TestConstantTimeAcrossN confirms Theorem 1's "constant time" claim:
// the per-invocation statement count does not grow with the number of
// processes or priority levels.
func TestConstantTimeAcrossN(t *testing.T) {
	for _, n := range []int{1, 4, 16, 64} {
		sys := sim.New(sim.Config{Processors: 1, Quantum: unicons.MinQuantum, Chooser: sched.NewRandom(3)})
		obj := unicons.New("cons")
		for i := 0; i < n; i++ {
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%4}).
				AddInvocation(func(c *sim.Ctx) { obj.Decide(c, 9) })
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, p := range sys.Processes() {
			if p.MaxInvStmts() != unicons.Stmts {
				t.Fatalf("n=%d: process %s took %d statements, want exactly %d",
					n, p.Name(), p.MaxInvStmts(), unicons.Stmts)
			}
		}
	}
}

var errSentinel = errors.New("sentinel")

// TestVerifyErrorPropagation checks the check-package plumbing reports
// verifier errors.
func TestVerifyErrorPropagation(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 8, Chooser: ch})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(1) })
		return sys, func(error) error { return errSentinel }
	}
	res := check.Fuzz(build, 3, check.Options{})
	if res.OK() || !errors.Is(res.First().Err, errSentinel) {
		t.Fatalf("violations = %+v, want sentinel", res.Violations)
	}
}
