package baseline_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestNaiveBreaks is the negative control: the quantum-oblivious
// protocol must violate agreement on some schedule even with a huge
// quantum (a process's first preemption can happen at any time).
func TestNaiveBreaks(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 1 << 16, Chooser: ch, MaxSteps: 1 << 14})
		n := baseline.NewNaive("naive")
		outs := make([]mem.Word, 2)
		for i := 0; i < 2; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) { outs[i] = n.Decide(c, mem.Word(i+1)) })
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			if outs[0] != outs[1] {
				return fmt.Errorf("disagreement: %v", outs)
			}
			return nil
		}
		return sys, verify
	}
	res := check.ExploreBudget(build, 2, check.Options{StopAtFirst: true})
	if res.OK() {
		t.Fatal("naive consensus survived all schedules; negative control broken")
	}
	t.Logf("found expected violation after %d schedules: %v", res.Schedules, res.First().Err)
}

// TestDirectExhaustion checks the Herlihy-hierarchy baseline: the
// (C+1)-th invoker of a C-consensus object learns nothing.
func TestDirectExhaustion(t *testing.T) {
	const c, n = 3, 5
	sys := sim.New(sim.Config{Processors: 1, Quantum: 8})
	d := baseline.NewDirect("direct", c)
	outs := make([]mem.Word, n)
	for i := 0; i < n; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(cx *sim.Ctx) { outs[i] = d.Decide(cx, mem.Word(i+1)) })
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	bottoms := 0
	for _, v := range outs {
		if v == mem.Bottom {
			bottoms++
		}
	}
	if bottoms != n-c {
		t.Fatalf("⊥ responses = %d, want %d (invocations=%d)", bottoms, n-c, d.Invocations())
	}
}

// TestLockCounterWorksUncontended confirms the lock baseline is correct
// when nothing goes wrong (sequential run-to-completion schedule).
func TestLockCounterWorksUncontended(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 64})
	l := baseline.NewLockCounter("lk", 0)
	for i := 0; i < 4; i++ {
		p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
		for k := 0; k < 3; k++ {
			p.AddInvocation(func(c *sim.Ctx) { l.Inc(c) })
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := l.Peek(); got != 12 {
		t.Fatalf("final = %d, want 12", got)
	}
}

// TestLockPriorityInversionDeadlocks demonstrates the paper's §1
// motivation: a low-priority process preempted inside the critical
// section starves a spinning higher-priority waiter forever. The run
// must hit the step limit (livelock), which a wait-free counter never
// does.
func TestLockPriorityInversionDeadlocks(t *testing.T) {
	// Chooser: let the low-priority process acquire the lock (3
	// statements: CAS + read), then release the high-priority process,
	// which spins forever.
	steps := 0
	ch := sim.ChooserFunc(func(d sim.Decision) int {
		steps++
		for i, p := range d.Candidates {
			if steps <= 2 && p.Priority() == 1 {
				return i
			}
			if steps > 2 && p.Priority() == 2 {
				return i
			}
		}
		return 0
	})
	sys := sim.New(sim.Config{Processors: 1, Quantum: 8, Chooser: ch, MaxSteps: 5000})
	l := baseline.NewLockCounter("lk", 0)
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "lo"}).
		AddInvocation(func(c *sim.Ctx) { l.Inc(c) })
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 2, Name: "hi"}).
		AddInvocation(func(c *sim.Ctx) { l.Inc(c) })
	err := sys.Run()
	if !errors.Is(err, sim.ErrStepLimit) {
		t.Fatalf("Run = %v, want ErrStepLimit (priority-inversion livelock)", err)
	}
}
