// Package baseline implements the comparators the paper's results are
// measured against:
//
//   - Naive: a quantum-oblivious read/write consensus attempt (adopt a
//     single register). It is what one would write without the paper's
//     scheduler-conscious machinery and is broken under any preemption —
//     the negative control showing Fig. 3's structure is necessary.
//   - Direct: processes invoke one C-consensus object directly, the
//     Herlihy-hierarchy baseline: without the paper's port discipline,
//     participants beyond the C-th learn nothing (⊥). This is also the
//     engine of the Theorem 3 lower-bound argument (Fig. 6/Fig. 10): the
//     adversary staggers quanta so that 2P−Q processes hit the object.
//   - LockCounter: a counter guarded by a CAS spinlock (a primitive even
//     stronger than anything the paper uses). Blocking synchronization
//     deadlocks under hybrid scheduling — a preempted lock holder can
//     never run again below a spinning higher-priority waiter (priority
//     inversion) — which is the paper's §1 motivation for wait-freedom
//     in multiprogrammed systems.
package baseline

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// Naive is the quantum-oblivious consensus attempt: read a register,
// write your proposal if it looked empty, return what you then read.
type Naive struct {
	r *mem.Reg
}

// NewNaive returns a fresh naive consensus object.
func NewNaive(name string) *Naive {
	return &Naive{r: mem.NewReg(name + ".R")}
}

// Decide runs the naive protocol. It violates agreement whenever a
// process is preempted between its read and its write — which hybrid
// scheduling permits regardless of the quantum, since a process's first
// preemption may occur at any time.
func (n *Naive) Decide(c *sim.Ctx, val mem.Word) mem.Word {
	if v := c.Read(n.r); v != mem.Bottom {
		return v
	}
	c.Write(n.r, val)
	return c.Read(n.r)
}

// Direct has every process invoke a single C-consensus object. With at
// most C participants it solves consensus; the (C+1)-th invoker gets ⊥,
// reproducing the resource-exhaustion core of the Theorem 3 lower bound.
type Direct struct {
	o *mem.ConsObject
}

// NewDirect returns a direct C-consensus wrapper.
func NewDirect(name string, c int) *Direct {
	return &Direct{o: mem.NewConsObject(name+".O", c)}
}

// Decide invokes the object once and returns its response (⊥ after the
// C-th invocation).
func (d *Direct) Decide(c *sim.Ctx, val mem.Word) mem.Word {
	return c.CCons(d.o, val)
}

// Invocations returns the object's invocation count. Post-run only.
func (d *Direct) Invocations() int {
	//repro:allow post-run invocation-limit checks read the count after the run completes
	return d.o.Invocations()
}

// LockCounter is a shared counter protected by a CAS spinlock. Acquire
// spins; a process preempted while holding the lock blocks all waiters,
// and a higher-priority spinner on the same processor blocks the holder
// forever (priority-inversion livelock).
type LockCounter struct {
	lock  *mem.CASObject
	value *mem.Reg
}

// NewLockCounter returns a lock-based counter starting at initial.
func NewLockCounter(name string, initial mem.Word) *LockCounter {
	return &LockCounter{
		lock:  mem.NewCASObject(name+".lock", 0),
		value: mem.NewRegInit(name+".value", initial),
	}
}

// Inc increments the counter under the lock and returns the prior
// value. It blocks (spins) while the lock is held; under hybrid
// scheduling this can spin forever.
func (l *LockCounter) Inc(c *sim.Ctx) mem.Word {
	me := mem.Word(c.ID() + 1)
	//repro:bound unbounded blocking negative control: a quantum-preempted lock holder leaves every waiter spinning forever — the §1 priority-inversion scenario the wait-free constructions exist to avoid
	for !c.CASPrim(l.lock, 0, me) {
	}
	v := c.Read(l.value)
	c.Write(l.value, v+1)
	c.CASPrim(l.lock, me, 0)
	return v
}

// Peek returns the current value. Post-run inspection only.
func (l *LockCounter) Peek() mem.Word {
	//repro:allow post-run inspection helper; reads the counter after the run completes
	return l.value.Load()
}
