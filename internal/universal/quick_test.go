package universal_test

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/universal"
)

// TestQueueMatchesModel property-checks the queue against a plain Go
// slice model under sequential (single-process) execution: for any
// random op sequence, every return value and the final contents match.
func TestQueueMatchesModel(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		sys := sim.New(sim.Config{Processors: 1, Quantum: 32, MaxSteps: 1 << 20})
		q := universal.NewQueue("q")
		var model []mem.Word
		okAll := true
		p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
		for _, op := range ops {
			op := op
			p.AddInvocation(func(c *sim.Ctx) {
				if op%2 == 0 { // enqueue
					item := mem.Word(op >> 1)
					ret := q.Enq(c, item)
					if int(ret) != len(model) {
						okAll = false
					}
					model = append(model, item)
				} else { // dequeue
					ret := q.Deq(c)
					if len(model) == 0 {
						if ret != universal.QueueEmpty {
							okAll = false
						}
						return
					}
					if ret != model[0] {
						okAll = false
					}
					model = model[1:]
				}
			})
		}
		if len(ops) == 0 {
			return true
		}
		if err := sys.Run(); err != nil {
			return false
		}
		return okAll && q.PeekLen() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCounterMatchesModel property-checks the counter against integer
// arithmetic for random add sequences.
func TestCounterMatchesModel(t *testing.T) {
	f := func(deltas []uint16) bool {
		if len(deltas) > 30 {
			deltas = deltas[:30]
		}
		if len(deltas) == 0 {
			return true
		}
		sys := sim.New(sim.Config{Processors: 1, Quantum: 32, MaxSteps: 1 << 20})
		ctr := universal.NewCounter("c", 7)
		sum := mem.Word(7)
		okAll := true
		p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
		for _, d := range deltas {
			d := mem.Word(d)
			p.AddInvocation(func(c *sim.Ctx) {
				if ctr.Add(c, d) != sum {
					okAll = false
				}
				sum += d
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		return okAll && ctr.Peek() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCustomUniversalObject exercises New with a bespoke spec (a max
// register) to pin the extension point.
func TestCustomUniversalObject(t *testing.T) {
	maxApply := func(state any, op mem.Word) (any, mem.Word) {
		v := state.(mem.Word)
		if op > v {
			return op, v
		}
		return v, v
	}
	sys := sim.New(sim.Config{Processors: 1, Quantum: 32})
	o := universal.New("max", mem.Word(0), maxApply)
	var rets []mem.Word
	p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
	for _, v := range []mem.Word{5, 3, 9, 7} {
		v := v
		p.AddInvocation(func(c *sim.Ctx) { rets = append(rets, o.Invoke(c, v)) })
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []mem.Word{0, 5, 5, 9}
	for i := range want {
		if rets[i] != want[i] {
			t.Fatalf("rets = %v, want %v", rets, want)
		}
	}
	if o.PeekState().(mem.Word) != 9 {
		t.Fatalf("final state = %v, want 9", o.PeekState())
	}
	if o.Ops() != 4 {
		t.Fatalf("ops = %d, want 4", o.Ops())
	}
}

// TestOpWordLimit pins the 32-bit op-word guard.
func TestOpWordLimit(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 32})
	o := universal.New("x", mem.Word(0), func(s any, op mem.Word) (any, mem.Word) { return s, 0 })
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			c.Local(1)
			o.Invoke(c, 1<<33)
		})
	if err := sys.Run(); err == nil {
		t.Fatal("oversized op word accepted")
	}
}
