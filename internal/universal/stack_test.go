package universal_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/universal"
)

// TestStackMatchesModel property-checks the stack against a slice model
// under sequential execution.
func TestStackMatchesModel(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		if len(ops) == 0 {
			return true
		}
		sys := sim.New(sim.Config{Processors: 1, Quantum: 32, MaxSteps: 1 << 20})
		st := universal.NewStack("s")
		var model []mem.Word
		okAll := true
		p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
		for _, op := range ops {
			op := op
			p.AddInvocation(func(c *sim.Ctx) {
				if op%2 == 0 {
					item := mem.Word(op >> 1)
					if int(st.Push(c, item)) != len(model) {
						okAll = false
					}
					model = append(model, item)
				} else {
					ret := st.Pop(c)
					if len(model) == 0 {
						if ret != universal.StackEmpty {
							okAll = false
						}
						return
					}
					if ret != model[len(model)-1] {
						okAll = false
					}
					model = model[:len(model)-1]
				}
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		return okAll && st.PeekLen() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestStackConcurrentConservation fuzzes concurrent pushers/poppers:
// items are conserved and never duplicated.
func TestStackConcurrentConservation(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const pushers, perPusher = 3, 3
		sys := sim.New(sim.Config{Processors: 1, Quantum: 32, Chooser: ch, MaxSteps: 1 << 20})
		st := universal.NewStack("s")
		var popped []mem.Word
		for i := 0; i < pushers; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%2})
			for k := 0; k < perPusher; k++ {
				k := k
				p.AddInvocation(func(c *sim.Ctx) { st.Push(c, mem.Word(i*100+k)) })
			}
		}
		popper := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 2})
		for k := 0; k < pushers*perPusher; k++ {
			popper.AddInvocation(func(c *sim.Ctx) {
				if v := st.Pop(c); v != universal.StackEmpty {
					popped = append(popped, v)
				}
			})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			seen := map[mem.Word]bool{}
			for _, v := range popped {
				if seen[v] {
					return fmt.Errorf("item %d popped twice", v)
				}
				seen[v] = true
			}
			if len(popped)+st.PeekLen() != pushers*perPusher {
				return fmt.Errorf("items lost: popped %d + remaining %d != %d",
					len(popped), st.PeekLen(), pushers*perPusher)
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 300, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}
