// Package universal provides wait-free universal constructions layered
// on the paper's consensus algorithms, making the headline result
// executable: on a hybrid-scheduled system, consensus-number-P objects
// (or just reads and writes on one processor) are universal for any
// number of processes.
//
// Two constructions are provided:
//
//   - Object: a uniprocessor universal object for all priority levels of
//     one hybrid-scheduled processor, built purely from reads and writes
//     (Fig. 3 consensus cells chained Herlihy-style).
//   - MultiObject: a multiprocessor universal object whose per-slot
//     decisions are full Fig. 7 consensus instances over C-consensus
//     objects (C ≥ P), demonstrating Theorem 4's universality across
//     processors.
//
// Concrete shared objects (Counter, Queue) are built on top and used by
// the examples.
package universal

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// Apply is the deterministic sequential specification of an implemented
// object: it applies op to state, returning the new state and the
// operation's return value. It must be a pure function that never
// mutates its argument and never returns a nil state; it runs as
// private computation (no shared-memory statements).
type Apply func(state any, op mem.Word) (newState any, ret mem.Word)

// decider abstracts the per-slot consensus flavor.
type decider interface {
	decide(c *sim.Ctx, proposal mem.Word) mem.Word
	peek() mem.Word
}

type uniSlot struct{ o *unicons.Object }

func (s uniSlot) decide(c *sim.Ctx, p mem.Word) mem.Word { return s.o.Decide(c, p) }
func (s uniSlot) peek() mem.Word                         { return s.o.Peek() }

type multiSlot struct {
	a       *multicons.Algorithm
	decided *mem.Reg // published decision cache (one per processor would be
	// faithful; a single register is written with the identical decided
	// word by every finisher, so blind writes are safe)
}

func (s multiSlot) decide(c *sim.Ctx, p mem.Word) mem.Word {
	// Fast path: someone already published this slot's decision.
	if v := c.Read(s.decided); v != mem.Bottom {
		return v
	}
	v := s.a.Decide(c, p)
	c.Write(s.decided, v)
	return v
}

func (s multiSlot) peek() mem.Word {
	//repro:allow post-run inspection: PeekState replays decided slots only after the run completes
	return s.decided.Load()
}

// core is the shared chain logic: slot k's consensus decides the k-th
// operation as a packed (proposer, op) word; state is reconstructed by
// deterministic replay with memoization.
type core struct {
	name    string
	newSlot func(i int) decider
	apply   Apply

	slots  []decider
	vals   []*mem.Reg // vals[k] ≠ ⊥ once slot k's decision is published
	states []any      // memoized state after k ops (derived data)
	rets   []mem.Word // memoized return of op k (derived data)
	last   map[int]int
}

func newCore(name string, initial any, apply Apply, newSlot func(i int) decider) *core {
	return &core{
		name:    name,
		newSlot: newSlot,
		apply:   apply,
		slots:   []decider{nil},
		vals:    []*mem.Reg{mem.NewRegInit(name+".val[0]", 0)},
		states:  []any{initial},
		rets:    []mem.Word{0},
		last:    make(map[int]int),
	}
}

const maxOp = 1<<32 - 1

func packProp(proposer int, op mem.Word) mem.Word {
	return mem.Word(proposer+1)<<32 | (op & maxOp)
}

func unpackProp(w mem.Word) (proposer int, op mem.Word) {
	return int(w>>32) - 1, w & maxOp
}

func (u *core) ensure(k int) {
	//repro:bound n the chain grows by at most the slots one operation can traverse: one per concurrent process plus the target slot (unbounded-array idealization)
	for len(u.slots) <= k {
		i := len(u.slots)
		u.slots = append(u.slots, u.newSlot(i))
		u.vals = append(u.vals, mem.NewReg(fmt.Sprintf("%s.val[%d]", u.name, i)))
		u.states = append(u.states, nil)
		u.rets = append(u.rets, mem.Bottom)
	}
}

// memoUpTo fills the state/return memos through slot k by replaying
// published decisions (slots 1..k must be published). The memos are
// derived deterministically from decisions, so every process computes
// identical values and sharing them is safe.
func (u *core) memoUpTo(c *sim.Ctx, k int) {
	b := k
	//repro:bound n the memo basis lags the target by at most the slots published since this process last replayed: one per concurrent operation
	for u.states[b] == nil {
		b--
	}
	//repro:bound n replay covers exactly the slots between basis and target, bounded by published-but-unreplayed operations, one per process
	for i := b + 1; i <= k; i++ {
		d := c.Read(u.vals[i])
		if d == mem.Bottom {
			panic(fmt.Sprintf("universal: %s slot %d replayed before publication", u.name, i))
		}
		_, op := unpackProp(d)
		st, ret := u.apply(u.states[i-1], op)
		u.states[i], u.rets[i] = st, ret
	}
}

// findLatest walks to the newest published slot.
func (u *core) findLatest(c *sim.Ctx) int {
	j := u.last[c.ID()]
	//repro:bound n slots published past this process's last position come from concurrent deciders, at most one per process (Theorem 4's argument)
	for {
		u.ensure(j + 1)
		if c.Read(u.vals[j+1]) == mem.Bottom {
			return j
		}
		j++
	}
}

// invoke appends op to the chain (retrying lost slots) and returns its
// result. Wait-free: slot losses are bounded by the caller's same-level
// preemptions plus frozen peers (see package qlocal for the argument).
func (u *core) invoke(c *sim.Ctx, op mem.Word) mem.Word {
	if op > maxOp {
		panic(fmt.Sprintf("universal: op word %d exceeds 32 bits", op))
	}
	//repro:bound n a slot is lost only to a concurrent decider; each process defeats this operation at most once (Theorem 4)
	for {
		j := u.findLatest(c)
		d := u.slots[j+1].decide(c, packProp(c.ID(), op))
		c.Write(u.vals[j+1], d) // helper write: identical word from all writers
		u.last[c.ID()] = j + 1
		u.memoUpTo(c, j+1)
		if prop, _ := unpackProp(d); prop == c.ID() {
			return u.rets[j+1]
		}
	}
}

// peekState returns the current state by replaying decided slots.
// Post-run inspection only.
func (u *core) peekState() any {
	st := u.states[0]
	for k := 1; k < len(u.slots); k++ {
		d := u.slots[k].peek()
		if d == mem.Bottom {
			break
		}
		_, op := unpackProp(d)
		st, _ = u.apply(st, op)
	}
	return st
}

// Object is a uniprocessor universal object: any number of processes at
// any priority levels on ONE hybrid-scheduled processor, reads and
// writes only. Requires Q ≥ unicons.MinQuantum.
type Object struct{ u *core }

// New returns a uniprocessor universal object with the given initial
// state and sequential specification.
func New(name string, initial any, apply Apply) *Object {
	return &Object{u: newCore(name, initial, apply, func(i int) decider {
		return uniSlot{o: unicons.New(fmt.Sprintf("%s.slot[%d]", name, i))}
	})}
}

// Invoke applies op and returns its result.
func (o *Object) Invoke(c *sim.Ctx, op mem.Word) mem.Word { return o.u.invoke(c, op) }

// PeekState returns the current state. Post-run inspection only.
func (o *Object) PeekState() any { return o.u.peekState() }

// Ops returns the number of applied operations. Post-run inspection only.
func (o *Object) Ops() int {
	n := 0
	for k := 1; k < len(o.u.slots); k++ {
		if o.u.slots[k].peek() == mem.Bottom {
			break
		}
		n++
	}
	return n
}

// MultiObject is a multiprocessor universal object: any number of
// processes on P processors, using C-consensus objects (C = P + K) for
// each slot decision via Fig. 7. The quantum must satisfy the Table 1
// bound for the chosen (P, C).
type MultiObject struct {
	u   *core
	cfg multicons.Config
}

// NewMulti returns a multiprocessor universal object. cfg parameterizes
// the per-slot Fig. 7 instances.
func NewMulti(cfg multicons.Config, initial any, apply Apply) *MultiObject {
	m := &MultiObject{cfg: cfg}
	m.u = newCore(cfg.Name, initial, apply, func(i int) decider {
		slotCfg := cfg
		slotCfg.Name = fmt.Sprintf("%s.slot[%d]", cfg.Name, i)
		return multiSlot{
			a:       multicons.New(slotCfg),
			decided: mem.NewReg(slotCfg.Name + ".decided"),
		}
	})
	return m
}

// Invoke applies op and returns its result.
func (o *MultiObject) Invoke(c *sim.Ctx, op mem.Word) mem.Word { return o.u.invoke(c, op) }

// PeekState returns the current state. Post-run inspection only.
func (o *MultiObject) PeekState() any { return o.u.peekState() }
