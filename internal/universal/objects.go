package universal

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/sim"
)

// Counter op encoding: low 4 bits select the operation, the rest carry
// the argument.
const (
	counterOpGet = 1
	counterOpAdd = 2
)

func counterApply(state any, op mem.Word) (any, mem.Word) {
	v := state.(mem.Word)
	switch op & 0xF {
	case counterOpGet:
		return v, v
	case counterOpAdd:
		return v + op>>4, v
	default:
		panic(fmt.Sprintf("universal: bad counter op %#x", op))
	}
}

// Counter is a wait-free shared counter for all priority levels of one
// hybrid-scheduled processor, built from reads and writes only.
type Counter struct{ o *Object }

// NewCounter returns a counter starting at initial.
func NewCounter(name string, initial mem.Word) *Counter {
	return &Counter{o: New(name, initial, counterApply)}
}

// Add atomically adds delta (≤ 28 bits) and returns the prior value.
func (ct *Counter) Add(c *sim.Ctx, delta mem.Word) mem.Word {
	if delta >= 1<<28 {
		panic(fmt.Sprintf("universal: counter delta %d exceeds 28 bits", delta))
	}
	return ct.o.Invoke(c, counterOpAdd|delta<<4)
}

// Inc atomically increments and returns the prior value.
func (ct *Counter) Inc(c *sim.Ctx) mem.Word { return ct.Add(c, 1) }

// Get returns the current value (a linearizable read-only operation).
func (ct *Counter) Get(c *sim.Ctx) mem.Word { return ct.o.Invoke(c, counterOpGet) }

// Peek returns the current value. Post-run inspection only.
func (ct *Counter) Peek() mem.Word { return ct.o.PeekState().(mem.Word) }

// Queue op encoding.
const (
	queueOpEnq = 1
	queueOpDeq = 2
)

// QueueEmpty is returned by Deq on an empty queue.
const QueueEmpty = mem.Word(1<<32 - 1)

type queueState struct {
	items []mem.Word // persistent: never mutated in place
}

func queueApply(state any, op mem.Word) (any, mem.Word) {
	q := state.(queueState)
	switch op & 0xF {
	case queueOpEnq:
		next := queueState{items: make([]mem.Word, len(q.items)+1)}
		copy(next.items, q.items)
		next.items[len(q.items)] = op >> 4
		return next, mem.Word(len(q.items))
	case queueOpDeq:
		if len(q.items) == 0 {
			return q, QueueEmpty
		}
		return queueState{items: q.items[1:]}, q.items[0]
	default:
		panic(fmt.Sprintf("universal: bad queue op %#x", op))
	}
}

// Queue is a wait-free shared FIFO queue for all priority levels of one
// hybrid-scheduled processor, built from reads and writes only. Items
// are words of at most 28 bits.
type Queue struct{ o *Object }

// NewQueue returns an empty queue.
func NewQueue(name string) *Queue {
	return &Queue{o: New(name, queueState{}, queueApply)}
}

// Enq appends item (≤ 28 bits) and returns the queue length before the
// append.
func (q *Queue) Enq(c *sim.Ctx, item mem.Word) mem.Word {
	if item >= 1<<28 {
		panic(fmt.Sprintf("universal: queue item %d exceeds 28 bits", item))
	}
	return q.o.Invoke(c, queueOpEnq|item<<4)
}

// Deq removes and returns the oldest item, or QueueEmpty if the queue is
// empty.
func (q *Queue) Deq(c *sim.Ctx) mem.Word { return q.o.Invoke(c, queueOpDeq) }

// PeekLen returns the current queue length. Post-run inspection only.
func (q *Queue) PeekLen() int { return len(q.o.PeekState().(queueState).items) }

// Stack op encoding.
const (
	stackOpPush = 1
	stackOpPop  = 2
)

// StackEmpty is returned by Pop on an empty stack.
const StackEmpty = mem.Word(1<<32 - 1)

type stackState struct {
	items []mem.Word // persistent: never mutated in place
}

func stackApply(state any, op mem.Word) (any, mem.Word) {
	s := state.(stackState)
	switch op & 0xF {
	case stackOpPush:
		next := stackState{items: make([]mem.Word, len(s.items)+1)}
		copy(next.items, s.items)
		next.items[len(s.items)] = op >> 4
		return next, mem.Word(len(s.items))
	case stackOpPop:
		if len(s.items) == 0 {
			return s, StackEmpty
		}
		return stackState{items: s.items[:len(s.items)-1]}, s.items[len(s.items)-1]
	default:
		panic(fmt.Sprintf("universal: bad stack op %#x", op))
	}
}

// Stack is a wait-free shared LIFO stack for all priority levels of one
// hybrid-scheduled processor, built from reads and writes only. Items
// are words of at most 28 bits.
type Stack struct{ o *Object }

// NewStack returns an empty stack.
func NewStack(name string) *Stack {
	return &Stack{o: New(name, stackState{}, stackApply)}
}

// Push pushes item (≤ 28 bits) and returns the stack size before the
// push.
func (s *Stack) Push(c *sim.Ctx, item mem.Word) mem.Word {
	if item >= 1<<28 {
		panic(fmt.Sprintf("universal: stack item %d exceeds 28 bits", item))
	}
	return s.o.Invoke(c, stackOpPush|item<<4)
}

// Pop removes and returns the newest item, or StackEmpty if the stack is
// empty.
func (s *Stack) Pop(c *sim.Ctx) mem.Word { return s.o.Invoke(c, stackOpPop) }

// PeekLen returns the current stack size. Post-run inspection only.
func (s *Stack) PeekLen() int { return len(s.o.PeekState().(stackState).items) }

// MultiCounter is a wait-free shared counter spanning P processors,
// built on Fig. 7 consensus over C-consensus objects.
type MultiCounter struct{ o *MultiObject }

// NewMultiCounter returns a multiprocessor counter starting at initial.
func NewMultiCounter(cfg multicons.Config, initial mem.Word) *MultiCounter {
	return &MultiCounter{o: NewMulti(cfg, initial, counterApply)}
}

// Add atomically adds delta (≤ 28 bits) and returns the prior value.
func (ct *MultiCounter) Add(c *sim.Ctx, delta mem.Word) mem.Word {
	if delta >= 1<<28 {
		panic(fmt.Sprintf("universal: counter delta %d exceeds 28 bits", delta))
	}
	return ct.o.Invoke(c, counterOpAdd|delta<<4)
}

// Inc atomically increments and returns the prior value.
func (ct *MultiCounter) Inc(c *sim.Ctx) mem.Word { return ct.Add(c, 1) }

// Peek returns the current value. Post-run inspection only.
func (ct *MultiCounter) Peek() mem.Word { return ct.o.PeekState().(mem.Word) }
