package universal_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/multicons"
	"repro/internal/sim"
	"repro/internal/unicons"
	"repro/internal/universal"
)

// counterBuilder: n processes across V levels each increment opsPer
// times; returns must be a permutation of 0..n*opsPer-1.
func counterBuilder(n, levels, opsPer, quantum int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: quantum, Chooser: ch, MaxSteps: 1 << 20})
		ctr := universal.NewCounter("ctr", 0)
		rets := make([][]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%levels})
			for k := 0; k < opsPer; k++ {
				p.AddInvocation(func(c *sim.Ctx) {
					rets[i] = append(rets[i], ctr.Inc(c))
				})
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			var all []int
			for i := range rets {
				for k := 1; k < len(rets[i]); k++ {
					if rets[i][k] <= rets[i][k-1] {
						return fmt.Errorf("process %d returns not increasing: %v", i, rets[i])
					}
				}
				for _, v := range rets[i] {
					all = append(all, int(v))
				}
			}
			sort.Ints(all)
			for k, v := range all {
				if v != k {
					return fmt.Errorf("returns not a permutation: %v", all)
				}
			}
			if got := ctr.Peek(); got != mem.Word(n*opsPer) {
				return fmt.Errorf("final = %d, want %d", got, n*opsPer)
			}
			return nil
		}
		return sys, verify
	}
}

func TestCounterExhaustiveTwoProcs(t *testing.T) {
	res := check.ExploreBudget(counterBuilder(2, 2, 1, unicons.MinQuantum*2), 3,
		check.Options{MaxSchedules: 100000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
	t.Logf("verified %d schedules (truncated=%v)", res.Schedules, res.Truncated)
}

func TestCounterFuzz(t *testing.T) {
	for _, cfg := range []struct{ n, levels, ops int }{
		{2, 1, 4}, {3, 3, 3}, {6, 2, 2},
	} {
		res := check.Fuzz(counterBuilder(cfg.n, cfg.levels, cfg.ops, 32), 200, check.Options{})
		if !res.OK() {
			t.Fatalf("cfg=%+v: violation: %+v", cfg, res.First())
		}
	}
}

// TestQueueFIFO fuzzes producers and consumers: dequeued items must
// respect per-producer order and conserve items.
func TestQueueFIFO(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const producers, perProd = 3, 3
		sys := sim.New(sim.Config{Processors: 1, Quantum: 32, Chooser: ch, MaxSteps: 1 << 20})
		q := universal.NewQueue("q")
		var deqs []mem.Word
		for i := 0; i < producers; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%2})
			for k := 0; k < perProd; k++ {
				k := k
				p.AddInvocation(func(c *sim.Ctx) {
					q.Enq(c, mem.Word(i*100+k))
				})
			}
		}
		cons := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 2})
		for k := 0; k < producers*perProd; k++ {
			cons.AddInvocation(func(c *sim.Ctx) {
				deqs = append(deqs, q.Deq(c))
			})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			// Per-producer FIFO order among non-empty dequeues.
			lastSeq := map[int]int{0: -1, 1: -1, 2: -1}
			got := 0
			for _, v := range deqs {
				if v == universal.QueueEmpty {
					continue
				}
				got++
				prod, seq := int(v)/100, int(v)%100
				if seq <= lastSeq[prod] {
					return fmt.Errorf("producer %d items out of order: %v", prod, deqs)
				}
				lastSeq[prod] = seq
			}
			if got+q.PeekLen() != producers*perProd {
				return fmt.Errorf("items lost: dequeued %d + remaining %d != %d",
					got, q.PeekLen(), producers*perProd)
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 300, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// TestQueueDeqEmpty checks the empty-queue return.
func TestQueueDeqEmpty(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 32})
	q := universal.NewQueue("q")
	var first, second mem.Word
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			first = q.Deq(c)
			q.Enq(c, 42)
			second = q.Deq(c)
		})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if first != universal.QueueEmpty {
		t.Errorf("Deq on empty = %d, want QueueEmpty", first)
	}
	if second != 42 {
		t.Errorf("Deq = %d, want 42", second)
	}
}

// TestMultiCounter exercises the multiprocessor universal object: the
// Theorem 4 universality claim made executable. Increments from
// processes on different processors must linearize.
func TestMultiCounter(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		cfg := multicons.Config{Name: "mctr", P: 2, K: 0, M: 2, V: 1}
		sys := sim.New(sim.Config{Processors: cfg.P, Quantum: 4096, Chooser: ch, MaxSteps: 1 << 22})
		ctr := universal.NewMultiCounter(cfg, 0)
		const n, opsPer = 4, 2
		rets := make([][]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: i % cfg.P, Priority: 1})
			for k := 0; k < opsPer; k++ {
				p.AddInvocation(func(c *sim.Ctx) {
					rets[i] = append(rets[i], ctr.Inc(c))
				})
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			var all []int
			for i := range rets {
				for _, v := range rets[i] {
					all = append(all, int(v))
				}
			}
			sort.Ints(all)
			for k, v := range all {
				if v != k {
					return fmt.Errorf("returns not a permutation: %v", all)
				}
			}
			if got := ctr.Peek(); got != n*opsPer {
				return fmt.Errorf("final = %d, want %d", got, n*opsPer)
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 20, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// TestCounterGetLinearizes checks Get interleaved with Inc.
func TestCounterGetLinearizes(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 32, Chooser: ch, MaxSteps: 1 << 20})
		ctr := universal.NewCounter("ctr", 0)
		var gets []mem.Word
		inc := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
		for k := 0; k < 5; k++ {
			inc.AddInvocation(func(c *sim.Ctx) { ctr.Inc(c) })
		}
		rd := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 2})
		for k := 0; k < 5; k++ {
			rd.AddInvocation(func(c *sim.Ctx) { gets = append(gets, ctr.Get(c)) })
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			for i := 1; i < len(gets); i++ {
				if gets[i] < gets[i-1] {
					return fmt.Errorf("gets ran backwards: %v", gets)
				}
			}
			if len(gets) > 0 && gets[len(gets)-1] > 5 {
				return fmt.Errorf("get exceeds total increments: %v", gets)
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 300, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}
