package universal_test

import (
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/universal"
)

// crashCounterBuilder is counterBuilder under a crash-stop adversary
// crashing up to k of the n processes. A crashed process has at most one
// in-flight increment, which helpers may still apply after the crash, so
// the final value is bracketed by the recorded-return count and that
// count plus the number of crashes; recorded returns must stay distinct
// and per-process increasing, and survivors must complete every op.
func crashCounterBuilder(n, levels, opsPer, k int, crashSeed *atomic.Int64) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		crashing := sched.NewRandomCrash(ch, crashSeed.Add(1), k, 0.03)
		aud := sim.NewAuditor(32)
		sys := sim.New(sim.Config{
			Processors: 1, Quantum: 32,
			Chooser: crashing, Observer: aud, MaxSteps: 1 << 20,
		})
		ctr := universal.NewCounter("ctr", 0)
		rets := make([][]mem.Word, n)
		procs := make([]*sim.Process, n)
		for i := 0; i < n; i++ {
			i := i
			procs[i] = sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%levels})
			for op := 0; op < opsPer; op++ {
				procs[i].AddInvocation(func(c *sim.Ctx) {
					rets[i] = append(rets[i], ctr.Inc(c))
				})
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			if err := aud.Err(); err != nil {
				return err
			}
			crashed, recorded := 0, 0
			var all []int
			for i, p := range procs {
				if p.Crashed() {
					crashed++
				} else if p.CompletedInvocations() != opsPer {
					return fmt.Errorf("survivor %d completed %d/%d ops", i, p.CompletedInvocations(), opsPer)
				}
				for j := 1; j < len(rets[i]); j++ {
					if rets[i][j] <= rets[i][j-1] {
						return fmt.Errorf("process %d returns not increasing: %v", i, rets[i])
					}
				}
				for _, v := range rets[i] {
					all = append(all, int(v))
				}
				recorded += len(rets[i])
			}
			final := int(ctr.Peek())
			if final < recorded || final > recorded+crashed {
				return fmt.Errorf("final = %d, want in [%d, %d] (%d recorded, %d crashed)",
					final, recorded, recorded+crashed, recorded, crashed)
			}
			sort.Ints(all)
			for j := 1; j < len(all); j++ {
				if all[j] == all[j-1] {
					return fmt.Errorf("duplicate return %d: %v", all[j], all)
				}
			}
			for _, v := range all {
				if v < 0 || v >= final {
					return fmt.Errorf("return %d outside applied range [0, %d)", v, final)
				}
			}
			return nil
		}
		return sys, verify
	}
}

// TestCounterCrashFuzz: seeded random schedules plus seeded random
// crash-stop faults with every budget k in 1..n-1 find no violation of
// the counter's linearizable semantics or the wait-free bound.
func TestCounterCrashFuzz(t *testing.T) {
	for _, cfg := range []struct{ n, levels, ops int }{
		{3, 1, 2}, {3, 3, 1}, {4, 2, 1},
	} {
		for k := 1; k < cfg.n; k++ {
			var crashSeed atomic.Int64
			res := check.Fuzz(crashCounterBuilder(cfg.n, cfg.levels, cfg.ops, k, &crashSeed), 80, check.Options{
				WaitFreeBound: int64(500 * (cfg.levels + cfg.n)),
			})
			if !res.OK() {
				t.Fatalf("n=%d V=%d ops=%d k=%d: %+v", cfg.n, cfg.levels, cfg.ops, k, res.First())
			}
			if res.StepLimited != 0 {
				t.Fatalf("n=%d V=%d k=%d: %d runs hit the step limit", cfg.n, cfg.levels, k, res.StepLimited)
			}
		}
	}
}
