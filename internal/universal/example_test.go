package universal_test

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/universal"
)

// Example demonstrates a custom wait-free object: a max register defined
// by a three-line sequential specification, made wait-free for all
// priority levels of one hybrid-scheduled processor by the universal
// construction (reads and writes only underneath).
func Example() {
	maxApply := func(state any, op mem.Word) (any, mem.Word) {
		v := state.(mem.Word)
		if op > v {
			return op, v
		}
		return v, v
	}
	sys := sim.New(sim.Config{
		Processors: 1,
		Quantum:    32,
		Chooser:    sched.NewRandom(1),
	})
	o := universal.New("max", mem.Word(0), maxApply)
	for _, v := range []mem.Word{7, 3, 9, 5} {
		v := v
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + int(v)%2}).
			AddInvocation(func(c *sim.Ctx) { o.Invoke(c, v) })
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	fmt.Println(o.PeekState())
	// Output: 9
}
