package sched

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// SleepEntry is one sleeping alternative in a sleep-set reduced
// exploration: a process whose pending statement has already been
// explored in an earlier sibling subtree of the same decision point.
// While the entry is live, schedules that run the process are
// permutation-equivalent to schedules the earlier subtree covers, so
// the explorer neither picks nor branches to it. The entry wakes (is
// discarded) as soon as any dependent access executes.
type SleepEntry struct {
	// Proc is the sleeping process's id.
	Proc int
	// Processor is that process's processor index.
	Processor int
	// Fp is the footprint of the process's pending statement at the
	// moment it was put to sleep; the process does not run while
	// asleep, so the footprint stays valid.
	Fp mem.Footprint
}

// Wakes reports whether executed access a wakes (invalidates) entry e:
// the access is dependent-with-everything (arrival, invocation end,
// crash), it was executed by the sleeping process itself (a forced
// singleton grant), it shares a processor with the sleeper under
// quantum scheduling (grant order decides quantum protection), or its
// footprint conflicts with the sleeper's pending statement. This is the
// exact complement of sim.Decision.Independent.
func (e SleepEntry) Wakes(a sim.Access, quantum int) bool {
	if a.Global || a.Proc == e.Proc {
		return true
	}
	if a.Processor == e.Processor && quantum > 0 {
		return true
	}
	return !a.Fp.Commutes(e.Fp)
}

// CandSnap is the explorer-facing snapshot of one candidate at one
// free-region decision point, captured so subtree children can be
// generated after the run completes.
type CandSnap struct {
	// Proc and Processor identify the candidate.
	Proc      int
	Processor int
	// Fp is the candidate's pending footprint; FpKnown is false for
	// thinking (arrival) candidates, which can be branched to but never
	// put to sleep.
	Fp      mem.Footprint
	FpKnown bool
	// Asleep reports that the candidate was in the live sleep set: its
	// subtree is covered by an earlier sibling and must not be spawned.
	Asleep bool
}

// DecisionSnap records one free-region decision point of a Reduced run.
type DecisionSnap struct {
	// Cands snapshots the candidates in kernel order.
	Cands []CandSnap
	// Taken is the index the run picked (the first awake candidate).
	Taken int
	// Sleep is the live sleep set at this decision, after waking on the
	// accesses executed since the previous decision. Children branching
	// here inherit it plus their explored earlier siblings.
	Sleep []SleepEntry
}

// PruneInfo is what a Reduced (or BudgetedSwitch) chooser hands the
// explorer's prune callback at a decision point: enough to decide
// whether the state's continuations are provably covered by an earlier
// visit somewhere else in the exploration.
type PruneInfo struct {
	// Decision is the kernel's decision point (Decision.Sys exposes the
	// state fingerprint).
	Decision sim.Decision
	// Taken is the run's decision vector so far, excluding this point —
	// the canonical identity of the path that reached the state. Valid
	// only during the call.
	Taken []int
	// Sleep is the live sleep set (nil when sleep sets are off). Valid
	// only during the call.
	Sleep []SleepEntry
	// Budget is the number of further deviations the exploration may
	// still place at or after this decision (the full subtree for
	// ExploreAll). Coverage comparisons require the cached visitor's
	// budget to be at least this.
	Budget int
	// Extra is chooser-private state that determines the default
	// continuation and so must be folded into the state fingerprint
	// (BudgetedSwitch contributes its current-process id; Reduced
	// contributes nothing).
	Extra uint64
}

// PruneFunc decides whether to cut the run at this decision point.
// Returning true makes the chooser return sim.PickAbort.
type PruneFunc func(info PruneInfo) bool

// Reduced is the footprint-aware replacement for Script used by the
// reduction-enabled exhaustive explorer: it replays a fixed decision
// prefix verbatim, then continues with default decisions (the first
// candidate not in the live sleep set), recording everything the
// explorer needs to spawn the subtree's children. Sleep-set
// partial-order reduction and visited-fingerprint pruning are each
// optional; with both off, Reduced picks exactly like Script.
//
// Decision vectors recorded in Taken are plain candidate indices:
// replaying them through a vanilla Script (or an artifact bundle)
// reproduces the identical run, so reduction never changes the repro
// format.
type Reduced struct {
	// Prefix is the decision prefix to replay verbatim.
	Prefix []int
	// Sleep is the sleep set in effect immediately after the last
	// prefix decision (the branch that created this subtree).
	Sleep []SleepEntry
	// SleepSets enables sleep-set tracking in the free region.
	SleepSets bool
	// Prune, if non-nil, is consulted at every free-region decision
	// point before picking.
	Prune PruneFunc
	// Budget is reported to Prune (use a large value for unbounded
	// exploration).
	Budget int

	// Taken records the choice made at each decision point.
	Taken []int
	// Fanouts records len(Candidates) at each decision point.
	Fanouts []int
	// Snaps records the free-region decisions (index i corresponds to
	// decision index len(Prefix)+i).
	Snaps []DecisionSnap
	// Clamped / ClampCount report out-of-range prefix decisions, exactly
	// as for Script: the replay aliases another schedule.
	Clamped    bool
	ClampCount int
	// Pruned reports that Prune cut the run; SleepDeadlock reports that
	// every candidate was asleep (the whole continuation is covered by
	// earlier siblings). Either way Run returns sim.ErrPickAbort.
	Pruned        bool
	SleepDeadlock bool

	pos   int
	sleep []SleepEntry
	// Snapshot arenas: Snaps' Cands and Sleep slices are carved out of
	// these append-only buffers so a steady-state run allocates nothing.
	// Reset truncates them, so snapshots from the previous run must be
	// consumed before the next Reset.
	candArena  []CandSnap
	sleepArena []SleepEntry
}

// Reset rewinds the chooser for a pooled rerun of a new subtree,
// reusing the record buffers and snapshot arenas. SleepSets, Prune and
// Budget keep their configured values; everything else is as in a
// fresh &Reduced{Prefix: prefix, Sleep: sleep}. Snapshots recorded by
// the previous run are invalidated (their arena memory is reused), so
// the caller must have finished generating children from Snaps before
// calling Reset.
func (r *Reduced) Reset(prefix []int, sleep []SleepEntry) {
	r.Prefix = prefix
	r.Sleep = sleep
	r.Taken = r.Taken[:0]
	r.Fanouts = r.Fanouts[:0]
	r.Snaps = r.Snaps[:0]
	r.Clamped = false
	r.ClampCount = 0
	r.Pruned = false
	r.SleepDeadlock = false
	r.pos = 0
	r.sleep = r.sleep[:0]
	r.candArena = r.candArena[:0]
	r.sleepArena = r.sleepArena[:0]
}

// Pick implements sim.Chooser.
func (r *Reduced) Pick(d sim.Decision) int {
	idx := r.pos
	r.pos++
	r.Fanouts = append(r.Fanouts, len(d.Candidates))
	if idx < len(r.Prefix) {
		i := r.Prefix[idx]
		if i >= len(d.Candidates) {
			i = len(d.Candidates) - 1
			r.Clamped = true
			r.ClampCount++
		}
		r.Taken = append(r.Taken, i)
		if idx == len(r.Prefix)-1 {
			// Entering the free region: the subtree's inherited sleep
			// set becomes live. Accesses from the branch statement
			// onward arrive in the next decision's Since.
			r.sleep = append(r.sleep[:0], r.Sleep...)
		}
		return i
	}
	if idx == 0 {
		r.sleep = append(r.sleep[:0], r.Sleep...)
	}
	if r.SleepSets {
		r.wake(d)
	}
	// Carve the snapshot out of the arenas; the three-index subslices
	// cap the snapshot at its own length so later arena appends never
	// alias it. If an append reallocates the arena, earlier snapshots
	// keep referencing the retired block, which stays valid and
	// immutable.
	snap := DecisionSnap{Taken: -1}
	cs := len(r.candArena)
	for _, p := range d.Candidates {
		fp, known := p.NextFootprint()
		r.candArena = append(r.candArena, CandSnap{Proc: p.ID(), Processor: p.Processor(), Fp: fp, FpKnown: known, Asleep: r.asleep(p.ID())})
	}
	snap.Cands = r.candArena[cs:len(r.candArena):len(r.candArena)]
	ss := len(r.sleepArena)
	r.sleepArena = append(r.sleepArena, r.sleep...)
	snap.Sleep = r.sleepArena[ss:len(r.sleepArena):len(r.sleepArena)]
	for i := range snap.Cands {
		if snap.Taken < 0 && !snap.Cands[i].Asleep {
			snap.Taken = i
		}
	}
	if snap.Taken < 0 {
		// Every enabled candidate is asleep: every continuation from
		// here is permutation-equivalent to one an earlier sibling
		// subtree explores.
		r.SleepDeadlock = true
		r.Snaps = append(r.Snaps, snap)
		return sim.PickAbort
	}
	if r.Prune != nil && r.Prune(PruneInfo{Decision: d, Taken: r.Taken, Sleep: r.sleep, Budget: r.Budget}) {
		r.Pruned = true
		r.Snaps = append(r.Snaps, snap)
		return sim.PickAbort
	}
	r.Snaps = append(r.Snaps, snap)
	r.Taken = append(r.Taken, snap.Taken)
	return snap.Taken
}

// wake discards sleep entries invalidated by the accesses executed
// since the previous decision point.
func (r *Reduced) wake(d sim.Decision) {
	if len(r.sleep) == 0 {
		return
	}
	quantum := d.Sys.Quantum()
	live := r.sleep[:0]
	for _, e := range r.sleep {
		woken := false
		for _, a := range d.Since {
			if e.Wakes(a, quantum) {
				woken = true
				break
			}
		}
		if !woken {
			live = append(live, e)
		}
	}
	r.sleep = live
}

func (r *Reduced) asleep(proc int) bool {
	for _, e := range r.sleep {
		if e.Proc == proc {
			return true
		}
	}
	return false
}
