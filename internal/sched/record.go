package sched

import (
	"repro/internal/sim"
)

// Record wraps an inner chooser and records every scheduling decision it
// makes (as candidate indices) and every crash-stop fault it fires (as
// replayable CrashPoints). The recorded vector replayed through a Script
// — with the recorded crash points replayed through Crash — reproduces
// the identical run for any system that is a deterministic function of
// its decision sequence. This is how seeded-random counterexamples are
// normalized into shrinkable, artifact-grade decision vectors.
type Record struct {
	// Inner resolves decisions (and, if it implements sim.Crasher,
	// crash injection).
	Inner sim.Chooser
	// Taken accumulates the candidate index chosen at each decision
	// point, in order.
	Taken []int
	// Fanouts accumulates len(Candidates) at each decision point.
	Fanouts []int
	// Fired accumulates every crash fault Inner injected, as
	// deterministic replay points (victim ID, global statement count).
	Fired []CrashPoint
}

// NewRecord returns a recording wrapper around inner.
func NewRecord(inner sim.Chooser) *Record { return &Record{Inner: inner} }

// Reset rewinds the recorder around a (possibly new) inner chooser for
// a pooled rerun, reusing the record buffers. Equivalent to replacing
// the recorder with NewRecord(inner).
func (r *Record) Reset(inner sim.Chooser) {
	r.Inner = inner
	r.Taken = r.Taken[:0]
	r.Fanouts = r.Fanouts[:0]
	r.Fired = r.Fired[:0]
}

// CrashesArmed reports whether Inner can actually inject faults: the
// kernel skips the per-step Crashes call entirely when it cannot, and
// Record itself only delegates.
func (r *Record) CrashesArmed() bool {
	if ca, ok := r.Inner.(interface{ CrashesArmed() bool }); ok {
		return ca.CrashesArmed()
	}
	_, ok := r.Inner.(sim.Crasher)
	return ok
}

// Pick implements sim.Chooser, delegating to Inner and recording the
// chosen candidate index.
func (r *Record) Pick(d sim.Decision) int {
	i := r.Inner.Pick(d)
	r.Taken = append(r.Taken, i)
	r.Fanouts = append(r.Fanouts, len(d.Candidates))
	return i
}

// Crashes implements sim.Crasher. If Inner injects faults they are
// recorded as CrashPoints pinned to the current global statement count,
// so a Crash chooser replaying Fired crashes the same victims at the
// same steps. An inner chooser without fault injection yields none.
func (r *Record) Crashes(d sim.Decision) []*sim.Process {
	cr, ok := r.Inner.(sim.Crasher)
	if !ok {
		return nil
	}
	victims := cr.Crashes(d)
	for _, v := range victims {
		r.Fired = append(r.Fired, CrashPoint{Proc: v.ID(), Step: d.Step})
	}
	return victims
}
