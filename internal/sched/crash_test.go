package sched_test

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

// crashTrace runs n single-invocation processes under ch and returns
// (crashed flags, crash count).
func crashTrace(t *testing.T, ch sim.Chooser, n, stmts int) ([]bool, int) {
	t.Helper()
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4, Chooser: ch, MaxSteps: 1 << 14})
	procs := make([]*sim.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
		procs[i].AddInvocation(func(c *sim.Ctx) { c.Local(stmts) })
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	crashed := make([]bool, n)
	for i, p := range procs {
		crashed[i] = p.Crashed()
	}
	return crashed, sys.CrashedCount()
}

func TestCrashPlanFiresOncePerPoint(t *testing.T) {
	ch := sched.NewCrash(sim.FirstChooser{}, sched.CrashPoint{Proc: 1, Step: 2})
	crashed, n := crashTrace(t, ch, 3, 6)
	if n != 1 || !crashed[1] || crashed[0] || crashed[2] {
		t.Fatalf("crashed = %v (count %d), want only process 1", crashed, n)
	}
}

func TestCrashPlanMultipleVictims(t *testing.T) {
	ch := sched.NewCrash(sim.FirstChooser{},
		sched.CrashPoint{Proc: 0, Step: 1},
		sched.CrashPoint{Proc: 2, Step: 3})
	crashed, n := crashTrace(t, ch, 3, 6)
	if n != 2 || !crashed[0] || crashed[1] || !crashed[2] {
		t.Fatalf("crashed = %v (count %d), want processes 0 and 2", crashed, n)
	}
}

func TestCrashPlanIgnoresOutOfRangeProc(t *testing.T) {
	ch := sched.NewCrash(sim.FirstChooser{},
		sched.CrashPoint{Proc: -1, Step: 0},
		sched.CrashPoint{Proc: 99, Step: 0})
	_, n := crashTrace(t, ch, 2, 4)
	if n != 0 {
		t.Fatalf("out-of-range crash points fired: count %d", n)
	}
}

func TestCrashDelegatesSchedulingToInner(t *testing.T) {
	// The same inner chooser wrapped by a no-op crash plan must yield the
	// identical schedule.
	plain := runOrder(t, sched.NewRandom(7), 4, 8)
	wrapped := runOrder(t, sched.NewCrash(sched.NewRandom(7)), 4, 8)
	if len(plain) != len(wrapped) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(plain), len(wrapped))
	}
	for i := range plain {
		if plain[i] != wrapped[i] {
			t.Fatal("empty crash plan perturbed the inner chooser's schedule")
		}
	}
}

func TestRandomCrashReproducible(t *testing.T) {
	run := func(seed int64) []bool {
		ch := sched.NewRandomCrash(sched.NewRandom(seed), seed, 2, 0.1)
		crashed, _ := crashTrace(t, ch, 4, 10)
		return crashed
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different crash patterns")
		}
	}
}

func TestRandomCrashZeroBudgetInjectsNothing(t *testing.T) {
	ch := sched.NewRandomCrash(sched.NewRandom(3), 3, 0, 1.0)
	_, n := crashTrace(t, ch, 4, 10)
	if n != 0 || ch.Injected != 0 {
		t.Fatalf("zero-budget injector crashed %d (Injected=%d)", n, ch.Injected)
	}
}

func TestRandomCrashDefaultProb(t *testing.T) {
	ch := sched.NewRandomCrash(sim.FirstChooser{}, 1, 1, 0)
	if ch.Prob != sched.DefaultCrashProb {
		t.Fatalf("Prob = %v, want DefaultCrashProb", ch.Prob)
	}
}
