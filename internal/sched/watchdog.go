package sched

import "repro/internal/sim"

// Watchdog wraps a chooser with a cooperative stop check: every
// CheckEvery decisions it consults Stop, and once Stop reports true the
// run is cut off by returning sim.PickAbort from every subsequent Pick
// (System.Run then returns sim.ErrPickAbort). It is the mechanism
// behind per-replay deadlines — a stuck or pathologically slow schedule
// becomes a recorded timeout instead of a hang — while keeping the
// clock itself out of this package: Stop is supplied by the caller
// (internal/check and internal/campaign arm it with a wall-clock
// deadline at their own annotated sites), so Watchdog is a
// deterministic function of its inputs.
//
// Watchdog forwards the sim.Crasher protocol to its inner chooser, so
// crash injection keeps working under a deadline.
type Watchdog struct {
	// Inner is the wrapped chooser.
	Inner sim.Chooser
	// Stop reports whether the run must be cut off. It is polled every
	// CheckEvery decisions, so a fired deadline is honored within that
	// many statements.
	Stop func() bool
	// CheckEvery is the decision interval between Stop polls
	// (0 = 64). 1 polls at every decision.
	CheckEvery int
	// Fired reports that Stop cut this run off. Cleared by Rearm.
	Fired bool

	sinceCheck int
}

// Rearm clears the fired state for the next run, reusing the wrapper.
func (w *Watchdog) Rearm(inner sim.Chooser) {
	w.Inner = inner
	w.Fired = false
	w.sinceCheck = 0
}

func (w *Watchdog) checkEvery() int {
	if w.CheckEvery <= 0 {
		return 64
	}
	return w.CheckEvery
}

// Pick implements sim.Chooser.
func (w *Watchdog) Pick(d sim.Decision) int {
	if w.Fired {
		return sim.PickAbort
	}
	if w.sinceCheck++; w.sinceCheck >= w.checkEvery() {
		w.sinceCheck = 0
		if w.Stop != nil && w.Stop() {
			w.Fired = true
			return sim.PickAbort
		}
	}
	return w.Inner.Pick(d)
}

// Crashes implements sim.Crasher by delegation, so a watchdog-wrapped
// crash injector still fires.
func (w *Watchdog) Crashes(d sim.Decision) []*sim.Process {
	if cr, ok := w.Inner.(sim.Crasher); ok {
		return cr.Crashes(d)
	}
	return nil
}

// CrashesArmed reports whether the inner chooser can inject faults (see
// sim.Config.Chooser's crash-arming protocol).
func (w *Watchdog) CrashesArmed() bool {
	cr, ok := w.Inner.(sim.Crasher)
	if !ok {
		return false
	}
	if ca, ok := cr.(interface{ CrashesArmed() bool }); ok {
		return ca.CrashesArmed()
	}
	return true
}
