package sched_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// buildPair constructs the two-process local-statement workload used by
// the Reduced/Script equivalence tests.
func buildPair(ch sim.Chooser, order *[]int) *sim.System {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Chooser: ch})
	for i := 0; i < 2; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				for k := 0; k < 4; k++ {
					c.Local(1)
					*order = append(*order, i)
				}
			})
	}
	return sys
}

// TestReducedMatchesScriptWhenOff checks the compatibility contract:
// with sleep sets and pruning both off, Reduced replays a prefix and
// continues with default decisions exactly like Script — same execution
// order, same fanouts, and a Taken vector that extends the prefix with
// the default (first-candidate) picks.
func TestReducedMatchesScriptWhenOff(t *testing.T) {
	for _, prefix := range [][]int{nil, {0}, {1}, {1, 0, 1}, {0, 1, 1, 0}} {
		var scriptOrder []int
		script := &sched.Script{Decisions: prefix}
		if err := buildPair(script, &scriptOrder).Run(); err != nil {
			t.Fatalf("prefix %v: script run: %v", prefix, err)
		}
		var redOrder []int
		red := &sched.Reduced{Prefix: prefix}
		if err := buildPair(red, &redOrder).Run(); err != nil {
			t.Fatalf("prefix %v: reduced run: %v", prefix, err)
		}
		if len(scriptOrder) != len(redOrder) {
			t.Fatalf("prefix %v: order lengths differ: %d vs %d", prefix, len(scriptOrder), len(redOrder))
		}
		for i := range scriptOrder {
			if scriptOrder[i] != redOrder[i] {
				t.Fatalf("prefix %v: execution order diverges at %d: %v vs %v",
					prefix, i, scriptOrder, redOrder)
			}
		}
		if len(script.Fanouts) != len(red.Fanouts) {
			t.Fatalf("prefix %v: fanout counts differ: %v vs %v", prefix, script.Fanouts, red.Fanouts)
		}
		for i := range script.Fanouts {
			if script.Fanouts[i] != red.Fanouts[i] {
				t.Fatalf("prefix %v: fanouts diverge at %d: %v vs %v",
					prefix, i, script.Fanouts, red.Fanouts)
			}
		}
		if len(red.Taken) != len(red.Fanouts) {
			t.Fatalf("prefix %v: Taken covers %d of %d decisions", prefix, len(red.Taken), len(red.Fanouts))
		}
		if red.Clamped || red.Pruned || red.SleepDeadlock {
			t.Fatalf("prefix %v: spurious flags: clamped=%v pruned=%v deadlock=%v",
				prefix, red.Clamped, red.Pruned, red.SleepDeadlock)
		}
		if got, want := len(red.Snaps), len(red.Fanouts)-len(prefix); got != want {
			t.Fatalf("prefix %v: %d snaps for %d free decisions", prefix, got, want)
		}
	}
}

// TestReducedClampMatchesScript checks that an out-of-range prefix
// decision clamps and is flagged exactly like Script.
func TestReducedClampMatchesScript(t *testing.T) {
	var order []int
	red := &sched.Reduced{Prefix: []int{99}}
	if err := buildPair(red, &order).Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !red.Clamped || red.ClampCount != 1 {
		t.Fatalf("clamped=%v count=%d, want true/1", red.Clamped, red.ClampCount)
	}
}

// TestSleepEntryWakes pins the wake rule — the exact complement of the
// independence relation the sleep-set reduction relies on.
func TestSleepEntryWakes(t *testing.T) {
	obj := mem.HashName("shared")
	other := mem.HashName("other")
	entry := sched.SleepEntry{
		Proc:      1,
		Processor: 0,
		Fp:        mem.Footprint{Obj: obj, Cell: -1, Kind: mem.AccessWrite},
	}
	acc := func(proc, processor int, fp mem.Footprint, global bool) sim.Access {
		return sim.Access{Proc: proc, Processor: processor, Fp: fp, Global: global}
	}
	read := func(o uint64) mem.Footprint { return mem.Footprint{Obj: o, Cell: -1, Kind: mem.AccessRead} }
	cases := []struct {
		name    string
		a       sim.Access
		quantum int
		want    bool
	}{
		{"global-access", acc(2, 1, mem.Footprint{}, true), 0, true},
		{"same-proc", acc(1, 1, read(other), false), 0, true},
		{"same-processor-quantum", acc(2, 0, read(other), false), 2, true},
		{"same-processor-no-quantum", acc(2, 0, read(other), false), 0, false},
		{"conflicting-footprint", acc(2, 1, read(obj), false), 0, true},
		{"commuting-footprint", acc(2, 1, read(other), false), 0, false},
		{"local-other-processor", acc(2, 1, mem.Footprint{}, false), 0, false},
	}
	for _, tc := range cases {
		if got := entry.Wakes(tc.a, tc.quantum); got != tc.want {
			t.Errorf("%s: wakes = %v, want %v", tc.name, got, tc.want)
		}
	}
}
