// Package sched provides Chooser implementations — scheduling strategies
// — for the internal/sim simulator. The simulator itself enforces the
// paper's Axioms 1–2; choosers decide everything the axioms leave open:
// which processor advances, when thinking processes arrive, which
// equal-priority process receives the next quantum, and when legal
// preemptions actually occur.
//
// The package includes benign strategies (run-to-completion, seeded
// random, rotating round-robin) and hostile ones (maximal legal
// preemption, the quantum-stagger adversary from the paper's Theorem 3
// lower-bound proof).
package sched

import (
	"math/rand"

	"repro/internal/sim"
)

// Random picks uniformly among candidates using a seeded PRNG, giving
// reproducible pseudo-random schedules. Random schedules exercise
// preemptions heavily because every legal preemption point is taken with
// positive probability.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random chooser with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements sim.Chooser.
func (r *Random) Pick(d sim.Decision) int {
	return r.rng.Intn(len(d.Candidates))
}

// Reseed rewinds the PRNG to the start of the stream for seed, so a
// pooled worker replays seed after seed without reallocating the
// chooser. Reseed(s) is equivalent to replacing the chooser with
// NewRandom(s).
func (r *Random) Reseed(seed int64) {
	r.rng.Seed(seed)
}

// RunToCompletion prefers the process that most recently ran, so each
// invocation completes without same-priority preemption when possible.
// It is the friendliest legal schedule: a sanity baseline under which
// every correct algorithm must succeed trivially.
type RunToCompletion struct {
	last *sim.Process
}

// Pick implements sim.Chooser.
func (c *RunToCompletion) Pick(d sim.Decision) int {
	for i, p := range d.Candidates {
		if p == c.last {
			return i
		}
	}
	c.last = d.Candidates[0]
	return 0
}

// Rotate cycles through candidate processes, switching to the next
// distinct process at every legal opportunity. Because the simulator
// only offers legal candidates, Rotate effects a maximally-preempting
// quantum round-robin: every quantum is exactly Q statements.
type Rotate struct {
	lastID int
}

// NewRotate returns a Rotate chooser.
func NewRotate() *Rotate { return &Rotate{lastID: -1} }

// Pick implements sim.Chooser.
func (c *Rotate) Pick(d sim.Decision) int {
	// Choose the candidate with the smallest ID strictly greater than
	// the last scheduled ID, wrapping around.
	best, bestWrap := -1, -1
	for i, p := range d.Candidates {
		id := p.ID()
		if id > c.lastID && (best == -1 || id < d.Candidates[best].ID()) {
			best = i
		}
		if bestWrap == -1 || id < d.Candidates[bestWrap].ID() {
			bestWrap = i
		}
	}
	if best == -1 {
		best = bestWrap
	}
	c.lastID = d.Candidates[best].ID()
	return best
}

// Stagger is the quantum-stagger adversary from the paper's Theorem 3
// lower-bound proof (Sec. 4.1/Appendix A): it aligns processes'
// executions with quantum boundaries at staggered offsets, so that at
// (almost) every instant some process is at a preemption point. Each
// process runs for its offset first, then for Period statements between
// switches; the simulator clips illegal preemptions, so Stagger is
// always legal but maximally misaligned.
type Stagger struct {
	// Period is the statements each process runs per burst after its
	// initial offset (use the quantum Q for exact boundary staggering).
	Period int
	// Phase rotates the offset assignment, letting a battery try
	// different alignments.
	Phase int

	started  map[int]bool
	budgets  map[int]int
	current  int
	lastStep int64
}

// NewStagger returns a stagger adversary with the given burst period and
// alignment phase.
func NewStagger(period, phase int) *Stagger {
	if period < 1 {
		period = 1
	}
	return &Stagger{
		Period:  period,
		Phase:   phase,
		started: make(map[int]bool),
		budgets: make(map[int]int),
		current: -1,
	}
}

// Pick implements sim.Chooser. Burst budgets are charged by the global
// statement clock (Decision.Step deltas), so statements the kernel
// grants without a decision point — e.g. while the current process is
// quantum-protected — are accounted too.
func (s *Stagger) Pick(d sim.Decision) int {
	if s.current >= 0 {
		s.budgets[s.current] -= int(d.Step - s.lastStep)
	}
	s.lastStep = d.Step
	// Continue the current process while its burst budget lasts.
	for i, p := range d.Candidates {
		if p.ID() == s.current && s.budgets[s.current] > 0 {
			return i
		}
	}
	// Otherwise pick the next process round-robin and start its next
	// burst. A process's first burst is its stagger offset:
	// 1 + (ID+Phase) mod Period statements; later bursts are Period.
	best, bestWrap := -1, -1
	for i, p := range d.Candidates {
		id := p.ID()
		if id > s.current && (best == -1 || id < d.Candidates[best].ID()) {
			best = i
		}
		if bestWrap == -1 || id < d.Candidates[bestWrap].ID() {
			bestWrap = i
		}
	}
	if best == -1 {
		best = bestWrap
	}
	p := d.Candidates[best]
	if !s.started[p.ID()] {
		s.started[p.ID()] = true
		s.budgets[p.ID()] = 1 + (p.ID()+s.Phase)%s.Period
	} else {
		s.budgets[p.ID()] = s.Period
	}
	s.current = p.ID()
	return best
}

// Script replays a fixed decision sequence, then falls back to picking
// candidate 0. It records the fan-out of every decision it makes, which
// the exhaustive explorer in internal/check uses to enumerate schedules.
//
// A scripted decision that is out of range for the decision point it
// reaches (which can only happen when the system under replay is not a
// deterministic function of the decision sequence — e.g. a non-reentrant
// builder) is clamped to the last candidate and flagged via Clamped and
// ClampCount. A clamped replay aliases a schedule with an in-range
// decision vector, so explorers skip such runs instead of counting them
// as distinct schedules.
type Script struct {
	// Decisions is the prefix of decisions to replay.
	Decisions []int
	// Fanouts records len(Candidates) at each decision point encountered
	// (including beyond the scripted prefix).
	Fanouts []int
	// Clamped reports whether any scripted decision was out of range and
	// had to be clamped to the last candidate.
	Clamped bool
	// ClampCount counts clamped decisions.
	ClampCount int
	pos        int
}

// Reset rewinds the script for a pooled rerun with a new decision
// prefix, reusing the fan-out buffer. Equivalent to replacing the
// chooser with &Script{Decisions: decisions}.
func (s *Script) Reset(decisions []int) {
	s.Decisions = decisions
	s.Fanouts = s.Fanouts[:0]
	s.Clamped = false
	s.ClampCount = 0
	s.pos = 0
}

// Pick implements sim.Chooser.
func (s *Script) Pick(d sim.Decision) int {
	s.Fanouts = append(s.Fanouts, len(d.Candidates))
	i := 0
	if s.pos < len(s.Decisions) {
		i = s.Decisions[s.pos]
		if i >= len(d.Candidates) {
			i = len(d.Candidates) - 1
			s.Clamped = true
			s.ClampCount++
		}
	}
	s.pos++
	return i
}

// BudgetedSwitch wraps an inner preference for "keep running the current
// process" but spends a limited budget of deliberate switches at
// positions directed by a schedule word. It is the chooser shape used by
// the bounded-preemption exhaustive explorer: schedules differ only in
// where a bounded number of context switches are placed, which is where
// all the interesting behaviour of quantum-scheduled algorithms lives.
type BudgetedSwitch struct {
	// SwitchAt maps decision index → candidate choice; decisions not
	// present continue the current process when possible.
	SwitchAt map[int64]int
	current  *sim.Process
	// Decision counts decisions seen so far.
	Decision int64
	// Fanouts records len(Candidates) at each decision point.
	Fanouts []int
	// Taken records the choice made at each decision point.
	Taken []int
	// Clamped reports whether any directed switch was out of range for
	// the decision point it reached and was clamped to the last
	// candidate (see Script.Clamped: this aliases another schedule).
	Clamped bool
	// ClampCount counts clamped decisions.
	ClampCount int
	// Prune, if non-nil, is consulted at decision points strictly past
	// the last directed switch — where the rest of the run is a pure
	// default continuation, so a previously visited equal state provably
	// has an equal future. (Before that point the pending switch word,
	// which the state fingerprint cannot see, still steers the run, so
	// pruning there would be unsound.) Returning true aborts the run.
	Prune PruneFunc
	// Budget is the remaining deviation budget reported to Prune.
	Budget int
	// Pruned reports that Prune cut the run (Run returned
	// sim.ErrPickAbort).
	Pruned bool
}

// Reset rewinds the chooser for a pooled rerun with a new deviation
// budget, reusing the switch map and record buffers. The caller refills
// SwitchAt (cleared here) and keeps Prune as configured. Equivalent to
// replacing the chooser with &BudgetedSwitch{SwitchAt: ..., Budget:
// budget, Prune: ...}.
func (b *BudgetedSwitch) Reset(budget int) {
	if b.SwitchAt == nil {
		b.SwitchAt = make(map[int64]int)
	} else {
		clear(b.SwitchAt)
	}
	b.current = nil
	b.Decision = 0
	b.Fanouts = b.Fanouts[:0]
	b.Taken = b.Taken[:0]
	b.Clamped = false
	b.ClampCount = 0
	b.Budget = budget
	b.Pruned = false
}

// pendingSwitches reports whether any directed switch remains at
// decision index idx or later.
func (b *BudgetedSwitch) pendingSwitches(idx int64) bool {
	//repro:allow maporder existence scan; any-order traversal yields the same boolean
	for d := range b.SwitchAt {
		if d >= idx {
			return true
		}
	}
	return false
}

// Pick implements sim.Chooser.
func (b *BudgetedSwitch) Pick(d sim.Decision) int {
	idx := b.Decision
	b.Decision++
	b.Fanouts = append(b.Fanouts, len(d.Candidates))
	choice, ok := b.SwitchAt[idx]
	switch {
	case ok:
		if choice >= len(d.Candidates) {
			choice = len(d.Candidates) - 1
			b.Clamped = true
			b.ClampCount++
		}
	default:
		if b.Prune != nil && !b.pendingSwitches(idx) {
			extra := ^uint64(0)
			if b.current != nil {
				extra = uint64(b.current.ID())
			}
			if b.Prune(PruneInfo{Decision: d, Taken: b.Taken, Budget: b.Budget, Extra: extra}) {
				b.Pruned = true
				return sim.PickAbort
			}
		}
		choice = 0
		for i, p := range d.Candidates {
			if p == b.current {
				choice = i
				break
			}
		}
	}
	b.current = d.Candidates[choice]
	b.Taken = append(b.Taken, choice)
	return choice
}
