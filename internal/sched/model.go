package sched

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// ModelSpec is the serializable identity of a scheduler model: a
// registered model name plus everything that parameterizes one concrete
// chooser instance. A spec is the currency the whole stack trades in —
// repro bundles embed one (artifact.Sched.Model), jobspecs carry one,
// campaign identities pin one — and the contract is that
// NewFromSpec(spec) on any machine builds a chooser producing the
// identical decision stream for the same inputs.
//
// Field applicability varies by model. Seed feeds stochastic models
// (and the randomcrash wrapper); Params carries named numeric knobs
// (unknown names are rejected); Decisions is the script model's replay
// vector and the budgeted model's flattened (index, choice) switch
// word; Plan is the crash wrapper's fault schedule; Inner nests the
// wrapped model for wrapper models (crash, randomcrash, watchdog,
// record) and must be absent otherwise.
type ModelSpec struct {
	// Name is the registered model name (see Models).
	Name string `json:"name"`
	// Seed seeds stochastic models; ignored by deterministic ones.
	Seed int64 `json:"seed,omitempty"`
	// Params holds named numeric parameters (e.g. stay, eps, period).
	Params map[string]float64 `json:"params,omitempty"`
	// Decisions parameterizes the script model (decision vector) and
	// the budgeted model (flattened index/choice pairs).
	Decisions []int `json:"decisions,omitempty"`
	// Plan is the crash wrapper's planned fault schedule.
	Plan []CrashPoint `json:"plan,omitempty"`
	// Inner is the wrapped model (wrapper models only).
	Inner *ModelSpec `json:"inner,omitempty"`
}

// Model is one registered scheduler model: a named, documented chooser
// factory. Registration is what turns scheduler diversity from
// copy-paste wiring into data — every layer that used to hard-code a
// chooser type (check's fuzzer, artifact replay, jobspecs, CLIs) now
// resolves a ModelSpec through this registry instead.
type Model struct {
	// Name is the registry key.
	Name string
	// Doc is a one-line description for -help output.
	Doc string
	// Stochastic reports that the model consumes ModelSpec.Seed: its
	// decision stream varies by seed but is a pure function of it.
	Stochastic bool
	// Wrapper reports that the model wraps ModelSpec.Inner.
	Wrapper bool
	// Params names the model's recognized parameters and their
	// defaults; NewFromSpec rejects unknown parameter names.
	Params map[string]float64
	// New builds the chooser. The spec's Name is already validated.
	New func(spec *ModelSpec) (sim.Chooser, error)
}

// models is the scheduler-model registry.
var models = map[string]*Model{}

// RegisterModel adds a model to the registry; duplicate names panic
// (registration is init-time wiring, not user input).
func RegisterModel(m *Model) {
	if _, dup := models[m.Name]; dup {
		panic("sched: duplicate model " + m.Name)
	}
	models[m.Name] = m
}

// KnownModel reports whether name is a registered scheduler model.
func KnownModel(name string) bool {
	_, ok := models[name]
	return ok
}

// Models returns the registered model names, sorted.
func Models() []string {
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupModel returns the registered model, or nil.
func LookupModel(name string) *Model { return models[name] }

// Validate checks the spec (and its nested Inner chain) against the
// registry: the model must exist, every parameter name must be known,
// and Inner must be present exactly for wrapper models.
func (s *ModelSpec) Validate() error {
	m, ok := models[s.Name]
	if !ok {
		return fmt.Errorf("sched: unknown scheduler model %q (have %v)", s.Name, Models())
	}
	//repro:allow maporder validity is order-independent; only which unknown parameter an invalid spec names first varies
	for name := range s.Params {
		if _, known := m.Params[name]; !known {
			return fmt.Errorf("sched: model %s: unknown parameter %q", s.Name, name)
		}
	}
	if m.Wrapper {
		if s.Inner == nil {
			return fmt.Errorf("sched: wrapper model %s requires an inner model", s.Name)
		}
		return s.Inner.Validate()
	}
	if s.Inner != nil {
		return fmt.Errorf("sched: model %s takes no inner model", s.Name)
	}
	return nil
}

// Param returns the named parameter, falling back to the model's
// registered default.
func (s *ModelSpec) Param(name string) float64 {
	if v, ok := s.Params[name]; ok {
		return v
	}
	if m := models[s.Name]; m != nil {
		return m.Params[name]
	}
	return 0
}

// Clone returns a deep copy of the spec.
func (s *ModelSpec) Clone() *ModelSpec {
	if s == nil {
		return nil
	}
	c := *s
	if s.Params != nil {
		c.Params = make(map[string]float64, len(s.Params))
		//repro:allow maporder map-to-map copy; no order reaches output
		for k, v := range s.Params {
			c.Params[k] = v
		}
	}
	c.Decisions = append([]int(nil), s.Decisions...)
	c.Plan = append([]CrashPoint(nil), s.Plan...)
	c.Inner = s.Inner.Clone()
	return &c
}

// modelGolden is the Weyl increment run-seed derivation walks with (the
// same constant the soak derivations use), and modelDepthSalt
// decorrelates nested wrapper seeds so a randomcrash wrapper and its
// stochastic inner model never share a stream.
const (
	modelGolden    = 0x9e3779b97f4a7c15
	modelDepthSalt = 0x6a09e667f3bcc909
)

// RunSeed derives the seed for run idx of a sweep rooted at base: a
// Weyl walk, matching the soak derivations, so consecutive runs get
// decorrelated but deterministic streams.
func RunSeed(base, idx int64) int64 {
	return int64(uint64(base) + (uint64(idx)+1)*modelGolden)
}

// WithRunSeed returns a deep copy of the spec with every node's seed
// re-derived from (its configured seed, idx): run idx of a fuzz sweep
// or soak campaign gets a distinct, deterministic stream per node. The
// depth salt keeps a wrapper's stream independent of its inner
// model's.
func (s *ModelSpec) WithRunSeed(idx int64) *ModelSpec {
	c := s.Clone()
	for node, depth := c, int64(0); node != nil; node, depth = node.Inner, depth+1 {
		node.Seed = int64(uint64(RunSeed(node.Seed, idx)) + uint64(depth)*modelDepthSalt)
	}
	return c
}

// NewFromSpec validates the spec and builds its chooser.
func NewFromSpec(spec *ModelSpec) (sim.Chooser, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return models[spec.Name].New(spec)
}

// newInner builds a wrapper spec's inner chooser (already validated).
func newInner(spec *ModelSpec) (sim.Chooser, error) {
	return models[spec.Inner.Name].New(spec.Inner)
}

// Reseedable is implemented by stochastic choosers that can rewind to
// the start of the stream for a new seed in place, so a pooled worker
// replays seed after seed without reallocating (Random, Uniform,
// Markov, Noisy). Reseed(s) must be equivalent to rebuilding the
// chooser with seed s.
type Reseedable interface {
	sim.Chooser
	Reseed(seed int64)
}

// ParseModelSpec parses the CLI form of a model spec: either raw JSON
// (a string starting with "{", the exact ModelSpec encoding, which is
// the only form that can express wrappers and scripts) or the compact
// "name" / "name:key=val,key=val" form, where "seed" is recognized
// alongside the model's registered parameters:
//
//	uniform
//	markov:stay=0.9,seed=7
//	noisy:eps=0.05
//	{"name":"randomcrash","seed":3,"params":{"max":1},"inner":{"name":"markov"}}
//
// The returned spec is validated against the registry.
func ParseModelSpec(s string) (*ModelSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("sched: empty scheduler model spec")
	}
	spec := &ModelSpec{}
	if strings.HasPrefix(s, "{") {
		if err := json.Unmarshal([]byte(s), spec); err != nil {
			return nil, fmt.Errorf("sched: model spec JSON: %w", err)
		}
	} else {
		name, rest, _ := strings.Cut(s, ":")
		spec.Name = name
		if rest != "" {
			for _, part := range strings.Split(rest, ",") {
				key, val, ok := strings.Cut(part, "=")
				if !ok {
					return nil, fmt.Errorf("sched: model spec %q: want key=value, got %q", s, part)
				}
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("sched: model spec %q: parameter %s: %w", s, key, err)
				}
				if key == "seed" {
					spec.Seed = int64(f)
					continue
				}
				if spec.Params == nil {
					spec.Params = map[string]float64{}
				}
				spec.Params[key] = f
			}
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// String renders the spec canonically: compact form when it has no
// wrapper/script payload, JSON otherwise. The output round-trips
// through ParseModelSpec.
func (s *ModelSpec) String() string {
	if s.Inner == nil && len(s.Decisions) == 0 && len(s.Plan) == 0 {
		var b strings.Builder
		b.WriteString(s.Name)
		sep := byte(':')
		keys := make([]string, 0, len(s.Params))
		for k := range s.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%c%s=%s", sep, k, strconv.FormatFloat(s.Params[k], 'g', -1, 64))
			sep = ','
		}
		if s.Seed != 0 {
			fmt.Fprintf(&b, "%cseed=%d", sep, s.Seed)
		}
		return b.String()
	}
	data, err := json.Marshal(s)
	if err != nil {
		return s.Name // unreachable for a validated spec
	}
	return string(data)
}

// The registrations below migrate every chooser in this package onto
// the registry (the behavior-preservation cross-check in model_test.go
// pins each one byte-identical to its hand-wired original) and add the
// stochastic family (uniform, markov, noisy — see stochastic.go).
func init() {
	RegisterModel(&Model{
		Name: "random", Doc: "seeded uniform-random choice (math/rand; the historical fuzz chooser)",
		Stochastic: true,
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			return NewRandom(spec.Seed), nil
		},
	})
	RegisterModel(&Model{
		Name: "uniform", Doc: "seeded uniform-random choice (math/rand/v2 PCG; the stochastic family's baseline)",
		Stochastic: true,
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			return NewUniform(spec.Seed), nil
		},
	})
	RegisterModel(&Model{
		Name: "markov", Doc: "Markov processor/priority walk: keep the current process w.p. stay, else hop with priority-proportional bias",
		Stochastic: true,
		Params:     map[string]float64{"stay": 0.75, "pribias": 1},
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			return NewMarkov(spec.Seed, spec.Param("stay"), spec.Param("pribias")), nil
		},
	})
	RegisterModel(&Model{
		Name: "noisy", Doc: "Aspnes-style noisy scheduling: maximally-preempting adversarial core perturbed by a uniform random pick w.p. eps",
		Stochastic: true,
		Params:     map[string]float64{"eps": 0.1},
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			return NewNoisy(spec.Seed, spec.Param("eps")), nil
		},
	})
	RegisterModel(&Model{
		Name: "rtc", Doc: "run-to-completion: finish each invocation without same-priority preemption when possible",
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			return &RunToCompletion{}, nil
		},
	})
	RegisterModel(&Model{
		Name: "rotate", Doc: "maximally-preempting round-robin: switch to the next distinct process at every legal opportunity",
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			return NewRotate(), nil
		},
	})
	RegisterModel(&Model{
		Name: "stagger", Doc: "the Theorem 3 quantum-stagger adversary: offset bursts of period statements at the given phase",
		Params: map[string]float64{"period": 1, "phase": 0},
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			return NewStagger(int(spec.Param("period")), int(spec.Param("phase"))), nil
		},
	})
	RegisterModel(&Model{
		Name: "script", Doc: "replay an explicit decision vector, then candidate 0 (the canonical artifact form)",
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			return &Script{Decisions: spec.Decisions}, nil
		},
	})
	RegisterModel(&Model{
		Name: "budgeted", Doc: "continue-current-process with directed switches at flattened (decision, choice) pairs (the budget explorer's chooser)",
		Params: map[string]float64{"budget": 0},
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			if len(spec.Decisions)%2 != 0 {
				return nil, fmt.Errorf("sched: budgeted model wants flattened (decision, choice) pairs, got %d values", len(spec.Decisions))
			}
			b := &BudgetedSwitch{SwitchAt: make(map[int64]int, len(spec.Decisions)/2), Budget: int(spec.Param("budget"))}
			for i := 0; i < len(spec.Decisions); i += 2 {
				b.SwitchAt[int64(spec.Decisions[i])] = spec.Decisions[i+1]
			}
			return b, nil
		},
	})
	RegisterModel(&Model{
		Name: "reduced", Doc: "sleep-set reduced prefix replay (the POR explorer's chooser; sleep sets and pruning are engine-armed)",
		Params: map[string]float64{"sleepsets": 1},
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			return &Reduced{Prefix: spec.Decisions, SleepSets: spec.Param("sleepsets") != 0, Budget: 1 << 30}, nil
		},
	})
	RegisterModel(&Model{
		Name: "crash", Doc: "wrapper: inject a fixed plan of crash-stop faults around the inner model",
		Wrapper: true,
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			inner, err := newInner(spec)
			if err != nil {
				return nil, err
			}
			return NewCrash(inner, spec.Plan...), nil
		},
	})
	RegisterModel(&Model{
		Name: "randomcrash", Doc: "wrapper: seeded random crash-stop faults (max victims, per-step prob) around the inner model",
		Stochastic: true,
		Wrapper:    true,
		Params:     map[string]float64{"max": 1, "prob": 0},
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			inner, err := newInner(spec)
			if err != nil {
				return nil, err
			}
			return NewRandomCrash(inner, spec.Seed, int(spec.Param("max")), spec.Param("prob")), nil
		},
	})
	RegisterModel(&Model{
		Name: "watchdog", Doc: "wrapper: cooperative stop check every checkevery decisions (Stop is armed by the caller)",
		Wrapper: true,
		Params:  map[string]float64{"checkevery": 0},
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			inner, err := newInner(spec)
			if err != nil {
				return nil, err
			}
			return &Watchdog{Inner: inner, CheckEvery: int(spec.Param("checkevery"))}, nil
		},
	})
	RegisterModel(&Model{
		Name: "record", Doc: "wrapper: record the inner model's decisions and fired crashes for script-mode normalization",
		Wrapper: true,
		New: func(spec *ModelSpec) (sim.Chooser, error) {
			inner, err := newInner(spec)
			if err != nil {
				return nil, err
			}
			return NewRecord(inner), nil
		},
	})
}
