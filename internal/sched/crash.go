package sched

import (
	"math/rand"

	"repro/internal/sim"
)

// CrashPoint plans one crash-stop fault: process Proc is halted at the
// first scheduling step at or after global statement Step.
type CrashPoint struct {
	// Proc is the ID of the process to crash.
	Proc int
	// Step is the earliest global statement count at which the crash
	// fires (0 = before the first statement).
	Step int64
}

// Crash wraps an inner chooser and injects a fixed plan of crash-stop
// faults, implementing sim.Crasher. Scheduling decisions are delegated
// to Inner untouched, so any chooser — including the exhaustive
// explorer's replay scripts — can be combined with deterministic
// crashes.
type Crash struct {
	// Inner resolves scheduling decisions.
	Inner sim.Chooser
	// Plan holds the crashes to inject; each entry fires at most once.
	Plan []CrashPoint

	fired []bool
}

// NewCrash returns a crash-injecting chooser wrapping inner.
func NewCrash(inner sim.Chooser, plan ...CrashPoint) *Crash {
	return &Crash{Inner: inner, Plan: plan}
}

// Pick implements sim.Chooser by delegating to Inner.
func (c *Crash) Pick(d sim.Decision) int { return c.Inner.Pick(d) }

// Reset rearms every planned crash for a pooled rerun
// (sim.System.OnReset hooks). The plan itself is immutable.
func (c *Crash) Reset() {
	clear(c.fired)
}

// Crashes implements sim.Crasher: it returns every planned victim whose
// step has been reached and which has not fired yet.
func (c *Crash) Crashes(d sim.Decision) []*sim.Process {
	if c.fired == nil {
		c.fired = make([]bool, len(c.Plan))
	}
	var out []*sim.Process
	for i, pt := range c.Plan {
		if c.fired[i] || d.Step < pt.Step || pt.Proc < 0 || pt.Proc >= len(d.Procs) {
			continue
		}
		c.fired[i] = true
		out = append(out, d.Procs[pt.Proc])
	}
	return out
}

// RandomCrash wraps an inner chooser and injects seeded pseudo-random
// crash-stop faults: at every scheduling step, with probability Prob,
// one uniformly chosen live process is crashed, until MaxCrashes
// processes have been crashed. The same (inner chooser, seed) pair
// reproduces the same crash pattern, so fuzzing failures replay.
type RandomCrash struct {
	// Inner resolves scheduling decisions.
	Inner sim.Chooser
	// MaxCrashes caps the number of crashes injected (the adversary's
	// budget k; wait-freedom is only meaningful for k < N).
	MaxCrashes int
	// Prob is the per-step crash probability (0 < Prob ≤ 1).
	Prob float64
	// Injected counts crashes injected so far.
	Injected int

	rng *rand.Rand
}

// DefaultCrashProb is the per-step crash probability used when
// NewRandomCrash is asked for a default (prob ≤ 0): crashes land within
// the first few dozen scheduling steps, early enough to overlap the
// victims' invocations.
const DefaultCrashProb = 0.02

// NewRandomCrash returns a seeded random crash injector wrapping inner.
// prob ≤ 0 selects DefaultCrashProb.
func NewRandomCrash(inner sim.Chooser, seed int64, maxCrashes int, prob float64) *RandomCrash {
	if prob <= 0 {
		prob = DefaultCrashProb
	}
	return &RandomCrash{
		Inner:      inner,
		MaxCrashes: maxCrashes,
		Prob:       prob,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Pick implements sim.Chooser by delegating to Inner.
func (c *RandomCrash) Pick(d sim.Decision) int { return c.Inner.Pick(d) }

// Reseed rewinds the injector to the start of the crash stream for
// seed, so a pooled worker replays seed after seed. Reseed(inner, s) is
// equivalent to replacing the injector with NewRandomCrash(inner, s,
// MaxCrashes, Prob).
func (c *RandomCrash) Reseed(inner sim.Chooser, seed int64) {
	c.Inner = inner
	c.Injected = 0
	c.rng.Seed(seed)
}

// Crashes implements sim.Crasher.
func (c *RandomCrash) Crashes(d sim.Decision) []*sim.Process {
	if c.Injected >= c.MaxCrashes || c.rng.Float64() >= c.Prob {
		return nil
	}
	var live []*sim.Process
	for _, p := range d.Procs {
		if p.Live() {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil
	}
	c.Injected++
	return []*sim.Process{live[c.rng.Intn(len(live))]}
}
