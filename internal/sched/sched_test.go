package sched_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// runOrder executes two 3-invocation-statement processes under the
// given chooser and returns the sequence of executing process IDs.
func runOrder(t *testing.T, ch sim.Chooser, quantum, stmts int) []int {
	t.Helper()
	sys := sim.New(sim.Config{Processors: 1, Quantum: quantum, Chooser: ch})
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				for k := 0; k < stmts; k++ {
					c.Local(1)
					order = append(order, i)
				}
			})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return order
}

func switches(order []int) int {
	n := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			n++
		}
	}
	return n
}

func TestRunToCompletionNoSwitchMidInvocation(t *testing.T) {
	order := runOrder(t, &sched.RunToCompletion{}, 2, 6)
	if got := switches(order); got != 1 {
		t.Fatalf("switches = %d, want exactly 1 (between invocations): %v", got, order)
	}
}

func TestRotateMaximalSwitching(t *testing.T) {
	const q = 3
	order := runOrder(t, sched.NewRotate(), q, 3*q)
	// Rotate preempts at every legal opportunity: after the initial
	// anytime-preemption, every burst is exactly Q statements.
	if got := switches(order); got < 4 {
		t.Fatalf("switches = %d, want >= 4 under Rotate: %v", got, order)
	}
}

func TestFirstChooserDeterministic(t *testing.T) {
	a := runOrder(t, sim.FirstChooser{}, 4, 8)
	b := runOrder(t, sim.FirstChooser{}, 4, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FirstChooser not deterministic")
		}
	}
}

func TestRandomReproducible(t *testing.T) {
	a := runOrder(t, sched.NewRandom(99), 4, 8)
	b := runOrder(t, sched.NewRandom(99), 4, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
	c := runOrder(t, sched.NewRandom(100), 4, 8)
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("note: seeds 99 and 100 coincide (possible but unlikely)")
	}
}

// TestStaggerPhasesDiffer: different stagger phases must produce
// different interleavings (that is the point of the adversary battery).
func TestStaggerPhasesDiffer(t *testing.T) {
	const q = 4
	a := runOrder(t, sched.NewStagger(q, 0), q, 3*q)
	b := runOrder(t, sched.NewStagger(q, 1), q, 3*q)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("phases 0 and 1 produced identical schedules: %v", a)
	}
}

// TestStaggerBurstsRespectQuantum: after its offset burst, each process
// runs in bursts of exactly the period (when both remain runnable).
func TestStaggerBurstsRespectQuantum(t *testing.T) {
	const q = 5
	order := runOrder(t, sched.NewStagger(q, 0), q, 4*q)
	// Interior bursts must be >= q by Axiom 2 and == q by the adversary.
	var bursts []int
	cur, n := order[0], 0
	for _, v := range order {
		if v == cur {
			n++
			continue
		}
		bursts = append(bursts, n)
		cur, n = v, 1
	}
	// bursts[0] and bursts[1] are the two processes' stagger offsets;
	// the last burst may be a remainder. Everything in between must be
	// exactly one period.
	for i := 2; i < len(bursts)-1; i++ {
		if bursts[i] != q {
			t.Fatalf("interior burst %d has %d statements, want %d: %v", i, bursts[i], q, bursts)
		}
	}
	if len(bursts) < 5 {
		t.Fatalf("too few bursts for a meaningful check: %v", bursts)
	}
}

func TestScriptRecordsFanouts(t *testing.T) {
	s := &sched.Script{Decisions: []int{1}}
	sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Chooser: s})
	r := mem.NewReg("r")
	for i := 0; i < 2; i++ {
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Write(r, 1); c.Read(r) })
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(s.Fanouts) == 0 {
		t.Fatal("no fanouts recorded")
	}
	for _, f := range s.Fanouts {
		if f < 2 {
			t.Fatalf("decision with fanout %d reached chooser (kernel resolves singletons)", f)
		}
	}
}

func TestBudgetedSwitchRecordsTaken(t *testing.T) {
	b := &sched.BudgetedSwitch{SwitchAt: map[int64]int{0: 1}}
	sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Chooser: b})
	for i := 0; i < 2; i++ {
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(3) })
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(b.Taken) != len(b.Fanouts) {
		t.Fatalf("taken %d != fanouts %d", len(b.Taken), len(b.Fanouts))
	}
	if b.Taken[0] != 1 {
		t.Fatalf("scripted switch not taken: %v", b.Taken)
	}
}

// TestScriptClampFlagged: a scripted decision beyond the fan-out is
// clamped to the last candidate and flagged, so callers can tell the
// replay aliased a different (in-range) decision vector.
func TestScriptClampFlagged(t *testing.T) {
	s := &sched.Script{Decisions: []int{7}}
	sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: s})
	for i := 0; i < 2; i++ {
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(1) })
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !s.Clamped || s.ClampCount != 1 {
		t.Fatalf("Clamped=%v ClampCount=%d, want true/1", s.Clamped, s.ClampCount)
	}
}

// TestScriptInRangeNotClamped: valid decision vectors must not trip the
// alias flag.
func TestScriptInRangeNotClamped(t *testing.T) {
	s := &sched.Script{Decisions: []int{1}}
	sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: s})
	for i := 0; i < 2; i++ {
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(1) })
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Clamped || s.ClampCount != 0 {
		t.Fatalf("Clamped=%v ClampCount=%d, want false/0", s.Clamped, s.ClampCount)
	}
}

// TestBudgetedSwitchClampFlagged is the BudgetedSwitch analogue of
// TestScriptClampFlagged.
func TestBudgetedSwitchClampFlagged(t *testing.T) {
	b := &sched.BudgetedSwitch{SwitchAt: map[int64]int{0: 9}}
	sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Chooser: b})
	for i := 0; i < 2; i++ {
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(3) })
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !b.Clamped || b.ClampCount != 1 {
		t.Fatalf("Clamped=%v ClampCount=%d, want true/1", b.Clamped, b.ClampCount)
	}
}
