package sched_test

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

// TestWatchdogPassesThrough: while Stop reports false the wrapper is
// transparent.
func TestWatchdogPassesThrough(t *testing.T) {
	inner := sim.ChooserFunc(func(sim.Decision) int { return 3 })
	w := &sched.Watchdog{Inner: inner, Stop: func() bool { return false }, CheckEvery: 1}
	for i := 0; i < 10; i++ {
		if got := w.Pick(sim.Decision{}); got != 3 {
			t.Fatalf("Pick %d = %d, want 3", i, got)
		}
	}
	if w.Fired {
		t.Fatal("Fired set without Stop reporting true")
	}
}

// TestWatchdogFiresAndLatches: once Stop reports true every subsequent
// Pick aborts, even if Stop later reports false again.
func TestWatchdogFiresAndLatches(t *testing.T) {
	stop := false
	inner := sim.ChooserFunc(func(sim.Decision) int { return 0 })
	w := &sched.Watchdog{Inner: inner, Stop: func() bool { return stop }, CheckEvery: 1}
	if got := w.Pick(sim.Decision{}); got != 0 {
		t.Fatalf("pre-stop Pick = %d, want 0", got)
	}
	stop = true
	if got := w.Pick(sim.Decision{}); got != sim.PickAbort {
		t.Fatalf("post-stop Pick = %d, want PickAbort", got)
	}
	if !w.Fired {
		t.Fatal("Fired not set")
	}
	stop = false
	if got := w.Pick(sim.Decision{}); got != sim.PickAbort {
		t.Fatalf("latched Pick = %d, want PickAbort", got)
	}
}

// TestWatchdogCheckInterval: with CheckEvery n, Stop is only consulted
// every n decisions, so the first n-1 picks pass through even under an
// already-expired deadline.
func TestWatchdogCheckInterval(t *testing.T) {
	polls := 0
	inner := sim.ChooserFunc(func(sim.Decision) int { return 1 })
	w := &sched.Watchdog{Inner: inner, Stop: func() bool { polls++; return true }, CheckEvery: 4}
	for i := 0; i < 3; i++ {
		if got := w.Pick(sim.Decision{}); got != 1 {
			t.Fatalf("Pick %d = %d, want 1 (below check interval)", i, got)
		}
	}
	if polls != 0 {
		t.Fatalf("Stop polled %d times before the interval", polls)
	}
	if got := w.Pick(sim.Decision{}); got != sim.PickAbort {
		t.Fatalf("Pick 4 = %d, want PickAbort", got)
	}
	if polls != 1 {
		t.Fatalf("Stop polled %d times, want 1", polls)
	}
}

// TestWatchdogRearm: Rearm clears the fired latch and resets the
// check-interval counter, so the wrapper is reusable across runs.
func TestWatchdogRearm(t *testing.T) {
	stop := true
	inner := sim.ChooserFunc(func(sim.Decision) int { return 2 })
	w := &sched.Watchdog{Inner: inner, Stop: func() bool { return stop }, CheckEvery: 1}
	if got := w.Pick(sim.Decision{}); got != sim.PickAbort || !w.Fired {
		t.Fatalf("Pick = %d Fired = %v, want abort/fired", got, w.Fired)
	}
	stop = false
	w.Rearm(inner)
	if w.Fired {
		t.Fatal("Rearm did not clear Fired")
	}
	if got := w.Pick(sim.Decision{}); got != 2 {
		t.Fatalf("post-Rearm Pick = %d, want 2", got)
	}
}

// TestWatchdogCutsOffRun: under a fired watchdog System.Run returns
// ErrPickAbort instead of running to completion.
func TestWatchdogCutsOffRun(t *testing.T) {
	fired := false
	w := &sched.Watchdog{
		Inner:      &sched.Script{},
		Stop:       func() bool { return fired },
		CheckEvery: 1,
	}
	sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: w})
	steps := 0
	body := func(c *sim.Ctx) {
		for i := 0; i < 100; i++ {
			c.Local(1)
			steps++
			if steps == 5 {
				fired = true
			}
		}
	}
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).AddInvocation(body)
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).AddInvocation(body)
	err := sys.Run()
	if err == nil || !w.Fired {
		t.Fatalf("Run err = %v Fired = %v, want ErrPickAbort/fired", err, w.Fired)
	}
	if steps >= 200 {
		t.Fatalf("run completed %d steps despite the watchdog", steps)
	}
}

// TestWatchdogForwardsCrashes: the wrapper delegates the sim.Crasher
// protocol, so crash injection keeps working under a deadline.
func TestWatchdogForwardsCrashes(t *testing.T) {
	inner := sched.NewCrash(&sched.Script{}, sched.CrashPoint{Proc: 0, Step: 1})
	w := &sched.Watchdog{Inner: inner, Stop: func() bool { return false }, CheckEvery: 1}
	sys := sim.New(sim.Config{Processors: 1, Quantum: 1, Chooser: w})
	p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
	p.AddInvocation(func(c *sim.Ctx) { c.Local(10) })
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) { c.Local(1) })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sys.CrashedCount() != 1 {
		t.Fatalf("CrashedCount = %d, want 1 (crash plan lost through the watchdog)", sys.CrashedCount())
	}
}
