package sched_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/artifact"
	"repro/internal/sched"
	"repro/internal/sim"
)

// modelMatrix pins, for every registered scheduler model, a ModelSpec
// and the hand-wired chooser construction it migrated from. The
// cross-check below runs both over pinned workloads and demands
// byte-identical decision traces, fired crashes, fingerprints, and
// verdicts — the behavior-preservation proof for the registry
// refactor. Adding a model without a row here fails
// TestEveryModelCovered.
var modelMatrix = []struct {
	name string // registered model the row covers
	spec string // ParseModelSpec input (compact or JSON form)
	wire func() sim.Chooser
}{
	{"random", "random:seed=7", func() sim.Chooser { return sched.NewRandom(7) }},
	{"uniform", "uniform:seed=7", func() sim.Chooser { return sched.NewUniform(7) }},
	{"markov", "markov:pribias=2,stay=0.6,seed=3", func() sim.Chooser { return sched.NewMarkov(3, 0.6, 2) }},
	{"noisy", "noisy:eps=0.2,seed=5", func() sim.Chooser { return sched.NewNoisy(5, 0.2) }},
	{"rtc", "rtc", func() sim.Chooser { return &sched.RunToCompletion{} }},
	{"rotate", "rotate", func() sim.Chooser { return sched.NewRotate() }},
	{"stagger", "stagger:period=2,phase=1", func() sim.Chooser { return sched.NewStagger(2, 1) }},
	{"script", `{"name":"script","decisions":[1,0,1,1,0,2,1,0]}`,
		func() sim.Chooser { return &sched.Script{Decisions: []int{1, 0, 1, 1, 0, 2, 1, 0}} }},
	{"budgeted", `{"name":"budgeted","params":{"budget":2},"decisions":[3,1,9,0]}`,
		func() sim.Chooser {
			return &sched.BudgetedSwitch{SwitchAt: map[int64]int{3: 1, 9: 0}, Budget: 2}
		}},
	{"reduced", `{"name":"reduced","decisions":[1,0,1]}`,
		func() sim.Chooser { return &sched.Reduced{Prefix: []int{1, 0, 1}, SleepSets: true, Budget: 1 << 30} }},
	{"crash", `{"name":"crash","plan":[{"Proc":1,"Step":5}],"inner":{"name":"random","seed":7}}`,
		func() sim.Chooser { return sched.NewCrash(sched.NewRandom(7), sched.CrashPoint{Proc: 1, Step: 5}) }},
	{"randomcrash", `{"name":"randomcrash","seed":11,"params":{"max":1,"prob":0.05},"inner":{"name":"random","seed":7}}`,
		func() sim.Chooser { return sched.NewRandomCrash(sched.NewRandom(7), 11, 1, 0.05) }},
	{"watchdog", `{"name":"watchdog","params":{"checkevery":16},"inner":{"name":"random","seed":7}}`,
		func() sim.Chooser { return &sched.Watchdog{Inner: sched.NewRandom(7), CheckEvery: 16} }},
	{"record", `{"name":"record","inner":{"name":"random","seed":7}}`,
		func() sim.Chooser { return sched.NewRecord(sched.NewRandom(7)) }},
}

// modelWorkloads are the pinned workloads every matrix row runs under:
// a quantum-scheduled consensus workload and the lockcounter negative
// control (which starves under hostile schedules, exercising long
// runs, preemption patterns, and — with the crash wrappers — fault
// delivery).
var modelWorkloads = []artifact.Meta{
	{Workload: "unicons", N: 3, V: 1, Quantum: 2, MaxSteps: 1 << 16},
	{Workload: "lockcounter", N: 2, V: 2, Quantum: 2, MaxSteps: 2000},
}

// trace is the byte-comparable outcome of one recorded run.
type trace struct {
	Taken       []int
	Fanouts     []int
	Fired       []sched.CrashPoint
	Fingerprint uint64
	Err         string
}

// runRecorded runs meta under a Record-wrapped chooser and returns the
// full observable outcome.
func runRecorded(t *testing.T, meta artifact.Meta, ch sim.Chooser) trace {
	t.Helper()
	rec := sched.NewRecord(ch)
	sys, finish, err := artifact.Build(meta, rec, nil)
	if err != nil {
		t.Fatalf("Build(%s): %v", meta.Workload, err)
	}
	runErr := finish(sys.Run())
	tr := trace{
		Taken:       append([]int(nil), rec.Taken...),
		Fanouts:     append([]int(nil), rec.Fanouts...),
		Fired:       append([]sched.CrashPoint(nil), rec.Fired...),
		Fingerprint: sys.Fingerprint(),
	}
	if runErr != nil {
		tr.Err = runErr.Error()
	}
	return tr
}

// TestModelCrossCheck is the behavior-preservation pin: for every
// registered model, the registry-built chooser and the pre-refactor
// hand-wired chooser produce byte-identical traces over the pinned
// workloads.
func TestModelCrossCheck(t *testing.T) {
	for _, row := range modelMatrix {
		t.Run(row.name, func(t *testing.T) {
			spec, err := sched.ParseModelSpec(row.spec)
			if err != nil {
				t.Fatalf("ParseModelSpec(%q): %v", row.spec, err)
			}
			if spec.Name != row.name {
				t.Fatalf("spec %q parsed to model %q, row says %q", row.spec, spec.Name, row.name)
			}
			for _, meta := range modelWorkloads {
				built, err := sched.NewFromSpec(spec)
				if err != nil {
					t.Fatalf("NewFromSpec(%s): %v", spec, err)
				}
				got := runRecorded(t, meta, built)
				want := runRecorded(t, meta, row.wire())
				gotJSON, _ := json.Marshal(got)
				wantJSON, _ := json.Marshal(want)
				if string(gotJSON) != string(wantJSON) {
					t.Errorf("%s under %s: registry and hand-wired traces differ\n registry: %s\n wired:    %s",
						row.name, meta.Workload, gotJSON, wantJSON)
				}
			}
		})
	}
}

// TestEveryModelCovered fails when a registered model has no matrix
// row, so the cross-check can't silently rot as models are added.
func TestEveryModelCovered(t *testing.T) {
	covered := map[string]bool{}
	for _, row := range modelMatrix {
		covered[row.name] = true
	}
	for _, name := range sched.Models() {
		if !covered[name] {
			t.Errorf("registered model %q has no modelMatrix cross-check row", name)
		}
	}
}

// TestSpecStringRoundTrip pins that String() output re-parses to a
// spec that builds the identical chooser (same trace), for both the
// compact and JSON forms.
func TestSpecStringRoundTrip(t *testing.T) {
	for _, row := range modelMatrix {
		spec, err := sched.ParseModelSpec(row.spec)
		if err != nil {
			t.Fatalf("ParseModelSpec(%q): %v", row.spec, err)
		}
		s := spec.String()
		back, err := sched.ParseModelSpec(s)
		if err != nil {
			t.Fatalf("%s: String() %q does not re-parse: %v", row.name, s, err)
		}
		a, _ := json.Marshal(spec)
		b, _ := json.Marshal(back)
		if string(a) != string(b) {
			t.Errorf("%s: round trip changed the spec\n before: %s\n after:  %s", row.name, a, b)
		}
	}
}

// TestReseedEquivalence pins the Reseedable contract for the
// stochastic models: Reseed(s) on a used chooser equals a fresh build
// with seed s.
func TestReseedEquivalence(t *testing.T) {
	meta := modelWorkloads[0]
	for _, name := range []string{"random", "uniform", "markov", "noisy"} {
		spec, err := sched.ParseModelSpec(name + ":seed=99")
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := sched.NewFromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		want := runRecorded(t, meta, fresh)

		dirty, err := sched.NewFromSpec(&sched.ModelSpec{Name: name, Seed: 12345})
		if err != nil {
			t.Fatal(err)
		}
		runRecorded(t, meta, dirty) // burn state
		rs, ok := dirty.(sched.Reseedable)
		if !ok {
			t.Fatalf("%s chooser does not implement Reseedable", name)
		}
		rs.Reseed(99)
		got := runRecorded(t, meta, dirty)
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(want)
		if string(a) != string(b) {
			t.Errorf("%s: Reseed(99) differs from fresh seed 99\n reseed: %s\n fresh:  %s", name, a, b)
		}
	}
}

// TestRecordedTraceReplays pins script-mode normalization for the
// stochastic family: a recorded stochastic run replayed through the
// script model (with fired crashes replayed through the crash wrapper)
// reproduces the identical fingerprint and verdict.
func TestRecordedTraceReplays(t *testing.T) {
	for _, name := range []string{"uniform", "markov", "noisy"} {
		for _, meta := range modelWorkloads {
			spec := &sched.ModelSpec{Name: name, Seed: 42}
			ch, err := sched.NewFromSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			orig := runRecorded(t, meta, ch)

			replay := &sched.ModelSpec{Name: "script", Decisions: orig.Taken}
			rch, err := sched.NewFromSpec(replay)
			if err != nil {
				t.Fatal(err)
			}
			got := runRecorded(t, meta, rch)
			if got.Fingerprint != orig.Fingerprint || got.Err != orig.Err {
				t.Errorf("%s under %s: script replay diverged: fp %#x/%#x err %q/%q",
					name, meta.Workload, got.Fingerprint, orig.Fingerprint, got.Err, orig.Err)
			}
		}
	}
}

// TestWithRunSeed pins the per-run seed derivation: deterministic,
// distinct across runs, derived independently per wrapper depth, and
// leaving the input spec untouched.
func TestWithRunSeed(t *testing.T) {
	spec, err := sched.ParseModelSpec(`{"name":"randomcrash","seed":3,"params":{"max":1},"inner":{"name":"markov","seed":9}}`)
	if err != nil {
		t.Fatal(err)
	}
	r1 := spec.WithRunSeed(0)
	r1b := spec.WithRunSeed(0)
	r2 := spec.WithRunSeed(1)
	if a, b := fmt.Sprint(r1), fmt.Sprint(r1b); a != b {
		t.Errorf("WithRunSeed not deterministic: %s vs %s", a, b)
	}
	if r1.Seed == r2.Seed || r1.Inner.Seed == r2.Inner.Seed {
		t.Errorf("WithRunSeed(0) and (1) share seeds: %+v vs %+v", r1, r2)
	}
	if r1.Seed == r1.Inner.Seed {
		t.Errorf("wrapper and inner derived the same seed %d", r1.Seed)
	}
	if spec.Seed != 3 || spec.Inner.Seed != 9 {
		t.Errorf("WithRunSeed mutated the input spec: %+v", spec)
	}
}

// TestSpecValidation pins the registry's rejection surface.
func TestSpecValidation(t *testing.T) {
	bad := []string{
		"",                      // empty
		"nosuchmodel",           // unknown name
		"markov:warp=2",         // unknown parameter
		"markov:stay",           // malformed key=value
		"markov:stay=fast",      // non-numeric value
		`{"name":"watchdog"}`,   // wrapper without inner
		`{"name":"rtc","inner":{"name":"rotate"}}`, // inner on a non-wrapper
		`{"name":"budgeted","decisions":[1,2,3]}`,  // odd switch-word length (caught at build)
	}
	for _, s := range bad {
		spec, err := sched.ParseModelSpec(s)
		if err == nil {
			if _, err = sched.NewFromSpec(spec); err == nil {
				t.Errorf("ParseModelSpec+NewFromSpec(%q) accepted invalid spec", s)
			}
		}
	}
	for _, s := range []string{"uniform", "markov:stay=0.9", "noisy:eps=0.05,seed=12"} {
		if _, err := sched.ParseModelSpec(s); err != nil {
			t.Errorf("ParseModelSpec(%q): %v", s, err)
		}
	}
}
