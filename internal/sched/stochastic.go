package sched

import (
	"math/rand/v2"

	"repro/internal/sim"
)

// This file holds the stochastic scheduler family behind the
// "practically wait-free" measurement layer: uniform random over a
// modern generator (Uniform), Markov processor/priority walks (Markov),
// and Aspnes-style noisy scheduling (Noisy). All three draw only from a
// private seeded PCG — decision streams are pure functions of the seed,
// so every schedule they produce replays exactly from (spec, seed) or
// from a recorded decision trace.

// splitmix64 is the standard seed expander: it turns one 64-bit seed
// into decorrelated stream words for PCG initialization.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newPCG returns a seeded PCG source and its two init words derived
// from seed via splitmix64.
func newPCG(seed int64) *rand.PCG {
	return rand.NewPCG(splitmix64(uint64(seed)), splitmix64(uint64(seed)+1))
}

// Uniform picks uniformly among candidates from a seeded math/rand/v2
// PCG stream. It is the stochastic family's baseline — the scheduler
// the Alistarh–Censor-Hillel–Shavit argument calls "uniform stochastic"
// — and differs from Random only in generator (Random keeps the
// historical math/rand stream for replay compatibility with existing
// artifacts).
type Uniform struct {
	src *rand.PCG
	rng *rand.Rand
}

// NewUniform returns a Uniform chooser with the given seed.
func NewUniform(seed int64) *Uniform {
	src := newPCG(seed)
	return &Uniform{src: src, rng: rand.New(src)}
}

// Pick implements sim.Chooser.
func (u *Uniform) Pick(d sim.Decision) int {
	return u.rng.IntN(len(d.Candidates))
}

// Reseed rewinds the stream to the start for seed; equivalent to
// replacing the chooser with NewUniform(seed).
func (u *Uniform) Reseed(seed int64) {
	u.src.Seed(splitmix64(uint64(seed)), splitmix64(uint64(seed)+1))
}

// Markov is a Markov-chain processor/priority walk: with probability
// Stay it keeps granting the process it granted last (processor
// affinity — the common case on a real machine, where a context switch
// is the exception), and otherwise it hops to a different candidate
// with probability proportional to PriBias^(priority-1) (PriBias > 1
// models a priority-proportional-share scheduler; PriBias = 1 hops
// uniformly). The stationary behavior interpolates between
// run-to-completion (Stay→1) and uniform random (Stay→0, PriBias=1).
type Markov struct {
	// Stay is the probability of keeping the current process while it
	// remains a legal candidate.
	Stay float64
	// PriBias is the per-priority-level weight base for hops.
	PriBias float64

	src    *rand.PCG
	rng    *rand.Rand
	lastID int
}

// NewMarkov returns a Markov walk chooser with the given seed, stay
// probability, and priority bias.
func NewMarkov(seed int64, stay, priBias float64) *Markov {
	src := newPCG(seed)
	return &Markov{Stay: stay, PriBias: priBias, src: src, rng: rand.New(src), lastID: -1}
}

// Pick implements sim.Chooser.
func (m *Markov) Pick(d sim.Decision) int {
	cur := -1
	for i, p := range d.Candidates {
		if p.ID() == m.lastID {
			cur = i
			break
		}
	}
	// One draw per decision regardless of whether the current process is
	// still a candidate, so the stream stays aligned across workloads
	// with different candidate patterns.
	stay := m.rng.Float64() < m.Stay
	var idx int
	switch {
	case cur >= 0 && (stay || len(d.Candidates) == 1):
		idx = cur
	default:
		idx = m.hop(d.Candidates, cur)
	}
	m.lastID = d.Candidates[idx].ID()
	return idx
}

// hop draws a candidate other than cur (when possible) with weight
// PriBias^(priority-1).
func (m *Markov) hop(cands []*sim.Process, cur int) int {
	if m.PriBias == 1 {
		// Uniform hop: draw an index among the others directly.
		n := len(cands)
		if cur >= 0 {
			i := m.rng.IntN(n - 1)
			if i >= cur {
				i++
			}
			return i
		}
		return m.rng.IntN(n)
	}
	total := 0.0
	for i, p := range cands {
		if i == cur {
			continue
		}
		total += m.weight(p)
	}
	if total <= 0 {
		if cur >= 0 {
			return cur
		}
		return 0
	}
	x := m.rng.Float64() * total
	for i, p := range cands {
		if i == cur {
			continue
		}
		x -= m.weight(p)
		if x < 0 {
			return i
		}
	}
	// Float roundoff fell off the end: take the last non-cur candidate.
	for i := len(cands) - 1; i >= 0; i-- {
		if i != cur {
			return i
		}
	}
	return 0
}

func (m *Markov) weight(p *sim.Process) float64 {
	w := 1.0
	for k := 1; k < p.Priority(); k++ {
		w *= m.PriBias
	}
	return w
}

// Reseed rewinds the stream and the walk state for seed; equivalent to
// replacing the chooser with NewMarkov(seed, m.Stay, m.PriBias).
func (m *Markov) Reseed(seed int64) {
	m.src.Seed(splitmix64(uint64(seed)), splitmix64(uint64(seed)+1))
	m.lastID = -1
}

// Noisy is Aspnes's noisy-scheduling model: an adversarial core
// schedule perturbed by random noise. The core here is the maximally
// preempting round-robin (the Rotate strategy — switch to the next
// distinct process at every legal opportunity), and with probability
// Eps each decision is replaced by a uniform random candidate. The
// adversary observes the schedule as actually executed, so the walk
// state follows the perturbed choice, not the intended one. Eps=0
// degenerates to the pure adversary; Eps=1 to uniform random.
type Noisy struct {
	// Eps is the per-decision perturbation probability.
	Eps float64

	src    *rand.PCG
	rng    *rand.Rand
	lastID int
}

// NewNoisy returns a noisy-scheduling chooser with the given seed and
// perturbation probability.
func NewNoisy(seed int64, eps float64) *Noisy {
	src := newPCG(seed)
	return &Noisy{Eps: eps, src: src, rng: rand.New(src), lastID: -1}
}

// Pick implements sim.Chooser.
func (n *Noisy) Pick(d sim.Decision) int {
	// One perturbation draw per decision keeps the stream aligned; the
	// uniform draw happens only on perturbed decisions.
	var idx int
	if n.rng.Float64() < n.Eps {
		idx = n.rng.IntN(len(d.Candidates))
	} else {
		idx = rotatePick(d.Candidates, n.lastID)
	}
	n.lastID = d.Candidates[idx].ID()
	return idx
}

// rotatePick is the Rotate core: the candidate with the smallest ID
// strictly greater than lastID, wrapping around.
func rotatePick(cands []*sim.Process, lastID int) int {
	best, bestWrap := -1, -1
	for i, p := range cands {
		id := p.ID()
		if id > lastID && (best == -1 || id < cands[best].ID()) {
			best = i
		}
		if bestWrap == -1 || id < cands[bestWrap].ID() {
			bestWrap = i
		}
	}
	if best == -1 {
		best = bestWrap
	}
	return best
}

// Reseed rewinds the stream and the core's walk state for seed;
// equivalent to replacing the chooser with NewNoisy(seed, n.Eps).
func (n *Noisy) Reseed(seed int64) {
	n.src.Seed(splitmix64(uint64(seed)), splitmix64(uint64(seed)+1))
	n.lastID = -1
}
