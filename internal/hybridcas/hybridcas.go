// Package hybridcas implements the paper's Fig. 5 result (Theorem 2):
// a linearizable, wait-free Compare-and-Swap object — with Read — for
// any number of processes across V priority levels on one
// hybrid-scheduled uniprocessor, built from reads and writes only, with
// per-operation statement cost linear in V.
//
// # Architecture (following Fig. 5)
//
// The object is Herlihy's append-to-a-list construction specialized to
// C&S: a linked list of cells, one per successful nontrivial operation.
// Each cell's nxt pointer is a consensus object implemented by the
// Fig. 3 read/write algorithm (package unicons), which is correct across
// all priority levels of a hybrid-scheduled uniprocessor. As in the
// paper, helping is unnecessary: if another process appends first, a
// pending C&S may simply fail, because a successful nontrivial C&S
// linearizes in between.
//
// The list head is located through one head variable per priority level
// (the paper's Hd[1..V]). Each Hd[v] is updated only by processes of
// level v — which are quantum-scheduled with respect to one another —
// using the level-local Q-C&S of package qlocal, and is read by other
// levels with a single register read. Head depth is stored in each cell
// so a scan can start from the deepest of the V hints and walk nxt
// pointers forward to the true head.
//
// # Deviations from the paper's pseudocode
//
// The available text of Fig. 5 is OCR-degraded (comparison operators are
// missing), so this is a faithful reconstruction of the architecture
// rather than a line-by-line port; the exhaustive checker in
// internal/check validates it. Differences:
//
//   - The scan tolerates arbitrarily stale head hints by walking nxt
//     pointers, instead of the paper's exactly-one-behind invariant and
//     Feedback/Seen machinery; cost is O(V + walk) where the walk is
//     bounded by the interference overlapping the operation, preserving
//     wait-freedom and the linear-in-V shape (E4 in EXPERIMENTS.md).
//   - Cell storage uses fresh (process, tag) names with a monotone
//     per-process tag instead of the bounded 4N+2-tag recycling of [2];
//     see DESIGN.md's substitution table.
//
// Safety requires only Q ≥ MinQuantum (the Fig. 3 premise).
package hybridcas

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/qlocal"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// MinQuantum is the smallest quantum for which operations are
// linearizable: the premise of the underlying Fig. 3 consensus cells.
const MinQuantum = unicons.MinQuantum

// RecommendedQuantum keeps the number of retry rounds per operation
// small (at most one same-level preemption per head-update round).
const RecommendedQuantum = qlocal.RecommendedQuantum

// Packing limits for cell names: a cell name (id+1, tag) must fit the
// 32-bit qlocal value domain of the head variables.
const (
	maxProcs      = 1<<12 - 2 // id+1 in 12 bits
	maxTagsPerOp  = 1<<20 - 1 // tag in 20 bits
	genesisPacked = 0         // (id 0, tag 0): the genesis cell's name
)

type cellKey struct {
	id  int // owner process ID + 1; 0 is the genesis pseudo-process
	tag int
}

// packKey packs a cell name into the low 32 bits of a word.
func packKey(k cellKey) mem.Word {
	return mem.Word(k.id)<<20 | mem.Word(k.tag)
}

func unpackKey(w mem.Word) cellKey {
	return cellKey{id: int(w >> 20 & 0xFFF), tag: int(w & 0xFFFFF)}
}

// cell is one list cell: val is the object value after the cell's
// operation, nxt decides the successor cell, depth is the cell's
// position in the chain (written before the cell can be referenced).
type cell struct {
	val   *mem.Reg
	nxt   *unicons.Object
	depth *mem.Reg
}

// Object is a Fig. 5 compare-and-swap object for one hybrid-scheduled
// processor with V priority levels. Construct with New. All accessing
// processes must run on the same processor with priorities in 1..V.
type Object struct {
	name   string
	levels int
	hd     []*qlocal.Object // hd[v] for v in 1..V (index 0 unused)
	cells  map[cellKey]*cell
	tags   map[int]int // per-process next tag (private variables)

	rec *reclaimState // nil unless built with NewReclaiming

	// stats
	maxWalk int
	appends int
}

// New returns a C&S object over V priority levels holding initial. The
// list starts "as if some process had previously performed a successful
// C&S in isolation" (the genesis cell), exactly as the paper assumes.
func New(name string, levels int, initial mem.Word) *Object {
	if levels < 1 {
		panic(fmt.Sprintf("hybridcas: need >= 1 priority level, got %d", levels))
	}
	o := &Object{
		name:   name,
		levels: levels,
		hd:     make([]*qlocal.Object, levels+1),
		cells:  make(map[cellKey]*cell),
		tags:   make(map[int]int),
	}
	g := cellKey{id: 0, tag: 0}
	o.cells[g] = &cell{
		val:   mem.NewRegInit(name+".cell[g].val", initial),
		nxt:   unicons.New(name + ".cell[g].nxt"),
		depth: mem.NewRegInit(name+".cell[g].depth", 0),
	}
	for v := 1; v <= levels; v++ {
		o.hd[v] = qlocal.New(fmt.Sprintf("%s.Hd[%d]", name, v), genesisPacked)
	}
	return o
}

// newCell allocates the caller's next cell. Allocation is runtime-side
// (the unbounded-name idealization); the cell becomes visible to the
// algorithm only through subsequently written registers.
func (o *Object) newCell(id int) (cellKey, *cell) {
	if id+1 > maxProcs {
		panic(fmt.Sprintf("hybridcas: process id %d exceeds packing limit", id))
	}
	tag := o.tags[id]
	if tag > maxTagsPerOp {
		panic(fmt.Sprintf("hybridcas: process %d exhausted %d tags", id, maxTagsPerOp))
	}
	o.tags[id] = tag + 1
	k := cellKey{id: id + 1, tag: tag}
	cl := &cell{
		val:   mem.NewReg(fmt.Sprintf("%s.cell[%d,%d].val", o.name, k.id, k.tag)),
		nxt:   unicons.New(fmt.Sprintf("%s.cell[%d,%d].nxt", o.name, k.id, k.tag)),
		depth: mem.NewReg(fmt.Sprintf("%s.cell[%d,%d].depth", o.name, k.id, k.tag)),
	}
	o.cells[k] = cl
	return k, cl
}

// findHead scans the V head hints (one register read each), picks the
// deepest referenced cell, and walks nxt pointers to the current head.
// The returned key's cell had an undecided nxt at the moment of the
// final ⊥-read — the linearization certificate for trivial outcomes.
func (o *Object) findHead(c *sim.Ctx) cellKey {
	best := cellKey{id: 0, tag: 0}
	bestDepth := mem.Word(0)
	minDepth := mem.Word(1<<32 - 1)
	for v := 1; v <= o.levels; v++ {
		_, hv := o.hd[v].WeakRead(c) // 1 statement
		k := unpackKey(hv)
		d := c.Read(o.cellAt(k).depth) // 1 statement
		if d >= bestDepth {
			best, bestDepth = k, d
		}
		if d < minDepth {
			minDepth = d
		}
	}
	// With reclamation on, raise the published basis to the scan's
	// minimum candidate depth: every reference this operation can still
	// hold is at least that deep, so the floor may advance behind it.
	if o.rec != nil {
		c.Write(o.rec.activeReg(c.ID()), minDepth)
	}
	walk := 0
	k := best
	//repro:bound n the nxt chain beyond the hint grows only by appends overlapping this walk, at most one per process (invariant E4)
	for {
		nxt := o.cellAt(k).nxt.ReadValue(c)
		if nxt == mem.Bottom {
			if walk > o.maxWalk {
				o.maxWalk = walk
			}
			return k
		}
		k = unpackKey(nxt)
		walk++
	}
}

// CompareAndSwap atomically replaces the object's value with new if it
// currently equals old, returning whether it did (the paper's C&S
// procedure). Values may be any word except ⊥.
func (o *Object) CompareAndSwap(c *sim.Ctx, old, new mem.Word) bool {
	o.checkPri(c)
	if old == mem.Bottom || new == mem.Bottom {
		panic("hybridcas: ⊥ is not a storable value")
	}
	o.beginOp(c)
	ok, appended, key := o.cas(c, old, new)
	if appended {
		o.endOp(c, &key, nil)
	} else {
		o.endOp(c, nil, []cellKey{key})
	}
	return ok
}

// cas is the operation body; it reports whether the C&S succeeded and
// whether the caller's cell was appended to the list.
func (o *Object) cas(c *sim.Ctx, old, new mem.Word) (ok, appended bool, key cellKey) {
	// Initialize a fresh cell (paper lines 8-12); nxt starts ⊥ by
	// construction.
	key, cl := o.newCell(c.ID())
	c.Write(cl.val, new)

	hk := o.findHead(c)
	h := o.cellAt(hk)
	hv := c.Read(h.val)
	// Trivial cases (paper lines 26-27), linearized at the head
	// certificate.
	if hv != old {
		return false, false, key
	}
	if old == new {
		return true, false, key
	}
	// Nontrivial: append by deciding the head's nxt pointer (line 37).
	hd := c.Read(h.depth)
	c.Write(cl.depth, hd+1)
	o.noteDepth(key, hd+1)
	if h.nxt.Decide(c, packKey(key)) != packKey(key) {
		// Another nontrivial C&S appended first and linearizes between
		// our certificate and now; fail (paper line 45).
		return false, false, key
	}
	o.appends++
	o.updateHd(c, key, hd+1)
	return true, true, key
}

// Read returns the object's current value (the paper's Read procedure),
// linearized at the head certificate inside findHead.
func (o *Object) Read(c *sim.Ctx) mem.Word {
	o.checkPri(c)
	o.beginOp(c)
	hk := o.findHead(c)
	v := c.Read(o.cellAt(hk).val)
	o.endOp(c, nil, nil)
	return v
}

// updateHd advances the caller's level's head variable to the appended
// cell (paper lines 38-43). Hd[pri] is monotone in depth: the CAS basis
// is a linearizable Load, and deeper updates win.
func (o *Object) updateHd(c *sim.Ctx, key cellKey, depth mem.Word) {
	pri := c.Pri()
	//repro:bound n a lost CAS means another process advanced Hd[pri] past this depth; each overlapping process can defeat the update at most once
	for {
		cur := o.hd[pri].Load(c)
		if d := c.Read(o.cellAt(unpackKey(cur)).depth); d >= depth {
			return // a newer same-level append already advanced Hd
		}
		if o.hd[pri].CAS(c, cur, packKey(key)) {
			return
		}
		// CAS lost to a concurrent same-level update; bounded by the
		// caller's preemptions (Axiom 2) plus frozen peers.
	}
}

func (o *Object) checkPri(c *sim.Ctx) {
	if c.Pri() < 1 || c.Pri() > o.levels {
		panic(fmt.Sprintf("hybridcas: process priority %d outside 1..%d", c.Pri(), o.levels))
	}
}

// Peek returns the object's current value by chasing decided nxt
// pointers. Post-run inspection only. For a reclaiming object the walk
// starts from the deepest live hint (earlier cells may have been
// freed); otherwise from genesis.
func (o *Object) Peek() mem.Word {
	k := cellKey{id: 0, tag: 0}
	if o.rec != nil {
		best := mem.Word(0)
		for v := 1; v <= o.levels; v++ {
			//repro:allow post-run Peek walks hint registers only after the run completes
			_, hv := qlocal.UnpackCur(o.hd[v].Hint().Load())
			hk := unpackKey(hv)
			if d := o.rec.depths[hk]; d >= best {
				best, k = d, hk
			}
		}
	}
	//repro:bound unbounded post-run walk over the whole applied-ops chain; never executed during a run
	for {
		cl := o.cellAt(k)
		nxt := cl.nxt.Peek()
		if nxt == mem.Bottom {
			//repro:allow post-run Peek reads the chain tail only after the run completes
			return cl.val.Load()
		}
		k = unpackKey(nxt)
	}
}

// ChainLen returns the number of successful nontrivial operations
// applied. Post-run inspection only.
func (o *Object) ChainLen() int {
	if o.rec != nil {
		return o.appends
	}
	n := 0
	k := cellKey{id: 0, tag: 0}
	//repro:bound unbounded post-run walk over the whole applied-ops chain; never executed during a run
	for {
		nxt := o.cells[k].nxt.Peek()
		if nxt == mem.Bottom {
			return n
		}
		k = unpackKey(nxt)
		n++
	}
}

// MaxWalk returns the longest head walk observed — the empirical bound
// on hint staleness. Post-run inspection only.
func (o *Object) MaxWalk() int { return o.maxWalk }

// Levels returns V, the number of priority levels the object serves.
func (o *Object) Levels() int { return o.levels }
