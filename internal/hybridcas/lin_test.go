package hybridcas_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/hybridcas"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	kindRead = iota + 1
	kindCAS
)

func casSpec(state any, op check.HistOp) (any, uint64) {
	v := state.(uint64)
	switch op.Kind {
	case kindRead:
		return v, v
	case kindCAS:
		if v == op.Args[0] {
			return op.Args[1], 1
		}
		return v, 0
	default:
		panic("bad kind")
	}
}

func casKey(state any) uint64 { return state.(uint64) }

// TestFig5Linearizable records full mixed Read/C&S histories of the
// Fig. 5 object across priority levels and checks them against the
// sequential C&S specification with the Wing-Gong oracle.
func TestFig5Linearizable(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const levels = 3
		sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 20})
		obj := hybridcas.New("cas", levels, 0)
		hist := &check.History{}
		add := func(c *sim.Ctx, start int64, kind int, a, b, ret mem.Word, desc string) {
			hist.Add(check.HistOp{Proc: c.ID(), Start: start, End: c.Now(),
				Kind: kind, Args: [2]uint64{a, b}, Ret: ret, Desc: desc})
		}
		// Contending CAS chains from three processes at distinct levels.
		for i := 0; i < 3; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%levels})
			for k := 0; k < 2; k++ {
				p.AddInvocation(func(c *sim.Ctx) {
					start := c.Now()
					v := obj.Read(c)
					add(c, start, kindRead, 0, 0, v, fmt.Sprintf("read=%d", v))
					start = c.Now()
					ok := obj.CompareAndSwap(c, v, v+mem.Word(i)+1)
					r := mem.Word(0)
					if ok {
						r = 1
					}
					add(c, start, kindCAS, v, v+mem.Word(i)+1, r,
						fmt.Sprintf("cas(%d,%d)=%v", v, v+mem.Word(i)+1, ok))
				})
			}
		}
		// A pure reader at the top level.
		rd := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: levels})
		for k := 0; k < 3; k++ {
			rd.AddInvocation(func(c *sim.Ctx) {
				start := c.Now()
				v := obj.Read(c)
				add(c, start, kindRead, 0, 0, v, fmt.Sprintf("read=%d", v))
			})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			return hist.Check(uint64(0), casSpec, casKey)
		}
		return sys, verify
	}
	res := check.Fuzz(build, 400, check.Options{})
	if !res.OK() {
		t.Fatalf("non-linearizable history: %+v", res.First())
	}
}

// TestFig5LinearizableBudget runs a smaller scenario exhaustively within
// a deviation budget.
func TestFig5LinearizableBudget(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 18})
		obj := hybridcas.New("cas", 2, 10)
		hist := &check.History{}
		add := func(c *sim.Ctx, start int64, kind int, a, b, ret mem.Word) {
			hist.Add(check.HistOp{Proc: c.ID(), Start: start, End: c.Now(),
				Kind: kind, Args: [2]uint64{a, b}, Ret: ret})
		}
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				start := c.Now()
				ok := obj.CompareAndSwap(c, 10, 11)
				r := mem.Word(0)
				if ok {
					r = 1
				}
				add(c, start, kindCAS, 10, 11, r)
			})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 2}).
			AddInvocation(func(c *sim.Ctx) {
				start := c.Now()
				ok := obj.CompareAndSwap(c, 10, 12)
				r := mem.Word(0)
				if ok {
					r = 1
				}
				add(c, start, kindCAS, 10, 12, r)
			})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				start := c.Now()
				v := obj.Read(c)
				add(c, start, kindRead, 0, 0, v)
			})
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			return hist.Check(uint64(10), casSpec, casKey)
		}
		return sys, verify
	}
	res := check.ExploreBudget(build, 2, check.Options{MaxSchedules: 100000})
	if !res.OK() {
		t.Fatalf("non-linearizable history after %d schedules: %+v", res.Schedules, res.First())
	}
	t.Logf("verified %d schedules", res.Schedules)
}
