package hybridcas

import (
	"testing"
	"testing/quick"
)

// White-box property tests for cell-name packing.

func TestPackKeyRoundTrip(t *testing.T) {
	f := func(id uint16, tag uint32) bool {
		k := cellKey{id: int(id % (maxProcs + 1)), tag: int(tag % (maxTagsPerOp + 1))}
		return unpackKey(packKey(k)) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackKeyInjective(t *testing.T) {
	f := func(id1, id2 uint16, tag1, tag2 uint32) bool {
		a := cellKey{id: int(id1 % (maxProcs + 1)), tag: int(tag1 % (maxTagsPerOp + 1))}
		b := cellKey{id: int(id2 % (maxProcs + 1)), tag: int(tag2 % (maxTagsPerOp + 1))}
		if a == b {
			return true
		}
		return packKey(a) != packKey(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackKeyFitsQlocalDomain(t *testing.T) {
	f := func(id uint16, tag uint32) bool {
		k := cellKey{id: int(id % (maxProcs + 1)), tag: int(tag % (maxTagsPerOp + 1))}
		return packKey(k) <= 1<<32-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewCellTagsMonotone(t *testing.T) {
	o := New("o", 1, 0)
	k1, _ := o.newCell(3)
	k2, _ := o.newCell(3)
	k3, _ := o.newCell(4)
	if k1.id != 4 || k2.id != 4 || k3.id != 5 {
		t.Fatalf("ids: %d %d %d (owner+1 expected)", k1.id, k2.id, k3.id)
	}
	if k2.tag != k1.tag+1 {
		t.Fatalf("tags not monotone: %d then %d", k1.tag, k2.tag)
	}
	if k3.tag != 0 {
		t.Fatalf("fresh process tag = %d, want 0", k3.tag)
	}
}

func TestGenesisState(t *testing.T) {
	o := New("o", 2, 42)
	if got := o.Peek(); got != 42 {
		t.Fatalf("initial Peek = %d, want 42", got)
	}
	if o.ChainLen() != 0 {
		t.Fatalf("fresh chain length = %d", o.ChainLen())
	}
	if o.Levels() != 2 {
		t.Fatalf("levels = %d", o.Levels())
	}
	if _, ok := o.cells[cellKey{id: 0, tag: 0}]; !ok {
		t.Fatal("genesis cell missing")
	}
	if o.cells[cellKey{}].depth.Load() != 0 {
		t.Fatal("genesis depth != 0")
	}
}
