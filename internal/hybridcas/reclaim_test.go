package hybridcas_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/hybridcas"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// reclaimCounterBuilder mirrors casCounterBuilder over a reclaiming
// object.
func reclaimCounterBuilder(n, levels, opsPer, quantum, threshold int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: quantum, Chooser: ch, MaxSteps: 1 << 21})
		obj := hybridcas.NewReclaiming("cas", levels, 0, threshold)
		for i := 0; i < n; i++ {
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%levels})
			for k := 0; k < opsPer; k++ {
				p.AddInvocation(func(c *sim.Ctx) {
					for {
						v := obj.Read(c)
						if obj.CompareAndSwap(c, v, v+1) {
							return
						}
					}
				})
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			want := mem.Word(n * opsPer)
			if got := obj.Peek(); got != want {
				return fmt.Errorf("final = %d, want %d", got, want)
			}
			if got := obj.ChainLen(); got != n*opsPer {
				return fmt.Errorf("appends = %d, want %d", got, n*opsPer)
			}
			return nil
		}
		return sys, verify
	}
}

// TestReclaimCorrectUnderFuzz re-runs the counter workload over the
// reclaiming object under heavy schedule fuzzing: the reclaimed-cell
// panic in cellAt makes any unsafe free fatal and therefore detectable.
func TestReclaimCorrectUnderFuzz(t *testing.T) {
	for _, cfg := range []struct{ n, levels, ops, q, thr int }{
		{4, 2, 4, hybridcas.RecommendedQuantum, 2},
		{6, 3, 3, hybridcas.RecommendedQuantum, 1},
		{3, 1, 5, hybridcas.RecommendedQuantum, 3},
	} {
		res := check.Fuzz(reclaimCounterBuilder(cfg.n, cfg.levels, cfg.ops, cfg.q, cfg.thr), 250, check.Options{})
		if !res.OK() {
			t.Fatalf("cfg=%+v: violation: %+v", cfg, res.First())
		}
	}
}

// TestReclaimCorrectExhaustive explores every ≤3-deviation schedule of a
// small reclaiming configuration.
func TestReclaimCorrectExhaustive(t *testing.T) {
	res := check.ExploreBudget(reclaimCounterBuilder(2, 1, 2, hybridcas.RecommendedQuantum, 1), 3,
		check.Options{MaxSchedules: 20000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
	t.Logf("verified %d schedules (truncated=%v)", res.Schedules, res.Truncated)
}

// TestReclaimBoundedMemory pins the storage bound: as long as every
// priority level keeps accessing the object (here: one level), a long
// workload keeps live cells near O(N + V + threshold) instead of
// O(total ops). With idle levels reclamation stalls conservatively —
// the epoch-reclamation analogy documented in reclaim.go.
func TestReclaimBoundedMemory(t *testing.T) {
	const n, opsPer, threshold = 4, 40, 2
	sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum,
		Chooser: sched.NewRandom(11), MaxSteps: 1 << 23})
	obj := hybridcas.NewReclaiming("cas", 1, 0, threshold)
	for i := 0; i < n; i++ {
		p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
		for k := 0; k < opsPer; k++ {
			p.AddInvocation(func(c *sim.Ctx) {
				for {
					v := obj.Read(c)
					if obj.CompareAndSwap(c, v, v+1) {
						return
					}
				}
			})
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := obj.Peek(); got != n*opsPer {
		t.Fatalf("final = %d, want %d", got, n*opsPer)
	}
	if obj.FreedCells() == 0 {
		t.Fatal("reclamation never freed a cell")
	}
	// Total cells ever allocated is >= n*opsPer (one per successful op,
	// plus failed attempts); live cells must stay far below that.
	bound := 8 * (n + 2 + threshold)
	if live := obj.LiveCells(); live > bound {
		t.Fatalf("live cells = %d exceeds bound %d (freed %d)", live, bound, obj.FreedCells())
	}
	t.Logf("live=%d freed=%d appends=%d", obj.LiveCells(), obj.FreedCells(), obj.ChainLen())
}

// TestReclaimRejectsBadThreshold pins the constructor guard.
func TestReclaimRejectsBadThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("threshold 0 accepted")
		}
	}()
	hybridcas.NewReclaiming("bad", 1, 0, 0)
}
