package hybridcas_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/check"
	"repro/internal/hybridcas"
	"repro/internal/sched"
	"repro/internal/sim"
)

// crashCounterBuilder is casCounterBuilder under a crash-stop adversary
// crashing up to k of the n processes. A crashed process has at most one
// in-flight increment whose winning cell may still be incorporated by
// survivors, so the final value is bracketed by the completed-increment
// count and that count plus the number of crashes; survivors must all
// complete within the O(V) wait-free bound.
func crashCounterBuilder(n, levels, k int, crashSeed *atomic.Int64) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		crashing := sched.NewRandomCrash(ch, crashSeed.Add(1), k, 0.05)
		aud := sim.NewAuditor(hybridcas.RecommendedQuantum)
		sys := sim.New(sim.Config{
			Processors: 1, Quantum: hybridcas.RecommendedQuantum,
			Chooser: crashing, Observer: aud, MaxSteps: 1 << 20,
		})
		obj := hybridcas.New("cas", levels, 0)
		var succ atomic.Int64
		procs := make([]*sim.Process, n)
		for i := 0; i < n; i++ {
			procs[i] = sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%levels, Name: fmt.Sprintf("p%d", i)})
			procs[i].AddInvocation(func(c *sim.Ctx) {
				for {
					v := obj.Read(c)
					if obj.CompareAndSwap(c, v, v+1) {
						succ.Add(1)
						return
					}
				}
			})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			if err := aud.Err(); err != nil {
				return err
			}
			crashed := 0
			for i, p := range procs {
				if p.Crashed() {
					crashed++
					continue
				}
				if p.CompletedInvocations() != 1 {
					return fmt.Errorf("survivor %d did not complete its increment", i)
				}
			}
			done, got := succ.Load(), int64(obj.Peek())
			if got < done || got > done+int64(crashed) {
				return fmt.Errorf("final = %d, want in [%d, %d] (%d completed, %d crashed)",
					got, done, done+int64(crashed), done, crashed)
			}
			return nil
		}
		return sys, verify
	}
}

// TestCASCrashFuzz: seeded random schedules plus seeded random
// crash-stop faults with every budget k in 1..n-1 find no violation of
// the counter semantics or the O(V) wait-free bound.
func TestCASCrashFuzz(t *testing.T) {
	for _, cfg := range []struct{ n, levels int }{
		{3, 1}, {3, 3}, {4, 2},
	} {
		for k := 1; k < cfg.n; k++ {
			var crashSeed atomic.Int64
			res := check.Fuzz(crashCounterBuilder(cfg.n, cfg.levels, k, &crashSeed), 100, check.Options{
				WaitFreeBound: int64(500 * (cfg.levels + cfg.n)),
			})
			if !res.OK() {
				t.Fatalf("n=%d V=%d k=%d: %+v", cfg.n, cfg.levels, k, res.First())
			}
			if res.StepLimited != 0 {
				t.Fatalf("n=%d V=%d k=%d: %d runs hit the step limit", cfg.n, cfg.levels, k, res.StepLimited)
			}
		}
	}
}

// TestCASCrashedHolderDoesNotBlock: crash a process mid-operation at
// every early point under a deterministic schedule; the survivor's
// retry loop must still terminate (wait-freedom is crash-tolerant,
// unlike a lock).
func TestCASCrashedHolderDoesNotBlock(t *testing.T) {
	for step := int64(0); step <= 24; step++ {
		aud := sim.NewAuditor(hybridcas.RecommendedQuantum)
		sys := sim.New(sim.Config{
			Processors: 1, Quantum: hybridcas.RecommendedQuantum,
			Chooser:  sched.NewCrash(sched.NewRotate(), sched.CrashPoint{Proc: 0, Step: step}),
			Observer: aud, MaxSteps: 1 << 18,
		})
		obj := hybridcas.New("cas", 2, 0)
		var survived bool
		for i := 0; i < 2; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i}).
				AddInvocation(func(c *sim.Ctx) {
					for {
						v := obj.Read(c)
						if obj.CompareAndSwap(c, v, v+1) {
							if i == 1 {
								survived = true
							}
							return
						}
					}
				})
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("step=%d: %v", step, err)
		}
		if err := aud.Err(); err != nil {
			t.Fatalf("step=%d: %v", step, err)
		}
		if !survived {
			t.Fatalf("step=%d: survivor never completed", step)
		}
	}
}
