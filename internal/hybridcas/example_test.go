package hybridcas_test

import (
	"fmt"

	"repro/internal/hybridcas"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Example demonstrates the Fig. 5 object: three processes at different
// priority levels increment a shared counter with C&S retry loops, using
// only reads and writes underneath.
func Example() {
	sys := sim.New(sim.Config{
		Processors: 1,
		Quantum:    hybridcas.RecommendedQuantum,
		Chooser:    sched.NewRandom(1),
	})
	obj := hybridcas.New("counter", 3, 0)
	for i := 0; i < 3; i++ {
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: i + 1}).
			AddInvocation(func(c *sim.Ctx) {
				for {
					v := obj.Read(c)
					if obj.CompareAndSwap(c, v, v+1) {
						return
					}
				}
			})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	fmt.Println(obj.Peek())
	// Output: 3
}
