package hybridcas_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/hybridcas"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// casCounterBuilder has n processes spread over V priority levels, each
// performing opsPer increments via a CAS retry loop. Verifies the final
// value, total successes, and chain length.
func casCounterBuilder(n, levels, opsPer, quantum int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: quantum, Chooser: ch, MaxSteps: 1 << 20})
		obj := hybridcas.New("cas", levels, 0)
		succ := 0
		for i := 0; i < n; i++ {
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%levels, Name: fmt.Sprintf("p%d", i)})
			for k := 0; k < opsPer; k++ {
				p.AddInvocation(func(c *sim.Ctx) {
					for {
						v := obj.Read(c)
						if obj.CompareAndSwap(c, v, v+1) {
							succ++
							return
						}
					}
				})
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			want := mem.Word(n * opsPer)
			if got := obj.Peek(); got != want {
				return fmt.Errorf("final = %d, want %d", got, want)
			}
			if succ != n*opsPer {
				return fmt.Errorf("successes = %d, want %d", succ, n*opsPer)
			}
			if got := obj.ChainLen(); got != n*opsPer {
				return fmt.Errorf("chain length = %d, want %d", got, n*opsPer)
			}
			return nil
		}
		return sys, verify
	}
}

func TestCASSolo(t *testing.T) {
	res := check.ExploreAll(casCounterBuilder(1, 1, 3, hybridcas.RecommendedQuantum), check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

func TestCASExhaustiveTwoProcsOneLevel(t *testing.T) {
	res := check.ExploreBudget(casCounterBuilder(2, 1, 1, hybridcas.RecommendedQuantum), 3,
		check.Options{MaxSchedules: 200000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
	t.Logf("verified %d schedules (truncated=%v)", res.Schedules, res.Truncated)
}

func TestCASExhaustiveTwoProcsTwoLevels(t *testing.T) {
	res := check.ExploreBudget(casCounterBuilder(2, 2, 1, hybridcas.RecommendedQuantum), 3,
		check.Options{MaxSchedules: 200000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
	t.Logf("verified %d schedules (truncated=%v)", res.Schedules, res.Truncated)
}

func TestCASFuzz(t *testing.T) {
	for _, cfg := range []struct{ n, levels, ops, q int }{
		{2, 2, 3, hybridcas.RecommendedQuantum},
		{4, 2, 2, hybridcas.RecommendedQuantum},
		{4, 4, 2, hybridcas.RecommendedQuantum},
		{6, 3, 2, hybridcas.RecommendedQuantum},
		{3, 3, 2, hybridcas.MinQuantum}, // safety at the minimum quantum
	} {
		res := check.Fuzz(casCounterBuilder(cfg.n, cfg.levels, cfg.ops, cfg.q), 200, check.Options{})
		if !res.OK() {
			t.Fatalf("cfg=%+v: violation: %+v", cfg, res.First())
		}
	}
}

// TestCASDisjointExhaustive explores CAS(0→1) vs CAS(0→2) across two
// priority levels: exactly one succeeds.
func TestCASDisjointExhaustive(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 18})
		obj := hybridcas.New("cas", 2, 0)
		ok := make([]bool, 2)
		for i := 0; i < 2; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: i + 1}).
				AddInvocation(func(c *sim.Ctx) {
					ok[i] = obj.CompareAndSwap(c, 0, mem.Word(i+1))
				})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			final := obj.Peek()
			switch {
			case ok[0] == ok[1]:
				return fmt.Errorf("ok=%v final=%d: want exactly one success", ok, final)
			case ok[0] && final != 1, ok[1] && final != 2:
				return fmt.Errorf("ok=%v but final=%d", ok, final)
			}
			return nil
		}
		return sys, verify
	}
	res := check.ExploreBudget(build, 3, check.Options{MaxSchedules: 200000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
	t.Logf("verified %d schedules", res.Schedules)
}

// TestReadNeverSeesUnwrittenValue fuzzes readers against CAS writers:
// every read must be a value the counter actually reaches (0..total).
func TestReadNeverSeesUnwrittenValue(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const writers, readers, opsPer = 3, 2, 2
		sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 20})
		obj := hybridcas.New("cas", 3, 100)
		reads := make([][]mem.Word, readers)
		for i := 0; i < writers; i++ {
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%3})
			for k := 0; k < opsPer; k++ {
				p.AddInvocation(func(c *sim.Ctx) {
					for {
						v := obj.Read(c)
						if obj.CompareAndSwap(c, v, v+1) {
							return
						}
					}
				})
			}
		}
		for i := 0; i < readers; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%3})
			for k := 0; k < 3; k++ {
				p.AddInvocation(func(c *sim.Ctx) {
					reads[i] = append(reads[i], obj.Read(c))
				})
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			for i := range reads {
				for k, v := range reads[i] {
					if v < 100 || v > 100+writers*opsPer {
						return fmt.Errorf("reader %d read %d, outside reachable range", i, v)
					}
					if k > 0 && v < reads[i][k-1] {
						return fmt.Errorf("reader %d ran backwards: %v", i, reads[i])
					}
				}
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 300, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// TestCASTrivialSemantics checks CAS(x,x) and failing CAS don't append
// cells.
func TestCASTrivialSemantics(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum})
	obj := hybridcas.New("cas", 1, 5)
	var okSame, okWrongOld bool
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			okSame = obj.CompareAndSwap(c, 5, 5)
			okWrongOld = obj.CompareAndSwap(c, 6, 7)
		})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !okSame {
		t.Error("CAS(5,5) on value 5 failed, want success")
	}
	if okWrongOld {
		t.Error("CAS(6,7) on value 5 succeeded, want failure")
	}
	if got := obj.ChainLen(); got != 0 {
		t.Errorf("trivial operations appended %d cells, want 0", got)
	}
	if got := obj.Peek(); got != 5 {
		t.Errorf("final = %d, want 5", got)
	}
}

// TestStatementCostLinearInV measures the per-operation statement cost
// as V grows with everything else fixed: Theorem 2's O(V) bound. The
// cost must grow by roughly 2 statements per extra level (the scan) and
// must not blow up.
func TestStatementCostLinearInV(t *testing.T) {
	cost := func(levels int) int64 {
		sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum, Chooser: sched.NewRandom(42)})
		obj := hybridcas.New("cas", levels, 0)
		n := 4
		var worst int64
		procs := make([]*sim.Process, n)
		for i := 0; i < n; i++ {
			procs[i] = sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%levels})
			for k := 0; k < 3; k++ {
				procs[i].AddInvocation(func(c *sim.Ctx) {
					for {
						v := obj.Read(c)
						if obj.CompareAndSwap(c, v, v+1) {
							return
						}
					}
				})
			}
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("levels=%d: %v", levels, err)
		}
		for _, p := range procs {
			if p.MaxInvStmts() > worst {
				worst = p.MaxInvStmts()
			}
		}
		return worst
	}
	c1, c8, c32 := cost(1), cost(8), cost(32)
	t.Logf("worst-case statements/op: V=1:%d V=8:%d V=32:%d", c1, c8, c32)
	// Linear shape: incremental cost per level stays bounded (scan is 2
	// statements per level; allow generous constant-factor headroom for
	// retries), and is clearly sublinear in any superlinear alternative.
	if c32-c8 > 24*12 {
		t.Errorf("cost growth V=8→32 is %d, too steep for O(V)", c32-c8)
	}
	if c8 <= c1 {
		t.Logf("note: V=8 cost %d <= V=1 cost %d (scan cost hidden by retries)", c8, c1)
	}
}

// TestWalkStaysShort checks the head-hint staleness bound empirically:
// the longest walk should stay within the in-flight operation bound.
func TestWalkStaysShort(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: hybridcas.RecommendedQuantum, Chooser: sched.NewRandom(9)})
	const n = 6
	obj := hybridcas.New("cas", 3, 0)
	for i := 0; i < n; i++ {
		p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%3})
		for k := 0; k < 4; k++ {
			p.AddInvocation(func(c *sim.Ctx) {
				for {
					v := obj.Read(c)
					if obj.CompareAndSwap(c, v, v+1) {
						return
					}
				}
			})
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if obj.MaxWalk() > 2*n+2 {
		t.Errorf("max walk %d exceeds in-flight bound %d", obj.MaxWalk(), 2*n+2)
	}
	t.Logf("max walk = %d", obj.MaxWalk())
}
