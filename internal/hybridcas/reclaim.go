package hybridcas

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Storage reclamation.
//
// The paper bounds Fig. 5's storage with the 4N+2-tag recycling of [2],
// which is interlocked with its exactly-one-behind head invariant. This
// implementation's stale-tolerant scan walks forward instead, so it uses
// a different — simpler to prove — scheme: quiescence floors.
//
//   - Every operation first reads the global Floor register and
//     publishes it in its Active register, then (and only then) acquires
//     cell references from the head hints. Any key a hint can ever yield
//     has depth ≥ the global floor at acquisition time, and the floor
//     cannot advance past a published Active basis, so published-active
//     operations pin every cell they could reach.
//   - When an owner has retired enough linked cells, it recomputes the
//     floor as the minimum over all Active registers and all current
//     hint depths, advances the Floor register, and frees its own cells
//     strictly below the floor. A stale (preempted) Floor write can only
//     rewind the floor, which is conservative and therefore safe.
//   - Cells that lost their append (never linked) are referenced only by
//     their owner and are freed when the operation returns.
//
// Unlike [2]'s scheme the bound is not worst-case: a process frozen
// mid-operation pins cells appended during its preemption window, and —
// because every level's current head hint is a live reference — a
// priority level that stops accessing the object pins everything at and
// above its last hint (the same failure mode as a stalled reader in
// epoch-based reclamation). Correctness never depends on reclamation
// progress; storage stays O(N + V + threshold) while all levels keep
// operating. TestReclaimBoundedMemory pins this empirically and the
// full correctness suite re-runs against the reclaiming object.

// idleBasis marks an Active register as "no operation in flight".
const idleBasis = mem.Bottom

// reclaimState is attached to an Object when reclamation is enabled.
type reclaimState struct {
	threshold int
	floorReg  *mem.Reg             // global floor (depth); advances, stale rewinds are safe
	active    map[int]*mem.Reg     // per-process published basis
	depths    map[cellKey]mem.Word // owner-known depth of each linked cell
	retired   map[int][]cellKey    // linked cells eligible for floor-based freeing, per owner
	freed     int
}

// NewReclaiming returns a Fig. 5 C&S object that additionally bounds its
// storage with quiescence-floor reclamation. threshold is the number of
// retired cells an owner accumulates before it runs a reclamation pass
// (≥ 1; higher amortizes the pass's O(N+V) statements over more
// operations).
func NewReclaiming(name string, levels int, initial mem.Word, threshold int) *Object {
	if threshold < 1 {
		panic(fmt.Sprintf("hybridcas: reclaim threshold must be >= 1, got %d", threshold))
	}
	o := New(name, levels, initial)
	o.rec = &reclaimState{
		threshold: threshold,
		floorReg:  mem.NewRegInit(name+".floor", 0),
		active:    make(map[int]*mem.Reg),
		depths:    make(map[cellKey]mem.Word),
		retired:   make(map[int][]cellKey),
	}
	return o
}

// Reclaiming reports whether the object reclaims storage.
func (o *Object) Reclaiming() bool { return o.rec != nil }

// LiveCells returns the number of allocated cells. Post-run inspection
// only.
func (o *Object) LiveCells() int { return len(o.cells) }

// FreedCells returns how many cells reclamation has freed. Post-run
// inspection only.
func (o *Object) FreedCells() int {
	if o.rec == nil {
		return 0
	}
	return o.rec.freed
}

// activeReg returns (lazily creating) the caller's Active register.
func (r *reclaimState) activeReg(id int) *mem.Reg {
	reg, ok := r.active[id]
	if !ok {
		reg = mem.NewReg(fmt.Sprintf("active[%d]", id))
		r.active[id] = reg
	}
	return reg
}

// beginOp publishes the caller's basis. Must run before any head-hint
// read. Two statements.
func (o *Object) beginOp(c *sim.Ctx) {
	if o.rec == nil {
		return
	}
	basis := c.Read(o.rec.floorReg)
	c.Write(o.rec.activeReg(c.ID()), basis)
}

// endOp clears the caller's Active register and retires cells. One
// statement plus an amortized reclamation pass.
func (o *Object) endOp(c *sim.Ctx, appended *cellKey, unlinked []cellKey) {
	if o.rec == nil {
		return
	}
	r := o.rec
	// Unlinked cells were never published; only the owner references
	// them, so they free immediately (runtime-side).
	//repro:bound 1 an operation unlinks at most its own unpublished cell
	for _, k := range unlinked {
		delete(o.cells, k)
		delete(r.depths, k)
		r.freed++
	}
	if appended != nil {
		r.retired[c.ID()] = append(r.retired[c.ID()], *appended)
	}
	c.Write(r.activeReg(c.ID()), idleBasis)
	if len(r.retired[c.ID()]) >= r.threshold {
		o.reclaimPass(c)
	}
}

// reclaimPass recomputes the global floor and frees the caller's retired
// cells strictly below it. O(N + V) statements, amortized over
// `threshold` operations.
func (o *Object) reclaimPass(c *sim.Ctx) {
	r := o.rec
	floor := mem.Word(1<<32 - 1)
	// Every in-flight operation pins depths down to its published basis.
	//repro:bound n one Active register per process
	for id := range r.active {
		if a := c.Read(r.active[id]); a != idleBasis && a < floor {
			floor = a
		}
	}
	// Every current hint is a live reference.
	for v := 1; v <= o.levels; v++ {
		_, hv := o.hd[v].WeakRead(c)
		k := unpackKey(hv)
		switch d, ok := r.depths[k]; {
		case ok && d < floor:
			floor = d
		case !ok && k == (cellKey{}):
			floor = 0 // genesis still hinted
		case !ok:
			panic(fmt.Sprintf("hybridcas: %s: hint names unknown cell (%d,%d)", o.name, k.id, k.tag))
		}
	}
	// Advance the global floor. A concurrent (or later, stale) write can
	// only lower it, which merely delays reclamation.
	c.Write(r.floorReg, floor)
	// Free own retired cells strictly below the floor.
	kept := r.retired[c.ID()][:0]
	//repro:bound threshold+1 retired cells drain every threshold operations, so at most threshold plus the cell retired this call accumulate
	for _, k := range r.retired[c.ID()] {
		if r.depths[k] < floor {
			delete(o.cells, k)
			delete(r.depths, k)
			r.freed++
		} else {
			kept = append(kept, k)
		}
	}
	r.retired[c.ID()] = kept
}

// noteDepth records a linked cell's depth for the owner (runtime-side;
// the owner just wrote the depth register itself).
func (o *Object) noteDepth(k cellKey, d mem.Word) {
	if o.rec != nil {
		o.rec.depths[k] = d
	}
}

// cellAt returns the live cell for k, failing loudly if reclamation ever
// freed a still-reachable cell (the invariant the scheme must uphold).
func (o *Object) cellAt(k cellKey) *cell {
	cl := o.cells[k]
	if cl == nil {
		panic(fmt.Sprintf("hybridcas: %s: reclaimed cell (%d,%d) accessed — reclamation invariant violated", o.name, k.id, k.tag))
	}
	return cl
}
