package qlocal_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/qlocal"
	"repro/internal/sim"
)

// fetchIncBuilder builds n same-level processes each performing opsPer
// FetchInc operations, and verifies the returns form exactly the range
// 0..n*opsPer-1 (each value once) — a complete linearizability
// certificate for a counter.
func fetchIncBuilder(n, opsPer, quantum int) check.Builder {
	return func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: quantum, Chooser: ch, MaxSteps: 1 << 18})
		obj := qlocal.New("ctr", 0)
		rets := make([][]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: fmt.Sprintf("p%d", i)})
			for k := 0; k < opsPer; k++ {
				p.AddInvocation(func(c *sim.Ctx) {
					rets[i] = append(rets[i], obj.FetchInc(c))
				})
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			var all []int
			for i := range rets {
				// Per-process returns must be strictly increasing
				// (program order respects linearization order).
				for k := 1; k < len(rets[i]); k++ {
					if rets[i][k] <= rets[i][k-1] {
						return fmt.Errorf("process %d returns not increasing: %v", i, rets[i])
					}
				}
				for _, v := range rets[i] {
					all = append(all, int(v))
				}
			}
			sort.Ints(all)
			for k, v := range all {
				if v != k {
					return fmt.Errorf("returns not a permutation of 0..%d: %v", n*opsPer-1, all)
				}
			}
			if got := obj.Peek(); got != mem.Word(n*opsPer) {
				return fmt.Errorf("final value %d, want %d", got, n*opsPer)
			}
			return nil
		}
		return sys, verify
	}
}

func TestFetchIncSolo(t *testing.T) {
	res := check.ExploreAll(fetchIncBuilder(1, 3, qlocal.RecommendedQuantum), check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

func TestFetchIncExhaustiveTwoProcs(t *testing.T) {
	res := check.ExploreBudget(fetchIncBuilder(2, 2, qlocal.RecommendedQuantum), 3,
		check.Options{MaxSchedules: 300000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
	t.Logf("verified %d schedules (truncated=%v)", res.Schedules, res.Truncated)
}

func TestFetchIncFuzz(t *testing.T) {
	for _, cfg := range []struct{ n, ops, q int }{
		{2, 4, qlocal.RecommendedQuantum},
		{3, 3, qlocal.RecommendedQuantum},
		{5, 2, qlocal.RecommendedQuantum},
		{4, 3, qlocal.MinQuantum}, // safety holds at the minimum quantum too
	} {
		res := check.Fuzz(fetchIncBuilder(cfg.n, cfg.ops, cfg.q), 300, check.Options{})
		if !res.OK() {
			t.Fatalf("cfg=%+v: violation: %+v", cfg, res.First())
		}
	}
}

// TestCASExhaustiveDisjointTargets explores two processes doing
// CAS(0→1) and CAS(0→2): exactly one must succeed and the final value
// must be the winner's.
func TestCASExhaustiveDisjointTargets(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: qlocal.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 16})
		obj := qlocal.New("w", 0)
		ok := make([]bool, 2)
		for i := 0; i < 2; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) {
					ok[i] = obj.CAS(c, 0, mem.Word(i+1))
				})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			final := obj.Peek()
			switch {
			case ok[0] && ok[1]:
				return fmt.Errorf("both CAS(0,·) succeeded (final=%d)", final)
			case !ok[0] && !ok[1]:
				return fmt.Errorf("neither CAS succeeded (final=%d)", final)
			case ok[0] && final != 1:
				return fmt.Errorf("p0 won but final=%d", final)
			case ok[1] && final != 2:
				return fmt.Errorf("p1 won but final=%d", final)
			}
			return nil
		}
		return sys, verify
	}
	res := check.ExploreBudget(build, 3, check.Options{MaxSchedules: 300000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
	t.Logf("verified %d schedules", res.Schedules)
}

// TestCASChainOutcomes explores p:CAS(0→1) with q:CAS(1→2): allowed
// outcomes are {p=T,q=T,final=2} and {p=T,q=F,final=1}; p can never
// fail.
func TestCASChainOutcomes(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: qlocal.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 16})
		obj := qlocal.New("w", 0)
		ok := make([]bool, 2)
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "p"}).
			AddInvocation(func(c *sim.Ctx) { ok[0] = obj.CAS(c, 0, 1) })
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "q"}).
			AddInvocation(func(c *sim.Ctx) { ok[1] = obj.CAS(c, 1, 2) })
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			final := obj.Peek()
			switch {
			case !ok[0]:
				return fmt.Errorf("CAS(0,1) failed (q=%v final=%d)", ok[1], final)
			case ok[1] && final != 2:
				return fmt.Errorf("both succeeded but final=%d", final)
			case !ok[1] && final != 1:
				return fmt.Errorf("q failed but final=%d", final)
			}
			return nil
		}
		return sys, verify
	}
	res := check.ExploreBudget(build, 3, check.Options{MaxSchedules: 300000})
	if !res.OK() {
		t.Fatalf("violation after %d schedules: %+v", res.Schedules, res.First())
	}
}

// TestCASIncrementLoop drives a counter through CAS retry loops: total
// successful increments must equal the final value, and every process
// must succeed exactly opsPer times (the loop retries until success).
func TestCASIncrementLoop(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const n, opsPer = 4, 3
		sys := sim.New(sim.Config{Processors: 1, Quantum: qlocal.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 18})
		obj := qlocal.New("ctr", 0)
		succ := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
			for k := 0; k < opsPer; k++ {
				p.AddInvocation(func(c *sim.Ctx) {
					for {
						v := obj.Load(c)
						if obj.CAS(c, v, v+1) {
							succ[i]++
							return
						}
					}
				})
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			total := 0
			for _, s := range succ {
				total += s
			}
			if total != n*opsPer {
				return fmt.Errorf("successes = %d, want %d", total, n*opsPer)
			}
			if got := obj.Peek(); got != mem.Word(n*opsPer) {
				return fmt.Errorf("final = %d, want %d", got, n*opsPer)
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 400, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// TestStoreLastWins fuzzes concurrent stores: the final value must be
// one of the stored values, and a solo store after the fact must win.
func TestStoreLastWins(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const n = 3
		sys := sim.New(sim.Config{Processors: 1, Quantum: qlocal.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 18})
		obj := qlocal.New("w", 0)
		for i := 0; i < n; i++ {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) { obj.Store(c, mem.Word(i+10)) })
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			final := obj.Peek()
			if final < 10 || final >= 10+n {
				return fmt.Errorf("final = %d, not any stored value", final)
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 400, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// TestLoadSnapshotsMonotone checks that interleaved loads by a same-level
// observer never run backwards while a mutator increments.
func TestLoadSnapshotsMonotone(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: qlocal.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 18})
		obj := qlocal.New("ctr", 0)
		var loads []mem.Word
		inc := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "inc"})
		for k := 0; k < 5; k++ {
			inc.AddInvocation(func(c *sim.Ctx) { obj.FetchInc(c) })
		}
		rd := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "rd"})
		for k := 0; k < 5; k++ {
			rd.AddInvocation(func(c *sim.Ctx) { loads = append(loads, obj.Load(c)) })
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			for i := 1; i < len(loads); i++ {
				if loads[i] < loads[i-1] {
					return fmt.Errorf("loads ran backwards: %v", loads)
				}
			}
			if len(loads) > 0 && loads[len(loads)-1] > 5 {
				return fmt.Errorf("load exceeds increment count: %v", loads)
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 400, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// TestWeakReadStaysInHistory checks that WeakRead, from a
// higher-priority level, always returns a (seq, value) pair that the
// object actually went through.
func TestWeakReadStaysInHistory(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: qlocal.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 18})
		obj := qlocal.New("ctr", 7)
		type snap struct {
			seq int
			val mem.Word
		}
		var snaps []snap
		for i := 0; i < 3; i++ {
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
			for k := 0; k < 3; k++ {
				p.AddInvocation(func(c *sim.Ctx) { obj.FetchInc(c) })
			}
		}
		hi := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 2, Name: "reader"})
		for k := 0; k < 4; k++ {
			hi.AddInvocation(func(c *sim.Ctx) {
				seq, val := obj.WeakRead(c)
				snaps = append(snaps, snap{seq, val})
			})
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			for _, s := range snaps {
				// seq k corresponds to value 7+k for a pure counter.
				if s.val != mem.Word(7+s.seq) {
					return fmt.Errorf("weak read (seq=%d val=%d) not in object history", s.seq, s.val)
				}
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 400, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
}

// TestOpsCount checks the post-run Ops accounting.
func TestOpsCount(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: qlocal.RecommendedQuantum})
	obj := qlocal.New("ctr", 0)
	p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
	for k := 0; k < 4; k++ {
		p.AddInvocation(func(c *sim.Ctx) { obj.FetchInc(c) })
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if obj.Ops() != 4 {
		t.Fatalf("Ops = %d, want 4", obj.Ops())
	}
}
