package qlocal_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/qlocal"
	"repro/internal/sim"
)

// Operation kinds for the sequential word spec.
const (
	kindLoad = iota + 1
	kindCAS
	kindFAI
	kindStore
)

func wordSpec(state any, op check.HistOp) (any, uint64) {
	v := state.(uint64)
	switch op.Kind {
	case kindLoad:
		return v, v
	case kindCAS:
		if v == op.Args[0] {
			return op.Args[1], 1
		}
		return v, 0
	case kindFAI:
		return v + 1, v
	case kindStore:
		return op.Args[0], 0
	default:
		panic("bad kind")
	}
}

func wordKey(state any) uint64 { return state.(uint64) }

// TestMixedOpsLinearizable records full histories of mixed CAS, F&I,
// Store, and Load operations under randomized schedules and verifies
// each history against the sequential word specification with the
// Wing-Gong checker — the strongest correctness statement in this suite.
func TestMixedOpsLinearizable(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: qlocal.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 18})
		obj := qlocal.New("w", 0)
		hist := &check.History{}
		record := func(c *sim.Ctx, start int64, kind int, a, b, ret mem.Word, desc string) {
			hist.Add(check.HistOp{
				Proc: c.ID(), Start: start, End: c.Now(),
				Kind: kind, Args: [2]uint64{a, b}, Ret: ret, Desc: desc,
			})
		}
		// Process 0: two CAS-increment attempts.
		p0 := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
		for k := 0; k < 2; k++ {
			p0.AddInvocation(func(c *sim.Ctx) {
				start := c.Now()
				v := obj.Load(c)
				record(c, start, kindLoad, 0, 0, v, fmt.Sprintf("load=%d", v))
				start = c.Now()
				ok := obj.CAS(c, v, v+1)
				r := mem.Word(0)
				if ok {
					r = 1
				}
				record(c, start, kindCAS, v, v+1, r, fmt.Sprintf("cas(%d,%d)=%v", v, v+1, ok))
			})
		}
		// Process 1: fetch-and-increments.
		p1 := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
		for k := 0; k < 2; k++ {
			p1.AddInvocation(func(c *sim.Ctx) {
				start := c.Now()
				v := obj.FetchInc(c)
				record(c, start, kindFAI, 0, 0, v, fmt.Sprintf("fai=%d", v))
			})
		}
		// Process 2: a store then a load.
		p2 := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
		p2.AddInvocation(func(c *sim.Ctx) {
			start := c.Now()
			obj.Store(c, 100)
			record(c, start, kindStore, 100, 0, 0, "store(100)")
		})
		p2.AddInvocation(func(c *sim.Ctx) {
			start := c.Now()
			v := obj.Load(c)
			record(c, start, kindLoad, 0, 0, v, fmt.Sprintf("load=%d", v))
		})
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			return hist.Check(uint64(0), wordSpec, wordKey)
		}
		return sys, verify
	}
	res := check.Fuzz(build, 500, check.Options{})
	if !res.OK() {
		t.Fatalf("non-linearizable history: %+v", res.First())
	}
}

// TestMixedOpsLinearizableBudget runs the same linearizability oracle
// under exhaustive bounded-deviation exploration.
func TestMixedOpsLinearizableBudget(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		sys := sim.New(sim.Config{Processors: 1, Quantum: qlocal.RecommendedQuantum, Chooser: ch, MaxSteps: 1 << 18})
		obj := qlocal.New("w", 5)
		hist := &check.History{}
		add := func(c *sim.Ctx, start int64, kind int, a, b, ret mem.Word) {
			hist.Add(check.HistOp{Proc: c.ID(), Start: start, End: c.Now(),
				Kind: kind, Args: [2]uint64{a, b}, Ret: ret})
		}
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				start := c.Now()
				ok := obj.CAS(c, 5, 6)
				r := mem.Word(0)
				if ok {
					r = 1
				}
				add(c, start, kindCAS, 5, 6, r)
			})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				start := c.Now()
				ok := obj.CAS(c, 5, 7)
				r := mem.Word(0)
				if ok {
					r = 1
				}
				add(c, start, kindCAS, 5, 7, r)
			})
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				start := c.Now()
				v := obj.Load(c)
				add(c, start, kindLoad, 0, 0, v)
			})
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			return hist.Check(uint64(5), wordSpec, wordKey)
		}
		return sys, verify
	}
	res := check.ExploreBudget(build, 2, check.Options{MaxSchedules: 100000})
	if !res.OK() {
		t.Fatalf("non-linearizable history after %d schedules: %+v", res.Schedules, res.First())
	}
	t.Logf("verified %d schedules", res.Schedules)
}
